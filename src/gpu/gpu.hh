/**
 * @file
 * GPU device: owns the compute units and dispatches kernels.  A kernel
 * launch is a set of warp streams in one address space; streams are
 * assigned to CUs round-robin and the launch completes when every CU
 * drains.
 */

#ifndef GVC_GPU_GPU_HH
#define GVC_GPU_GPU_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "gpu/cu.hh"
#include "sim/sim_context.hh"

namespace gvc
{

/** A kernel launch: warp streams plus the launching address space. */
struct KernelLaunch
{
    Asid asid = 0;
    std::vector<std::unique_ptr<WarpStream>> warps;
};

/** The GPU device. */
class Gpu
{
  public:
    Gpu(SimContext &ctx, const GpuParams &params, GpuMemInterface &mem)
        : ctx_(ctx), params_(params)
    {
        cus_.reserve(params.num_cus);
        for (unsigned i = 0; i < params.num_cus; ++i)
            cus_.push_back(
                std::make_unique<ComputeUnit>(ctx, i, params, mem));
    }

    /**
     * Launch @p kernel; @p on_done fires when every warp has retired.
     * Only one kernel may be in flight at a time (the harness serializes
     * launches, matching the paper's one-kernel-at-a-time workloads).
     */
    void
    launch(KernelLaunch kernel, std::function<void()> on_done)
    {
        if (cus_running_ != 0)
            fatal("Gpu::launch: a kernel is already running");
        ++kernels_launched_;
        if (kernel.warps.empty()) {
            // A zero-warp kernel has nothing to execute; complete it
            // synchronously instead of spinning the CUs through their
            // wake/drain machinery (which would also advance the clock).
            if (on_done)
                on_done();
            return;
        }
        on_kernel_done_ = std::move(on_done);
        for (std::size_t i = 0; i < kernel.warps.size(); ++i) {
            cus_[i % cus_.size()]->enqueueWarp(
                kernel.asid, std::move(kernel.warps[i]));
        }
        cus_running_ = unsigned(cus_.size());
        for (auto &cu : cus_) {
            cu->start([this] {
                if (--cus_running_ == 0 && on_kernel_done_)
                    on_kernel_done_();
            });
        }
    }

    /**
     * Scenario kernel boundary: rebase every CU's issue machinery on the
     * current time so the next launch schedules shift-invariantly (see
     * ComputeUnit::resetIssueState).  The harness calls this between
     * scenario rounds, never between the launches a single workload
     * emits itself.
     */
    void
    resetIssueState()
    {
        if (cus_running_ != 0)
            fatal("Gpu::resetIssueState: a kernel is still running");
        for (auto &cu : cus_)
            cu->resetIssueState();
    }

    unsigned numCus() const { return unsigned(cus_.size()); }
    ComputeUnit &cu(unsigned i) { return *cus_[i]; }
    const ComputeUnit &cu(unsigned i) const { return *cus_[i]; }
    std::uint64_t kernelsLaunched() const { return kernels_launched_.value; }

    std::uint64_t
    totalInstructions() const
    {
        std::uint64_t n = 0;
        for (const auto &cu : cus_)
            n += cu->instructionsIssued();
        return n;
    }

    std::uint64_t
    totalMemInstructions() const
    {
        std::uint64_t n = 0;
        for (const auto &cu : cus_)
            n += cu->memInstructions();
        return n;
    }

    /** Mean coalesced lines per memory instruction across CUs. */
    double
    meanLinesPerMemInst() const
    {
        double lines = 0, insts = 0;
        for (const auto &cu : cus_) {
            lines += double(cu->coalescer().linesEmitted());
            insts += double(cu->coalescer().instructions());
        }
        return insts > 0 ? lines / insts : 0.0;
    }

  private:
    SimContext &ctx_;
    GpuParams params_;
    std::vector<std::unique_ptr<ComputeUnit>> cus_;
    unsigned cus_running_ = 0;
    std::function<void()> on_kernel_done_;
    Counter kernels_launched_;
};

} // namespace gvc

#endif // GVC_GPU_GPU_HH
