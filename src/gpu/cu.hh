/**
 * @file
 * Compute unit timing model.
 *
 * A CU holds up to max_resident_warps warp contexts and issues one warp
 * instruction per cycle, switching among ready warps (the GPU's latency
 * hiding).  Loads block the issuing warp until all of its coalesced line
 * requests complete; stores are write-through fire-and-forget, bounded by
 * a store-queue cap; scratchpad traffic occupies only the warp.  The CU
 * is event-driven: it sleeps whenever no warp is ready and is woken by
 * memory completions and compute timers.
 */

#ifndef GVC_GPU_CU_HH
#define GVC_GPU_CU_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "gpu/coalescer.hh"
#include "sim/callback.hh"
#include "gpu/warp_inst.hh"
#include "sim/sim_context.hh"

namespace gvc
{

/** Warp scheduling policies. */
enum class WarpSchedPolicy : std::uint8_t {
    kRoundRobin,       ///< Fair rotation among ready warps.
    kGreedyThenOldest, ///< Stay on the current warp until it stalls.
};

/** GPU-wide configuration (Table 1 defaults). */
struct GpuParams
{
    unsigned num_cus = 16;
    unsigned max_resident_warps = 24;
    Tick scratchpad_latency = 24;
    /** CU-wide cap on in-flight stores before issue stalls. */
    unsigned max_outstanding_stores = 64;
    WarpSchedPolicy sched = WarpSchedPolicy::kRoundRobin;
};

/**
 * The CU's window into the memory system.  Implementations are the MMU
 * designs under test (baseline physical hierarchy, virtual hierarchy,
 * ideal MMU, ...).
 */
class GpuMemInterface
{
  public:
    virtual ~GpuMemInterface() = default;

    /**
     * Issue one line-granularity request.
     * @param cu_id   Requesting CU (selects per-CU TLB / L1).
     * @param asid    Address space of the access.
     * @param line_va Line-aligned virtual address.
     * @param is_store Write-through store when true.
     * @param done    Invoked when the load data arrives / the store has
     *                been accepted by the hierarchy.
     */
    virtual void access(unsigned cu_id, Asid asid, Vaddr line_va,
                        bool is_store, Callback done) = 0;
};

/** One compute unit. */
class ComputeUnit
{
  public:
    ComputeUnit(SimContext &ctx, unsigned id, const GpuParams &params,
                GpuMemInterface &mem)
        : ctx_(ctx), id_(id), params_(params), mem_(mem),
          slots_(params.max_resident_warps)
    {
    }

    /** Queue a warp for execution in address space @p asid. */
    void
    enqueueWarp(Asid asid, std::unique_ptr<WarpStream> stream)
    {
        pending_.push_back(PendingWarp{asid, std::move(stream)});
    }

    /** Begin executing queued warps; @p on_done fires when all retire. */
    void
    start(std::function<void()> on_done)
    {
        on_done_ = std::move(on_done);
        done_reported_ = false;
        fillSlots();
        wake();
    }

    unsigned id() const { return id_; }
    Coalescer &coalescer() { return coalescer_; }
    const Coalescer &coalescer() const { return coalescer_; }
    std::uint64_t instructionsIssued() const { return issued_.value; }
    std::uint64_t memInstructions() const { return mem_insts_.value; }
    std::uint64_t scratchInstructions() const { return scratch_insts_.value; }

    bool
    idle() const
    {
        if (!pending_.empty() || total_outstanding_stores_ != 0)
            return false;
        for (const auto &s : slots_)
            if (s.st != Slot::St::kEmpty)
                return false;
        return true;
    }

    /**
     * Rebase the issue machinery on the current time (scenario kernel
     * boundary).  Setting last_issue_ = now() makes the first wake() of
     * the next kernel fire at now()+1, exactly one tick after "time
     * zero" — the same offset a fresh CU sees — and resetting the
     * scheduler cursors makes warp selection shift-invariant, so a
     * flushed warm kernel replays a cold run tick for tick.  Counters
     * are untouched.  Must only be called while the CU is idle.
     */
    void
    resetIssueState()
    {
        rr_next_ = 0;
        greedy_current_ = 0;
        assign_counter_ = 0;
        last_issue_ = ctx_.now();
    }

  private:
    struct PendingWarp
    {
        Asid asid;
        std::unique_ptr<WarpStream> stream;
    };

    struct Slot
    {
        enum class St : std::uint8_t {
            kEmpty,
            kReady,
            kWaitMem,
            kAtBarrier,
            kDraining, ///< Stream exhausted; waiting for outstanding ops.
        };

        std::unique_ptr<WarpStream> stream;
        Asid asid = 0;
        St st = St::kEmpty;
        Tick ready_at = 0;
        unsigned outstanding_loads = 0;
        unsigned outstanding_stores = 0;
        std::uint64_t assign_seq = 0; ///< Age for oldest-first policies.
    };

    /** Move pending warps into free slots (not during a barrier). */
    void
    fillSlots()
    {
        if (barrier_waiters_ > 0)
            return;
        for (auto &s : slots_) {
            if (pending_.empty())
                break;
            if (s.st != Slot::St::kEmpty)
                continue;
            s.stream = std::move(pending_.front().stream);
            s.asid = pending_.front().asid;
            pending_.pop_front();
            s.st = Slot::St::kReady;
            s.ready_at = ctx_.now();
            s.outstanding_loads = 0;
            s.outstanding_stores = 0;
            s.assign_seq = ++assign_counter_;
        }
    }

    /** Request an issue attempt as soon as permissible. */
    void
    wake()
    {
        if (issue_pending_)
            return;
        issue_pending_ = true;
        const Tick at = ctx_.now() > last_issue_ ? ctx_.now()
                                                 : last_issue_ + 1;
        ctx_.eq.schedule(at, [this] {
            issue_pending_ = false;
            tryIssue();
        });
    }

    /** Pick the next warp to issue per the configured policy. */
    Slot *
    selectWarp(Tick now)
    {
        const unsigned n = unsigned(slots_.size());
        if (params_.sched == WarpSchedPolicy::kGreedyThenOldest) {
            // Greedy: stick with the last warp while it is ready.
            Slot &last = slots_[greedy_current_ % n];
            if (last.st == Slot::St::kReady && last.ready_at <= now)
                return &last;
            // Then oldest: the ready warp assigned earliest.
            Slot *oldest = nullptr;
            for (auto &s : slots_) {
                if (s.st == Slot::St::kReady && s.ready_at <= now &&
                    (!oldest || s.assign_seq < oldest->assign_seq)) {
                    oldest = &s;
                }
            }
            if (oldest) {
                greedy_current_ =
                    unsigned(oldest - slots_.data());
            }
            return oldest;
        }
        for (unsigned i = 0; i < n; ++i) {
            const unsigned idx = (rr_next_ + i) % n;
            Slot &s = slots_[idx];
            if (s.st == Slot::St::kReady && s.ready_at <= now) {
                rr_next_ = (idx + 1) % n;
                return &s;
            }
        }
        return nullptr;
    }

    void
    tryIssue()
    {
        if (store_stalled_())
            return; // store completion will wake us
        const Tick now = ctx_.now();
        if (Slot *s = selectWarp(now)) {
            issue(*s);
            last_issue_ = now;
            if (anyIssuableSoon())
                wake();
            return;
        }
        // Nothing issuable now: arm a timer for the nearest compute
        // completion; memory completions wake us on their own.
        Tick next = ~Tick{0};
        for (const auto &s : slots_)
            if (s.st == Slot::St::kReady && s.ready_at > now)
                next = std::min(next, s.ready_at);
        if (next != ~Tick{0})
            ctx_.eq.schedule(next, [this] { wake(); });
        else
            maybeReportDone();
    }

    bool
    anyIssuableSoon() const
    {
        for (const auto &s : slots_)
            if (s.st == Slot::St::kReady)
                return true;
        return false;
    }

    bool
    store_stalled_() const
    {
        return total_outstanding_stores_ >= params_.max_outstanding_stores;
    }

    void
    issue(Slot &s)
    {
        // Reused across issues: WarpStream::next assigns into the
        // buffer, so lane_addrs' capacity is allocated once per CU
        // instead of once per instruction.
        WarpInst &inst = inst_buf_;
        if (!s.stream->next(inst)) {
            beginDrain(s);
            return;
        }
        ++issued_;
        switch (inst.op) {
          case WarpOp::kCompute:
            s.ready_at = ctx_.now() + inst.cycles;
            break;
          case WarpOp::kScratchLoad:
          case WarpOp::kScratchStore:
            ++scratch_insts_;
            s.ready_at = ctx_.now() + params_.scratchpad_latency;
            break;
          case WarpOp::kBarrier:
            s.st = Slot::St::kAtBarrier;
            ++barrier_waiters_;
            checkBarrierRelease();
            return;
          case WarpOp::kLoad:
            issueGlobal(s, inst, /*is_store=*/false);
            return;
          case WarpOp::kStore:
            issueGlobal(s, inst, /*is_store=*/true);
            return;
        }
    }

    void
    issueGlobal(Slot &s, const WarpInst &inst, bool is_store)
    {
        ++mem_insts_;
        // Reference into the coalescer's scratch: valid because nothing
        // below re-enters coalesce() — mem_.access completions arrive
        // through the event queue, never synchronously.
        const auto &lines = coalescer_.coalesce(inst.lane_addrs.data(),
                                                inst.lane_addrs.size());
        if (lines.empty()) {
            s.ready_at = ctx_.now() + 1;
            return;
        }
        if (is_store) {
            s.outstanding_stores += unsigned(lines.size());
            total_outstanding_stores_ += unsigned(lines.size());
            Slot *slot = &s;
            for (const Vaddr line : lines) {
                mem_.access(id_, s.asid, line, true, [this, slot] {
                    storeComplete(*slot);
                });
            }
            s.ready_at = ctx_.now() + 1; // stores do not block the warp
        } else {
            s.st = Slot::St::kWaitMem;
            s.outstanding_loads += unsigned(lines.size());
            Slot *slot = &s;
            for (const Vaddr line : lines) {
                mem_.access(id_, s.asid, line, false, [this, slot] {
                    loadComplete(*slot);
                });
            }
        }
    }

    void
    loadComplete(Slot &s)
    {
        if (--s.outstanding_loads == 0) {
            if (s.st == Slot::St::kWaitMem) {
                s.st = Slot::St::kReady;
                s.ready_at = ctx_.now() + 1;
            } else if (s.st == Slot::St::kDraining) {
                finishDrainIfIdle(s);
            }
            wake();
        }
    }

    void
    storeComplete(Slot &s)
    {
        --s.outstanding_stores;
        --total_outstanding_stores_;
        if (s.st == Slot::St::kDraining)
            finishDrainIfIdle(s);
        wake();
    }

    void
    beginDrain(Slot &s)
    {
        s.st = Slot::St::kDraining;
        finishDrainIfIdle(s);
        checkBarrierRelease();
    }

    void
    finishDrainIfIdle(Slot &s)
    {
        if (s.outstanding_loads == 0 && s.outstanding_stores == 0) {
            s.st = Slot::St::kEmpty;
            s.stream.reset();
            fillSlots();
            checkBarrierRelease();
            maybeReportDone();
            wake();
        }
    }

    void
    checkBarrierRelease()
    {
        if (barrier_waiters_ == 0)
            return;
        unsigned resident = 0;
        for (const auto &s : slots_)
            if (s.st != Slot::St::kEmpty && s.st != Slot::St::kDraining)
                ++resident;
        if (resident != barrier_waiters_)
            return;
        for (auto &s : slots_) {
            if (s.st == Slot::St::kAtBarrier) {
                s.st = Slot::St::kReady;
                s.ready_at = ctx_.now() + 1;
            }
        }
        barrier_waiters_ = 0;
        fillSlots();
        wake();
    }

    void
    maybeReportDone()
    {
        if (done_reported_ || !on_done_ || !idle())
            return;
        done_reported_ = true;
        on_done_();
    }

    SimContext &ctx_;
    unsigned id_;
    GpuParams params_;
    GpuMemInterface &mem_;

    std::vector<Slot> slots_;
    std::deque<PendingWarp> pending_;
    unsigned rr_next_ = 0;
    unsigned greedy_current_ = 0;
    std::uint64_t assign_counter_ = 0;
    unsigned barrier_waiters_ = 0;
    unsigned total_outstanding_stores_ = 0;
    bool issue_pending_ = false;
    bool done_reported_ = false;
    Tick last_issue_ = 0;
    std::function<void()> on_done_;

    WarpInst inst_buf_; ///< Issue-loop scratch; see issue().
    Coalescer coalescer_;
    Counter issued_;
    Counter mem_insts_;
    Counter scratch_insts_;
};

} // namespace gvc

#endif // GVC_GPU_CU_HH
