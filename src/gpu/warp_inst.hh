/**
 * @file
 * Warp-level instruction records emitted by workload kernels.
 *
 * Workloads are expressed as per-warp instruction streams at the
 * granularity that matters for the memory system: compute delays, global
 * memory scatter/gather with per-lane virtual addresses, scratchpad
 * traffic (which bypasses translation entirely), and barriers.
 */

#ifndef GVC_GPU_WARP_INST_HH
#define GVC_GPU_WARP_INST_HH

#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace gvc
{

/** Number of SIMD lanes per compute unit (Table 1: 32). */
inline constexpr unsigned kWarpLanes = 32;

/** Kinds of warp instructions the timing model distinguishes. */
enum class WarpOp : std::uint8_t {
    kCompute,    ///< Occupy the warp for N cycles, no memory traffic.
    kLoad,       ///< Global-memory gather: per-lane virtual addresses.
    kStore,      ///< Global-memory scatter: per-lane virtual addresses.
    kScratchLoad,  ///< Scratchpad read: no TLB, no caches.
    kScratchStore, ///< Scratchpad write: no TLB, no caches.
    kBarrier,    ///< Wait for all resident warps of the CU.
};

/** One warp instruction. */
struct WarpInst
{
    WarpOp op = WarpOp::kCompute;
    /** Compute latency for kCompute. */
    std::uint32_t cycles = 1;
    /** Active-lane virtual addresses for loads/stores (<= kWarpLanes). */
    std::vector<Vaddr> lane_addrs;

    static WarpInst
    compute(std::uint32_t cycles)
    {
        WarpInst w;
        w.op = WarpOp::kCompute;
        w.cycles = cycles;
        return w;
    }

    static WarpInst
    load(std::vector<Vaddr> addrs)
    {
        WarpInst w;
        w.op = WarpOp::kLoad;
        w.lane_addrs = std::move(addrs);
        return w;
    }

    static WarpInst
    store(std::vector<Vaddr> addrs)
    {
        WarpInst w;
        w.op = WarpOp::kStore;
        w.lane_addrs = std::move(addrs);
        return w;
    }

    static WarpInst
    scratch(bool is_store, unsigned lanes = kWarpLanes)
    {
        WarpInst w;
        w.op = is_store ? WarpOp::kScratchStore : WarpOp::kScratchLoad;
        w.cycles = lanes;
        return w;
    }

    static WarpInst
    barrier()
    {
        WarpInst w;
        w.op = WarpOp::kBarrier;
        return w;
    }

    bool
    isGlobalMem() const
    {
        return op == WarpOp::kLoad || op == WarpOp::kStore;
    }
};

/**
 * A lazily-generated stream of warp instructions.  Kernels implement this
 * so traces never need to be fully materialized.
 */
class WarpStream
{
  public:
    virtual ~WarpStream() = default;

    /**
     * Produce the next instruction; false at end of stream.
     *
     * Implementations fill @p out in place via assignInto() so a caller
     * that reuses one WarpInst across calls pays no per-instruction
     * allocation once `out.lane_addrs` has warmed up to kWarpLanes
     * capacity (the CU issue loop does exactly this).
     */
    virtual bool next(WarpInst &out) = 0;

  protected:
    /** Copy @p src into @p out, reusing out.lane_addrs' capacity. */
    static void
    assignInto(WarpInst &out, const WarpInst &src)
    {
        out.op = src.op;
        out.cycles = src.cycles;
        out.lane_addrs.assign(src.lane_addrs.begin(),
                              src.lane_addrs.end());
    }
};

/** A WarpStream over a pre-built instruction vector (tests, replay). */
class VectorWarpStream final : public WarpStream
{
  public:
    explicit VectorWarpStream(std::vector<WarpInst> insts)
        : insts_(std::move(insts))
    {
    }

    bool
    next(WarpInst &out) override
    {
        if (pos_ >= insts_.size())
            return false;
        assignInto(out, insts_[pos_++]);
        return true;
    }

  private:
    std::vector<WarpInst> insts_;
    std::size_t pos_ = 0;
};

} // namespace gvc

#endif // GVC_GPU_WARP_INST_HH
