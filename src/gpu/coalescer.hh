/**
 * @file
 * Memory coalescer: reduces a warp's per-lane addresses to the minimum
 * set of 128 B line requests, preserving first-touch order.  Divergence
 * statistics (distinct lines and distinct pages per instruction) drive
 * the paper's analysis of scatter/gather pressure.
 */

#ifndef GVC_GPU_COALESCER_HH
#define GVC_GPU_COALESCER_HH

#include <algorithm>
#include <cstdint>
#include <vector>

#include "gpu/warp_inst.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace gvc
{

/** Stateless coalescing plus running divergence statistics. */
class Coalescer
{
  public:
    /**
     * Coalesce the batch of @p n lane addresses at @p lane_addrs into
     * unique line-aligned addresses, first occurrence first.  Also
     * updates divergence statistics.
     *
     * The returned reference aliases internal scratch storage: it stays
     * valid only until the next coalesce() call and must not be retained
     * across one.
     */
    const std::vector<Vaddr> &
    coalesce(const Vaddr *lane_addrs, std::size_t n)
    {
        scratch_.clear();
        for (std::size_t i = 0; i < n; ++i) {
            const Vaddr line = lineAlign(lane_addrs[i]);
            // Adjacent lanes usually touch the same line; checking the
            // most recent emission first short-circuits the common case.
            if (!scratch_.empty() && scratch_.back() == line)
                continue;
            if (std::find(scratch_.begin(), scratch_.end(), line) ==
                scratch_.end()) {
                scratch_.push_back(line);
            }
        }
        ++instructions_;
        lines_ += scratch_.size();
        lines_per_inst_.sample(double(scratch_.size()));

        pages_scratch_.clear();
        for (const Vaddr line : scratch_) {
            const Vpn vpn = pageOf(line);
            if (!pages_scratch_.empty() && pages_scratch_.back() == vpn)
                continue;
            if (std::find(pages_scratch_.begin(), pages_scratch_.end(),
                          vpn) == pages_scratch_.end()) {
                pages_scratch_.push_back(vpn);
            }
        }
        pages_per_inst_.sample(double(pages_scratch_.size()));
        return scratch_;
    }

    /** Overload for callers holding a vector. */
    const std::vector<Vaddr> &
    coalesce(const std::vector<Vaddr> &lane_addrs)
    {
        return coalesce(lane_addrs.data(), lane_addrs.size());
    }

    std::uint64_t instructions() const { return instructions_.value; }
    std::uint64_t linesEmitted() const { return lines_.value; }

    /** Mean distinct lines per memory instruction (paper: fw ≈ 9.3). */
    double meanLinesPerInst() const { return lines_per_inst_.mean(); }
    /** Mean distinct 4 KB pages per memory instruction. */
    double meanPagesPerInst() const { return pages_per_inst_.mean(); }

  private:
    std::vector<Vaddr> scratch_;
    std::vector<Vpn> pages_scratch_;
    Counter instructions_;
    Counter lines_;
    Distribution lines_per_inst_;
    Distribution pages_per_inst_;
};

} // namespace gvc

#endif // GVC_GPU_COALESCER_HH
