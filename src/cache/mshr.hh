/**
 * @file
 * Miss-status holding registers: merge concurrent misses to the same
 * line so only the primary miss issues a fill; secondaries are woken when
 * the fill completes.
 */

#ifndef GVC_CACHE_MSHR_HH
#define GVC_CACHE_MSHR_HH

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sim/callback.hh"
#include "sim/stats.hh"

namespace gvc
{

/**
 * MSHR table keyed by an opaque 64-bit line key (callers fold ASID /
 * address space into the key).  Unlimited capacity by default; a finite
 * limit can be configured, in which case allocation failure is reported
 * and the caller must retry (GPUs stall the pipe).
 */
class MshrTable
{
  public:
    using WakeFn = Callback;

    explicit MshrTable(std::size_t max_entries = 0)
        : max_entries_(max_entries)
    {
    }

    /** Allocation outcome. */
    enum class Result {
        kPrimary,   ///< New entry: the caller must issue the fill.
        kSecondary, ///< Merged: the callback fires on fill completion.
        kFull,      ///< No entry available; retry later.
    };

    /**
     * Try to allocate/merge a miss on @p key.  For kSecondary, @p on_fill
     * is consumed (queued); for kPrimary/kFull it is left untouched in
     * the caller's hands (the primary drives its own completion and may
     * re-offer the same callback as a secondary).
     */
    Result
    allocate(std::uint64_t key, WakeFn &&on_fill)
    {
        auto it = entries_.find(key);
        if (it != entries_.end()) {
            ++merged_;
            it->second.push_back(std::move(on_fill));
            return Result::kSecondary;
        }
        if (max_entries_ && entries_.size() >= max_entries_) {
            ++rejected_;
            return Result::kFull;
        }
        ++allocated_;
        entries_.emplace(key, std::vector<WakeFn>{});
        return Result::kPrimary;
    }

    /** True if a miss on @p key is already outstanding. */
    bool outstanding(std::uint64_t key) const
    {
        return entries_.count(key) != 0;
    }

    /**
     * Complete the fill for @p key: removes the entry and runs all merged
     * waiters (in merge order).
     */
    void
    complete(std::uint64_t key)
    {
        auto it = entries_.find(key);
        if (it == entries_.end())
            return;
        auto waiters = std::move(it->second);
        entries_.erase(it);
        for (auto &w : waiters)
            w();
    }

    std::size_t inFlight() const { return entries_.size(); }
    std::uint64_t allocations() const { return allocated_.value; }
    std::uint64_t merges() const { return merged_.value; }
    std::uint64_t rejections() const { return rejected_.value; }

  private:
    std::size_t max_entries_;
    std::unordered_map<std::uint64_t, std::vector<WakeFn>> entries_;
    Counter allocated_;
    Counter merged_;
    Counter rejected_;
};

} // namespace gvc

#endif // GVC_CACHE_MSHR_HH
