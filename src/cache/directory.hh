/**
 * @file
 * Coherence directory between the GPU cache hierarchy and the CPU side
 * (Figures 1 and 6 of the paper place it next to the IOMMU).
 *
 * A lightweight MSI-style protocol over two nodes (the GPU's shared L2
 * and the CPU cluster): the directory tracks, per line, which node
 * holds it and whether it may be dirty, probes the other node on
 * conflicting requests, and moves data over the DRAM channel.  GPU L2
 * evictions are silent (as in real GPUs), so the directory's sharer
 * information is conservative — stale probes to the GPU are exactly
 * what the backward table filters (§4.1).
 */

#ifndef GVC_CACHE_DIRECTORY_HH
#define GVC_CACHE_DIRECTORY_HH

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "mem/dram.hh"
#include "sim/callback.hh"
#include "sim/debug.hh"
#include "sim/sim_context.hh"
#include "sim/types.hh"

namespace gvc
{

/** The two coherence endpoints. */
enum class DirNode : std::uint8_t { kGpu = 0, kCpu = 1 };

/** Outcome a probe sink reports back to the directory. */
struct ProbeOutcome
{
    bool had_line = false;
    bool was_dirty = false;
};

/** Directory configuration. */
struct DirectoryParams
{
    Tick latency = 30; ///< Directory occupancy per request.
};

/** The directory. */
class Directory
{
  public:
    using Params = DirectoryParams;

    /** Probe sink: (physical line, invalidate) -> what the node held. */
    using ProbeSink = std::function<ProbeOutcome(Paddr, bool)>;

    Directory(SimContext &ctx, Dram &dram, Params params = {})
        : ctx_(ctx), dram_(dram), params_(params)
    {
    }

    /** Register the probe sink of one node. */
    void
    setProbeSink(DirNode node, ProbeSink sink)
    {
        sinks_[index(node)] = std::move(sink);
    }

    /**
     * Fetch @p line for @p requester; @p exclusive for stores.  The
     * other node is probed (invalidated) when it may hold a
     * conflicting copy; @p done fires when the data is available.
     */
    void
    fetch(DirNode requester, Paddr line, bool exclusive,
          Callback done)
    {
        ++fetches_;
        ctx_.eq.scheduleIn(params_.latency,
                           [this, requester, line, exclusive,
                            done = std::move(done)]() mutable {
                               fetchAtDirectory(requester, line,
                                                exclusive,
                                                std::move(done));
                           });
    }

    /** Explicit writeback of a dirty line from @p node. */
    void
    writeback(DirNode node, Paddr line)
    {
        ++writebacks_;
        Entry &e = entries_[lineKey(line)];
        const unsigned bit = 1u << index(node);
        e.sharers &= std::uint8_t(~bit);
        if (e.owner == node)
            e.dirty = false;
        dram_.access(kLineSize, [] {});
    }

    std::uint64_t fetches() const { return fetches_.value; }
    std::uint64_t probesSent() const { return probes_sent_.value; }
    std::uint64_t probeWritebacks() const
    {
        return probe_writebacks_.value;
    }
    std::uint64_t writebacks() const { return writebacks_.value; }

    /** Lines with directory state (tests). */
    std::size_t trackedLines() const { return entries_.size(); }

    /** Current sharer mask of a line (tests). */
    unsigned
    sharersOf(Paddr line) const
    {
        auto it = entries_.find(lineKey(line));
        return it == entries_.end() ? 0u : it->second.sharers;
    }

  private:
    struct Entry
    {
        std::uint8_t sharers = 0; ///< Bit per node (conservative).
        DirNode owner = DirNode::kGpu;
        bool dirty = false;
    };

    static unsigned index(DirNode n) { return unsigned(n); }

    static std::uint64_t
    lineKey(Paddr line)
    {
        return line >> kLineShift;
    }

    void
    fetchAtDirectory(DirNode requester, Paddr line, bool exclusive,
                     Callback done)
    {
        Entry &e = entries_[lineKey(line)];
        const DirNode other = requester == DirNode::kGpu
                                  ? DirNode::kCpu
                                  : DirNode::kGpu;
        const unsigned other_bit = 1u << index(other);

        // Probe the other node when it may hold a conflicting copy:
        // always for exclusive requests, or when it may own it dirty.
        const bool conflict =
            (e.sharers & other_bit) &&
            (exclusive || (e.dirty && e.owner == other));
        if (conflict) {
            ++probes_sent_;
            GVC_DPRINTF(kDirectory, ctx_.now(),
                        "probe node=%u line=%#llx", index(other),
                        (unsigned long long)line);
            ProbeOutcome out;
            if (sinks_[index(other)])
                out = sinks_[index(other)](line, /*invalidate=*/true);
            e.sharers &= std::uint8_t(~other_bit);
            if (out.was_dirty) {
                // The probe recovered dirty data: write it back first.
                ++probe_writebacks_;
                dram_.access(kLineSize, [] {});
            }
        }

        e.sharers |= std::uint8_t(1u << index(requester));
        if (exclusive) {
            e.owner = requester;
            e.dirty = true;
        }

        // Data always moves over the memory channel (dance-hall SoC:
        // no direct cache-to-cache path between CPU and GPU).
        dram_.access(kLineSize, std::move(done));
    }

    SimContext &ctx_;
    Dram &dram_;
    Params params_;
    ProbeSink sinks_[2];
    std::unordered_map<std::uint64_t, Entry> entries_;
    Counter fetches_;
    Counter probes_sent_;
    Counter probe_writebacks_;
    Counter writebacks_;
};

} // namespace gvc

#endif // GVC_CACHE_DIRECTORY_HH
