/**
 * @file
 * Generic set-associative cache array with true-LRU replacement.
 *
 * The same array backs physical caches (tag = physical line address) and
 * virtual caches (tag = virtual line address + ASID, with per-line
 * permissions, as required by the paper's design).  Timing lives in the
 * hierarchy controllers; this class is the functional state plus
 * statistics and lifetime tracking (Figure 12).
 */

#ifndef GVC_CACHE_CACHE_ARRAY_HH
#define GVC_CACHE_CACHE_ARRAY_HH

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "sim/logging.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace gvc
{

/** Cache geometry and policy configuration. */
struct CacheParams
{
    std::uint64_t size_bytes = 32 * 1024;
    unsigned assoc = 8;
    unsigned line_bytes = unsigned(kLineSize);
    /** Write-back (true) or write-through (false). */
    bool write_back = false;
    /** Allocate on write miss. */
    bool write_allocate = false;
    /** Record per-line active lifetimes (insert -> last access). */
    bool track_lifetimes = false;
};

/** Metadata of a resident line, returned on eviction. */
struct CacheLineInfo
{
    Asid asid = 0;
    std::uint64_t line_addr = kInvalidAddr; ///< Line-aligned tag address.
    Perms perms = kPermNone;
    bool dirty = false;
};

/**
 * The array.  Addresses are line-aligned by callers' convention but the
 * array aligns defensively.  ASID participates in tag match only (not in
 * indexing), which is what the paper's ASID-extended virtual tags do.
 */
class CacheArray
{
  public:
    explicit CacheArray(const CacheParams &params)
        : params_(params)
    {
        const std::uint64_t lines = params.size_bytes / params.line_bytes;
        if (lines == 0)
            fatal("CacheArray: size smaller than one line");
        unsigned assoc = params.assoc ? params.assoc : 1;
        if (assoc > lines)
            assoc = unsigned(lines);
        num_sets_ = std::size_t(lines / assoc);
        assoc_ = unsigned(lines / num_sets_);
        lines_.resize(num_sets_ * assoc_);
        set_len_.assign(num_sets_, 0);
    }

    /**
     * Access a line.  On hit, recency (and dirtiness for write-back
     * writes) are updated.  Write-through writes never dirty the line.
     * @return true on hit.
     */
    bool
    access(Asid asid, std::uint64_t addr, bool is_write, Tick now)
    {
        ++accesses_;
        if (is_write)
            ++writes_;
        Line *line = find(asid, lineKey(addr));
        if (!line) {
            ++misses_;
            return false;
        }
        ++hits_;
        line->last_used = now;
        line->lru = ++lru_clock_;
        if (is_write && params_.write_back)
            line->dirty = true;
        return true;
    }

    /** Side-effect-free presence probe (Figure 2 classification). */
    bool
    present(Asid asid, std::uint64_t addr) const
    {
        const std::uint64_t key = lineKey(addr);
        const std::size_t set = setIndex(key);
        const Line *base = setBase(set);
        for (unsigned i = 0; i < set_len_[set]; ++i)
            if (base[i].valid && base[i].asid == asid &&
                base[i].key == key)
                return true;
        return false;
    }

    /** Permissions of a resident line (virtual caches check these). */
    std::optional<Perms>
    linePerms(Asid asid, std::uint64_t addr) const
    {
        const std::uint64_t key = lineKey(addr);
        const std::size_t set = setIndex(key);
        const Line *base = setBase(set);
        for (unsigned i = 0; i < set_len_[set]; ++i)
            if (base[i].valid && base[i].asid == asid &&
                base[i].key == key)
                return base[i].perms;
        return std::nullopt;
    }

    /**
     * Install a line, evicting the LRU way if needed.
     * @return metadata of the displaced line, if any (for writebacks and
     *         FBT bit-vector maintenance).
     */
    std::optional<CacheLineInfo>
    insert(Asid asid, std::uint64_t addr, Perms perms, bool dirty,
           Tick now)
    {
        ++fills_;
        const std::uint64_t key = lineKey(addr);
        const std::size_t set = setIndex(key);
        Line *base = setBase(set);
        const unsigned len = set_len_[set];
        // Single pass: the hit scan also notes the first invalid way so
        // the miss path below needs no second walk.
        unsigned free_way = len;
        for (unsigned i = 0; i < len; ++i) {
            Line &l = base[i];
            if (!l.valid) {
                if (free_way == len)
                    free_way = i;
                continue;
            }
            if (l.asid == asid && l.key == key) {
                l.perms = perms;
                l.dirty = l.dirty || dirty;
                l.lru = ++lru_clock_;
                l.last_used = now;
                return std::nullopt;
            }
        }
        Line fresh;
        fresh.valid = true;
        fresh.asid = asid;
        fresh.key = key;
        fresh.perms = perms;
        fresh.dirty = dirty;
        fresh.inserted = now;
        fresh.last_used = now;
        fresh.lru = ++lru_clock_;

        // Reuse a way freed by invalidation before displacing anyone.
        if (free_way < len) {
            base[free_way] = fresh;
            return std::nullopt;
        }
        if (len < assoc_) {
            base[len] = fresh;
            ++set_len_[set];
            return std::nullopt;
        }
        unsigned victim = 0;
        for (unsigned i = 1; i < len; ++i)
            if (base[i].lru < base[victim].lru)
                victim = i;
        const auto evicted = retire(base[victim]);
        base[victim] = fresh;
        ++evictions_;
        return evicted;
    }

    /** Invalidate one line.  @return its metadata if it was present. */
    std::optional<CacheLineInfo>
    invalidateLine(Asid asid, std::uint64_t addr)
    {
        const std::uint64_t key = lineKey(addr);
        const std::size_t set = setIndex(key);
        Line *base = setBase(set);
        for (unsigned i = 0; i < set_len_[set]; ++i) {
            Line &l = base[i];
            if (l.valid && l.asid == asid && l.key == key) {
                const auto info = retire(l);
                l.valid = false;
                ++invalidations_;
                return info;
            }
        }
        return std::nullopt;
    }

    /**
     * Invalidate every line belonging to one 4 KB page of one address
     * space.  @p on_evict receives each line (writeback decisions).
     * @return number of lines invalidated.
     */
    unsigned
    invalidatePage(Asid asid, std::uint64_t page_base_addr,
                   const std::function<void(const CacheLineInfo &)>
                       &on_evict = {})
    {
        unsigned count = 0;
        for (unsigned i = 0; i < kLinesPerPage; ++i) {
            const std::uint64_t addr =
                page_base_addr + std::uint64_t(i) * params_.line_bytes;
            if (auto info = invalidateLine(asid, addr)) {
                ++count;
                if (on_evict)
                    on_evict(*info);
            }
        }
        return count;
    }

    /**
     * Invalidate every line belonging to one address space (per-ASID
     * shootdown); @p on_evict sees each dropped line.
     * @return number of lines invalidated.
     */
    unsigned
    invalidateAsid(Asid asid,
                   const std::function<void(const CacheLineInfo &)>
                       &on_evict = {})
    {
        unsigned count = 0;
        for (std::size_t set = 0; set < num_sets_; ++set) {
            Line *base = setBase(set);
            for (unsigned i = 0; i < set_len_[set]; ++i) {
                Line &l = base[i];
                if (!l.valid || l.asid != asid)
                    continue;
                const auto info = retire(l);
                l.valid = false;
                ++invalidations_;
                ++count;
                if (on_evict && info)
                    on_evict(*info);
            }
        }
        return count;
    }

    /** Invalidate the entire array; @p on_evict sees every line. */
    void
    invalidateAll(const std::function<void(const CacheLineInfo &)>
                      &on_evict = {})
    {
        for (std::size_t set = 0; set < num_sets_; ++set) {
            Line *base = setBase(set);
            for (unsigned i = 0; i < set_len_[set]; ++i) {
                Line &l = base[i];
                if (!l.valid)
                    continue;
                const auto info = retire(l);
                l.valid = false;
                ++invalidations_;
                if (on_evict && info)
                    on_evict(*info);
            }
            set_len_[set] = 0;
        }
    }

    /** Visit every resident line (tests, end-of-run lifetime flush). */
    void
    forEachLine(const std::function<void(const CacheLineInfo &)> &fn) const
    {
        for (std::size_t set = 0; set < num_sets_; ++set) {
            const Line *base = setBase(set);
            for (unsigned i = 0; i < set_len_[set]; ++i) {
                const Line &l = base[i];
                if (l.valid)
                    fn(CacheLineInfo{l.asid, unKey(l.key), l.perms,
                                     l.dirty});
            }
        }
    }

    /** Record lifetimes of still-resident lines (simulation end). */
    void
    flushLifetimes()
    {
        if (!params_.track_lifetimes)
            return;
        for (std::size_t set = 0; set < num_sets_; ++set) {
            const Line *base = setBase(set);
            for (unsigned i = 0; i < set_len_[set]; ++i)
                if (base[i].valid && base[i].last_used > base[i].inserted)
                    lifetimes_.record(base[i].last_used -
                                      base[i].inserted);
        }
    }

    std::uint64_t accesses() const { return accesses_.value; }
    std::uint64_t hits() const { return hits_.value; }
    std::uint64_t misses() const { return misses_.value; }
    std::uint64_t fills() const { return fills_.value; }
    std::uint64_t evictions() const { return evictions_.value; }
    std::uint64_t invalidations() const { return invalidations_.value; }

    double
    hitRatio() const
    {
        return accesses_.value
            ? double(hits_.value) / double(accesses_.value)
            : 0.0;
    }

    const LifetimeRecorder &lifetimes() const { return lifetimes_; }
    std::size_t numSets() const { return num_sets_; }
    unsigned assoc() const { return assoc_; }
    unsigned lineBytes() const { return params_.line_bytes; }

    std::size_t
    residentLines() const
    {
        std::size_t n = 0;
        for (std::size_t set = 0; set < num_sets_; ++set) {
            const Line *base = setBase(set);
            for (unsigned i = 0; i < set_len_[set]; ++i)
                n += base[i].valid ? 1 : 0;
        }
        return n;
    }

  private:
    struct Line
    {
        bool valid = false;
        Asid asid = 0;
        std::uint64_t key = 0; ///< addr >> line shift.
        Perms perms = kPermNone;
        bool dirty = false;
        Tick inserted = 0;
        Tick last_used = 0;
        std::uint64_t lru = 0;
    };

    std::uint64_t
    lineKey(std::uint64_t addr) const
    {
        return addr / params_.line_bytes;
    }

    std::uint64_t
    unKey(std::uint64_t key) const
    {
        return key * params_.line_bytes;
    }

    std::size_t setIndex(std::uint64_t key) const { return key % num_sets_; }

    Line *setBase(std::size_t set) { return lines_.data() + set * assoc_; }
    const Line *
    setBase(std::size_t set) const
    {
        return lines_.data() + set * assoc_;
    }

    Line *
    find(Asid asid, std::uint64_t key)
    {
        const std::size_t set = setIndex(key);
        Line *base = setBase(set);
        for (unsigned i = 0; i < set_len_[set]; ++i)
            if (base[i].valid && base[i].asid == asid &&
                base[i].key == key)
                return &base[i];
        return nullptr;
    }

    /** Common retirement bookkeeping; returns the line's metadata. */
    std::optional<CacheLineInfo>
    retire(const Line &l)
    {
        if (params_.track_lifetimes && l.last_used > l.inserted)
            lifetimes_.record(l.last_used - l.inserted);
        return CacheLineInfo{l.asid, unKey(l.key), l.perms, l.dirty};
    }

    CacheParams params_;
    std::size_t num_sets_ = 1;
    unsigned assoc_ = 1;
    /// Flat num_sets x assoc way storage: one contiguous block instead
    /// of a heap vector per set, so a set scan is a single cache-friendly
    /// stride.  set_len_ mirrors the old per-set vector's growth: ways
    /// [0, set_len_) have been populated at least once.
    std::vector<Line> lines_;
    std::vector<std::uint16_t> set_len_;
    std::uint64_t lru_clock_ = 0;

    Counter accesses_;
    Counter writes_;
    Counter hits_;
    Counter misses_;
    Counter fills_;
    Counter evictions_;
    Counter invalidations_;
    LifetimeRecorder lifetimes_;
};

} // namespace gvc

#endif // GVC_CACHE_CACHE_ARRAY_HH
