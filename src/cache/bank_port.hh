/**
 * @file
 * Rate-limited bank port: models per-bank throughput of the shared L2
 * (Table 1: 8 banks) and any other structure serving at a fixed rate.
 * Occupancy is tracked in fixed point so fractional service intervals
 * accumulate exactly; the busy time a request observes is its queueing
 * delay.
 */

#ifndef GVC_CACHE_BANK_PORT_HH
#define GVC_CACHE_BANK_PORT_HH

#include <cstdint>

#include "sim/stats.hh"
#include "sim/types.hh"

namespace gvc
{

/** A single server with a fixed service rate (accesses per cycle). */
class BankPort
{
  public:
    explicit BankPort(double accesses_per_cycle = 1.0)
        : fp_per_access_(std::uint64_t(double(kFpScale) /
                                       accesses_per_cycle))
    {
    }

    /**
     * Claim the port for one access arriving at @p now.
     * @return the tick at which service begins (>= now).
     */
    Tick
    acquire(Tick now)
    {
        ++accesses_;
        const std::uint64_t now_fp = now * kFpScale;
        const std::uint64_t start_fp =
            free_fp_ > now_fp ? free_fp_ : now_fp;
        free_fp_ = start_fp + fp_per_access_;
        const Tick start = start_fp / kFpScale;
        wait_sum_ += start - now;
        return start;
    }

    std::uint64_t accesses() const { return accesses_.value; }

    double
    meanWait() const
    {
        return accesses_.value
            ? double(wait_sum_.value) / double(accesses_.value)
            : 0.0;
    }

  private:
    static constexpr std::uint64_t kFpScale = 1024;

    std::uint64_t fp_per_access_;
    std::uint64_t free_fp_ = 0;
    Counter accesses_;
    Counter wait_sum_;
};

} // namespace gvc

#endif // GVC_CACHE_BANK_PORT_HH
