/**
 * @file
 * Shared command-line helpers for the gvc_* tools.
 *
 * Three things the drivers used to duplicate (and get subtly wrong)
 * live here once:
 *
 *  - **Checked numeric parsing.**  parseU64/parseUnsigned/parseDouble
 *    fatal() with the offending flag and value instead of atoi()'s
 *    silent 0 or strtoull()'s unsigned wrap-around of "-4".
 *  - **Design-name parsing.**  One canonical spelling table accepting
 *    the gvc_run hyphen forms (vc-opt) and the gvc_sweep underscore /
 *    concatenated forms (vc_opt, baseline512) case-insensitively.
 *  - **Raw-mode design-intent carry-over.**  Raw mode (`cfg.raw_soc`)
 *    skips configFor(), so flags like `--percu-tlb 64` would otherwise
 *    erase what makes each design itself; applyRawDesignIntent()
 *    restores the design's structural identity for every field the
 *    user did not set explicitly.
 */

#ifndef GVC_HARNESS_CLI_HH
#define GVC_HARNESS_CLI_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "harness/runner.hh"

namespace gvc
{

/**
 * Parse @p text as a base-10 non-negative integer; fatal() naming
 * @p flag on anything else (sign, trailing characters, overflow).
 */
std::uint64_t parseU64(const char *flag, const std::string &text);

/** parseU64() restricted to unsigned's range. */
unsigned parseUnsigned(const char *flag, const std::string &text);

/** Parse @p text as a finite double; fatal() naming @p flag otherwise. */
double parseDouble(const char *flag, const std::string &text);

/** Canonical design spelling: lowercase with '-'/'_' removed. */
std::string canonicalDesignSpelling(const std::string &name);

/** Accepted (canonical spelling, design) pairs, for --list output. */
const std::vector<std::pair<const char *, MmuDesign>> &designSpellings();

/**
 * Design-name lookup, case/'-'/'_'-insensitive ("vc-opt" == "vc_opt"
 * == "VcOpt"); returns false when @p name matches no design.
 */
bool tryParseDesign(const std::string &name, MmuDesign &out);

/** tryParseDesign() or fatal(). */
MmuDesign parseDesign(const std::string &name);

/**
 * Which raw-mode SocConfig fields the user set explicitly on the
 * command line.  applyRawDesignIntent() needs this to keep an explicit
 * value even when it happens to equal the struct default (the old
 * sentinel comparison silently replaced e.g. `--iommu-tlb 512` with
 * the design's size because 512 is also IommuParams's default).
 */
struct RawSocOverrides
{
    bool percu_tlb_entries = false;
    bool iommu_tlb_entries = false;
    bool fbt_entries = false;
};

/**
 * Carry a design's structural intent into a raw-mode config.
 *
 * Raw mode uses `cfg.soc` exactly as given instead of configFor(), so
 * without this every design in a raw sweep would simulate the same
 * SoC: IDEAL would lose its infinite-TLB / unlimited-bandwidth flags,
 * "VC With OPT" would lose fbt_as_second_level_tlb, and the per-design
 * TLB sizes would collapse to the struct defaults.  This applies the
 * design's Table-2 identity to every field in @p user the user did not
 * override, plus the structural flags (which are never user-settable).
 * No-op when `cfg.raw_soc` is false.
 */
void applyRawDesignIntent(RunConfig &cfg, const RawSocOverrides &user);

/** One `--shard I/N` grid position; the default {0, 1} is "all cells". */
struct ShardSpec
{
    unsigned index = 0;
    unsigned count = 1;
};

/**
 * Parse "I/N" with 0 <= I < N (e.g. "0/4" ... "3/4").  Returns false
 * and stores a message in @p err (when non-null) on malformed input.
 */
bool parseShardSpec(const std::string &text, ShardSpec &out,
                    std::string *err = nullptr);

} // namespace gvc

#endif // GVC_HARNESS_CLI_HH
