/**
 * @file
 * Sweep engine implementation.
 *
 * Thread-safety audit of runWorkload() (why concurrent jobs are safe):
 * every piece of simulation state is constructed per call — SimContext
 * (event queue, stat registry, RNG), PhysMem, Vm, the workload
 * generator, Dram, SystemUnderTest, and Gpu all live on the job's
 * stack, and no component holds references to anything process-wide.
 * The only globals a run touches are (a) the debug-trace mask and the
 * workload name tables, which are function-local `static const` values
 * (C++11 magic statics: initialization is synchronized, and they are
 * immutable afterwards), and (b) stderr for warn()/trace output, where
 * interleaving is cosmetic.  fatal()/panic() terminate the process
 * from whichever thread hits them, which is the intended behaviour for
 * an invariant violation mid-sweep.
 */

#include "harness/sweep.hh"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <mutex>
#include <thread>

#include "harness/thread_pool.hh"
#include "sim/logging.hh"

namespace gvc
{

unsigned
defaultJobs()
{
    if (const char *env = std::getenv("GVC_JOBS")) {
        const long n = std::strtol(env, nullptr, 10);
        if (n > 0)
            return unsigned(n);
        warn("GVC_JOBS='" + std::string(env) +
             "' is not a positive integer; ignoring");
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

std::string
runConfigKey(const std::string &workload, const RunConfig &cfg)
{
    const SocConfig effective =
        cfg.raw_soc ? cfg.soc : configFor(cfg.design, cfg.soc);
    Json key = Json::object();
    key.set("workload", workload);
    key.set("design", unsigned(cfg.design));
    key.set("params", workloadParamsToJson(cfg.workload));
    key.set("soc", socConfigToJson(effective));
    return key.dump();
}

Sweep::Sweep(unsigned jobs)
    : jobs_(jobs ? jobs : defaultJobs()),
      progress_(std::getenv("GVC_SWEEP_QUIET") == nullptr)
{
}

std::size_t
Sweep::add(std::string workload, RunConfig cfg, std::string label)
{
    Item item;
    item.key = runConfigKey(workload, cfg);
    item.workload = std::move(workload);
    item.cfg = cfg;
    item.label = std::move(label);
    items_.push_back(std::move(item));
    return items_.size() - 1;
}

void
Sweep::addGrid(const std::vector<std::string> &workloads,
               const std::vector<MmuDesign> &designs,
               const RunConfig &base)
{
    for (const auto &w : workloads) {
        for (const MmuDesign d : designs) {
            RunConfig cfg = base;
            cfg.design = d;
            add(w, cfg);
        }
    }
}

void
Sweep::run()
{
    // Unique pending keys in first-occurrence (add) order, so the
    // serial path and job submission order are both deterministic.
    std::vector<std::size_t> leaders;
    for (std::size_t i = 0; i < items_.size(); ++i) {
        Item &item = items_[i];
        if (item.result)
            continue;
        if (auto memo = memo_.find(item.key); memo != memo_.end()) {
            item.result = memo->second;
            continue;
        }
        bool first = true;
        for (const std::size_t j : leaders) {
            if (items_[j].key == item.key) {
                first = false;
                break;
            }
        }
        if (first)
            leaders.push_back(i);
    }

    if (leaders.empty())
        return;

    const unsigned workers =
        unsigned(std::min<std::size_t>(jobs_, leaders.size()));
    const auto start = std::chrono::steady_clock::now();
    std::mutex progress_mutex;
    std::size_t completed = 0;

    auto report = [&](const Item &item) {
        if (!progress_)
            return;
        std::lock_guard<std::mutex> lock(progress_mutex);
        ++completed;
        const double secs =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start)
                .count();
        std::fprintf(stderr,
                     "[gvc::sweep] %3zu/%zu %s x %s%s%s (%.1fs)\n",
                     completed, leaders.size(), item.workload.c_str(),
                     designName(item.cfg.design),
                     item.label.empty() ? "" : " ",
                     item.label.c_str(), secs);
    };

    if (progress_) {
        std::fprintf(stderr,
                     "[gvc::sweep] %zu cells, %zu unique, %u worker%s\n",
                     items_.size(), leaders.size(), workers,
                     workers == 1 ? "" : "s");
    }

    if (workers <= 1) {
        for (const std::size_t i : leaders) {
            Item &item = items_[i];
            item.result = runWorkload(item.workload, item.cfg);
            report(item);
        }
    } else {
        ThreadPool pool(workers);
        std::vector<std::future<RunResult>> futures;
        futures.reserve(leaders.size());
        for (const std::size_t i : leaders) {
            const Item &item = items_[i];
            futures.push_back(pool.submit([&item, &report] {
                RunResult r = runWorkload(item.workload, item.cfg);
                report(item);
                return r;
            }));
        }
        for (std::size_t k = 0; k < leaders.size(); ++k)
            items_[leaders[k]].result = futures[k].get();
    }

    unique_runs_ += leaders.size();
    for (const std::size_t i : leaders)
        memo_.emplace(items_[i].key, *items_[i].result);
    // Fan the leader results out to every duplicate cell.
    for (Item &item : items_) {
        if (!item.result)
            item.result = memo_.at(item.key);
    }
}

const RunResult &
Sweep::result(std::size_t idx) const
{
    panicIfNot(idx < items_.size(), "Sweep::result: index out of range");
    if (!items_[idx].result)
        fatal("Sweep::result: cell " + std::to_string(idx) +
              " has not been run (call run() first)");
    return *items_[idx].result;
}

const RunResult &
Sweep::result(const std::string &workload, MmuDesign design) const
{
    for (const Item &item : items_) {
        if (item.workload == workload && item.cfg.design == design &&
            item.result)
            return *item.result;
    }
    fatal("Sweep::result: no completed cell for " + workload + " x " +
          designName(design));
}

std::vector<ResultRecord>
Sweep::records() const
{
    std::vector<ResultRecord> out;
    out.reserve(items_.size());
    for (const Item &item : items_) {
        if (!item.result)
            continue;
        out.push_back({item.cfg, *item.result});
    }
    return out;
}

} // namespace gvc
