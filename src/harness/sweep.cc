/**
 * @file
 * Sweep engine implementation.
 *
 * Thread-safety audit of runWorkload() (why concurrent jobs are safe):
 * every piece of simulation state is constructed per call — SimContext
 * (event queue, stat registry, RNG), PhysMem, Vm, the workload
 * generator, Dram, SystemUnderTest, and Gpu all live on the job's
 * stack, and no component holds references to anything process-wide.
 * The only globals a run touches are (a) the debug-trace mask and the
 * workload name tables, which are function-local `static const` values
 * (C++11 magic statics: initialization is synchronized, and they are
 * immutable afterwards), and (b) stderr for warn()/trace output, where
 * interleaving is cosmetic.  fatal()/panic() terminate the process
 * from whichever thread hits them, which is the intended behaviour for
 * an invariant violation mid-sweep.
 */

#include "harness/sweep.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <mutex>
#include <thread>

#include "harness/thread_pool.hh"
#include "sim/logging.hh"

namespace gvc
{

unsigned
defaultJobs()
{
    if (const char *env = std::getenv("GVC_JOBS")) {
        char *end = nullptr;
        const long n = std::strtol(env, &end, 10);
        if (end != env && *end == '\0' && n > 0)
            return unsigned(n);
        warn("GVC_JOBS='" + std::string(env) +
             "' is not a positive integer; ignoring");
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

std::string
runConfigKey(const std::string &workload, const RunConfig &cfg)
{
    const SocConfig effective =
        cfg.raw_soc ? cfg.soc : configFor(cfg.design, cfg.soc);
    Json key = Json::object();
    key.set("workload", workload);
    key.set("design", unsigned(cfg.design));
    key.set("params", workloadParamsToJson(cfg.workload));
    key.set("soc", socConfigToJson(effective));
    if (!cfg.trace_in.empty())
        key.set("trace_in", cfg.trace_in);
    return key.dump();
}

namespace
{

/** Trace-cache key: the generation inputs (workload + params). */
std::string
sourceKeyOf(const std::string &workload, const WorkloadParams &params)
{
    Json key = Json::object();
    key.set("workload", workload);
    key.set("params", workloadParamsToJson(params));
    return key.dump();
}

std::string
hexDigest(std::uint64_t digest)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(digest));
    return buf;
}

} // namespace

Sweep::Sweep(unsigned jobs)
    : jobs_(jobs ? jobs : defaultJobs()),
      progress_(std::getenv("GVC_SWEEP_QUIET") == nullptr),
      capture_(std::getenv("GVC_SWEEP_LIVE") == nullptr)
{
}

std::size_t
Sweep::add(std::string workload, RunConfig cfg, std::string label)
{
    Item item;
    item.key = runConfigKey(workload, cfg);
    item.workload = std::move(workload);
    item.cfg = cfg;
    item.label = std::move(label);
    items_.push_back(std::move(item));
    return items_.size() - 1;
}

void
Sweep::addGrid(const std::vector<std::string> &workloads,
               const std::vector<MmuDesign> &designs,
               const RunConfig &base)
{
    for (const auto &w : workloads) {
        for (const MmuDesign d : designs) {
            RunConfig cfg = base;
            cfg.design = d;
            add(w, cfg);
        }
    }
}

void
Sweep::captureSources()
{
    // Collect the distinct generation sources pending cells need, in
    // first-occurrence order for deterministic capture scheduling.
    std::vector<std::string> missing;
    for (Item &item : items_) {
        if (item.result || !item.cfg.trace_in.empty())
            continue;
        if (item.source_key.empty())
            item.source_key = sourceKeyOf(item.workload,
                                          item.cfg.workload);
        if (!traces_.count(item.source_key) &&
            std::find(missing.begin(), missing.end(), item.source_key) ==
                missing.end()) {
            missing.push_back(item.source_key);
        }
    }

    if (!missing.empty()) {
        // One generation pass per source; each capture is independent
        // (fresh PhysMem/Vm/workload per call), so they parallelize.
        std::vector<CapturedTrace> captured(missing.size());
        auto job = [this, &missing, &captured](std::size_t i) {
            const Item *item = nullptr;
            for (const Item &it : items_) {
                if (it.source_key == missing[i]) {
                    item = &it;
                    break;
                }
            }
            trace::WorkloadKernelSource source(item->workload,
                                               item->cfg.workload);
            auto t = std::make_shared<trace::Trace>(trace::captureTrace(
                source, item->cfg.soc.phys_mem_bytes));
            captured[i] = {t, trace::traceDigest(*t)};
        };
        const unsigned workers =
            unsigned(std::min<std::size_t>(jobs_, missing.size()));
        if (workers <= 1) {
            for (std::size_t i = 0; i < missing.size(); ++i)
                job(i);
        } else {
            ThreadPool pool(workers);
            std::vector<std::future<void>> futures;
            futures.reserve(missing.size());
            for (std::size_t i = 0; i < missing.size(); ++i)
                futures.push_back(pool.submit([&job, i] { job(i); }));
            for (auto &f : futures)
                f.get();
        }
        for (std::size_t i = 0; i < missing.size(); ++i)
            traces_.emplace(missing[i], std::move(captured[i]));
    }

    // The memo key names the exact streams the cell runs: append the
    // capture's digest so trace-replayed results never alias live ones.
    for (Item &item : items_) {
        if (item.result || item.source_key.empty())
            continue;
        const CapturedTrace &ct = traces_.at(item.source_key);
        const std::string suffix = "#trace:" + hexDigest(ct.digest);
        if (item.key.size() < suffix.size() ||
            item.key.compare(item.key.size() - suffix.size(),
                             suffix.size(), suffix) != 0) {
            item.key += suffix;
        }
    }
}

void
Sweep::run()
{
    if (capture_)
        captureSources();

    // The hook mutex outlives the parallel section below; hook calls
    // are serialized so implementations (journal appends) need no
    // locking of their own.
    std::mutex hook_mutex;
    auto fire_hook = [&](std::size_t idx, const RunResult &result) {
        if (!cell_hook_)
            return;
        std::lock_guard<std::mutex> lock(hook_mutex);
        cell_hook_(idx, result);
    };

    // Unique pending keys in first-occurrence (add) order, so the
    // serial path and job submission order are both deterministic.
    std::vector<std::size_t> leaders;
    for (std::size_t i = 0; i < items_.size(); ++i) {
        Item &item = items_[i];
        if (item.result)
            continue;
        if (auto memo = memo_.find(item.key); memo != memo_.end()) {
            item.result = memo->second;
            fire_hook(i, *item.result);
            continue;
        }
        bool first = true;
        for (const std::size_t j : leaders) {
            if (items_[j].key == item.key) {
                first = false;
                break;
            }
        }
        if (first)
            leaders.push_back(i);
    }

    // A cell limit deterministically truncates this run's work to the
    // first N unique simulations; later duplicates of an un-run leader
    // stay pending (the fanout below tolerates the missing memo).
    if (cell_limit_ && leaders.size() > cell_limit_)
        leaders.resize(cell_limit_);

    if (leaders.empty())
        return;

    const unsigned workers =
        unsigned(std::min<std::size_t>(jobs_, leaders.size()));
    const auto start = std::chrono::steady_clock::now();
    std::mutex progress_mutex;
    std::size_t completed = 0;

    auto report = [&](const Item &item) {
        if (!progress_)
            return;
        std::lock_guard<std::mutex> lock(progress_mutex);
        ++completed;
        const double secs =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start)
                .count();
        std::fprintf(stderr,
                     "[gvc::sweep] %3zu/%zu %s x %s%s%s (%.1fs)\n",
                     completed, leaders.size(), item.workload.c_str(),
                     designName(item.cfg.design),
                     item.label.empty() ? "" : " ",
                     item.label.c_str(), secs);
    };

    if (progress_) {
        std::fprintf(stderr,
                     "[gvc::sweep] %zu cells, %zu unique, %u worker%s\n",
                     items_.size(), leaders.size(), workers,
                     workers == 1 ? "" : "s");
    }

    // Replay the cell's captured trace when one exists; traces_ is not
    // mutated during execution, so concurrent reads are safe.
    auto run_item = [this](const Item &item) {
        if (!item.source_key.empty()) {
            trace::TraceKernelSource source(
                traces_.at(item.source_key).trace);
            return runSource(source, item.cfg);
        }
        return runWorkload(item.workload, item.cfg);
    };

    if (workers <= 1) {
        for (const std::size_t i : leaders) {
            Item &item = items_[i];
            item.result = run_item(item);
            // Checkpoint in the worker, before anything else can
            // observe the result: a kill after this point never loses
            // a completed simulation.
            fire_hook(i, *item.result);
            report(item);
        }
    } else {
        ThreadPool pool(workers);
        std::vector<std::future<RunResult>> futures;
        futures.reserve(leaders.size());
        for (const std::size_t i : leaders) {
            const Item &item = items_[i];
            futures.push_back(
                pool.submit([&item, i, &report, &run_item, &fire_hook] {
                    RunResult r = run_item(item);
                    fire_hook(i, r);
                    report(item);
                    return r;
                }));
        }
        for (std::size_t k = 0; k < leaders.size(); ++k)
            items_[leaders[k]].result = futures[k].get();
    }

    unique_runs_ += leaders.size();
    for (const std::size_t i : leaders)
        memo_.emplace(items_[i].key, *items_[i].result);
    // Fan the leader results out to every duplicate cell.  A missing
    // memo entry means the cell's leader fell past this run's cell
    // limit; the cell stays pending for the next run().
    for (std::size_t i = 0; i < items_.size(); ++i) {
        Item &item = items_[i];
        if (item.result)
            continue;
        if (const auto memo = memo_.find(item.key); memo != memo_.end()) {
            item.result = memo->second;
            fire_hook(i, *item.result);
        }
    }
}

void
Sweep::seedResult(std::size_t idx, RunResult result)
{
    panicIfNot(idx < items_.size(),
               "Sweep::seedResult: index out of range");
    items_[idx].result = std::move(result);
}

std::shared_ptr<const trace::Trace>
Sweep::capturedTrace(const std::string &workload,
                     const WorkloadParams &params) const
{
    const auto it = traces_.find(sourceKeyOf(workload, params));
    return it == traces_.end() ? nullptr : it->second.trace;
}

const RunResult &
Sweep::result(std::size_t idx) const
{
    panicIfNot(idx < items_.size(), "Sweep::result: index out of range");
    if (!items_[idx].result)
        fatal("Sweep::result: cell " + std::to_string(idx) +
              " has not been run (call run() first)");
    return *items_[idx].result;
}

const RunResult &
Sweep::result(const std::string &workload, MmuDesign design) const
{
    for (const Item &item : items_) {
        if (item.workload == workload && item.cfg.design == design &&
            item.result)
            return *item.result;
    }
    fatal("Sweep::result: no completed cell for " + workload + " x " +
          designName(design));
}

std::vector<ResultRecord>
Sweep::records() const
{
    std::vector<ResultRecord> out;
    out.reserve(items_.size());
    for (const Item &item : items_) {
        if (!item.result)
            continue;
        out.push_back({item.cfg, *item.result});
    }
    return out;
}

} // namespace gvc
