#include "harness/scenario.hh"

namespace gvc
{

KernelStats
collectKernelStats(SystemUnderTest &sut, Gpu &gpu, Dram &dram,
                   SimContext &ctx)
{
    KernelStats s;
    s.exec_ticks = ctx.now();
    s.instructions = gpu.totalInstructions();
    s.mem_instructions = gpu.totalMemInstructions();
    s.dram_accesses = dram.accesses();
    s.dram_bytes = dram.bytesMoved();
    if (Iommu *io = sut.iommu()) {
        s.iommu_accesses = io->accesses();
        s.page_walks = io->walks();
    }

    if (BaselineMmuSystem *b = sut.baseline()) {
        s.tlb_accesses = b->tlbAccesses();
        s.tlb_misses = b->tlbMisses();
        for (unsigned cu = 0; cu < gpu.numCus(); ++cu) {
            s.l1_accesses += b->caches().l1(cu).accesses();
            s.l1_hits += b->caches().l1(cu).hits();
        }
        s.l2_accesses = b->caches().l2().accesses();
        s.l2_hits = b->caches().l2().hits();
    } else if (VirtualCacheSystem *v = sut.vc()) {
        for (unsigned cu = 0; cu < gpu.numCus(); ++cu) {
            s.l1_accesses += v->l1(cu).accesses();
            s.l1_hits += v->l1(cu).hits();
        }
        s.l2_accesses = v->l2().accesses();
        s.l2_hits = v->l2().hits();
        s.fbt_lookups = v->fbt().btLookups() + v->fbt().ftLookups();
        s.synonym_replays = v->synonymReplays();
    } else if (L1OnlyVcSystem *l = sut.l1vc()) {
        for (unsigned cu = 0; cu < gpu.numCus(); ++cu) {
            s.l1_accesses += l->l1(cu).accesses();
            s.l1_hits += l->l1(cu).hits();
            s.tlb_accesses += l->perCuTlb(cu).accesses();
            s.tlb_misses += l->perCuTlb(cu).misses();
        }
        s.l2_accesses = l->caches().l2().accesses();
        s.l2_hits = l->caches().l2().hits();
        s.synonym_replays = l->synonymReplays();
    } else if (IdealMmuSystem *i = sut.ideal()) {
        for (unsigned cu = 0; cu < gpu.numCus(); ++cu) {
            s.l1_accesses += i->caches().l1(cu).accesses();
            s.l1_hits += i->caches().l1(cu).hits();
        }
        s.l2_accesses = i->caches().l2().accesses();
        s.l2_hits = i->caches().l2().hits();
    }
    return s;
}

KernelStats
kernelDelta(const KernelStats &cur, const KernelStats &prev)
{
    KernelStats d;
#define GVC_DELTA_FIELD(name) d.name = cur.name - prev.name;
    GVC_KERNELSTAT_FIELDS(GVC_DELTA_FIELD)
#undef GVC_DELTA_FIELD
    return d;
}

KernelStats
kernelSum(const KernelStats &a, const KernelStats &b)
{
    KernelStats s;
#define GVC_SUM_FIELD(name) s.name = a.name + b.name;
    GVC_KERNELSTAT_FIELDS(GVC_SUM_FIELD)
#undef GVC_SUM_FIELD
    return s;
}

} // namespace gvc
