#include "harness/bench.hh"

#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <sstream>
#include <unordered_map>
#include <utility>

#include "harness/sweep.hh"
#include "harness/tenants.hh"
#include "sim/logging.hh"
#include "trace/kernel_source.hh"

namespace gvc
{

namespace
{

/** The matrix cells: the golden-stats grid, so bench and golden-stats
 *  baselines can never disagree about which configurations matter. */
const char *const kBenchWorkloads[] = {"pagerank", "bfs", "hotspot"};
const MmuDesign kBenchDesigns[] = {MmuDesign::kBaseline512,
                                   MmuDesign::kVcOpt, MmuDesign::kL1Vc32};

double
nowMs()
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

RunConfig
cellConfig(const BenchConfig &cfg, const BenchOptions &opts)
{
    MmuDesign design;
    if (!designFromName(cfg.design, design))
        fatal("gvc_bench: unknown design '" + cfg.design + "'");
    RunConfig rc;
    rc.design = design;
    rc.workload.scale = opts.scale;
    rc.workload.seed = opts.seed;
    return rc;
}

/** In-memory captured traces for the replay configs, one per workload,
 *  shared across trials so capture cost never pollutes timing. */
class ReplayTraceCache
{
  public:
    std::shared_ptr<const trace::Trace>
    get(const std::string &workload, const BenchOptions &opts)
    {
        auto it = traces_.find(workload);
        if (it != traces_.end())
            return it->second;
        WorkloadParams params;
        params.scale = opts.scale;
        params.seed = opts.seed;
        auto trace = std::make_shared<trace::Trace>(
            trace::captureWorkloadTrace(workload, params));
        traces_.emplace(workload, trace);
        return trace;
    }

  private:
    std::unordered_map<std::string, std::shared_ptr<const trace::Trace>>
        traces_;
};

ReplayTraceCache &
replayTraces()
{
    static ReplayTraceCache cache;
    return cache;
}

BenchCounters
runCell(const BenchConfig &cfg, const BenchOptions &opts)
{
    if (cfg.mode == "cold") {
        return BenchCounters::fromResult(
            runWorkload(cfg.workload, cellConfig(cfg, opts)));
    }
    if (cfg.mode == "replay") {
        trace::TraceKernelSource source(
            replayTraces().get(cfg.workload, opts));
        return BenchCounters::fromResult(
            runSource(source, cellConfig(cfg, opts)));
    }
    if (cfg.mode == "warm") {
        ScenarioSpec spec;
        spec.rounds = opts.scenario_rounds;
        spec.boundary = BoundaryPolicy::keepAll();
        return BenchCounters::fromResult(
            runScenario(cfg.workload, cellConfig(cfg, opts), spec));
    }
    if (cfg.mode == "policy-srrip" || cfg.mode == "policy-drrip" ||
        cfg.mode == "policy-bypass") {
        // Dead-entry-aware TLB policy cells: a cold run with the
        // policy knobs set on top of the design's config, so the RRIP
        // victim-selection and predictor/bypass paths stay on the
        // perf trajectory.
        RunConfig rc = cellConfig(cfg, opts);
        if (cfg.mode == "policy-srrip")
            rc.soc.tlb_replacement = kTlbReplSrrip;
        else if (cfg.mode == "policy-drrip")
            rc.soc.tlb_replacement = kTlbReplDrrip;
        else
            rc.soc.percu_tlb_fill_policy = kTlbFillBypassTrained;
        return BenchCounters::fromResult(runWorkload(cfg.workload, rc));
    }
    if (cfg.mode == "tenants") {
        // Multi-tenant contention cell: '+'-separated tenant workloads
        // under the stressful end of the scheduler knobs (per-ASID
        // shootdown switches plus a storm burst at every boundary), so
        // the bench tracks the tenant subsystem's whole code path.
        TenantsSpec spec;
        std::string name;
        std::stringstream ss(cfg.workload);
        RunConfig rc = cellConfig(cfg, opts);
        while (std::getline(ss, name, '+'))
            if (!name.empty())
                spec.tenants.push_back(TenantSpec{name, rc.workload});
        spec.rounds = opts.scenario_rounds;
        spec.sched = TenantSched::kFifo;
        spec.arrival.kind = ArrivalSpec::Kind::kPoisson;
        spec.arrival.interval = 1000;
        spec.switch_policy = SwitchPolicy::kAsidShootdown;
        spec.storm.pages = 4;
        spec.storm.period = 1;
        return BenchCounters::fromResult(runTenants(spec, rc));
    }
    if (cfg.mode == "sweep") {
        Sweep sweep(/*jobs=*/1);
        sweep.setProgress(false);
        RunConfig base;
        base.workload.scale = opts.scale;
        base.workload.seed = opts.seed;
        std::vector<std::string> workloads(std::begin(kBenchWorkloads),
                                           std::end(kBenchWorkloads));
        std::vector<MmuDesign> designs(std::begin(kBenchDesigns),
                                       std::end(kBenchDesigns));
        sweep.addGrid(workloads, designs, base);
        sweep.run();
        BenchCounters sum;
        for (std::size_t i = 0; i < sweep.size(); ++i)
            sum.add(BenchCounters::fromResult(sweep.result(i)));
        return sum;
    }
    fatal("gvc_bench: unknown bench mode '" + cfg.mode + "'");
}

double
median(std::vector<double> v)
{
    std::sort(v.begin(), v.end());
    const std::size_t n = v.size();
    if (n == 0)
        return 0.0;
    return n % 2 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

} // namespace

BenchOptions::BenchOptions() : seed(WorkloadParams{}.seed)
{
}

BenchCounters
BenchCounters::fromResult(const RunResult &r)
{
    BenchCounters c;
    c.exec_ticks = r.exec_ticks;
    c.instructions = r.instructions;
    c.mem_instructions = r.mem_instructions;
    c.tlb_accesses = r.tlb_accesses;
    c.tlb_misses = r.tlb_misses;
    c.iommu_accesses = r.iommu_accesses;
    c.page_walks = r.page_walks;
    c.l1_accesses = r.l1_accesses;
    c.l2_accesses = r.l2_accesses;
    c.dram_accesses = r.dram_accesses;
    c.dram_bytes = r.dram_bytes;
    c.fbt_lookups = r.fbt_lookups;
    c.synonym_replays = r.synonym_replays;
    return c;
}

void
BenchCounters::add(const BenchCounters &o)
{
#define GVC_ADD_FIELD(name) name += o.name;
    GVC_BENCHCOUNTER_FIELDS(GVC_ADD_FIELD)
#undef GVC_ADD_FIELD
}

std::string
BenchConfig::name() const
{
    return mode + "/" + workload + "/" + design;
}

std::vector<BenchConfig>
benchMatrix()
{
    std::vector<BenchConfig> matrix;
    for (const char *mode : {"cold", "replay", "warm"})
        for (const char *w : kBenchWorkloads)
            for (const MmuDesign d : kBenchDesigns)
                matrix.push_back(BenchConfig{mode, w, designName(d)});
    for (const MmuDesign d : {MmuDesign::kBaseline512, MmuDesign::kVcOpt})
        matrix.push_back(
            BenchConfig{"tenants", "pagerank+bfs", designName(d)});
    matrix.push_back(BenchConfig{"sweep", "grid", "3x3"});
    // Reach-generalized designs: one cold cell each, on the most
    // translation-bound bench workload, so regressions in the reach,
    // coalescing, and stash paths show up in the perf history.
    for (const MmuDesign d :
         {MmuDesign::kBase2MB, MmuDesign::kBaseCoalesced,
          MmuDesign::kBaseVictima})
        matrix.push_back(BenchConfig{"cold", "pagerank", designName(d)});
    // Dead-entry-aware TLB policies: RRIP replacement on the
    // shared-TLB-bound baseline, the trained dead-entry bypass on the
    // design whose TLB thrash it attacks (l1vc-32).
    matrix.push_back(BenchConfig{"policy-srrip", "pagerank",
                                 designName(MmuDesign::kBaseline512)});
    matrix.push_back(BenchConfig{"policy-drrip", "bfs",
                                 designName(MmuDesign::kBaseline512)});
    matrix.push_back(BenchConfig{"policy-bypass", "pagerank",
                                 designName(MmuDesign::kL1Vc32)});
    return matrix;
}

BenchCounters
runBenchConfigOnce(const BenchConfig &cfg, const BenchOptions &opts)
{
    return runCell(cfg, opts);
}

BenchReport
runBench(const BenchOptions &opts)
{
    if (opts.trials == 0)
        fatal("gvc_bench: trials must be >= 1");
    BenchReport report;
    report.opts = opts;
    const auto matrix = benchMatrix();
    for (const BenchConfig &cfg : matrix) {
        BenchMeasurement m;
        m.cfg = cfg;
        for (unsigned i = 0; i < opts.warmup; ++i)
            runCell(cfg, opts);
        for (unsigned i = 0; i < opts.trials; ++i) {
            const double t0 = nowMs();
            const BenchCounters c = runCell(cfg, opts);
            m.wall_ms.push_back(nowMs() - t0);
            if (i == 0)
                m.counters = c;
            else if (c != m.counters)
                fatal("gvc_bench: counters drifted between trials of '" +
                      cfg.name() + "' — the simulator is nondeterministic");
        }
        m.median_wall_ms = median(m.wall_ms);
        if (m.median_wall_ms > 0.0) {
            m.warp_inst_per_sec = double(m.counters.instructions) /
                                  (m.median_wall_ms / 1e3);
            m.sim_cycles_per_sec = double(m.counters.exec_ticks) /
                                   (m.median_wall_ms / 1e3);
        }
        m.peak_rss_kb = peakRssKb();
        if (opts.progress) {
            std::fprintf(stderr,
                         "[gvc_bench] %-28s %9.1f ms  %11.0f winst/s  "
                         "%12.0f cyc/s\n",
                         cfg.name().c_str(), m.median_wall_ms,
                         m.warp_inst_per_sec, m.sim_cycles_per_sec);
        }
        report.configs.push_back(std::move(m));
    }
    return report;
}

Json
benchReportToJson(const BenchReport &report)
{
    Json doc = Json::object();
    doc.set("bench_schema_version", kBenchSchemaVersion);
    doc.set("generator", "gvc_bench");
    doc.set("scale", report.opts.scale);
    doc.set("seed", report.opts.seed);
    doc.set("trials", unsigned(report.opts.trials));
    doc.set("warmup", unsigned(report.opts.warmup));
    doc.set("scenario_rounds", unsigned(report.opts.scenario_rounds));
    Json configs = Json::array();
    for (const BenchMeasurement &m : report.configs) {
        Json j = Json::object();
        j.set("name", m.cfg.name());
        j.set("mode", m.cfg.mode);
        j.set("workload", m.cfg.workload);
        j.set("design", m.cfg.design);
        Json counters = Json::object();
#define GVC_EMIT_FIELD(name) counters.set(#name, m.counters.name);
        GVC_BENCHCOUNTER_FIELDS(GVC_EMIT_FIELD)
#undef GVC_EMIT_FIELD
        j.set("counters", std::move(counters));
        Json walls = Json::array();
        for (const double ms : m.wall_ms)
            walls.push(ms);
        j.set("wall_ms", std::move(walls));
        j.set("median_wall_ms", m.median_wall_ms);
        j.set("warp_inst_per_sec", m.warp_inst_per_sec);
        j.set("sim_cycles_per_sec", m.sim_cycles_per_sec);
        j.set("peak_rss_kb", m.peak_rss_kb);
        configs.push(std::move(j));
    }
    doc.set("configs", std::move(configs));
    return doc;
}

namespace
{

bool
jsonField(const Json &obj, const char *key, const Json *&out,
          Json::Type type, std::string *err)
{
    const Json *v = obj.find(key);
    if (!v || v->type() != type) {
        if (err)
            *err = std::string("bench json: missing or mistyped field '") +
                   key + "'";
        return false;
    }
    out = v;
    return true;
}

} // namespace

bool
benchReportFromJson(const Json &doc, BenchReport &out, std::string *err)
{
    if (!doc.isObject()) {
        if (err)
            *err = "bench json: document is not an object";
        return false;
    }
    const Json *v = nullptr;
    if (!jsonField(doc, "bench_schema_version", v, Json::Type::kNumber,
                   err))
        return false;
    if (v->asU64() != std::uint64_t(kBenchSchemaVersion)) {
        if (err)
            *err = "bench json: unknown bench_schema_version '" +
                   std::to_string(v->asU64()) + "'";
        return false;
    }
    if (!jsonField(doc, "generator", v, Json::Type::kString, err))
        return false;
    BenchReport report;
    report.opts.progress = false;
    if (!jsonField(doc, "scale", v, Json::Type::kNumber, err))
        return false;
    report.opts.scale = v->asNumber();
    if (!jsonField(doc, "seed", v, Json::Type::kNumber, err))
        return false;
    report.opts.seed = v->asU64();
    if (!jsonField(doc, "trials", v, Json::Type::kNumber, err))
        return false;
    report.opts.trials = unsigned(v->asU64());
    if (!jsonField(doc, "warmup", v, Json::Type::kNumber, err))
        return false;
    report.opts.warmup = unsigned(v->asU64());
    if (!jsonField(doc, "scenario_rounds", v, Json::Type::kNumber, err))
        return false;
    report.opts.scenario_rounds = unsigned(v->asU64());
    const Json *configs = nullptr;
    if (!jsonField(doc, "configs", configs, Json::Type::kArray, err))
        return false;
    for (std::size_t i = 0; i < configs->size(); ++i) {
        const Json &j = configs->at(i);
        if (!j.isObject()) {
            if (err)
                *err = "bench json: configs[" + std::to_string(i) +
                       "] is not an object";
            return false;
        }
        BenchMeasurement m;
        if (!jsonField(j, "mode", v, Json::Type::kString, err))
            return false;
        m.cfg.mode = v->asString();
        if (!jsonField(j, "workload", v, Json::Type::kString, err))
            return false;
        m.cfg.workload = v->asString();
        if (!jsonField(j, "design", v, Json::Type::kString, err))
            return false;
        m.cfg.design = v->asString();
        if (!jsonField(j, "name", v, Json::Type::kString, err))
            return false;
        if (v->asString() != m.cfg.name()) {
            if (err)
                *err = "bench json: config name '" + v->asString() +
                       "' does not match its mode/workload/design";
            return false;
        }
        const Json *counters = nullptr;
        if (!jsonField(j, "counters", counters, Json::Type::kObject, err))
            return false;
#define GVC_READ_FIELD(name)                                              \
    if (!jsonField(*counters, #name, v, Json::Type::kNumber, err))        \
        return false;                                                     \
    m.counters.name = v->asU64();
        GVC_BENCHCOUNTER_FIELDS(GVC_READ_FIELD)
#undef GVC_READ_FIELD
        const Json *walls = nullptr;
        if (!jsonField(j, "wall_ms", walls, Json::Type::kArray, err))
            return false;
        for (std::size_t k = 0; k < walls->size(); ++k)
            m.wall_ms.push_back(walls->at(k).asNumber());
        if (!jsonField(j, "median_wall_ms", v, Json::Type::kNumber, err))
            return false;
        m.median_wall_ms = v->asNumber();
        if (!jsonField(j, "warp_inst_per_sec", v, Json::Type::kNumber,
                       err))
            return false;
        m.warp_inst_per_sec = v->asNumber();
        if (!jsonField(j, "sim_cycles_per_sec", v, Json::Type::kNumber,
                       err))
            return false;
        m.sim_cycles_per_sec = v->asNumber();
        if (!jsonField(j, "peak_rss_kb", v, Json::Type::kNumber, err))
            return false;
        m.peak_rss_kb = v->asU64();
        report.configs.push_back(std::move(m));
    }
    out = std::move(report);
    return true;
}

bool
benchCountersMatch(const BenchReport &baseline, const BenchReport &current,
                   std::string &diff)
{
    diff.clear();
    auto mismatch = [&diff](const std::string &what,
                            const std::string &base,
                            const std::string &cur) {
        diff += "  " + what + ": baseline " + base + ", current " + cur +
                "\n";
    };
    if (baseline.opts.scale != current.opts.scale)
        mismatch("scale", std::to_string(baseline.opts.scale),
                 std::to_string(current.opts.scale));
    if (baseline.opts.seed != current.opts.seed)
        mismatch("seed", std::to_string(baseline.opts.seed),
                 std::to_string(current.opts.seed));
    if (baseline.opts.scenario_rounds != current.opts.scenario_rounds)
        mismatch("scenario_rounds",
                 std::to_string(baseline.opts.scenario_rounds),
                 std::to_string(current.opts.scenario_rounds));

    for (const BenchMeasurement &b : baseline.configs) {
        const BenchMeasurement *c = nullptr;
        for (const BenchMeasurement &m : current.configs)
            if (m.cfg.name() == b.cfg.name())
                c = &m;
        if (!c) {
            mismatch("config " + b.cfg.name(), "present", "absent");
            continue;
        }
#define GVC_DIFF_FIELD(field)                                             \
    if (b.counters.field != c->counters.field)                            \
        mismatch(b.cfg.name() + "." #field,                               \
                 std::to_string(b.counters.field),                        \
                 std::to_string(c->counters.field));
        GVC_BENCHCOUNTER_FIELDS(GVC_DIFF_FIELD)
#undef GVC_DIFF_FIELD
    }
    for (const BenchMeasurement &m : current.configs) {
        bool found = false;
        for (const BenchMeasurement &b : baseline.configs)
            found = found || b.cfg.name() == m.cfg.name();
        if (!found)
            mismatch("config " + m.cfg.name(), "absent", "present");
    }
    return diff.empty();
}

std::uint64_t
peakRssKb()
{
    struct rusage ru = {};
    if (getrusage(RUSAGE_SELF, &ru) != 0)
        return 0;
    std::uint64_t kb = std::uint64_t(ru.ru_maxrss);
#ifdef __APPLE__
    // ru_maxrss is bytes on macOS (KB on Linux/BSD); without this the
    // trajectory's RSS column is off by 1024x between hosts.
    kb /= 1024;
#endif
    return kb;
}

} // namespace gvc
