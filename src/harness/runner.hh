/**
 * @file
 * Experiment runner: build a (workload, MMU design) pair over a fresh
 * simulation context, execute every kernel launch to completion, and
 * collect the statistics the paper's figures are built from.
 */

#ifndef GVC_HARNESS_RUNNER_HH
#define GVC_HARNESS_RUNNER_HH

#include <functional>
#include <string>

#include <vector>

#include "gpu/gpu.hh"
#include "harness/scenario.hh"
#include "mmu/designs.hh"
#include "tlb/tlb.hh"
#include "trace/kernel_source.hh"
#include "workloads/registry.hh"

namespace gvc
{

/** One experiment's configuration. */
struct RunConfig
{
    MmuDesign design = MmuDesign::kBaseline512;
    SocConfig soc;
    WorkloadParams workload;
    /**
     * Use `soc` exactly as given instead of applying the design's
     * Table-2 defaults (configFor).  The design then only selects the
     * hierarchy structure; all sizes/limits come from `soc`.
     */
    bool raw_soc = false;
    /**
     * When non-empty, replay this trace file instead of generating the
     * named workload: the VM image is reconstructed from the trace's
     * recorded op log and `workload.seed/scale/...` are taken from the
     * trace metadata (only `soc`/`design` from this config apply).
     */
    std::string trace_in;
};

/** Scalar results of one run. */
struct RunResult
{
    std::string workload;
    MmuDesign design = MmuDesign::kBaseline512;

    /** GPU execution time in cycles. */
    Tick exec_ticks = 0;

    // --- GPU-side activity ---
    std::uint64_t instructions = 0;
    std::uint64_t mem_instructions = 0;
    double lines_per_mem_inst = 0.0;

    // --- per-CU TLBs (baseline / L1-only VC designs) ---
    std::uint64_t tlb_accesses = 0;
    std::uint64_t tlb_misses = 0;
    double tlb_miss_ratio = 0.0;
    TlbMissBreakdown tlb_breakdown; ///< Figure 2 classification.

    // --- shared IOMMU TLB ---
    std::uint64_t iommu_accesses = 0;
    double iommu_apc_mean = 0.0;  ///< Accesses per cycle, window mean.
    double iommu_apc_stdev = 0.0;
    double iommu_apc_max = 0.0;
    double iommu_frac_windows_over_1 = 0.0;
    double iommu_serialization_mean = 0.0; ///< Cycles queued per access.
    std::uint64_t page_walks = 0;
    double fbt_second_level_hit_ratio = 0.0;

    // --- caches and memory (activity counts for energy estimates) ---
    double l1_hit_ratio = 0.0;
    double l2_hit_ratio = 0.0;
    std::uint64_t l1_accesses = 0;
    std::uint64_t l2_accesses = 0;
    std::uint64_t dram_accesses = 0;
    std::uint64_t dram_bytes = 0;
    std::uint64_t fbt_lookups = 0; ///< BT + FT lookups.

    // --- virtual-cache specifics ---
    std::uint64_t synonym_replays = 0;
    std::uint64_t rw_faults = 0;
    std::uint64_t fbt_purges = 0;
    std::uint64_t fbt_valid_pages = 0; ///< Pages resident at end.

    // --- reach-generalized translation stack (zero for classic
    //     designs, so classic results keep their exact exports) ---
    std::uint64_t tlb_reach_hits = 0;    ///< Per-CU hits on reach>0.
    std::uint64_t tlb_reach_fills = 0;   ///< Per-CU reach>0 fills.
    std::uint64_t tlb_merges = 0;        ///< Per-CU buddy merges.
    std::uint64_t tlb_fill_bypasses = 0; ///< Predicted-dead fill skips.
    std::uint64_t iommu_reach_hits = 0;
    std::uint64_t iommu_reach_fills = 0;
    std::uint64_t iommu_coalesced_fills = 0; ///< Contiguity-coalesced.
    std::uint64_t large_page_walks = 0;      ///< Walks ending at 2 MB.
    std::uint64_t victima_stashes = 0;       ///< Evictions parked in L2.
    std::uint64_t victima_probes = 0;        ///< Stash probes on miss.
    std::uint64_t victima_hits = 0;          ///< Probes that hit.

    // --- dead-entry-aware TLB policies (zero under the default
    //     LRU/install-all policies, so classic exports are unchanged) ---
    std::uint64_t tlb_dead_first_evictions = 0; ///< Per-CU dead-first.
    std::uint64_t tlb_pred_true_pos = 0;  ///< Sampled installs, dead.
    std::uint64_t tlb_pred_false_pos = 0; ///< Sampled installs, reused.
    std::uint64_t iommu_fill_bypasses = 0;
    std::uint64_t iommu_dead_first_evictions = 0;
    std::uint64_t iommu_pred_true_pos = 0;
    std::uint64_t iommu_pred_false_pos = 0;

    /**
     * Per-kernel stat deltas for multi-kernel scenario runs, one entry
     * per kernel (delimited by the source's boundaries).  Empty for
     * plain single-scenario runs — the scalar fields above always hold
     * the cumulative totals either way.
     */
    std::vector<KernelStats> kernels;

    // --- multi-tenant runs (runTenants; empty/zero otherwise) ---
    /** Per-tenant stat deltas; sum field-exactly to the totals above. */
    std::vector<TenantStats> tenants;
    /** Scheduler slot transitions where the running tenant changed. */
    std::uint64_t tenant_context_switches = 0;
    /** Pages hit by injected shootdown-storm protect bursts. */
    std::uint64_t tenant_storm_pages = 0;

    // --- TLB entry-lifetime histograms (always collected) ---
    TlbRefHist percu_tlb_refs; ///< Per-CU TLBs (designs that have them).
    TlbRefHist iommu_tlb_refs; ///< Shared IOMMU TLB.
};

/**
 * Hook invoked after the run completes but before teardown, for benches
 * that need non-scalar state (lifetime histograms, FBT contents).
 */
using InspectFn =
    std::function<void(SystemUnderTest &, Gpu &, SimContext &)>;

/**
 * Optional scheduler hooks threaded through runSource for multi-tenant
 * runs.  All three are cold-path (invoked between kernels, never inside
 * the event loop), and a null hook — or a null RunHooks pointer — keeps
 * runSource byte-identical to the hook-free path.
 */
struct RunHooks
{
    /**
     * Earliest tick kernel @p i may launch (an arrival process).  When
     * the returned tick is in the past the launch is immediate, so a
     * hook returning 0 is equivalent to no hook.
     */
    std::function<Tick(std::size_t i)> start_at;

    /**
     * Invoked after boundary @p b's policy has been applied and the GPU
     * issue state rebased, before the next launch.  This is where a
     * tenant scheduler snapshots per-slot deltas, applies per-ASID
     * shootdowns, and injects shootdown storms through the Vm.
     */
    std::function<void(std::size_t b, SystemUnderTest &, Gpu &, Dram &,
                       Vm &, SimContext &)>
        after_boundary;

    /** Invoked once after the last kernel drains (final snapshot). */
    std::function<void(SystemUnderTest &, Gpu &, Dram &, Vm &,
                       SimContext &)>
        at_end;
};

/**
 * Execute @p source under @p cfg — the core runner; every entry point
 * funnels here.  The simulation seed and workload identity come from
 * the source, so a TraceKernelSource reproduces the live run exactly.
 * When @p capture is non-null, the run additionally records the VM op
 * log and every warp stream into it (metadata included).
 */
RunResult runSource(trace::KernelSource &source, const RunConfig &cfg,
                    const InspectFn &inspect = {},
                    trace::Trace *capture = nullptr,
                    const RunHooks *hooks = nullptr);

/**
 * Execute @p workload_name under @p cfg.  If `cfg.trace_in` is set the
 * trace file is replayed instead and @p workload_name is ignored.
 */
RunResult runWorkload(const std::string &workload_name,
                      const RunConfig &cfg, const InspectFn &inspect = {},
                      trace::Trace *capture = nullptr);

/**
 * Execute a multi-kernel scenario: capture one round of @p workload_name
 * (or of `cfg.trace_in`, which must not itself carry boundaries), tile
 * it `spec.rounds` times with `spec.boundary` between rounds, and replay
 * the resulting scenario trace.  Because the live run *is* a replay of
 * its own scenario trace, a recorded scenario (@p capture, written as a
 * .gvct v2) replays bit-identically by construction.  The result carries
 * one KernelStats delta per round in `RunResult::kernels`.
 */
RunResult runScenario(const std::string &workload_name,
                      const RunConfig &cfg, const ScenarioSpec &spec,
                      const InspectFn &inspect = {},
                      trace::Trace *capture = nullptr);

} // namespace gvc

#endif // GVC_HARNESS_RUNNER_HH
