#include "harness/results_io.hh"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>

#include "harness/cli.hh"
#include "sim/logging.hh"

namespace gvc
{

// ---------------------------------------------------------------------
// Json value
// ---------------------------------------------------------------------

namespace
{

/** Shortest "%g" form of @p v that parses back to exactly @p v. */
std::string
doubleLexeme(double v)
{
    char buf[40];
    for (int prec = 1; prec <= 17; ++prec) {
        std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
        if (std::strtod(buf, nullptr) == v)
            break;
    }
    // JSON has no inf/nan; clamp to null-ish zero (results never
    // produce them, but a panic in an export path helps nobody).
    if (!std::isfinite(v))
        return "0";
    return buf;
}

} // namespace

Json::Json(double v) : type_(Type::kNumber), num_(v), str_(doubleLexeme(v))
{
}

Json::Json(std::uint64_t v) : type_(Type::kNumber), num_(double(v))
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%llu", (unsigned long long)v);
    str_ = buf;
}

std::uint64_t
Json::asU64() const
{
    if (type_ != Type::kNumber)
        return 0;
    return std::strtoull(str_.c_str(), nullptr, 10);
}

void
Json::push(Json v)
{
    panicIfNot(type_ == Type::kArray, "Json::push on non-array");
    elems_.push_back(std::move(v));
}

void
Json::set(std::string key, Json v)
{
    panicIfNot(type_ == Type::kObject, "Json::set on non-object");
    for (auto &[k, old] : members_) {
        if (k == key) {
            old = std::move(v);
            return;
        }
    }
    members_.emplace_back(std::move(key), std::move(v));
}

const Json *
Json::find(const std::string &key) const
{
    if (type_ != Type::kObject)
        return nullptr;
    for (const auto &[k, v] : members_)
        if (k == key)
            return &v;
    return nullptr;
}

std::size_t
Json::size() const
{
    if (type_ == Type::kArray)
        return elems_.size();
    if (type_ == Type::kObject)
        return members_.size();
    return 0;
}

const Json &
Json::at(std::size_t i) const
{
    panicIfNot(type_ == Type::kArray && i < elems_.size(),
               "Json::at out of range");
    return elems_[i];
}

namespace
{

void
escapeTo(std::string &out, const std::string &s)
{
    out += '"';
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

} // namespace

void
Json::dumpTo(std::string &out, int indent, int depth) const
{
    const std::string pad =
        indent > 0 ? std::string(std::size_t(indent) * (depth + 1), ' ')
                   : std::string();
    const std::string close_pad =
        indent > 0 ? std::string(std::size_t(indent) * depth, ' ')
                   : std::string();
    const char *nl = indent > 0 ? "\n" : "";
    const char *colon = indent > 0 ? ": " : ":";

    switch (type_) {
      case Type::kNull:
        out += "null";
        break;
      case Type::kBool:
        out += bool_ ? "true" : "false";
        break;
      case Type::kNumber:
        out += str_;
        break;
      case Type::kString:
        escapeTo(out, str_);
        break;
      case Type::kArray:
        if (elems_.empty()) {
            out += "[]";
            break;
        }
        out += '[';
        out += nl;
        for (std::size_t i = 0; i < elems_.size(); ++i) {
            out += pad;
            elems_[i].dumpTo(out, indent, depth + 1);
            if (i + 1 < elems_.size())
                out += ',';
            out += nl;
        }
        out += close_pad;
        out += ']';
        break;
      case Type::kObject:
        if (members_.empty()) {
            out += "{}";
            break;
        }
        out += '{';
        out += nl;
        for (std::size_t i = 0; i < members_.size(); ++i) {
            out += pad;
            escapeTo(out, members_[i].first);
            out += colon;
            members_[i].second.dumpTo(out, indent, depth + 1);
            if (i + 1 < members_.size())
                out += ',';
            out += nl;
        }
        out += close_pad;
        out += '}';
        break;
    }
}

std::string
Json::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    return out;
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

namespace
{

struct Parser
{
    const char *p;
    const char *end;
    const char *begin;
    std::string err;

    bool
    fail(const std::string &what)
    {
        if (err.empty()) {
            err = what + " at offset " + std::to_string(p - begin);
        }
        return false;
    }

    void
    skipWs()
    {
        while (p < end &&
               (*p == ' ' || *p == '\t' || *p == '\n' || *p == '\r'))
            ++p;
    }

    bool
    literal(const char *text)
    {
        const std::size_t n = std::strlen(text);
        if (std::size_t(end - p) < n || std::strncmp(p, text, n) != 0)
            return fail(std::string("expected '") + text + "'");
        p += n;
        return true;
    }

    bool
    parseString(std::string &out)
    {
        if (p >= end || *p != '"')
            return fail("expected string");
        ++p;
        while (p < end && *p != '"') {
            if (*p == '\\') {
                if (p + 1 >= end)
                    return fail("bad escape");
                ++p;
                switch (*p) {
                  case '"': out += '"'; break;
                  case '\\': out += '\\'; break;
                  case '/': out += '/'; break;
                  case 'b': out += '\b'; break;
                  case 'f': out += '\f'; break;
                  case 'n': out += '\n'; break;
                  case 'r': out += '\r'; break;
                  case 't': out += '\t'; break;
                  case 'u': {
                    if (p + 4 >= end)
                        return fail("bad \\u escape");
                    unsigned cp = 0;
                    for (int i = 1; i <= 4; ++i) {
                        const char c = p[i];
                        cp <<= 4;
                        if (c >= '0' && c <= '9')
                            cp |= unsigned(c - '0');
                        else if (c >= 'a' && c <= 'f')
                            cp |= unsigned(c - 'a' + 10);
                        else if (c >= 'A' && c <= 'F')
                            cp |= unsigned(c - 'A' + 10);
                        else
                            return fail("bad \\u escape");
                    }
                    p += 4;
                    // Encode the code point as UTF-8 (no surrogate
                    // pairing: exported documents never need it).
                    if (cp < 0x80) {
                        out += char(cp);
                    } else if (cp < 0x800) {
                        out += char(0xc0 | (cp >> 6));
                        out += char(0x80 | (cp & 0x3f));
                    } else {
                        out += char(0xe0 | (cp >> 12));
                        out += char(0x80 | ((cp >> 6) & 0x3f));
                        out += char(0x80 | (cp & 0x3f));
                    }
                    break;
                  }
                  default:
                    return fail("bad escape");
                }
                ++p;
            } else if (static_cast<unsigned char>(*p) < 0x20) {
                return fail("raw control character in string");
            } else {
                out += *p++;
            }
        }
        if (p >= end)
            return fail("unterminated string");
        ++p; // closing quote
        return true;
    }

    bool
    parseValue(Json &out, int depth)
    {
        if (depth > 64)
            return fail("nesting too deep");
        skipWs();
        if (p >= end)
            return fail("unexpected end of input");
        switch (*p) {
          case '{': {
            ++p;
            out = Json::object();
            skipWs();
            if (p < end && *p == '}') {
                ++p;
                return true;
            }
            for (;;) {
                skipWs();
                std::string key;
                if (!parseString(key))
                    return false;
                skipWs();
                if (p >= end || *p != ':')
                    return fail("expected ':'");
                ++p;
                Json v;
                if (!parseValue(v, depth + 1))
                    return false;
                out.set(std::move(key), std::move(v));
                skipWs();
                if (p < end && *p == ',') {
                    ++p;
                    continue;
                }
                if (p < end && *p == '}') {
                    ++p;
                    return true;
                }
                return fail("expected ',' or '}'");
            }
          }
          case '[': {
            ++p;
            out = Json::array();
            skipWs();
            if (p < end && *p == ']') {
                ++p;
                return true;
            }
            for (;;) {
                Json v;
                if (!parseValue(v, depth + 1))
                    return false;
                out.push(std::move(v));
                skipWs();
                if (p < end && *p == ',') {
                    ++p;
                    continue;
                }
                if (p < end && *p == ']') {
                    ++p;
                    return true;
                }
                return fail("expected ',' or ']'");
            }
          }
          case '"': {
            std::string s;
            if (!parseString(s))
                return false;
            out = Json(std::move(s));
            return true;
          }
          case 't':
            if (!literal("true"))
                return false;
            out = Json(true);
            return true;
          case 'f':
            if (!literal("false"))
                return false;
            out = Json(false);
            return true;
          case 'n':
            if (!literal("null"))
                return false;
            out = Json();
            return true;
          default: {
            const char *start = p;
            if (p < end && (*p == '-' || *p == '+'))
                ++p;
            bool digits = false;
            while (p < end &&
                   (std::isdigit(static_cast<unsigned char>(*p)) ||
                    *p == '.' || *p == 'e' || *p == 'E' || *p == '-' ||
                    *p == '+')) {
                digits = digits ||
                         std::isdigit(static_cast<unsigned char>(*p));
                ++p;
            }
            if (!digits)
                return fail("unexpected character");
            const std::string lex(start, p);
            const double v = std::strtod(lex.c_str(), nullptr);
            // Non-negative integer lexemes are re-read as uint64 so
            // tick counts round-trip exactly even beyond 2^53.
            if (lex.find('.') == std::string::npos &&
                lex.find('e') == std::string::npos &&
                lex.find('E') == std::string::npos && lex[0] != '-') {
                out = Json(std::uint64_t(
                    std::strtoull(lex.c_str(), nullptr, 10)));
            } else {
                out = Json(v);
            }
            return true;
          }
        }
    }
};

} // namespace

Json
Json::parse(const std::string &text, std::string *err)
{
    Parser parser{text.data(), text.data() + text.size(), text.data(),
                  {}};
    Json out;
    if (!parser.parseValue(out, 0)) {
        if (err)
            *err = parser.err;
        return Json();
    }
    parser.skipWs();
    if (parser.p != parser.end) {
        parser.fail("trailing garbage");
        if (err)
            *err = parser.err;
        return Json();
    }
    if (err)
        err->clear();
    return out;
}

// ---------------------------------------------------------------------
// RunResult / SocConfig serialization
// ---------------------------------------------------------------------

// Scalar RunResult fields in struct declaration order, shared between
// the JSON and CSV emitters so the two formats cannot drift apart.
#define GVC_RUNRESULT_U64_FIELDS(X)                                     \
    X(exec_ticks)                                                       \
    X(instructions)                                                     \
    X(mem_instructions)                                                 \
    X(tlb_accesses)                                                     \
    X(tlb_misses)                                                       \
    X(iommu_accesses)                                                   \
    X(page_walks)                                                       \
    X(l1_accesses)                                                      \
    X(l2_accesses)                                                      \
    X(dram_accesses)                                                    \
    X(dram_bytes)                                                       \
    X(fbt_lookups)                                                      \
    X(synonym_replays)                                                  \
    X(rw_faults)                                                        \
    X(fbt_purges)                                                       \
    X(fbt_valid_pages)

// Reach-generalized translation counters: zero for the classic designs,
// so they are emitted only when nonzero (keeping pre-existing exports
// byte-identical) and imported as optional with default 0.
#define GVC_RUNRESULT_U64_OPT_FIELDS(X)                                 \
    X(tlb_reach_hits)                                                   \
    X(tlb_reach_fills)                                                  \
    X(tlb_merges)                                                       \
    X(tlb_fill_bypasses)                                                \
    X(iommu_reach_hits)                                                 \
    X(iommu_reach_fills)                                                \
    X(iommu_coalesced_fills)                                            \
    X(large_page_walks)                                                 \
    X(victima_stashes)                                                  \
    X(victima_probes)                                                   \
    X(victima_hits)                                                     \
    X(tlb_dead_first_evictions)                                         \
    X(tlb_pred_true_pos)                                                \
    X(tlb_pred_false_pos)                                               \
    X(iommu_fill_bypasses)                                              \
    X(iommu_dead_first_evictions)                                       \
    X(iommu_pred_true_pos)                                              \
    X(iommu_pred_false_pos)

#define GVC_RUNRESULT_F64_FIELDS(X)                                     \
    X(lines_per_mem_inst)                                               \
    X(tlb_miss_ratio)                                                   \
    X(iommu_apc_mean)                                                   \
    X(iommu_apc_stdev)                                                  \
    X(iommu_apc_max)                                                    \
    X(iommu_frac_windows_over_1)                                        \
    X(iommu_serialization_mean)                                         \
    X(fbt_second_level_hit_ratio)                                       \
    X(l1_hit_ratio)                                                     \
    X(l2_hit_ratio)

#define GVC_RUNRESULT_BREAKDOWN_FIELDS(X)                               \
    X(miss_l1_hit)                                                      \
    X(miss_l2_hit)                                                      \
    X(miss_l2_miss)

std::string
tlbPolicyStamp(const SocConfig &soc)
{
    std::string stamp;
    const auto add = [&](const std::string &part) {
        if (!stamp.empty())
            stamp += ',';
        stamp += part;
    };
    if (soc.tlb_replacement != kTlbReplLru)
        add(std::string("repl=") +
            tlbReplacementName(soc.tlb_replacement));
    if (soc.percu_tlb_fill_policy != kTlbFillLru)
        add(std::string("fill=") +
            tlbFillPolicyName(soc.percu_tlb_fill_policy));
    if (soc.iommu_tlb_fill_policy != kTlbFillLru)
        add(std::string("iommu-fill=") +
            tlbFillPolicyName(soc.iommu_tlb_fill_policy));
    return stamp;
}

Json
socConfigToJson(const SocConfig &soc)
{
    Json gpu = Json::object();
    gpu.set("num_cus", soc.gpu.num_cus);
    gpu.set("max_resident_warps", soc.gpu.max_resident_warps);
    gpu.set("scratchpad_latency", soc.gpu.scratchpad_latency);
    gpu.set("max_outstanding_stores", soc.gpu.max_outstanding_stores);
    gpu.set("sched", unsigned(soc.gpu.sched));

    Json ptw = Json::object();
    ptw.set("max_concurrent", soc.iommu.ptw.max_concurrent);
    ptw.set("pwc_hit_latency", soc.iommu.ptw.pwc_hit_latency);
    ptw.set("dispatch_latency", soc.iommu.ptw.dispatch_latency);

    Json iommu = Json::object();
    iommu.set("tlb_entries", soc.iommu.tlb_entries);
    iommu.set("tlb_assoc", soc.iommu.tlb_assoc);
    iommu.set("tlb_infinite", soc.iommu.tlb_infinite);
    iommu.set("accesses_per_cycle", soc.iommu.accesses_per_cycle);
    iommu.set("unlimited_bw", soc.iommu.unlimited_bw);
    iommu.set("banks", soc.iommu.banks);
    iommu.set("bank_select_shift", soc.iommu.bank_select_shift);
    iommu.set("tlb_latency", soc.iommu.tlb_latency);
    iommu.set("second_level_latency", soc.iommu.second_level_latency);
    iommu.set("fault_latency", soc.iommu.fault_latency);
    iommu.set("ptw", std::move(ptw));
    iommu.set("sample_window", soc.iommu.sample_window);

    Json fbt = Json::object();
    fbt.set("entries", soc.fbt.entries);
    fbt.set("bt_assoc", soc.fbt.bt_assoc);
    fbt.set("ft_assoc", soc.fbt.ft_assoc);
    fbt.set("split_large_pages", soc.fbt.split_large_pages);

    Json dram = Json::object();
    dram.set("access_latency", soc.dram.access_latency);
    dram.set("bytes_per_cycle", soc.dram.bytes_per_cycle);

    Json j = Json::object();
    j.set("gpu", std::move(gpu));
    j.set("l1_size", soc.l1_size);
    j.set("l1_assoc", soc.l1_assoc);
    j.set("l2_size", soc.l2_size);
    j.set("l2_assoc", soc.l2_assoc);
    j.set("l2_banks", soc.l2_banks);
    j.set("l1_latency", soc.l1_latency);
    j.set("cu_to_l2", soc.cu_to_l2);
    j.set("l2_latency", soc.l2_latency);
    j.set("l2_to_dir", soc.l2_to_dir);
    j.set("dir_latency", soc.dir_latency);
    j.set("cu_to_iommu", soc.cu_to_iommu);
    j.set("l2_to_iommu", soc.l2_to_iommu);
    j.set("fbt_latency", soc.fbt_latency);
    j.set("percu_tlb_latency", soc.percu_tlb_latency);
    j.set("percu_tlb_entries", soc.percu_tlb_entries);
    j.set("percu_tlb_assoc", soc.percu_tlb_assoc);
    j.set("percu_tlb_infinite", soc.percu_tlb_infinite);
    // Reach-stack knobs: emitted only when non-default so pre-existing
    // configurations keep their exact serialized form.
    if (soc.percu_tlb_fill_policy != kTlbFillLru)
        j.set("percu_tlb_fill_policy", soc.percu_tlb_fill_policy);
    if (soc.iommu_tlb_fill_policy != kTlbFillLru)
        j.set("iommu_tlb_fill_policy", soc.iommu_tlb_fill_policy);
    if (soc.tlb_replacement != kTlbReplLru)
        j.set("tlb_replacement", soc.tlb_replacement);
    if (soc.tlb_max_reach)
        j.set("tlb_max_reach", soc.tlb_max_reach);
    if (soc.tlb_merge_on_insert)
        j.set("tlb_merge_on_insert", soc.tlb_merge_on_insert);
    if (soc.coalesce_max_reach)
        j.set("coalesce_max_reach", soc.coalesce_max_reach);
    if (soc.victima_stash)
        j.set("victima_stash", soc.victima_stash);
    if (soc.vm_page_policy)
        j.set("vm_page_policy", soc.vm_page_policy);
    j.set("iommu", std::move(iommu));
    j.set("fbt", std::move(fbt));
    j.set("fbt_as_second_level_tlb", soc.fbt_as_second_level_tlb);
    j.set("synonym_remap_entries", soc.synonym_remap_entries);
    j.set("cu_injection_rate", soc.cu_injection_rate);
    j.set("dram", std::move(dram));
    j.set("phys_mem_bytes", soc.phys_mem_bytes);
    j.set("track_lifetimes", soc.track_lifetimes);
    j.set("classify_tlb_misses", soc.classify_tlb_misses);
    return j;
}

Json
workloadParamsToJson(const WorkloadParams &p)
{
    Json j = Json::object();
    j.set("scale", p.scale);
    j.set("seed", p.seed);
    j.set("grid_warps", p.grid_warps);
    j.set("graph", unsigned(p.graph));
    return j;
}

namespace
{

Json
tlbRefHistToJson(const TlbRefHist &h)
{
    Json j = Json::object();
    Json buckets = Json::array();
    for (const std::uint64_t b : h.buckets)
        buckets.push(Json(b));
    j.set("buckets", std::move(buckets));
    j.set("retired", h.retired);
    j.set("dead", h.dead);
    return j;
}

} // namespace

Json
runResultToJson(const RunResult &r, const SocConfig *soc)
{
    Json j = Json::object();
    j.set("workload", r.workload);
    j.set("design", designName(r.design));
#define X(field) j.set(#field, std::uint64_t(r.field));
    GVC_RUNRESULT_U64_FIELDS(X)
#undef X
#define X(field)                                                        \
    if (r.field)                                                        \
        j.set(#field, std::uint64_t(r.field));
    GVC_RUNRESULT_U64_OPT_FIELDS(X)
#undef X
#define X(field) j.set(#field, r.field);
    GVC_RUNRESULT_F64_FIELDS(X)
#undef X
    Json bd = Json::object();
#define X(field) bd.set(#field, r.tlb_breakdown.field);
    GVC_RUNRESULT_BREAKDOWN_FIELDS(X)
#undef X
    j.set("tlb_breakdown", std::move(bd));
    if (!r.kernels.empty()) {
        Json kernels = Json::array();
        for (const KernelStats &k : r.kernels) {
            Json one = Json::object();
#define X(field) one.set(#field, std::uint64_t(k.field));
            GVC_KERNELSTAT_FIELDS(X)
#undef X
            kernels.push(std::move(one));
        }
        j.set("kernels", std::move(kernels));
    }
    // The tenant block (and the TLB lifetime histograms, which ride
    // with it) only appears for multi-tenant runs, so version-1/2
    // exports stay byte-identical to what older writers produced.
    if (!r.tenants.empty()) {
        Json tenants = Json::array();
        for (const TenantStats &t : r.tenants) {
            Json one = Json::object();
            one.set("workload", t.workload);
            one.set("launches", t.launches);
            Json stats = Json::object();
#define X(field) stats.set(#field, std::uint64_t(t.stats.field));
            GVC_KERNELSTAT_FIELDS(X)
#undef X
            one.set("stats", std::move(stats));
            tenants.push(std::move(one));
        }
        j.set("tenants", std::move(tenants));
        j.set("tenant_context_switches", r.tenant_context_switches);
        j.set("tenant_storm_pages", r.tenant_storm_pages);
        j.set("percu_tlb_refs", tlbRefHistToJson(r.percu_tlb_refs));
        j.set("iommu_tlb_refs", tlbRefHistToJson(r.iommu_tlb_refs));
    }
    if (soc)
        j.set("soc", socConfigToJson(*soc));
    return j;
}

Json
resultRecordToJson(const ResultRecord &rec)
{
    const SocConfig effective =
        rec.cfg.raw_soc ? rec.cfg.soc
                        : configFor(rec.cfg.design, rec.cfg.soc);
    Json one = runResultToJson(rec.result, &effective);
    one.set("workload_params", workloadParamsToJson(rec.cfg.workload));
    return one;
}

namespace
{

std::string
hexU64(std::uint64_t v)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

/** Inverse of hexU64(): exactly 16 lowercase hex digits. */
bool
parseHexU64(const std::string &s, std::uint64_t &out)
{
    if (s.size() != 16)
        return false;
    out = 0;
    for (const char c : s) {
        out <<= 4;
        if (c >= '0' && c <= '9')
            out |= std::uint64_t(c - '0');
        else if (c >= 'a' && c <= 'f')
            out |= std::uint64_t(c - 'a' + 10);
        else
            return false;
    }
    return true;
}

} // namespace

Json
resultsToJson(const ExportMeta &meta,
              const std::vector<ResultRecord> &records)
{
    Json grid = Json::object();
    Json workloads = Json::array();
    for (const auto &w : meta.workloads)
        workloads.push(Json(w));
    Json designs = Json::array();
    for (const auto &d : meta.designs)
        designs.push(Json(d));
    grid.set("workloads", std::move(workloads));
    grid.set("designs", std::move(designs));
    grid.set("scale", meta.scale);
    grid.set("seed", meta.seed);
    grid.set("jobs", meta.jobs);
    // The policy-axis stamp only appears for non-default TLB policies,
    // so classic exports stay byte-identical.
    if (!meta.tlb_policy.empty())
        grid.set("tlb_policy", meta.tlb_policy);
    if (meta.shard_count > 1) {
        Json shard = Json::object();
        shard.set("index", meta.shard_index);
        shard.set("count", meta.shard_count);
        // The assignment stamp only appears for non-modulo shard
        // plans, so classic modulo-sharded exports stay byte-identical.
        if (!meta.shard_assignment.empty()) {
            shard.set("assignment", meta.shard_assignment);
            shard.set("cost_digest", hexU64(meta.shard_cost_digest));
        }
        grid.set("shard", std::move(shard));
    }

    // Schema version 3 exactly when the records carry per-tenant stats,
    // version 2 exactly when (tenant-free) records carry per-kernel
    // stats: the record shapes cannot share a document, so a mix is a
    // bug in the caller, not a new schema.  Tenant records may carry
    // per-kernel stats or not (a one-slot schedule has no boundaries),
    // so the kernels-mix check only applies to non-tenant records.
    bool with_tenants = false, without_tenants = false;
    bool with_kernels = false, without_kernels = false;
    for (const auto &rec : records) {
        if (rec.result.tenants.empty()) {
            without_tenants = true;
            if (rec.result.kernels.empty())
                without_kernels = true;
            else
                with_kernels = true;
        } else {
            with_tenants = true;
        }
    }
    if (with_tenants && without_tenants)
        fatal("resultsToJson: cannot mix tenant and non-tenant records "
              "in one document");
    if (with_kernels && without_kernels)
        fatal("resultsToJson: cannot mix records with and without "
              "per-kernel stats in one document");

    Json results = Json::array();
    for (const auto &rec : records)
        results.push(resultRecordToJson(rec));

    Json doc = Json::object();
    doc.set("schema_version",
            with_tenants  ? kResultsSchemaVersionTenants
            : with_kernels ? kResultsSchemaVersionKernels
                           : kResultsSchemaVersion);
    doc.set("generator", meta.generator);
    doc.set("grid", std::move(grid));
    doc.set("results", std::move(results));
    return doc;
}

// ---------------------------------------------------------------------
// Import (resultsFromJson) and shard merging
// ---------------------------------------------------------------------

namespace
{

/**
 * Strict field extraction with dotted-path error messages.  Every
 * getter requires presence and the right type; the first failure wins
 * so the reported error names the innermost offending field.
 */
struct Importer
{
    std::string err;

    bool
    fail(const std::string &what)
    {
        if (err.empty())
            err = what;
        return false;
    }

    const Json *
    get(const Json &obj, const char *key, const std::string &ctx)
    {
        const Json *v = obj.find(key);
        if (!v)
            fail(ctx + ": missing field '" + key + "'");
        return v;
    }

    bool
    getU64(const Json &obj, const char *key, const std::string &ctx,
           std::uint64_t &out)
    {
        const Json *v = get(obj, key, ctx);
        if (!v)
            return false;
        if (!v->isNumber())
            return fail(ctx + "." + key + ": expected a number");
        out = v->asU64();
        return true;
    }

    bool
    getUnsigned(const Json &obj, const char *key,
                const std::string &ctx, unsigned &out)
    {
        std::uint64_t v = 0;
        if (!getU64(obj, key, ctx, v))
            return false;
        if (v > 0xffffffffull)
            return fail(ctx + "." + key + ": value out of range");
        out = unsigned(v);
        return true;
    }

    bool
    getNumber(const Json &obj, const char *key, const std::string &ctx,
              double &out)
    {
        const Json *v = get(obj, key, ctx);
        if (!v)
            return false;
        if (!v->isNumber())
            return fail(ctx + "." + key + ": expected a number");
        out = v->asNumber();
        return true;
    }

    bool
    getBool(const Json &obj, const char *key, const std::string &ctx,
            bool &out)
    {
        const Json *v = get(obj, key, ctx);
        if (!v)
            return false;
        if (v->type() != Json::Type::kBool)
            return fail(ctx + "." + key + ": expected a bool");
        out = v->asBool();
        return true;
    }

    bool
    getString(const Json &obj, const char *key, const std::string &ctx,
              std::string &out)
    {
        const Json *v = get(obj, key, ctx);
        if (!v)
            return false;
        if (!v->isString())
            return fail(ctx + "." + key + ": expected a string");
        out = v->asString();
        return true;
    }

    /**
     * Optional variants: absent keys keep @p out at its default (they
     * exist for the reach-stack additions, which older documents —
     * and classic-design records — legitimately omit).
     */
    bool
    optU64(const Json &obj, const char *key, const std::string &ctx,
           std::uint64_t &out)
    {
        const Json *v = obj.find(key);
        if (!v)
            return true;
        if (!v->isNumber())
            return fail(ctx + "." + key + ": expected a number");
        out = v->asU64();
        return true;
    }

    bool
    optUnsigned(const Json &obj, const char *key,
                const std::string &ctx, unsigned &out)
    {
        const Json *v = obj.find(key);
        if (!v)
            return true;
        std::uint64_t u = 0;
        if (!getU64(obj, key, ctx, u))
            return false;
        if (u > 0xffffffffull)
            return fail(ctx + "." + key + ": value out of range");
        out = unsigned(u);
        return true;
    }

    bool
    optBool(const Json &obj, const char *key, const std::string &ctx,
            bool &out)
    {
        const Json *v = obj.find(key);
        if (!v)
            return true;
        if (v->type() != Json::Type::kBool)
            return fail(ctx + "." + key + ": expected a bool");
        out = v->asBool();
        return true;
    }

    const Json *
    getObject(const Json &obj, const char *key, const std::string &ctx)
    {
        const Json *v = get(obj, key, ctx);
        if (!v)
            return nullptr;
        if (!v->isObject()) {
            fail(ctx + "." + key + ": expected an object");
            return nullptr;
        }
        return v;
    }
};

bool
socConfigFromJson(Importer &imp, const Json &j, const std::string &ctx,
                  SocConfig &soc)
{
    const Json *gpu = imp.getObject(j, "gpu", ctx);
    if (!gpu)
        return false;
    const std::string gctx = ctx + ".gpu";
    unsigned sched = 0;
    if (!imp.getUnsigned(*gpu, "num_cus", gctx, soc.gpu.num_cus) ||
        !imp.getUnsigned(*gpu, "max_resident_warps", gctx,
                         soc.gpu.max_resident_warps) ||
        !imp.getU64(*gpu, "scratchpad_latency", gctx,
                    soc.gpu.scratchpad_latency) ||
        !imp.getUnsigned(*gpu, "max_outstanding_stores", gctx,
                         soc.gpu.max_outstanding_stores) ||
        !imp.getUnsigned(*gpu, "sched", gctx, sched))
        return false;
    soc.gpu.sched = WarpSchedPolicy(sched);

    if (!imp.getU64(j, "l1_size", ctx, soc.l1_size) ||
        !imp.getUnsigned(j, "l1_assoc", ctx, soc.l1_assoc) ||
        !imp.getU64(j, "l2_size", ctx, soc.l2_size) ||
        !imp.getUnsigned(j, "l2_assoc", ctx, soc.l2_assoc) ||
        !imp.getUnsigned(j, "l2_banks", ctx, soc.l2_banks) ||
        !imp.getU64(j, "l1_latency", ctx, soc.l1_latency) ||
        !imp.getU64(j, "cu_to_l2", ctx, soc.cu_to_l2) ||
        !imp.getU64(j, "l2_latency", ctx, soc.l2_latency) ||
        !imp.getU64(j, "l2_to_dir", ctx, soc.l2_to_dir) ||
        !imp.getU64(j, "dir_latency", ctx, soc.dir_latency) ||
        !imp.getU64(j, "cu_to_iommu", ctx, soc.cu_to_iommu) ||
        !imp.getU64(j, "l2_to_iommu", ctx, soc.l2_to_iommu) ||
        !imp.getU64(j, "fbt_latency", ctx, soc.fbt_latency) ||
        !imp.getU64(j, "percu_tlb_latency", ctx,
                    soc.percu_tlb_latency) ||
        !imp.getUnsigned(j, "percu_tlb_entries", ctx,
                         soc.percu_tlb_entries) ||
        !imp.getUnsigned(j, "percu_tlb_assoc", ctx,
                         soc.percu_tlb_assoc) ||
        !imp.getBool(j, "percu_tlb_infinite", ctx,
                     soc.percu_tlb_infinite))
        return false;
    if (!imp.optUnsigned(j, "percu_tlb_fill_policy", ctx,
                         soc.percu_tlb_fill_policy) ||
        !imp.optUnsigned(j, "iommu_tlb_fill_policy", ctx,
                         soc.iommu_tlb_fill_policy) ||
        !imp.optUnsigned(j, "tlb_replacement", ctx,
                         soc.tlb_replacement) ||
        !imp.optUnsigned(j, "tlb_max_reach", ctx, soc.tlb_max_reach) ||
        !imp.optBool(j, "tlb_merge_on_insert", ctx,
                     soc.tlb_merge_on_insert) ||
        !imp.optUnsigned(j, "coalesce_max_reach", ctx,
                         soc.coalesce_max_reach) ||
        !imp.optBool(j, "victima_stash", ctx, soc.victima_stash) ||
        !imp.optUnsigned(j, "vm_page_policy", ctx, soc.vm_page_policy))
        return false;

    const Json *iommu = imp.getObject(j, "iommu", ctx);
    if (!iommu)
        return false;
    const std::string ictx = ctx + ".iommu";
    if (!imp.getUnsigned(*iommu, "tlb_entries", ictx,
                         soc.iommu.tlb_entries) ||
        !imp.getUnsigned(*iommu, "tlb_assoc", ictx,
                         soc.iommu.tlb_assoc) ||
        !imp.getBool(*iommu, "tlb_infinite", ictx,
                     soc.iommu.tlb_infinite) ||
        !imp.getNumber(*iommu, "accesses_per_cycle", ictx,
                       soc.iommu.accesses_per_cycle) ||
        !imp.getBool(*iommu, "unlimited_bw", ictx,
                     soc.iommu.unlimited_bw) ||
        !imp.getUnsigned(*iommu, "banks", ictx, soc.iommu.banks) ||
        !imp.getUnsigned(*iommu, "bank_select_shift", ictx,
                         soc.iommu.bank_select_shift) ||
        !imp.getU64(*iommu, "tlb_latency", ictx,
                    soc.iommu.tlb_latency) ||
        !imp.getU64(*iommu, "second_level_latency", ictx,
                    soc.iommu.second_level_latency) ||
        !imp.getU64(*iommu, "fault_latency", ictx,
                    soc.iommu.fault_latency) ||
        !imp.getU64(*iommu, "sample_window", ictx,
                    soc.iommu.sample_window))
        return false;
    const Json *ptw = imp.getObject(*iommu, "ptw", ictx);
    if (!ptw)
        return false;
    const std::string pctx = ictx + ".ptw";
    if (!imp.getUnsigned(*ptw, "max_concurrent", pctx,
                         soc.iommu.ptw.max_concurrent) ||
        !imp.getU64(*ptw, "pwc_hit_latency", pctx,
                    soc.iommu.ptw.pwc_hit_latency) ||
        !imp.getU64(*ptw, "dispatch_latency", pctx,
                    soc.iommu.ptw.dispatch_latency))
        return false;

    const Json *fbt = imp.getObject(j, "fbt", ctx);
    if (!fbt)
        return false;
    const std::string fctx = ctx + ".fbt";
    if (!imp.getUnsigned(*fbt, "entries", fctx, soc.fbt.entries) ||
        !imp.getUnsigned(*fbt, "bt_assoc", fctx, soc.fbt.bt_assoc) ||
        !imp.getUnsigned(*fbt, "ft_assoc", fctx, soc.fbt.ft_assoc) ||
        !imp.getBool(*fbt, "split_large_pages", fctx,
                     soc.fbt.split_large_pages))
        return false;

    const Json *dram = imp.getObject(j, "dram", ctx);
    if (!dram)
        return false;
    const std::string dctx = ctx + ".dram";
    if (!imp.getU64(*dram, "access_latency", dctx,
                    soc.dram.access_latency) ||
        !imp.getNumber(*dram, "bytes_per_cycle", dctx,
                       soc.dram.bytes_per_cycle))
        return false;

    return imp.getBool(j, "fbt_as_second_level_tlb", ctx,
                       soc.fbt_as_second_level_tlb) &&
           imp.getUnsigned(j, "synonym_remap_entries", ctx,
                           soc.synonym_remap_entries) &&
           imp.getNumber(j, "cu_injection_rate", ctx,
                         soc.cu_injection_rate) &&
           imp.getU64(j, "phys_mem_bytes", ctx, soc.phys_mem_bytes) &&
           imp.getBool(j, "track_lifetimes", ctx,
                       soc.track_lifetimes) &&
           imp.getBool(j, "classify_tlb_misses", ctx,
                       soc.classify_tlb_misses);
}

bool
workloadParamsFromJson(Importer &imp, const Json &j,
                       const std::string &ctx, WorkloadParams &p)
{
    unsigned graph = 0;
    if (!imp.getNumber(j, "scale", ctx, p.scale) ||
        !imp.getU64(j, "seed", ctx, p.seed) ||
        !imp.getUnsigned(j, "grid_warps", ctx, p.grid_warps) ||
        !imp.getUnsigned(j, "graph", ctx, graph))
        return false;
    p.graph = GraphKind(graph);
    return true;
}

bool
resultRecordFromJson(Importer &imp, const Json &j,
                     const std::string &ctx, int version,
                     ResultRecord &rec)
{
    if (!imp.getString(j, "workload", ctx, rec.result.workload))
        return false;
    std::string design;
    if (!imp.getString(j, "design", ctx, design))
        return false;
    if (!designFromName(design, rec.result.design))
        return imp.fail(ctx + ": unknown design '" + design + "'");
    rec.cfg.design = rec.result.design;

#define X(field)                                                        \
    {                                                                   \
        std::uint64_t v = 0;                                            \
        if (!imp.getU64(j, #field, ctx, v))                             \
            return false;                                               \
        rec.result.field = v;                                           \
    }
    GVC_RUNRESULT_U64_FIELDS(X)
#undef X
#define X(field)                                                        \
    {                                                                   \
        std::uint64_t v = 0;                                            \
        if (!imp.optU64(j, #field, ctx, v))                             \
            return false;                                               \
        rec.result.field = v;                                           \
    }
    GVC_RUNRESULT_U64_OPT_FIELDS(X)
#undef X
#define X(field)                                                        \
    if (!imp.getNumber(j, #field, ctx, rec.result.field))               \
        return false;
    GVC_RUNRESULT_F64_FIELDS(X)
#undef X

    const Json *bd = imp.getObject(j, "tlb_breakdown", ctx);
    if (!bd)
        return false;
#define X(field)                                                        \
    if (!imp.getU64(*bd, #field, ctx + ".tlb_breakdown",               \
                    rec.result.tlb_breakdown.field))                    \
        return false;
    GVC_RUNRESULT_BREAKDOWN_FIELDS(X)
#undef X

    // Per-kernel stats are schema-versioned: a version-2 record must
    // carry them, a version-1 record must not, and a version-3 (tenant)
    // record may go either way — a one-slot schedule has no boundaries
    // — but what it carries must still validate.
    const Json *kernels = j.find("kernels");
    if (version == kResultsSchemaVersion) {
        if (kernels)
            return imp.fail(ctx + ".kernels: per-kernel stats require "
                                  "schema_version " +
                            std::to_string(kResultsSchemaVersionKernels));
    } else if (kernels || version == kResultsSchemaVersionKernels) {
        if (!kernels || !kernels->isArray() || kernels->size() == 0)
            return imp.fail(ctx + ".kernels: expected a non-empty array");
        for (std::size_t k = 0; k < kernels->size(); ++k) {
            const std::string kctx =
                ctx + ".kernels[" + std::to_string(k) + "]";
            if (!kernels->at(k).isObject())
                return imp.fail(kctx + ": expected an object");
            KernelStats ks;
#define X(field)                                                        \
    if (!imp.getU64(kernels->at(k), #field, kctx, ks.field))            \
        return false;
            GVC_KERNELSTAT_FIELDS(X)
#undef X
            rec.result.kernels.push_back(ks);
        }
    }

    // The tenant block: required in full for version 3, rejected
    // outright below it.
    if (version < kResultsSchemaVersionTenants) {
        for (const char *key :
             {"tenants", "tenant_context_switches", "tenant_storm_pages",
              "percu_tlb_refs", "iommu_tlb_refs"}) {
            if (j.find(key))
                return imp.fail(ctx + "." + key +
                                ": tenant stats require schema_version " +
                                std::to_string(
                                    kResultsSchemaVersionTenants));
        }
    } else {
        const Json *tenants = j.find("tenants");
        if (!tenants || !tenants->isArray() || tenants->size() == 0)
            return imp.fail(ctx + ".tenants: expected a non-empty array");
        for (std::size_t t = 0; t < tenants->size(); ++t) {
            const std::string tctx =
                ctx + ".tenants[" + std::to_string(t) + "]";
            if (!tenants->at(t).isObject())
                return imp.fail(tctx + ": expected an object");
            TenantStats ts;
            if (!imp.getString(tenants->at(t), "workload", tctx,
                               ts.workload) ||
                !imp.getU64(tenants->at(t), "launches", tctx,
                            ts.launches))
                return false;
            const Json *stats =
                imp.getObject(tenants->at(t), "stats", tctx);
            if (!stats)
                return false;
#define X(field)                                                        \
    if (!imp.getU64(*stats, #field, tctx + ".stats", ts.stats.field))   \
        return false;
            GVC_KERNELSTAT_FIELDS(X)
#undef X
            rec.result.tenants.push_back(std::move(ts));
        }
        if (!imp.getU64(j, "tenant_context_switches", ctx,
                        rec.result.tenant_context_switches) ||
            !imp.getU64(j, "tenant_storm_pages", ctx,
                        rec.result.tenant_storm_pages))
            return false;
        const auto ref_hist = [&](const char *key, TlbRefHist &out) {
            const Json *h = imp.getObject(j, key, ctx);
            if (!h)
                return false;
            const std::string hctx = ctx + "." + key;
            const Json *buckets = h->find("buckets");
            if (!buckets || !buckets->isArray() ||
                buckets->size() != TlbRefHist::kBuckets)
                return imp.fail(hctx + ".buckets: expected an array of " +
                                std::to_string(TlbRefHist::kBuckets) +
                                " numbers");
            for (std::size_t b = 0; b < buckets->size(); ++b) {
                if (!buckets->at(b).isNumber())
                    return imp.fail(hctx + ".buckets[" +
                                    std::to_string(b) +
                                    "]: expected a number");
                out.buckets[b] = buckets->at(b).asU64();
            }
            return imp.getU64(*h, "retired", hctx, out.retired) &&
                   imp.getU64(*h, "dead", hctx, out.dead);
        };
        if (!ref_hist("percu_tlb_refs", rec.result.percu_tlb_refs) ||
            !ref_hist("iommu_tlb_refs", rec.result.iommu_tlb_refs))
            return false;
    }

    const Json *soc = imp.getObject(j, "soc", ctx);
    if (!soc || !socConfigFromJson(imp, *soc, ctx + ".soc", rec.cfg.soc))
        return false;
    // The document stores the *effective* config; raw_soc makes the
    // re-exported "soc" object reproduce it byte-for-byte.
    rec.cfg.raw_soc = true;

    const Json *params = imp.getObject(j, "workload_params", ctx);
    return params && workloadParamsFromJson(imp, *params,
                                            ctx + ".workload_params",
                                            rec.cfg.workload);
}

bool
stringList(Importer &imp, const Json &arr, const std::string &ctx,
           std::vector<std::string> &out)
{
    for (std::size_t i = 0; i < arr.size(); ++i) {
        if (!arr.at(i).isString())
            return imp.fail(ctx + "[" + std::to_string(i) +
                            "]: expected a string");
        out.push_back(arr.at(i).asString());
    }
    return true;
}

} // namespace

bool
resultRecordFromJson(const Json &j, ResultRecord &rec, std::string *err)
{
    Importer imp;
    rec = ResultRecord{};
    const auto done = [&](bool ok) {
        if (!ok && err)
            *err = imp.err;
        return ok;
    };
    if (!j.isObject())
        return done(imp.fail("record: expected a JSON object"));
    // Infer the schema version from the record's own shape: the three
    // versions differ only in which per-record blocks they carry.
    const int version = j.find("tenants")   ? kResultsSchemaVersionTenants
                        : j.find("kernels") ? kResultsSchemaVersionKernels
                                            : kResultsSchemaVersion;
    return done(resultRecordFromJson(imp, j, "record", version, rec));
}

bool
resultsFromJson(const Json &doc, ExportMeta &meta,
                std::vector<ResultRecord> &records, std::string *err)
{
    Importer imp;
    meta = ExportMeta{};
    records.clear();
    const auto done = [&](bool ok) {
        if (!ok && err)
            *err = imp.err;
        return ok;
    };

    if (!doc.isObject())
        return done(imp.fail("document: expected a JSON object"));
    std::uint64_t version = 0;
    if (!imp.getU64(doc, "schema_version", "document", version))
        return done(false);
    if (version != std::uint64_t(kResultsSchemaVersion) &&
        version != std::uint64_t(kResultsSchemaVersionKernels) &&
        version != std::uint64_t(kResultsSchemaVersionTenants))
        return done(imp.fail(
            "unsupported schema_version " + std::to_string(version) +
            " (expected " + std::to_string(kResultsSchemaVersion) +
            ", " + std::to_string(kResultsSchemaVersionKernels) +
            ", or " + std::to_string(kResultsSchemaVersionTenants) +
            ")"));
    meta.schema_version = int(version);
    if (!imp.getString(doc, "generator", "document", meta.generator))
        return done(false);

    const Json *grid = imp.getObject(doc, "grid", "document");
    if (!grid)
        return done(false);
    const Json *workloads = grid->find("workloads");
    const Json *designs = grid->find("designs");
    if (!workloads || !workloads->isArray())
        return done(imp.fail("grid.workloads: expected an array"));
    if (!designs || !designs->isArray())
        return done(imp.fail("grid.designs: expected an array"));
    if (!stringList(imp, *workloads, "grid.workloads",
                    meta.workloads) ||
        !stringList(imp, *designs, "grid.designs", meta.designs))
        return done(false);
    if (!imp.getNumber(*grid, "scale", "grid", meta.scale) ||
        !imp.getU64(*grid, "seed", "grid", meta.seed) ||
        !imp.getUnsigned(*grid, "jobs", "grid", meta.jobs))
        return done(false);
    if (grid->find("tlb_policy")) {
        if (!imp.getString(*grid, "tlb_policy", "grid",
                           meta.tlb_policy))
            return done(false);
        if (meta.tlb_policy.empty())
            return done(imp.fail("grid.tlb_policy: expected a "
                                 "non-empty policy stamp"));
    }
    if (grid->find("shard")) {
        const Json *shard = imp.getObject(*grid, "shard", "grid");
        if (!shard ||
            !imp.getUnsigned(*shard, "index", "grid.shard",
                             meta.shard_index) ||
            !imp.getUnsigned(*shard, "count", "grid.shard",
                             meta.shard_count))
            return done(false);
        if (meta.shard_count == 0 ||
            meta.shard_index >= meta.shard_count)
            return done(imp.fail(
                "grid.shard: index " +
                std::to_string(meta.shard_index) +
                " out of range for count " +
                std::to_string(meta.shard_count)));
        if (shard->find("assignment")) {
            std::string digest;
            if (!imp.getString(*shard, "assignment", "grid.shard",
                               meta.shard_assignment) ||
                !imp.getString(*shard, "cost_digest", "grid.shard",
                               digest))
                return done(false);
            if (meta.shard_assignment.empty())
                return done(imp.fail("grid.shard.assignment: expected a "
                                     "non-empty strategy name"));
            if (!parseHexU64(digest, meta.shard_cost_digest))
                return done(imp.fail("grid.shard.cost_digest: expected "
                                     "16 lowercase hex digits"));
        }
    }

    const Json *results = doc.find("results");
    if (!results || !results->isArray())
        return done(imp.fail("document.results: expected an array"));
    records.reserve(results->size());
    for (std::size_t i = 0; i < results->size(); ++i) {
        const std::string ctx = "results[" + std::to_string(i) + "]";
        if (!results->at(i).isObject())
            return done(imp.fail(ctx + ": expected an object"));
        ResultRecord rec;
        if (!resultRecordFromJson(imp, results->at(i), ctx,
                                  meta.schema_version, rec))
            return done(false);
        records.push_back(std::move(rec));
    }
    return done(true);
}

bool
mergeResults(const std::vector<Json> &shards, Json &merged,
             std::string *err)
{
    const auto fail = [&](const std::string &msg) {
        if (err)
            *err = msg;
        return false;
    };
    if (shards.empty())
        return fail("no shard documents to merge");

    ExportMeta meta;
    std::vector<MmuDesign> grid_designs;
    std::vector<std::optional<ResultRecord>> cells;
    std::size_t design_count = 0;

    for (std::size_t s = 0; s < shards.size(); ++s) {
        const std::string who = "shard " + std::to_string(s);
        ExportMeta m;
        std::vector<ResultRecord> recs;
        std::string e;
        if (!resultsFromJson(shards[s], m, recs, &e))
            return fail(who + ": " + e);

        if (s == 0) {
            meta = m;
            design_count = m.designs.size();
            for (const std::string &label : m.designs) {
                MmuDesign d;
                if (!tryParseDesign(label, d))
                    return fail(who + ": grid design label '" + label +
                                "' is not a known design");
                if (std::find(grid_designs.begin(), grid_designs.end(),
                              d) != grid_designs.end())
                    return fail(who + ": grid lists design '" + label +
                                "' more than once; cell identity is "
                                "ambiguous");
                grid_designs.push_back(d);
            }
            for (std::size_t w = 0; w < m.workloads.size(); ++w) {
                if (std::find(m.workloads.begin(),
                              m.workloads.begin() + long(w),
                              m.workloads[w]) !=
                    m.workloads.begin() + long(w))
                    return fail(who + ": grid lists workload '" +
                                m.workloads[w] +
                                "' more than once; cell identity is "
                                "ambiguous");
            }
            cells.assign(m.workloads.size() * design_count,
                         std::nullopt);
        } else {
            if (m.schema_version != meta.schema_version)
                return fail(who + ": schema_version " +
                            std::to_string(m.schema_version) +
                            " differs from shard 0's " +
                            std::to_string(meta.schema_version) +
                            "; shards of different schema versions "
                            "(per-kernel / per-tenant stats) cannot "
                            "merge");
            if (m.generator != meta.generator)
                return fail(who + ": generator '" + m.generator +
                            "' differs from shard 0's '" +
                            meta.generator + "'");
            if (m.workloads != meta.workloads ||
                m.designs != meta.designs)
                return fail(who +
                            ": grid axes differ from shard 0 (the "
                            "shards were produced from different "
                            "grids)");
            if (m.scale != meta.scale)
                return fail(who + ": workload scale differs from "
                            "shard 0");
            if (m.seed != meta.seed)
                return fail(who + ": workload seed differs from "
                            "shard 0");
            if (m.tlb_policy != meta.tlb_policy)
                return fail(who + ": tlb policy axis '" +
                            (m.tlb_policy.empty() ? "default"
                                                  : m.tlb_policy) +
                            "' differs from shard 0's '" +
                            (meta.tlb_policy.empty()
                                 ? "default"
                                 : meta.tlb_policy) +
                            "' (shards swept under different TLB "
                            "policies measure different machines and "
                            "cannot merge)");
            if (m.shard_count != meta.shard_count)
                return fail(who + ": shard count " +
                            std::to_string(m.shard_count) +
                            " differs from shard 0's " +
                            std::to_string(meta.shard_count));
            if (m.shard_assignment != meta.shard_assignment ||
                m.shard_cost_digest != meta.shard_cost_digest)
                return fail(who + ": shard assignment '" +
                            (m.shard_assignment.empty()
                                 ? "modulo"
                                 : m.shard_assignment) +
                            "' differs from shard 0's '" +
                            (meta.shard_assignment.empty()
                                 ? "modulo"
                                 : meta.shard_assignment) +
                            "' (the shards were planned with different "
                            "assignment strategies or cost models, so "
                            "their cell sets need not partition the "
                            "grid)");
            // Worker count never affects results; keep the maximum so
            // the merged document is independent of shard file order.
            meta.jobs = std::max(meta.jobs, m.jobs);
        }

        for (ResultRecord &rec : recs) {
            const auto wit =
                std::find(meta.workloads.begin(), meta.workloads.end(),
                          rec.result.workload);
            if (wit == meta.workloads.end())
                return fail(who + ": result workload '" +
                            rec.result.workload +
                            "' is not in the grid");
            const auto dit = std::find(grid_designs.begin(),
                                       grid_designs.end(),
                                       rec.cfg.design);
            if (dit == grid_designs.end())
                return fail(who + ": result design '" +
                            std::string(designName(rec.cfg.design)) +
                            "' is not in the grid");
            const std::size_t idx =
                std::size_t(wit - meta.workloads.begin()) *
                    design_count +
                std::size_t(dit - grid_designs.begin());
            if (cells[idx])
                return fail(who + ": duplicate cell " +
                            rec.result.workload + " x " +
                            designName(rec.cfg.design));
            cells[idx] = std::move(rec);
        }
    }

    std::vector<std::string> missing;
    for (std::size_t idx = 0; idx < cells.size(); ++idx) {
        if (!cells[idx]) {
            missing.push_back(
                meta.workloads[idx / design_count] + " x " +
                meta.designs[idx % design_count]);
        }
    }
    if (!missing.empty()) {
        std::string msg = std::to_string(missing.size()) +
                          " missing cell(s):";
        const std::size_t show =
            std::min<std::size_t>(missing.size(), 8);
        for (std::size_t i = 0; i < show; ++i)
            msg += (i ? ", " : " ") + missing[i];
        if (missing.size() > show)
            msg += ", ...";
        return fail(msg);
    }

    meta.shard_index = 0;
    meta.shard_count = 1;
    meta.shard_assignment.clear();
    meta.shard_cost_digest = 0;
    std::vector<ResultRecord> ordered;
    ordered.reserve(cells.size());
    for (auto &cell : cells)
        ordered.push_back(std::move(*cell));
    merged = resultsToJson(meta, ordered);
    return true;
}

std::string
resultsCsvHeader()
{
    std::string h = "workload,design";
#define X(field) h += "," #field;
    GVC_RUNRESULT_U64_FIELDS(X)
    GVC_RUNRESULT_U64_OPT_FIELDS(X)
    GVC_RUNRESULT_F64_FIELDS(X)
#undef X
#define X(field) h += ",tlb_breakdown." #field;
    GVC_RUNRESULT_BREAKDOWN_FIELDS(X)
#undef X
    return h;
}

std::string
resultsCsvRow(const RunResult &r)
{
    // Design names contain spaces but no commas/quotes, so plain
    // unquoted CSV cells are sufficient.
    std::string row = r.workload;
    row += ',';
    row += designName(r.design);
    char buf[40];
#define X(field)                                                        \
    std::snprintf(buf, sizeof(buf), ",%llu",                            \
                  (unsigned long long)(r.field));                       \
    row += buf;
    GVC_RUNRESULT_U64_FIELDS(X)
    GVC_RUNRESULT_U64_OPT_FIELDS(X)
#undef X
#define X(field)                                                        \
    row += ',';                                                         \
    row += doubleLexeme(r.field);
    GVC_RUNRESULT_F64_FIELDS(X)
#undef X
#define X(field)                                                        \
    std::snprintf(buf, sizeof(buf), ",%llu",                            \
                  (unsigned long long)(r.tlb_breakdown.field));         \
    row += buf;
    GVC_RUNRESULT_BREAKDOWN_FIELDS(X)
#undef X
    return row;
}

std::string
resultsToCsv(const std::vector<ResultRecord> &records)
{
    std::string out = resultsCsvHeader();
    out += '\n';
    for (const auto &rec : records) {
        out += resultsCsvRow(rec.result);
        out += '\n';
    }
    return out;
}

} // namespace gvc
