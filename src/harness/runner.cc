#include "harness/runner.hh"

#include <memory>
#include <utility>

#include "mem/phys_mem.hh"
#include "mem/vm.hh"

namespace gvc
{

RunResult
runSource(trace::KernelSource &source, const RunConfig &cfg,
          const InspectFn &inspect, trace::Trace *capture,
          const RunHooks *hooks)
{
    // The seed comes from the source so a trace replays with the same
    // simulation context the live run had.
    SimContext ctx(source.params().seed);
    PhysMem pm(cfg.soc.phys_mem_bytes);
    // The design's page policy must be live before setup() maps any
    // region, so the resolved SocConfig is needed ahead of the Vm.
    const SocConfig soc =
        cfg.raw_soc ? cfg.soc : configFor(cfg.design, cfg.soc);
    Vm vm(pm);
    vm.setPagePolicy(Vm::PagePolicy(soc.vm_page_policy));

    if (capture) {
        capture->workload = source.name();
        capture->params = source.params();
        vm.recordOps(true);
    }
    source.setup(vm);
    if (capture) {
        vm.recordOps(false);
        capture->vm_ops = vm.recordedOps();
    }

    Dram dram(ctx, cfg.soc.dram);
    SystemUnderTest sut(ctx, soc, vm, dram, cfg.design);
    Gpu gpu(ctx, soc.gpu, sut.memIf());

    auto launches = source.kernels();
    if (capture) {
        trace::wrapForRecording(launches, *capture);
        capture->boundaries = source.boundaries();
    }

    // Kernel boundaries (scenario runs): after the named launch drains,
    // snapshot the counters into a per-kernel delta, apply the boundary
    // policy, and rebase the CU issue machinery so the next kernel
    // schedules shift-invariantly.
    const auto &bounds = source.boundaries();
    std::vector<KernelStats> per_kernel;
    KernelStats prev_snap;
    std::size_t next_bound = 0;
    for (std::size_t i = 0; i < launches.size(); ++i) {
        bool done = false;
        // A start_at hook models a kernel arrival process: a launch
        // whose arrival is still in the future waits on the event
        // queue (the GPU sits idle), otherwise it starts immediately.
        const Tick at =
            hooks && hooks->start_at ? hooks->start_at(i) : 0;
        if (at > ctx.now()) {
            ctx.eq.schedule(at, [&gpu, &launches, &done, i] {
                gpu.launch(std::move(launches[i]),
                           [&done] { done = true; });
            });
        } else {
            gpu.launch(std::move(launches[i]), [&done] { done = true; });
        }
        ctx.eq.run();
        if (!done)
            panic("runSource: kernel failed to drain the event queue");
        if (next_bound < bounds.size() &&
            bounds[next_bound].kernel == i) {
            const auto policy =
                BoundaryPolicy::decode(bounds[next_bound].policy);
            if (!policy)
                fatal("runSource: invalid boundary policy byte");
            const KernelStats snap =
                collectKernelStats(sut, gpu, dram, ctx);
            per_kernel.push_back(kernelDelta(snap, prev_snap));
            prev_snap = snap;
            sut.applyBoundary(*policy);
            gpu.resetIssueState();
            if (hooks && hooks->after_boundary)
                hooks->after_boundary(next_bound, sut, gpu, dram, vm,
                                      ctx);
            ++next_bound;
        }
    }

    if (!bounds.empty()) {
        const KernelStats snap = collectKernelStats(sut, gpu, dram, ctx);
        per_kernel.push_back(kernelDelta(snap, prev_snap));
    }
    if (hooks && hooks->at_end)
        hooks->at_end(sut, gpu, dram, vm, ctx);

    const Tick end = ctx.now();
    if (Iommu *io = sut.iommu())
        io->sampler().finish(end);
    sut.flushLifetimes();

    RunResult r;
    sut.collectTlbRefs(r.percu_tlb_refs, r.iommu_tlb_refs);
    r.workload = source.name();
    r.design = cfg.design;
    r.kernels = std::move(per_kernel);
    r.exec_ticks = end;
    r.instructions = gpu.totalInstructions();
    r.mem_instructions = gpu.totalMemInstructions();
    r.lines_per_mem_inst = gpu.meanLinesPerMemInst();

    if (BaselineMmuSystem *b = sut.baseline()) {
        r.tlb_accesses = b->tlbAccesses();
        r.tlb_misses = b->tlbMisses();
        r.tlb_miss_ratio = b->tlbMissRatio();
        r.tlb_breakdown = b->breakdown();
        std::uint64_t l1_acc = 0, l1_hit = 0;
        for (unsigned cu = 0; cu < soc.gpu.num_cus; ++cu) {
            l1_acc += b->caches().l1(cu).accesses();
            l1_hit += b->caches().l1(cu).hits();
        }
        r.l1_accesses = l1_acc;
        r.l2_accesses = b->caches().l2().accesses();
        r.l1_hit_ratio = l1_acc ? double(l1_hit) / double(l1_acc) : 0.0;
        r.l2_hit_ratio = b->caches().l2().hitRatio();
        r.tlb_reach_hits = b->tlbReachHits();
        r.tlb_reach_fills = b->tlbReachFills();
        r.tlb_merges = b->tlbMerges();
        r.tlb_fill_bypasses = b->tlbFillBypasses();
        r.tlb_dead_first_evictions = b->tlbDeadFirstEvictions();
        r.tlb_pred_true_pos = b->tlbPredTruePos();
        r.tlb_pred_false_pos = b->tlbPredFalsePos();
        r.victima_stashes = b->victimaStashes();
        r.victima_probes = b->victimaProbes();
        r.victima_hits = b->victimaHits();
    } else if (VirtualCacheSystem *v = sut.vc()) {
        std::uint64_t l1_acc = 0, l1_hit = 0;
        for (unsigned cu = 0; cu < soc.gpu.num_cus; ++cu) {
            l1_acc += v->l1(cu).accesses();
            l1_hit += v->l1(cu).hits();
        }
        r.l1_accesses = l1_acc;
        r.l2_accesses = v->l2().accesses();
        r.l1_hit_ratio = l1_acc ? double(l1_hit) / double(l1_acc) : 0.0;
        r.l2_hit_ratio = v->l2().hitRatio();
        r.synonym_replays = v->synonymReplays();
        r.rw_faults = v->rwFaults();
        r.fbt_purges = v->fbtPurges();
        r.fbt_valid_pages = v->fbt().validEntries();
        r.fbt_second_level_hit_ratio = v->fbt().ftHitRatio();
        r.fbt_lookups = v->fbt().btLookups() + v->fbt().ftLookups();
    } else if (L1OnlyVcSystem *l = sut.l1vc()) {
        std::uint64_t l1_acc = 0, l1_hit = 0, t_acc = 0, t_miss = 0;
        for (unsigned cu = 0; cu < soc.gpu.num_cus; ++cu) {
            l1_acc += l->l1(cu).accesses();
            l1_hit += l->l1(cu).hits();
            t_acc += l->perCuTlb(cu).accesses();
            t_miss += l->perCuTlb(cu).misses();
            r.tlb_reach_hits += l->perCuTlb(cu).reachHits();
            r.tlb_reach_fills += l->perCuTlb(cu).reachFills();
            r.tlb_merges += l->perCuTlb(cu).merges();
            r.tlb_fill_bypasses += l->perCuTlb(cu).fillBypasses();
            r.tlb_dead_first_evictions +=
                l->perCuTlb(cu).deadFirstEvictions();
            r.tlb_pred_true_pos += l->perCuTlb(cu).predTruePos();
            r.tlb_pred_false_pos += l->perCuTlb(cu).predFalsePos();
        }
        r.l1_accesses = l1_acc;
        r.l2_accesses = l->caches().l2().accesses();
        r.l1_hit_ratio = l1_acc ? double(l1_hit) / double(l1_acc) : 0.0;
        r.l2_hit_ratio = l->caches().l2().hitRatio();
        r.tlb_accesses = t_acc;
        r.tlb_misses = t_miss;
        r.tlb_miss_ratio = t_acc ? double(t_miss) / double(t_acc) : 0.0;
        r.synonym_replays = l->synonymReplays();
    } else if (IdealMmuSystem *i = sut.ideal()) {
        std::uint64_t l1_acc = 0, l1_hit = 0;
        for (unsigned cu = 0; cu < soc.gpu.num_cus; ++cu) {
            l1_acc += i->caches().l1(cu).accesses();
            l1_hit += i->caches().l1(cu).hits();
        }
        r.l1_accesses = l1_acc;
        r.l2_accesses = i->caches().l2().accesses();
        r.l1_hit_ratio = l1_acc ? double(l1_hit) / double(l1_acc) : 0.0;
        r.l2_hit_ratio = i->caches().l2().hitRatio();
    }
    r.dram_accesses = dram.accesses();
    r.dram_bytes = dram.bytesMoved();

    if (Iommu *io = sut.iommu()) {
        r.iommu_accesses = io->accesses();
        r.iommu_apc_mean = io->sampler().meanPerCycle();
        r.iommu_apc_stdev = io->sampler().stdevPerCycle();
        r.iommu_apc_max = io->sampler().maxPerCycle();
        r.iommu_frac_windows_over_1 =
            io->sampler().fractionAboveThreshold();
        r.iommu_serialization_mean = io->meanSerializationDelay();
        r.page_walks = io->walks();
        r.iommu_reach_hits = io->tlb().reachHits();
        r.iommu_reach_fills = io->tlb().reachFills();
        r.iommu_coalesced_fills = io->coalescedFills();
        r.large_page_walks = io->ptw().largeWalks();
        r.iommu_fill_bypasses = io->tlb().fillBypasses();
        r.iommu_dead_first_evictions = io->tlb().deadFirstEvictions();
        r.iommu_pred_true_pos = io->tlb().predTruePos();
        r.iommu_pred_false_pos = io->tlb().predFalsePos();
        if (r.fbt_second_level_hit_ratio == 0.0 &&
            io->secondLevelLookups() > 0) {
            r.fbt_second_level_hit_ratio =
                double(io->secondLevelHits()) /
                double(io->secondLevelLookups());
        }
    }

    if (inspect)
        inspect(sut, gpu, ctx);
    return r;
}

RunResult
runWorkload(const std::string &workload_name, const RunConfig &cfg,
            const InspectFn &inspect, trace::Trace *capture)
{
    if (!cfg.trace_in.empty()) {
        auto t = std::make_shared<trace::Trace>();
        std::string err;
        if (!trace::TraceReader::readFile(cfg.trace_in, *t, &err))
            fatal("runWorkload: " + err);
        trace::TraceKernelSource source(std::move(t));
        return runSource(source, cfg, inspect, capture);
    }
    trace::WorkloadKernelSource source(workload_name, cfg.workload);
    return runSource(source, cfg, inspect, capture);
}

RunResult
runScenario(const std::string &workload_name, const RunConfig &cfg,
            const ScenarioSpec &spec, const InspectFn &inspect,
            trace::Trace *capture)
{
    if (spec.rounds == 0)
        fatal("runScenario: rounds must be >= 1");

    // One round of the workload, captured without simulating.  The
    // scenario then *is* a trace: kernels tiled rounds times with a
    // boundary marker between rounds, replayed by the core runner.
    // This makes live scenario runs and replays of recorded scenario
    // traces the same code path, so they match bit for bit.
    trace::Trace base;
    if (!cfg.trace_in.empty()) {
        std::string err;
        if (!trace::TraceReader::readFile(cfg.trace_in, base, &err))
            fatal("runScenario: " + err);
        if (!base.boundaries.empty()) {
            fatal("runScenario: '" + cfg.trace_in +
                  "' already carries kernel boundaries; replay it "
                  "directly instead of re-tiling it");
        }
    } else {
        base = trace::captureWorkloadTrace(workload_name, cfg.workload,
                                           cfg.soc.phys_mem_bytes);
    }
    if (base.kernels.empty() && spec.rounds > 1)
        fatal("runScenario: workload emitted no kernels to repeat");

    auto scen = std::make_shared<trace::Trace>(std::move(base));
    const std::size_t per_round = scen->kernels.size();
    const std::vector<trace::TraceKernel> one_round = scen->kernels;
    for (unsigned round = 1; round < spec.rounds; ++round) {
        scen->boundaries.push_back(trace::TraceBoundary{
            std::uint64_t(round) * per_round - 1,
            spec.boundary.encode()});
        scen->kernels.insert(scen->kernels.end(), one_round.begin(),
                             one_round.end());
    }
    if (capture)
        *capture = *scen;

    RunConfig run_cfg = cfg;
    run_cfg.trace_in.clear();
    trace::TraceKernelSource source(std::move(scen));
    return runSource(source, run_cfg, inspect);
}

} // namespace gvc
