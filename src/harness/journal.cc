#include "harness/journal.hh"

#include <cinttypes>
#include <cstdio>
#include <cstring>

namespace gvc
{

namespace
{

/// Same FNV-1a-64 as the `.gvct` trace format.
std::uint64_t
fnv1a(const std::uint8_t *data, std::size_t size)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (std::size_t i = 0; i < size; ++i) {
        h ^= data[i];
        h *= 0x100000001b3ull;
    }
    return h;
}

void
putU32(std::vector<std::uint8_t> &out, std::uint32_t v)
{
    out.push_back(std::uint8_t(v & 0xff));
    out.push_back(std::uint8_t((v >> 8) & 0xff));
    out.push_back(std::uint8_t((v >> 16) & 0xff));
    out.push_back(std::uint8_t((v >> 24) & 0xff));
}

void
putU64(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(std::uint8_t((v >> (8 * i)) & 0xff));
}

std::uint32_t
getU32(const std::uint8_t *p)
{
    return std::uint32_t(p[0]) | (std::uint32_t(p[1]) << 8) |
           (std::uint32_t(p[2]) << 16) | (std::uint32_t(p[3]) << 24);
}

std::uint64_t
getU64(const std::uint8_t *p)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= std::uint64_t(p[i]) << (8 * i);
    return v;
}

std::string
hexU64(std::uint64_t v)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016" PRIx64, v);
    return std::string(buf);
}

bool
parseHexU64(const std::string &s, std::uint64_t &out)
{
    if (s.size() != 16)
        return false;
    std::uint64_t v = 0;
    for (char c : s) {
        int digit;
        if (c >= '0' && c <= '9')
            digit = c - '0';
        else if (c >= 'a' && c <= 'f')
            digit = c - 'a' + 10;
        else
            return false;
        v = (v << 4) | std::uint64_t(digit);
    }
    out = v;
    return true;
}

/// Append one [size u32][digest u64][payload] frame for @p payload.
void
appendFrame(std::vector<std::uint8_t> &out, const std::string &payload)
{
    const auto *bytes =
        reinterpret_cast<const std::uint8_t *>(payload.data());
    putU32(out, std::uint32_t(payload.size()));
    putU64(out, fnv1a(bytes, payload.size()));
    out.insert(out.end(), bytes, bytes + payload.size());
}

Json
metaToJson(const ExportMeta &meta)
{
    Json j = Json::object();
    j.set("generator", meta.generator);
    Json workloads = Json::array();
    for (const auto &w : meta.workloads)
        workloads.push(Json(w));
    j.set("workloads", std::move(workloads));
    Json designs = Json::array();
    for (const auto &d : meta.designs)
        designs.push(Json(d));
    j.set("designs", std::move(designs));
    j.set("scale", Json(meta.scale));
    j.set("seed", Json(meta.seed));
    // Informational only: resume deliberately accepts a different
    // worker count (journalMatchesGrid ignores it).
    j.set("jobs", Json(meta.jobs));
    j.set("shard_index", Json(meta.shard_index));
    j.set("shard_count", Json(meta.shard_count));
    j.set("assignment", meta.shard_assignment);
    j.set("cost_digest", hexU64(meta.shard_cost_digest));
    j.set("tlb_policy", meta.tlb_policy);
    return j;
}

bool
metaFromJson(const Json &j, ExportMeta &meta, std::string &err)
{
    meta = ExportMeta{};
    if (!j.isObject()) {
        err = "journal meta: expected a JSON object";
        return false;
    }
    const auto getString = [&](const char *key, std::string &out) {
        const Json *v = j.find(key);
        if (!v || !v->isString()) {
            err = std::string("journal meta.") + key +
                  ": expected a string";
            return false;
        }
        out = v->asString();
        return true;
    };
    const auto getNumber = [&](const char *key, double &out) {
        const Json *v = j.find(key);
        if (!v || !v->isNumber()) {
            err = std::string("journal meta.") + key +
                  ": expected a number";
            return false;
        }
        out = v->asNumber();
        return true;
    };
    const auto getLabels = [&](const char *key,
                               std::vector<std::string> &out) {
        const Json *v = j.find(key);
        if (!v || !v->isArray()) {
            err = std::string("journal meta.") + key +
                  ": expected an array";
            return false;
        }
        for (std::size_t i = 0; i < v->size(); ++i) {
            if (!v->at(i).isString()) {
                err = std::string("journal meta.") + key +
                      ": expected an array of strings";
                return false;
            }
            out.push_back(v->at(i).asString());
        }
        return true;
    };
    double num = 0;
    if (!getString("generator", meta.generator) ||
        !getLabels("workloads", meta.workloads) ||
        !getLabels("designs", meta.designs) ||
        !getNumber("scale", meta.scale))
        return false;
    const Json *seed = j.find("seed");
    if (!seed || !seed->isNumber()) {
        err = "journal meta.seed: expected a number";
        return false;
    }
    meta.seed = seed->asU64();
    if (!getNumber("jobs", num))
        return false;
    meta.jobs = unsigned(num);
    if (!getNumber("shard_index", num))
        return false;
    meta.shard_index = unsigned(num);
    if (!getNumber("shard_count", num))
        return false;
    meta.shard_count = unsigned(num);
    std::string digest;
    if (!getString("assignment", meta.shard_assignment) ||
        !getString("cost_digest", digest))
        return false;
    if (!parseHexU64(digest, meta.shard_cost_digest)) {
        err = "journal meta.cost_digest: expected 16 lowercase hex digits";
        return false;
    }
    // Absent in pre-policy-axis journals; those ran the defaults.
    if (const Json *tp = j.find("tlb_policy")) {
        if (!tp->isString()) {
            err = "journal meta.tlb_policy: expected a string";
            return false;
        }
        meta.tlb_policy = tp->asString();
    }
    return true;
}

void
setErr(std::string *err, const std::string &msg)
{
    if (err)
        *err = msg;
}

} // namespace

JournalWriter::~JournalWriter()
{
    close();
}

void
JournalWriter::close()
{
    if (file_) {
        std::fclose(file_);
        file_ = nullptr;
    }
}

bool
JournalWriter::create(const std::string &path, const ExportMeta &meta,
                      std::string *err)
{
    close();
    file_ = std::fopen(path.c_str(), "wb");
    if (!file_) {
        setErr(err, "journal: cannot create '" + path + "'");
        return false;
    }
    path_ = path;
    const std::vector<std::uint8_t> header = journalHeader(meta);
    if (std::fwrite(header.data(), 1, header.size(), file_) !=
            header.size() ||
        std::fflush(file_) != 0) {
        setErr(err, "journal: write failed on '" + path + "'");
        close();
        return false;
    }
    return true;
}

bool
JournalWriter::openAppend(const std::string &path, std::string *err)
{
    close();
    file_ = std::fopen(path.c_str(), "ab");
    if (!file_) {
        setErr(err, "journal: cannot open '" + path + "' for append");
        return false;
    }
    path_ = path;
    return true;
}

bool
JournalWriter::append(const std::string &key, const ResultRecord &record,
                      std::string *err)
{
    if (!file_) {
        setErr(err, "journal: append on a closed journal");
        return false;
    }
    const std::vector<std::uint8_t> frame = journalFrame(key, record);
    // One write + flush per cell: a kill between cells never leaves a
    // half frame, and a kill mid-write loses only this frame — the
    // strict reader then reports the truncation instead of resuming
    // from a corrupt record.
    if (std::fwrite(frame.data(), 1, frame.size(), file_) !=
            frame.size() ||
        std::fflush(file_) != 0) {
        setErr(err, "journal: write failed on '" + path_ + "'");
        return false;
    }
    return true;
}

std::vector<std::uint8_t>
journalHeader(const ExportMeta &meta)
{
    std::vector<std::uint8_t> out;
    out.insert(out.end(), kJournalMagic, kJournalMagic + 4);
    putU32(out, kJournalVersion);
    const std::string payload = metaToJson(meta).dump();
    const auto *bytes =
        reinterpret_cast<const std::uint8_t *>(payload.data());
    putU64(out, fnv1a(bytes, payload.size()));
    putU32(out, std::uint32_t(payload.size()));
    out.insert(out.end(), bytes, bytes + payload.size());
    return out;
}

std::vector<std::uint8_t>
journalFrame(const std::string &key, const ResultRecord &record)
{
    Json j = Json::object();
    j.set("key", key);
    j.set("record", resultRecordToJson(record));
    std::vector<std::uint8_t> out;
    appendFrame(out, j.dump());
    return out;
}

bool
parseJournal(const std::uint8_t *data, std::size_t size, ExportMeta &meta,
             std::vector<JournalEntry> &entries, std::string *err)
{
    entries.clear();
    if (size < 20) {
        setErr(err, "journal: truncated header");
        return false;
    }
    if (std::memcmp(data, kJournalMagic, 4) != 0) {
        setErr(err, "journal: bad magic (not a .gvcj file)");
        return false;
    }
    const std::uint32_t version = getU32(data + 4);
    if (version != kJournalVersion) {
        setErr(err, "journal: unsupported format version " +
                        std::to_string(version));
        return false;
    }
    const std::uint64_t meta_digest = getU64(data + 8);
    const std::uint32_t meta_size = getU32(data + 16);
    std::size_t pos = 20;
    if (size - pos < meta_size) {
        setErr(err, "journal: truncated meta payload");
        return false;
    }
    if (fnv1a(data + pos, meta_size) != meta_digest) {
        setErr(err, "journal: meta digest mismatch (corrupt file)");
        return false;
    }
    const std::string meta_text(reinterpret_cast<const char *>(data + pos),
                                meta_size);
    pos += meta_size;
    std::string perr;
    const Json meta_json = Json::parse(meta_text, &perr);
    if (meta_json.isNull()) {
        setErr(err, "journal: meta parse error: " + perr);
        return false;
    }
    std::string merr;
    if (!metaFromJson(meta_json, meta, merr)) {
        setErr(err, merr);
        return false;
    }
    while (pos < size) {
        if (size - pos < 12) {
            setErr(err, "journal: truncated record frame header at offset " +
                            std::to_string(pos));
            return false;
        }
        const std::uint32_t payload_size = getU32(data + pos);
        const std::uint64_t digest = getU64(data + pos + 4);
        pos += 12;
        if (size - pos < payload_size) {
            setErr(err, "journal: truncated record payload at offset " +
                            std::to_string(pos));
            return false;
        }
        if (fnv1a(data + pos, payload_size) != digest) {
            setErr(err, "journal: record digest mismatch at offset " +
                            std::to_string(pos) + " (corrupt frame)");
            return false;
        }
        const std::string payload(reinterpret_cast<const char *>(data + pos),
                                  payload_size);
        pos += payload_size;
        const Json rec_json = Json::parse(payload, &perr);
        if (rec_json.isNull()) {
            setErr(err, "journal: record parse error: " + perr);
            return false;
        }
        const Json *key = rec_json.find("key");
        const Json *record = rec_json.find("record");
        if (!key || !key->isString() || !record) {
            setErr(err, "journal: record frame missing \"key\"/\"record\"");
            return false;
        }
        JournalEntry entry;
        entry.key = key->asString();
        std::string rerr;
        if (!resultRecordFromJson(*record, entry.record, &rerr)) {
            setErr(err, "journal: " + rerr);
            return false;
        }
        entries.push_back(std::move(entry));
    }
    return true;
}

bool
readJournal(const std::string &path, ExportMeta &meta,
            std::vector<JournalEntry> &entries, std::string *err)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f) {
        setErr(err, "journal: cannot open '" + path + "'");
        return false;
    }
    std::vector<std::uint8_t> data;
    std::uint8_t buf[1 << 16];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        data.insert(data.end(), buf, buf + n);
    const bool read_ok = !std::ferror(f);
    std::fclose(f);
    if (!read_ok) {
        setErr(err, "journal: read failed on '" + path + "'");
        return false;
    }
    return parseJournal(data.data(), data.size(), meta, entries, err);
}

bool
journalMatchesGrid(const ExportMeta &journal, const ExportMeta &run,
                   std::string *err)
{
    const auto fail = [&](const std::string &msg) {
        setErr(err, "journal grid mismatch: " + msg +
                        " (the journal belongs to a different sweep; "
                        "start a fresh one with --journal)");
        return false;
    };
    if (journal.generator != run.generator)
        return fail("generator '" + journal.generator + "' vs '" +
                    run.generator + "'");
    if (journal.workloads != run.workloads)
        return fail("workload axis differs");
    if (journal.designs != run.designs)
        return fail("design axis differs");
    if (journal.scale != run.scale)
        return fail("scale differs");
    if (journal.seed != run.seed)
        return fail("seed differs");
    if (journal.shard_index != run.shard_index ||
        journal.shard_count != run.shard_count)
        return fail("shard " + std::to_string(journal.shard_index) + "/" +
                    std::to_string(journal.shard_count) + " vs " +
                    std::to_string(run.shard_index) + "/" +
                    std::to_string(run.shard_count));
    if (journal.shard_assignment != run.shard_assignment)
        return fail("shard assignment '" +
                    (journal.shard_assignment.empty()
                         ? std::string("modulo")
                         : journal.shard_assignment) +
                    "' vs '" +
                    (run.shard_assignment.empty() ? std::string("modulo")
                                                  : run.shard_assignment) +
                    "'");
    if (journal.shard_cost_digest != run.shard_cost_digest)
        return fail("cost-model digest differs");
    if (journal.tlb_policy != run.tlb_policy)
        return fail("tlb policy axis '" +
                    (journal.tlb_policy.empty() ? std::string("default")
                                                : journal.tlb_policy) +
                    "' vs '" +
                    (run.tlb_policy.empty() ? std::string("default")
                                            : run.tlb_policy) +
                    "'");
    return true;
}

} // namespace gvc
