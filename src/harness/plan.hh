/**
 * @file
 * Cost-balanced shard planning for distributed sweeps.
 *
 * Modulo striping (`cell % N == I`) splits a grid evenly by *count*,
 * but Table-2 grid cells differ wildly in runtime (a reach design on a
 * graph workload can cost many times an ideal-MMU cell), so the
 * slowest shard gates the fleet.  This layer loads a per-cell cost
 * model from measurements the repo already produces — a `gvc_bench`
 * JSON report, a sweep checkpoint journal (`.gvcj`), or a sweep
 * results JSON document — and packs cells onto shards with the
 * classic LPT (longest-processing-time) greedy heuristic.
 *
 * Everything here is deterministic: samples aggregate by (workload,
 * design name) independent of file order, LPT breaks ties by
 * canonical cell index then lowest shard index, and the cost-model
 * file's FNV-1a-64 digest is stamped into each shard's export so
 * `gvc_merge` can refuse shard sets planned against different models
 * (which could silently overlap or leave holes).
 */

#ifndef GVC_HARNESS_PLAN_HH
#define GVC_HARNESS_PLAN_HH

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace gvc
{

/**
 * Per-cell cost estimates aggregated from a measurement file.
 *
 * Costs are keyed by (workload, design display name) — the identity
 * both bench configs and results records already carry.  Multiple
 * samples for one cell average; lookups for unmeasured cells fall
 * back (exact cell -> workload mean -> overall mean -> 1.0), so a
 * partial measurement file still yields a usable plan and the uniform
 * model degenerates to balanced-count packing.
 */
class CostModel
{
  public:
    /** The no-measurements model: every cell costs 1.0. */
    static CostModel uniform() { return CostModel{}; }

    /**
     * Load measurements from @p path, auto-detected by content:
     * `.gvcj` journal (cost = exec_ticks per journaled cell),
     * `gvc_bench` report (cost = median_wall_ms per config), or sweep
     * results JSON (cost = exec_ticks per record).  Returns false
     * with a named error in @p err on unreadable/unrecognized files.
     */
    bool load(const std::string &path, std::string *err = nullptr);

    /** Estimated cost of one cell (always > 0; see fallback chain). */
    double costFor(const std::string &workload,
                   const std::string &design) const;

    /** FNV-1a-64 of the source file's bytes; 0 for the uniform model. */
    std::uint64_t digest() const { return digest_; }

    /** Path the model was loaded from; empty for the uniform model. */
    const std::string &source() const { return source_; }

    bool isUniform() const { return cells_.empty(); }

    /** Number of distinct (workload, design) cells with measurements. */
    std::size_t measuredCells() const { return cells_.size(); }

  private:
    struct Sample
    {
        double sum = 0.0;
        std::uint64_t count = 0;
        double mean() const { return count ? sum / double(count) : 0.0; }
    };

    void addSample(const std::string &workload, const std::string &design,
                   double cost);

    std::map<std::pair<std::string, std::string>, Sample> cells_;
    std::map<std::string, Sample> workloads_;
    Sample overall_;
    std::uint64_t digest_ = 0;
    std::string source_;
};

/**
 * Assign each cell to a shard by LPT greedy bin packing: cells sorted
 * by cost descending (canonical index ascending on ties) each go to
 * the currently least-loaded shard (lowest shard index on ties).
 * Returns one shard index per cell, in the cells' canonical order;
 * when @p loads is non-null it receives the final per-shard cost
 * totals.  Fully deterministic for a given (costs, shard_count).
 */
std::vector<unsigned> planShards(const std::vector<double> &costs,
                                 unsigned shard_count,
                                 std::vector<double> *loads = nullptr);

} // namespace gvc

#endif // GVC_HARNESS_PLAN_HH
