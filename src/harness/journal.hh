/**
 * @file
 * Sweep checkpoint journal: an append-only on-disk log (`.gvcj`) of
 * completed sweep cells, so an interrupted `gvc_sweep` restarted with
 * `--resume` skips every cell that already ran — and still exports
 * JSON/CSV byte-identical to an uninterrupted run, because journaled
 * results round-trip through the exact record serializer the results
 * documents use (results_io's X-macro field set).
 *
 * ## File format (version 1)
 *
 *     offset  size  field
 *     0       4     magic "GVCJ"
 *     4       4     format version, u32 little-endian
 *     8       8     FNV-1a-64 digest of the meta payload
 *     16      4     meta payload size, u32 little-endian
 *     20      ...   meta payload (JSON text)
 *
 * followed by zero or more self-delimiting record frames:
 *
 *     +0      4     payload size, u32 little-endian
 *     +4      8     FNV-1a-64 digest of the payload
 *     +12     ...   payload (JSON text)
 *
 * The meta payload names the sweep the journal belongs to (generator,
 * workload/design axes, scale, seed, shard position, shard-assignment
 * stamp), so a journal can never silently resume a different grid.
 * Each record payload is `{"key": <runConfigKey>, "record":
 * <resultRecordToJson>}`; the key is the cell's canonical memoization
 * key, which covers the effective SocConfig, so raw-mode overrides are
 * part of a cell's identity.  Frames are written with a single write
 * call and flushed as each cell completes, so a killed sweep loses at
 * most the frame in flight; the reader mirrors the `.gvct` reader's
 * strictness — truncated frames, digest mismatches, bad magic/version,
 * and malformed payloads each fail with a named error.
 */

#ifndef GVC_HARNESS_JOURNAL_HH
#define GVC_HARNESS_JOURNAL_HH

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "harness/results_io.hh"

namespace gvc
{

/** On-disk journal format version. */
inline constexpr std::uint32_t kJournalVersion = 1;

/** File magic ("GVCJ"). */
inline constexpr char kJournalMagic[4] = {'G', 'V', 'C', 'J'};

/** One journaled cell: its canonical key and the completed record. */
struct JournalEntry
{
    std::string key;
    ResultRecord record;
};

/**
 * Appends cells to a journal file.  create() starts a fresh journal
 * (truncating any previous file); openAppend() continues an existing
 * one whose header the caller has already read and validated.  Not
 * thread-safe — serialize append() calls (Sweep's cell hook already
 * runs under a mutex).
 */
class JournalWriter
{
  public:
    JournalWriter() = default;
    ~JournalWriter();
    JournalWriter(const JournalWriter &) = delete;
    JournalWriter &operator=(const JournalWriter &) = delete;

    /**
     * Create/truncate @p path and write the header describing
     * @p meta's grid.  Returns false with a message in @p err on I/O
     * failure.
     */
    bool create(const std::string &path, const ExportMeta &meta,
                std::string *err = nullptr);

    /** Open an existing journal for appending further records. */
    bool openAppend(const std::string &path, std::string *err = nullptr);

    /**
     * Append one completed cell and flush, so the frame survives the
     * process being killed right afterwards.
     */
    bool append(const std::string &key, const ResultRecord &record,
                std::string *err = nullptr);

    bool isOpen() const { return file_ != nullptr; }
    const std::string &path() const { return path_; }

    /** Close explicitly (also done by the destructor). */
    void close();

  private:
    std::FILE *file_ = nullptr;
    std::string path_;
};

/**
 * Serialize the journal header (magic, version, framed meta payload)
 * for @p meta — exposed for tests that corrupt specific bytes.
 */
std::vector<std::uint8_t> journalHeader(const ExportMeta &meta);

/** Serialize one record frame — exposed for the same tests. */
std::vector<std::uint8_t> journalFrame(const std::string &key,
                                       const ResultRecord &record);

/**
 * Parse a full journal image: header plus every record frame.
 * Validates magic, version, both digest layers, framing (a truncated
 * header or frame is an error, mirroring the `.gvct` reader), and
 * every record payload field-exactly.  Returns false with a named
 * error in @p err on any defect.
 */
bool parseJournal(const std::uint8_t *data, std::size_t size,
                  ExportMeta &meta, std::vector<JournalEntry> &entries,
                  std::string *err = nullptr);

/** Read and parse the journal at @p path. */
bool readJournal(const std::string &path, ExportMeta &meta,
                 std::vector<JournalEntry> &entries,
                 std::string *err = nullptr);

/**
 * Check that a journal's meta describes the sweep about to run:
 * generator, workload/design axes, scale, seed, shard position, and
 * shard-assignment stamp must all match (`jobs` is deliberately
 * exempt — worker count does not affect results, so an elastic fleet
 * may resume with a different `--jobs`; the export's "jobs" field
 * reflects the final invocation).  Returns false with a named
 * mismatch in @p err.
 */
bool journalMatchesGrid(const ExportMeta &journal, const ExportMeta &run,
                        std::string *err = nullptr);

} // namespace gvc

#endif // GVC_HARNESS_JOURNAL_HH
