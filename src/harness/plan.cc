#include "harness/plan.hh"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <numeric>

#include "harness/bench.hh"
#include "harness/journal.hh"
#include "harness/results_io.hh"
#include "mmu/designs.hh"

namespace gvc
{

namespace
{

/// Same FNV-1a-64 as the `.gvct`/`.gvcj` formats, over the file bytes.
std::uint64_t
fnv1a(const std::uint8_t *data, std::size_t size)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (std::size_t i = 0; i < size; ++i) {
        h ^= data[i];
        h *= 0x100000001b3ull;
    }
    return h;
}

bool
readFile(const std::string &path, std::vector<std::uint8_t> &data,
         std::string *err)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f) {
        if (err)
            *err = "cost model: cannot open '" + path + "'";
        return false;
    }
    std::uint8_t buf[1 << 16];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        data.insert(data.end(), buf, buf + n);
    const bool ok = !std::ferror(f);
    std::fclose(f);
    if (!ok && err)
        *err = "cost model: read failed on '" + path + "'";
    return ok;
}

} // namespace

void
CostModel::addSample(const std::string &workload, const std::string &design,
                     double cost)
{
    auto &cell = cells_[{workload, design}];
    cell.sum += cost;
    ++cell.count;
    auto &wl = workloads_[workload];
    wl.sum += cost;
    ++wl.count;
    overall_.sum += cost;
    ++overall_.count;
}

bool
CostModel::load(const std::string &path, std::string *err)
{
    *this = CostModel{};
    std::vector<std::uint8_t> data;
    if (!readFile(path, data, err))
        return false;

    if (data.size() >= 4 &&
        std::memcmp(data.data(), kJournalMagic, 4) == 0) {
        ExportMeta meta;
        std::vector<JournalEntry> entries;
        if (!parseJournal(data.data(), data.size(), meta, entries, err))
            return false;
        for (const auto &e : entries)
            addSample(e.record.result.workload,
                      designName(e.record.result.design),
                      double(e.record.result.exec_ticks));
    } else {
        const std::string text(reinterpret_cast<const char *>(data.data()),
                               data.size());
        std::string perr;
        const Json doc = Json::parse(text, &perr);
        if (doc.isNull()) {
            if (err)
                *err = "cost model: '" + path + "' is neither a .gvcj "
                       "journal nor JSON: " + perr;
            return false;
        }
        if (doc.isObject() && doc.find("bench_schema_version")) {
            BenchReport report;
            if (!benchReportFromJson(doc, report, err))
                return false;
            for (const auto &m : report.configs)
                addSample(m.cfg.workload, m.cfg.design, m.median_wall_ms);
        } else if (doc.isObject() && doc.find("schema_version")) {
            ExportMeta meta;
            std::vector<ResultRecord> records;
            if (!resultsFromJson(doc, meta, records, err))
                return false;
            for (const auto &rec : records)
                addSample(rec.result.workload,
                          designName(rec.result.design),
                          double(rec.result.exec_ticks));
        } else {
            if (err)
                *err = "cost model: '" + path + "' is not a recognized "
                       "measurement file (expected a .gvcj journal, a "
                       "gvc_bench report, or a sweep results document)";
            return false;
        }
    }
    digest_ = fnv1a(data.data(), data.size());
    source_ = path;
    return true;
}

double
CostModel::costFor(const std::string &workload,
                   const std::string &design) const
{
    const auto cell = cells_.find({workload, design});
    if (cell != cells_.end() && cell->second.count)
        return cell->second.mean();
    const auto wl = workloads_.find(workload);
    if (wl != workloads_.end() && wl->second.count)
        return wl->second.mean();
    if (overall_.count)
        return overall_.mean();
    return 1.0;
}

std::vector<unsigned>
planShards(const std::vector<double> &costs, unsigned shard_count,
           std::vector<double> *loads)
{
    if (shard_count == 0)
        shard_count = 1;
    std::vector<std::size_t> order(costs.size());
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                         return costs[a] > costs[b];
                     });
    std::vector<double> load(shard_count, 0.0);
    std::vector<unsigned> assignment(costs.size(), 0);
    for (const std::size_t cell : order) {
        unsigned best = 0;
        for (unsigned s = 1; s < shard_count; ++s) {
            if (load[s] < load[best])
                best = s;
        }
        assignment[cell] = best;
        load[best] += costs[cell];
    }
    if (loads)
        *loads = std::move(load);
    return assignment;
}

} // namespace gvc
