#include "harness/tenants.hh"

#include <algorithm>
#include <memory>
#include <utility>

#include "mem/vm.hh"
#include "sim/rng.hh"
#include "trace/kernel_source.hh"

namespace gvc
{

const char *
switchPolicyName(SwitchPolicy p)
{
    switch (p) {
      case SwitchPolicy::kKeepAll: return "keep-all";
      case SwitchPolicy::kFlushL1: return "flush-l1";
      case SwitchPolicy::kFlushAll: return "flush-all";
      case SwitchPolicy::kAsidShootdown: return "asid-shootdown";
    }
    return "?";
}

namespace
{

/** Lower-cased with '_' folded to '-', for forgiving CLI parsing. */
std::string
foldName(const std::string &name)
{
    std::string s = name;
    for (char &c : s) {
        if (c >= 'A' && c <= 'Z')
            c = char(c - 'A' + 'a');
        else if (c == '_')
            c = '-';
    }
    return s;
}

} // namespace

bool
switchPolicyFromName(const std::string &name, SwitchPolicy &out)
{
    const std::string s = foldName(name);
    for (const SwitchPolicy p :
         {SwitchPolicy::kKeepAll, SwitchPolicy::kFlushL1,
          SwitchPolicy::kFlushAll, SwitchPolicy::kAsidShootdown}) {
        if (s == switchPolicyName(p)) {
            out = p;
            return true;
        }
    }
    return false;
}

BoundaryPolicy
switchBoundary(SwitchPolicy p)
{
    switch (p) {
      case SwitchPolicy::kKeepAll: return BoundaryPolicy::keepAll();
      case SwitchPolicy::kFlushL1: return BoundaryPolicy::flushL1();
      case SwitchPolicy::kFlushAll: return BoundaryPolicy::flushAll();
      // The teardown runs through Vm::shootdownAll in the scheduler's
      // after-boundary hook; the boundary byte itself drops nothing.
      case SwitchPolicy::kAsidShootdown: return BoundaryPolicy::keepAll();
    }
    return BoundaryPolicy::keepAll();
}

const char *
arrivalKindName(ArrivalSpec::Kind k)
{
    switch (k) {
      case ArrivalSpec::Kind::kFixed: return "fixed";
      case ArrivalSpec::Kind::kPoisson: return "poisson";
    }
    return "?";
}

bool
arrivalKindFromName(const std::string &name, ArrivalSpec::Kind &out)
{
    const std::string s = foldName(name);
    if (s == "fixed") {
        out = ArrivalSpec::Kind::kFixed;
    } else if (s == "poisson") {
        out = ArrivalSpec::Kind::kPoisson;
    } else {
        return false;
    }
    return true;
}

const char *
tenantSchedName(TenantSched s)
{
    switch (s) {
      case TenantSched::kSerial: return "serial";
      case TenantSched::kFifo: return "fifo";
      case TenantSched::kRoundRobin: return "rr";
    }
    return "?";
}

bool
tenantSchedFromName(const std::string &name, TenantSched &out)
{
    const std::string s = foldName(name);
    for (const TenantSched v :
         {TenantSched::kSerial, TenantSched::kFifo,
          TenantSched::kRoundRobin}) {
        if (s == tenantSchedName(v)) {
            out = v;
            return true;
        }
    }
    if (s == "round-robin") {
        out = TenantSched::kRoundRobin;
        return true;
    }
    return false;
}

namespace
{

/** One schedule entry: round @p round of tenant @p tenant. */
struct Slot
{
    unsigned tenant = 0;
    unsigned round = 0;
    Tick arrival = 0;
};

/**
 * Materialize every (tenant, round) slot with its arrival tick, ordered
 * by the scheduling discipline.  Arrivals are a pure function of the
 * spec: the fixed process is phase*t + interval*r; the Poisson-like
 * process draws integer inter-arrivals uniform on [0, 2*interval] (same
 * mean, memoryless enough for contention studies, and — unlike an
 * exponential draw through libm — bit-portable) from a per-tenant
 * SplitMix-derived stream.
 */
std::vector<Slot>
buildSchedule(const TenantsSpec &spec)
{
    const unsigned n = unsigned(spec.tenants.size());
    std::vector<Slot> slots;
    slots.reserve(std::size_t(n) * spec.rounds);
    for (unsigned t = 0; t < n; ++t) {
        std::uint64_t sm = spec.arrival.seed;
        for (unsigned k = 0; k <= t; ++k)
            splitMix64(sm);
        Rng rng(sm);
        Tick at = Tick(t) * spec.arrival.phase;
        for (unsigned r = 0; r < spec.rounds; ++r) {
            if (r > 0) {
                at += spec.arrival.kind == ArrivalSpec::Kind::kPoisson
                          ? rng.below(2 * spec.arrival.interval + 1)
                          : spec.arrival.interval;
            }
            slots.push_back(Slot{t, r, at});
        }
    }
    switch (spec.sched) {
      case TenantSched::kSerial:
        std::sort(slots.begin(), slots.end(),
                  [](const Slot &a, const Slot &b) {
                      return std::make_pair(a.tenant, a.round) <
                             std::make_pair(b.tenant, b.round);
                  });
        break;
      case TenantSched::kFifo:
        std::sort(slots.begin(), slots.end(),
                  [](const Slot &a, const Slot &b) {
                      return std::make_tuple(a.arrival, a.tenant,
                                             a.round) <
                             std::make_tuple(b.arrival, b.tenant,
                                             b.round);
                  });
        break;
      case TenantSched::kRoundRobin:
        std::sort(slots.begin(), slots.end(),
                  [](const Slot &a, const Slot &b) {
                      return std::make_pair(a.round, a.tenant) <
                             std::make_pair(b.round, b.tenant);
                  });
        break;
    }
    return slots;
}

} // namespace

RunResult
runTenants(const TenantsSpec &spec, const RunConfig &cfg)
{
    if (spec.tenants.empty())
        fatal("runTenants: need at least one tenant");
    if (spec.rounds == 0)
        fatal("runTenants: rounds must be >= 1");
    const unsigned n = unsigned(spec.tenants.size());

    // Capture each tenant's kernel round once, then splice the recorded
    // op logs — each rebased onto a fresh ASID range — into one
    // multi-process VM image.  The whole multi-tenant run is thereby a
    // single combined trace replayed through the core runner, exactly
    // the construction runScenario uses, so it is deterministic and
    // trace-recordable for free.
    std::vector<trace::Trace> captured;
    captured.reserve(n);
    std::vector<Asid> asid_base(n, 0);
    std::vector<unsigned> asid_count(n, 0);
    std::vector<VmRegion> regions;      // storm targets, all tenants
    auto combined = std::make_shared<trace::Trace>();
    Asid next_base = 0;
    for (unsigned t = 0; t < n; ++t) {
        const TenantSpec &ts = spec.tenants[t];
        trace::Trace tr = trace::captureWorkloadTrace(
            ts.workload, ts.params, cfg.soc.phys_mem_bytes);
        if (tr.kernels.empty())
            fatal("runTenants: tenant workload '" + ts.workload +
                  "' emitted no kernels");
        asid_base[t] = next_base;
        unsigned procs = 0;
        for (const VmOp &op : tr.vm_ops)
            if (op.kind == VmOp::Kind::kCreateProcess)
                ++procs;
        if (procs == 0)
            fatal("runTenants: tenant workload '" + ts.workload +
                  "' created no process");
        asid_count[t] = procs;
        const auto rebased = rebaseVmOps(tr.vm_ops, next_base);
        combined->vm_ops.insert(combined->vm_ops.end(), rebased.begin(),
                                rebased.end());
        const auto regs = anonWriteRegions(tr.vm_ops, next_base);
        regions.insert(regions.end(), regs.begin(), regs.end());
        next_base = Asid(next_base + procs);
        captured.push_back(std::move(tr));
        combined->workload +=
            (t == 0 ? "" : "+") + spec.tenants[t].workload;
    }
    // Tenant 0 seeds the simulation context (matches runScenario for a
    // single tenant, making N=1/keep-all/no-storm bit-equivalent).
    combined->params = spec.tenants[0].params;

    const std::vector<Slot> slots = buildSchedule(spec);

    // Emit the kernels slot by slot, rewriting each launch's ASID into
    // its tenant's rebased range, with a boundary marker between slots:
    // the switch policy's byte when the tenant changes, keep-all
    // otherwise (a no-op boundary, but it delimits the per-slot stat
    // snapshot the attribution hook needs).
    std::vector<unsigned> slot_tenant;
    slot_tenant.reserve(slots.size());
    std::vector<Tick> kernel_arrival;
    std::vector<std::uint64_t> tenant_launches(n, 0);
    std::uint64_t context_switches = 0;
    for (std::size_t s = 0; s < slots.size(); ++s) {
        const Slot &slot = slots[s];
        const trace::Trace &tr = captured[slot.tenant];
        for (std::size_t k = 0; k < tr.kernels.size(); ++k) {
            trace::TraceKernel copy = tr.kernels[k];
            copy.asid = Asid(copy.asid + asid_base[slot.tenant]);
            kernel_arrival.push_back(k == 0 ? slot.arrival : Tick(0));
            combined->kernels.push_back(std::move(copy));
        }
        tenant_launches[slot.tenant] += tr.kernels.size();
        slot_tenant.push_back(slot.tenant);
        if (s + 1 < slots.size()) {
            const bool switched = slots[s + 1].tenant != slot.tenant;
            if (switched)
                ++context_switches;
            const BoundaryPolicy bp = switched
                                          ? switchBoundary(
                                                spec.switch_policy)
                                          : BoundaryPolicy::keepAll();
            combined->boundaries.push_back(trace::TraceBoundary{
                combined->kernels.size() - 1, bp.encode()});
        }
    }

    // Scheduler hooks.  Attribution snapshots the cumulative counters
    // after each boundary's policy has applied and charges the delta to
    // the slot that just ran; because consecutive snapshots telescope,
    // the per-tenant sums partition the run's totals field-exactly.
    // The same hook then applies per-ASID shootdowns (the selective
    // switch policy) and the shootdown-storm bursts — both *after* the
    // snapshot, so their downstream cost lands on the next slot, where
    // a real victim would pay it.
    KernelStats prev;
    std::vector<KernelStats> per_tenant(n);
    std::uint64_t storm_pages = 0;
    Rng storm_rng(spec.storm.seed);
    std::uint64_t region_pages_total = 0;
    for (const VmRegion &r : regions)
        region_pages_total += r.bytes >> kPageShift;

    RunHooks hooks;
    hooks.start_at = [&kernel_arrival](std::size_t i) {
        return kernel_arrival[i];
    };
    hooks.after_boundary = [&](std::size_t b, SystemUnderTest &sut,
                               Gpu &gpu, Dram &dram, Vm &vm,
                               SimContext &ctx) {
        const KernelStats snap = collectKernelStats(sut, gpu, dram, ctx);
        const unsigned out_t = slot_tenant[b];
        per_tenant[out_t] = kernelSum(per_tenant[out_t],
                                      kernelDelta(snap, prev));
        prev = snap;
        const unsigned in_t = slot_tenant[b + 1];
        if (in_t != out_t &&
            spec.switch_policy == SwitchPolicy::kAsidShootdown) {
            for (unsigned p = 0; p < asid_count[out_t]; ++p)
                vm.shootdownAll(Asid(asid_base[out_t] + p));
        }
        if (spec.storm.pages > 0 && spec.storm.period > 0 &&
            (b + 1) % spec.storm.period == 0 && region_pages_total > 0) {
            for (unsigned p = 0; p < spec.storm.pages; ++p) {
                // Uniform over every mapped storm-eligible page of
                // every tenant — cross-tenant by construction.
                std::uint64_t flat = storm_rng.below(region_pages_total);
                for (const VmRegion &r : regions) {
                    const std::uint64_t pages = r.bytes >> kPageShift;
                    if (flat >= pages) {
                        flat -= pages;
                        continue;
                    }
                    const Vaddr va = r.base + flat * kPageSize;
                    // Bounce to read-only and back: two per-page
                    // shootdowns through every subscriber, no net
                    // change to the VM image.
                    vm.protect(r.asid, va, kPageSize, kPermRead);
                    vm.protect(r.asid, va, kPageSize, r.perms);
                    ++storm_pages;
                    break;
                }
            }
        }
    };
    hooks.at_end = [&](SystemUnderTest &sut, Gpu &gpu, Dram &dram, Vm &,
                       SimContext &ctx) {
        const KernelStats snap = collectKernelStats(sut, gpu, dram, ctx);
        const unsigned last = slot_tenant.back();
        per_tenant[last] = kernelSum(per_tenant[last],
                                     kernelDelta(snap, prev));
        prev = snap;
    };

    RunConfig run_cfg = cfg;
    run_cfg.trace_in.clear();
    trace::TraceKernelSource source(std::move(combined));
    RunResult r = runSource(source, run_cfg, {}, nullptr, &hooks);

    r.tenants.reserve(n);
    for (unsigned t = 0; t < n; ++t) {
        TenantStats ts;
        ts.workload = spec.tenants[t].workload;
        ts.launches = tenant_launches[t];
        ts.stats = per_tenant[t];
        r.tenants.push_back(std::move(ts));
    }
    r.tenant_context_switches = context_switches;
    r.tenant_storm_pages = storm_pages;
    return r;
}

} // namespace gvc
