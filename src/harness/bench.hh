/**
 * @file
 * Continuous performance tracking: a fixed benchmark matrix of
 * representative simulator configurations (cold run, trace replay, warm
 * multi-kernel scenario, small sweep) timed with warmup and repeated
 * trials, reporting median wall time, throughput (warp instructions and
 * simulated cycles per wall second), and peak RSS.
 *
 * Reports serialize as a versioned JSON document (`BENCH_PR<N>.json`)
 * through the results_io Json layer.  The document carries two kinds of
 * fields with different contracts:
 *
 *  - **Counters** (exec_ticks, instructions, ...) are bit-deterministic
 *    per (matrix, scale, seed).  CI compares them field-exactly against
 *    the checked-in baseline — any drift is a simulator behavior change
 *    that must be acknowledged by regenerating the file.
 *  - **Wall times / throughput / RSS** are machine-dependent.  They are
 *    never gated on, only recorded, so the checked-in per-PR documents
 *    form an inspectable performance trajectory.
 */

#ifndef GVC_HARNESS_BENCH_HH
#define GVC_HARNESS_BENCH_HH

#include <cstdint>
#include <string>
#include <vector>

#include "harness/results_io.hh"

namespace gvc
{

/**
 * Deterministic per-configuration counters, one X-macro entry per
 * exported field.  All are exact event counts (or tick counts) summed
 * over every simulation the configuration executes, so a sweep config
 * contributes the sum over its cells.
 */
#define GVC_BENCHCOUNTER_FIELDS(X)                                        \
    X(exec_ticks)                                                         \
    X(instructions)                                                       \
    X(mem_instructions)                                                   \
    X(tlb_accesses)                                                       \
    X(tlb_misses)                                                         \
    X(iommu_accesses)                                                     \
    X(page_walks)                                                         \
    X(l1_accesses)                                                        \
    X(l2_accesses)                                                        \
    X(dram_accesses)                                                      \
    X(dram_bytes)                                                         \
    X(fbt_lookups)                                                        \
    X(synonym_replays)

/** One configuration's deterministic counters. */
struct BenchCounters
{
#define GVC_DECLARE_FIELD(name) std::uint64_t name = 0;
    GVC_BENCHCOUNTER_FIELDS(GVC_DECLARE_FIELD)
#undef GVC_DECLARE_FIELD

    /** Extract the benchmarked counters from one run's results. */
    static BenchCounters fromResult(const RunResult &r);

    /** Field-wise accumulate (sweep configs sum over their cells). */
    void add(const BenchCounters &o);

    bool
    operator==(const BenchCounters &o) const
    {
#define GVC_CMP_FIELD(name)                                               \
    if (name != o.name)                                                   \
        return false;
        GVC_BENCHCOUNTER_FIELDS(GVC_CMP_FIELD)
#undef GVC_CMP_FIELD
        return true;
    }
    bool operator!=(const BenchCounters &o) const { return !(*this == o); }
};

/** Identity of one benchmark configuration. */
struct BenchConfig
{
    std::string mode;     ///< "cold" | "replay" | "warm" | "sweep".
    std::string workload; ///< Workload name, or "grid" for sweeps.
    std::string design;   ///< designName(), or "3x3" for sweeps.

    /** Stable key: "<mode>/<workload>/<design>". */
    std::string name() const;
};

/** One configuration's measurements across all trials. */
struct BenchMeasurement
{
    BenchConfig cfg;
    BenchCounters counters; ///< Identical across trials (verified).
    std::vector<double> wall_ms; ///< One entry per timed trial.
    double median_wall_ms = 0.0;
    /** Warp instructions retired per wall-clock second (median trial). */
    double warp_inst_per_sec = 0.0;
    /** Simulated cycles advanced per wall-clock second (median trial). */
    double sim_cycles_per_sec = 0.0;
    /** Process peak RSS after this configuration's trials, KiB. */
    std::uint64_t peak_rss_kb = 0;
};

/** How to run the benchmark matrix. */
struct BenchOptions
{
    double scale = 1.0;      ///< Workload scale for every cell.
    std::uint64_t seed;      ///< Workload seed (default: WorkloadParams').
    unsigned trials = 3;     ///< Timed trials per configuration.
    unsigned warmup = 1;     ///< Untimed warmup runs per configuration.
    unsigned scenario_rounds = 3; ///< Kernels per warm-scenario config.
    bool progress = true;    ///< Per-configuration progress on stderr.

    BenchOptions();
};

/** A complete benchmark run. */
struct BenchReport
{
    BenchOptions opts;
    std::vector<BenchMeasurement> configs;
};

/** Schema version stamped into bench JSON documents. */
inline constexpr int kBenchSchemaVersion = 1;

/** The fixed benchmark matrix for the given options. */
std::vector<BenchConfig> benchMatrix();

/**
 * Execute one configuration once and return its counters (no timing,
 * no warmup).  This is the exact simulation a timed trial runs, exposed
 * so tests can cross-check bench counters against the plain runner.
 */
BenchCounters runBenchConfigOnce(const BenchConfig &cfg,
                                 const BenchOptions &opts);

/**
 * Run the full matrix with warmup + trials per configuration.  Counters
 * are required to be identical across trials (fatal otherwise — the
 * simulator must be deterministic).
 */
BenchReport runBench(const BenchOptions &opts);

/** Serialize a report (schema version kBenchSchemaVersion). */
Json benchReportToJson(const BenchReport &report);

/**
 * Parse a bench JSON document.  Field-exact on the schema: unknown
 * schema versions and missing/mistyped fields are rejected.  Returns
 * false and stores a message in @p err on any defect.
 */
bool benchReportFromJson(const Json &doc, BenchReport &out,
                         std::string *err = nullptr);

/**
 * Compare the deterministic identity of two reports: scale, seed,
 * scenario rounds, configuration set, and every counter field must
 * match exactly.  Wall times, throughput, and RSS are ignored.
 * Returns true when identical; otherwise false with a human-readable
 * description of every drifted field in @p diff.
 */
bool benchCountersMatch(const BenchReport &baseline,
                        const BenchReport &current, std::string &diff);

/** Current process peak RSS in KiB (getrusage). */
std::uint64_t peakRssKb();

} // namespace gvc

#endif // GVC_HARNESS_BENCH_HH
