/**
 * @file
 * Fixed-size worker pool with a shared FIFO job queue, used by the
 * sweep engine to run independent simulations concurrently.
 *
 * Jobs are arbitrary callables; submit() returns a std::future so
 * callers collect results (and exceptions — a throwing job surfaces at
 * future::get(), never in the worker) in whatever order they choose.
 * The queue is deliberately simple: simulation jobs run for seconds, so
 * per-job locking overhead is irrelevant and work stealing buys
 * nothing.  Destruction drains nothing — it stops accepting work and
 * joins after the queue empties, so every submitted job runs exactly
 * once.
 */

#ifndef GVC_HARNESS_THREAD_POOL_HH
#define GVC_HARNESS_THREAD_POOL_HH

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace gvc
{

/** FIFO thread pool; @p threads is clamped to at least one worker. */
class ThreadPool
{
  public:
    explicit ThreadPool(unsigned threads)
    {
        if (threads == 0)
            threads = 1;
        workers_.reserve(threads);
        for (unsigned i = 0; i < threads; ++i)
            workers_.emplace_back([this] { workerLoop(); });
    }

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    ~ThreadPool()
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            stopping_ = true;
        }
        cv_.notify_all();
        for (auto &w : workers_)
            w.join();
    }

    unsigned size() const { return unsigned(workers_.size()); }

    /**
     * Queue @p fn for execution; the returned future carries its result
     * or exception.  Jobs run in submission order (FIFO) across the
     * workers.
     */
    template <class Fn>
    std::future<std::invoke_result_t<Fn>>
    submit(Fn &&fn)
    {
        using R = std::invoke_result_t<Fn>;
        // packaged_task is move-only but std::function requires
        // copyable targets; hold it by shared_ptr.
        auto task = std::make_shared<std::packaged_task<R()>>(
            std::forward<Fn>(fn));
        std::future<R> result = task->get_future();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            queue_.emplace_back([task] { (*task)(); });
        }
        cv_.notify_one();
        return result;
    }

  private:
    void
    workerLoop()
    {
        for (;;) {
            std::function<void()> job;
            {
                std::unique_lock<std::mutex> lock(mutex_);
                cv_.wait(lock,
                         [this] { return stopping_ || !queue_.empty(); });
                if (queue_.empty())
                    return; // stopping_ and nothing left to run.
                job = std::move(queue_.front());
                queue_.pop_front();
            }
            job(); // Exceptions land in the job's promise, not here.
        }
    }

    std::mutex mutex_;
    std::condition_variable cv_;
    std::deque<std::function<void()>> queue_;
    std::vector<std::thread> workers_;
    bool stopping_ = false;
};

} // namespace gvc

#endif // GVC_HARNESS_THREAD_POOL_HH
