/**
 * @file
 * Multi-tenant GPU runs: N tenants, each a (workload, params) pair with
 * its own address space(s) in one shared Vm, its own captured kernel
 * round, and a deterministic seeded arrival process, scheduled onto one
 * persistent memory system.  Every scheduler slot transition applies a
 * sweepable switch policy (built on the kernel-boundary layer), and an
 * optional shootdown-storm injector fires periodic cross-tenant protect
 * bursts through the Vm's shootdown callbacks — the serving-style
 * contention regime (MPS-style sharing, Mosaic's multi-application
 * setting) where translation filtering is most stressed.
 *
 * Construction mirrors runScenario: the whole schedule is materialized
 * as one combined trace (per-tenant op logs rebased onto fresh ASIDs,
 * kernels interleaved in slot order, boundary markers between slots)
 * and replayed through runSource, so a tenant run is bit-deterministic
 * by construction and N=1/keep-all/no-storm degenerates to the exact
 * trace runScenario would build.
 */

#ifndef GVC_HARNESS_TENANTS_HH
#define GVC_HARNESS_TENANTS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "harness/runner.hh"
#include "mmu/boundary.hh"

namespace gvc
{

/**
 * What happens to translation/cache state when the scheduler switches
 * tenants.  The first three map directly onto BoundaryPolicy presets;
 * per-ASID shootdown instead leaves shared state resident and tears
 * down only the outgoing tenant's translations through the Vm's full
 * shootdown listeners (the OS-directed selective path).
 */
enum class SwitchPolicy {
    kKeepAll,       ///< Tagged state survives the switch untouched.
    kFlushL1,       ///< Drop the (virtual) L1s only.
    kFlushAll,      ///< Cold-start: flush L1+L2+FBT, shoot down TLBs.
    kAsidShootdown, ///< Vm::shootdownAll on the outgoing tenant's ASIDs.
};

/** Stable hyphenated name ("keep-all", ..., "asid-shootdown"). */
const char *switchPolicyName(SwitchPolicy p);

/** switchPolicyName inverse; case- and '-'/'_'-insensitive. */
bool switchPolicyFromName(const std::string &name, SwitchPolicy &out);

/** The boundary policy a switch applies (keep-all for ASID shootdown:
 *  the teardown happens through the Vm, not the boundary layer). */
BoundaryPolicy switchBoundary(SwitchPolicy p);

/** Deterministic seeded kernel-round arrival process, per tenant. */
struct ArrivalSpec
{
    enum class Kind {
        kFixed,   ///< Round r arrives at phase*t + interval*r.
        kPoisson, ///< Seeded random inter-arrivals with mean `interval`.
    };

    Kind kind = Kind::kFixed;
    /** Inter-arrival spacing (fixed) or mean (poisson), in ticks. */
    Tick interval = 0;
    /** Per-tenant stream stagger: tenant t's arrivals shift by t*phase. */
    Tick phase = 0;
    /** Poisson-like draw seed (split per tenant, SplitMix-style). */
    std::uint64_t seed = 0xa221ull;
};

const char *arrivalKindName(ArrivalSpec::Kind k);
bool arrivalKindFromName(const std::string &name, ArrivalSpec::Kind &out);

/**
 * Shootdown-storm injector: every `period` scheduler boundaries, bounce
 * `pages` randomly chosen mapped pages (across all tenants' writable
 * anonymous regions) to read-only and back.  Each bounced page fires
 * two per-page shootdowns through every subscribed structure — TLBs,
 * IOMMU, FBT/virtual caches — without changing the final VM image.
 */
struct StormSpec
{
    unsigned pages = 0;  ///< Pages bounced per burst (0 disables).
    unsigned period = 1; ///< Burst every this many boundaries.
    std::uint64_t seed = 0x5702ull;
};

/** One tenant: a workload identity plus its generation parameters. */
struct TenantSpec
{
    std::string workload;
    WorkloadParams params;
};

/** Slot ordering discipline. */
enum class TenantSched {
    kSerial,     ///< Tenant 0's rounds, then tenant 1's, ...
    kFifo,       ///< Earliest arrival first (ties: lowest tenant id).
    kRoundRobin, ///< Round 0 of every tenant, then round 1, ...
};

const char *tenantSchedName(TenantSched s);
bool tenantSchedFromName(const std::string &name, TenantSched &out);

/** A complete multi-tenant run description. */
struct TenantsSpec
{
    std::vector<TenantSpec> tenants;
    /** Kernel rounds per tenant (>= 1). */
    unsigned rounds = 2;
    TenantSched sched = TenantSched::kFifo;
    ArrivalSpec arrival;
    SwitchPolicy switch_policy = SwitchPolicy::kKeepAll;
    StormSpec storm;
};

/**
 * Execute @p spec under @p cfg (design/soc; `cfg.workload`/`trace_in`
 * are ignored — each tenant brings its own params).  The result carries
 * per-slot KernelStats deltas in `kernels` (as any scenario run does),
 * per-tenant aggregates in `tenants` that sum field-exactly to the
 * cumulative totals, and the context-switch/storm counters.  The
 * simulation seed is tenant 0's workload seed.
 */
RunResult runTenants(const TenantsSpec &spec, const RunConfig &cfg);

} // namespace gvc

#endif // GVC_HARNESS_TENANTS_HH
