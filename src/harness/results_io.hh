/**
 * @file
 * Structured results export: versioned JSON and CSV serialization of
 * sweep results (RunResult grids plus the SocConfig and WorkloadParams
 * that produced them), with no external dependencies.
 *
 * The JSON layer is a small ordered value tree (`Json`) with a writer
 * and a strict recursive-descent parser, so tools can both emit results
 * and read them back (round-trip tested).  Integers are preserved
 * losslessly: a Json number keeps its exact lexeme, so a 64-bit tick
 * count survives write -> parse -> write byte-identically.
 *
 * Schema (version 1):
 *   {
 *     "schema_version": 1,
 *     "generator": "<tool name>",
 *     "grid": { "workloads": [...], "designs": [...],
 *               "scale": F, "seed": N, "jobs": N },
 *     "results": [ { "workload": "...", "design": "...",
 *                    "exec_ticks": N, ... , "soc": {...} }, ... ]
 *   }
 *
 * Schema version 2 is version 1 plus a per-record "kernels" array (one
 * object of KernelStats counters per kernel of a multi-kernel scenario
 * run).  A document is stamped version 2 exactly when its records carry
 * per-kernel stats, so exports of plain runs stay byte-identical to the
 * version-1 schema; mixing records with and without per-kernel stats in
 * one document is an error.
 *
 * Schema version 3 is the multi-tenant shape: each record additionally
 * carries a non-empty "tenants" array (workload, launches, and one
 * KernelStats object per tenant — the per-tenant deltas, which sum
 * field-exactly to the record's cumulative totals), the
 * "tenant_context_switches" / "tenant_storm_pages" counters, and the
 * "percu_tlb_refs" / "iommu_tlb_refs" TLB entry-lifetime histograms.
 * A document is stamped version 3 exactly when its records carry
 * tenant stats (the "kernels" array is then optional per record), so
 * version-1/2 exports stay byte-identical; mixing tenant and
 * non-tenant records in one document is an error, and shards of
 * different schema versions never merge.
 */

#ifndef GVC_HARNESS_RESULTS_IO_HH
#define GVC_HARNESS_RESULTS_IO_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "harness/runner.hh"

namespace gvc
{

/**
 * An ordered JSON value: null, bool, number, string, array, or object.
 * Object keys keep insertion order so emitted documents are stable.
 */
class Json
{
  public:
    enum class Type {
        kNull,
        kBool,
        kNumber,
        kString,
        kArray,
        kObject,
    };

    Json() = default;
    Json(bool b) : type_(Type::kBool), bool_(b) {}
    Json(double v);
    Json(std::uint64_t v);
    Json(int v) : Json(double(v)) {}
    Json(unsigned v) : Json(std::uint64_t(v)) {}
    Json(const char *s) : type_(Type::kString), str_(s) {}
    Json(std::string s) : type_(Type::kString), str_(std::move(s)) {}

    static Json array() { Json j; j.type_ = Type::kArray; return j; }
    static Json object() { Json j; j.type_ = Type::kObject; return j; }

    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::kNull; }
    bool isNumber() const { return type_ == Type::kNumber; }
    bool isString() const { return type_ == Type::kString; }
    bool isArray() const { return type_ == Type::kArray; }
    bool isObject() const { return type_ == Type::kObject; }

    bool asBool() const { return bool_; }
    double asNumber() const { return num_; }
    /** Exact for any uint64 written through Json: reparses the lexeme. */
    std::uint64_t asU64() const;
    const std::string &asString() const { return str_; }

    /** Append to an array. */
    void push(Json v);
    /** Insert/overwrite an object member (insertion-ordered). */
    void set(std::string key, Json v);
    /** Object member lookup; nullptr when absent or not an object. */
    const Json *find(const std::string &key) const;
    /** Array element / object member count. */
    std::size_t size() const;
    /** Array element access (kArray only). */
    const Json &at(std::size_t i) const;
    const std::vector<std::pair<std::string, Json>> &members() const
    {
        return members_;
    }

    /** Serialize; @p indent > 0 pretty-prints with that step. */
    std::string dump(int indent = 0) const;

    /**
     * Strict JSON parse of @p text.  On failure returns null and, when
     * @p err is non-null, stores a message with the failing offset.
     */
    static Json parse(const std::string &text, std::string *err = nullptr);

  private:
    void dumpTo(std::string &out, int indent, int depth) const;

    Type type_ = Type::kNull;
    bool bool_ = false;
    double num_ = 0.0;
    std::string str_;    ///< String payload, or number lexeme.
    std::vector<Json> elems_;
    std::vector<std::pair<std::string, Json>> members_;
};

/** One (config, result) pair of a sweep, ready for export. */
struct ResultRecord
{
    RunConfig cfg;
    RunResult result;
};

/** Schema version stamped into documents without per-kernel stats. */
inline constexpr int kResultsSchemaVersion = 1;
/** Schema version stamped when records carry per-kernel stats arrays. */
inline constexpr int kResultsSchemaVersionKernels = 2;
/** Schema version stamped when records carry per-tenant stat blocks. */
inline constexpr int kResultsSchemaVersionTenants = 3;

/** Metadata describing the exporting run (the "grid" JSON object). */
struct ExportMeta
{
    std::string generator = "gvc_sweep";
    /** Full grid axes — not the shard subset — so shards can merge. */
    std::vector<std::string> workloads;
    std::vector<std::string> designs;
    double scale = 0.0;
    std::uint64_t seed = 0;
    unsigned jobs = 1;
    /**
     * Shard position when the grid was partitioned with `--shard I/N`.
     * A shard_count of 1 means an unsharded document; the "shard" JSON
     * object is only emitted when shard_count > 1, so unsharded
     * exports are byte-identical to the pre-sharding schema.
     */
    unsigned shard_index = 0;
    unsigned shard_count = 1;
    /**
     * How cells were assigned to shards: empty for the classic
     * idx % N modulo striping (never emitted, so modulo-sharded
     * exports keep their exact pre-existing form), "lpt" for
     * cost-balanced longest-processing-time bin packing.  Emitted
     * inside the "shard" object together with the FNV-1a-64 digest of
     * the cost-model file that drove the packing (0 = uniform costs),
     * so gvc_merge can refuse shards planned against different cost
     * models — such shard sets can silently overlap or leave holes.
     */
    std::string shard_assignment;
    std::uint64_t shard_cost_digest = 0;
    /**
     * TLB policy axis the whole grid ran under: empty for the default
     * LRU/install-all policies (never emitted, so classic exports keep
     * their exact serialized form), otherwise a canonical stamp such
     * as "repl=srrip,fill=bypass-trained" (see gvc_sweep).  Shards of
     * different policy axes measure different machines; gvc_merge
     * refuses to merge them.
     */
    std::string tlb_policy;
    /**
     * Version of the document this meta was imported from (set by
     * resultsFromJson).  Export ignores it: resultsToJson derives the
     * version from whether the records carry per-kernel stats.
     */
    int schema_version = kResultsSchemaVersion;
};

/**
 * Canonical ExportMeta::tlb_policy stamp for a SocConfig: "" when every
 * TLB policy knob is at its default, otherwise the non-default knobs as
 * "repl=<r>,fill=<f>,iommu-fill=<g>" (each component only when set).
 */
std::string tlbPolicyStamp(const SocConfig &soc);

/** Serialize a full SocConfig (every simulation-relevant field). */
Json socConfigToJson(const SocConfig &soc);

/** Serialize WorkloadParams. */
Json workloadParamsToJson(const WorkloadParams &p);

/**
 * Serialize one RunResult; when @p soc is non-null the effective
 * SocConfig is embedded under "soc".
 */
Json runResultToJson(const RunResult &r, const SocConfig *soc = nullptr);

/**
 * Serialize one (config, result) cell exactly as it appears inside a
 * results document's "results" array: runResultToJson() of the result
 * with the *effective* SocConfig embedded under "soc", plus the
 * "workload_params" object.  resultsToJson() emits this per record,
 * and the sweep checkpoint journal (harness/journal.hh) appends it per
 * completed cell — one serializer, so the two can never drift.
 */
Json resultRecordToJson(const ResultRecord &rec);

/**
 * Rebuild one ResultRecord from resultRecordToJson() output — the
 * record-level inverse of the importer behind resultsFromJson(), with
 * the schema version inferred from the record's shape (tenant block ->
 * 3, "kernels" array -> 2, plain -> 1).  Field-exact with the same
 * dotted-path error messages; the imported record carries the
 * document's effective SocConfig with `raw_soc` set so it re-exports
 * byte-identically.  Returns false with a message in @p err on any
 * mismatch.
 */
bool resultRecordFromJson(const Json &j, ResultRecord &rec,
                          std::string *err = nullptr);

/**
 * Full versioned results document.  Stamped schema version 3 when the
 * records carry per-tenant stats (`RunResult::tenants`), version 2 when
 * they carry per-kernel stats (`RunResult::kernels`), version 1
 * otherwise; a mix of tenant and non-tenant records — or, among
 * non-tenant records, of records with and without per-kernel stats —
 * is a fatal error (the schemas cannot share a document).
 */
Json resultsToJson(const ExportMeta &meta,
                   const std::vector<ResultRecord> &records);

/**
 * Rebuild an ExportMeta plus ResultRecords from a parsed results
 * document — the inverse of resultsToJson().  Field-exact: every
 * schema field must be present with the right type, and documents
 * with an unknown schema_version are rejected outright.  Version 2
 * documents must carry a non-empty "kernels" array in every record;
 * version 1 documents must carry none; version 3 documents must carry
 * every tenant-block field in every record ("kernels" then optional),
 * and versions 1/2 reject any tenant-block field (the seen version is
 * recorded in `meta.schema_version`).  Imported
 * records carry the document's (effective) SocConfig with `raw_soc`
 * set, so re-exporting them emits byte-identical "soc" objects.
 * Returns false and stores a message in @p err on any mismatch.
 */
bool resultsFromJson(const Json &doc, ExportMeta &meta,
                     std::vector<ResultRecord> &records,
                     std::string *err = nullptr);

/**
 * Merge per-shard results documents (`gvc_sweep --shard I/N --json`)
 * into one document in canonical grid order, byte-identical to the
 * unsharded export of the same grid.  Validates every shard against
 * the first: schema version (via resultsFromJson), generator, grid
 * axes, scale, seed, schema version, and shard count must match
 * (schema-v1 and schema-v2 shards never merge), every grid label
 * must be resolvable, and each (workload, design) cell must appear
 * exactly once across all shards — duplicates and missing cells are
 * reported by name.  Shards planned with different assignment
 * strategies or cost models (the "shard" object's assignment stamp)
 * are rejected too.  `jobs` is the maximum across the shards: worker
 * count does not affect results, and the maximum is order-independent,
 * so the merged document is stable however the shard files are listed
 * (it used to be silently taken from whichever shard came first).
 * Returns false and stores a message in @p err when the shards are not
 * mergeable.
 */
bool mergeResults(const std::vector<Json> &shards, Json &merged,
                  std::string *err = nullptr);

/** CSV column header matching csvRow(). */
std::string resultsCsvHeader();

/** One CSV data row (scalar RunResult fields only). */
std::string resultsCsvRow(const RunResult &r);

/** Whole CSV document: header plus one row per record. */
std::string resultsToCsv(const std::vector<ResultRecord> &records);

} // namespace gvc

#endif // GVC_HARNESS_RESULTS_IO_HH
