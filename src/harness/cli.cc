#include "harness/cli.hh"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>

#include "sim/logging.hh"

namespace gvc
{

namespace
{

/**
 * Strict base-10 uint64 parse shared by the fatal() wrappers and
 * parseShardSpec(): digits only, no sign, no trailing characters.
 */
bool
tryParseU64(const std::string &text, std::uint64_t &out)
{
    if (text.empty() ||
        !std::isdigit(static_cast<unsigned char>(text[0])))
        return false;
    errno = 0;
    char *end = nullptr;
    const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
    if (*end != '\0' || errno == ERANGE)
        return false;
    out = v;
    return true;
}

} // namespace

std::uint64_t
parseU64(const char *flag, const std::string &text)
{
    std::uint64_t v = 0;
    if (!tryParseU64(text, v))
        fatal(std::string(flag) +
              ": expected a non-negative integer, got '" + text + "'");
    return v;
}

unsigned
parseUnsigned(const char *flag, const std::string &text)
{
    const std::uint64_t v = parseU64(flag, text);
    if (v > 0xffffffffull)
        fatal(std::string(flag) + ": value '" + text +
              "' is out of range");
    return unsigned(v);
}

double
parseDouble(const char *flag, const std::string &text)
{
    const char *s = text.c_str();
    if (text.empty() || std::isspace(static_cast<unsigned char>(*s)))
        fatal(std::string(flag) + ": expected a number, got '" + text +
              "'");
    errno = 0;
    char *end = nullptr;
    const double v = std::strtod(s, &end);
    if (end == s || *end != '\0' || !std::isfinite(v))
        fatal(std::string(flag) + ": expected a number, got '" + text +
              "'");
    if (errno == ERANGE && (v == HUGE_VAL || v == -HUGE_VAL))
        fatal(std::string(flag) + ": value '" + text +
              "' is out of range");
    return v;
}

std::string
canonicalDesignSpelling(const std::string &name)
{
    std::string out;
    for (const char c : name) {
        if (c == '-' || c == '_')
            continue;
        out += char(std::tolower(static_cast<unsigned char>(c)));
    }
    return out;
}

const std::vector<std::pair<const char *, MmuDesign>> &
designSpellings()
{
    static const std::vector<std::pair<const char *, MmuDesign>> map = {
        {"ideal", MmuDesign::kIdeal},
        {"baseline512", MmuDesign::kBaseline512},
        {"baseline16k", MmuDesign::kBaseline16K},
        {"baselinelargetlb", MmuDesign::kBaselineLargeTlb},
        {"vc", MmuDesign::kVcNoOpt},
        {"vcnoopt", MmuDesign::kVcNoOpt},
        {"vcopt", MmuDesign::kVcOpt},
        {"l1vc32", MmuDesign::kL1Vc32},
        {"l1vc128", MmuDesign::kL1Vc128},
        {"base2mb", MmuDesign::kBase2MB},
        {"basecoalesced", MmuDesign::kBaseCoalesced},
        {"basevictima", MmuDesign::kBaseVictima},
    };
    return map;
}

bool
tryParseDesign(const std::string &name, MmuDesign &out)
{
    const std::string canon = canonicalDesignSpelling(name);
    for (const auto &[spelling, design] : designSpellings()) {
        if (canon == spelling) {
            out = design;
            return true;
        }
    }
    return false;
}

MmuDesign
parseDesign(const std::string &name)
{
    MmuDesign d;
    if (!tryParseDesign(name, d))
        fatal("unknown design '" + name + "' (try --list)");
    return d;
}

void
applyRawDesignIntent(RunConfig &cfg, const RawSocOverrides &user)
{
    if (!cfg.raw_soc)
        return;
    const SocConfig d = configFor(cfg.design, {});
    if (!user.percu_tlb_entries)
        cfg.soc.percu_tlb_entries = d.percu_tlb_entries;
    if (!user.iommu_tlb_entries)
        cfg.soc.iommu.tlb_entries = d.iommu.tlb_entries;
    if (!user.fbt_entries)
        cfg.soc.fbt.entries = d.fbt.entries;
    cfg.soc.fbt_as_second_level_tlb = d.fbt_as_second_level_tlb;
    cfg.soc.percu_tlb_infinite = d.percu_tlb_infinite;
    cfg.soc.iommu.tlb_infinite = d.iommu.tlb_infinite;
    cfg.soc.iommu.unlimited_bw =
        cfg.soc.iommu.unlimited_bw || d.iommu.unlimited_bw;
    // Reach-generalized designs are defined by these knobs, not by
    // structure sizes, so raw mode must carry them too.
    cfg.soc.vm_page_policy = d.vm_page_policy;
    cfg.soc.tlb_max_reach = d.tlb_max_reach;
    cfg.soc.tlb_merge_on_insert = d.tlb_merge_on_insert;
    cfg.soc.coalesce_max_reach = d.coalesce_max_reach;
    cfg.soc.victima_stash = d.victima_stash;
}

bool
parseShardSpec(const std::string &text, ShardSpec &out, std::string *err)
{
    const auto bad = [&](const std::string &msg) {
        if (err)
            *err = msg;
        return false;
    };
    const std::size_t slash = text.find('/');
    if (slash == std::string::npos)
        return bad("expected I/N (e.g. 0/4), got '" + text + "'");
    std::uint64_t index = 0;
    std::uint64_t count = 0;
    if (!tryParseU64(text.substr(0, slash), index) ||
        !tryParseU64(text.substr(slash + 1), count))
        return bad("expected I/N (e.g. 0/4), got '" + text + "'");
    if (count == 0 || count > 0xffffffffull)
        return bad("shard count must be between 1 and 2^32-1, got '" +
                   text + "'");
    if (index >= count)
        return bad("shard index " + std::to_string(index) +
                   " out of range for /" + std::to_string(count) +
                   " (valid: 0.." + std::to_string(count - 1) + ")");
    out.index = unsigned(index);
    out.count = unsigned(count);
    return true;
}

} // namespace gvc
