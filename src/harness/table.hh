/**
 * @file
 * Tiny fixed-width table printer for bench/example output, so every
 * figure harness prints uniform, paper-style rows.
 */

#ifndef GVC_HARNESS_TABLE_HH
#define GVC_HARNESS_TABLE_HH

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

namespace gvc
{

/** Column-aligned text table. */
class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> headers)
        : headers_(std::move(headers))
    {
    }

    void
    addRow(std::vector<std::string> cells)
    {
        rows_.push_back(std::move(cells));
    }

    /** Render to stdout. */
    void
    print() const
    {
        std::vector<std::size_t> widths(headers_.size());
        for (std::size_t c = 0; c < headers_.size(); ++c)
            widths[c] = headers_[c].size();
        for (const auto &row : rows_)
            for (std::size_t c = 0; c < row.size() && c < widths.size();
                 ++c)
                widths[c] = std::max(widths[c], row[c].size());

        printRow(headers_, widths);
        std::string rule;
        for (std::size_t c = 0; c < widths.size(); ++c) {
            rule += std::string(widths[c], '-');
            rule += (c + 1 < widths.size()) ? "-+-" : "";
        }
        std::printf("%s\n", rule.c_str());
        for (const auto &row : rows_)
            printRow(row, widths);
    }

    static std::string
    fmt(double v, int precision = 3)
    {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
        return buf;
    }

    static std::string
    pct(double v, int precision = 1)
    {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.*f%%", precision, v * 100.0);
        return buf;
    }

  private:
    static void
    printRow(const std::vector<std::string> &cells,
             const std::vector<std::size_t> &widths)
    {
        std::string line;
        for (std::size_t c = 0; c < widths.size(); ++c) {
            std::string cell = c < cells.size() ? cells[c] : "";
            cell.resize(widths[c], ' ');
            line += cell;
            if (c + 1 < widths.size())
                line += " | ";
        }
        std::printf("%s\n", line.c_str());
    }

    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace gvc

#endif // GVC_HARNESS_TABLE_HH
