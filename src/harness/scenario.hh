/**
 * @file
 * Multi-kernel scenarios: launch one workload's kernels N times
 * back-to-back on a single persistent SimContext + memory system, with a
 * selectable kernel-boundary policy (paper §4) applied between rounds.
 * The per-round statistics expose what the paper's single-kernel runs
 * cannot: how much translation traffic a warm virtual cache hierarchy
 * keeps filtering once cache residency outlives TLB-entry lifetime.
 */

#ifndef GVC_HARNESS_SCENARIO_HH
#define GVC_HARNESS_SCENARIO_HH

#include <cstdint>
#include <string>

#include "gpu/gpu.hh"
#include "mem/dram.hh"
#include "mmu/boundary.hh"
#include "mmu/designs.hh"

namespace gvc
{

/**
 * Deterministic per-kernel counters, one X-macro entry per exported
 * field.  Every field is a plain event count (or tick count) so deltas
 * between cumulative snapshots are exact; window-based rate statistics
 * (the IOMMU APC sampler) are deliberately excluded because their
 * windows are anchored at absolute time zero, not at kernel starts.
 */
#define GVC_KERNELSTAT_FIELDS(X)                                          \
    X(exec_ticks)                                                         \
    X(instructions)                                                       \
    X(mem_instructions)                                                   \
    X(tlb_accesses)                                                       \
    X(tlb_misses)                                                         \
    X(iommu_accesses)                                                     \
    X(page_walks)                                                         \
    X(l1_accesses)                                                        \
    X(l1_hits)                                                            \
    X(l2_accesses)                                                        \
    X(l2_hits)                                                            \
    X(dram_accesses)                                                      \
    X(dram_bytes)                                                         \
    X(fbt_lookups)                                                        \
    X(synonym_replays)

/** One kernel's (or one cumulative snapshot's) counters. */
struct KernelStats
{
#define GVC_DECLARE_FIELD(name) std::uint64_t name = 0;
    GVC_KERNELSTAT_FIELDS(GVC_DECLARE_FIELD)
#undef GVC_DECLARE_FIELD

    bool
    operator==(const KernelStats &o) const
    {
#define GVC_CMP_FIELD(name)                                               \
    if (name != o.name)                                                   \
        return false;
        GVC_KERNELSTAT_FIELDS(GVC_CMP_FIELD)
#undef GVC_CMP_FIELD
        return true;
    }
    bool operator!=(const KernelStats &o) const { return !(*this == o); }
};

/**
 * One tenant's share of a multi-tenant run: the cumulative-counter
 * deltas of every slot the scheduler attributed to it (X-macro driven
 * through KernelStats, so the field set can never drift from the
 * per-kernel stats).  Per-tenant deltas partition the run's timeline,
 * so they sum field-exactly to the run's cumulative totals.
 */
struct TenantStats
{
    std::string workload;
    std::uint64_t launches = 0; ///< Kernel launches executed.
    KernelStats stats;

    bool
    operator==(const TenantStats &o) const
    {
        return workload == o.workload && launches == o.launches &&
               stats == o.stats;
    }
    bool operator!=(const TenantStats &o) const { return !(*this == o); }
};

/** How to run a multi-kernel scenario. */
struct ScenarioSpec
{
    /** Back-to-back rounds of the workload's kernels (>= 1). */
    unsigned rounds = 1;
    /** Policy applied between consecutive rounds. */
    BoundaryPolicy boundary = BoundaryPolicy::keepAll();
};

/** Cumulative counters of the system as it stands right now. */
KernelStats collectKernelStats(SystemUnderTest &sut, Gpu &gpu, Dram &dram,
                               SimContext &ctx);

/** Field-wise @p cur - @p prev (both cumulative snapshots). */
KernelStats kernelDelta(const KernelStats &cur, const KernelStats &prev);

/** Field-wise sum @p a + @p b (for invariant checks). */
KernelStats kernelSum(const KernelStats &a, const KernelStats &b);

} // namespace gvc

#endif // GVC_HARNESS_SCENARIO_HH
