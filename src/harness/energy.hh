/**
 * @file
 * Event-based energy estimation (§5.3 of the paper claims — but does
 * not quantify — energy benefits; this extension quantifies them from
 * the simulator's event counts).
 *
 * Per-event energies are illustrative CACTI-class numbers for a ~22 nm
 * node, chosen for relative plausibility: a fully-associative per-CU
 * TLB lookup costs more than a small SRAM access; the large shared TLB
 * and the FBT cost more per lookup than private structures; DRAM
 * dominates per byte.  Absolute joules are not meaningful — the
 * *relative* comparison between designs is the point.
 */

#ifndef GVC_HARNESS_ENERGY_HH
#define GVC_HARNESS_ENERGY_HH

#include "harness/runner.hh"

namespace gvc
{

/** Per-event energies in picojoules. */
struct EnergyParams
{
    double percu_tlb_lookup_pj = 10.0; ///< 32-entry fully associative.
    double iommu_tlb_lookup_pj = 45.0; ///< Large shared structure.
    double fbt_lookup_pj = 35.0;       ///< 16K-entry BT/FT access.
    double l1_access_pj = 18.0;        ///< 32 KB L1 (incl. tags).
    double l2_access_pj = 55.0;        ///< 2 MB banked L2.
    double page_walk_pj = 400.0;       ///< 4-level walk incl. PWC.
    double dram_pj_per_byte = 15.0;
};

/** Energy breakdown for one run, in nanojoules. */
struct EnergyEstimate
{
    double translation_nj = 0; ///< per-CU TLBs + IOMMU TLB + FBT + PTW.
    double cache_nj = 0;
    double dram_nj = 0;

    double total() const { return translation_nj + cache_nj + dram_nj; }
};

/** Estimate energy from a run's event counts. */
inline EnergyEstimate
estimateEnergy(const RunResult &r, const EnergyParams &p = {})
{
    EnergyEstimate e;
    e.translation_nj =
        (double(r.tlb_accesses) * p.percu_tlb_lookup_pj +
         double(r.iommu_accesses) * p.iommu_tlb_lookup_pj +
         double(r.fbt_lookups) * p.fbt_lookup_pj +
         double(r.page_walks) * p.page_walk_pj) /
        1000.0;
    e.cache_nj = (double(r.l1_accesses) * p.l1_access_pj +
                  double(r.l2_accesses) * p.l2_access_pj) /
                 1000.0;
    e.dram_nj = double(r.dram_bytes) * p.dram_pj_per_byte / 1000.0;
    return e;
}

} // namespace gvc

#endif // GVC_HARNESS_ENERGY_HH
