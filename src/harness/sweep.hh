/**
 * @file
 * Parallel experiment orchestration: expand a declarative grid of
 * (workload, RunConfig) cells into jobs, execute them across worker
 * threads, and collect RunResults in deterministic grid order.
 *
 * Properties the figure benches rely on:
 *
 *  - **Determinism.**  Each simulation is a single-seed-deterministic,
 *    fully self-contained process (see the thread-safety audit in
 *    sweep.cc), so an N-thread sweep produces bit-identical RunResults
 *    to a serial one; results are always reported in add() order, never
 *    completion order.
 *  - **Memoization.**  Duplicate cells — same workload, design, and
 *    effective SocConfig/WorkloadParams — are simulated once and the
 *    result is shared, so e.g. the IDEAL baseline each figure
 *    normalizes against costs one run per workload regardless of how
 *    many comparison points reference it.  The memo cache persists
 *    across run() calls, so benches can add follow-up grids
 *    incrementally.
 *  - **Progress.**  Completed-cell progress is reported to stderr
 *    (stdout stays clean for the figure tables); disable with
 *    setProgress(false) or GVC_SWEEP_QUIET=1.
 *
 * Worker count: explicit constructor argument, else the GVC_JOBS
 * environment variable, else std::thread::hardware_concurrency().
 */

#ifndef GVC_HARNESS_SWEEP_HH
#define GVC_HARNESS_SWEEP_HH

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "harness/results_io.hh"
#include "harness/runner.hh"

namespace gvc
{

/**
 * Worker threads to use by default: GVC_JOBS when set to a positive
 * integer, otherwise std::thread::hardware_concurrency() (at least 1).
 */
unsigned defaultJobs();

/**
 * Canonical memoization key of one cell: the workload name, design,
 * WorkloadParams, and *effective* SocConfig (after configFor() unless
 * raw_soc).  Two cells with equal keys simulate identically.
 */
std::string runConfigKey(const std::string &workload,
                         const RunConfig &cfg);

/** Queue of experiment cells, executed across a thread pool. */
class Sweep
{
  public:
    /** @param jobs  Worker threads; 0 means defaultJobs(). */
    explicit Sweep(unsigned jobs = 0);

    /**
     * Queue one cell; returns its index (stable across run()).
     * @p label is carried into progress reporting only.
     */
    std::size_t add(std::string workload, RunConfig cfg,
                    std::string label = {});

    /**
     * Convenience grid expansion: every workload under every design,
     * row-major (workload-major, design-minor), from @p base.
     */
    void addGrid(const std::vector<std::string> &workloads,
                 const std::vector<MmuDesign> &designs,
                 const RunConfig &base);

    /** Execute all cells that do not have a result yet. */
    void run();

    /** Result of cell @p idx (run() must have covered it). */
    const RunResult &result(std::size_t idx) const;

    /** First result matching (workload, design); fatal when absent. */
    const RunResult &result(const std::string &workload,
                            MmuDesign design) const;

    /** All (config, result) pairs in add() order, for export. */
    std::vector<ResultRecord> records() const;

    std::size_t size() const { return items_.size(); }
    unsigned jobs() const { return jobs_; }
    /** Simulations actually executed (after memo deduplication). */
    std::size_t uniqueRuns() const { return unique_runs_; }
    void setProgress(bool on) { progress_ = on; }

  private:
    struct Item
    {
        std::string workload;
        RunConfig cfg;
        std::string label;
        std::string key;
        std::optional<RunResult> result;
    };

    std::vector<Item> items_;
    std::unordered_map<std::string, RunResult> memo_;
    unsigned jobs_;
    std::size_t unique_runs_ = 0;
    bool progress_;
};

} // namespace gvc

#endif // GVC_HARNESS_SWEEP_HH
