/**
 * @file
 * Parallel experiment orchestration: expand a declarative grid of
 * (workload, RunConfig) cells into jobs, execute them across worker
 * threads, and collect RunResults in deterministic grid order.
 *
 * Properties the figure benches rely on:
 *
 *  - **Determinism.**  Each simulation is a single-seed-deterministic,
 *    fully self-contained process (see the thread-safety audit in
 *    sweep.cc), so an N-thread sweep produces bit-identical RunResults
 *    to a serial one; results are always reported in add() order, never
 *    completion order.
 *  - **Memoization.**  Duplicate cells — same workload, design, and
 *    effective SocConfig/WorkloadParams — are simulated once and the
 *    result is shared, so e.g. the IDEAL baseline each figure
 *    normalizes against costs one run per workload regardless of how
 *    many comparison points reference it.  The memo cache persists
 *    across run() calls, so benches can add follow-up grids
 *    incrementally.
 *  - **Capture once, replay per design.**  By default each unique
 *    (workload, params) source is generated once into an in-memory
 *    gvc::trace::Trace and every design in the row replays it, so
 *    generation cost scales with the workloads, not the grid.  Replay
 *    is bit-identical to live generation; the memo key gains the trace
 *    digest so memoized results name the exact streams they ran.
 *    Disable with setCapture(false) or GVC_SWEEP_LIVE=1.
 *  - **Progress.**  Completed-cell progress is reported to stderr
 *    (stdout stays clean for the figure tables); disable with
 *    setProgress(false) or GVC_SWEEP_QUIET=1.
 *
 * Worker count: explicit constructor argument, else the GVC_JOBS
 * environment variable, else std::thread::hardware_concurrency().
 */

#ifndef GVC_HARNESS_SWEEP_HH
#define GVC_HARNESS_SWEEP_HH

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "harness/results_io.hh"
#include "harness/runner.hh"

namespace gvc
{

/**
 * Worker threads to use by default: GVC_JOBS when set to a positive
 * integer, otherwise std::thread::hardware_concurrency() (at least 1).
 */
unsigned defaultJobs();

/**
 * Canonical memoization key of one cell: the workload name, design,
 * WorkloadParams, and *effective* SocConfig (after configFor() unless
 * raw_soc).  Two cells with equal keys simulate identically.
 */
std::string runConfigKey(const std::string &workload,
                         const RunConfig &cfg);

/** Queue of experiment cells, executed across a thread pool. */
class Sweep
{
  public:
    /** @param jobs  Worker threads; 0 means defaultJobs(). */
    explicit Sweep(unsigned jobs = 0);

    /**
     * Queue one cell; returns its index (stable across run()).
     * @p label is carried into progress reporting only.
     */
    std::size_t add(std::string workload, RunConfig cfg,
                    std::string label = {});

    /**
     * Convenience grid expansion: every workload under every design,
     * row-major (workload-major, design-minor), from @p base.
     */
    void addGrid(const std::vector<std::string> &workloads,
                 const std::vector<MmuDesign> &designs,
                 const RunConfig &base);

    /** Execute all cells that do not have a result yet. */
    void run();

    /**
     * Observer invoked (under an internal mutex — implementations need
     * no locking of their own) each time a cell's result becomes
     * available during run(): when a leader simulation completes, when
     * a duplicate cell is resolved from its leader, and when a cell is
     * satisfied from the cross-run memo cache.  This is the checkpoint
     * hook: gvc_sweep appends each completed cell to its `.gvcj`
     * journal from here, so a kill loses at most the cell in flight.
     * Cells satisfied by seedResult() do NOT fire the hook — they were
     * journaled by the run being resumed.
     */
    using CellHook = std::function<void(std::size_t idx,
                                        const RunResult &result)>;
    void setCellHook(CellHook hook) { cell_hook_ = std::move(hook); }

    /**
     * Pre-load cell @p idx with an already-known result (e.g. from a
     * checkpoint journal).  run() skips seeded cells entirely: no
     * simulation, no trace capture on their behalf, no hook firing.
     * Seeded results are deliberately not memoized — seed every
     * duplicate cell explicitly (duplicates share a runConfigKey, so
     * key-matched seeding covers them naturally).
     */
    void seedResult(std::size_t idx, RunResult result);

    /**
     * Cap the number of unique simulations a single run() call
     * executes (0 = unlimited).  With a cap in place run() may leave
     * cells unresolved — used by tests and `--max-cells` to produce a
     * deterministically interrupted sweep for resume proofs.
     */
    void setCellLimit(std::size_t limit) { cell_limit_ = limit; }

    /** Result of cell @p idx (run() must have covered it). */
    const RunResult &result(std::size_t idx) const;

    /** First result matching (workload, design); fatal when absent. */
    const RunResult &result(const std::string &workload,
                            MmuDesign design) const;

    /** All (config, result) pairs in add() order, for export. */
    std::vector<ResultRecord> records() const;

    std::size_t size() const { return items_.size(); }
    unsigned jobs() const { return jobs_; }
    /** Simulations actually executed (after memo deduplication). */
    std::size_t uniqueRuns() const { return unique_runs_; }
    void setProgress(bool on) { progress_ = on; }

    /** Enable/disable capture-once-replay-per-design (default: on). */
    void setCapture(bool on) { capture_ = on; }
    bool capture() const { return capture_; }

    /** Distinct (workload, params) sources captured so far. */
    std::size_t capturedTraces() const { return traces_.size(); }

    /** The captured trace for (workload, params); null if none. */
    std::shared_ptr<const trace::Trace>
    capturedTrace(const std::string &workload,
                  const WorkloadParams &params) const;

  private:
    struct Item
    {
        std::string workload;
        RunConfig cfg;
        std::string label;
        std::string key;
        std::string source_key; ///< Trace-cache key when capturing.
        std::optional<RunResult> result;
    };

    struct CapturedTrace
    {
        std::shared_ptr<const trace::Trace> trace;
        std::uint64_t digest = 0;
    };

    /** Generate traces for pending cells and fold digests into keys. */
    void captureSources();

    std::vector<Item> items_;
    std::unordered_map<std::string, RunResult> memo_;
    std::unordered_map<std::string, CapturedTrace> traces_;
    unsigned jobs_;
    std::size_t unique_runs_ = 0;
    bool progress_;
    bool capture_;
    CellHook cell_hook_;
    std::size_t cell_limit_ = 0;
};

} // namespace gvc

#endif // GVC_HARNESS_SWEEP_HH
