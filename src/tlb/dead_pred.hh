/**
 * @file
 * Sampling-based dead-on-arrival predictor for TLB fills.
 *
 * "Dead on Arrival" observes that a large fraction of GPU TLB entries
 * are never re-referenced between insertion and eviction.  This
 * predictor learns that population the same way the repo's TlbRefHist
 * measures it: every completed residency of a reach-0 entry trains a
 * region-indexed table of 2-bit saturating counters (a region is
 * 2^kRegionShift consecutive pages of one address space) with the
 * insert-to-evict outcome — dead (zero re-references) strengthens the
 * counter, a re-referenced residency weakens it.
 *
 * A fill whose region counter has saturated past the threshold is
 * predicted dead and may be bypassed by the owning TLB.  To keep the
 * table trainable once a region starts bypassing (a bypassed fill
 * never retires, so it can never teach us we were wrong), every
 * kSamplePeriod-th predicted-dead fill is installed anyway as a
 * *sampled* entry; its retirement outcome both trains the table and
 * feeds the true/false-positive counters.
 *
 * Everything here is deterministic: the table index is a fixed hash,
 * the sampling cadence a plain counter.  Two TLBs fed the same fill
 * and retire sequence hold identical predictor state.
 */

#ifndef GVC_TLB_DEAD_PRED_HH
#define GVC_TLB_DEAD_PRED_HH

#include <array>
#include <cstddef>
#include <cstdint>

#include "sim/types.hh"

namespace gvc
{

class DeadPredictor
{
  public:
    /** 2-bit saturating counters, one per hashed region. */
    static constexpr unsigned kTableSize = 256;
    /** Region granule: pages sharing vpn >> kRegionShift train together. */
    static constexpr unsigned kRegionShift = 6;
    /** Counter value at or above which a fill is predicted dead. */
    static constexpr std::uint8_t kDeadThreshold = 2;
    static constexpr std::uint8_t kCounterMax = 3;
    /** Every kSamplePeriod-th predicted-dead fill installs anyway. */
    static constexpr std::uint64_t kSamplePeriod = 8;

    /** Would a fill of (asid, vpn) be predicted dead on arrival? */
    bool
    predictDead(Asid asid, Vpn vpn) const
    {
        return table_[index(asid, vpn)] >= kDeadThreshold;
    }

    /**
     * Record a completed residency outcome for (asid, vpn):
     * @p dead is true when the entry was never re-referenced.
     */
    void
    train(Asid asid, Vpn vpn, bool dead)
    {
        std::uint8_t &c = table_[index(asid, vpn)];
        if (dead) {
            if (c < kCounterMax)
                ++c;
        } else if (c > 0) {
            --c;
        }
    }

    /**
     * Deterministic sampling decision for a predicted-dead fill;
     * call exactly once per predicted-dead fill.  @return true when
     * this fill must be installed anyway (as a sampled entry).
     */
    bool
    sampleFill()
    {
        return (sample_counter_++ % kSamplePeriod) == 0;
    }

    void
    reset()
    {
        table_.fill(0);
        sample_counter_ = 0;
    }

    /** Table index of (asid, vpn)'s region — exposed for the oracle. */
    static std::size_t
    index(Asid asid, Vpn vpn)
    {
        std::uint64_t h =
            (std::uint64_t(asid) << 32) ^ (vpn >> kRegionShift);
        h ^= h >> 17;
        h *= 0x9E3779B97F4A7C15ull;
        h ^= h >> 29;
        return std::size_t(h % kTableSize);
    }

  private:
    std::array<std::uint8_t, kTableSize> table_{};
    std::uint64_t sample_counter_ = 0;
};

} // namespace gvc

#endif // GVC_TLB_DEAD_PRED_HH
