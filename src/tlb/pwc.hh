/**
 * @file
 * Page-walk cache: a small physical cache over page-table entries that
 * lets the walker skip memory accesses for recently-used upper levels
 * (Table 1: 8 KB).  Modeled as a set-associative cache of 64 B page-table
 * lines, which captures the strong spatial locality of PTE accesses.
 *
 * The PWC is inherently a *reach* structure: each cached line holds
 * kPtesPerLine (8) adjacent PTEs, so one entry at the PT level covers a
 * naturally-aligned 8-page (32 KB) subregion — which is exactly why the
 * IOMMU's coalesced-fill probe defaults to reach 3 (2^3 pages = one PTE
 * line): the walker has already paid for every PTE the probe inspects.
 * Entries are keyed by PTE line address, making them (base, reach)
 * descriptors over the page-table address space; invalidation is
 * whole-cache on page-table modification, which is trivially
 * reach-precise.
 */

#ifndef GVC_TLB_PWC_HH
#define GVC_TLB_PWC_HH

#include <cstdint>
#include <vector>

#include "sim/stats.hh"
#include "sim/types.hh"

namespace gvc
{

/** Cache of page-table lines keyed by PTE physical address. */
class PageWalkCache
{
  public:
    /** PTEs per cached line: one line spans 8 adjacent translations. */
    static constexpr unsigned kPtesPerLine = 8;

    /**
     * @param capacity_bytes  Total capacity (paper: 8 KB).
     * @param assoc           Set associativity.
     */
    explicit PageWalkCache(std::uint64_t capacity_bytes = 8 * 1024,
                           unsigned assoc = 8)
    {
        const std::uint64_t lines = capacity_bytes / kPtLineBytes;
        num_sets_ = unsigned(lines / assoc);
        if (num_sets_ == 0)
            num_sets_ = 1;
        assoc_ = unsigned(lines / num_sets_);
        sets_.resize(num_sets_);
    }

    /** Look up the line containing @p pte_addr; true on hit. */
    bool
    lookup(Paddr pte_addr)
    {
        ++accesses_;
        const std::uint64_t tag = lineTag(pte_addr);
        auto &set = sets_[tag % num_sets_];
        for (auto &e : set) {
            if (e.tag == tag) {
                ++hits_;
                e.lru = ++lru_clock_;
                return true;
            }
        }
        ++misses_;
        return false;
    }

    /** Install the line containing @p pte_addr. */
    void
    insert(Paddr pte_addr)
    {
        const std::uint64_t tag = lineTag(pte_addr);
        auto &set = sets_[tag % num_sets_];
        for (auto &e : set)
            if (e.tag == tag)
                return;
        if (set.size() < assoc_) {
            set.push_back({tag, ++lru_clock_});
            return;
        }
        std::size_t victim = 0;
        for (std::size_t i = 1; i < set.size(); ++i)
            if (set[i].lru < set[victim].lru)
                victim = i;
        set[victim] = {tag, ++lru_clock_};
    }

    /** Drop everything (page-table modification). */
    void
    invalidateAll()
    {
        for (auto &set : sets_)
            set.clear();
    }

    std::uint64_t accesses() const { return accesses_.value; }
    std::uint64_t hits() const { return hits_.value; }

    double
    hitRatio() const
    {
        return accesses_.value
            ? double(hits_.value) / double(accesses_.value)
            : 0.0;
    }

  private:
    /** Page-table line granularity (kPtesPerLine PTEs of 8 bytes). */
    static constexpr std::uint64_t kPtLineBytes = kPtesPerLine * 8;

    struct Entry
    {
        std::uint64_t tag;
        std::uint64_t lru;
    };

    static std::uint64_t
    lineTag(Paddr pte_addr)
    {
        return pte_addr / kPtLineBytes;
    }

    unsigned num_sets_ = 1;
    unsigned assoc_ = 8;
    std::vector<std::vector<Entry>> sets_;
    std::uint64_t lru_clock_ = 0;
    Counter accesses_;
    Counter hits_;
    Counter misses_;
};

} // namespace gvc

#endif // GVC_TLB_PWC_HH
