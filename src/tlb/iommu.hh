/**
 * @file
 * IOMMU front end: the shared translation structure whose bandwidth the
 * paper identifies as the bottleneck.
 *
 * The shared TLB is modeled as a single rate-limited port (Table 1 /
 * footnote 2: up to one access per cycle; Figure 5 sweeps 1..4).
 * Requests that find the port busy queue up; the resulting waiting time
 * is the paper's "serialization overhead".  Misses consult an optional
 * second-level structure (the FBT, when the virtual-cache design installs
 * it) and then the multi-threaded page-table walker.
 */

#ifndef GVC_TLB_IOMMU_HH
#define GVC_TLB_IOMMU_HH

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "mem/dram.hh"
#include "sim/callback.hh"
#include "mem/vm.hh"
#include "sim/debug.hh"
#include "sim/sim_context.hh"
#include "tlb/ptw.hh"
#include "tlb/tlb.hh"

namespace gvc
{

/** IOMMU configuration. */
struct IommuParams
{
    unsigned tlb_entries = 512;
    unsigned tlb_assoc = 8;
    bool tlb_infinite = false;
    /** Last-translation memo in the shared TLB (host-side only). */
    bool tlb_memo = true;

    /** Peak shared-TLB bandwidth per bank; ignored when unlimited_bw. */
    double accesses_per_cycle = 1.0;
    /** Remove the port limit entirely (IDEAL MMU, Figure 3 probe runs). */
    bool unlimited_bw = false;
    /**
     * Multi-banked shared TLB (§3.2 discussion): each bank has its own
     * port.  Banks are selected by higher-order VPN bits, which is why
     * the paper observes frequent conflicts for clustered footprints.
     */
    unsigned banks = 1;
    /** VPN bits skipped before the bank-select modulo. */
    unsigned bank_select_shift = 4;

    /** Shared TLB lookup latency once the port is won. */
    Tick tlb_latency = 4;
    /** Lookup latency of the second-level structure (FBT: 5 cycles). */
    Tick second_level_latency = 5;
    /** CPU page-fault service latency (minor fault fix-up). */
    Tick fault_latency = 20000;

    PtwParams ptw;

    /** Sampling window for access-rate stats: 1 µs at 700 MHz. */
    Tick sample_window = 700;

    /** Max shared-TLB entry reach (log2 pages); 0 = classic 4 KB. */
    unsigned tlb_max_reach = 0;
    /** Buddy-merge contiguous shared-TLB entries at insertion time. */
    bool tlb_merge_on_insert = false;
    /**
     * At walk completion, probe the page table for an aligned block of
     * up to 2^coalesce_max_reach contiguously-mapped same-perm pages
     * around the walked VPN and fill one multi-page entry covering it.
     * The default ceiling of 3 matches one 64 B PTE line (8 PTEs): the
     * walker already fetched every PTE needed for the probe, so the
     * coalesced fill costs no extra memory traffic.  0 disables.
     */
    unsigned coalesce_max_reach = 0;
    /** Shared-TLB fill policy (kTlbFill*; see tlb/tlb.hh). */
    unsigned tlb_fill_policy = kTlbFillLru;
    /** Shared-TLB replacement policy (kTlbRepl*). */
    unsigned tlb_replacement = kTlbReplLru;
};

/** Response delivered to the requester. */
struct IommuResponse
{
    bool fault = false;
    Ppn ppn = kInvalidPpn;
    Perms perms = kPermNone;
    bool large = false;
    /** Reach of the filling entry (see TlbLookup); 0 = one page. */
    std::uint8_t reach = 0;
    Vpn base_vpn = kInvalidVpn;
    Ppn base_ppn = kInvalidPpn;
};

/**
 * The IOMMU.  translate() is asynchronous; the response callback runs at
 * the time the translation (or fault) completes, excluding interconnect
 * latency, which callers model.
 */
class Iommu
{
  public:
    using DoneFn = SmallFunc<void(const IommuResponse &)>;
    /** Functional second-level lookup (the FBT's forward table). */
    using SecondLevelFn =
        std::function<std::optional<TlbLookup>(Asid, Vpn)>;
    /** Returns true when the fault was repaired and the walk may retry. */
    using FaultFixFn = std::function<bool(Asid, Vpn)>;

    Iommu(SimContext &ctx, Vm &vm, Dram &dram, const IommuParams &params)
        : ctx_(ctx), vm_(vm), params_(params),
          tlb_(TlbParams{params.tlb_entries, params.tlb_assoc,
                         params.tlb_infinite, false, params.tlb_memo,
                         params.tlb_max_reach,
                         params.tlb_merge_on_insert,
                         params.tlb_fill_policy,
                         params.tlb_replacement}),
          ptw_(ctx, vm, dram, params.ptw),
          sampler_(params.sample_window),
          port_fp_per_access_(params.unlimited_bw
                                  ? 0
                                  : std::uint64_t(double(kFpScale) /
                                                  params.accesses_per_cycle)),
          port_free_fp_(params.banks ? params.banks : 1, 0)
    {
        vm.addPageShootdownListener(
            [this](Asid asid, Vpn vpn) { invalidatePage(asid, vpn); });
        vm.addFullShootdownListener(
            [this](Asid asid) { tlb_.invalidateAsid(asid, ctx_.now()); });
    }

    /** Request a translation of (asid, vpn). */
    void
    translate(Asid asid, Vpn vpn, DoneFn done)
    {
        ++accesses_;
        sampler_.record(ctx_.now());

        // Arbitrate for the shared TLB port (per bank when banked).
        Tick start = ctx_.now();
        if (!params_.unlimited_bw) {
            const std::size_t bank =
                (vpn >> params_.bank_select_shift) %
                port_free_fp_.size();
            std::uint64_t &free_fp = port_free_fp_[bank];
            const std::uint64_t now_fp = ctx_.now() * kFpScale;
            const std::uint64_t start_fp =
                free_fp > now_fp ? free_fp : now_fp;
            if (free_fp > now_fp)
                ++bank_conflicts_;
            free_fp = start_fp + port_fp_per_access_;
            start = start_fp / kFpScale;
            serialization_delay_ += start - ctx_.now();
        }
        const Tick lookup_done = start + params_.tlb_latency;
        ctx_.eq.schedule(lookup_done,
                         [this, asid, vpn, done = std::move(done)]() mutable {
                             afterTlbLookup(asid, vpn, std::move(done));
                         });
    }

    /** Install the FBT (or other) second-level translation source. */
    void
    setSecondLevel(SecondLevelFn fn)
    {
        second_level_ = std::move(fn);
    }

    /** Install a page-fault fixer (CPU-side demand handler). */
    void
    setFaultFixer(FaultFixFn fn)
    {
        fault_fixer_ = std::move(fn);
    }

    void
    invalidatePage(Asid asid, Vpn vpn)
    {
        tlb_.invalidatePage(asid, vpn, ctx_.now());
    }

    void invalidateAll() { tlb_.invalidateAll(ctx_.now()); }

    Tlb &tlb() { return tlb_; }
    PageTableWalker &ptw() { return ptw_; }
    IntervalSampler &sampler() { return sampler_; }
    const IntervalSampler &sampler() const { return sampler_; }

    std::uint64_t accesses() const { return accesses_.value; }
    std::uint64_t secondLevelHits() const { return sl_hits_.value; }
    std::uint64_t secondLevelLookups() const { return sl_lookups_.value; }
    std::uint64_t walks() const { return walks_.value; }
    std::uint64_t faults() const { return faults_.value; }
    /** Walk completions filled as one multi-page coalesced entry. */
    std::uint64_t coalescedFills() const { return coalesced_fills_.value; }

    /** Total cycles requests spent waiting for the shared TLB port. */
    std::uint64_t
    serializationDelay() const
    {
        return serialization_delay_.value;
    }

    double
    meanSerializationDelay() const
    {
        return accesses_.value
            ? double(serialization_delay_.value) / double(accesses_.value)
            : 0.0;
    }

    /** Accesses that found their bank busy (banked configurations). */
    std::uint64_t bankConflicts() const { return bank_conflicts_.value; }

  private:
    static constexpr std::uint64_t kFpScale = 1024;

    void
    afterTlbLookup(Asid asid, Vpn vpn, DoneFn done)
    {
        if (auto hit = tlb_.lookup(asid, vpn, ctx_.now())) {
            done(IommuResponse{false, hit->ppn, hit->perms, hit->large,
                               hit->reach, hit->base_vpn,
                               hit->base_ppn});
            return;
        }
        GVC_DPRINTF(kIommu, ctx_.now(),
                    "shared TLB miss asid=%u vpn=%#llx", unsigned(asid),
                    (unsigned long long)vpn);
        if (second_level_) {
            ++sl_lookups_;
            ctx_.eq.scheduleIn(
                params_.second_level_latency,
                [this, asid, vpn, done = std::move(done)]() mutable {
                    if (auto hit = second_level_(asid, vpn)) {
                        ++sl_hits_;
                        tlb_.insert(asid, vpn, *hit, ctx_.now());
                        done(IommuResponse{false, hit->ppn, hit->perms,
                                           hit->large});
                    } else {
                        startWalk(asid, vpn, std::move(done));
                    }
                });
            return;
        }
        startWalk(asid, vpn, std::move(done));
    }

    void
    startWalk(Asid asid, Vpn vpn, DoneFn done)
    {
        ++walks_;
        GVC_DPRINTF(kIommu, ctx_.now(), "walk asid=%u vpn=%#llx",
                    unsigned(asid), (unsigned long long)vpn);
        ptw_.walk(asid, vpn,
                  [this, asid, vpn, done = std::move(done)](
                      std::optional<Translation> t) mutable {
                      walkDone(asid, vpn, std::move(done), t, false);
                  });
    }

    void
    walkDone(Asid asid, Vpn vpn, DoneFn done,
             std::optional<Translation> t, bool retried)
    {
        if (!t) {
            ++faults_;
            if (fault_fixer_ && !retried && fault_fixer_(asid, vpn)) {
                // The CPU repaired the mapping; retry the walk after the
                // fault-service latency.
                ctx_.eq.scheduleIn(
                    params_.fault_latency,
                    [this, asid, vpn, done = std::move(done)]() mutable {
                        ptw_.walk(asid, vpn,
                                  [this, asid, vpn,
                                   done = std::move(done)](
                                      std::optional<Translation> t2) mutable {
                                      walkDone(asid, vpn, std::move(done),
                                               t2, true);
                                  });
                    });
                return;
            }
            done(IommuResponse{true, kInvalidPpn, kPermNone, false});
            return;
        }
        const TlbLookup fill = fillFor(asid, vpn, *t);
        tlb_.insert(asid, vpn, fill, ctx_.now());
        done(IommuResponse{false, t->ppn, t->perms, t->large,
                           fill.reach, fill.base_vpn, fill.base_ppn});
    }

    /**
     * Shape the shared-TLB fill for a completed walk: a 2 MB leaf
     * becomes one reach-9 entry when the TLB admits it, and small-page
     * leaves are widened by probing the page table for an aligned
     * contiguously-mapped block (subregion-contiguity coalescing).
     * With both reach knobs at 0 this reduces to the classic one-page
     * fill.
     */
    TlbLookup
    fillFor(Asid asid, Vpn vpn, const Translation &t)
    {
        if (t.large) {
            if (params_.tlb_max_reach >= kMaxReachLog2) {
                const Ppn base_ppn = t.ppn - (vpn - t.base_vpn);
                return TlbLookup{t.ppn, t.perms, true,
                                 std::uint8_t(kMaxReachLog2),
                                 t.base_vpn, base_ppn};
            }
            return TlbLookup{t.ppn, t.perms, true};
        }
        const unsigned max = params_.coalesce_max_reach <
                                     params_.tlb_max_reach
                                 ? params_.coalesce_max_reach
                                 : params_.tlb_max_reach;
        if (max == 0)
            return TlbLookup{t.ppn, t.perms, false};
        const PageTable &pt = vm_.pageTable(asid);
        unsigned reach = 0;
        Vpn base = vpn;
        Ppn base_ppn = t.ppn;
        for (unsigned cand = 1; cand <= max; ++cand) {
            const Vpn cbase = reachBase(vpn, cand);
            Ppn cppn = kInvalidPpn;
            bool ok = true;
            for (std::uint64_t i = 0; i < reachPages(cand); ++i) {
                const auto pte = pt.translate(cbase + i);
                if (!pte || pte->large || pte->perms != t.perms) {
                    ok = false;
                    break;
                }
                if (i == 0)
                    cppn = pte->ppn;
                else if (pte->ppn != cppn + i) {
                    ok = false;
                    break;
                }
            }
            if (!ok)
                break;
            reach = cand;
            base = cbase;
            base_ppn = cppn;
        }
        if (reach == 0)
            return TlbLookup{t.ppn, t.perms, false};
        ++coalesced_fills_;
        return TlbLookup{t.ppn, t.perms, false, std::uint8_t(reach),
                         base, base_ppn};
    }

    SimContext &ctx_;
    Vm &vm_;
    IommuParams params_;
    Tlb tlb_;
    PageTableWalker ptw_;
    IntervalSampler sampler_;

    std::uint64_t port_fp_per_access_;
    std::vector<std::uint64_t> port_free_fp_;

    SecondLevelFn second_level_;
    FaultFixFn fault_fixer_;

    Counter accesses_;
    Counter sl_lookups_;
    Counter sl_hits_;
    Counter walks_;
    Counter faults_;
    Counter serialization_delay_;
    Counter bank_conflicts_;
    Counter coalesced_fills_;
};

} // namespace gvc

#endif // GVC_TLB_IOMMU_HH
