/**
 * @file
 * Set-associative TLB with a selectable replacement policy (true LRU
 * or the RRIP family — SRRIP / BRRIP / set-dueling DRRIP), ASID tags,
 * optional infinite capacity (for the paper's "infinite" per-CU TLB
 * experiments), entry-lifetime recording (Figure 12), and dead-entry
 * fill policies: a static next-line bypass and a trained
 * DeadPredictor bypass with dead-first victim selection
 * (tlb/dead_pred.hh, "Dead on Arrival").
 *
 * Entries carry an explicit *reach* (log2 of the contiguous 4 KB pages
 * they span, see sim/types.hh): reach 0 is the classic one-page entry,
 * reach 9 a full 2 MB page, and intermediate reaches arise from
 * subregion-contiguity coalescing at fill time and buddy merging at
 * insertion time.  A reach-r entry is tagged by its aligned base VPN and
 * indexed by (base >> r) % sets, so each reach class has its own index
 * function; lookups probe the classes currently present (cheap: a
 * per-class entry count gates each probe).  With only reach-0 entries
 * the TLB is cycle- and stat-identical to the classic design.
 */

#ifndef GVC_TLB_TLB_HH
#define GVC_TLB_TLB_HH

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "mem/page_table.hh"
#include "sim/callback.hh"
#include "sim/logging.hh"
#include "sim/stats.hh"
#include "sim/types.hh"
#include "tlb/dead_pred.hh"

namespace gvc
{

/** TLB fill policies (TlbParams::fill_policy). */
enum : unsigned {
    /** Install every fill (classic). */
    kTlbFillLru = 0,
    /**
     * Bypass fills a static next-line predictor flags as dead on
     * arrival: a fill whose VPN extends the previous fill's VPN by one
     * is part of a sequential stream and is predicted never to be
     * re-referenced before eviction ("Dead on Arrival").  Bypassed
     * translations are simply not cached; a later access re-translates.
     */
    kTlbFillBypassDead = 1,
    /**
     * Bypass fills a trained DeadPredictor flags as dead on arrival
     * (region-indexed saturating counters trained on insert-to-evict
     * outcomes; see tlb/dead_pred.hh), and prefer predicted-dead
     * zero-reference residents as eviction victims.  Every
     * DeadPredictor::kSamplePeriod-th predicted-dead fill installs
     * anyway so the table keeps learning.
     */
    kTlbFillBypassTrained = 2,
};

/** TLB replacement policies (TlbParams::replacement). */
enum : unsigned {
    /** True LRU over the set (classic; the repo's historical policy). */
    kTlbReplLru = 0,
    /**
     * Static RRIP: 2-bit re-reference prediction values, insert at 2
     * ("long"), promote to 0 on hit, evict the lowest-index entry at 3
     * ("distant"), aging the whole set until one reaches 3.
     */
    kTlbReplSrrip = 1,
    /**
     * Bimodal RRIP: like SRRIP but inserts at 3, except every 32nd
     * fill (deterministic counter, not random) inserts at 2 — thrash
     * protection for reuse distances beyond the set size.
     */
    kTlbReplBrrip = 2,
    /**
     * Dynamic RRIP: set-dueling between SRRIP and BRRIP.  Sets with
     * index % 32 == 0 are SRRIP leaders, index % 32 == 1 BRRIP
     * leaders; a miss-install into a leader set moves a 10-bit PSEL
     * toward the other policy and follower sets insert with whichever
     * side PSEL favors.  A TLB with < 2 sets has no BRRIP leader and
     * degenerates to SRRIP behavior.
     */
    kTlbReplDrrip = 3,
};

/** Canonical spelling of a replacement policy (CLI / JSON / tables). */
inline const char *
tlbReplacementName(unsigned r)
{
    switch (r) {
    case kTlbReplLru:
        return "lru";
    case kTlbReplSrrip:
        return "srrip";
    case kTlbReplBrrip:
        return "brrip";
    case kTlbReplDrrip:
        return "drrip";
    default:
        return "?";
    }
}

/** Parse a replacement-policy name; returns false on unknown input. */
inline bool
tlbReplacementFromName(const std::string &name, unsigned &out)
{
    for (unsigned r :
         {kTlbReplLru, kTlbReplSrrip, kTlbReplBrrip, kTlbReplDrrip}) {
        if (name == tlbReplacementName(r)) {
            out = r;
            return true;
        }
    }
    return false;
}

/** Canonical spelling of a fill policy (CLI / JSON / tables). */
inline const char *
tlbFillPolicyName(unsigned p)
{
    switch (p) {
    case kTlbFillLru:
        return "lru";
    case kTlbFillBypassDead:
        return "bypass-dead";
    case kTlbFillBypassTrained:
        return "bypass-trained";
    default:
        return "?";
    }
}

/** Parse a fill-policy name; returns false on unknown input. */
inline bool
tlbFillPolicyFromName(const std::string &name, unsigned &out)
{
    for (unsigned p :
         {kTlbFillLru, kTlbFillBypassDead, kTlbFillBypassTrained}) {
        if (name == tlbFillPolicyName(p)) {
            out = p;
            return true;
        }
    }
    return false;
}

/** Configuration for a Tlb instance. */
struct TlbParams
{
    unsigned entries = 32;
    /** Associativity; 0 selects fully associative. */
    unsigned assoc = 0;
    /** Infinite capacity: never miss after first fill (demand misses only). */
    bool infinite = false;
    /** Record entry residence times (insert -> evict). */
    bool track_lifetimes = false;
    /**
     * Last-translation memo: remember where the previous hit lives and
     * skip the associative scan when the same page repeats.  Pure
     * host-side fast path — every simulated side effect (stat counters,
     * recency update) is identical with the memo on or off.
     */
    bool memo = true;
    /**
     * Maximum entry reach (log2 pages, clamped to kMaxReachLog2).
     * 0 keeps the classic one-entry-per-4KB-page TLB; 9 admits full
     * 2 MB-page entries.  Fills wider than this degrade to reach 0.
     * Ignored in infinite mode (capacity is free there, so reach only
     * matters for real arrays).
     */
    unsigned max_reach = 0;
    /**
     * Buddy-merge at insertion time: when a fill's naturally-aligned
     * buddy block is resident with the same ASID/perms and physically
     * contiguous frames, replace both entries by one of twice the
     * reach, repeating up the reach ladder ("Enabling Large-Reach TLBs
     * by Exploiting Memory Subregion Contiguity").
     */
    bool merge_on_insert = false;
    /** Fill policy: one of the kTlbFill* values above. */
    unsigned fill_policy = kTlbFillLru;
    /** Replacement policy: one of the kTlbRepl* values above. */
    unsigned replacement = kTlbReplLru;
};

/** Outcome of a TLB lookup. */
struct TlbLookup
{
    Ppn ppn = kInvalidPpn;
    Perms perms = kPermNone;
    bool large = false;
    /**
     * Reach of the entry that produced (or should receive) this
     * translation.  reach > 0 makes base_vpn/base_ppn meaningful: they
     * name the aligned block so a downstream TLB can install the same
     * multi-page entry instead of a one-page slice.
     */
    std::uint8_t reach = 0;
    Vpn base_vpn = kInvalidVpn;
    Ppn base_ppn = kInvalidPpn;
};

/**
 * Per-entry reference-count histogram over completed residencies
 * (insert -> evict/invalidate, plus still-resident entries flushed at
 * simulation end).  Bucket 0 counts dead-on-arrival entries — filled
 * but never re-referenced before leaving the TLB, the population "Dead
 * on Arrival" characterizes; bucket b >= 1 counts residencies with
 * refs in [2^(b-1), 2^b), saturating in the last bucket.
 */
struct TlbRefHist
{
    static constexpr std::size_t kBuckets = 12;

    std::array<std::uint64_t, kBuckets> buckets{};
    std::uint64_t retired = 0; ///< Residencies recorded (sum of buckets).
    std::uint64_t dead = 0;    ///< Residencies with zero re-references.

    static std::size_t
    bucketOf(std::uint64_t refs)
    {
        if (refs == 0)
            return 0;
        std::size_t b = 1;
        while (refs > 1 && b + 1 < kBuckets) {
            refs >>= 1;
            ++b;
        }
        return b;
    }

    void
    record(std::uint64_t refs)
    {
        ++buckets[bucketOf(refs)];
        ++retired;
        if (refs == 0)
            ++dead;
    }

    void
    merge(const TlbRefHist &o)
    {
        for (std::size_t i = 0; i < kBuckets; ++i)
            buckets[i] += o.buckets[i];
        retired += o.retired;
        dead += o.dead;
    }

    /** Fraction of residencies never re-referenced (0 when empty). */
    double
    deadFraction() const
    {
        return retired ? double(dead) / double(retired) : 0.0;
    }

    bool
    operator==(const TlbRefHist &o) const
    {
        return buckets == o.buckets && retired == o.retired &&
               dead == o.dead;
    }
    bool operator!=(const TlbRefHist &o) const { return !(*this == o); }
};

/**
 * A TLB over variable-reach translations.  Without reach (max_reach 0)
 * large-page translations are cached per 4 KB region they cover (a
 * common simplification which only affects capacity pressure, not
 * correctness); with reach enabled a 2 MB mapping occupies one reach-9
 * entry.
 */
class Tlb
{
  public:
    /**
     * Called when a capacity eviction retires a reach-0 entry, with
     * (asid, vpn, ppn, perms) of the dying translation.  This is the
     * Victima hook: the owning system may stash the translation in the
     * L2 data array.  Shootdown/flush invalidations never fire it —
     * those translations die for a reason.
     */
    using EvictHookFn = SmallFunc<void(Asid, Vpn, Ppn, Perms)>;

    explicit Tlb(const TlbParams &params)
        : params_(params)
    {
        if (params_.max_reach > kMaxReachLog2)
            params_.max_reach = kMaxReachLog2;
        if (params_.infinite)
            return;
        if (params_.entries == 0)
            fatal("Tlb: entries must be nonzero");
        unsigned assoc = params_.assoc == 0 ? params_.entries
                                            : params_.assoc;
        if (assoc > params_.entries)
            assoc = params_.entries;
        num_sets_ = params_.entries / assoc;
        if (num_sets_ == 0)
            num_sets_ = 1;
        assoc_ = params_.entries / num_sets_;
        sets_.resize(num_sets_);
        for (auto &set : sets_)
            set.reserve(assoc_);
    }

    /** Look up (asid, vpn); updates recency on hit. */
    std::optional<TlbLookup>
    lookup(Asid asid, Vpn vpn, Tick now)
    {
        ++accesses_;
        if (params_.infinite) {
            if (memo_inf_ && memo_asid_ == asid && memo_vpn_ == vpn) {
                ++hits_;
                ++memo_inf_->refs;
                return memo_inf_->xlate;
            }
            auto it = inf_.find(key(asid, vpn));
            if (it == inf_.end()) {
                ++misses_;
                return std::nullopt;
            }
            ++hits_;
            ++it->second.refs;
            if (params_.memo) {
                // Pointers into inf_ stay valid across emplace/rehash;
                // the erase paths below drop the memo explicitly.
                memo_inf_ = &it->second;
                memo_asid_ = asid;
                memo_vpn_ = vpn;
            }
            return it->second.xlate;
        }
        if (memo_way_ != kNoMemo && memo_asid_ == asid &&
            memo_vpn_ == vpn) {
            // Position-validated: the memo only short-circuits the scan
            // when the remembered slot still holds an entry covering
            // this exact key, so a reshuffled set silently falls back
            // to the full scan.
            auto &set = sets_[memo_set_];
            if (memo_way_ < set.size()) {
                auto &e = set[memo_way_];
                if (e.asid == asid &&
                    e.vpn == reachBase(vpn, e.reach) &&
                    memo_set_ == setIndex(e.vpn, e.reach)) {
                    return hitEntry(e, vpn, now);
                }
            }
            memo_way_ = kNoMemo;
        }
        for (unsigned r = 0; r <= kMaxReachLog2; ++r) {
            if (!class_count_[r])
                continue;
            const Vpn base = reachBase(vpn, r);
            const std::size_t si = setIndex(base, r);
            auto &set = sets_[si];
            for (std::size_t i = 0; i < set.size(); ++i) {
                auto &e = set[i];
                if (e.reach == r && e.asid == asid && e.vpn == base) {
                    if (params_.memo) {
                        memo_set_ = si;
                        memo_way_ = i;
                        memo_asid_ = asid;
                        memo_vpn_ = vpn;
                    }
                    return hitEntry(e, vpn, now);
                }
            }
        }
        ++misses_;
        return std::nullopt;
    }

    /** Drop the last-translation memo (invalidation / structural change). */
    void
    clearMemo()
    {
        memo_way_ = kNoMemo;
        memo_inf_ = nullptr;
    }

    /** Probe without side effects (no recency update, no stats). */
    bool
    present(Asid asid, Vpn vpn) const
    {
        if (params_.infinite)
            return inf_.count(key(asid, vpn)) != 0;
        for (unsigned r = 0; r <= kMaxReachLog2; ++r) {
            if (!class_count_[r])
                continue;
            const Vpn base = reachBase(vpn, r);
            const auto &set = sets_[setIndex(base, r)];
            for (const auto &e : set)
                if (e.reach == r && e.asid == asid && e.vpn == base)
                    return true;
        }
        return false;
    }

    /** Install a translation, evicting LRU if the set is full. */
    void
    insert(Asid asid, Vpn vpn, const TlbLookup &xlate, Tick now)
    {
        bool sampled = false;
        if (params_.fill_policy == kTlbFillBypassDead &&
            !params_.infinite && xlate.reach == 0) {
            const bool seq = asid == pred_asid_ && vpn == pred_vpn_ + 1;
            pred_asid_ = asid;
            pred_vpn_ = vpn;
            if (seq) {
                ++fill_bypasses_;
                return;
            }
        } else if (params_.fill_policy == kTlbFillBypassTrained &&
                   !params_.infinite && xlate.reach == 0 &&
                   dead_pred_.predictDead(asid, vpn)) {
            if (!dead_pred_.sampleFill()) {
                ++fill_bypasses_;
                return;
            }
            sampled = true;
        }
        ++fills_;
        if (params_.infinite) {
            // Capacity is free: cache per requested page, reach ignored.
            inf_.emplace(key(asid, vpn),
                         InfEntry{TlbLookup{xlate.ppn, xlate.perms,
                                            xlate.large},
                                  0});
            return;
        }
        unsigned r = xlate.reach;
        Vpn base = xlate.base_vpn;
        Ppn base_ppn = xlate.base_ppn;
        if (r == 0 || r > params_.max_reach) {
            r = 0;
            base = vpn;
            base_ppn = xlate.ppn;
        }
        if (r > 0)
            ++reach_fills_;
        installEntry(asid, base, base_ppn, xlate.perms, xlate.large, r,
                     now, sampled);
        if (params_.merge_on_insert)
            tryMerge(asid, base, r, now);
    }

    /**
     * Invalidate every entry covering (asid, vpn).  A reach-r entry is
     * dropped whole: precise single-page shootdown inside a multi-page
     * entry costs the whole entry (the surviving pages re-fill, and a
     * split page table re-coalesces what is still contiguous).
     * @return true if anything was evicted.
     */
    bool
    invalidatePage(Asid asid, Vpn vpn, Tick now = 0)
    {
        ++shootdowns_;
        clearMemo();
        if (params_.infinite) {
            auto it = inf_.find(key(asid, vpn));
            if (it == inf_.end())
                return false;
            ref_hist_.record(it->second.refs);
            inf_.erase(it);
            return true;
        }
        bool any = false;
        for (unsigned r = 0; r <= kMaxReachLog2; ++r) {
            if (!class_count_[r])
                continue;
            const Vpn base = reachBase(vpn, r);
            auto &set = sets_[setIndex(base, r)];
            for (std::size_t i = 0; i < set.size(); ++i) {
                if (set[i].reach == r && set[i].asid == asid &&
                    set[i].vpn == base) {
                    retire(set[i], now);
                    set.erase(set.begin() + long(i));
                    any = true;
                    break;
                }
            }
        }
        return any;
    }

    /** Invalidate every entry of one address space. */
    void
    invalidateAsid(Asid asid, Tick now = 0)
    {
        clearMemo();
        if (params_.infinite) {
            for (auto it = inf_.begin(); it != inf_.end();) {
                if (Asid(it->first >> 48) == asid) {
                    ref_hist_.record(it->second.refs);
                    it = inf_.erase(it);
                } else {
                    ++it;
                }
            }
            return;
        }
        for (auto &set : sets_) {
            for (std::size_t i = set.size(); i-- > 0;) {
                if (set[i].asid == asid) {
                    retire(set[i], now);
                    set.erase(set.begin() + long(i));
                }
            }
        }
    }

    /** Invalidate everything. */
    void
    invalidateAll(Tick now = 0)
    {
        clearMemo();
        for (const auto &[k, e] : inf_)
            ref_hist_.record(e.refs);
        inf_.clear();
        for (auto &set : sets_) {
            for (auto &e : set)
                retire(e, now);
            set.clear();
        }
    }

    /** Install the capacity-eviction hook (Victima stashing). */
    void
    setEvictHook(EvictHookFn fn)
    {
        evict_hook_ = std::move(fn);
    }

    std::uint64_t accesses() const { return accesses_.value; }
    std::uint64_t hits() const { return hits_.value; }
    std::uint64_t misses() const { return misses_.value; }
    std::uint64_t fills() const { return fills_.value; }
    /** Hits served by reach > 0 entries. */
    std::uint64_t reachHits() const { return reach_hits_.value; }
    /** Fills installed with reach > 0. */
    std::uint64_t reachFills() const { return reach_fills_.value; }
    /** Buddy merges performed at insertion time. */
    std::uint64_t merges() const { return merges_.value; }
    /** Fills bypassed by the dead-on-arrival predictor. */
    std::uint64_t fillBypasses() const { return fill_bypasses_.value; }
    /** Evictions that chose a predicted-dead zero-ref resident first. */
    std::uint64_t
    deadFirstEvictions() const
    {
        return dead_first_evictions_.value;
    }
    /** Sampled predicted-dead installs that retired with zero refs. */
    std::uint64_t predTruePos() const { return pred_true_pos_.value; }
    /** Sampled predicted-dead installs that were re-referenced. */
    std::uint64_t predFalsePos() const { return pred_false_pos_.value; }

    double
    missRatio() const
    {
        return accesses_.value
            ? double(misses_.value) / double(accesses_.value)
            : 0.0;
    }

    const LifetimeRecorder &lifetimes() const { return lifetimes_; }

    /**
     * Reference counts of completed residencies (always tracked — the
     * bookkeeping is host-side only and never perturbs simulated
     * behavior).  Residencies still live at simulation end are only
     * included after flushResidentRefs().
     */
    const TlbRefHist &refHist() const { return ref_hist_; }

    /** Fold still-resident entries into refHist() (simulation end). */
    void
    flushResidentRefs()
    {
        if (refs_flushed_)
            return;
        refs_flushed_ = true;
        for (const auto &[k, e] : inf_)
            ref_hist_.record(e.refs);
        for (const auto &set : sets_)
            for (const auto &e : set)
                ref_hist_.record(e.refs);
    }

    unsigned numSets() const { return num_sets_; }
    unsigned assoc() const { return assoc_; }

  private:
    struct Entry
    {
        Asid asid;
        Vpn vpn; ///< Base VPN, aligned to the entry's reach.
        Ppn ppn; ///< Frame of the base page; +i maps base + i.
        Perms perms;
        bool large;
        std::uint8_t reach; ///< log2 pages spanned.
        Tick inserted;
        Tick last_used;
        std::uint64_t lru;
        /// Hits after insertion this residency.
        std::uint32_t refs;
        /// RRIP re-reference prediction value (makeEntry() sets it
        /// per the replacement policy).
        std::uint8_t rrpv;
        /// Installed despite a dead prediction (a DeadPredictor
        /// sampling install); its retirement scores the predictor.
        bool sampled;
    };

    /** Infinite-mode entry: the translation plus its residency refs. */
    struct InfEntry
    {
        TlbLookup xlate;
        std::uint32_t refs = 0;
    };

    static std::uint64_t
    key(Asid asid, Vpn vpn)
    {
        return (std::uint64_t(asid) << 48) | vpn;
    }

    /** Set of a reach-r entry based at @p base (aligned). */
    std::size_t
    setIndex(Vpn base, unsigned r) const
    {
        return (base >> r) % num_sets_;
    }

    TlbLookup
    hitEntry(Entry &e, Vpn vpn, Tick now)
    {
        ++hits_;
        if (e.reach > 0)
            ++reach_hits_;
        e.last_used = now;
        e.lru = ++lru_clock_;
        e.rrpv = 0;
        ++e.refs;
        return TlbLookup{e.ppn + (vpn - e.vpn), e.perms, e.large,
                         e.reach, e.vpn, e.ppn};
    }

    /**
     * Insertion RRPV for a miss-install into set @p si, resolving
     * DRRIP's set duel.  Leader-set installs also move PSEL: a miss
     * in an SRRIP leader is evidence against SRRIP (PSEL up), in a
     * BRRIP leader evidence against BRRIP (PSEL down); followers use
     * BRRIP while PSEL > kPselInit.
     */
    std::uint8_t
    insertRrpv(std::size_t si)
    {
        unsigned pol = params_.replacement;
        if (pol == kTlbReplDrrip) {
            if (si % kDuelPeriod == 0) {
                if (psel_ < kPselMax)
                    ++psel_;
                pol = kTlbReplSrrip;
            } else if (si % kDuelPeriod == 1) {
                if (psel_ > 0)
                    --psel_;
                pol = kTlbReplBrrip;
            } else {
                pol = psel_ > kPselInit ? kTlbReplBrrip
                                        : kTlbReplSrrip;
            }
        }
        if (pol == kTlbReplSrrip)
            return kRrpvLong;
        return (brrip_counter_++ % kBrripPeriod) == 0 ? kRrpvLong
                                                      : kRrpvMax;
    }

    /**
     * Victim way of a full set.  Under the trained fill policy a
     * predicted-dead zero-reference reach-0 resident goes first; the
     * replacement policy (true LRU or RRIP aging) breaks the fallback.
     */
    std::size_t
    pickVictim(std::vector<Entry> &set)
    {
        if (params_.fill_policy == kTlbFillBypassTrained) {
            for (std::size_t i = 0; i < set.size(); ++i) {
                const Entry &e = set[i];
                if (e.reach == 0 && e.refs == 0 &&
                    dead_pred_.predictDead(e.asid, e.vpn)) {
                    ++dead_first_evictions_;
                    return i;
                }
            }
        }
        if (params_.replacement == kTlbReplLru) {
            std::size_t victim = 0;
            for (std::size_t i = 1; i < set.size(); ++i)
                if (set[i].lru < set[victim].lru)
                    victim = i;
            return victim;
        }
        for (;;) {
            for (std::size_t i = 0; i < set.size(); ++i)
                if (set[i].rrpv >= kRrpvMax)
                    return i;
            for (auto &e : set)
                ++e.rrpv;
        }
    }

    Entry
    makeEntry(Asid asid, Vpn base, Ppn ppn, Perms perms, bool large,
              unsigned r, Tick now, std::size_t si, bool sampled)
    {
        Entry e{asid, base,        ppn, perms, large, std::uint8_t(r),
                now,  now, ++lru_clock_, 0,    0,     false};
        e.rrpv = params_.replacement == kTlbReplLru ? 0 : insertRrpv(si);
        e.sampled = sampled;
        return e;
    }

    void
    installEntry(Asid asid, Vpn base, Ppn ppn, Perms perms, bool large,
                 unsigned r, Tick now, bool sampled = false)
    {
        const std::size_t si = setIndex(base, r);
        auto &set = sets_[si];
        for (auto &e : set) {
            if (e.reach == r && e.asid == asid && e.vpn == base) {
                e.ppn = ppn;
                e.perms = perms;
                e.large = large;
                e.lru = ++lru_clock_;
                e.rrpv = 0;
                return;
            }
        }
        if (set.size() < assoc_) {
            set.push_back(makeEntry(asid, base, ppn, perms, large, r,
                                    now, si, sampled));
            ++class_count_[r];
            return;
        }
        const std::size_t victim = pickVictim(set);
        const Entry dying = set[victim];
        retire(dying, now);
        set[victim] =
            makeEntry(asid, base, ppn, perms, large, r, now, si, sampled);
        ++class_count_[r];
        if (evict_hook_ && dying.reach == 0)
            evict_hook_(dying.asid, dying.vpn, dying.ppn, dying.perms);
    }

    /** Find-and-copy a specific (asid, base, reach) entry. */
    std::optional<Entry>
    findEntry(Asid asid, Vpn base, unsigned r) const
    {
        const auto &set = sets_[setIndex(base, r)];
        for (const auto &e : set)
            if (e.reach == r && e.asid == asid && e.vpn == base)
                return e;
        return std::nullopt;
    }

    /** Remove a specific entry (merge bookkeeping, not a shootdown). */
    void
    removeEntry(Asid asid, Vpn base, unsigned r, Tick now)
    {
        auto &set = sets_[setIndex(base, r)];
        for (std::size_t i = 0; i < set.size(); ++i) {
            if (set[i].reach == r && set[i].asid == asid &&
                set[i].vpn == base) {
                retire(set[i], now);
                set.erase(set.begin() + long(i));
                return;
            }
        }
    }

    /**
     * Buddy-merge ladder: starting from the entry at (asid, base,
     * reach r), merge with its aligned buddy while the buddy is
     * resident, permission-identical, and the combined frames are
     * physically contiguous.
     */
    void
    tryMerge(Asid asid, Vpn base, unsigned r, Tick now)
    {
        while (r < params_.max_reach) {
            const auto self = findEntry(asid, base, r);
            if (!self)
                return;
            const Vpn buddy_base = base ^ reachPages(r);
            const auto buddy = findEntry(asid, buddy_base, r);
            if (!buddy || buddy->perms != self->perms ||
                buddy->large != self->large)
                return;
            const Entry &lo = base < buddy_base ? *self : *buddy;
            const Entry &hi = base < buddy_base ? *buddy : *self;
            if (lo.ppn + reachPages(r) != hi.ppn)
                return;
            const Vpn merged_base = lo.vpn;
            const Ppn merged_ppn = lo.ppn;
            const Perms perms = lo.perms;
            const bool large = lo.large;
            removeEntry(asid, base, r, now);
            removeEntry(asid, buddy_base, r, now);
            ++merges_;
            installEntry(asid, merged_base, merged_ppn, perms, large,
                         r + 1, now);
            clearMemo();
            base = merged_base;
            ++r;
        }
    }

    void
    retire(const Entry &e, Tick now)
    {
        if (params_.track_lifetimes && now > e.inserted)
            lifetimes_.record(now - e.inserted);
        ref_hist_.record(e.refs);
        --class_count_[e.reach];
        if (params_.fill_policy == kTlbFillBypassTrained &&
            e.reach == 0) {
            dead_pred_.train(e.asid, e.vpn, e.refs == 0);
            if (e.sampled) {
                // A sampling install scores the prediction it defied.
                if (e.refs == 0)
                    ++pred_true_pos_;
                else
                    ++pred_false_pos_;
            }
        }
    }

    TlbParams params_;
    unsigned num_sets_ = 1;
    unsigned assoc_ = 1;
    std::vector<std::vector<Entry>> sets_;
    std::unordered_map<std::uint64_t, InfEntry> inf_;
    std::uint64_t lru_clock_ = 0;
    /** Live entries per reach class; gates the per-class lookup probes. */
    std::array<std::uint32_t, kMaxReachLog2 + 1> class_count_{};

    static constexpr std::size_t kNoMemo = std::size_t(-1);
    std::size_t memo_set_ = 0;
    std::size_t memo_way_ = kNoMemo;
    InfEntry *memo_inf_ = nullptr;
    Asid memo_asid_ = 0;
    Vpn memo_vpn_ = 0;

    /** Next-line dead-on-arrival predictor state (fill bypass). */
    Asid pred_asid_ = 0;
    Vpn pred_vpn_ = kInvalidVpn;

    /** Trained dead-on-arrival predictor (kTlbFillBypassTrained). */
    DeadPredictor dead_pred_;

    // RRIP state (kTlbReplSrrip / kTlbReplBrrip / kTlbReplDrrip).
    static constexpr std::uint8_t kRrpvMax = 3;  ///< "distant future"
    static constexpr std::uint8_t kRrpvLong = 2; ///< "long interval"
    static constexpr unsigned kBrripPeriod = 32;
    static constexpr unsigned kDuelPeriod = 32;
    static constexpr unsigned kPselMax = 1023; ///< 10-bit saturating
    static constexpr unsigned kPselInit = 512;
    unsigned psel_ = kPselInit;
    std::uint64_t brrip_counter_ = 0;

    EvictHookFn evict_hook_;

    Counter accesses_;
    Counter hits_;
    Counter misses_;
    Counter fills_;
    Counter shootdowns_;
    Counter reach_hits_;
    Counter reach_fills_;
    Counter merges_;
    Counter fill_bypasses_;
    Counter dead_first_evictions_;
    Counter pred_true_pos_;
    Counter pred_false_pos_;
    LifetimeRecorder lifetimes_;
    TlbRefHist ref_hist_;
    bool refs_flushed_ = false;
};

} // namespace gvc

#endif // GVC_TLB_TLB_HH
