/**
 * @file
 * Set-associative TLB with true-LRU replacement, ASID tags, optional
 * infinite capacity (for the paper's "infinite" per-CU TLB experiments),
 * and entry-lifetime recording (Figure 12).
 */

#ifndef GVC_TLB_TLB_HH
#define GVC_TLB_TLB_HH

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "mem/page_table.hh"
#include "sim/logging.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace gvc
{

/** Configuration for a Tlb instance. */
struct TlbParams
{
    unsigned entries = 32;
    /** Associativity; 0 selects fully associative. */
    unsigned assoc = 0;
    /** Infinite capacity: never miss after first fill (demand misses only). */
    bool infinite = false;
    /** Record entry residence times (insert -> evict). */
    bool track_lifetimes = false;
    /**
     * Last-translation memo: remember where the previous hit lives and
     * skip the associative scan when the same page repeats.  Pure
     * host-side fast path — every simulated side effect (stat counters,
     * recency update) is identical with the memo on or off.
     */
    bool memo = true;
};

/** Outcome of a TLB lookup. */
struct TlbLookup
{
    Ppn ppn = kInvalidPpn;
    Perms perms = kPermNone;
    bool large = false;
};

/**
 * Per-entry reference-count histogram over completed residencies
 * (insert -> evict/invalidate, plus still-resident entries flushed at
 * simulation end).  Bucket 0 counts dead-on-arrival entries — filled
 * but never re-referenced before leaving the TLB, the population "Dead
 * on Arrival" characterizes; bucket b >= 1 counts residencies with
 * refs in [2^(b-1), 2^b), saturating in the last bucket.
 */
struct TlbRefHist
{
    static constexpr std::size_t kBuckets = 12;

    std::array<std::uint64_t, kBuckets> buckets{};
    std::uint64_t retired = 0; ///< Residencies recorded (sum of buckets).
    std::uint64_t dead = 0;    ///< Residencies with zero re-references.

    static std::size_t
    bucketOf(std::uint64_t refs)
    {
        if (refs == 0)
            return 0;
        std::size_t b = 1;
        while (refs > 1 && b + 1 < kBuckets) {
            refs >>= 1;
            ++b;
        }
        return b;
    }

    void
    record(std::uint64_t refs)
    {
        ++buckets[bucketOf(refs)];
        ++retired;
        if (refs == 0)
            ++dead;
    }

    void
    merge(const TlbRefHist &o)
    {
        for (std::size_t i = 0; i < kBuckets; ++i)
            buckets[i] += o.buckets[i];
        retired += o.retired;
        dead += o.dead;
    }

    /** Fraction of residencies never re-referenced (0 when empty). */
    double
    deadFraction() const
    {
        return retired ? double(dead) / double(retired) : 0.0;
    }

    bool
    operator==(const TlbRefHist &o) const
    {
        return buckets == o.buckets && retired == o.retired &&
               dead == o.dead;
    }
    bool operator!=(const TlbRefHist &o) const { return !(*this == o); }
};

/**
 * A TLB caching 4 KB-granularity translations.  Large-page translations
 * are cached per 4 KB region they cover (a common simplification which
 * only affects capacity pressure, not correctness).
 */
class Tlb
{
  public:
    explicit Tlb(const TlbParams &params)
        : params_(params)
    {
        if (params_.infinite)
            return;
        if (params_.entries == 0)
            fatal("Tlb: entries must be nonzero");
        unsigned assoc = params_.assoc == 0 ? params_.entries
                                            : params_.assoc;
        if (assoc > params_.entries)
            assoc = params_.entries;
        num_sets_ = params_.entries / assoc;
        if (num_sets_ == 0)
            num_sets_ = 1;
        assoc_ = params_.entries / num_sets_;
        sets_.resize(num_sets_);
        for (auto &set : sets_)
            set.reserve(assoc_);
    }

    /** Look up (asid, vpn); updates recency on hit. */
    std::optional<TlbLookup>
    lookup(Asid asid, Vpn vpn, Tick now)
    {
        ++accesses_;
        if (params_.infinite) {
            if (memo_inf_ && memo_asid_ == asid && memo_vpn_ == vpn) {
                ++hits_;
                ++memo_inf_->refs;
                return memo_inf_->xlate;
            }
            auto it = inf_.find(key(asid, vpn));
            if (it == inf_.end()) {
                ++misses_;
                return std::nullopt;
            }
            ++hits_;
            ++it->second.refs;
            if (params_.memo) {
                // Pointers into inf_ stay valid across emplace/rehash;
                // the erase paths below drop the memo explicitly.
                memo_inf_ = &it->second;
                memo_asid_ = asid;
                memo_vpn_ = vpn;
            }
            return it->second.xlate;
        }
        auto &set = sets_[setIndex(vpn)];
        if (memo_way_ != kNoMemo && memo_asid_ == asid &&
            memo_vpn_ == vpn) {
            // Position-validated: the memo only short-circuits the scan
            // when the remembered slot still holds this exact key, so a
            // reshuffled set silently falls back to the full scan.
            if (memo_set_ == setIndex(vpn) && memo_way_ < set.size()) {
                auto &e = set[memo_way_];
                if (e.asid == asid && e.vpn == vpn) {
                    ++hits_;
                    e.last_used = now;
                    e.lru = ++lru_clock_;
                    ++e.refs;
                    return TlbLookup{e.ppn, e.perms, e.large};
                }
            }
            memo_way_ = kNoMemo;
        }
        for (std::size_t i = 0; i < set.size(); ++i) {
            auto &e = set[i];
            if (e.asid == asid && e.vpn == vpn) {
                ++hits_;
                e.last_used = now;
                e.lru = ++lru_clock_;
                ++e.refs;
                if (params_.memo) {
                    memo_set_ = setIndex(vpn);
                    memo_way_ = i;
                    memo_asid_ = asid;
                    memo_vpn_ = vpn;
                }
                return TlbLookup{e.ppn, e.perms, e.large};
            }
        }
        ++misses_;
        return std::nullopt;
    }

    /** Drop the last-translation memo (invalidation / structural change). */
    void
    clearMemo()
    {
        memo_way_ = kNoMemo;
        memo_inf_ = nullptr;
    }

    /** Probe without side effects (no recency update, no stats). */
    bool
    present(Asid asid, Vpn vpn) const
    {
        if (params_.infinite)
            return inf_.count(key(asid, vpn)) != 0;
        const auto &set = sets_[setIndex(vpn)];
        for (const auto &e : set)
            if (e.asid == asid && e.vpn == vpn)
                return true;
        return false;
    }

    /** Install a translation, evicting LRU if the set is full. */
    void
    insert(Asid asid, Vpn vpn, const TlbLookup &xlate, Tick now)
    {
        ++fills_;
        if (params_.infinite) {
            inf_.emplace(key(asid, vpn), InfEntry{xlate, 0});
            return;
        }
        auto &set = sets_[setIndex(vpn)];
        for (auto &e : set) {
            if (e.asid == asid && e.vpn == vpn) {
                e.ppn = xlate.ppn;
                e.perms = xlate.perms;
                e.large = xlate.large;
                e.lru = ++lru_clock_;
                return;
            }
        }
        if (set.size() < assoc_) {
            set.push_back(Entry{asid, vpn, xlate.ppn, xlate.perms,
                                xlate.large, now, now, ++lru_clock_, 0});
            return;
        }
        std::size_t victim = 0;
        for (std::size_t i = 1; i < set.size(); ++i)
            if (set[i].lru < set[victim].lru)
                victim = i;
        retire(set[victim], now);
        set[victim] = Entry{asid, vpn, xlate.ppn, xlate.perms,
                            xlate.large, now, now, ++lru_clock_, 0};
    }

    /** Invalidate one page's entry if present. @return true if evicted. */
    bool
    invalidatePage(Asid asid, Vpn vpn, Tick now = 0)
    {
        ++shootdowns_;
        clearMemo();
        if (params_.infinite) {
            auto it = inf_.find(key(asid, vpn));
            if (it == inf_.end())
                return false;
            ref_hist_.record(it->second.refs);
            inf_.erase(it);
            return true;
        }
        auto &set = sets_[setIndex(vpn)];
        for (std::size_t i = 0; i < set.size(); ++i) {
            if (set[i].asid == asid && set[i].vpn == vpn) {
                retire(set[i], now);
                set.erase(set.begin() + long(i));
                return true;
            }
        }
        return false;
    }

    /** Invalidate every entry of one address space. */
    void
    invalidateAsid(Asid asid, Tick now = 0)
    {
        clearMemo();
        if (params_.infinite) {
            for (auto it = inf_.begin(); it != inf_.end();) {
                if (Asid(it->first >> 48) == asid) {
                    ref_hist_.record(it->second.refs);
                    it = inf_.erase(it);
                } else {
                    ++it;
                }
            }
            return;
        }
        for (auto &set : sets_) {
            for (std::size_t i = set.size(); i-- > 0;) {
                if (set[i].asid == asid) {
                    retire(set[i], now);
                    set.erase(set.begin() + long(i));
                }
            }
        }
    }

    /** Invalidate everything. */
    void
    invalidateAll(Tick now = 0)
    {
        clearMemo();
        for (const auto &[k, e] : inf_)
            ref_hist_.record(e.refs);
        inf_.clear();
        for (auto &set : sets_) {
            for (auto &e : set)
                retire(e, now);
            set.clear();
        }
    }

    std::uint64_t accesses() const { return accesses_.value; }
    std::uint64_t hits() const { return hits_.value; }
    std::uint64_t misses() const { return misses_.value; }
    std::uint64_t fills() const { return fills_.value; }

    double
    missRatio() const
    {
        return accesses_.value
            ? double(misses_.value) / double(accesses_.value)
            : 0.0;
    }

    const LifetimeRecorder &lifetimes() const { return lifetimes_; }

    /**
     * Reference counts of completed residencies (always tracked — the
     * bookkeeping is host-side only and never perturbs simulated
     * behavior).  Residencies still live at simulation end are only
     * included after flushResidentRefs().
     */
    const TlbRefHist &refHist() const { return ref_hist_; }

    /** Fold still-resident entries into refHist() (simulation end). */
    void
    flushResidentRefs()
    {
        if (refs_flushed_)
            return;
        refs_flushed_ = true;
        for (const auto &[k, e] : inf_)
            ref_hist_.record(e.refs);
        for (const auto &set : sets_)
            for (const auto &e : set)
                ref_hist_.record(e.refs);
    }

    unsigned numSets() const { return num_sets_; }
    unsigned assoc() const { return assoc_; }

  private:
    struct Entry
    {
        Asid asid;
        Vpn vpn;
        Ppn ppn;
        Perms perms;
        bool large;
        Tick inserted;
        Tick last_used;
        std::uint64_t lru;
        /// Hits after insertion this residency (value-initialized: the
        /// aggregate-init sites below list only the first 8 members).
        std::uint32_t refs;
    };

    /** Infinite-mode entry: the translation plus its residency refs. */
    struct InfEntry
    {
        TlbLookup xlate;
        std::uint32_t refs = 0;
    };

    static std::uint64_t
    key(Asid asid, Vpn vpn)
    {
        return (std::uint64_t(asid) << 48) | vpn;
    }

    std::size_t setIndex(Vpn vpn) const { return vpn % num_sets_; }

    void
    retire(const Entry &e, Tick now)
    {
        if (params_.track_lifetimes && now > e.inserted)
            lifetimes_.record(now - e.inserted);
        ref_hist_.record(e.refs);
    }

    TlbParams params_;
    unsigned num_sets_ = 1;
    unsigned assoc_ = 1;
    std::vector<std::vector<Entry>> sets_;
    std::unordered_map<std::uint64_t, InfEntry> inf_;
    std::uint64_t lru_clock_ = 0;

    static constexpr std::size_t kNoMemo = std::size_t(-1);
    std::size_t memo_set_ = 0;
    std::size_t memo_way_ = kNoMemo;
    InfEntry *memo_inf_ = nullptr;
    Asid memo_asid_ = 0;
    Vpn memo_vpn_ = 0;

    Counter accesses_;
    Counter hits_;
    Counter misses_;
    Counter fills_;
    Counter shootdowns_;
    LifetimeRecorder lifetimes_;
    TlbRefHist ref_hist_;
    bool refs_flushed_ = false;
};

} // namespace gvc

#endif // GVC_TLB_TLB_HH
