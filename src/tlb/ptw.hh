/**
 * @file
 * Multi-threaded hardware page-table walker (Table 1: 16 concurrent
 * walks) with a shared page-walk cache.  Each walk visits the real PTE
 * addresses produced by the process page table; upper-level hits in the
 * PWC skip the memory access for that level.
 */

#ifndef GVC_TLB_PTW_HH
#define GVC_TLB_PTW_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>

#include "mem/dram.hh"
#include "mem/vm.hh"
#include "sim/sim_context.hh"
#include "tlb/pwc.hh"

namespace gvc
{

/** Configuration for the walker. */
struct PtwParams
{
    /** Maximum concurrent walks; further requests queue FIFO. */
    unsigned max_concurrent = 16;
    /** Latency of a PWC hit, cycles. */
    Tick pwc_hit_latency = 2;
    /** Fixed pipeline latency to start a walk. */
    Tick dispatch_latency = 2;
};

/**
 * The walker.  walk() is asynchronous; completion (or fault, signalled by
 * an empty optional) is delivered through the callback.
 */
class PageTableWalker
{
  public:
    using DoneFn = std::function<void(std::optional<Translation>)>;

    PageTableWalker(SimContext &ctx, Vm &vm, Dram &dram,
                    const PtwParams &params = {})
        : ctx_(ctx), vm_(vm), dram_(dram), params_(params)
    {
    }

    /** Begin a walk of (asid, vpn); @p done fires at completion time. */
    void
    walk(Asid asid, Vpn vpn, DoneFn done)
    {
        ++requests_;
        pending_.push_back(
            Request{asid, vpn, std::move(done), ctx_.now()});
        pump();
    }

    PageWalkCache &pwc() { return pwc_; }
    const PageWalkCache &pwc() const { return pwc_; }

    std::uint64_t requests() const { return requests_.value; }
    std::uint64_t completed() const { return completed_.value; }
    unsigned active() const { return active_; }

    /** Mean cycles from walk() to completion (includes queueing). */
    double
    meanLatency() const
    {
        return completed_.value
            ? double(latency_sum_.value) / double(completed_.value)
            : 0.0;
    }

  private:
    struct Request
    {
        Asid asid;
        Vpn vpn;
        DoneFn done;
        Tick issued;
    };

    struct WalkState
    {
        Request req;
        WalkPath path;
        unsigned level = 0;
    };

    /** Start queued walks while thread slots are free. */
    void
    pump()
    {
        while (active_ < params_.max_concurrent && !pending_.empty()) {
            auto state = std::make_shared<WalkState>();
            state->req = std::move(pending_.front());
            pending_.pop_front();
            ++active_;
            state->path =
                vm_.pageTable(state->req.asid).walk(state->req.vpn);
            ctx_.eq.scheduleIn(params_.dispatch_latency,
                               [this, state] { step(state); });
        }
    }

    /** Process one level of the walk, then recurse via events. */
    void
    step(const std::shared_ptr<WalkState> &state)
    {
        if (state->level >= state->path.levels) {
            finish(state);
            return;
        }
        const Paddr pte = state->path.pte_addrs[state->level];
        ++state->level;
        // The PWC holds upper-level entries only (PML4E/PDPTE/PDE, as
        // in real designs); the leaf PTE access always goes to memory.
        const bool leaf = state->level == state->path.levels &&
                          state->path.result.has_value();
        if (!leaf && pwc_.lookup(pte)) {
            ctx_.eq.scheduleIn(params_.pwc_hit_latency,
                               [this, state] { step(state); });
        } else {
            dram_.access(kPteFetchBytes, [this, state, pte, leaf] {
                if (!leaf)
                    pwc_.insert(pte);
                step(state);
            });
        }
    }

    void
    finish(const std::shared_ptr<WalkState> &state)
    {
        ++completed_;
        latency_sum_ += ctx_.now() - state->req.issued;
        --active_;
        // Hand the slot to a queued walk before delivering the result so
        // completion callbacks observe a fully-consistent walker.
        pump();
        state->req.done(state->path.result);
    }

    /** A PTE fetch moves one page-table line. */
    static constexpr std::uint64_t kPteFetchBytes = 64;

    SimContext &ctx_;
    Vm &vm_;
    Dram &dram_;
    PtwParams params_;
    PageWalkCache pwc_;
    std::deque<Request> pending_;
    unsigned active_ = 0;
    Counter requests_;
    Counter completed_;
    Counter latency_sum_;
};

} // namespace gvc

#endif // GVC_TLB_PTW_HH
