/**
 * @file
 * Multi-threaded hardware page-table walker (Table 1: 16 concurrent
 * walks) with a shared page-walk cache.  Each walk visits the real PTE
 * addresses produced by the process page table; upper-level hits in the
 * PWC skip the memory access for that level.
 */

#ifndef GVC_TLB_PTW_HH
#define GVC_TLB_PTW_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "mem/dram.hh"
#include "sim/callback.hh"
#include "mem/vm.hh"
#include "sim/sim_context.hh"
#include "tlb/pwc.hh"

namespace gvc
{

/** Configuration for the walker. */
struct PtwParams
{
    /** Maximum concurrent walks; further requests queue FIFO. */
    unsigned max_concurrent = 16;
    /** Latency of a PWC hit, cycles. */
    Tick pwc_hit_latency = 2;
    /** Fixed pipeline latency to start a walk. */
    Tick dispatch_latency = 2;
};

/**
 * The walker.  walk() is asynchronous; completion (or fault, signalled by
 * an empty optional) is delivered through the callback.
 */
class PageTableWalker
{
  public:
    using DoneFn = SmallFunc<void(std::optional<Translation>)>;

    PageTableWalker(SimContext &ctx, Vm &vm, Dram &dram,
                    const PtwParams &params = {})
        : ctx_(ctx), vm_(vm), dram_(dram), params_(params)
    {
    }

    /** Begin a walk of (asid, vpn); @p done fires at completion time. */
    void
    walk(Asid asid, Vpn vpn, DoneFn done)
    {
        ++requests_;
        pending_.push_back(
            Request{asid, vpn, std::move(done), ctx_.now()});
        pump();
    }

    PageWalkCache &pwc() { return pwc_; }
    const PageWalkCache &pwc() const { return pwc_; }

    std::uint64_t requests() const { return requests_.value; }
    std::uint64_t completed() const { return completed_.value; }
    /** Walks that ended at a 2 MB leaf (3-level paths). */
    std::uint64_t largeWalks() const { return large_walks_.value; }
    unsigned active() const { return active_; }

    /** Mean cycles from walk() to completion (includes queueing). */
    double
    meanLatency() const
    {
        return completed_.value
            ? double(latency_sum_.value) / double(completed_.value)
            : 0.0;
    }

  private:
    struct Request
    {
        Asid asid;
        Vpn vpn;
        DoneFn done;
        Tick issued;
    };

    struct WalkState
    {
        Request req;
        WalkPath path;
        unsigned level = 0;
    };

    /**
     * Walk states are recycled through a free list: each in-flight walk
     * is owned by exactly one pending event at a time (the step chain is
     * linear), so a raw pointer plus explicit recycling in finish()
     * replaces a shared_ptr allocation per walk.  The slab keeps
     * ownership for teardown with walks still in flight.
     */
    WalkState *
    allocState()
    {
        if (state_pool_.empty()) {
            state_slab_.push_back(std::make_unique<WalkState>());
            return state_slab_.back().get();
        }
        WalkState *s = state_pool_.back();
        state_pool_.pop_back();
        return s;
    }

    /** Start queued walks while thread slots are free. */
    void
    pump()
    {
        while (active_ < params_.max_concurrent && !pending_.empty()) {
            WalkState *state = allocState();
            state->req = std::move(pending_.front());
            pending_.pop_front();
            state->level = 0;
            ++active_;
            state->path =
                vm_.pageTable(state->req.asid).walk(state->req.vpn);
            ctx_.eq.scheduleIn(params_.dispatch_latency,
                               [this, state] { step(state); });
        }
    }

    /** Process one level of the walk, then recurse via events. */
    void
    step(WalkState *state)
    {
        if (state->level >= state->path.levels) {
            finish(state);
            return;
        }
        const Paddr pte = state->path.pte_addrs[state->level];
        ++state->level;
        // The PWC holds upper-level entries only (PML4E/PDPTE/PDE, as
        // in real designs); the leaf PTE access always goes to memory.
        const bool leaf = state->level == state->path.levels &&
                          state->path.result.has_value();
        if (!leaf && pwc_.lookup(pte)) {
            ctx_.eq.scheduleIn(params_.pwc_hit_latency,
                               [this, state] { step(state); });
        } else {
            dram_.access(kPteFetchBytes, [this, state, pte, leaf] {
                if (!leaf)
                    pwc_.insert(pte);
                step(state);
            });
        }
    }

    void
    finish(WalkState *state)
    {
        ++completed_;
        if (state->path.result && state->path.result->large)
            ++large_walks_;
        latency_sum_ += ctx_.now() - state->req.issued;
        --active_;
        DoneFn done = std::move(state->req.done);
        const std::optional<Translation> result = state->path.result;
        state_pool_.push_back(state);
        // Hand the slot to a queued walk before delivering the result so
        // completion callbacks observe a fully-consistent walker.
        pump();
        done(result);
    }

    /** A PTE fetch moves one page-table line. */
    static constexpr std::uint64_t kPteFetchBytes = 64;

    SimContext &ctx_;
    Vm &vm_;
    Dram &dram_;
    PtwParams params_;
    PageWalkCache pwc_;
    std::deque<Request> pending_;
    std::vector<std::unique_ptr<WalkState>> state_slab_;
    std::vector<WalkState *> state_pool_;
    unsigned active_ = 0;
    Counter requests_;
    Counter completed_;
    Counter large_walks_;
    Counter latency_sum_;
};

} // namespace gvc

#endif // GVC_TLB_PTW_HH
