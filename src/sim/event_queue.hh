/**
 * @file
 * Discrete-event simulation core.
 *
 * The entire simulator advances through a single EventQueue: components
 * schedule callbacks at absolute ticks and the queue executes them in
 * (tick, insertion-order) order, which makes every run deterministic.
 * Idle cycles are skipped, so simulated time can advance arbitrarily fast
 * when nothing is happening.
 *
 * Layout: a timing wheel of kWheelSize per-tick FIFO cells covers the
 * near future [now, now + kWheelSize).  Nearly every event in this
 * simulator lands there — pipe, cache, and DRAM latencies are tens of
 * ticks and queue backlogs a few thousand — so schedule() and the
 * drain loop are O(1) appends and pops instead of binary-heap sifts.
 * Events beyond the horizon (page-fault service, deep DRAM backlog)
 * go to a small overflow heap and migrate into the wheel when their
 * tick enters the window.  Callbacks live in a slot pool recycled
 * through a free list; wheel cells and heap entries hold indices, so
 * no container operation moves a callback object.
 *
 * Order equivalence with a (tick, insertion-seq) priority queue:
 *  - A cell's append order is global insertion order for that tick:
 *    time only advances, so all appends to tick T's cell happen in
 *    execution order, which is insertion order.
 *  - Overflow entries for tick T were necessarily scheduled while T was
 *    outside the window (at some now0 <= T - kWheelSize), i.e. before
 *    any direct append to T (which requires now > T - kWheelSize).
 *    They migrate — in (when, seq) heap order — at the moment now
 *    first advances past T - kWheelSize, which precedes execution of
 *    any event that could append to T directly.  Hence migrated
 *    entries land ahead of all direct appends, completing the order.
 */

#ifndef GVC_SIM_EVENT_QUEUE_HH
#define GVC_SIM_EVENT_QUEUE_HH

#include <cstddef>
#include <cstdint>
#include <deque>
#include <queue>
#include <utility>
#include <vector>

#include "sim/callback.hh"
#include "sim/logging.hh"
#include "sim/types.hh"

namespace gvc
{

/**
 * A time-ordered queue of callbacks.  Ties at the same tick execute in
 * scheduling order (FIFO), which keeps pipelines well-defined without
 * explicit priorities.
 */
class EventQueue
{
  public:
    using Callback = gvc::Callback;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** True when no events remain. */
    bool empty() const { return wheel_count_ == 0 && overflow_.empty(); }

    /** Number of events executed since construction/reset. */
    std::uint64_t executed() const { return executed_; }

    /**
     * Schedule @p cb to run at absolute tick @p when.
     * Scheduling in the past is a simulator bug.
     */
    void
    schedule(Tick when, Callback cb)
    {
        if (when < now_)
            panic("EventQueue: scheduling event in the past");
        const std::uint32_t slot = allocSlot(std::move(cb));
        if (when - now_ < kWheelSize) {
            wheel_[std::size_t(when & kWheelMask)].push_back(slot);
            ++wheel_count_;
        } else {
            overflow_.push(FarEntry{when, next_seq_++, slot});
        }
    }

    /** Schedule @p cb to run @p delay ticks from now. */
    void
    scheduleIn(Tick delay, Callback cb)
    {
        schedule(now_ + delay, std::move(cb));
    }

    /**
     * Execute events until the queue is empty or @p max_events have run.
     * @return number of events executed by this call.
     */
    std::uint64_t
    run(std::uint64_t max_events = ~std::uint64_t{0})
    {
        std::uint64_t n = 0;
        while (n < max_events && advance(~Tick{0})) {
            execOne();
            ++n;
        }
        return n;
    }

    /**
     * Execute all events with tick <= @p until, then advance time to
     * @p until even if the queue drained early.
     */
    void
    runUntil(Tick until)
    {
        while (advance(until))
            execOne();
        if (now_ < until) {
            now_ = until;
            migrate();
        }
    }

    /** Drop all pending events and rewind time to zero. */
    void
    reset()
    {
        for (auto &cell : wheel_)
            cell.clear();
        wheel_count_ = 0;
        cur_head_ = 0;
        overflow_ = {};
        slots_.clear();
        free_slots_.clear();
        now_ = 0;
        next_seq_ = 0;
        executed_ = 0;
    }

  private:
    /// Wheel horizon: covers every pipeline/cache/DRAM latency and the
    /// realistic DRAM-queue backlog; only fault service and extreme
    /// backlogs overflow.
    static constexpr unsigned kWheelBits = 12;
    static constexpr Tick kWheelSize = Tick{1} << kWheelBits;
    static constexpr Tick kWheelMask = kWheelSize - 1;

    struct FarEntry
    {
        Tick when;
        std::uint64_t seq;
        std::uint32_t slot;

        bool
        operator>(const FarEntry &o) const
        {
            return when != o.when ? when > o.when : seq > o.seq;
        }
    };

    std::uint32_t
    allocSlot(Callback cb)
    {
        if (free_slots_.empty()) {
            slots_.push_back(std::move(cb));
            return std::uint32_t(slots_.size() - 1);
        }
        const std::uint32_t slot = free_slots_.back();
        free_slots_.pop_back();
        slots_[slot] = std::move(cb);
        return slot;
    }

    /** Pull every far event whose tick has entered the wheel window. */
    void
    migrate()
    {
        while (!overflow_.empty() &&
               overflow_.top().when - now_ < kWheelSize) {
            const FarEntry e = overflow_.top();
            overflow_.pop();
            wheel_[std::size_t(e.when & kWheelMask)].push_back(e.slot);
            ++wheel_count_;
        }
    }

    /**
     * Advance @c now_ to the next pending event's tick, never past
     * @p limit.  @return true when an event is runnable at @c now_.
     */
    bool
    advance(Tick limit)
    {
        {
            auto &cur = wheel_[std::size_t(now_ & kWheelMask)];
            if (cur_head_ < cur.size())
                return true;
            if (cur_head_) {
                // Tick fully drained; free the cell before its index is
                // reused for now_ + kWheelSize.
                cur.clear();
                cur_head_ = 0;
            }
        }
        while (true) {
            if (wheel_count_ == 0) {
                if (overflow_.empty() || overflow_.top().when > limit)
                    return false;
                now_ = overflow_.top().when; // All nearer cells empty.
            } else {
                if (now_ >= limit)
                    return false;
                ++now_;
            }
            migrate();
            if (!wheel_[std::size_t(now_ & kWheelMask)].empty())
                return true;
        }
    }

    /** Pop and run the next entry of the current tick's cell. */
    void
    execOne()
    {
        auto &cur = wheel_[std::size_t(now_ & kWheelMask)];
        const std::uint32_t slot = cur[cur_head_++];
        --wheel_count_;
        ++executed_;
        // Invoke in place: slots_ is a deque, so references stay valid
        // when the callback schedules further events (which may append
        // new slots).  The slot is recycled only after the call, so no
        // new event can overwrite the running callback.
        Callback &cb = slots_[slot];
        cb();
        cb = nullptr;
        free_slots_.push_back(slot);
    }

    std::vector<std::vector<std::uint32_t>> wheel_{
        std::size_t(kWheelSize)};
    std::size_t cur_head_ = 0;      ///< Drain index into now_'s cell.
    std::uint64_t wheel_count_ = 0; ///< Pending entries across all cells.
    std::priority_queue<FarEntry, std::vector<FarEntry>, std::greater<>>
        overflow_;
    std::deque<Callback> slots_;
    std::vector<std::uint32_t> free_slots_;
    Tick now_ = 0;
    std::uint64_t next_seq_ = 0;
    std::uint64_t executed_ = 0;
};

} // namespace gvc

#endif // GVC_SIM_EVENT_QUEUE_HH
