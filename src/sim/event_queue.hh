/**
 * @file
 * Discrete-event simulation core.
 *
 * The entire simulator advances through a single EventQueue: components
 * schedule callbacks at absolute ticks and the queue executes them in
 * (tick, insertion-order) order, which makes every run deterministic.
 * Idle cycles are skipped, so simulated time can advance arbitrarily fast
 * when nothing is happening.
 */

#ifndef GVC_SIM_EVENT_QUEUE_HH
#define GVC_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace gvc
{

/**
 * A time-ordered queue of callbacks.  Ties at the same tick execute in
 * scheduling order (FIFO), which keeps pipelines well-defined without
 * explicit priorities.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** True when no events remain. */
    bool empty() const { return heap_.empty(); }

    /** Number of events executed since construction/reset. */
    std::uint64_t executed() const { return executed_; }

    /**
     * Schedule @p cb to run at absolute tick @p when.
     * Scheduling in the past is a simulator bug.
     */
    void
    schedule(Tick when, Callback cb)
    {
        if (when < now_)
            panic("EventQueue: scheduling event in the past");
        heap_.push(Entry{when, next_seq_++, std::move(cb)});
    }

    /** Schedule @p cb to run @p delay ticks from now. */
    void
    scheduleIn(Tick delay, Callback cb)
    {
        schedule(now_ + delay, std::move(cb));
    }

    /**
     * Execute events until the queue is empty or @p max_events have run.
     * @return number of events executed by this call.
     */
    std::uint64_t
    run(std::uint64_t max_events = ~std::uint64_t{0})
    {
        std::uint64_t n = 0;
        while (!heap_.empty() && n < max_events) {
            step();
            ++n;
        }
        return n;
    }

    /**
     * Execute all events with tick <= @p until, then advance time to
     * @p until even if the queue drained early.
     */
    void
    runUntil(Tick until)
    {
        while (!heap_.empty() && heap_.top().when <= until)
            step();
        if (now_ < until)
            now_ = until;
    }

    /** Drop all pending events and rewind time to zero. */
    void
    reset()
    {
        heap_ = {};
        now_ = 0;
        next_seq_ = 0;
        executed_ = 0;
    }

  private:
    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        Callback cb;

        bool
        operator>(const Entry &o) const
        {
            return when != o.when ? when > o.when : seq > o.seq;
        }
    };

    void
    step()
    {
        // Move the entry out before popping so the callback may schedule
        // further events (which can reallocate the heap) safely.
        Entry e = std::move(const_cast<Entry &>(heap_.top()));
        heap_.pop();
        now_ = e.when;
        ++executed_;
        e.cb();
    }

    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
    Tick now_ = 0;
    std::uint64_t next_seq_ = 0;
    std::uint64_t executed_ = 0;
};

} // namespace gvc

#endif // GVC_SIM_EVENT_QUEUE_HH
