/**
 * @file
 * Statistics primitives: counters, running distributions, linear
 * histograms (for CDFs), interval samplers (events per fixed time window,
 * as used by the paper's Figures 3 and 8), and lifetime recorders (Figure
 * 12).  A StatRegistry collects named readouts for dumping.
 */

#ifndef GVC_SIM_STATS_HH
#define GVC_SIM_STATS_HH

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <limits>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace gvc
{

/** A plain event counter.  Cheap enough for the hottest paths. */
struct Counter
{
    std::uint64_t value = 0;

    Counter &operator++() { ++value; return *this; }
    Counter &operator+=(std::uint64_t n) { value += n; return *this; }
    void reset() { value = 0; }
    explicit operator std::uint64_t() const { return value; }
};

/**
 * Running mean / standard deviation / extrema over a stream of samples.
 * Uses sum and sum-of-squares; adequate for the magnitudes we track.
 */
class Distribution
{
  public:
    void
    sample(double v)
    {
        ++count_;
        sum_ += v;
        sum_sq_ += v * v;
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }

    /** Account @p n additional samples of value zero in O(1). */
    void
    sampleZeros(std::uint64_t n)
    {
        if (n == 0)
            return;
        count_ += n;
        min_ = std::min(min_, 0.0);
        max_ = std::max(max_, 0.0);
    }

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? sum_ / double(count_) : 0.0; }

    double
    stdev() const
    {
        if (count_ < 2)
            return 0.0;
        const double m = mean();
        const double var =
            std::max(0.0, sum_sq_ / double(count_) - m * m);
        return std::sqrt(var);
    }

    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }

    void
    reset()
    {
        count_ = 0;
        sum_ = sum_sq_ = 0.0;
        min_ = std::numeric_limits<double>::infinity();
        max_ = -std::numeric_limits<double>::infinity();
    }

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double sum_sq_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/**
 * Fixed-width linear histogram with an overflow bucket; supports quantile
 * and CDF queries.  Used for the lifetime CDFs of Figure 12.
 */
class LinearHistogram
{
  public:
    LinearHistogram(double bucket_width, std::size_t num_buckets)
        : width_(bucket_width), buckets_(num_buckets + 1, 0)
    {
    }

    void
    sample(double v)
    {
        std::size_t idx = v < 0 ? 0 : std::size_t(v / width_);
        idx = std::min(idx, buckets_.size() - 1);
        ++buckets_[idx];
        ++total_;
    }

    std::uint64_t total() const { return total_; }

    /** Fraction of samples with value <= upper edge of bucket of @p v. */
    double
    cdfAt(double v) const
    {
        if (total_ == 0)
            return 0.0;
        std::size_t idx = v < 0 ? 0 : std::size_t(v / width_);
        idx = std::min(idx, buckets_.size() - 1);
        std::uint64_t below = 0;
        for (std::size_t i = 0; i <= idx; ++i)
            below += buckets_[i];
        return double(below) / double(total_);
    }

    /** Smallest bucket upper edge whose CDF reaches @p q in [0,1]. */
    double
    quantile(double q) const
    {
        if (total_ == 0)
            return 0.0;
        const double target = q * double(total_);
        std::uint64_t below = 0;
        for (std::size_t i = 0; i < buckets_.size(); ++i) {
            below += buckets_[i];
            if (double(below) >= target)
                return double(i + 1) * width_;
        }
        return double(buckets_.size()) * width_;
    }

    /** Accumulate another histogram with identical geometry. */
    void
    merge(const LinearHistogram &other)
    {
        if (other.buckets_.size() != buckets_.size() ||
            other.width_ != width_) {
            panic("LinearHistogram::merge: geometry mismatch");
        }
        for (std::size_t i = 0; i < buckets_.size(); ++i)
            buckets_[i] += other.buckets_[i];
        total_ += other.total_;
    }

    double bucketWidth() const { return width_; }
    std::size_t numBuckets() const { return buckets_.size(); }
    std::uint64_t bucketCount(std::size_t i) const { return buckets_[i]; }

  private:
    double width_;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t total_ = 0;
};

/**
 * Counts events per fixed-length time window and summarizes the
 * per-window rates (mean, standard deviation, max, and the fraction of
 * windows above a threshold).  This reproduces the paper's 1 µs sampling
 * of IOMMU TLB accesses (Figures 3 and 8).
 */
class IntervalSampler
{
  public:
    /**
     * @param window_ticks  Window length in ticks (cycles).
     * @param threshold_per_cycle  Rate used for the "fraction of windows
     *        above threshold" statistic (paper: one access per cycle).
     */
    explicit IntervalSampler(Tick window_ticks,
                             double threshold_per_cycle = 1.0)
        : window_(window_ticks), threshold_(threshold_per_cycle)
    {
    }

    /** Record @p n events occurring at time @p now. */
    void
    record(Tick now, std::uint64_t n = 1)
    {
        advanceTo(now);
        current_count_ += n;
    }

    /** Close the final window at simulation end time @p end. */
    void
    finish(Tick end)
    {
        advanceTo(end);
        // A window that ends exactly at `end` was already closed by the
        // advance; only close the trailing partial window if it saw any
        // simulated time or events.
        if (end % window_ != 0 || current_count_ > 0)
            closeCurrent();
        finished_ = true;
    }

    /** Mean events per cycle across windows. */
    double meanPerCycle() const { return rates_.mean(); }
    /** Standard deviation of per-cycle rate across windows. */
    double stdevPerCycle() const { return rates_.stdev(); }
    /** Maximum per-cycle rate observed in any window. */
    double maxPerCycle() const { return rates_.max(); }
    /** Number of complete windows observed. */
    std::uint64_t windows() const { return rates_.count(); }

    /** Fraction of windows whose rate exceeded the threshold. */
    double
    fractionAboveThreshold() const
    {
        return rates_.count()
            ? double(above_threshold_) / double(rates_.count())
            : 0.0;
    }

    Tick windowTicks() const { return window_; }

  private:
    void
    advanceTo(Tick now)
    {
        const std::uint64_t target = now / window_;
        if (target == current_window_)
            return;
        closeCurrent();
        // Any fully-skipped windows saw zero events.
        const std::uint64_t skipped = target - current_window_ - 1;
        rates_.sampleZeros(skipped);
        current_window_ = target;
    }

    void
    closeCurrent()
    {
        const double rate = double(current_count_) / double(window_);
        rates_.sample(rate);
        if (rate > threshold_)
            ++above_threshold_;
        current_count_ = 0;
    }

    Tick window_;
    double threshold_;
    std::uint64_t current_window_ = 0;
    std::uint64_t current_count_ = 0;
    std::uint64_t above_threshold_ = 0;
    Distribution rates_;
    bool finished_ = false;
};

/**
 * Records the lifetimes of entries in a structure (TLB entries, cache
 * lines).  Callers report durations; the recorder keeps both a running
 * distribution and a linear histogram for CDF extraction (Figure 12).
 */
class LifetimeRecorder
{
  public:
    LifetimeRecorder(double bucket_ticks = 256.0,
                     std::size_t num_buckets = 1024)
        : hist_(bucket_ticks, num_buckets)
    {
    }

    void
    record(Tick lifetime)
    {
        dist_.sample(double(lifetime));
        hist_.sample(double(lifetime));
    }

    const Distribution &distribution() const { return dist_; }
    const LinearHistogram &histogram() const { return hist_; }

  private:
    Distribution dist_;
    LinearHistogram hist_;
};

/**
 * A flat registry of named scalar readouts.  Components register either
 * counters (by pointer) or arbitrary functions; the registry can dump
 * everything or answer point queries by name.
 */
class StatRegistry
{
  public:
    void
    addCounter(std::string name, const Counter *c)
    {
        entries_.emplace_back(std::move(name),
                              [c] { return double(c->value); });
    }

    void
    addScalar(std::string name, std::function<double()> fn)
    {
        entries_.emplace_back(std::move(name), std::move(fn));
    }

    /** Value of the stat named @p name; NaN when absent. */
    double
    lookup(const std::string &name) const
    {
        for (const auto &[n, fn] : entries_)
            if (n == name)
                return fn();
        return std::nan("");
    }

    void
    dump(std::ostream &os) const
    {
        for (const auto &[n, fn] : entries_) {
            os << n << " = " << fn() << '\n';
        }
    }

    /**
     * Evaluate every registered stat right now, in registration order.
     * Scenario runs snapshot the registry at each kernel boundary and
     * difference consecutive snapshots into per-kernel deltas.
     */
    std::vector<std::pair<std::string, double>>
    snapshot() const
    {
        std::vector<std::pair<std::string, double>> out;
        out.reserve(entries_.size());
        for (const auto &[n, fn] : entries_)
            out.emplace_back(n, fn());
        return out;
    }

    std::size_t size() const { return entries_.size(); }

  private:
    std::vector<std::pair<std::string, std::function<double()>>> entries_;
};

} // namespace gvc

#endif // GVC_SIM_STATS_HH
