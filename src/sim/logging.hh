/**
 * @file
 * Minimal gem5-style status/error reporting: fatal() for user errors,
 * panic() for simulator bugs, warn()/inform() for status messages.
 */

#ifndef GVC_SIM_LOGGING_HH
#define GVC_SIM_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <string>

namespace gvc
{

namespace detail
{

[[noreturn]] inline void
die(const char *kind, const std::string &msg, bool core_dump)
{
    std::fprintf(stderr, "%s: %s\n", kind, msg.c_str());
    if (core_dump)
        std::abort();
    std::exit(1);
}

} // namespace detail

/**
 * Report a condition that is the user's fault (bad configuration, invalid
 * arguments) and terminate with a normal error exit.
 */
[[noreturn]] inline void
fatal(const std::string &msg)
{
    detail::die("fatal", msg, false);
}

/**
 * Report a condition that should never happen regardless of user input
 * (a simulator bug) and abort.
 */
[[noreturn]] inline void
panic(const std::string &msg)
{
    detail::die("panic", msg, true);
}

/** Non-fatal warning about questionable but survivable conditions. */
inline void
warn(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

/** Informational status message. */
inline void
inform(const std::string &msg)
{
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

/** panic() unless @p cond holds; used for internal invariants. */
inline void
panicIfNot(bool cond, const char *what)
{
    if (!cond)
        panic(std::string("invariant violated: ") + what);
}

} // namespace gvc

#endif // GVC_SIM_LOGGING_HH
