/**
 * @file
 * Fundamental types and address-arithmetic helpers shared by every module.
 *
 * The simulator models time in GPU clock cycles ("ticks").  Addresses are
 * 64-bit; both virtual and physical addresses use distinct aliases so that
 * interfaces document which space they operate in (the compiler does not
 * enforce the distinction, the names are for readers).
 */

#ifndef GVC_SIM_TYPES_HH
#define GVC_SIM_TYPES_HH

#include <cstdint>

namespace gvc
{

/** Simulation time in GPU core cycles. */
using Tick = std::uint64_t;

/** A virtual address. */
using Vaddr = std::uint64_t;

/** A physical address. */
using Paddr = std::uint64_t;

/** Address space identifier (one per process / GPU context). */
using Asid = std::uint16_t;

/** Virtual page number. */
using Vpn = std::uint64_t;

/** Physical page number (frame number). */
using Ppn = std::uint64_t;

/** Invalid/sentinel values. */
inline constexpr std::uint64_t kInvalidAddr = ~std::uint64_t{0};
inline constexpr Ppn kInvalidPpn = ~Ppn{0};
inline constexpr Vpn kInvalidVpn = ~Vpn{0};

/** Base (small) page geometry: 4 KB pages. */
inline constexpr unsigned kPageShift = 12;
inline constexpr std::uint64_t kPageSize = std::uint64_t{1} << kPageShift;
inline constexpr std::uint64_t kPageMask = kPageSize - 1;

/** Large page geometry: 2 MB pages. */
inline constexpr unsigned kLargePageShift = 21;
inline constexpr std::uint64_t kLargePageSize =
    std::uint64_t{1} << kLargePageShift;

/** Cache line geometry: 128 B lines (Table 1 of the paper). */
inline constexpr unsigned kLineShift = 7;
inline constexpr std::uint64_t kLineSize = std::uint64_t{1} << kLineShift;
inline constexpr std::uint64_t kLineMask = kLineSize - 1;

/** Lines per 4 KB page: sizes the FBT bit vectors (32 bits). */
inline constexpr unsigned kLinesPerPage =
    unsigned(kPageSize / kLineSize);

/**
 * Translation reach, expressed as log2 of the number of contiguous
 * 4 KB pages one translation entry spans.  Reach 0 is the classic
 * one-page entry; reach 9 covers a full 2 MB page (kLargePageShift -
 * kPageShift); intermediate values arise from subregion-contiguity
 * coalescing and buddy merging.
 */
inline constexpr unsigned kMaxReachLog2 = kLargePageShift - kPageShift;

/** Number of 4 KB pages spanned by a reach-@p r entry. */
constexpr std::uint64_t
reachPages(unsigned r)
{
    return std::uint64_t{1} << r;
}

/** Align @p vpn down to the base of its reach-@p r block. */
constexpr Vpn
reachBase(Vpn vpn, unsigned r)
{
    return vpn & ~(reachPages(r) - 1);
}

/** Extract the virtual page number of a virtual address. */
constexpr Vpn
pageOf(Vaddr va)
{
    return va >> kPageShift;
}

/** Extract the physical page number of a physical address. */
constexpr Ppn
frameOf(Paddr pa)
{
    return pa >> kPageShift;
}

/** Byte offset of an address within its 4 KB page. */
constexpr std::uint64_t
pageOffset(std::uint64_t addr)
{
    return addr & kPageMask;
}

/** Align an address down to its 128 B line. */
constexpr std::uint64_t
lineAlign(std::uint64_t addr)
{
    return addr & ~kLineMask;
}

/** Index of an address's line within its 4 KB page (0..31). */
constexpr unsigned
lineInPage(std::uint64_t addr)
{
    return unsigned((addr & kPageMask) >> kLineShift);
}

/** First byte of a page given its page number. */
constexpr std::uint64_t
pageBase(std::uint64_t pn)
{
    return pn << kPageShift;
}

/** Access permissions carried by page-table entries and virtual-cache
 *  lines.  Modeled as a small bitmask. */
enum PermBits : std::uint8_t {
    kPermNone  = 0,
    kPermRead  = 1 << 0,
    kPermWrite = 1 << 1,
    kPermExec  = 1 << 2,
};

using Perms = std::uint8_t;

/** True iff @p have covers everything @p need requests. */
constexpr bool
permsAllow(Perms have, Perms need)
{
    return (have & need) == need;
}

} // namespace gvc

#endif // GVC_SIM_TYPES_HH
