/**
 * @file
 * SimContext bundles the shared per-simulation services (event queue,
 * statistics registry, RNG) so components take a single dependency.
 */

#ifndef GVC_SIM_SIM_CONTEXT_HH
#define GVC_SIM_SIM_CONTEXT_HH

#include <cstdint>

#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"

namespace gvc
{

/** Shared services for one simulation instance. */
struct SimContext
{
    explicit SimContext(std::uint64_t seed = 1) : rng(seed) {}

    EventQueue eq;
    StatRegistry stats;
    Rng rng;

    Tick now() const { return eq.now(); }
};

} // namespace gvc

#endif // GVC_SIM_SIM_CONTEXT_HH
