/**
 * @file
 * Deterministic pseudo-random number generation for workload synthesis and
 * randomized replacement.  xoshiro256** seeded via SplitMix64; every
 * simulation is reproducible from a single seed.
 */

#ifndef GVC_SIM_RNG_HH
#define GVC_SIM_RNG_HH

#include <cstdint>

namespace gvc
{

/** SplitMix64 step, used to expand a single seed into xoshiro state. */
constexpr std::uint64_t
splitMix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

/**
 * xoshiro256** generator.  Fast, high-quality, and entirely deterministic;
 * satisfies the std UniformRandomBitGenerator requirements so it can also
 * drive <random> distributions where convenient.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    explicit constexpr Rng(std::uint64_t seed = 0x9022bd46aull)
    {
        std::uint64_t sm = seed;
        for (auto &word : state_)
            word = splitMix64(sm);
    }

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~result_type{0}; }

    constexpr result_type
    operator()()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound); bound must be nonzero. */
    constexpr std::uint64_t
    below(std::uint64_t bound)
    {
        // Lemire-style multiply-shift; bias is negligible for our bounds.
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>((*this)()) * bound) >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    constexpr std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    constexpr double
    uniform()
    {
        return double((*this)() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability @p p. */
    constexpr bool
    chance(double p)
    {
        return uniform() < p;
    }

  private:
    static constexpr std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4] = {};
};

} // namespace gvc

#endif // GVC_SIM_RNG_HH
