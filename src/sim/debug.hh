/**
 * @file
 * Runtime debug tracing, gem5-DPRINTF style: categories are enabled
 * through the GVC_DEBUG environment variable (comma-separated, or
 * "all"), and each trace line is prefixed with the current tick and
 * its category.  Tracing costs one branch when disabled.
 *
 *   GVC_DEBUG=iommu,fbt ./build/tools/gvc_run -w bfs -d vc-opt
 */

#ifndef GVC_SIM_DEBUG_HH
#define GVC_SIM_DEBUG_HH

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "sim/types.hh"

namespace gvc
{

/** Trace categories. */
enum class DebugFlag : unsigned {
    kEvent = 0,
    kTlb,
    kIommu,
    kPtw,
    kCache,
    kFbt,
    kVc,
    kCu,
    kDirectory,
    kNumFlags,
};

namespace debug
{

/** Category names, aligned with DebugFlag. */
inline const char *const kFlagNames[] = {
    "event", "tlb", "iommu", "ptw", "cache", "fbt", "vc", "cu",
    "directory",
};

/**
 * Enabled mask parsed from GVC_DEBUG (lazily, once).
 *
 * Thread safety (sweep engine): this is the one piece of process-wide
 * state the simulation core reads.  It is a C++11 magic static —
 * initialization is synchronized by the runtime and the value is
 * immutable afterwards — so concurrent runWorkload() jobs may call it
 * freely.  Keep it `static const`; a mutable mask would need a lock.
 */
inline unsigned
enabledMask()
{
    static const unsigned mask = [] {
        const char *env = std::getenv("GVC_DEBUG");
        if (!env || !*env)
            return 0u;
        unsigned m = 0;
        const std::string spec(env);
        if (spec == "all")
            return ~0u;
        std::size_t pos = 0;
        while (pos < spec.size()) {
            std::size_t comma = spec.find(',', pos);
            if (comma == std::string::npos)
                comma = spec.size();
            const std::string item = spec.substr(pos, comma - pos);
            for (unsigned f = 0;
                 f < unsigned(DebugFlag::kNumFlags); ++f) {
                if (item == kFlagNames[f])
                    m |= 1u << f;
            }
            pos = comma + 1;
        }
        return m;
    }();
    return mask;
}

inline bool
enabled(DebugFlag flag)
{
    return (enabledMask() >> unsigned(flag)) & 1u;
}

/** Print one trace line: "<tick>: <category>: <message>". */
inline void
print(DebugFlag flag, Tick now, const char *fmt, ...)
{
    std::fprintf(stderr, "%10llu: %s: ", (unsigned long long)now,
                 kFlagNames[unsigned(flag)]);
    va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
    std::fputc('\n', stderr);
}

} // namespace debug

/** Trace macro: evaluates arguments only when the flag is enabled. */
#define GVC_DPRINTF(flag, now, ...)                                    \
    do {                                                               \
        if (gvc::debug::enabled(gvc::DebugFlag::flag))                 \
            gvc::debug::print(gvc::DebugFlag::flag, (now),             \
                              __VA_ARGS__);                            \
    } while (0)

} // namespace gvc

#endif // GVC_SIM_DEBUG_HH
