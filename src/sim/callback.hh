/**
 * @file
 * SmallFunc: the simulator's callback type.
 *
 * The engine advances by scheduling millions of continuation closures —
 * memory-access completions that capture the next completion, five or
 * six levels deep.  std::function's 16-byte small-buffer loses on every
 * level of such a chain (each closure embeds the next callback by
 * value), so every scheduled event costs one or more malloc/free pairs.
 * SmallFunc replaces it on the hot paths with:
 *
 *  - a 56-byte inline buffer, sized so leaf closures (a couple of
 *    pointers and scalars) never allocate;
 *  - a fixed-size block pool for closures that spill — continuation
 *    chains allocate by popping a thread-local free list instead of
 *    calling malloc;
 *  - move-only semantics: continuations are moved along the chain and
 *    invoked once, so requiring copyability (as std::function does)
 *    buys nothing and forbids capturing move-only state.
 *
 * Host-side only: swapping std::function for SmallFunc changes no
 * simulated ordering or statistic (the golden-stats and replay-identity
 * suites pin this down).
 */

#ifndef GVC_SIM_CALLBACK_HH
#define GVC_SIM_CALLBACK_HH

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/logging.hh"

namespace gvc
{

namespace detail
{

/**
 * Thread-local free list of fixed-size blocks backing spilled callables.
 * One size class covers every continuation closure in the engine (the
 * deepest chains capture one SmallFunc plus a handful of scalars);
 * larger objects fall through to operator new.  Thread-local because the
 * sweep engine runs independent simulations on pool threads.
 */
class CallbackPool
{
  public:
    static constexpr std::size_t kBlockSize = 192;

    static void *
    alloc(std::size_t n)
    {
        if (n > kBlockSize)
            return ::operator new(n);
        auto &blocks = freeList().blocks;
        if (blocks.empty())
            return ::operator new(kBlockSize);
        void *p = blocks.back();
        blocks.pop_back();
        return p;
    }

    static void
    dealloc(void *p, std::size_t n) noexcept
    {
        if (n > kBlockSize) {
            ::operator delete(p);
            return;
        }
        freeList().blocks.push_back(p);
    }

  private:
    struct FreeList
    {
        std::vector<void *> blocks;

        ~FreeList()
        {
            for (void *p : blocks)
                ::operator delete(p);
        }
    };

    static FreeList &
    freeList() noexcept
    {
        static thread_local FreeList fl;
        return fl;
    }
};

} // namespace detail

template <typename Sig, std::size_t Inline = 56>
class SmallFunc;

/**
 * Move-only callable wrapper with @p Inline bytes of in-place storage
 * and pooled heap fallback.  Invoking an empty SmallFunc is a simulator
 * bug (panics).
 */
template <typename R, typename... Args, std::size_t Inline>
class SmallFunc<R(Args...), Inline>
{
  public:
    SmallFunc() = default;
    SmallFunc(std::nullptr_t) {}

    template <typename F, typename D = std::decay_t<F>,
              typename = std::enable_if_t<
                  !std::is_same_v<D, SmallFunc> &&
                  std::is_invocable_r_v<R, D &, Args...>>>
    SmallFunc(F &&f)
    {
        if constexpr (fitsInline<D>()) {
            ::new (static_cast<void *>(storage_.buf))
                D(std::forward<F>(f));
            ops_ = &OpsFor<D, true>::ops;
        } else {
            void *p = detail::CallbackPool::alloc(sizeof(D));
            ::new (p) D(std::forward<F>(f));
            storage_.ptr = p;
            ops_ = &OpsFor<D, false>::ops;
        }
    }

    SmallFunc(SmallFunc &&o) noexcept { moveFrom(o); }

    SmallFunc &
    operator=(SmallFunc &&o) noexcept
    {
        if (this != &o) {
            reset();
            moveFrom(o);
        }
        return *this;
    }

    SmallFunc &
    operator=(std::nullptr_t) noexcept
    {
        reset();
        return *this;
    }

    SmallFunc(const SmallFunc &) = delete;
    SmallFunc &operator=(const SmallFunc &) = delete;

    ~SmallFunc() { reset(); }

    explicit operator bool() const noexcept { return ops_ != nullptr; }

    R
    operator()(Args... args)
    {
        if (!ops_)
            panic("SmallFunc: invoking empty callback");
        return ops_->invoke(storage_, std::forward<Args>(args)...);
    }

  private:
    union Storage
    {
        void *ptr;                  ///< Spilled: pool block address.
        unsigned char buf[Inline];  ///< In-place object storage.
    };

    struct Ops
    {
        R (*invoke)(Storage &, Args &&...);
        /// Null when relocation is a plain byte copy of Storage (spilled
        /// objects: the pool pointer; inline trivially-copyable objects:
        /// the bytes) — the overwhelmingly common case, handled inline
        /// in moveFrom without an indirect call.
        void (*relocate)(Storage &dst, Storage &src) noexcept;
        /// Null when destruction is a no-op (inline trivially-
        /// destructible objects); spilled objects always need it to
        /// return their pool block.
        void (*destroy)(Storage &) noexcept;
    };

    template <typename D>
    static constexpr bool
    fitsInline()
    {
        return sizeof(D) <= Inline && alignof(D) <= alignof(Storage) &&
               std::is_nothrow_move_constructible_v<D>;
    }

    template <typename D, bool kInPlace>
    struct OpsFor
    {
        static D *
        obj(Storage &s) noexcept
        {
            if constexpr (kInPlace)
                return std::launder(reinterpret_cast<D *>(s.buf));
            else
                return static_cast<D *>(s.ptr);
        }

        static R
        invoke(Storage &s, Args &&...args)
        {
            return (*obj(s))(std::forward<Args>(args)...);
        }

        static void
        relocate(Storage &dst, Storage &src) noexcept
        {
            if constexpr (kInPlace) {
                D *o = obj(src);
                ::new (static_cast<void *>(dst.buf)) D(std::move(*o));
                o->~D();
            } else {
                dst.ptr = src.ptr;
            }
        }

        static void
        destroy(Storage &s) noexcept
        {
            D *o = obj(s);
            o->~D();
            if constexpr (!kInPlace)
                detail::CallbackPool::dealloc(s.ptr, sizeof(D));
        }

        static constexpr bool kByteReloc =
            !kInPlace || std::is_trivially_copyable_v<D>;
        static constexpr bool kNoDestroy =
            kInPlace && std::is_trivially_destructible_v<D>;

        static constexpr Ops ops{&invoke,
                                 kByteReloc ? nullptr : &relocate,
                                 kNoDestroy ? nullptr : &destroy};
    };

    void
    moveFrom(SmallFunc &o) noexcept
    {
        ops_ = o.ops_;
        if (ops_) {
            if (ops_->relocate) {
                ops_->relocate(storage_, o.storage_);
            } else {
                // Byte-copy relocation copies the whole union, including
                // tail bytes past the stored object.  Those bytes are
                // indeterminate but never read (unsigned char, so the
                // copy itself is defined); GCC 12 still warns.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
                storage_ = o.storage_;
#pragma GCC diagnostic pop
            }
            o.ops_ = nullptr;
        }
    }

    void
    reset() noexcept
    {
        if (ops_) {
            if (ops_->destroy)
                ops_->destroy(storage_);
            ops_ = nullptr;
        }
    }

    const Ops *ops_ = nullptr;
    Storage storage_;
};

/** The engine-wide completion-callback type. */
using Callback = SmallFunc<void()>;

} // namespace gvc

#endif // GVC_SIM_CALLBACK_HH
