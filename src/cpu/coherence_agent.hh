/**
 * @file
 * CPU-side coherence agent.
 *
 * The paper's system is fully coherent between CPU and GPU (§2.1): CPU
 * writes to lines the GPU may cache arrive at the GPU as physical-
 * address probes, which the virtual hierarchy must reverse-translate
 * through the backward table — and which the BT *filters* when the GPU
 * does not hold the line (§4.1, the region-buffer-like benefit).
 *
 * This agent models the CPU side at the granularity that matters to
 * the GPU: a stream of reads/writes over a shared buffer, each write
 * probing the GPU caches.  CPU cache hits are modeled with a small
 * private cache so probe traffic has realistic (write-miss-driven)
 * timing rather than one probe per store.
 */

#ifndef GVC_CPU_COHERENCE_AGENT_HH
#define GVC_CPU_COHERENCE_AGENT_HH

#include <cstdint>
#include <functional>

#include "cache/cache_array.hh"
#include "cache/directory.hh"
#include "mem/vm.hh"
#include "sim/sim_context.hh"

namespace gvc
{

/** Result the GPU side reports for one probe. */
struct AgentProbeResult
{
    bool filtered = false;
    bool invalidated = false;
};

/** Configuration of the agent's access stream. */
struct CoherenceAgentParams
{
    /** Cycles between consecutive CPU accesses. */
    Tick period = 50;
    /** Fraction of accesses that are stores (probe generators). */
    double store_fraction = 0.5;
    /** Private CPU cache size (Table 1: 64 KB L1D). */
    std::uint64_t cache_bytes = 64 * 1024;
    unsigned cache_assoc = 8;
};

/** The agent. */
class CpuCoherenceAgent
{
  public:
    /** GPU-side probe hook: (physical line, invalidate). */
    using ProbeFn = std::function<AgentProbeResult(Paddr, bool)>;

    CpuCoherenceAgent(SimContext &ctx, Vm &vm,
                      const CoherenceAgentParams &params = {})
        : ctx_(ctx), vm_(vm), params_(params),
          cache_(CacheParams{params.cache_bytes, params.cache_assoc,
                             unsigned(kLineSize), /*write_back=*/true,
                             /*write_allocate=*/true, false})
    {
    }

    /** Install the GPU-side probe sink (direct mode). */
    void setProbeSink(ProbeFn fn) { probe_ = std::move(fn); }

    /**
     * Route CPU traffic through a coherence directory instead of
     * probing the GPU directly: store misses fetch exclusive, the
     * directory invalidates the GPU's copy (via its registered sink),
     * and this agent registers itself as the directory's CPU node.
     */
    void
    attachDirectory(Directory &dir)
    {
        dir_ = &dir;
        dir.setProbeSink(DirNode::kCpu, [this](Paddr, bool inv) {
            ProbeOutcome out;
            // A precise CPU cache model would reverse-map the line;
            // this agent conservatively reports nothing resident (its
            // private cache is a timing filter only).
            (void)inv;
            return out;
        });
    }

    /**
     * Start streaming @p accesses accesses over the shared region
     * [base, base+bytes) of @p asid, one every params.period cycles.
     * @param on_done fires after the last access.
     */
    void
    start(Asid asid, Vaddr base, std::uint64_t bytes,
          std::uint64_t accesses, std::function<void()> on_done = {})
    {
        asid_ = asid;
        base_ = base;
        lines_ = bytes / kLineSize;
        remaining_ = accesses;
        on_done_ = std::move(on_done);
        ctx_.eq.scheduleIn(params_.period, [this] { step(); });
    }

    std::uint64_t accessesIssued() const { return issued_.value; }
    std::uint64_t probesSent() const { return probes_.value; }
    std::uint64_t probesFiltered() const { return filtered_.value; }
    std::uint64_t gpuLinesInvalidated() const
    {
        return invalidated_.value;
    }

    CacheArray &cache() { return cache_; }

  private:
    void
    step()
    {
        if (remaining_ == 0) {
            if (on_done_)
                on_done_();
            return;
        }
        --remaining_;
        ++issued_;

        // Deterministic stride-with-revisit pattern over the buffer.
        const std::uint64_t idx =
            (issued_.value * 7) % (lines_ ? lines_ : 1);
        const Vaddr line_va = base_ + idx * kLineSize;
        const bool is_store = ctx_.rng.chance(params_.store_fraction);

        const auto t = vm_.translate(asid_, line_va);
        if (t) {
            const Paddr line_pa =
                pageBase(t->ppn) | (line_va & kPageMask & ~kLineMask);
            const bool hit =
                cache_.access(asid_, line_va, is_store, ctx_.now());
            cache_.insert(asid_, line_va, t->perms, is_store,
                          ctx_.now());
            // Stores must invalidate any GPU copy (MESI-style
            // ownership).
            if (is_store) {
                ++probes_;
                if (dir_) {
                    // Through the directory: its GPU sink performs the
                    // reverse-translated invalidation.
                    dir_->fetch(DirNode::kCpu, line_pa,
                                /*exclusive=*/true, [] {});
                } else if (probe_) {
                    const auto r = probe_(line_pa, /*invalidate=*/true);
                    if (r.filtered)
                        ++filtered_;
                    if (r.invalidated)
                        ++invalidated_;
                }
            } else if (dir_ && !hit) {
                dir_->fetch(DirNode::kCpu, line_pa, false, [] {});
            }
        }
        ctx_.eq.scheduleIn(params_.period, [this] { step(); });
    }

    SimContext &ctx_;
    Vm &vm_;
    CoherenceAgentParams params_;
    CacheArray cache_;
    ProbeFn probe_;
    Directory *dir_ = nullptr;

    Asid asid_ = 0;
    Vaddr base_ = 0;
    std::uint64_t lines_ = 0;
    std::uint64_t remaining_ = 0;
    std::function<void()> on_done_;

    Counter issued_;
    Counter probes_;
    Counter filtered_;
    Counter invalidated_;
};

} // namespace gvc

#endif // GVC_CPU_COHERENCE_AGENT_HH
