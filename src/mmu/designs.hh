/**
 * @file
 * Named MMU designs (Table 2 of the paper, plus the Figure 10/11
 * comparison points) and a uniform wrapper that builds any of them over
 * a shared Vm/Dram so the harness can sweep designs.
 */

#ifndef GVC_MMU_DESIGNS_HH
#define GVC_MMU_DESIGNS_HH

#include <memory>
#include <string>

#include "core/virtual_hierarchy.hh"
#include "mmu/baseline_system.hh"
#include "mmu/boundary.hh"
#include "mmu/ideal_system.hh"
#include "mmu/l1vc_system.hh"
#include "mmu/soc_config.hh"

namespace gvc
{

/** The MMU designs evaluated in the paper. */
enum class MmuDesign {
    kIdeal,            ///< IDEAL MMU: free translation.
    kBaseline512,      ///< 32-entry per-CU TLBs, 512-entry IOMMU TLB.
    kBaseline16K,      ///< 32-entry per-CU TLBs, 16K-entry IOMMU TLB.
    kBaselineLargeTlb, ///< 128-entry per-CU TLBs, 16K IOMMU (Fig. 10).
    kVcNoOpt,          ///< Full VC hierarchy, 512-entry IOMMU TLB.
    kVcOpt,            ///< Full VC + FBT as second-level TLB.
    kL1Vc32,           ///< L1-only VC, 32-entry per-CU TLBs (Fig. 11).
    kL1Vc128,          ///< L1-only VC, 128-entry per-CU TLBs (Fig. 11).
    // --- Reach-generalized extensions beyond Table 2 ---
    kBase2MB,          ///< Baseline 512 + 2 MB pages, reach-9 TLBs.
    kBaseCoalesced,    ///< Baseline 512 + coalesced fills, buddy merge.
    kBaseVictima,      ///< Baseline 512 + Victima-style L2 stashing.
};

/** Human-readable design name (matches the paper's labels). */
inline const char *
designName(MmuDesign d)
{
    switch (d) {
      case MmuDesign::kIdeal: return "IDEAL MMU";
      case MmuDesign::kBaseline512: return "Baseline 512";
      case MmuDesign::kBaseline16K: return "Baseline 16K";
      case MmuDesign::kBaselineLargeTlb: return "Large per-CU TLBs";
      case MmuDesign::kVcNoOpt: return "VC W/O OPT";
      case MmuDesign::kVcOpt: return "VC With OPT";
      case MmuDesign::kL1Vc32: return "L1-Only VC (32)";
      case MmuDesign::kL1Vc128: return "L1-Only VC (128)";
      case MmuDesign::kBase2MB: return "Base 2MB";
      case MmuDesign::kBaseCoalesced: return "Base Coalesced";
      case MmuDesign::kBaseVictima: return "Base Victima";
    }
    return "?";
}

/** designName() inverse; false when @p name is not a known label. */
inline bool
designFromName(const std::string &name, MmuDesign &out)
{
    for (const MmuDesign d :
         {MmuDesign::kIdeal, MmuDesign::kBaseline512,
          MmuDesign::kBaseline16K, MmuDesign::kBaselineLargeTlb,
          MmuDesign::kVcNoOpt, MmuDesign::kVcOpt, MmuDesign::kL1Vc32,
          MmuDesign::kL1Vc128, MmuDesign::kBase2MB,
          MmuDesign::kBaseCoalesced, MmuDesign::kBaseVictima}) {
        if (name == designName(d)) {
            out = d;
            return true;
        }
    }
    return false;
}

/** Specialize a base SocConfig for one design (Table 2). */
inline SocConfig
configFor(MmuDesign d, SocConfig cfg = {})
{
    switch (d) {
      case MmuDesign::kIdeal:
        cfg.percu_tlb_infinite = true;
        cfg.iommu.tlb_infinite = true;
        cfg.iommu.unlimited_bw = true;
        break;
      case MmuDesign::kBaseline512:
        cfg.percu_tlb_entries = 32;
        cfg.iommu.tlb_entries = 512;
        break;
      case MmuDesign::kBaseline16K:
        cfg.percu_tlb_entries = 32;
        cfg.iommu.tlb_entries = 16 * 1024;
        break;
      case MmuDesign::kBaselineLargeTlb:
        cfg.percu_tlb_entries = 128;
        cfg.iommu.tlb_entries = 16 * 1024;
        break;
      case MmuDesign::kVcNoOpt:
        cfg.iommu.tlb_entries = 512;
        cfg.fbt_as_second_level_tlb = false;
        break;
      case MmuDesign::kVcOpt:
        cfg.iommu.tlb_entries = 512;
        cfg.fbt_as_second_level_tlb = true;
        break;
      case MmuDesign::kL1Vc32:
        cfg.percu_tlb_entries = 32;
        cfg.iommu.tlb_entries = 16 * 1024;
        break;
      case MmuDesign::kL1Vc128:
        cfg.percu_tlb_entries = 128;
        cfg.iommu.tlb_entries = 16 * 1024;
        break;
      case MmuDesign::kBase2MB:
        // Baseline 512 sizes; the OS backs 2 MB-aligned interiors of
        // anonymous regions with 2 MB pages and the TLBs hold them at
        // full reach, so one entry spans up to 512 pages.
        cfg.percu_tlb_entries = 32;
        cfg.iommu.tlb_entries = 512;
        cfg.vm_page_policy = unsigned(Vm::PagePolicy::k2mInterior);
        cfg.tlb_max_reach = kMaxReachLog2;
        break;
      case MmuDesign::kBaseCoalesced:
        // Baseline 512 sizes and plain 4 KB pages; reach comes from
        // fill-time contiguity coalescing (up to one PTE line, free)
        // plus insertion-time buddy merging in the TLBs.
        cfg.percu_tlb_entries = 32;
        cfg.iommu.tlb_entries = 512;
        cfg.tlb_max_reach = kMaxReachLog2;
        cfg.tlb_merge_on_insert = true;
        cfg.coalesce_max_reach = 3;
        break;
      case MmuDesign::kBaseVictima:
        // Baseline 512 sizes; per-CU TLB capacity evictions stash
        // their translation in the L2 data array and misses probe the
        // stash before paying the PCIe hop to the IOMMU.
        cfg.percu_tlb_entries = 32;
        cfg.iommu.tlb_entries = 512;
        cfg.victima_stash = true;
        break;
    }
    return cfg;
}

/** Table 2, rendered. */
inline std::string
designTable()
{
    return "Design            | Per-CU TLB | IOMMU TLB        | B/W Limit\n"
           "------------------+------------+------------------+---------------\n"
           "IDEAL MMU         | Infinite   | Infinite         | Infinite\n"
           "Baseline 512      | 32-entry   | 512-entry        | 1 Access/Cycle\n"
           "Baseline 16K      | 32-entry   | 16K-entry        | 1 Access/Cycle\n"
           "VC W/O OPT        | -          | 512-entry        | 1 Access/Cycle\n"
           "VC With OPT       | -          | +16K-entry FBT   | 1 Access/Cycle\n"
           "Base 2MB          | 32, reach  | 512-entry, reach | 1 Access/Cycle\n"
           "Base Coalesced    | 32, reach  | 512-entry, reach | 1 Access/Cycle\n"
           "Base Victima      | 32 + L2 stash | 512-entry     | 1 Access/Cycle\n";
}

/** Owns whichever concrete system a design maps to. */
class SystemUnderTest
{
  public:
    SystemUnderTest(SimContext &ctx, const SocConfig &cfg, Vm &vm,
                    Dram &dram, MmuDesign design)
        : design_(design)
    {
        switch (design) {
          case MmuDesign::kIdeal:
            ideal_ = std::make_unique<IdealMmuSystem>(ctx, cfg, vm, dram);
            break;
          case MmuDesign::kBaseline512:
          case MmuDesign::kBaseline16K:
          case MmuDesign::kBaselineLargeTlb:
          case MmuDesign::kBase2MB:
          case MmuDesign::kBaseCoalesced:
          case MmuDesign::kBaseVictima:
            baseline_ = std::make_unique<BaselineMmuSystem>(ctx, cfg, vm,
                                                            dram);
            break;
          case MmuDesign::kVcNoOpt:
          case MmuDesign::kVcOpt:
            vc_ = std::make_unique<VirtualCacheSystem>(ctx, cfg, vm,
                                                       dram);
            break;
          case MmuDesign::kL1Vc32:
          case MmuDesign::kL1Vc128:
            l1vc_ = std::make_unique<L1OnlyVcSystem>(ctx, cfg, vm, dram);
            break;
        }
    }

    MmuDesign design() const { return design_; }

    GpuMemInterface &
    memIf()
    {
        if (ideal_)
            return *ideal_;
        if (baseline_)
            return *baseline_;
        if (vc_)
            return *vc_;
        return *l1vc_;
    }

    /** The shared IOMMU, when the design has one. */
    Iommu *
    iommu()
    {
        if (baseline_)
            return &baseline_->iommu();
        if (vc_)
            return &vc_->iommu();
        if (l1vc_)
            return &l1vc_->iommu();
        return nullptr;
    }

    IdealMmuSystem *ideal() { return ideal_.get(); }
    BaselineMmuSystem *baseline() { return baseline_.get(); }
    VirtualCacheSystem *vc() { return vc_.get(); }
    L1OnlyVcSystem *l1vc() { return l1vc_.get(); }

    void
    flushLifetimes()
    {
        if (ideal_)
            ideal_->caches().flushLifetimes();
        if (baseline_)
            baseline_->caches().flushLifetimes();
        if (vc_)
            vc_->flushLifetimes();
        if (l1vc_)
            l1vc_->caches().flushLifetimes();
    }

    /**
     * Fold TLB entry reference-count histograms into @p percu (per-CU
     * TLBs, where the design has them) and @p iommu (the shared IOMMU
     * TLB).  Still-resident entries are flushed in first, so call once
     * at simulation end.
     */
    void
    collectTlbRefs(TlbRefHist &percu, TlbRefHist &iommu_hist)
    {
        if (baseline_)
            baseline_->collectTlbRefs(percu);
        if (l1vc_)
            l1vc_->collectTlbRefs(percu);
        if (Iommu *io = iommu()) {
            io->tlb().flushResidentRefs();
            iommu_hist.merge(io->tlb().refHist());
        }
    }

    /** Apply a kernel-boundary policy to whichever system is built. */
    void
    applyBoundary(const BoundaryPolicy &p)
    {
        if (ideal_)
            ideal_->applyBoundary(p);
        if (baseline_)
            baseline_->applyBoundary(p);
        if (vc_)
            vc_->applyBoundary(p);
        if (l1vc_)
            l1vc_->applyBoundary(p);
    }

    /** Register this system's statistics under dotted names. */
    void
    registerStats(StatRegistry &reg)
    {
        if (Iommu *io = iommu()) {
            reg.addScalar("iommu.accesses",
                          [io] { return double(io->accesses()); });
            reg.addScalar("iommu.walks",
                          [io] { return double(io->walks()); });
            reg.addScalar("iommu.faults",
                          [io] { return double(io->faults()); });
            reg.addScalar("iommu.serialization_cycles", [io] {
                return double(io->serializationDelay());
            });
            reg.addScalar("iommu.tlb.hits", [io] {
                return double(io->tlb().hits());
            });
            reg.addScalar("iommu.tlb.misses", [io] {
                return double(io->tlb().misses());
            });
            reg.addScalar("iommu.pwc.hit_ratio", [io] {
                return io->ptw().pwc().hitRatio();
            });
            reg.addScalar("iommu.ptw.mean_latency", [io] {
                return io->ptw().meanLatency();
            });
        }
        if (BaselineMmuSystem *b = baseline_.get()) {
            reg.addScalar("percu_tlb.accesses", [b] {
                return double(b->tlbAccesses());
            });
            reg.addScalar("percu_tlb.misses",
                          [b] { return double(b->tlbMisses()); });
            reg.addScalar("l2.hit_ratio", [b] {
                return b->caches().l2().hitRatio();
            });
            reg.addScalar("directory.probes", [b] {
                return double(b->caches().directory().probesSent());
            });
            // Reach/stash scalars appear only when the feature is on,
            // keeping classic designs' stat dumps byte-identical.
            if (b->config().tlb_max_reach > 0) {
                reg.addScalar("percu_tlb.reach_hits", [b] {
                    return double(b->tlbReachHits());
                });
                reg.addScalar("percu_tlb.reach_fills", [b] {
                    return double(b->tlbReachFills());
                });
                reg.addScalar("percu_tlb.merges", [b] {
                    return double(b->tlbMerges());
                });
            }
            if (b->config().percu_tlb_fill_policy != kTlbFillLru) {
                reg.addScalar("percu_tlb.fill_bypasses", [b] {
                    return double(b->tlbFillBypasses());
                });
            }
            if (b->config().percu_tlb_fill_policy ==
                kTlbFillBypassTrained) {
                reg.addScalar("percu_tlb.dead_first_evictions", [b] {
                    return double(b->tlbDeadFirstEvictions());
                });
                reg.addScalar("percu_tlb.pred_true_pos", [b] {
                    return double(b->tlbPredTruePos());
                });
                reg.addScalar("percu_tlb.pred_false_pos", [b] {
                    return double(b->tlbPredFalsePos());
                });
            }
            if (b->config().victima_stash) {
                reg.addScalar("victima.stashes", [b] {
                    return double(b->victimaStashes());
                });
                reg.addScalar("victima.probes", [b] {
                    return double(b->victimaProbes());
                });
                reg.addScalar("victima.hits", [b] {
                    return double(b->victimaHits());
                });
            }
        }
        if (VirtualCacheSystem *v = vc_.get()) {
            reg.addScalar("fbt.bt_lookups", [v] {
                return double(v->fbt().btLookups());
            });
            reg.addScalar("fbt.ft_hit_ratio",
                          [v] { return v->fbt().ftHitRatio(); });
            reg.addScalar("fbt.valid_pages", [v] {
                return double(v->fbt().validEntries());
            });
            reg.addScalar("fbt.capacity_evictions", [v] {
                return double(v->fbt().capacityEvictions());
            });
            reg.addScalar("vc.synonym_replays", [v] {
                return double(v->synonymReplays());
            });
            reg.addScalar("vc.rw_faults",
                          [v] { return double(v->rwFaults()); });
            reg.addScalar("vc.l1_flushes",
                          [v] { return double(v->l1Flushes()); });
            reg.addScalar("vc.translation_merges", [v] {
                return double(v->translationMerges());
            });
            reg.addScalar("vc.l2.hit_ratio",
                          [v] { return v->l2().hitRatio(); });
            reg.addScalar("directory.probes", [v] {
                return double(v->directory().probesSent());
            });
            reg.addScalar("vc.probe_lines_filtered", [v] {
                return double(v->probeLinesFiltered());
            });
        }
        if (L1OnlyVcSystem *l = l1vc_.get()) {
            reg.addScalar("l1vc.synonym_replays", [l] {
                return double(l->synonymReplays());
            });
            reg.addScalar("l1vc.registry_lines", [l] {
                return double(l->registry().size());
            });
        }
    }

  private:
    MmuDesign design_;
    std::unique_ptr<IdealMmuSystem> ideal_;
    std::unique_ptr<BaselineMmuSystem> baseline_;
    std::unique_ptr<VirtualCacheSystem> vc_;
    std::unique_ptr<L1OnlyVcSystem> l1vc_;
};

} // namespace gvc

#endif // GVC_MMU_DESIGNS_HH
