/**
 * @file
 * Whole-SoC configuration (Table 1 of the paper, plus the latency
 * parameters §5 specifies: 10-cycle GPU-L2<->FBT interconnect, 5-cycle
 * FBT lookup).  All experiments are expressed as variations of this
 * structure; mmu/designs.hh builds the paper's named designs from it.
 */

#ifndef GVC_MMU_SOC_CONFIG_HH
#define GVC_MMU_SOC_CONFIG_HH

#include <cstdint>

#include "core/fbt.hh"
#include "gpu/cu.hh"
#include "mem/dram.hh"
#include "tlb/iommu.hh"

namespace gvc
{

/** Full system configuration. */
struct SocConfig
{
    /** GPU organization: 16 CUs x 32 lanes (Table 1). */
    GpuParams gpu;

    // --- GPU caches (Table 1) ---
    std::uint64_t l1_size = 32 * 1024; ///< Per-CU, write-through no alloc.
    unsigned l1_assoc = 8;
    std::uint64_t l2_size = 2 * 1024 * 1024; ///< Shared, write-back.
    unsigned l2_assoc = 16;
    unsigned l2_banks = 8;

    // --- Latencies (cycles at the 700 MHz GPU clock) ---
    Tick l1_latency = 4;
    Tick cu_to_l2 = 10;    ///< Dance-hall NoC hop, each way.
    Tick l2_latency = 16;  ///< Bank access once the port is won.
    Tick l2_to_dir = 10;   ///< L2 to directory hop.
    Tick dir_latency = 30; ///< Directory occupancy.
    /**
     * Per-CU-TLB-miss request path to the IOMMU, each way.  IOMMU
     * requests use the PCIe protocol even on-die (§2.1), so this is much
     * longer than the on-chip hops.
     */
    Tick cu_to_iommu = 80;
    Tick l2_to_iommu = 10; ///< VC design: GPU L2 <-> FBT (§5: 10 cycles).
    Tick fbt_latency = 5;  ///< FBT lookup (§5: 5 cycles).
    Tick percu_tlb_latency = 1;

    // --- Translation structures ---
    unsigned percu_tlb_entries = 32; ///< Fully associative (Table 1).
    unsigned percu_tlb_assoc = 0;    ///< 0 = fully associative.
    bool percu_tlb_infinite = false;
    /**
     * Per-CU TLB fill policy (kTlbFillLru / kTlbFillBypassDead /
     * kTlbFillBypassTrained).  Sweepable independently of the design:
     * the bypass predictors attack the dead-on-arrival population the
     * TlbRefHist exposes.
     */
    unsigned percu_tlb_fill_policy = kTlbFillLru;
    /** Shared IOMMU TLB fill policy (same kTlbFill* values). */
    unsigned iommu_tlb_fill_policy = kTlbFillLru;
    /**
     * TLB replacement policy, both per-CU and shared IOMMU TLBs
     * (kTlbRepl*: true LRU or the RRIP family).  Orthogonal to the
     * fill policy and to the design axis.
     */
    unsigned tlb_replacement = kTlbReplLru;
    /**
     * Max TLB entry reach, log2 pages (both per-CU and shared IOMMU
     * TLBs); 0 keeps the classic one-page entries, 9 admits full 2 MB
     * entries.  See tlb/tlb.hh.
     */
    unsigned tlb_max_reach = 0;
    /** Buddy-merge contiguous TLB entries at insertion time. */
    bool tlb_merge_on_insert = false;
    /**
     * IOMMU fill-time subregion-contiguity coalescing depth (log2
     * pages, capped by tlb_max_reach); 0 disables.  3 = one PTE line.
     */
    unsigned coalesce_max_reach = 0;
    /**
     * Victima-style stashing: per-CU-TLB capacity evictions park their
     * translation in the L2 data array, and a per-CU TLB miss probes
     * the stash before paying the PCIe hop to the IOMMU.
     */
    bool victima_stash = false;
    /**
     * Anonymous-mapping page policy (Vm::PagePolicy): 0 maps every
     * page at 4 KB, 1 backs 2 MB-aligned interiors with 2 MB pages.
     */
    unsigned vm_page_policy = 0;
    IommuParams iommu;
    FbtParams fbt;
    /** Use the FBT as a second-level TLB ("VC With OPT"). */
    bool fbt_as_second_level_tlb = false;
    /**
     * Dynamic synonym remapping table entries (§4.3 extension for
     * synonym-heavy future systems); 0 disables it.
     */
    unsigned synonym_remap_entries = 0;

    /**
     * Dance-hall NoC injection limit: line requests a CU can inject
     * per cycle (0 = unlimited, the default used for the paper-figure
     * calibration).  When set, a divergent 32-line memory instruction
     * injects over 32/rate cycles instead of instantaneously.
     */
    double cu_injection_rate = 0.0;

    // --- Memory ---
    Dram::Params dram; ///< 192 GB/s @ 700 MHz ≈ 274 B/cycle (Table 1).
    std::uint64_t phys_mem_bytes = std::uint64_t{4} << 30;

    // --- Instrumentation ---
    /** Record TLB-entry and cache-line lifetimes (Figure 12). */
    bool track_lifetimes = false;
    /** Classify per-CU TLB misses by cache residency (Figure 2). */
    bool classify_tlb_misses = true;

    // --- Host-side fast paths ---
    /**
     * Last-translation memo in every TLB (per-CU and shared IOMMU):
     * skip the associative scan when the previous page repeats.  Stats
     * are bit-identical either way; off exists for A/B testing.
     */
    bool translation_memo = true;

    /** The nested IommuParams with the memo and reach knobs applied. */
    IommuParams
    iommuParams() const
    {
        IommuParams p = iommu;
        p.tlb_memo = translation_memo;
        p.tlb_max_reach = tlb_max_reach;
        p.tlb_merge_on_insert = tlb_merge_on_insert;
        p.coalesce_max_reach = coalesce_max_reach;
        p.tlb_fill_policy = iommu_tlb_fill_policy;
        p.tlb_replacement = tlb_replacement;
        return p;
    }
};

} // namespace gvc

#endif // GVC_MMU_SOC_CONFIG_HH
