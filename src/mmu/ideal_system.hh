/**
 * @file
 * IDEAL MMU design (§3, Figure 4): translation with infinite capacity,
 * infinite bandwidth, and minimal latency.  Modeled as free, immediate
 * translation in front of the physical cache pipeline, which upper-bounds
 * every realizable MMU and matches the paper's normalization target.
 */

#ifndef GVC_MMU_IDEAL_SYSTEM_HH
#define GVC_MMU_IDEAL_SYSTEM_HH

#include "gpu/cu.hh"
#include "mem/vm.hh"
#include "mmu/boundary.hh"
#include "mmu/injection.hh"
#include "mmu/phys_caches.hh"

namespace gvc
{

/** Physical hierarchy with zero-cost address translation. */
class IdealMmuSystem final : public GpuMemInterface
{
  public:
    IdealMmuSystem(SimContext &ctx, const SocConfig &cfg, Vm &vm,
                   Dram &dram)
        : vm_(vm), caches_(ctx, cfg, dram),
          injection_(ctx, cfg.gpu.num_cus, cfg.cu_injection_rate)
    {
    }

    void
    access(unsigned cu_id, Asid asid, Vaddr line_va, bool is_store,
           Callback done) override
    {
        const auto t = vm_.translate(asid, line_va);
        if (!t)
            fatal("IdealMmuSystem: access to unmapped address");
        const Paddr line_pa =
            pageBase(t->ppn) | (line_va & kPageMask & ~kLineMask);
        injection_.inject(cu_id, [this, cu_id, line_pa, is_store,
                                  done = std::move(done)]() mutable {
            caches_.accessL1(cu_id, line_pa, is_store, std::move(done));
        });
    }

    PhysCaches &caches() { return caches_; }
    const PhysCaches &caches() const { return caches_; }

    /**
     * Kernel boundary (§4).  Translation is free here, so only the cache
     * flags matter; a TLB shootdown is a no-op by construction.
     */
    void
    applyBoundary(const BoundaryPolicy &p)
    {
        caches_.boundaryFlush(p.flush_l1, p.flush_l2);
    }

  private:
    Vm &vm_;
    PhysCaches caches_;
    CuInjectionPorts injection_;
};

} // namespace gvc

#endif // GVC_MMU_IDEAL_SYSTEM_HH
