/**
 * @file
 * Physically-tagged GPU cache pipeline shared by the IDEAL and baseline
 * MMU designs (and the physical L2 of the L1-only virtual-cache design):
 * per-CU write-through-no-allocate L1s in front of a banked, write-back,
 * write-allocate shared L2, backed by a directory hop and DRAM.
 */

#ifndef GVC_MMU_PHYS_CACHES_HH
#define GVC_MMU_PHYS_CACHES_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "cache/bank_port.hh"
#include "cache/cache_array.hh"
#include "cache/directory.hh"
#include "cache/mshr.hh"
#include "mem/dram.hh"
#include "mmu/soc_config.hh"
#include "sim/sim_context.hh"

namespace gvc
{

/**
 * The physical cache hierarchy.  Callers provide already-translated
 * line-aligned physical addresses; completion callbacks fire when load
 * data returns to the CU (including the return NoC hop) or when a store
 * has been accepted by the L2.
 */
class PhysCaches
{
  public:
    PhysCaches(SimContext &ctx, const SocConfig &cfg, Dram &dram)
        : ctx_(ctx), cfg_(cfg), dram_(dram),
          dir_(ctx, dram, Directory::Params{cfg.dir_latency}),
          l2_(CacheParams{cfg.l2_size, cfg.l2_assoc, unsigned(kLineSize),
                          /*write_back=*/true, /*write_allocate=*/true,
                          cfg.track_lifetimes})
    {
        // External probes invalidate by physical address directly.
        dir_.setProbeSink(DirNode::kGpu, [this](Paddr line, bool inv) {
            ProbeOutcome out;
            if (inv) {
                if (auto info = l2_.invalidateLine(0, line)) {
                    out.had_line = true;
                    out.was_dirty = info->dirty;
                }
                for (auto &l1 : l1s_)
                    if (l1->invalidateLine(0, line))
                        out.had_line = true;
            } else {
                out.had_line = l2_.present(0, line);
            }
            return out;
        });
        l1s_.reserve(cfg.gpu.num_cus);
        for (unsigned i = 0; i < cfg.gpu.num_cus; ++i) {
            l1s_.push_back(std::make_unique<CacheArray>(
                CacheParams{cfg.l1_size, cfg.l1_assoc, unsigned(kLineSize),
                            /*write_back=*/false, /*write_allocate=*/false,
                            cfg.track_lifetimes}));
        }
        banks_.reserve(cfg.l2_banks);
        for (unsigned i = 0; i < cfg.l2_banks; ++i)
            banks_.emplace_back(1.0);
    }

    /**
     * Access starting at the L1 of @p cu.  Stores write through: the L1
     * line is updated on hit but never allocated, and the store always
     * proceeds to the L2.
     */
    void
    accessL1(unsigned cu, Paddr line, bool is_store, Callback done)
    {
        ctx_.eq.scheduleIn(cfg_.l1_latency, [this, cu, line, is_store,
                                             done = std::move(done)]() mutable {
            const bool hit =
                l1s_[cu]->access(0, line, is_store, ctx_.now());
            if (is_store) {
                accessL2(cu, line, true, std::move(done));
            } else if (hit) {
                done();
            } else {
                accessL2(cu, line, false, std::move(done));
            }
        });
    }

    /**
     * Access the shared L2 directly (the L1-only-VC design lands here
     * after translation).  Includes the CU<->L2 NoC hops and the bank
     * port arbitration.
     */
    void
    accessL2(unsigned cu, Paddr line, bool is_store, Callback done,
             bool fill_l1 = true)
    {
        const Tick arrive = ctx_.now() + cfg_.cu_to_l2;
        const unsigned bank = bankOf(line);
        ctx_.eq.schedule(arrive, [this, cu, line, is_store, bank, fill_l1,
                                  done = std::move(done)]() mutable {
            const Tick start = banks_[bank].acquire(ctx_.now());
            ctx_.eq.schedule(
                start + cfg_.l2_latency,
                [this, cu, line, is_store, fill_l1,
                 done = std::move(done)]() mutable {
                    l2Access(cu, line, is_store, std::move(done), fill_l1);
                });
        });
    }

    CacheArray &l1(unsigned cu) { return *l1s_[cu]; }
    const CacheArray &l1(unsigned cu) const { return *l1s_[cu]; }
    CacheArray &l2() { return l2_; }
    const CacheArray &l2() const { return l2_; }
    MshrTable &mshrs() { return mshrs_; }
    Directory &directory() { return dir_; }

    /**
     * Kernel-boundary invalidation: drop the selected levels without
     * modelling writeback traffic or bumping result counters — the
     * boundary is a harness-level reset, not a simulated event, so a
     * flushed warm run must stay bit-identical to a fresh cold run.
     * (The L2 is write-back; its dirty lines are dropped silently.)
     */
    void
    boundaryFlush(bool flush_l1, bool flush_l2)
    {
        if (flush_l1) {
            for (auto &l1 : l1s_)
                l1->invalidateAll();
        }
        if (flush_l2)
            l2_.invalidateAll();
    }

    /** Record lifetimes of lines still resident (end of simulation). */
    void
    flushLifetimes()
    {
        for (auto &l1 : l1s_)
            l1->flushLifetimes();
        l2_.flushLifetimes();
    }

  private:
    unsigned
    bankOf(Paddr line) const
    {
        return unsigned((line >> kLineShift) % cfg_.l2_banks);
    }

    void
    l2Access(unsigned cu, Paddr line, bool is_store, Callback done,
             bool fill_l1)
    {
        const bool hit = l2_.access(0, line, is_store, ctx_.now());
        if (hit) {
            if (!is_store && fill_l1)
                fillL1(cu, line);
            ctx_.eq.scheduleIn(cfg_.cu_to_l2, std::move(done));
            return;
        }

        // Miss: merge with any outstanding fill of the same line.
        const std::uint64_t key = line >> kLineShift;
        pending_store_[key] = pending_store_[key] || is_store;
        // Built as a WakeFn up front: allocate() takes an rvalue ref,
        // and a raw lambda would be converted through a temporary that
        // steals the captures even when the result is kPrimary.
        MshrTable::WakeFn waiter = [this, cu, line, is_store, fill_l1,
                                    done = std::move(done)]() mutable {
            if (!is_store && fill_l1)
                fillL1(cu, line);
            ctx_.eq.scheduleIn(cfg_.cu_to_l2, std::move(done));
        };
        const auto res = mshrs_.allocate(key, std::move(waiter));
        if (res == MshrTable::Result::kSecondary)
            return;

        // Primary: fetch through the directory (exclusive for stores).
        const bool exclusive = pending_store_[key];
        ctx_.eq.scheduleIn(cfg_.l2_to_dir, [this, key, line, exclusive] {
            dir_.fetch(DirNode::kGpu, line, exclusive,
                       [this, key, line] { fillComplete(key, line); });
        });
        // The primary's own completion rides the MSHR like a secondary.
        mshrs_.allocate(key, std::move(waiter));
    }

    void
    fillComplete(std::uint64_t key, Paddr line)
    {
        const bool dirty = pending_store_[key];
        pending_store_.erase(key);
        const auto victim = l2_.insert(0, line, kPermRead | kPermWrite,
                                       dirty, ctx_.now());
        if (victim && victim->dirty)
            dir_.writeback(DirNode::kGpu, victim->line_addr);
        mshrs_.complete(key);
    }

    void
    fillL1(unsigned cu, Paddr line)
    {
        l1s_[cu]->insert(0, line, kPermRead | kPermWrite, false,
                         ctx_.now());
    }

    SimContext &ctx_;
    const SocConfig &cfg_;
    Dram &dram_;
    Directory dir_;
    std::vector<std::unique_ptr<CacheArray>> l1s_;
    CacheArray l2_;
    std::vector<BankPort> banks_;
    MshrTable mshrs_;
    std::unordered_map<std::uint64_t, bool> pending_store_;
};

} // namespace gvc

#endif // GVC_MMU_PHYS_CACHES_HH
