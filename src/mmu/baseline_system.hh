/**
 * @file
 * Baseline MMU design (§2.1, Figure 1): physically-tagged caches behind
 * per-CU TLBs; misses travel to the shared, bandwidth-limited IOMMU TLB
 * over a PCIe-protocol path; IOMMU misses engage the 16-thread page-table
 * walker with its page-walk cache.
 *
 * Matching the paper's accounting (Figure 3 equates IOMMU TLB accesses
 * with per-CU TLB misses), concurrent misses to the same page are not
 * merged by default; an optional merge mode exists for ablation.
 *
 * Also hosts the Figure 2 instrumentation: every per-CU TLB miss is
 * classified by where the data currently resides (L1 hit / L2 hit / L2
 * miss) via side-effect-free presence probes.
 */

#ifndef GVC_MMU_BASELINE_SYSTEM_HH
#define GVC_MMU_BASELINE_SYSTEM_HH

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "gpu/cu.hh"
#include "mem/vm.hh"
#include "mmu/boundary.hh"
#include "mmu/injection.hh"
#include "mmu/phys_caches.hh"
#include "tlb/iommu.hh"
#include "tlb/tlb.hh"

namespace gvc
{

/** Figure 2 classification counters. */
struct TlbMissBreakdown
{
    std::uint64_t miss_l1_hit = 0;
    std::uint64_t miss_l2_hit = 0;
    std::uint64_t miss_l2_miss = 0;

    std::uint64_t
    total() const
    {
        return miss_l1_hit + miss_l2_hit + miss_l2_miss;
    }
};

/** The baseline physical-cache MMU design. */
class BaselineMmuSystem final : public GpuMemInterface
{
  public:
    /**
     * @param merge_tlb_misses  Merge concurrent per-CU TLB misses to the
     *        same page into one IOMMU request (ablation; default off to
     *        match the paper's accounting).
     */
    BaselineMmuSystem(SimContext &ctx, const SocConfig &cfg, Vm &vm,
                      Dram &dram, bool merge_tlb_misses = false)
        : ctx_(ctx), cfg_(cfg), vm_(vm), caches_(ctx, cfg, dram),
          iommu_(ctx, vm, dram, cfg.iommuParams()),
          injection_(ctx, cfg.gpu.num_cus, cfg.cu_injection_rate),
          merge_tlb_misses_(merge_tlb_misses)
    {
        tlbs_.reserve(cfg.gpu.num_cus);
        for (unsigned i = 0; i < cfg.gpu.num_cus; ++i) {
            tlbs_.push_back(std::make_unique<Tlb>(
                TlbParams{cfg.percu_tlb_entries, cfg.percu_tlb_assoc,
                          cfg.percu_tlb_infinite, cfg.track_lifetimes,
                          cfg.translation_memo, cfg.tlb_max_reach,
                          cfg.tlb_merge_on_insert,
                          cfg.percu_tlb_fill_policy,
                          cfg.tlb_replacement}));
            if (cfg.victima_stash) {
                tlbs_.back()->setEvictHook(
                    [this](Asid asid, Vpn vpn, Ppn ppn, Perms perms) {
                        stashInsert(asid, vpn, ppn, perms);
                    });
            }
        }
        vm.addPageShootdownListener([this](Asid asid, Vpn vpn) {
            for (auto &tlb : tlbs_)
                tlb->invalidatePage(asid, vpn, ctx_.now());
            stashInvalidatePage(asid, vpn);
        });
        vm.addFullShootdownListener([this](Asid asid) {
            for (auto &tlb : tlbs_)
                tlb->invalidateAsid(asid, ctx_.now());
            stashInvalidateAsid(asid);
        });
    }

    void
    access(unsigned cu_id, Asid asid, Vaddr line_va, bool is_store,
           Callback done) override
    {
        injection_.inject(cu_id, [this, cu_id, asid, line_va, is_store,
                                  done = std::move(done)]() mutable {
            ctx_.eq.scheduleIn(
                cfg_.percu_tlb_latency,
                [this, cu_id, asid, line_va, is_store,
                 done = std::move(done)]() mutable {
                    afterTlb(cu_id, asid, line_va, is_store,
                             std::move(done));
                });
        });
    }

    Tlb &perCuTlb(unsigned cu) { return *tlbs_[cu]; }
    const Tlb &perCuTlb(unsigned cu) const { return *tlbs_[cu]; }

    /** Fold per-CU TLB entry reference counts into @p percu. */
    void
    collectTlbRefs(TlbRefHist &percu)
    {
        for (auto &tlb : tlbs_) {
            tlb->flushResidentRefs();
            percu.merge(tlb->refHist());
        }
    }

    Iommu &iommu() { return iommu_; }
    const Iommu &iommu() const { return iommu_; }
    PhysCaches &caches() { return caches_; }
    const PhysCaches &caches() const { return caches_; }
    const TlbMissBreakdown &breakdown() const { return breakdown_; }
    const SocConfig &config() const { return cfg_; }

    /** Aggregate per-CU TLB accesses across CUs. */
    std::uint64_t
    tlbAccesses() const
    {
        std::uint64_t n = 0;
        for (const auto &t : tlbs_)
            n += t->accesses();
        return n;
    }

    /** Aggregate per-CU TLB misses across CUs. */
    std::uint64_t
    tlbMisses() const
    {
        std::uint64_t n = 0;
        for (const auto &t : tlbs_)
            n += t->misses();
        return n;
    }

    double
    tlbMissRatio() const
    {
        const auto acc = tlbAccesses();
        return acc ? double(tlbMisses()) / double(acc) : 0.0;
    }

    /** Aggregate per-CU reach-entry (reach > 0) hits across CUs. */
    std::uint64_t
    tlbReachHits() const
    {
        std::uint64_t n = 0;
        for (const auto &t : tlbs_)
            n += t->reachHits();
        return n;
    }

    /** Aggregate per-CU reach-entry fills across CUs. */
    std::uint64_t
    tlbReachFills() const
    {
        std::uint64_t n = 0;
        for (const auto &t : tlbs_)
            n += t->reachFills();
        return n;
    }

    /** Aggregate per-CU buddy merges across CUs. */
    std::uint64_t
    tlbMerges() const
    {
        std::uint64_t n = 0;
        for (const auto &t : tlbs_)
            n += t->merges();
        return n;
    }

    /** Aggregate per-CU predicted-dead fill bypasses across CUs. */
    std::uint64_t
    tlbFillBypasses() const
    {
        std::uint64_t n = 0;
        for (const auto &t : tlbs_)
            n += t->fillBypasses();
        return n;
    }

    /** Aggregate per-CU dead-first evictions across CUs. */
    std::uint64_t
    tlbDeadFirstEvictions() const
    {
        std::uint64_t n = 0;
        for (const auto &t : tlbs_)
            n += t->deadFirstEvictions();
        return n;
    }

    /** Aggregate per-CU predictor true positives across CUs. */
    std::uint64_t
    tlbPredTruePos() const
    {
        std::uint64_t n = 0;
        for (const auto &t : tlbs_)
            n += t->predTruePos();
        return n;
    }

    /** Aggregate per-CU predictor false positives across CUs. */
    std::uint64_t
    tlbPredFalsePos() const
    {
        std::uint64_t n = 0;
        for (const auto &t : tlbs_)
            n += t->predFalsePos();
        return n;
    }

    std::uint64_t victimaStashes() const { return victima_stashes_.value; }
    std::uint64_t victimaProbes() const { return victima_probes_.value; }
    std::uint64_t victimaHits() const { return victima_hits_.value; }

    /**
     * Kernel boundary (§4).  A shootdown invalidates the translation
     * path end to end (per-CU TLBs, IOMMU TLB, page-walk cache) but the
     * physically-tagged caches legally survive it — the baseline's data
     * is immune to address-space changes, which is exactly the warm-path
     * asymmetry versus the VC designs that fig_warm measures.
     */
    void
    applyBoundary(const BoundaryPolicy &p)
    {
        caches_.boundaryFlush(p.flush_l1, p.flush_l2);
        if (p.flush_l2)
            stash_.clear(); // The array already dropped the lines.
        if (p.shootdown_tlbs) {
            for (auto &tlb : tlbs_)
                tlb->invalidateAll(ctx_.now());
            iommu_.invalidateAll();
            iommu_.ptw().pwc().invalidateAll();
            // The stash is translation state and dies with the TLBs.
            dropStash();
        }
    }

  private:
    void
    afterTlb(unsigned cu_id, Asid asid, Vaddr line_va, bool is_store,
             Callback done)
    {
        const Vpn vpn = pageOf(line_va);
        if (auto hit = tlbs_[cu_id]->lookup(asid, vpn, ctx_.now())) {
            proceed(cu_id, hit->ppn, line_va, is_store, std::move(done));
            return;
        }

        if (cfg_.classify_tlb_misses)
            classify(cu_id, asid, line_va);

        // Victima-style stash probe: before paying the PCIe hop to the
        // IOMMU, check whether an earlier capacity eviction parked this
        // translation in the L2 data array.  The side map makes the
        // probe precise — only addresses we actually stashed reach the
        // array — so baseline configurations (victima_stash off) never
        // touch the L2 here.
        if (cfg_.victima_stash) {
            const auto it = stash_.find(stashAddr(asid, vpn));
            if (it != stash_.end()) {
                ++victima_probes_;
                const Paddr addr = it->first;
                if (caches_.l2().access(0, addr, false, ctx_.now())) {
                    // Hit: re-promote the translation into the TLB and
                    // consume the stash copy.  Cost is one L2 round
                    // trip instead of the full IOMMU translation.
                    ++victima_hits_;
                    const StashEntry e = it->second;
                    stash_.erase(it);
                    caches_.l2().invalidateLine(0, addr);
                    const Tick lat = 2 * cfg_.cu_to_l2 + cfg_.l2_latency;
                    ctx_.eq.scheduleIn(
                        lat, [this, cu_id, asid, vpn, e, line_va, is_store,
                              done = std::move(done)]() mutable {
                            tlbs_[cu_id]->insert(
                                asid, vpn,
                                TlbLookup{e.ppn, e.perms, false},
                                ctx_.now());
                            proceed(cu_id, e.ppn, line_va, is_store,
                                    std::move(done));
                        });
                    return;
                }
                // The stash line was silently displaced by an ordinary
                // data fill; drop the stale side entry and walk.  (Such
                // misses are rare; their probe latency is folded into
                // the much longer IOMMU path below.)
                stash_.erase(it);
            }
        }

        if (merge_tlb_misses_) {
            const std::uint64_t key =
                (std::uint64_t(cu_id) << 56) |
                (std::uint64_t(asid) << 40) | vpn;
            auto it = pending_.find(key);
            if (it != pending_.end()) {
                it->second.push_back(Waiter{line_va, is_store,
                                            std::move(done)});
                return;
            }
            pending_[key].push_back(Waiter{line_va, is_store,
                                           std::move(done)});
            requestTranslation(cu_id, asid, vpn, key);
            return;
        }

        // Unmerged: each miss is one IOMMU request (paper accounting).
        ctx_.eq.scheduleIn(
            cfg_.cu_to_iommu,
            [this, cu_id, asid, vpn, line_va, is_store,
             done = std::move(done)]() mutable {
                iommu_.translate(
                    asid, vpn,
                    [this, cu_id, asid, vpn, line_va, is_store,
                     done = std::move(done)](
                        const IommuResponse &resp) mutable {
                        ctx_.eq.scheduleIn(
                            cfg_.cu_to_iommu,
                            [this, cu_id, asid, vpn, line_va, is_store,
                             resp, done = std::move(done)]() mutable {
                                onTranslation(cu_id, asid, vpn, resp,
                                              line_va, is_store,
                                              std::move(done));
                            });
                    });
            });
    }

    void
    requestTranslation(unsigned cu_id, Asid asid, Vpn vpn,
                       std::uint64_t key)
    {
        ctx_.eq.scheduleIn(cfg_.cu_to_iommu, [this, cu_id, asid, vpn,
                                              key] {
            iommu_.translate(asid, vpn, [this, cu_id, asid, vpn, key](
                                            const IommuResponse &resp) {
                ctx_.eq.scheduleIn(cfg_.cu_to_iommu,
                                   [this, cu_id, asid, vpn, key, resp] {
                                       completeMerged(cu_id, asid, vpn,
                                                      key, resp);
                                   });
            });
        });
    }

    void
    completeMerged(unsigned cu_id, Asid asid, Vpn vpn, std::uint64_t key,
                   const IommuResponse &resp)
    {
        installAndCheck(cu_id, asid, vpn, resp);
        auto waiters = std::move(pending_[key]);
        pending_.erase(key);
        for (auto &w : waiters)
            proceed(cu_id, resp.ppn, w.line_va, w.is_store,
                    std::move(w.done));
    }

    void
    onTranslation(unsigned cu_id, Asid asid, Vpn vpn,
                  const IommuResponse &resp, Vaddr line_va, bool is_store,
                  Callback done)
    {
        installAndCheck(cu_id, asid, vpn, resp);
        proceed(cu_id, resp.ppn, line_va, is_store, std::move(done));
    }

    void
    installAndCheck(unsigned cu_id, Asid asid, Vpn vpn,
                    const IommuResponse &resp)
    {
        if (resp.fault)
            fatal("BaselineMmuSystem: unhandled GPU page fault");
        tlbs_[cu_id]->insert(asid, vpn,
                             TlbLookup{resp.ppn, resp.perms, resp.large,
                                       resp.reach, resp.base_vpn,
                                       resp.base_ppn},
                             ctx_.now());
    }

    // --- Victima-style L2 translation stash ---
    //
    // Evicted per-CU TLB translations are parked in the L2 data array
    // under synthetic line addresses (bit 63 marks stash lines, which
    // cannot collide with real physical lines below phys_mem_bytes).
    // The side map mirrors array residency so misses stay cheap; the
    // array itself provides the capacity pressure — ordinary data fills
    // displace stash lines silently, exactly as in Victima.

    static Paddr
    stashAddr(Asid asid, Vpn vpn)
    {
        return (std::uint64_t{1} << 63) | (std::uint64_t(asid) << 44) |
               (vpn << kLineShift);
    }

    void
    stashInsert(Asid asid, Vpn vpn, Ppn ppn, Perms perms)
    {
        ++victima_stashes_;
        const Paddr addr = stashAddr(asid, vpn);
        stash_[addr] = StashEntry{ppn, perms};
        const auto victim =
            caches_.l2().insert(0, addr, kPermRead, false, ctx_.now());
        if (!victim)
            return;
        if (victim->line_addr >> 63)
            stash_.erase(victim->line_addr);
        else if (victim->dirty)
            caches_.directory().writeback(DirNode::kGpu,
                                          victim->line_addr);
    }

    void
    stashInvalidatePage(Asid asid, Vpn vpn)
    {
        if (stash_.empty())
            return;
        const Paddr addr = stashAddr(asid, vpn);
        if (stash_.erase(addr))
            caches_.l2().invalidateLine(0, addr);
    }

    void
    stashInvalidateAsid(Asid asid)
    {
        for (auto it = stash_.begin(); it != stash_.end();) {
            if (Asid((it->first >> 44) & 0xffff) == asid) {
                caches_.l2().invalidateLine(0, it->first);
                it = stash_.erase(it);
            } else {
                ++it;
            }
        }
    }

    /** TLB-path shootdown of the stash (kernel boundary). */
    void
    dropStash()
    {
        for (const auto &kv : stash_)
            caches_.l2().invalidateLine(0, kv.first);
        stash_.clear();
    }

    void
    proceed(unsigned cu_id, Ppn ppn, Vaddr line_va, bool is_store,
            Callback done)
    {
        const Paddr line_pa =
            pageBase(ppn) | (line_va & kPageMask & ~kLineMask);
        caches_.accessL1(cu_id, line_pa, is_store, std::move(done));
    }

    /** Figure 2: classify a TLB miss by current data residency. */
    void
    classify(unsigned cu_id, Asid asid, Vaddr line_va)
    {
        const auto t = vm_.translate(asid, line_va);
        if (!t)
            return;
        const Paddr line_pa =
            pageBase(t->ppn) | (line_va & kPageMask & ~kLineMask);
        if (caches_.l1(cu_id).present(0, line_pa))
            ++breakdown_.miss_l1_hit;
        else if (caches_.l2().present(0, line_pa))
            ++breakdown_.miss_l2_hit;
        else
            ++breakdown_.miss_l2_miss;
    }

    struct Waiter
    {
        Vaddr line_va;
        bool is_store;
        Callback done;
    };

    /** Payload of a stashed translation, keyed by stash line address. */
    struct StashEntry
    {
        Ppn ppn;
        Perms perms;
    };

    SimContext &ctx_;
    SocConfig cfg_;
    Vm &vm_;
    PhysCaches caches_;
    Iommu iommu_;
    CuInjectionPorts injection_;
    bool merge_tlb_misses_;
    std::vector<std::unique_ptr<Tlb>> tlbs_;
    std::unordered_map<std::uint64_t, std::vector<Waiter>> pending_;
    TlbMissBreakdown breakdown_;
    /// Victima side map: stash line address -> stashed translation.
    std::unordered_map<Paddr, StashEntry> stash_;
    Counter victima_stashes_;
    Counter victima_probes_;
    Counter victima_hits_;
};

} // namespace gvc

#endif // GVC_MMU_BASELINE_SYSTEM_HH
