/**
 * @file
 * Kernel-boundary policies (paper §4).  When one kernel finishes and the
 * next launches on the same device, the runtime chooses how much
 * translation and cache state survives: everything (back-to-back kernels
 * of one process), the L1 caches only, or nothing (a full TLB shootdown,
 * e.g. on a context switch).  Each MMU system interprets a policy
 * according to its own inclusivity rules — see applyBoundary() in the
 * mmu system headers and core/virtual_hierarchy.hh.
 *
 * Policies are encoded into a single byte so traces (.gvct v2) can carry
 * them; the byte layout is part of the trace format and must not change.
 */

#ifndef GVC_MMU_BOUNDARY_HH
#define GVC_MMU_BOUNDARY_HH

#include <cstdint>
#include <optional>
#include <string>

namespace gvc
{

/**
 * What to drop at a kernel boundary.  The flags are requests; a design
 * may legally drop *more* than requested to preserve its invariants
 * (e.g. the full-VC design's FBT is inclusive of the caches, so dropping
 * the FBT forces the caches out too), but never less.
 */
struct BoundaryPolicy
{
    bool flush_l1 = false;       ///< Invalidate every per-CU L1 cache.
    bool flush_l2 = false;       ///< Invalidate the shared L2 cache.
    bool flush_fbt = false;      ///< Drop the FBT / synonym state (VC).
    bool shootdown_tlbs = false; ///< Invalidate per-CU TLBs, IOMMU TLB, PWC.

    /// Keep everything: back-to-back launches of the same process.
    static BoundaryPolicy keepAll() { return {}; }

    /// Drop only the per-CU L1 state (cheap local invalidation).
    static BoundaryPolicy flushL1() { return {true, false, false, false}; }

    /// Drop all cache and translation state: kernel k starts cold.
    static BoundaryPolicy flushAll() { return {true, true, true, true}; }

    /// TLB shootdown only; physical caches may legally survive.
    static BoundaryPolicy shootdown()
    {
        return {false, false, false, true};
    }

    bool
    any() const
    {
        return flush_l1 || flush_l2 || flush_fbt || shootdown_tlbs;
    }

    /** One byte, stable trace encoding (bit per flag). */
    std::uint8_t
    encode() const
    {
        return std::uint8_t((flush_l1 ? 1u : 0u) | (flush_l2 ? 2u : 0u) |
                            (flush_fbt ? 4u : 0u) |
                            (shootdown_tlbs ? 8u : 0u));
    }

    /** Inverse of encode(); nullopt when @p b has unknown bits set. */
    static std::optional<BoundaryPolicy>
    decode(std::uint8_t b)
    {
        if (b >= kBoundaryPolicyLimit)
            return std::nullopt;
        BoundaryPolicy p;
        p.flush_l1 = (b & 1u) != 0;
        p.flush_l2 = (b & 2u) != 0;
        p.flush_fbt = (b & 4u) != 0;
        p.shootdown_tlbs = (b & 8u) != 0;
        return p;
    }

    bool
    operator==(const BoundaryPolicy &o) const
    {
        return encode() == o.encode();
    }
    bool operator!=(const BoundaryPolicy &o) const { return !(*this == o); }

    /// First encoded value that is NOT a valid policy byte.
    static constexpr std::uint8_t kBoundaryPolicyLimit = 0x10;
};

/** Preset name for the CLI/reports; "custom" for other combinations. */
inline const char *
boundaryPolicyName(const BoundaryPolicy &p)
{
    if (p == BoundaryPolicy::keepAll())
        return "keep-all";
    if (p == BoundaryPolicy::flushL1())
        return "flush-l1";
    if (p == BoundaryPolicy::flushAll())
        return "flush-all";
    if (p == BoundaryPolicy::shootdown())
        return "shootdown";
    return "custom";
}

/** Parse a preset name; false when @p name is not a known preset. */
inline bool
boundaryPolicyFromName(const std::string &name, BoundaryPolicy &out)
{
    if (name == "keep-all") {
        out = BoundaryPolicy::keepAll();
    } else if (name == "flush-l1") {
        out = BoundaryPolicy::flushL1();
    } else if (name == "flush-all") {
        out = BoundaryPolicy::flushAll();
    } else if (name == "shootdown") {
        out = BoundaryPolicy::shootdown();
    } else {
        return false;
    }
    return true;
}

} // namespace gvc

#endif // GVC_MMU_BOUNDARY_HH
