/**
 * @file
 * L1-only virtual cache design (§5.4): virtually-tagged per-CU L1s in
 * front of per-CU TLBs and a physically-tagged shared L2.  This mirrors
 * classic CPU virtual-L1 proposals: L1 hits skip translation entirely,
 * but every L1 miss still needs the TLB before reaching the physical L2.
 *
 * Synonym correctness uses a line-granularity leading-address registry
 * (in the spirit of the ASDT): the first virtual name to cache a
 * physical line becomes its leading name; accesses under other names
 * replay with the leading name.  The registry is functional bookkeeping
 * — the paper's workloads exhibit no synonyms, so it adds no timing.
 */

#ifndef GVC_MMU_L1VC_SYSTEM_HH
#define GVC_MMU_L1VC_SYSTEM_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "cache/cache_array.hh"
#include "gpu/cu.hh"
#include "mem/vm.hh"
#include "mmu/boundary.hh"
#include "mmu/injection.hh"
#include "mmu/phys_caches.hh"
#include "tlb/iommu.hh"
#include "tlb/tlb.hh"

namespace gvc
{

/** Leading virtual name per physical line, refcounted across L1s. */
class LineLeadingRegistry
{
  public:
    struct Leading
    {
        Asid asid;
        Vaddr line_va;
    };

    /** Current leading name of a physical line, if any copy is cached. */
    std::optional<Leading>
    lookup(Paddr line_pa) const
    {
        auto it = map_.find(line_pa >> kLineShift);
        if (it == map_.end())
            return std::nullopt;
        return Leading{it->second.asid, it->second.line_va};
    }

    /** A copy of @p line_pa was cached under (asid, line_va). */
    void
    fill(Paddr line_pa, Asid asid, Vaddr line_va)
    {
        auto &e = map_[line_pa >> kLineShift];
        if (e.refs == 0) {
            e.asid = asid;
            e.line_va = line_va;
        }
        ++e.refs;
    }

    /** One cached copy of @p line_pa went away. */
    void
    evict(Paddr line_pa)
    {
        auto it = map_.find(line_pa >> kLineShift);
        if (it == map_.end())
            return;
        if (--it->second.refs == 0)
            map_.erase(it);
    }

    std::size_t size() const { return map_.size(); }

    /** Forget every leading name (the L1s were fully invalidated). */
    void clear() { map_.clear(); }

  private:
    struct Entry
    {
        Asid asid = 0;
        Vaddr line_va = 0;
        std::uint32_t refs = 0;
    };

    std::unordered_map<std::uint64_t, Entry> map_;
};

/** The L1-only virtual cache design. */
class L1OnlyVcSystem final : public GpuMemInterface
{
  public:
    L1OnlyVcSystem(SimContext &ctx, const SocConfig &cfg, Vm &vm,
                   Dram &dram)
        : ctx_(ctx), cfg_(cfg), vm_(vm), caches_(ctx, cfg, dram),
          iommu_(ctx, vm, dram, cfg.iommuParams()),
          injection_(ctx, cfg.gpu.num_cus, cfg.cu_injection_rate)
    {
        for (unsigned i = 0; i < cfg.gpu.num_cus; ++i) {
            l1s_.push_back(std::make_unique<CacheArray>(
                CacheParams{cfg.l1_size, cfg.l1_assoc, unsigned(kLineSize),
                            /*write_back=*/false, /*write_allocate=*/false,
                            cfg.track_lifetimes}));
            tlbs_.push_back(std::make_unique<Tlb>(
                TlbParams{cfg.percu_tlb_entries, cfg.percu_tlb_assoc,
                          cfg.percu_tlb_infinite, cfg.track_lifetimes,
                          cfg.translation_memo, cfg.tlb_max_reach,
                          cfg.tlb_merge_on_insert,
                          cfg.percu_tlb_fill_policy,
                          cfg.tlb_replacement}));
        }
        vm.addPageShootdownListener([this](Asid asid, Vpn vpn) {
            for (unsigned cu = 0; cu < l1s_.size(); ++cu) {
                tlbs_[cu]->invalidatePage(asid, vpn, ctx_.now());
                l1s_[cu]->invalidatePage(
                    asid, pageBase(vpn), [this](const CacheLineInfo &info) {
                        registryEvict(info.asid, info.line_addr);
                    });
            }
        });
        // Full-AS shootdown: the virtual L1s cache lines under this
        // ASID's names, so they must drop whenever its translations do
        // (same rule as the per-page path above, whole address space).
        vm.addFullShootdownListener([this](Asid asid) {
            for (unsigned cu = 0; cu < l1s_.size(); ++cu) {
                tlbs_[cu]->invalidateAsid(asid, ctx_.now());
                l1s_[cu]->invalidateAsid(
                    asid, [this](const CacheLineInfo &info) {
                        registryEvict(info.asid, info.line_addr);
                    });
            }
        });
    }

    void
    access(unsigned cu_id, Asid asid, Vaddr line_va, bool is_store,
           Callback done) override
    {
        injection_.inject(cu_id, [this, cu_id, asid, line_va, is_store,
                                  done = std::move(done)]() mutable {
            ctx_.eq.scheduleIn(cfg_.l1_latency,
                               [this, cu_id, asid, line_va, is_store,
                                done = std::move(done)]() mutable {
                                   l1Access(cu_id, asid, line_va,
                                            is_store, std::move(done));
                               });
        });
    }

    Tlb &perCuTlb(unsigned cu) { return *tlbs_[cu]; }
    CacheArray &l1(unsigned cu) { return *l1s_[cu]; }

    /** Fold per-CU TLB entry reference counts into @p percu. */
    void
    collectTlbRefs(TlbRefHist &percu)
    {
        for (auto &tlb : tlbs_) {
            tlb->flushResidentRefs();
            percu.merge(tlb->refHist());
        }
    }

    Iommu &iommu() { return iommu_; }
    const Iommu &iommu() const { return iommu_; }
    PhysCaches &caches() { return caches_; }
    std::uint64_t synonymReplays() const { return synonym_replays_.value; }
    LineLeadingRegistry &registry() { return registry_; }

    /**
     * Kernel boundary (§4).  The virtual L1s must go whenever their
     * address space does: a TLB shootdown here also drops the L1s and
     * the leading-name registry (which tracks only L1 contents).  The
     * physical L2 follows the baseline rules and may survive.
     */
    void
    applyBoundary(const BoundaryPolicy &p)
    {
        if (p.flush_l1 || p.shootdown_tlbs) {
            for (auto &l1 : l1s_)
                l1->invalidateAll();
            registry_.clear();
        }
        caches_.boundaryFlush(false, p.flush_l2);
        if (p.shootdown_tlbs) {
            for (auto &tlb : tlbs_)
                tlb->invalidateAll(ctx_.now());
            iommu_.invalidateAll();
            iommu_.ptw().pwc().invalidateAll();
        }
    }

  private:
    void
    l1Access(unsigned cu_id, Asid asid, Vaddr line_va, bool is_store,
             Callback done)
    {
        const auto perms = l1s_[cu_id]->linePerms(asid, line_va);
        const bool usable =
            perms && (!is_store || permsAllow(*perms, kPermWrite));
        if (usable) {
            l1s_[cu_id]->access(asid, line_va, is_store, ctx_.now());
            if (!is_store) {
                done();
                return;
            }
            // Store hit: write through; translation still needed for
            // the physical L2.
        } else if (!perms) {
            l1s_[cu_id]->access(asid, line_va, false, ctx_.now());
        }
        ctx_.eq.scheduleIn(cfg_.percu_tlb_latency,
                           [this, cu_id, asid, line_va, is_store,
                            done = std::move(done)]() mutable {
                               tlbStage(cu_id, asid, line_va, is_store,
                                        std::move(done));
                           });
    }

    void
    tlbStage(unsigned cu_id, Asid asid, Vaddr line_va, bool is_store,
             Callback done)
    {
        const Vpn vpn = pageOf(line_va);
        if (auto hit = tlbs_[cu_id]->lookup(asid, vpn, ctx_.now())) {
            translated(cu_id, asid, line_va, is_store, hit->ppn,
                       hit->perms, std::move(done));
            return;
        }
        ctx_.eq.scheduleIn(
            cfg_.cu_to_iommu,
            [this, cu_id, asid, vpn, line_va, is_store,
             done = std::move(done)]() mutable {
                iommu_.translate(
                    asid, vpn,
                    [this, cu_id, asid, vpn, line_va, is_store,
                     done = std::move(done)](
                        const IommuResponse &resp) mutable {
                        ctx_.eq.scheduleIn(
                            cfg_.cu_to_iommu,
                            [this, cu_id, asid, vpn, line_va, is_store,
                             resp, done = std::move(done)]() mutable {
                                if (resp.fault) {
                                    fatal("L1OnlyVcSystem: unhandled "
                                          "GPU page fault");
                                }
                                tlbs_[cu_id]->insert(
                                    asid, vpn,
                                    TlbLookup{resp.ppn, resp.perms,
                                              resp.large, resp.reach,
                                              resp.base_vpn,
                                              resp.base_ppn},
                                    ctx_.now());
                                translated(cu_id, asid, line_va,
                                           is_store, resp.ppn,
                                           resp.perms, std::move(done));
                            });
                    });
            });
    }

    void
    translated(unsigned cu_id, Asid asid, Vaddr line_va, bool is_store,
               Ppn ppn, Perms page_perms, Callback done)
    {
        const Paddr line_pa =
            pageBase(ppn) | (line_va & kPageMask & ~kLineMask);

        // Synonym discipline: the L1s may cache a physical line under a
        // single leading virtual name only.
        if (const auto leading = registry_.lookup(line_pa)) {
            if (leading->asid != asid || leading->line_va != line_va) {
                ++synonym_replays_;
                access(cu_id, leading->asid, leading->line_va, is_store,
                       std::move(done));
                return;
            }
        }

        caches_.accessL2(
            cu_id, line_pa, is_store,
            [this, cu_id, asid, line_va, line_pa, page_perms, is_store,
             done = std::move(done)]() mutable {
                if (!is_store)
                    fillL1(cu_id, asid, line_va, line_pa, page_perms);
                done();
            },
            /*fill_l1=*/false);
    }

    void
    fillL1(unsigned cu_id, Asid asid, Vaddr line_va, Paddr line_pa,
           Perms perms)
    {
        if (l1s_[cu_id]->present(asid, line_va))
            return; // a racing fill landed first; refs already counted
        const auto victim =
            l1s_[cu_id]->insert(asid, line_va, perms, false, ctx_.now());
        registry_.fill(line_pa, asid, line_va);
        if (victim)
            registryEvict(victim->asid, victim->line_addr);
    }

    /** Translate a victim's virtual name to drop its registry ref. */
    void
    registryEvict(Asid asid, Vaddr line_va)
    {
        const auto t = vm_.translate(asid, line_va);
        if (!t)
            return; // unmapped while cached; shootdown already purged
        const Paddr line_pa =
            pageBase(t->ppn) | (line_va & kPageMask & ~kLineMask);
        registry_.evict(line_pa);
    }

    SimContext &ctx_;
    SocConfig cfg_;
    Vm &vm_;
    PhysCaches caches_;
    Iommu iommu_;
    std::vector<std::unique_ptr<CacheArray>> l1s_;
    std::vector<std::unique_ptr<Tlb>> tlbs_;
    LineLeadingRegistry registry_;
    CuInjectionPorts injection_;
    Counter synonym_replays_;
};

} // namespace gvc

#endif // GVC_MMU_L1VC_SYSTEM_HH
