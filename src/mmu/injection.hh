/**
 * @file
 * Per-CU NoC injection ports for the dance-hall topology (Table 1):
 * when enabled, each CU injects line requests into the network at a
 * bounded rate, so a fully divergent memory instruction's 32 requests
 * spread over time instead of appearing simultaneously.
 */

#ifndef GVC_MMU_INJECTION_HH
#define GVC_MMU_INJECTION_HH

#include <vector>

#include "cache/bank_port.hh"
#include "sim/callback.hh"
#include "sim/sim_context.hh"

namespace gvc
{

/** One injection port per CU; pass rate 0 to disable (zero cost). */
class CuInjectionPorts
{
  public:
    CuInjectionPorts(SimContext &ctx, unsigned num_cus, double rate)
        : ctx_(ctx)
    {
        if (rate <= 0.0)
            return;
        ports_.reserve(num_cus);
        for (unsigned i = 0; i < num_cus; ++i)
            ports_.emplace_back(rate);
    }

    bool enabled() const { return !ports_.empty(); }

    /**
     * Run @p fn when CU @p cu wins its injection slot (immediately when
     * the limit is disabled).
     */
    void
    inject(unsigned cu, Callback fn)
    {
        if (ports_.empty()) {
            fn();
            return;
        }
        const Tick start = ports_[cu].acquire(ctx_.now());
        if (start == ctx_.now())
            fn();
        else
            ctx_.eq.schedule(start, std::move(fn));
    }

    /** Mean cycles requests waited at CU ports (0 when disabled). */
    double
    meanWait() const
    {
        double wait = 0.0;
        std::uint64_t n = 0;
        for (const auto &p : ports_) {
            wait += p.meanWait() * double(p.accesses());
            n += p.accesses();
        }
        return n ? wait / double(n) : 0.0;
    }

  private:
    SimContext &ctx_;
    std::vector<BankPort> ports_;
};

} // namespace gvc

#endif // GVC_MMU_INJECTION_HH
