/**
 * @file
 * Graph workloads: the Pannotia suite stand-ins (bc, color_max,
 * color_maxmin, fw, fw_block, mis, pagerank, pagerank_spmv) and
 * Rodinia's bfs.  Each runs the real algorithm over a synthetic R-MAT
 * graph (or adjacency matrix for Floyd-Warshall) and records the
 * coalescer-level address streams: divergent neighbor gathers, frontier
 * scans, column-strided matrix sweeps.
 */

#ifndef GVC_WORKLOADS_GRAPH_WORKLOADS_HH
#define GVC_WORKLOADS_GRAPH_WORKLOADS_HH

#include <memory>

#include "workloads/workload.hh"

namespace gvc
{

std::unique_ptr<Workload> makeBfs(const WorkloadParams &p);
std::unique_ptr<Workload> makePagerank(const WorkloadParams &p);
std::unique_ptr<Workload> makePagerankSpmv(const WorkloadParams &p);
std::unique_ptr<Workload> makeColorMax(const WorkloadParams &p);
std::unique_ptr<Workload> makeColorMaxMin(const WorkloadParams &p);
std::unique_ptr<Workload> makeMis(const WorkloadParams &p);
std::unique_ptr<Workload> makeBc(const WorkloadParams &p);
std::unique_ptr<Workload> makeFw(const WorkloadParams &p);
std::unique_ptr<Workload> makeFwBlock(const WorkloadParams &p);

} // namespace gvc

#endif // GVC_WORKLOADS_GRAPH_WORKLOADS_HH
