/**
 * @file
 * Extra workloads beyond the paper's evaluated fifteen: Pannotia also
 * ships sssp (single-source shortest paths), and Rodinia ships srad
 * (speckle-reducing anisotropic diffusion).  They are registered under
 * extraWorkloadNames() so the paper's figure benches are unaffected,
 * but are available to gvc_run, examples, and tests.
 */

#ifndef GVC_WORKLOADS_EXTRA_WORKLOADS_HH
#define GVC_WORKLOADS_EXTRA_WORKLOADS_HH

#include <memory>

#include "workloads/workload.hh"

namespace gvc
{

std::unique_ptr<Workload> makeSssp(const WorkloadParams &p);
std::unique_ptr<Workload> makeSrad(const WorkloadParams &p);

} // namespace gvc

#endif // GVC_WORKLOADS_EXTRA_WORKLOADS_HH
