#include "workloads/regular_workloads.hh"

#include <algorithm>
#include <cstdint>
#include <vector>

#include "workloads/kernel_builder.hh"

namespace gvc
{

namespace
{

// =====================================================================
// kmeans: SoA feature streaming, tiny centroid table (lives in cache).
// =====================================================================

class KmeansWorkload final : public Workload
{
  public:
    using Workload::Workload;

    std::string name() const override { return "kmeans"; }
    bool highBandwidth() const override { return false; }

    void
    setup(Vm &vm, Asid asid) override
    {
        asid_ = asid;
        // Floor at four pages of 4-byte elements so a scaled-down run
        // still exercises multiple translation units.
        n_ = scaled(128 * 1024, 4 * (kPageSize / sizeof(std::uint32_t)));
        // AoS point layout: each point's kDims features are contiguous,
        // so a warp's sweep stays within a page or two.
        features_ = allocArray(vm, asid, n_ * kDims);
        centroids_ = allocArray(vm, asid, kClusters * kDims);
        membership_ = allocArray(vm, asid, n_);
    }

    std::vector<KernelLaunch>
    kernels() override
    {
        std::vector<KernelLaunch> launches;
        for (int iter = 0; iter < 2; ++iter) {
            KernelBuilder kb(asid_, params_.grid_warps);
            // Block-contiguous mapping (CUDA-style) preserves each
            // warp's streaming locality; the distance computation to
            // kClusters x kDims centroids dominates the schedule.
            forEachWarpChunkBlocked(
                n_, kb.numWarps(), 8,
                [&](unsigned w, std::uint64_t first, unsigned lanes) {
                    for (unsigned d = 0; d < kDims; ++d) {
                        std::vector<Vaddr> addrs;
                        addrs.reserve(lanes);
                        for (unsigned l = 0; l < lanes; ++l)
                            addrs.push_back(features_.at(
                                (first + l) * kDims + d));
                        kb.add(w, WarpInst::load(std::move(addrs)));
                    }
                    // Centroid table: one hot line set, always cached.
                    kb.loadSeq(w, centroids_, 0, kClusters);
                    kb.compute(w, kClusters * kDims * 2);
                    kb.storeSeq(w, membership_, first, lanes);
                });
            launches.push_back(kb.take());
        }
        return launches;
    }

  private:
    static constexpr unsigned kDims = 8;
    static constexpr unsigned kClusters = 16;

    std::uint64_t n_ = 0;
    DevArray features_;
    DevArray centroids_;
    DevArray membership_;
};

// =====================================================================
// backprop: layered MLP, coalesced weight-matrix streaming.
// =====================================================================

class BackpropWorkload final : public Workload
{
  public:
    using Workload::Workload;

    std::string name() const override { return "backprop"; }
    bool highBandwidth() const override { return false; }

    void
    setup(Vm &vm, Asid asid) override
    {
        asid_ = asid;
        in_ = unsigned(scaled(256, 64));
        hid_ = unsigned(scaled(2048, 256));
        weights_ = allocArray(vm, asid, std::uint64_t(in_) * hid_);
        weight_deltas_ = allocArray(vm, asid, std::uint64_t(in_) * hid_);
        input_ = allocArray(vm, asid, in_);
        hidden_ = allocArray(vm, asid, hid_);
    }

    std::vector<KernelLaunch>
    kernels() override
    {
        std::vector<KernelLaunch> launches;

        // Forward: stream the weight matrix, gather the input vector.
        {
            KernelBuilder kb(asid_, params_.grid_warps);
            forEachWarpChunkBlocked(
                std::uint64_t(in_) * hid_, kb.numWarps(), 8,
                [&](unsigned w, std::uint64_t first, unsigned lanes) {
                    kb.loadSeq(w, weights_, first, lanes);
                    kb.loadSeq(w, input_, first % in_,
                               std::min(lanes, in_));
                    kb.compute(w, 12);
                    if (first % (std::uint64_t(in_) * kWarpLanes) == 0)
                        kb.storeSeq(w, hidden_, (first / in_) % hid_, 1);
                });
            launches.push_back(kb.take());
        }

        // Backward: stream weights again, write the delta matrix.
        {
            KernelBuilder kb(asid_, params_.grid_warps);
            forEachWarpChunkBlocked(
                std::uint64_t(in_) * hid_, kb.numWarps(), 8,
                [&](unsigned w, std::uint64_t first, unsigned lanes) {
                    kb.loadSeq(w, weights_, first, lanes);
                    kb.loadSeq(w, hidden_, (first / in_) % hid_, 1);
                    kb.compute(w, 12);
                    kb.storeSeq(w, weight_deltas_, first, lanes);
                });
            launches.push_back(kb.take());
        }
        return launches;
    }

  private:
    unsigned in_ = 0;
    unsigned hid_ = 0;
    DevArray weights_;
    DevArray weight_deltas_;
    DevArray input_;
    DevArray hidden_;
};

// =====================================================================
// hotspot: 2D thermal stencil, scratchpad-tiled.
// =====================================================================

class HotspotWorkload final : public Workload
{
  public:
    using Workload::Workload;

    std::string name() const override { return "hotspot"; }
    bool highBandwidth() const override { return false; }

    void
    setup(Vm &vm, Asid asid) override
    {
        asid_ = asid;
        side_ = unsigned(scaled(512, 64));
        temp_ = allocArray(vm, asid, std::uint64_t(side_) * side_);
        power_ = allocArray(vm, asid, std::uint64_t(side_) * side_);
        out_ = allocArray(vm, asid, std::uint64_t(side_) * side_);
    }

    std::vector<KernelLaunch>
    kernels() override
    {
        std::vector<KernelLaunch> launches;
        const unsigned tiles = side_ / kTile;
        KernelBuilder kb(asid_, params_.grid_warps);
        unsigned w = 0;
        for (unsigned ty = 0; ty < tiles; ++ty) {
            for (unsigned tx = 0; tx < tiles; ++tx) {
                for (unsigned r = 0; r < kTile; ++r) {
                    const std::uint64_t first =
                        std::uint64_t(ty * kTile + r) * side_ +
                        tx * kTile;
                    kb.loadSeq(w, temp_, first, kTile);
                    kb.loadSeq(w, power_, first, kTile);
                }
                kb.barrier(w);
                for (unsigned s = 0; s < 16; ++s)
                    kb.scratch(w, s % 2 == 0);
                kb.barrier(w);
                for (unsigned r = 0; r < kTile; ++r) {
                    const std::uint64_t first =
                        std::uint64_t(ty * kTile + r) * side_ +
                        tx * kTile;
                    kb.storeSeq(w, out_, first, kTile);
                }
                w = (w + 1) % kb.numWarps();
            }
        }
        launches.push_back(kb.take());
        return launches;
    }

  private:
    static constexpr unsigned kTile = 32;

    unsigned side_ = 0;
    DevArray temp_;
    DevArray power_;
    DevArray out_;
};

// =====================================================================
// lud: blocked LU factorization; the column panels stride by the full
// row length, so panel loads diverge across 4 KB pages.
// =====================================================================

class LudWorkload final : public Workload
{
  public:
    using Workload::Workload;

    std::string name() const override { return "lud"; }
    bool highBandwidth() const override { return true; }

    void
    setup(Vm &vm, Asid asid) override
    {
        asid_ = asid;
        n_ = unsigned(scaled(1024, 128));
        a_ = allocArray(vm, asid, std::uint64_t(n_) * n_);
    }

    std::vector<KernelLaunch>
    kernels() override
    {
        std::vector<KernelLaunch> launches;
        const unsigned tiles = n_ / kTile;
        const unsigned steps = std::min(tiles, 8u);
        for (unsigned d = 0; d < steps; ++d) {
            KernelBuilder kb(asid_, params_.grid_warps);
            unsigned w = 0;

            // Diagonal tile: row-wise, coalesced.
            emitRowTile(kb, w, d, d);

            // Perimeter: row panel coalesced, column panel strided.
            for (unsigned t = d + 1; t < tiles; ++t) {
                emitRowTile(kb, w, d, t);
                emitColTile(kb, w, t, d);
                w = (w + 1) % kb.numWarps();
            }

            // Internal tiles (subsampled band).
            const unsigned band = std::min(tiles - d - 1, 6u);
            for (unsigned ti = d + 1; ti < d + 1 + band; ++ti) {
                for (unsigned tj = d + 1; tj < d + 1 + band; ++tj) {
                    emitRowTile(kb, w, ti, tj);
                    emitColTile(kb, w, ti, tj);
                    for (unsigned r = 0; r < 8; ++r) {
                        const std::uint64_t first =
                            std::uint64_t(ti * kTile + r) * n_ +
                            tj * kTile;
                        kb.storeSeq(w, a_, first, kTile);
                    }
                    w = (w + 1) % kb.numWarps();
                }
            }
            launches.push_back(kb.take());
        }
        return launches;
    }

  private:
    static constexpr unsigned kTile = 32;

    /** Load 8 rows of a tile, coalesced. */
    void
    emitRowTile(KernelBuilder &kb, unsigned w, unsigned ti, unsigned tj)
    {
        for (unsigned r = 0; r < 8; ++r) {
            const std::uint64_t first =
                std::uint64_t(ti * kTile + r) * n_ + tj * kTile;
            kb.loadSeq(w, a_, first, kTile);
        }
        kb.compute(w, 4);
    }

    /** Load 8 columns of a tile: lane l reads row l — page-strided. */
    void
    emitColTile(KernelBuilder &kb, unsigned w, unsigned ti, unsigned tj)
    {
        for (unsigned c = 0; c < 8; ++c) {
            std::vector<Vaddr> addrs;
            addrs.reserve(kTile);
            for (unsigned l = 0; l < kTile; ++l) {
                addrs.push_back(a_.at(
                    std::uint64_t(ti * kTile + l) * n_ + tj * kTile + c));
            }
            kb.add(w, WarpInst::load(std::move(addrs)));
        }
        kb.compute(w, 4);
    }

    unsigned n_ = 0;
    DevArray a_;
};

// =====================================================================
// nw: Needleman-Wunsch wavefront DP; scratchpad-heavy tiles whose
// boundary columns stride by the row length (divergent bursts).
// =====================================================================

class NwWorkload final : public Workload
{
  public:
    using Workload::Workload;

    std::string name() const override { return "nw"; }
    bool highBandwidth() const override { return false; }

    void
    setup(Vm &vm, Asid asid) override
    {
        asid_ = asid;
        n_ = unsigned(scaled(1024, 128));
        score_ = allocArray(vm, asid, std::uint64_t(n_) * n_);
        ref_ = allocArray(vm, asid, std::uint64_t(n_) * n_);
    }

    std::vector<KernelLaunch>
    kernels() override
    {
        std::vector<KernelLaunch> launches;
        const unsigned tiles = n_ / kTile;
        // One kernel per anti-diagonal wavefront of tiles.
        for (unsigned wave = 0; wave < 2 * tiles - 1; ++wave) {
            KernelBuilder kb(asid_, params_.grid_warps);
            unsigned w = 0;
            for (unsigned ti = 0; ti < tiles; ++ti) {
                if (wave < ti || wave - ti >= tiles)
                    continue;
                const unsigned tj = wave - ti;
                emitTile(kb, w, ti, tj);
                w = (w + 1) % kb.numWarps();
            }
            launches.push_back(kb.take());
        }
        return launches;
    }

  private:
    static constexpr unsigned kTile = 32;

    void
    emitTile(KernelBuilder &kb, unsigned w, unsigned ti, unsigned tj)
    {
        // Boundary column of the left neighbor: page-strided gather.
        std::vector<Vaddr> left, top;
        for (unsigned l = 0; l < kTile; ++l) {
            left.push_back(score_.at(std::uint64_t(ti * kTile + l) * n_ +
                                     tj * kTile));
            top.push_back(score_.at(std::uint64_t(ti * kTile) * n_ +
                                    tj * kTile + l));
        }
        kb.add(w, WarpInst::load(std::move(left)));
        kb.add(w, WarpInst::load(std::move(top)));
        // Reference tile rows, coalesced.
        for (unsigned r = 0; r < 4; ++r) {
            kb.loadSeq(w, ref_,
                       std::uint64_t(ti * kTile + r * 8) * n_ +
                           tj * kTile,
                       kTile);
        }
        kb.barrier(w);
        for (unsigned s = 0; s < 24; ++s)
            kb.scratch(w, s % 3 == 0);
        kb.barrier(w);
        // Write the tile's boundary column back: page-strided scatter.
        std::vector<Vaddr> out;
        for (unsigned l = 0; l < kTile; ++l) {
            out.push_back(score_.at(std::uint64_t(ti * kTile + l) * n_ +
                                    (tj + 1) * kTile - 1));
        }
        kb.add(w, WarpInst::store(std::move(out)));
    }

    unsigned n_ = 0;
    DevArray score_;
    DevArray ref_;
};

// =====================================================================
// pathfinder: row DP with ghost-zone blocks in the scratchpad.
// =====================================================================

class PathfinderWorkload final : public Workload
{
  public:
    using Workload::Workload;

    std::string name() const override { return "pathfinder"; }
    bool highBandwidth() const override { return false; }

    void
    setup(Vm &vm, Asid asid) override
    {
        asid_ = asid;
        // Same four-page floor as kmeans: keep a scaled-down wall wide
        // enough to cross translation units per row.
        cols_ = scaled(256 * 1024, 4 * (kPageSize / sizeof(std::uint32_t)));
        wall_ = allocArray(vm, asid, cols_ * kRows);
        result_ = allocArray(vm, asid, cols_);
    }

    std::vector<KernelLaunch>
    kernels() override
    {
        std::vector<KernelLaunch> launches;
        // Two pyramid passes, each consuming kRows/2 wall rows.
        for (unsigned pass = 0; pass < 2; ++pass) {
            KernelBuilder kb(asid_, params_.grid_warps);
            const std::uint64_t row0 = pass * (kRows / 2);
            std::uint64_t block = 0;
            for (std::uint64_t c = 0; c < cols_; c += kBlock, ++block) {
                // Blocked mapping: adjacent blocks share wall pages.
                const unsigned w =
                    unsigned((block / 4) % kb.numWarps());
                const unsigned lanes =
                    unsigned(std::min<std::uint64_t>(kBlock, cols_ - c));
                // Load the block plus ghost zones.
                for (unsigned chunk = 0; chunk < lanes; chunk += 32)
                    kb.loadSeq(w, result_, c + chunk,
                               std::min(32u, lanes - chunk));
                // Iterate rows inside the scratchpad: the pyramid DP
                // does several relaxation steps per wall row.
                for (unsigned r = 0; r < kRows / 2; ++r) {
                    for (unsigned chunk = 0; chunk < lanes; chunk += 32)
                        kb.loadSeq(w, wall_,
                                   (row0 + r) * cols_ + c + chunk,
                                   std::min(32u, lanes - chunk));
                    for (unsigned s = 0; s < 6; ++s)
                        kb.scratch(w, s % 2 == 0);
                    kb.compute(w, 8);
                }
                for (unsigned chunk = 0; chunk < lanes; chunk += 32)
                    kb.storeSeq(w, result_, c + chunk,
                                std::min(32u, lanes - chunk));
            }
            launches.push_back(kb.take());
        }
        return launches;
    }

  private:
    static constexpr unsigned kRows = 8;
    static constexpr std::uint64_t kBlock = 128;

    std::uint64_t cols_ = 0;
    DevArray wall_;
    DevArray result_;
};

} // namespace

std::unique_ptr<Workload>
makeKmeans(const WorkloadParams &p)
{
    return std::make_unique<KmeansWorkload>(p);
}

std::unique_ptr<Workload>
makeBackprop(const WorkloadParams &p)
{
    return std::make_unique<BackpropWorkload>(p);
}

std::unique_ptr<Workload>
makeHotspot(const WorkloadParams &p)
{
    return std::make_unique<HotspotWorkload>(p);
}

std::unique_ptr<Workload>
makeLud(const WorkloadParams &p)
{
    return std::make_unique<LudWorkload>(p);
}

std::unique_ptr<Workload>
makeNw(const WorkloadParams &p)
{
    return std::make_unique<NwWorkload>(p);
}

std::unique_ptr<Workload>
makePathfinder(const WorkloadParams &p)
{
    return std::make_unique<PathfinderWorkload>(p);
}

} // namespace gvc
