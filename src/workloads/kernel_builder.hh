/**
 * @file
 * Helpers for constructing kernel launches: per-warp instruction
 * accumulation and chunked distribution of data-parallel index ranges,
 * mirroring how a grid of thread blocks maps onto warps.
 */

#ifndef GVC_WORKLOADS_KERNEL_BUILDER_HH
#define GVC_WORKLOADS_KERNEL_BUILDER_HH

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "gpu/gpu.hh"
#include "workloads/workload.hh"

namespace gvc
{

/** Accumulates per-warp instruction vectors and emits a KernelLaunch. */
class KernelBuilder
{
  public:
    KernelBuilder(Asid asid, unsigned num_warps)
        : asid_(asid), warps_(num_warps)
    {
    }

    unsigned numWarps() const { return unsigned(warps_.size()); }

    /** Append an instruction to warp @p w. */
    void
    add(unsigned w, WarpInst inst)
    {
        warps_[w].push_back(std::move(inst));
    }

    /** Append a coalesced load of @p lanes consecutive elements. */
    void
    loadSeq(unsigned w, const DevArray &arr, std::uint64_t first,
            unsigned lanes)
    {
        add(w, WarpInst::load(seqAddrs(arr, first, lanes)));
    }

    /** Append a coalesced store of @p lanes consecutive elements. */
    void
    storeSeq(unsigned w, const DevArray &arr, std::uint64_t first,
             unsigned lanes)
    {
        add(w, WarpInst::store(seqAddrs(arr, first, lanes)));
    }

    /** Append a gather load of @p arr at the given indices. */
    void
    loadGather(unsigned w, const DevArray &arr,
               const std::vector<std::uint32_t> &idx)
    {
        if (!idx.empty())
            add(w, WarpInst::load(gatherAddrs(arr, idx)));
    }

    /** Append a scatter store of @p arr at the given indices. */
    void
    storeScatter(unsigned w, const DevArray &arr,
                 const std::vector<std::uint32_t> &idx)
    {
        if (!idx.empty())
            add(w, WarpInst::store(gatherAddrs(arr, idx)));
    }

    void compute(unsigned w, std::uint32_t cycles)
    {
        add(w, WarpInst::compute(cycles));
    }

    void scratch(unsigned w, bool is_store)
    {
        add(w, WarpInst::scratch(is_store));
    }

    void barrier(unsigned w) { add(w, WarpInst::barrier()); }

    /** Barrier on every warp (tiled kernels). */
    void
    barrierAll()
    {
        for (unsigned w = 0; w < warps_.size(); ++w)
            barrier(w);
    }

    /** Total instructions accumulated so far. */
    std::uint64_t
    totalInstructions() const
    {
        std::uint64_t n = 0;
        for (const auto &w : warps_)
            n += w.size();
        return n;
    }

    /** Move the accumulated streams into a launch (builder is spent). */
    KernelLaunch
    take()
    {
        KernelLaunch launch;
        launch.asid = asid_;
        launch.warps.reserve(warps_.size());
        for (auto &insts : warps_) {
            if (!insts.empty()) {
                launch.warps.push_back(
                    std::make_unique<VectorWarpStream>(std::move(insts)));
            }
        }
        warps_.clear();
        return launch;
    }

    static std::vector<Vaddr>
    seqAddrs(const DevArray &arr, std::uint64_t first, unsigned lanes)
    {
        std::vector<Vaddr> addrs;
        addrs.reserve(lanes);
        for (unsigned l = 0; l < lanes; ++l)
            addrs.push_back(arr.at(first + l));
        return addrs;
    }

    static std::vector<Vaddr>
    gatherAddrs(const DevArray &arr, const std::vector<std::uint32_t> &idx)
    {
        std::vector<Vaddr> addrs;
        addrs.reserve(idx.size());
        for (const auto i : idx)
            addrs.push_back(arr.at(i));
        return addrs;
    }

  private:
    Asid asid_;
    std::vector<std::vector<WarpInst>> warps_;
};

/**
 * Distribute [0, n) over warps in contiguous chunks of up to
 * kWarpLanes elements, round-robin like thread blocks.
 * @p fn is called as fn(warp, first_index, lane_count).
 */
template <typename Fn>
void
forEachWarpChunk(std::uint64_t n, unsigned num_warps, Fn fn)
{
    std::uint64_t chunk = 0;
    for (std::uint64_t base = 0; base < n; base += kWarpLanes, ++chunk) {
        const unsigned lanes =
            unsigned(std::min<std::uint64_t>(kWarpLanes, n - base));
        fn(unsigned(chunk % num_warps), base, lanes);
    }
}

/**
 * Like forEachWarpChunk, but hands each warp @p block_chunks consecutive
 * chunks before moving on — the CUDA-style block-contiguous mapping that
 * preserves streaming page locality within a warp (used by the regular
 * Rodinia kernels).
 */
template <typename Fn>
void
forEachWarpChunkBlocked(std::uint64_t n, unsigned num_warps,
                        unsigned block_chunks, Fn fn)
{
    std::uint64_t chunk = 0;
    for (std::uint64_t base = 0; base < n; base += kWarpLanes, ++chunk) {
        const unsigned lanes =
            unsigned(std::min<std::uint64_t>(kWarpLanes, n - base));
        fn(unsigned((chunk / block_chunks) % num_warps), base, lanes);
    }
}

} // namespace gvc

#endif // GVC_WORKLOADS_KERNEL_BUILDER_HH
