#include "workloads/graph.hh"

#include <algorithm>
#include <utility>

#include "sim/logging.hh"

namespace gvc
{

namespace
{

/** Build CSR from an edge list via counting sort on sources. */
CsrGraph
toCsr(std::uint32_t num_vertices,
      std::vector<std::pair<std::uint32_t, std::uint32_t>> edges)
{
    CsrGraph g;
    g.num_vertices = num_vertices;
    g.row_ptr.assign(num_vertices + 1, 0);
    for (const auto &[src, dst] : edges)
        ++g.row_ptr[src + 1];
    for (std::uint32_t v = 0; v < num_vertices; ++v)
        g.row_ptr[v + 1] += g.row_ptr[v];
    g.col.resize(edges.size());
    std::vector<std::uint32_t> cursor(g.row_ptr.begin(),
                                      g.row_ptr.end() - 1);
    for (const auto &[src, dst] : edges)
        g.col[cursor[src]++] = dst;
    // Sorted adjacency lists give deterministic, realistic layouts.
    for (std::uint32_t v = 0; v < num_vertices; ++v) {
        std::sort(g.col.begin() + g.row_ptr[v],
                  g.col.begin() + g.row_ptr[v + 1]);
    }
    return g;
}

} // namespace

CsrGraph
makeRmatGraph(Rng &rng, std::uint32_t num_vertices,
              std::uint64_t num_edges, double a, double b, double c)
{
    if (num_vertices == 0 || (num_vertices & (num_vertices - 1)) != 0)
        fatal("makeRmatGraph: num_vertices must be a power of two");
    unsigned levels = 0;
    while ((std::uint32_t{1} << levels) < num_vertices)
        ++levels;

    std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
    edges.reserve(num_edges);
    for (std::uint64_t e = 0; e < num_edges; ++e) {
        std::uint32_t src = 0, dst = 0;
        for (unsigned level = 0; level < levels; ++level) {
            const double r = rng.uniform();
            src <<= 1;
            dst <<= 1;
            if (r < a) {
                // quadrant a: (0, 0)
            } else if (r < a + b) {
                dst |= 1;
            } else if (r < a + b + c) {
                src |= 1;
            } else {
                src |= 1;
                dst |= 1;
            }
        }
        if (src != dst)
            edges.emplace_back(src, dst);
    }
    return toCsr(num_vertices, std::move(edges));
}

CsrGraph
makeUniformGraph(Rng &rng, std::uint32_t num_vertices,
                 std::uint64_t num_edges)
{
    if (num_vertices == 0)
        fatal("makeUniformGraph: empty vertex set");
    std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
    edges.reserve(num_edges);
    for (std::uint64_t e = 0; e < num_edges; ++e) {
        const auto src = std::uint32_t(rng.below(num_vertices));
        const auto dst = std::uint32_t(rng.below(num_vertices));
        if (src != dst)
            edges.emplace_back(src, dst);
    }
    return toCsr(num_vertices, std::move(edges));
}

CsrGraph
makeGridGraph(std::uint32_t side)
{
    const std::uint32_t n = side * side;
    std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
    edges.reserve(std::uint64_t(n) * 4);
    for (std::uint32_t y = 0; y < side; ++y) {
        for (std::uint32_t x = 0; x < side; ++x) {
            const std::uint32_t v = y * side + x;
            if (x + 1 < side) {
                edges.emplace_back(v, v + 1);
                edges.emplace_back(v + 1, v);
            }
            if (y + 1 < side) {
                edges.emplace_back(v, v + side);
                edges.emplace_back(v + side, v);
            }
        }
    }
    return toCsr(n, std::move(edges));
}

} // namespace gvc
