#include "workloads/graph_workloads.hh"

#include <algorithm>
#include <cstdint>
#include <deque>
#include <vector>

#include "workloads/graph.hh"
#include "workloads/kernel_builder.hh"

namespace gvc
{

namespace
{

/** Round up to the next power of two (R-MAT vertex counts). */
std::uint32_t
nextPow2(std::uint64_t v)
{
    std::uint32_t p = 1;
    while (p < v)
        p <<= 1;
    return p;
}

/** Shared base for CSR-graph workloads. */
class GraphWorkload : public Workload
{
  public:
    using Workload::Workload;

  protected:
    /** Build the graph and map row_ptr/col into the address space. */
    void
    setupGraph(Vm &vm, Asid asid, std::uint32_t base_vertices,
               unsigned edges_per_vertex)
    {
        asid_ = asid;
        const std::uint32_t v = nextPow2(scaled(base_vertices, 1024));
        switch (params_.graph) {
          case GraphKind::kRmat:
            g_ = makeRmatGraph(rng_, v,
                               std::uint64_t(v) * edges_per_vertex);
            break;
          case GraphKind::kUniform:
            g_ = makeUniformGraph(rng_, v,
                                  std::uint64_t(v) * edges_per_vertex);
            break;
          case GraphKind::kGrid: {
            std::uint32_t side = 1;
            while (std::uint64_t(side) * side < v)
                side <<= 1;
            g_ = makeGridGraph(side);
            break;
          }
        }
        row_ptr_ = allocArray(vm, asid, g_.num_vertices + 1);
        col_ = allocArray(vm, asid, g_.numEdges());
    }

    /**
     * Emit the per-edge gathers for a chunk of vertices whose flattened
     * adjacency lists are batched 32 edges at a time ("virtual warp"
     * style): each batch loads the edge targets and gathers one or more
     * property arrays at those targets.
     */
    void
    emitEdgeGathers(KernelBuilder &kb, unsigned w, std::uint64_t e_begin,
                    std::uint64_t e_end,
                    const std::vector<const DevArray *> &gather_arrays)
    {
        for (std::uint64_t e = e_begin; e < e_end; e += kWarpLanes) {
            const unsigned lanes =
                unsigned(std::min<std::uint64_t>(kWarpLanes, e_end - e));
            // The edge targets themselves stream in coalesced.
            kb.loadSeq(w, col_, e, lanes);
            // Property gathers at the targets: the divergent part.
            std::vector<std::uint32_t> targets(
                g_.col.begin() + e, g_.col.begin() + e + lanes);
            for (const DevArray *arr : gather_arrays)
                kb.loadGather(w, *arr, targets);
            kb.compute(w, 2);
        }
    }

    CsrGraph g_;
    DevArray row_ptr_;
    DevArray col_;
};

// =====================================================================
// bfs (Rodinia): level-synchronous breadth-first search.
// =====================================================================

class BfsWorkload final : public GraphWorkload
{
  public:
    using GraphWorkload::GraphWorkload;

    std::string name() const override { return "bfs"; }
    bool highBandwidth() const override { return true; }

    void
    setup(Vm &vm, Asid asid) override
    {
        setupGraph(vm, asid, 128 * 1024, 4);
        cost_ = allocArray(vm, asid, g_.num_vertices);
        frontier_in_ = allocArray(vm, asid, g_.num_vertices);
        frontier_out_ = allocArray(vm, asid, g_.num_vertices);
    }

    std::vector<KernelLaunch>
    kernels() override
    {
        std::vector<KernelLaunch> launches;

        // Start from the highest-degree vertex so the traversal covers
        // a large component.
        std::uint32_t src = 0;
        for (std::uint32_t v = 1; v < g_.num_vertices; ++v)
            if (g_.degree(v) > g_.degree(src))
                src = v;

        std::vector<std::int32_t> dist(g_.num_vertices, -1);
        std::vector<std::uint32_t> frontier{src};
        dist[src] = 0;

        int level = 0;
        while (!frontier.empty() && level < 64) {
            KernelBuilder kb(asid_, params_.grid_warps);
            std::vector<std::uint32_t> next;
            forEachWarpChunk(
                frontier.size(), kb.numWarps(),
                [&](unsigned w, std::uint64_t first, unsigned lanes) {
                    // Read the frontier slice and each vertex's row
                    // bounds (divergent: frontier ids are scattered).
                    kb.loadSeq(w, frontier_in_, first, lanes);
                    std::vector<std::uint32_t> vs(
                        frontier.begin() + long(first),
                        frontier.begin() + long(first + lanes));
                    kb.loadGather(w, row_ptr_, vs);

                    // Flattened neighbor expansion.
                    std::vector<std::uint32_t> positions;
                    for (const auto v : vs) {
                        for (std::uint32_t p = g_.row_ptr[v];
                             p < g_.row_ptr[v + 1]; ++p)
                            positions.push_back(p);
                    }
                    for (std::size_t i = 0; i < positions.size();
                         i += kWarpLanes) {
                        const auto n = std::min<std::size_t>(
                            kWarpLanes, positions.size() - i);
                        std::vector<std::uint32_t> pos(
                            positions.begin() + long(i),
                            positions.begin() + long(i + n));
                        kb.loadGather(w, col_, pos);
                        std::vector<std::uint32_t> targets;
                        targets.reserve(pos.size());
                        for (const auto p : pos)
                            targets.push_back(g_.col[p]);
                        kb.loadGather(w, cost_, targets);
                        std::vector<std::uint32_t> fresh;
                        for (const auto t : targets) {
                            if (dist[t] < 0) {
                                dist[t] = level + 1;
                                next.push_back(t);
                                fresh.push_back(t);
                            }
                        }
                        kb.storeScatter(w, cost_, fresh);
                        kb.compute(w, 2);
                    }
                    // Append to the output frontier (coalesced).
                    kb.storeSeq(w, frontier_out_, first, lanes);
                });
            launches.push_back(kb.take());
            frontier = std::move(next);
            ++level;
        }
        return launches;
    }

  private:
    DevArray cost_;
    DevArray frontier_in_;
    DevArray frontier_out_;
};

// =====================================================================
// pagerank (Pannotia): pull-style rank accumulation.
// =====================================================================

class PagerankWorkload final : public GraphWorkload
{
  public:
    using GraphWorkload::GraphWorkload;

    std::string name() const override { return "pagerank"; }
    bool highBandwidth() const override { return true; }

    void
    setup(Vm &vm, Asid asid) override
    {
        setupGraph(vm, asid, 128 * 1024, 4);
        // Ranks are doubles in the reference implementation.
        rank_ = allocArray(vm, asid, g_.num_vertices, 8);
        rank_new_ = allocArray(vm, asid, g_.num_vertices, 8);
        outdeg_ = allocArray(vm, asid, g_.num_vertices);
    }

    std::vector<KernelLaunch>
    kernels() override
    {
        std::vector<KernelLaunch> launches;
        for (int iter = 0; iter < 2; ++iter) {
            KernelBuilder kb(asid_, params_.grid_warps);
            forEachWarpChunk(
                g_.num_vertices, kb.numWarps(),
                [&](unsigned w, std::uint64_t first, unsigned lanes) {
                    kb.loadSeq(w, row_ptr_, first, lanes);
                    emitEdgeGathers(kb, w, g_.row_ptr[first],
                                    g_.row_ptr[first + lanes],
                                    {&rank_, &outdeg_});
                    kb.storeSeq(w, rank_new_, first, lanes);
                });
            launches.push_back(kb.take());
        }
        return launches;
    }

  private:
    DevArray rank_;
    DevArray rank_new_;
    DevArray outdeg_;
};

// =====================================================================
// pagerank_spmv (Pannotia): edge-centric SpMV formulation.
// =====================================================================

class PagerankSpmvWorkload final : public GraphWorkload
{
  public:
    using GraphWorkload::GraphWorkload;

    std::string name() const override { return "pagerank_spmv"; }
    bool highBandwidth() const override { return true; }

    void
    setup(Vm &vm, Asid asid) override
    {
        setupGraph(vm, asid, 128 * 1024, 4);
        val_ = allocArray(vm, asid, g_.numEdges());
        x_ = allocArray(vm, asid, g_.num_vertices);
        y_ = allocArray(vm, asid, g_.num_vertices);
        // Row id of each edge, for the scatter side of y += A x.
        edge_row_.resize(g_.numEdges());
        for (std::uint32_t v = 0; v < g_.num_vertices; ++v)
            for (std::uint32_t p = g_.row_ptr[v]; p < g_.row_ptr[v + 1];
                 ++p)
                edge_row_[p] = v;
    }

    std::vector<KernelLaunch>
    kernels() override
    {
        std::vector<KernelLaunch> launches;
        for (int iter = 0; iter < 2; ++iter) {
            KernelBuilder kb(asid_, params_.grid_warps);
            forEachWarpChunk(
                g_.numEdges(), kb.numWarps(),
                [&](unsigned w, std::uint64_t first, unsigned lanes) {
                    kb.loadSeq(w, col_, first, lanes);
                    kb.loadSeq(w, val_, first, lanes);
                    std::vector<std::uint32_t> targets(
                        g_.col.begin() + long(first),
                        g_.col.begin() + long(first + lanes));
                    kb.loadGather(w, x_, targets);
                    // Scatter the partial sums to the covered rows.
                    std::vector<std::uint32_t> rows(
                        edge_row_.begin() + long(first),
                        edge_row_.begin() + long(first + lanes));
                    rows.erase(std::unique(rows.begin(), rows.end()),
                               rows.end());
                    kb.storeScatter(w, y_, rows);
                    kb.compute(w, 2);
                });
            launches.push_back(kb.take());
        }
        return launches;
    }

  private:
    DevArray val_;
    DevArray x_;
    DevArray y_;
    std::vector<std::uint32_t> edge_row_;
};

// =====================================================================
// color_max / color_maxmin (Pannotia): Jones-Plassmann greedy coloring.
// =====================================================================

class ColorWorkload final : public GraphWorkload
{
  public:
    ColorWorkload(const WorkloadParams &p, bool maxmin)
        : GraphWorkload(p), maxmin_(maxmin)
    {
    }

    std::string
    name() const override
    {
        return maxmin_ ? "color_maxmin" : "color_max";
    }

    bool highBandwidth() const override { return true; }

    void
    setup(Vm &vm, Asid asid) override
    {
        setupGraph(vm, asid, 128 * 1024, 4);
        value_ = allocArray(vm, asid, g_.num_vertices);
        color_ = allocArray(vm, asid, g_.num_vertices);
        values_.resize(g_.num_vertices);
        for (auto &v : values_)
            v = std::uint32_t(rng_());
    }

    std::vector<KernelLaunch>
    kernels() override
    {
        std::vector<KernelLaunch> launches;
        std::vector<bool> colored(g_.num_vertices, false);
        const int iters = maxmin_ ? 3 : 4;
        for (int iter = 0; iter < iters; ++iter) {
            KernelBuilder kb(asid_, params_.grid_warps);
            std::vector<std::uint32_t> newly;
            forEachWarpChunk(
                g_.num_vertices, kb.numWarps(),
                [&](unsigned w, std::uint64_t first, unsigned lanes) {
                    kb.loadSeq(w, color_, first, lanes);
                    kb.loadSeq(w, row_ptr_, first, lanes);
                    // Jones-Plassmann compares both the random value and
                    // the color state of every neighbor.
                    emitEdgeGathers(kb, w, g_.row_ptr[first],
                                    g_.row_ptr[first + lanes],
                                    {&value_, &color_});
                    // Decide local extrema among uncolored neighbors.
                    std::vector<std::uint32_t> winners;
                    for (unsigned l = 0; l < lanes; ++l) {
                        const auto v = std::uint32_t(first + l);
                        if (colored[v])
                            continue;
                        bool is_max = true, is_min = true;
                        for (std::uint32_t p = g_.row_ptr[v];
                             p < g_.row_ptr[v + 1]; ++p) {
                            const auto u = g_.col[p];
                            if (colored[u] || u == v)
                                continue;
                            if (values_[u] >= values_[v])
                                is_max = false;
                            if (values_[u] <= values_[v])
                                is_min = false;
                        }
                        if (is_max || (maxmin_ && is_min))
                            winners.push_back(v);
                    }
                    for (const auto v : winners)
                        newly.push_back(v);
                    kb.storeScatter(w, color_, winners);
                });
            for (const auto v : newly)
                colored[v] = true;
            launches.push_back(kb.take());
        }
        return launches;
    }

  private:
    bool maxmin_;
    DevArray value_;
    DevArray color_;
    std::vector<std::uint32_t> values_;
};

// =====================================================================
// mis (Pannotia): Luby-style maximal independent set.
// =====================================================================

class MisWorkload final : public GraphWorkload
{
  public:
    using GraphWorkload::GraphWorkload;

    std::string name() const override { return "mis"; }
    bool highBandwidth() const override { return true; }

    void
    setup(Vm &vm, Asid asid) override
    {
        setupGraph(vm, asid, 128 * 1024, 3);
        prio_ = allocArray(vm, asid, g_.num_vertices);
        state_ = allocArray(vm, asid, g_.num_vertices);
        prios_.resize(g_.num_vertices);
        for (auto &p : prios_)
            p = std::uint32_t(rng_());
    }

    std::vector<KernelLaunch>
    kernels() override
    {
        std::vector<KernelLaunch> launches;
        // 0 = undecided, 1 = in set, 2 = removed.
        std::vector<std::uint8_t> st(g_.num_vertices, 0);
        for (int iter = 0; iter < 3; ++iter) {
            KernelBuilder kb(asid_, params_.grid_warps);
            std::vector<std::uint32_t> winners, removed;
            forEachWarpChunk(
                g_.num_vertices, kb.numWarps(),
                [&](unsigned w, std::uint64_t first, unsigned lanes) {
                    kb.loadSeq(w, state_, first, lanes);
                    kb.loadSeq(w, row_ptr_, first, lanes);
                    emitEdgeGathers(kb, w, g_.row_ptr[first],
                                    g_.row_ptr[first + lanes],
                                    {&prio_, &state_});
                    std::vector<std::uint32_t> chunk_winners;
                    for (unsigned l = 0; l < lanes; ++l) {
                        const auto v = std::uint32_t(first + l);
                        if (st[v] != 0)
                            continue;
                        bool wins = true;
                        for (std::uint32_t p = g_.row_ptr[v];
                             p < g_.row_ptr[v + 1]; ++p) {
                            const auto u = g_.col[p];
                            if (u != v && st[u] == 0 &&
                                (prios_[u] > prios_[v] ||
                                 (prios_[u] == prios_[v] && u > v))) {
                                wins = false;
                                break;
                            }
                        }
                        if (wins)
                            chunk_winners.push_back(v);
                    }
                    winners.insert(winners.end(), chunk_winners.begin(),
                                   chunk_winners.end());
                    kb.storeScatter(w, state_, chunk_winners);
                });
            for (const auto v : winners) {
                st[v] = 1;
                for (std::uint32_t p = g_.row_ptr[v];
                     p < g_.row_ptr[v + 1]; ++p) {
                    const auto u = g_.col[p];
                    if (st[u] == 0) {
                        st[u] = 2;
                        removed.push_back(u);
                    }
                }
            }
            launches.push_back(kb.take());
        }
        return launches;
    }

  private:
    DevArray prio_;
    DevArray state_;
    std::vector<std::uint32_t> prios_;
};

// =====================================================================
// bc (Pannotia): one-source Brandes betweenness centrality.
// =====================================================================

class BcWorkload final : public GraphWorkload
{
  public:
    using GraphWorkload::GraphWorkload;

    std::string name() const override { return "bc"; }
    bool highBandwidth() const override { return true; }

    void
    setup(Vm &vm, Asid asid) override
    {
        setupGraph(vm, asid, 64 * 1024, 4);
        sigma_ = allocArray(vm, asid, g_.num_vertices);
        dist_arr_ = allocArray(vm, asid, g_.num_vertices);
        delta_ = allocArray(vm, asid, g_.num_vertices);
    }

    std::vector<KernelLaunch>
    kernels() override
    {
        std::vector<KernelLaunch> launches;
        std::uint32_t src = 0;
        for (std::uint32_t v = 1; v < g_.num_vertices; ++v)
            if (g_.degree(v) > g_.degree(src))
                src = v;

        // Forward: BFS levels with sigma accumulation.
        std::vector<std::int32_t> dist(g_.num_vertices, -1);
        std::vector<std::vector<std::uint32_t>> levels;
        std::vector<std::uint32_t> frontier{src};
        dist[src] = 0;
        while (!frontier.empty() && levels.size() < 48) {
            levels.push_back(frontier);
            KernelBuilder kb(asid_, params_.grid_warps);
            std::vector<std::uint32_t> next;
            forEachWarpChunk(
                frontier.size(), kb.numWarps(),
                [&](unsigned w, std::uint64_t first, unsigned lanes) {
                    std::vector<std::uint32_t> vs(
                        frontier.begin() + long(first),
                        frontier.begin() + long(first + lanes));
                    kb.loadGather(w, row_ptr_, vs);
                    kb.loadGather(w, sigma_, vs);
                    std::vector<std::uint32_t> positions;
                    for (const auto v : vs)
                        for (std::uint32_t p = g_.row_ptr[v];
                             p < g_.row_ptr[v + 1]; ++p)
                            positions.push_back(p);
                    for (std::size_t i = 0; i < positions.size();
                         i += kWarpLanes) {
                        const auto n = std::min<std::size_t>(
                            kWarpLanes, positions.size() - i);
                        std::vector<std::uint32_t> pos(
                            positions.begin() + long(i),
                            positions.begin() + long(i + n));
                        kb.loadGather(w, col_, pos);
                        std::vector<std::uint32_t> targets;
                        for (const auto p : pos)
                            targets.push_back(g_.col[p]);
                        kb.loadGather(w, dist_arr_, targets);
                        std::vector<std::uint32_t> fresh;
                        for (const auto t : targets) {
                            if (dist[t] < 0) {
                                dist[t] =
                                    std::int32_t(levels.size());
                                next.push_back(t);
                                fresh.push_back(t);
                            }
                        }
                        kb.storeScatter(w, dist_arr_, fresh);
                        kb.storeScatter(w, sigma_, fresh);
                        kb.compute(w, 2);
                    }
                });
            launches.push_back(kb.take());
            frontier = std::move(next);
        }

        // Backward: dependency accumulation, deepest level first.
        for (auto it = levels.rbegin(); it != levels.rend(); ++it) {
            KernelBuilder kb(asid_, params_.grid_warps);
            forEachWarpChunk(
                it->size(), kb.numWarps(),
                [&](unsigned w, std::uint64_t first, unsigned lanes) {
                    std::vector<std::uint32_t> vs(
                        it->begin() + long(first),
                        it->begin() + long(first + lanes));
                    kb.loadGather(w, row_ptr_, vs);
                    std::vector<std::uint32_t> positions;
                    for (const auto v : vs)
                        for (std::uint32_t p = g_.row_ptr[v];
                             p < g_.row_ptr[v + 1]; ++p)
                            positions.push_back(p);
                    for (std::size_t i = 0; i < positions.size();
                         i += kWarpLanes) {
                        const auto n = std::min<std::size_t>(
                            kWarpLanes, positions.size() - i);
                        std::vector<std::uint32_t> pos(
                            positions.begin() + long(i),
                            positions.begin() + long(i + n));
                        std::vector<std::uint32_t> targets;
                        for (const auto p : pos)
                            targets.push_back(g_.col[p]);
                        kb.loadGather(w, sigma_, targets);
                        kb.loadGather(w, delta_, targets);
                        kb.compute(w, 2);
                    }
                    kb.storeScatter(w, delta_, vs);
                });
            launches.push_back(kb.take());
        }
        return launches;
    }

  private:
    DevArray sigma_;
    DevArray dist_arr_;
    DevArray delta_;
};

// =====================================================================
// fw / fw_block (Pannotia): Floyd-Warshall all-pairs shortest paths.
// =====================================================================

/**
 * Unblocked FW over a column-major distance matrix: sweeping j with
 * fixed k makes dist[j][k] and dist[j][i] stride by a full row, so each
 * lane lands on a different 4 KB page — the memory divergence the paper
 * singles fw out for (~9 lines per memory instruction).
 */
class FwWorkload final : public Workload
{
  public:
    using Workload::Workload;

    std::string name() const override { return "fw"; }
    bool highBandwidth() const override { return true; }

    void
    setup(Vm &vm, Asid asid) override
    {
        asid_ = asid;
        // The column sweep must cover far more 4 KB pages than the
        // per-CU TLBs reach, as it does for the paper's inputs: keep a
        // floor of 768 so each column spans most of a page.
        n_ = unsigned(scaled(1024, 768));
        dist_ = allocArray(vm, asid, std::uint64_t(n_) * n_);
    }

    std::vector<KernelLaunch>
    kernels() override
    {
        std::vector<KernelLaunch> launches;
        const unsigned num_k = 8;
        const unsigned rows_per_k = 32;
        for (unsigned kk = 0; kk < num_k; ++kk) {
            const unsigned k = kk * (n_ / num_k);
            const unsigned i0 = (kk * rows_per_k) % n_;
            KernelBuilder kb(asid_, params_.grid_warps);
            forEachWarpChunk(
                std::uint64_t(rows_per_k) * n_, kb.numWarps(),
                [&](unsigned w, std::uint64_t first, unsigned lanes) {
                    // Column-major: element (i, j) lives at j*n + i.
                    // Lanes take consecutive j for a fixed i.
                    const unsigned i = i0 + unsigned(first / n_);
                    const unsigned j0 = unsigned(first % n_);
                    std::vector<Vaddr> ik, kj, ij;
                    for (unsigned l = 0; l < lanes; ++l) {
                        const unsigned j = (j0 + l) % n_;
                        ik.push_back(dist_.at(std::uint64_t(k) * n_ + i));
                        kj.push_back(dist_.at(std::uint64_t(j) * n_ + k));
                        ij.push_back(dist_.at(std::uint64_t(j) * n_ + i));
                    }
                    kb.add(w, WarpInst::load(std::move(ik)));
                    kb.add(w, WarpInst::load(std::move(kj)));
                    kb.add(w, WarpInst::load(ij));
                    kb.compute(w, 2);
                    kb.add(w, WarpInst::store(std::move(ij)));
                });
            launches.push_back(kb.take());
        }
        return launches;
    }

  private:
    unsigned n_ = 0;
    DevArray dist_;
};

/**
 * Blocked FW: 32x32 tiles staged through the scratchpad with barriers —
 * the locality-friendly variant (row-major, coalesced tile rows).
 */
class FwBlockWorkload final : public Workload
{
  public:
    using Workload::Workload;

    std::string name() const override { return "fw_block"; }
    bool highBandwidth() const override { return true; }

    void
    setup(Vm &vm, Asid asid) override
    {
        asid_ = asid;
        n_ = unsigned(scaled(1024, 128));
        dist_ = allocArray(vm, asid, std::uint64_t(n_) * n_);
    }

    std::vector<KernelLaunch>
    kernels() override
    {
        std::vector<KernelLaunch> launches;
        const unsigned tiles = n_ / kTile;
        const unsigned num_k = 8;
        for (unsigned kb_idx = 0; kb_idx < num_k; ++kb_idx) {
            const unsigned kt = kb_idx % tiles;
            KernelBuilder kb(asid_, params_.grid_warps);
            // Row panel and column panel of the k-th tile stripe.
            unsigned w = 0;
            for (unsigned t = 0; t < tiles; ++t) {
                emitTile(kb, w, kt, t);       // row panel tile (kt, t)
                emitTile(kb, w, t, kt);       // column panel tile (t, kt)
                w = (w + 1) % kb.numWarps();
            }
            launches.push_back(kb.take());
        }
        return launches;
    }

  private:
    static constexpr unsigned kTile = 32;

    void
    emitTile(KernelBuilder &kb, unsigned w, unsigned ti, unsigned tj)
    {
        // Load the tile row-by-row (row-major: each row is coalesced).
        for (unsigned r = 0; r < kTile; ++r) {
            const std::uint64_t first =
                std::uint64_t(ti * kTile + r) * n_ + tj * kTile;
            kb.loadSeq(w, dist_, first, kTile);
        }
        kb.barrier(w);
        for (unsigned s = 0; s < 12; ++s)
            kb.scratch(w, s % 2 == 0);
        kb.barrier(w);
        for (unsigned r = 0; r < kTile; ++r) {
            const std::uint64_t first =
                std::uint64_t(ti * kTile + r) * n_ + tj * kTile;
            kb.storeSeq(w, dist_, first, kTile);
        }
    }

    unsigned n_ = 0;
    DevArray dist_;
};

} // namespace

std::unique_ptr<Workload>
makeBfs(const WorkloadParams &p)
{
    return std::make_unique<BfsWorkload>(p);
}

std::unique_ptr<Workload>
makePagerank(const WorkloadParams &p)
{
    return std::make_unique<PagerankWorkload>(p);
}

std::unique_ptr<Workload>
makePagerankSpmv(const WorkloadParams &p)
{
    return std::make_unique<PagerankSpmvWorkload>(p);
}

std::unique_ptr<Workload>
makeColorMax(const WorkloadParams &p)
{
    return std::make_unique<ColorWorkload>(p, false);
}

std::unique_ptr<Workload>
makeColorMaxMin(const WorkloadParams &p)
{
    return std::make_unique<ColorWorkload>(p, true);
}

std::unique_ptr<Workload>
makeMis(const WorkloadParams &p)
{
    return std::make_unique<MisWorkload>(p);
}

std::unique_ptr<Workload>
makeBc(const WorkloadParams &p)
{
    return std::make_unique<BcWorkload>(p);
}

std::unique_ptr<Workload>
makeFw(const WorkloadParams &p)
{
    return std::make_unique<FwWorkload>(p);
}

std::unique_ptr<Workload>
makeFwBlock(const WorkloadParams &p)
{
    return std::make_unique<FwBlockWorkload>(p);
}

} // namespace gvc
