/**
 * @file
 * Synthetic graph inputs for the Pannotia-style workloads: an R-MAT
 * generator (skewed, community-structured degree distribution — the
 * regime where graph workloads show poor locality) and a uniform random
 * generator, both emitted in CSR form.
 */

#ifndef GVC_WORKLOADS_GRAPH_HH
#define GVC_WORKLOADS_GRAPH_HH

#include <cstdint>
#include <vector>

#include "sim/rng.hh"

namespace gvc
{

/** Compressed sparse row graph. */
struct CsrGraph
{
    std::uint32_t num_vertices = 0;
    std::vector<std::uint32_t> row_ptr; ///< size num_vertices + 1
    std::vector<std::uint32_t> col;     ///< size num_edges

    std::uint64_t numEdges() const { return col.size(); }

    std::uint32_t
    degree(std::uint32_t v) const
    {
        return row_ptr[v + 1] - row_ptr[v];
    }
};

/**
 * R-MAT graph: @p num_vertices must be a power of two.  Parameters
 * (a, b, c) follow the usual recursive-quadrant probabilities; the
 * remainder goes to quadrant d.
 */
CsrGraph makeRmatGraph(Rng &rng, std::uint32_t num_vertices,
                       std::uint64_t num_edges, double a = 0.57,
                       double b = 0.19, double c = 0.19);

/** Uniform random graph (Erdos-Renyi-style edge sampling). */
CsrGraph makeUniformGraph(Rng &rng, std::uint32_t num_vertices,
                          std::uint64_t num_edges);

/** 2D grid graph (regular degree-4 mesh), for locality contrast. */
CsrGraph makeGridGraph(std::uint32_t side);

} // namespace gvc

#endif // GVC_WORKLOADS_GRAPH_HH
