#include "workloads/extra_workloads.hh"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <queue>
#include <vector>

#include "workloads/graph.hh"
#include "workloads/kernel_builder.hh"

namespace gvc
{

namespace
{

std::uint32_t
nextPow2(std::uint64_t v)
{
    std::uint32_t p = 1;
    while (p < v)
        p <<= 1;
    return p;
}

// =====================================================================
// sssp (Pannotia): Bellman-Ford-style relaxation over a worklist.
// =====================================================================

class SsspWorkload final : public Workload
{
  public:
    using Workload::Workload;

    std::string name() const override { return "sssp"; }
    bool highBandwidth() const override { return true; }

    void
    setup(Vm &vm, Asid asid) override
    {
        asid_ = asid;
        const std::uint32_t v =
            nextPow2(scaled(128 * 1024, 1024));
        g_ = makeRmatGraph(rng_, v, std::uint64_t(v) * 4);
        weights_.resize(g_.numEdges());
        for (auto &w : weights_)
            w = std::uint32_t(1 + rng_.below(15));
        row_ptr_ = allocArray(vm, asid, g_.num_vertices + 1);
        col_ = allocArray(vm, asid, g_.numEdges());
        wgt_ = allocArray(vm, asid, g_.numEdges());
        dist_ = allocArray(vm, asid, g_.num_vertices);
    }

    std::vector<KernelLaunch>
    kernels() override
    {
        std::vector<KernelLaunch> launches;

        std::uint32_t src = 0;
        for (std::uint32_t v = 1; v < g_.num_vertices; ++v)
            if (g_.degree(v) > g_.degree(src))
                src = v;

        constexpr std::uint32_t kInf =
            std::numeric_limits<std::uint32_t>::max();
        std::vector<std::uint32_t> dist(g_.num_vertices, kInf);
        dist[src] = 0;
        std::vector<std::uint32_t> worklist{src};

        int round = 0;
        while (!worklist.empty() && round < 24) {
            KernelBuilder kb(asid_, params_.grid_warps);
            std::vector<std::uint32_t> next;
            std::vector<bool> queued(g_.num_vertices, false);
            forEachWarpChunk(
                worklist.size(), kb.numWarps(),
                [&](unsigned w, std::uint64_t first, unsigned lanes) {
                    std::vector<std::uint32_t> vs(
                        worklist.begin() + long(first),
                        worklist.begin() + long(first + lanes));
                    kb.loadGather(w, row_ptr_, vs);
                    kb.loadGather(w, dist_, vs);
                    std::vector<std::uint32_t> positions;
                    for (const auto v : vs)
                        for (std::uint32_t p = g_.row_ptr[v];
                             p < g_.row_ptr[v + 1]; ++p)
                            positions.push_back(p);
                    for (std::size_t i = 0; i < positions.size();
                         i += kWarpLanes) {
                        const auto n = std::min<std::size_t>(
                            kWarpLanes, positions.size() - i);
                        std::vector<std::uint32_t> pos(
                            positions.begin() + long(i),
                            positions.begin() + long(i + n));
                        // Edge target + weight stream, then the
                        // divergent distance gather/relaxation.
                        kb.loadGather(w, col_, pos);
                        kb.loadGather(w, wgt_, pos);
                        std::vector<std::uint32_t> targets, relaxed;
                        for (const auto p : pos)
                            targets.push_back(g_.col[p]);
                        kb.loadGather(w, dist_, targets);
                        for (std::size_t e = 0; e < pos.size(); ++e) {
                            // Functional relaxation.
                            const auto from_v = srcOf(pos[e]);
                            const auto to = g_.col[pos[e]];
                            if (dist[from_v] == kInf)
                                continue;
                            const auto cand =
                                dist[from_v] + weights_[pos[e]];
                            if (cand < dist[to]) {
                                dist[to] = cand;
                                relaxed.push_back(to);
                                if (!queued[to]) {
                                    queued[to] = true;
                                    next.push_back(to);
                                }
                            }
                        }
                        kb.storeScatter(w, dist_, relaxed);
                        kb.compute(w, 2);
                    }
                });
            launches.push_back(kb.take());
            worklist = std::move(next);
            ++round;
        }
        return launches;
    }

  private:
    /** Source vertex of edge position @p pos (binary search). */
    std::uint32_t
    srcOf(std::uint32_t pos) const
    {
        const auto it = std::upper_bound(g_.row_ptr.begin(),
                                         g_.row_ptr.end(), pos);
        return std::uint32_t(it - g_.row_ptr.begin()) - 1;
    }

    CsrGraph g_;
    std::vector<std::uint32_t> weights_;
    DevArray row_ptr_;
    DevArray col_;
    DevArray wgt_;
    DevArray dist_;
};

// =====================================================================
// srad (Rodinia): 2D diffusion stencil with neighbor index arrays.
// =====================================================================

class SradWorkload final : public Workload
{
  public:
    using Workload::Workload;

    std::string name() const override { return "srad"; }
    bool highBandwidth() const override { return false; }

    void
    setup(Vm &vm, Asid asid) override
    {
        asid_ = asid;
        side_ = unsigned(scaled(512, 64));
        img_ = allocArray(vm, asid, std::uint64_t(side_) * side_);
        coef_ = allocArray(vm, asid, std::uint64_t(side_) * side_);
        out_ = allocArray(vm, asid, std::uint64_t(side_) * side_);
    }

    std::vector<KernelLaunch>
    kernels() override
    {
        std::vector<KernelLaunch> launches;
        // Two diffusion iterations of two kernels each (srad1: compute
        // the diffusion coefficient; srad2: apply it).
        for (int iter = 0; iter < 2; ++iter) {
            for (int phase = 0; phase < 2; ++phase) {
                KernelBuilder kb(asid_, params_.grid_warps);
                forEachWarpChunkBlocked(
                    std::uint64_t(side_) * side_, kb.numWarps(), 8,
                    [&](unsigned w, std::uint64_t first,
                        unsigned lanes) {
                        const DevArray &in =
                            phase == 0 ? img_ : coef_;
                        kb.loadSeq(w, in, first, lanes);
                        // North/south neighbors: one row away.
                        if (first >= side_)
                            kb.loadSeq(w, in, first - side_, lanes);
                        if (first + side_ + lanes <=
                            std::uint64_t(side_) * side_)
                            kb.loadSeq(w, in, first + side_, lanes);
                        kb.compute(w, 10);
                        kb.storeSeq(w, phase == 0 ? coef_ : out_,
                                    first, lanes);
                    });
                launches.push_back(kb.take());
            }
        }
        return launches;
    }

  private:
    unsigned side_ = 0;
    DevArray img_;
    DevArray coef_;
    DevArray out_;
};

} // namespace

std::unique_ptr<Workload>
makeSssp(const WorkloadParams &p)
{
    return std::make_unique<SsspWorkload>(p);
}

std::unique_ptr<Workload>
makeSrad(const WorkloadParams &p)
{
    return std::make_unique<SradWorkload>(p);
}

} // namespace gvc
