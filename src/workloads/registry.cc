#include "workloads/registry.hh"

#include "sim/logging.hh"
#include "workloads/extra_workloads.hh"
#include "workloads/graph_workloads.hh"
#include "workloads/regular_workloads.hh"

namespace gvc
{

// The name tables below are function-local `static const` values: C++11
// magic statics give them race-free one-time construction, and they are
// never mutated afterwards, so the sweep engine's worker threads can
// call these accessors concurrently (audited for harness/sweep.cc).

const std::vector<std::string> &
allWorkloadNames()
{
    static const std::vector<std::string> names = {
        // Pannotia (irregular graph applications)
        "bc", "color_maxmin", "color_max", "fw", "fw_block", "mis",
        "pagerank", "pagerank_spmv",
        // Rodinia (traditional workloads)
        "kmeans", "backprop", "bfs", "hotspot", "lud", "nw",
        "pathfinder"};
    return names;
}

const std::vector<std::string> &
extraWorkloadNames()
{
    static const std::vector<std::string> names = {"sssp", "srad"};
    return names;
}

const std::vector<std::string> &
highBandwidthWorkloadNames()
{
    static const std::vector<std::string> names = {
        "bc", "color_maxmin", "color_max", "fw", "fw_block",
        "mis", "pagerank", "pagerank_spmv", "bfs", "lud"};
    return names;
}

std::unique_ptr<Workload>
makeWorkload(const std::string &name, const WorkloadParams &params)
{
    if (name == "bfs")
        return makeBfs(params);
    if (name == "pagerank")
        return makePagerank(params);
    if (name == "pagerank_spmv")
        return makePagerankSpmv(params);
    if (name == "color_max")
        return makeColorMax(params);
    if (name == "color_maxmin")
        return makeColorMaxMin(params);
    if (name == "mis")
        return makeMis(params);
    if (name == "bc")
        return makeBc(params);
    if (name == "fw")
        return makeFw(params);
    if (name == "fw_block")
        return makeFwBlock(params);
    if (name == "kmeans")
        return makeKmeans(params);
    if (name == "backprop")
        return makeBackprop(params);
    if (name == "hotspot")
        return makeHotspot(params);
    if (name == "lud")
        return makeLud(params);
    if (name == "nw")
        return makeNw(params);
    if (name == "pathfinder")
        return makePathfinder(params);
    if (name == "sssp")
        return makeSssp(params);
    if (name == "srad")
        return makeSrad(params);
    fatal("makeWorkload: unknown workload '" + name + "'");
}

} // namespace gvc
