/**
 * @file
 * Workload abstraction: a named program that maps its data into a
 * process address space and emits the kernel launches (per-warp
 * instruction streams) the GPU executes.
 *
 * The fifteen concrete workloads reproduce the memory behaviour of the
 * paper's Rodinia and Pannotia benchmarks by running the real algorithms
 * (BFS, PageRank, coloring, MIS, Floyd-Warshall, k-means, stencils, ...)
 * over synthetic inputs and recording the coalescer-level address
 * streams they generate.
 */

#ifndef GVC_WORKLOADS_WORKLOAD_HH
#define GVC_WORKLOADS_WORKLOAD_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "gpu/gpu.hh"
#include "mem/vm.hh"
#include "sim/rng.hh"

namespace gvc
{

/** Input graph topology for the graph workloads. */
enum class GraphKind : std::uint8_t {
    kRmat,    ///< Skewed, community-structured (Pannotia-like inputs).
    kUniform, ///< Erdos-Renyi-style uniform random.
    kGrid,    ///< Regular 2D mesh (high locality contrast).
};

/** Global workload scaling knobs. */
struct WorkloadParams
{
    /** Linear problem-size multiplier (1.0 = default sizes). */
    double scale = 1.0;
    std::uint64_t seed = 0x5eed;
    /** Warps per kernel launch (spread across the CUs). */
    unsigned grid_warps = 256;
    /** Topology used by the graph workloads. */
    GraphKind graph = GraphKind::kRmat;
};

/** A device-resident array: base VA plus element stride. */
struct DevArray
{
    Vaddr base = 0;
    std::uint32_t elem_bytes = 4;

    Vaddr at(std::uint64_t i) const { return base + i * elem_bytes; }
};

/** Map a fresh array of @p count elements into (vm, asid). */
inline DevArray
allocArray(Vm &vm, Asid asid, std::uint64_t count,
           std::uint32_t elem_bytes = 4,
           Perms perms = kPermRead | kPermWrite)
{
    DevArray a;
    a.base = vm.mmapAnon(asid, count * elem_bytes, perms);
    a.elem_bytes = elem_bytes;
    return a;
}

/** Base class of all workloads. */
class Workload
{
  public:
    explicit Workload(const WorkloadParams &params)
        : params_(params), rng_(params.seed)
    {
    }

    virtual ~Workload() = default;

    virtual std::string name() const = 0;

    /** Paper's grouping: high vs. low translation-bandwidth demand. */
    virtual bool highBandwidth() const = 0;

    /** Allocate and initialize device data in (vm, asid). */
    virtual void setup(Vm &vm, Asid asid) = 0;

    /** Produce the kernel launches (call once, after setup). */
    virtual std::vector<KernelLaunch> kernels() = 0;

  protected:
    /** Scaled size helper with a floor of @p minimum. */
    std::uint64_t
    scaled(std::uint64_t base, std::uint64_t minimum = 1) const
    {
        const auto v = std::uint64_t(double(base) * params_.scale);
        return v < minimum ? minimum : v;
    }

    WorkloadParams params_;
    Rng rng_;
    Asid asid_ = 0;
};

} // namespace gvc

#endif // GVC_WORKLOADS_WORKLOAD_HH
