/**
 * @file
 * Name-based workload registry: the 15 simulated workloads of the paper
 * (8 Pannotia, 7 Rodinia), constructible by name for harnesses, benches,
 * and examples.
 */

#ifndef GVC_WORKLOADS_REGISTRY_HH
#define GVC_WORKLOADS_REGISTRY_HH

#include <memory>
#include <string>
#include <vector>

#include "workloads/workload.hh"

namespace gvc
{

/** All workload names, Pannotia first (paper's Figure 2 layout). */
const std::vector<std::string> &allWorkloadNames();

/** Names of the paper's "high translation bandwidth" group (§5.2). */
const std::vector<std::string> &highBandwidthWorkloadNames();

/** Extra workloads beyond the paper's fifteen (sssp, srad). */
const std::vector<std::string> &extraWorkloadNames();

/** Construct a workload by name; fatal on unknown names. */
std::unique_ptr<Workload> makeWorkload(const std::string &name,
                                       const WorkloadParams &params = {});

} // namespace gvc

#endif // GVC_WORKLOADS_REGISTRY_HH
