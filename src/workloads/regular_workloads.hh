/**
 * @file
 * Rodinia-style regular workloads: kmeans, backprop, hotspot, lud, nw,
 * pathfinder.  These are the traditional scientific kernels: streaming
 * coalesced sweeps (kmeans, backprop), scratchpad-tiled stencils and DP
 * (hotspot, nw, pathfinder), and blocked factorization with
 * column-strided — hence divergent — panel accesses (lud).
 */

#ifndef GVC_WORKLOADS_REGULAR_WORKLOADS_HH
#define GVC_WORKLOADS_REGULAR_WORKLOADS_HH

#include <memory>

#include "workloads/workload.hh"

namespace gvc
{

std::unique_ptr<Workload> makeKmeans(const WorkloadParams &p);
std::unique_ptr<Workload> makeBackprop(const WorkloadParams &p);
std::unique_ptr<Workload> makeHotspot(const WorkloadParams &p);
std::unique_ptr<Workload> makeLud(const WorkloadParams &p);
std::unique_ptr<Workload> makeNw(const WorkloadParams &p);
std::unique_ptr<Workload> makePathfinder(const WorkloadParams &p);

} // namespace gvc

#endif // GVC_WORKLOADS_REGULAR_WORKLOADS_HH
