/**
 * @file
 * Forward-Backward Table (FBT) — the structure the paper adds to the
 * IOMMU to make a whole-hierarchy GPU virtual cache practical (§4).
 *
 * The backward table (BT) is a reverse-translation table indexed by
 * physical page number.  Each valid entry pins the page's unique
 * *leading* virtual address (the first VA used to touch the page while
 * its data resides in the virtual caches), the page permissions, a
 * 32-bit line bit-vector tracking which lines of the page are resident
 * in the shared virtual L2 (4 KB pages @ 128 B lines), and a written bit
 * used to detect read-write synonyms.  2 MB pages use a line counter
 * instead of a bit-vector, or are split into 4 KB subpage entries when
 * the split optimization is enabled (§4.3).
 *
 * The forward table (FT) maps (ASID, leading VPN) to the BT entry so the
 * FBT can be consulted by virtual address: on L2 line evictions, TLB
 * shootdowns, coherence responses, and — the "With OPT" design — as a
 * large second-level TLB behind the small shared IOMMU TLB.
 *
 * Invariant maintained here and relied on by the hierarchy: valid BT
 * entries and valid FT entries are in bijection.  Evicting either side
 * of the pair invalidates both and reports the page so the caches can be
 * purged (the FBT is fully inclusive of the GPU caches).
 */

#ifndef GVC_CORE_FBT_HH
#define GVC_CORE_FBT_HH

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "sim/debug.hh"
#include "sim/logging.hh"
#include "sim/stats.hh"
#include "sim/types.hh"
#include "tlb/tlb.hh"

namespace gvc
{

/** FBT configuration (§4.3: 16K entries ≈ 64 MB reach). */
struct FbtParams
{
    unsigned entries = 16 * 1024;
    unsigned bt_assoc = 8;
    unsigned ft_assoc = 8;
    /** Break 2 MB pages into 4 KB subpage entries (§4.3 optimization). */
    bool split_large_pages = true;
};

/**
 * A page that was displaced from the FBT and must therefore be purged
 * from the virtual caches (bit-vector of L2-resident lines included so
 * invalidation can be selective).
 */
struct FbtEvictedPage
{
    Asid asid = 0;
    Vpn leading_vpn = kInvalidVpn;
    Ppn ppn = kInvalidPpn;
    std::uint32_t line_bits = 0;
    bool large = false;
    std::uint32_t line_count = 0; ///< Counter-mode residency (large pages).
};

/** Outcome of the BT synonym check performed on every L2 miss (§4.1). */
struct SynonymCheck
{
    enum class Kind : std::uint8_t {
        kNewLeading,   ///< No entry existed; the given VA is now leading.
        kLeadingMatch, ///< Entry exists and the given VA is the leader.
        kSynonym,      ///< Read-only synonym: replay with the leading VA.
        kRwFault,      ///< Read-write synonym: conservative fault (§4.2).
    };

    Kind kind = Kind::kNewLeading;
    Asid leading_asid = 0;
    Vpn leading_vpn = kInvalidVpn;
    /** Bit-vector state for the requested line (L2 residency). */
    bool line_cached = false;
    /** Pages displaced to make room (cache purges required). */
    std::vector<FbtEvictedPage> victims;
};

/** Result of a reverse (physical -> leading virtual) lookup. */
struct ReverseLookup
{
    bool present = false;
    Asid asid = 0;
    Vpn leading_vpn = kInvalidVpn;
    bool line_cached = false;
};

/** The FBT. */
class Fbt
{
  public:
    explicit Fbt(const FbtParams &params = {})
        : params_(params)
    {
        if (params_.entries == 0)
            fatal("Fbt: entries must be nonzero");
        bt_sets_ = params_.entries / params_.bt_assoc;
        if (bt_sets_ == 0)
            bt_sets_ = 1;
        ft_sets_ = params_.entries / params_.ft_assoc;
        if (ft_sets_ == 0)
            ft_sets_ = 1;
        bt_.resize(params_.entries);
        ft_.resize(params_.entries);
    }

    // ---------------------------------------------------------------
    // L2-miss path (§4.1 "Synonym Detection and Management")
    // ---------------------------------------------------------------

    /**
     * Consult the BT with the translated PPN of an L2 virtual-cache
     * miss.  Allocates a new entry (given VA becomes leading) when none
     * exists; detects synonyms otherwise.  Displaced pages are reported
     * in the result for cache purging.
     *
     * @param asid       Requesting address space.
     * @param vpn        VPN the access used.
     * @param ppn        Translated PPN (from shared TLB or PTW).
     * @param page_perms Page permissions from the translation.
     * @param line_idx   Line-in-page index of the access (0..31).
     * @param is_write   The access is a store.
     */
    SynonymCheck
    onCacheMiss(Asid asid, Vpn vpn, Ppn ppn, Perms page_perms,
                unsigned line_idx, bool is_write)
    {
        ++bt_lookups_;
        SynonymCheck out;
        if (BtEntry *e = findBt(ppn)) {
            touchBt(*e);
            if (e->asid == asid && e->leading_vpn == vpn) {
                out.kind = SynonymCheck::Kind::kLeadingMatch;
                out.leading_asid = e->asid;
                out.leading_vpn = e->leading_vpn;
                out.line_cached = lineCached(*e, line_idx);
                if (is_write)
                    e->written = true;
                return out;
            }
            // A synonym: same physical page, different virtual name.
            ++synonym_accesses_;
            GVC_DPRINTF(kFbt, 0,
                        "synonym ppn=%#llx: (%u,%#llx) vs leading "
                        "(%u,%#llx)%s",
                        (unsigned long long)ppn, unsigned(asid),
                        (unsigned long long)vpn, unsigned(e->asid),
                        (unsigned long long)e->leading_vpn,
                        (e->written || is_write) ? " [RW FAULT]" : "");
            if (e->written || is_write) {
                ++rw_faults_;
                out.kind = SynonymCheck::Kind::kRwFault;
                out.leading_asid = e->asid;
                out.leading_vpn = e->leading_vpn;
                return out;
            }
            out.kind = SynonymCheck::Kind::kSynonym;
            out.leading_asid = e->asid;
            out.leading_vpn = e->leading_vpn;
            out.line_cached = lineCached(*e, line_idx);
            return out;
        }

        // No entry: the given VA becomes the page's leading VA.
        out.kind = SynonymCheck::Kind::kNewLeading;
        out.leading_asid = asid;
        out.leading_vpn = vpn;
        out.line_cached = false;
        allocate(asid, vpn, ppn, page_perms, is_write, /*large=*/false,
                 out.victims);
        return out;
    }

    /**
     * Allocate (or refresh) an entry for a 2 MB page in counter mode.
     * With split_large_pages the caller should instead call
     * onCacheMiss() per 4 KB subpage; this entry point exists for the
     * non-split configuration and its tests.
     */
    SynonymCheck
    onCacheMissLarge(Asid asid, Vpn large_vpn_base, Ppn large_ppn_base,
                     Perms page_perms, bool is_write)
    {
        ++bt_lookups_;
        SynonymCheck out;
        if (BtEntry *e = findBt(large_ppn_base)) {
            touchBt(*e);
            if (e->asid == asid && e->leading_vpn == large_vpn_base) {
                out.kind = SynonymCheck::Kind::kLeadingMatch;
            } else {
                ++synonym_accesses_;
                out.kind = (e->written || is_write)
                               ? SynonymCheck::Kind::kRwFault
                               : SynonymCheck::Kind::kSynonym;
            }
            out.leading_asid = e->asid;
            out.leading_vpn = e->leading_vpn;
            out.line_cached = e->line_count > 0;
            if (out.kind == SynonymCheck::Kind::kLeadingMatch && is_write)
                e->written = true;
            if (out.kind == SynonymCheck::Kind::kRwFault)
                ++rw_faults_;
            return out;
        }
        out.kind = SynonymCheck::Kind::kNewLeading;
        out.leading_asid = asid;
        out.leading_vpn = large_vpn_base;
        allocate(asid, large_vpn_base, large_ppn_base, page_perms,
                 is_write, /*large=*/true, out.victims);
        return out;
    }

    // ---------------------------------------------------------------
    // Forward lookups (FT)
    // ---------------------------------------------------------------

    /**
     * FBT-as-second-level-TLB lookup ("With OPT", §5.2): forward
     * translation for (asid, vpn) when it is a leading VA with a valid
     * entry.
     */
    std::optional<TlbLookup>
    forwardLookup(Asid asid, Vpn vpn)
    {
        ++ft_lookups_;
        if (const FtEntry *f = findFt(asid, vpn)) {
            ++ft_hits_;
            const BtEntry &e = bt_[f->bt_index];
            return TlbLookup{e.ppn, e.perms, e.large};
        }
        return std::nullopt;
    }

    /** True when (asid, vpn) is covered by a live leading entry —
     *  either its own 4 KB entry or a counter-mode 2 MB entry. */
    bool
    hasLeading(Asid asid, Vpn vpn) const
    {
        return const_cast<Fbt *>(this)->btOfLeading(asid, vpn) !=
               nullptr;
    }

    // ---------------------------------------------------------------
    // Bit-vector maintenance (L2 fills and evictions)
    // ---------------------------------------------------------------

    /** An L2 fill of line @p line_idx of the page led by (asid, vpn). */
    void
    lineFilled(Asid asid, Vpn vpn, unsigned line_idx)
    {
        BtEntry *e = btOfLeading(asid, vpn);
        if (!e)
            panic("Fbt::lineFilled: fill for page without FBT entry");
        if (e->large) {
            ++e->line_count;
        } else {
            e->line_bits |= (std::uint32_t{1} << line_idx);
        }
    }

    /** An L2 eviction of line @p line_idx of the page led by (asid,vpn).
     *  Consults the FT to find the BT entry (§4.1 "Eviction of Virtual
     *  Cache Lines"). */
    void
    lineEvicted(Asid asid, Vpn vpn, unsigned line_idx)
    {
        BtEntry *e = btOfLeading(asid, vpn);
        if (!e)
            return; // the entry itself was just purged
        if (e->large) {
            if (e->line_count > 0)
                --e->line_count;
        } else {
            e->line_bits &= ~(std::uint32_t{1} << line_idx);
        }
    }

    /** Record a write reaching the L2 for the page led by (asid,vpn). */
    void
    markWritten(Asid asid, Vpn vpn)
    {
        if (BtEntry *e = btOfLeading(asid, vpn))
            e->written = true;
    }

    // ---------------------------------------------------------------
    // Reverse lookups (coherence requests from the CPU/directory)
    // ---------------------------------------------------------------

    /**
     * Reverse-translate a physical line for an external coherence probe.
     * A miss means the GPU caches cannot hold the line: the probe is
     * filtered (§4.1 "Cache Coherence", the region-buffer-like filter).
     */
    ReverseLookup
    reverseLookup(Ppn ppn, unsigned line_idx)
    {
        ++reverse_lookups_;
        if (BtEntry *e = findBt(ppn)) {
            ReverseLookup r;
            r.present = true;
            r.asid = e->asid;
            r.leading_vpn = e->leading_vpn;
            r.line_cached = lineCached(*e, line_idx);
            return r;
        }
        ++probes_filtered_;
        return ReverseLookup{};
    }

    // ---------------------------------------------------------------
    // Shootdowns and explicit invalidation (§4.1)
    // ---------------------------------------------------------------

    /**
     * Single-entry TLB shootdown by virtual address: the FT locates the
     * BT entry; no match filters the shootdown entirely.
     * @return the purged page when an entry existed.
     */
    std::optional<FbtEvictedPage>
    shootdownPage(Asid asid, Vpn vpn)
    {
        ++shootdowns_;
        FtEntry *f = findFtMutable(asid, vpn);
        if (!f) {
            ++shootdowns_filtered_;
            return std::nullopt;
        }
        FbtEvictedPage page = snapshot(bt_[f->bt_index]);
        bt_[f->bt_index].valid = false;
        f->valid = false;
        return page;
    }

    /**
     * All-entry shootdown for one address space (or every space when
     * @p asid is nullopt).  @return every purged page.
     */
    std::vector<FbtEvictedPage>
    shootdownAll(std::optional<Asid> asid = std::nullopt)
    {
        std::vector<FbtEvictedPage> pages;
        for (auto &e : bt_) {
            if (e.valid && (!asid || e.asid == *asid)) {
                pages.push_back(snapshot(e));
                e.valid = false;
            }
        }
        for (auto &f : ft_) {
            if (f.valid && (!asid || f.asid == *asid))
                f.valid = false;
        }
        return pages;
    }

    // ---------------------------------------------------------------
    // Introspection and statistics
    // ---------------------------------------------------------------

    std::size_t
    validEntries() const
    {
        std::size_t n = 0;
        for (const auto &e : bt_)
            n += e.valid ? 1 : 0;
        return n;
    }

    /** Check the BT/FT bijection invariant (tests). */
    bool
    consistent() const
    {
        std::size_t bt_valid = 0, ft_valid = 0;
        for (const auto &e : bt_)
            bt_valid += e.valid ? 1 : 0;
        for (const auto &f : ft_) {
            if (!f.valid)
                continue;
            ++ft_valid;
            const BtEntry &e = bt_[f.bt_index];
            if (!e.valid || e.asid != f.asid || e.leading_vpn != f.vpn)
                return false;
        }
        return bt_valid == ft_valid;
    }

    std::uint64_t btLookups() const { return bt_lookups_.value; }
    std::uint64_t ftLookups() const { return ft_lookups_.value; }
    std::uint64_t ftHits() const { return ft_hits_.value; }
    std::uint64_t synonymAccesses() const { return synonym_accesses_.value; }
    std::uint64_t rwFaults() const { return rw_faults_.value; }
    std::uint64_t reverseLookups() const { return reverse_lookups_.value; }
    std::uint64_t probesFiltered() const { return probes_filtered_.value; }
    std::uint64_t shootdowns() const { return shootdowns_.value; }
    std::uint64_t shootdownsFiltered() const
    {
        return shootdowns_filtered_.value;
    }
    std::uint64_t allocations() const { return allocations_.value; }
    std::uint64_t capacityEvictions() const
    {
        return capacity_evictions_.value;
    }

    /** Second-level TLB hit ratio (paper: ~74%). */
    double
    ftHitRatio() const
    {
        return ft_lookups_.value
            ? double(ft_hits_.value) / double(ft_lookups_.value)
            : 0.0;
    }

    const FbtParams &params() const { return params_; }

  private:
    struct BtEntry
    {
        bool valid = false;
        Ppn ppn = kInvalidPpn;
        Asid asid = 0;
        Vpn leading_vpn = kInvalidVpn;
        Perms perms = kPermNone;
        std::uint32_t line_bits = 0;
        std::uint32_t line_count = 0; ///< Counter mode (large pages).
        bool large = false;
        bool written = false;
        std::uint64_t lru = 0;
    };

    struct FtEntry
    {
        bool valid = false;
        Asid asid = 0;
        Vpn vpn = kInvalidVpn;
        std::uint32_t bt_index = 0;
        std::uint64_t lru = 0;
    };

    static bool
    lineCached(const BtEntry &e, unsigned line_idx)
    {
        if (e.large)
            return e.line_count > 0;
        return (e.line_bits >> line_idx) & 1u;
    }

    static FbtEvictedPage
    snapshot(const BtEntry &e)
    {
        return FbtEvictedPage{e.asid, e.leading_vpn, e.ppn, e.line_bits,
                              e.large, e.line_count};
    }

    // --- BT set management (indexed by PPN) ---

    std::size_t btSet(Ppn ppn) const { return ppn % bt_sets_; }

    BtEntry *
    findBt(Ppn ppn)
    {
        const std::size_t base = btSet(ppn) * params_.bt_assoc;
        for (unsigned w = 0; w < params_.bt_assoc; ++w) {
            BtEntry &e = bt_[base + w];
            if (e.valid && e.ppn == ppn)
                return &e;
        }
        return nullptr;
    }

    void touchBt(BtEntry &e) { e.lru = ++lru_clock_; }

    // --- FT set management (indexed by hashed (asid, vpn)) ---

    std::size_t
    ftSet(Asid asid, Vpn vpn) const
    {
        std::uint64_t h = vpn ^ (std::uint64_t(asid) << 40);
        h ^= h >> 23;
        h *= 0x2127599bf4325c37ull;
        h ^= h >> 47;
        return std::size_t(h % ft_sets_);
    }

    const FtEntry *
    findFt(Asid asid, Vpn vpn) const
    {
        const std::size_t base = ftSet(asid, vpn) * params_.ft_assoc;
        for (unsigned w = 0; w < params_.ft_assoc; ++w) {
            const FtEntry &f = ft_[base + w];
            if (f.valid && f.asid == asid && f.vpn == vpn)
                return &f;
        }
        return nullptr;
    }

    FtEntry *
    findFtMutable(Asid asid, Vpn vpn)
    {
        return const_cast<FtEntry *>(findFt(asid, vpn));
    }

    /**
     * BT entry led by (asid, vpn), where @p vpn may be any 4 KB page of
     * a counter-mode 2 MB entry (whose FT key is the 2 MB-aligned VPN).
     */
    BtEntry *
    btOfLeading(Asid asid, Vpn vpn)
    {
        if (const FtEntry *f = findFt(asid, vpn)) {
            BtEntry &e = bt_[f->bt_index];
            if (e.valid)
                return &e;
        }
        const Vpn large_base = vpn & ~Vpn{0x1ff};
        if (large_base != vpn) {
            if (const FtEntry *f = findFt(asid, large_base)) {
                BtEntry &e = bt_[f->bt_index];
                if (e.valid && e.large)
                    return &e;
            }
        }
        return nullptr;
    }

    // --- allocation with paired eviction ---

    void
    allocate(Asid asid, Vpn vpn, Ppn ppn, Perms perms, bool written,
             bool large, std::vector<FbtEvictedPage> &victims)
    {
        ++allocations_;

        // Pick the BT way: an invalid way or the set's LRU.
        const std::size_t bt_base = btSet(ppn) * params_.bt_assoc;
        std::size_t bt_way = bt_base;
        for (unsigned w = 0; w < params_.bt_assoc; ++w) {
            BtEntry &e = bt_[bt_base + w];
            if (!e.valid) {
                bt_way = bt_base + w;
                break;
            }
            if (e.lru < bt_[bt_way].lru)
                bt_way = bt_base + w;
        }
        if (bt_[bt_way].valid) {
            ++capacity_evictions_;
            victims.push_back(snapshot(bt_[bt_way]));
            invalidateFtOf(bt_[bt_way]);
            bt_[bt_way].valid = false;
        }

        // Pick the FT way similarly; evicting a live FT entry must also
        // purge its BT partner to preserve the bijection.
        const std::size_t ft_base = ftSet(asid, vpn) * params_.ft_assoc;
        std::size_t ft_way = ft_base;
        for (unsigned w = 0; w < params_.ft_assoc; ++w) {
            FtEntry &f = ft_[ft_base + w];
            if (!f.valid) {
                ft_way = ft_base + w;
                break;
            }
            if (f.lru < ft_[ft_way].lru)
                ft_way = ft_base + w;
        }
        if (ft_[ft_way].valid) {
            ++capacity_evictions_;
            BtEntry &partner = bt_[ft_[ft_way].bt_index];
            if (partner.valid) {
                victims.push_back(snapshot(partner));
                partner.valid = false;
            }
            ft_[ft_way].valid = false;
        }

        BtEntry &e = bt_[bt_way];
        e.valid = true;
        e.ppn = ppn;
        e.asid = asid;
        e.leading_vpn = vpn;
        e.perms = perms;
        e.line_bits = 0;
        e.line_count = 0;
        e.large = large;
        e.written = written;
        e.lru = ++lru_clock_;

        FtEntry &f = ft_[ft_way];
        f.valid = true;
        f.asid = asid;
        f.vpn = vpn;
        f.bt_index = std::uint32_t(bt_way);
        f.lru = ++lru_clock_;
    }

    void
    invalidateFtOf(const BtEntry &e)
    {
        if (FtEntry *f = findFtMutable(e.asid, e.leading_vpn))
            f->valid = false;
    }

    FbtParams params_;
    std::size_t bt_sets_ = 1;
    std::size_t ft_sets_ = 1;
    std::vector<BtEntry> bt_;
    std::vector<FtEntry> ft_;
    std::uint64_t lru_clock_ = 0;

    Counter bt_lookups_;
    Counter ft_lookups_;
    Counter ft_hits_;
    Counter synonym_accesses_;
    Counter rw_faults_;
    Counter reverse_lookups_;
    Counter probes_filtered_;
    Counter shootdowns_;
    Counter shootdowns_filtered_;
    Counter allocations_;
    Counter capacity_evictions_;
};

} // namespace gvc

#endif // GVC_CORE_FBT_HH
