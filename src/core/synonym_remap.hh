/**
 * @file
 * Dynamic synonym remapping table (§4.3 "Future GPU System Support").
 *
 * The paper notes that systems with more active synonyms can integrate
 * the dynamic synonym remapping of Yoon & Sohi [52]: once the FBT
 * detects a synonymous access, the (non-leading VA -> leading VA) pair
 * is cached in a small remapping table consulted *before* the L1
 * virtual cache.  Subsequent accesses through the non-leading name are
 * rewritten up front and hit the caches directly, avoiding the
 * miss-replay round trip per access.
 *
 * Entries are invalidated when their leading page leaves the FBT
 * (purge/shootdown), which the hierarchy drives via dropLeading().
 */

#ifndef GVC_CORE_SYNONYM_REMAP_HH
#define GVC_CORE_SYNONYM_REMAP_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "sim/stats.hh"
#include "sim/types.hh"

namespace gvc
{

/** Remapping target: the page's leading name. */
struct RemapTarget
{
    Asid leading_asid = 0;
    Vpn leading_vpn = kInvalidVpn;
};

/** Small set-associative (non-leading VA -> leading VA) cache. */
class SynonymRemapTable
{
  public:
    /** @param entries 0 disables the table entirely. */
    explicit SynonymRemapTable(unsigned entries = 0, unsigned assoc = 4)
        : assoc_(assoc ? assoc : 1)
    {
        if (entries == 0)
            return;
        num_sets_ = entries / assoc_;
        if (num_sets_ == 0)
            num_sets_ = 1;
        sets_.resize(num_sets_);
    }

    bool enabled() const { return !sets_.empty(); }

    /** Rewrite (asid, vpn) if a remapping is cached. */
    std::optional<RemapTarget>
    lookup(Asid asid, Vpn vpn)
    {
        if (!enabled())
            return std::nullopt;
        ++lookups_;
        auto &set = sets_[setIndex(asid, vpn)];
        for (auto &e : set) {
            if (e.valid && e.asid == asid && e.vpn == vpn) {
                ++hits_;
                e.lru = ++lru_clock_;
                return RemapTarget{e.leading_asid, e.leading_vpn};
            }
        }
        return std::nullopt;
    }

    /** Record a detected synonym (called from the FBT check path). */
    void
    insert(Asid asid, Vpn vpn, const RemapTarget &target)
    {
        if (!enabled())
            return;
        auto &set = sets_[setIndex(asid, vpn)];
        for (auto &e : set) {
            if (e.valid && e.asid == asid && e.vpn == vpn) {
                e.leading_asid = target.leading_asid;
                e.leading_vpn = target.leading_vpn;
                e.lru = ++lru_clock_;
                return;
            }
        }
        Entry fresh{true, asid, vpn, target.leading_asid,
                    target.leading_vpn, ++lru_clock_};
        if (set.size() < assoc_) {
            set.push_back(fresh);
            return;
        }
        std::size_t victim = 0;
        for (std::size_t i = 1; i < set.size(); ++i)
            if (set[i].lru < set[victim].lru)
                victim = i;
        set[victim] = fresh;
    }

    /** A leading page left the FBT: drop remappings that point at it. */
    void
    dropLeading(Asid leading_asid, Vpn leading_vpn)
    {
        if (!enabled())
            return;
        for (auto &set : sets_) {
            for (std::size_t i = set.size(); i-- > 0;) {
                if (set[i].valid &&
                    set[i].leading_asid == leading_asid &&
                    set[i].leading_vpn == leading_vpn) {
                    set.erase(set.begin() + long(i));
                    ++drops_;
                }
            }
        }
    }

    /** A non-leading page was shot down: drop its remapping. */
    void
    dropSource(Asid asid, Vpn vpn)
    {
        if (!enabled())
            return;
        auto &set = sets_[setIndex(asid, vpn)];
        for (std::size_t i = set.size(); i-- > 0;) {
            if (set[i].valid && set[i].asid == asid &&
                set[i].vpn == vpn) {
                set.erase(set.begin() + long(i));
                ++drops_;
            }
        }
    }

    /**
     * Drop every remapping (kernel-boundary FBT drop).  Also rewinds the
     * LRU clock so replacement decisions after the reset match a freshly
     * constructed table bit for bit.
     */
    void
    clear()
    {
        for (auto &set : sets_)
            set.clear();
        lru_clock_ = 0;
    }

    std::uint64_t lookups() const { return lookups_.value; }
    std::uint64_t hits() const { return hits_.value; }
    std::uint64_t drops() const { return drops_.value; }

    std::size_t
    size() const
    {
        std::size_t n = 0;
        for (const auto &set : sets_)
            n += set.size();
        return n;
    }

  private:
    struct Entry
    {
        bool valid = false;
        Asid asid = 0;
        Vpn vpn = kInvalidVpn;
        Asid leading_asid = 0;
        Vpn leading_vpn = kInvalidVpn;
        std::uint64_t lru = 0;
    };

    std::size_t
    setIndex(Asid asid, Vpn vpn) const
    {
        return std::size_t((vpn ^ (std::uint64_t(asid) << 16)) %
                           num_sets_);
    }

    unsigned assoc_;
    std::size_t num_sets_ = 0;
    std::vector<std::vector<Entry>> sets_;
    std::uint64_t lru_clock_ = 0;
    Counter lookups_;
    Counter hits_;
    Counter drops_;
};

} // namespace gvc

#endif // GVC_CORE_SYNONYM_REMAP_HH
