/**
 * @file
 * Per-L1 invalidation filter (§4.2).
 *
 * Modern GPU L1s cannot be probed, so when an FBT entry is evicted or a
 * shootdown arrives the IOMMU broadcasts an invalidation to every L1.
 * Each L1 keeps this small filter — virtual page number tag plus a
 * counter of resident lines from the page — so invalidations for pages
 * the L1 never cached are dropped, and a filter hit triggers a full L1
 * flush (the L1 is write-through-no-allocate, so flushing writes back
 * nothing).
 *
 * The filter is finite; displacing a nonzero-count entry would lose
 * inclusion information, so the filter sets a conservative overflow flag
 * instead, which makes every subsequent invalidation look like a hit
 * until the next full flush resets the filter.
 */

#ifndef GVC_CORE_INVALIDATION_FILTER_HH
#define GVC_CORE_INVALIDATION_FILTER_HH

#include <cstdint>
#include <vector>

#include "sim/stats.hh"
#include "sim/types.hh"

namespace gvc
{

/** One CU's invalidation filter. */
class InvalidationFilter
{
  public:
    /**
     * @param entries  Total entries (§4.3 sizes ~1 KB per 32 KB L1;
     *                 with a ~4 B entry that is 256 entries).
     * @param assoc    Set associativity.
     */
    explicit InvalidationFilter(unsigned entries = 256, unsigned assoc = 8)
        : assoc_(assoc)
    {
        num_sets_ = entries / assoc;
        if (num_sets_ == 0)
            num_sets_ = 1;
        sets_.resize(num_sets_);
    }

    /** The L1 filled a line of (asid, vpn). */
    void
    lineFilled(Asid asid, Vpn vpn)
    {
        auto &set = sets_[setIndex(asid, vpn)];
        for (auto &e : set.entries) {
            if (e.valid && e.asid == asid && e.vpn == vpn) {
                ++e.count;
                return;
            }
        }
        for (auto &e : set.entries) {
            if (!e.valid || e.count == 0) {
                e = Entry{true, asid, vpn, 1};
                return;
            }
        }
        if (set.entries.size() < assoc_) {
            set.entries.push_back(Entry{true, asid, vpn, 1});
            return;
        }
        // Would displace live inclusion info: go conservative instead.
        set.overflowed = true;
        ++overflows_;
    }

    /** The L1 evicted a line of (asid, vpn). */
    void
    lineEvicted(Asid asid, Vpn vpn)
    {
        auto &set = sets_[setIndex(asid, vpn)];
        for (auto &e : set.entries) {
            if (e.valid && e.asid == asid && e.vpn == vpn) {
                if (e.count > 0)
                    --e.count;
                if (e.count == 0)
                    e.valid = false;
                return;
            }
        }
        // Untracked eviction is only legal once the set overflowed.
    }

    /**
     * Screen an invalidation request for (asid, vpn).
     * @return true when the L1 may hold lines of the page (flush needed).
     */
    bool
    maybePresent(Asid asid, Vpn vpn) const
    {
        const auto &set = sets_[setIndex(asid, vpn)];
        if (set.overflowed)
            return true;
        for (const auto &e : set.entries)
            if (e.valid && e.asid == asid && e.vpn == vpn && e.count > 0)
                return true;
        return false;
    }

    /** Process an invalidation; counts filtered vs. flush outcomes. */
    bool
    onInvalidate(Asid asid, Vpn vpn)
    {
        ++invalidations_;
        if (maybePresent(asid, vpn)) {
            ++flushes_;
            return true;
        }
        ++filtered_;
        return false;
    }

    /** The L1 was fully flushed: all counts reset, overflow cleared. */
    void
    reset()
    {
        for (auto &set : sets_) {
            set.entries.clear();
            set.overflowed = false;
        }
    }

    std::uint64_t invalidationsSeen() const { return invalidations_.value; }
    std::uint64_t invalidationsFiltered() const { return filtered_.value; }
    std::uint64_t flushesTriggered() const { return flushes_.value; }
    std::uint64_t overflowEvents() const { return overflows_.value; }

  private:
    struct Entry
    {
        bool valid = false;
        Asid asid = 0;
        Vpn vpn = kInvalidVpn;
        std::uint32_t count = 0;
    };

    struct Set
    {
        std::vector<Entry> entries;
        bool overflowed = false;
    };

    std::size_t
    setIndex(Asid asid, Vpn vpn) const
    {
        return std::size_t((vpn ^ (std::uint64_t(asid) << 20)) %
                           num_sets_);
    }

    unsigned assoc_;
    std::size_t num_sets_ = 1;
    std::vector<Set> sets_;
    Counter invalidations_;
    Counter filtered_;
    Counter flushes_;
    Counter overflows_;
};

} // namespace gvc

#endif // GVC_CORE_INVALIDATION_FILTER_HH
