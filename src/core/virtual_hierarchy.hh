/**
 * @file
 * The proposed GPU virtual cache hierarchy (§4, Figure 6).
 *
 * Both GPU cache levels are virtually indexed and virtually tagged
 * (VA + ASID tags, per-line permissions); there are no per-CU TLBs.
 * Translation happens only on L2 misses, at the IOMMU: the small shared
 * TLB (rate-limited port), optionally the FBT's forward table as a
 * second-level TLB ("With OPT"), then the multi-threaded walker.  The BT
 * is consulted with the resulting PPN to detect synonyms and enforce the
 * unique-leading-VA placement rule; read-only synonyms replay with the
 * leading VA, read-write synonyms raise a (recorded) fault.  FBT entry
 * displacement and TLB shootdowns purge the caches: selectively in the
 * L2 via the bit vectors, and via the per-L1 invalidation filters (full
 * L1 flush on filter hit — the L1s are write-through, so no writebacks).
 */

#ifndef GVC_CORE_VIRTUAL_HIERARCHY_HH
#define GVC_CORE_VIRTUAL_HIERARCHY_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "cache/bank_port.hh"
#include "cache/cache_array.hh"
#include "cache/directory.hh"
#include "cache/mshr.hh"
#include "core/fbt.hh"
#include "core/invalidation_filter.hh"
#include "core/synonym_remap.hh"
#include "gpu/cu.hh"
#include "mem/dram.hh"
#include "mem/vm.hh"
#include "sim/debug.hh"
#include "mmu/boundary.hh"
#include "mmu/injection.hh"
#include "mmu/soc_config.hh"
#include "tlb/iommu.hh"

namespace gvc
{

/** Outcome of an external coherence probe routed through the BT. */
struct ProbeResult
{
    bool filtered = false; ///< No BT entry: GPU cannot hold the line.
    /** BT entry exists but neither the L2 bit-vector nor any L1
     *  invalidation filter covers the line: no cache was touched. */
    bool line_filtered = false;
    bool line_present = false;
    bool invalidated = false;
    bool was_dirty = false; ///< The invalidated copy held dirty data.
};

/** The full virtual cache hierarchy (L1 + L2 virtual, FBT in IOMMU). */
class VirtualCacheSystem final : public GpuMemInterface
{
  public:
    VirtualCacheSystem(SimContext &ctx, const SocConfig &cfg, Vm &vm,
                       Dram &dram)
        : ctx_(ctx), cfg_(cfg), dram_(dram), vm_(vm),
          dir_(ctx, dram, Directory::Params{cfg.dir_latency}),
          l2_(CacheParams{cfg.l2_size, cfg.l2_assoc, unsigned(kLineSize),
                          /*write_back=*/true, /*write_allocate=*/true,
                          cfg.track_lifetimes}),
          fbt_(cfg.fbt), iommu_(ctx, vm, dram, cfg.iommuParams()),
          remap_(cfg.synonym_remap_entries),
          injection_(ctx, cfg.gpu.num_cus, cfg.cu_injection_rate)
    {
        // Directory probes reach the GPU through the backward table.
        dir_.setProbeSink(DirNode::kGpu, [this](Paddr line, bool inv) {
            const ProbeResult r = coherenceProbe(line, inv);
            return ProbeOutcome{r.line_present, r.was_dirty};
        });
        for (unsigned i = 0; i < cfg.gpu.num_cus; ++i) {
            l1s_.push_back(std::make_unique<CacheArray>(
                CacheParams{cfg.l1_size, cfg.l1_assoc, unsigned(kLineSize),
                            /*write_back=*/false, /*write_allocate=*/false,
                            cfg.track_lifetimes}));
            filters_.push_back(std::make_unique<InvalidationFilter>());
        }
        banks_.reserve(cfg.l2_banks);
        for (unsigned i = 0; i < cfg.l2_banks; ++i)
            banks_.emplace_back(1.0);

        if (cfg.fbt_as_second_level_tlb) {
            iommu_.setSecondLevel([this](Asid asid, Vpn vpn) {
                return fbt_.forwardLookup(asid, vpn);
            });
        }

        vm.addPageShootdownListener([this](Asid asid, Vpn vpn) {
            remap_.dropSource(asid, vpn);
            if (auto page = fbt_.shootdownPage(asid, vpn))
                purgePage(*page);
        });
        vm.addFullShootdownListener([this](Asid asid) {
            for (const auto &page : fbt_.shootdownAll(asid))
                purgePage(page);
        });
    }

    // ---------------------------------------------------------------
    // GpuMemInterface
    // ---------------------------------------------------------------

    void
    access(unsigned cu_id, Asid asid, Vaddr line_va, bool is_store,
           Callback done) override
    {
        // §4.3 extension: rewrite known synonyms to their leading name
        // before the L1 lookup, so they hit the caches directly.
        if (auto t = remap_.lookup(asid, pageOf(line_va))) {
            asid = t->leading_asid;
            line_va = pageBase(t->leading_vpn) |
                      (line_va & kPageMask & ~kLineMask);
        }
        injection_.inject(cu_id, [this, cu_id, asid, line_va, is_store,
                                  done = std::move(done)]() mutable {
            ctx_.eq.scheduleIn(cfg_.l1_latency,
                               [this, cu_id, asid, line_va, is_store,
                                done = std::move(done)]() mutable {
                                   l1Access(cu_id, asid, line_va,
                                            is_store, std::move(done));
                               });
        });
    }

    // ---------------------------------------------------------------
    // Coherence requests from the CPU / directory (§4.1)
    // ---------------------------------------------------------------

    /**
     * Route a physical-address coherence probe through the BT.  A BT
     * miss filters the probe (the GPU caches cannot hold the line).
     * When @p invalidate is set, a present line is removed from the L2
     * (writing back if dirty) and the L1 filters are consulted.
     */
    ProbeResult
    coherenceProbe(Paddr line_pa, bool invalidate)
    {
        ProbeResult out;
        const auto r =
            fbt_.reverseLookup(frameOf(line_pa), lineInPage(line_pa));
        if (!r.present) {
            out.filtered = true;
            return out;
        }
        const Vaddr line_va =
            pageBase(r.leading_vpn) | (line_pa & kPageMask & ~kLineMask);
        out.line_present = r.line_cached;

        // Line-level filtering: the bit-vector says the L2 does not
        // hold the line; if no L1 invalidation filter covers the page
        // either (non-inclusive L1s), the probe touches no cache.
        bool l1_may_hold = false;
        for (const auto &f : filters_)
            l1_may_hold = l1_may_hold ||
                          f->maybePresent(r.asid, r.leading_vpn);
        if (!r.line_cached && !l1_may_hold) {
            out.line_filtered = true;
            ++probe_lines_filtered_;
            return out;
        }

        if (invalidate) {
            if (auto info = l2_.invalidateLine(r.asid, line_va)) {
                fbt_.lineEvicted(r.asid, r.leading_vpn,
                                 lineInPage(line_va));
                out.was_dirty = info->dirty;
                out.invalidated = true;
            }
            for (unsigned cu = 0; cu < l1s_.size(); ++cu) {
                if (filters_[cu]->onInvalidate(r.asid, r.leading_vpn)) {
                    l1s_[cu]->invalidateAll();
                    filters_[cu]->reset();
                    ++l1_flushes_;
                }
            }
        }
        return out;
    }

    // ---------------------------------------------------------------
    // Accessors and statistics
    // ---------------------------------------------------------------

    Fbt &fbt() { return fbt_; }
    const Fbt &fbt() const { return fbt_; }
    Iommu &iommu() { return iommu_; }
    const Iommu &iommu() const { return iommu_; }
    Directory &directory() { return dir_; }
    CacheArray &l1(unsigned cu) { return *l1s_[cu]; }
    const CacheArray &l1(unsigned cu) const { return *l1s_[cu]; }
    CacheArray &l2() { return l2_; }
    const CacheArray &l2() const { return l2_; }
    InvalidationFilter &filter(unsigned cu) { return *filters_[cu]; }
    SynonymRemapTable &remapTable() { return remap_; }
    const SynonymRemapTable &remapTable() const { return remap_; }

    std::uint64_t synonymReplays() const { return synonym_replays_.value; }
    std::uint64_t translationMerges() const { return xlate_merges_.value; }
    std::uint64_t rwFaults() const { return rw_faults_.value; }
    std::uint64_t protectionFaults() const
    {
        return protection_faults_.value;
    }
    std::uint64_t fbtPurges() const { return fbt_purges_.value; }
    std::uint64_t l1Flushes() const { return l1_flushes_.value; }
    std::uint64_t probeLinesFiltered() const
    {
        return probe_lines_filtered_.value;
    }
    std::uint64_t droppedFills() const { return dropped_fills_.value; }

    void
    flushLifetimes()
    {
        for (auto &l1 : l1s_)
            l1->flushLifetimes();
        l2_.flushLifetimes();
    }

    /**
     * Kernel boundary (§4).  The FBT is inclusive of the virtual caches,
     * so the requested flags cascade: a TLB shootdown drops the FBT, and
     * dropping the FBT (or the L2, whose line bits the FBT holds) drops
     * every cache level plus the synonym remap table.  Unlike the
     * simulated purge path (purgePage), this is a harness-level reset:
     * no writeback traffic is modelled and no result counters move, so
     * a flush-all warm round stays bit-identical to a fresh cold run.
     */
    void
    applyBoundary(const BoundaryPolicy &p)
    {
        const bool drop_fbt =
            p.flush_fbt || p.flush_l2 || p.shootdown_tlbs;
        if (p.flush_l1 || drop_fbt) {
            for (unsigned cu = 0; cu < l1s_.size(); ++cu) {
                l1s_[cu]->invalidateAll();
                filters_[cu]->reset();
            }
        }
        if (drop_fbt) {
            l2_.invalidateAll(); // dirty lines dropped silently
            fbt_.shootdownAll();
            remap_.clear();
        }
        if (p.shootdown_tlbs) {
            iommu_.invalidateAll();
            iommu_.ptw().pwc().invalidateAll();
        }
    }

  private:
    // --- L1 stage (virtual, write-through no-allocate) ---

    void
    l1Access(unsigned cu_id, Asid asid, Vaddr line_va, bool is_store,
             Callback done)
    {
        const auto perms = l1s_[cu_id]->linePerms(asid, line_va);
        const bool usable =
            perms && (!is_store || permsAllow(*perms, kPermWrite));
        if (usable) {
            l1s_[cu_id]->access(asid, line_va, is_store, ctx_.now());
            if (!is_store) {
                done();
                return;
            }
            // Store hit still writes through to the L2.
        } else if (!perms) {
            l1s_[cu_id]->access(asid, line_va, false, ctx_.now());
        } else if (perms && is_store) {
            // Write to a read-only line: drop the stale copy; the miss
            // path below re-checks permissions at translation time.
            if (auto info = l1s_[cu_id]->invalidateLine(asid, line_va)) {
                filters_[cu_id]->lineEvicted(info->asid,
                                             pageOf(info->line_addr));
            }
        }
        sendToL2(cu_id, asid, line_va, is_store, std::move(done));
    }

    // --- L2 stage (virtual, banked, write-back write-allocate) ---

    void
    sendToL2(unsigned cu_id, Asid asid, Vaddr line_va, bool is_store,
             Callback done)
    {
        const Tick arrive = ctx_.now() + cfg_.cu_to_l2;
        const unsigned bank =
            unsigned((line_va >> kLineShift) % cfg_.l2_banks);
        ctx_.eq.schedule(arrive, [this, cu_id, asid, line_va, is_store,
                                  bank, done = std::move(done)]() mutable {
            const Tick start = banks_[bank].acquire(ctx_.now());
            ctx_.eq.schedule(start + cfg_.l2_latency,
                             [this, cu_id, asid, line_va, is_store,
                              done = std::move(done)]() mutable {
                                 l2Access(cu_id, asid, line_va, is_store,
                                          std::move(done));
                             });
        });
    }

    void
    l2Access(unsigned cu_id, Asid asid, Vaddr line_va, bool is_store,
             Callback done)
    {
        const auto perms = l2_.linePerms(asid, line_va);
        const bool usable =
            perms && (!is_store || permsAllow(*perms, kPermWrite));
        if (usable) {
            l2_.access(asid, line_va, is_store, ctx_.now());
            if (is_store)
                fbt_.markWritten(asid, pageOf(line_va));
            else
                l1Fill(cu_id, asid, line_va, *perms);
            ctx_.eq.scheduleIn(cfg_.cu_to_l2, std::move(done));
            return;
        }
        if (!perms)
            l2_.access(asid, line_va, false, ctx_.now()); // count miss

        // Virtual L2 miss: translation required (the only point where
        // the IOMMU is consulted in this design).
        const std::uint64_t key = mshrKey(asid, line_va);
        pending_store_[key] = pending_store_[key] || is_store;
        // WakeFn up front: a raw lambda would convert through a
        // temporary on the first allocate() and lose its captures.
        MshrTable::WakeFn waiter = [this, cu_id, asid, line_va, is_store,
                                    done = std::move(done)]() mutable {
            if (!is_store) {
                // Fill the L1 only if the data landed under this VA
                // (i.e., this VA is the leading VA; synonym replays
                // leave the non-leading access uncached, §4.1).
                if (auto p = l2_.linePerms(asid, line_va))
                    l1Fill(cu_id, asid, line_va, *p);
            }
            ctx_.eq.scheduleIn(cfg_.cu_to_l2, std::move(done));
        };
        if (mshrs_.allocate(key, std::move(waiter)) ==
            MshrTable::Result::kSecondary)
            return;
        mshrs_.allocate(key, std::move(waiter));

        // Coalesce concurrent translation requests for the same page:
        // one IOMMU access serves every outstanding line miss of the
        // page (standard MSHR-style merging; without it any DRAM-bound
        // streaming phase would falsely bottleneck on the shared TLB
        // port even though it only needs one translation per page).
        const std::uint64_t xkey =
            pageOf(line_va) | (std::uint64_t(asid) << 40);
        auto [it, fresh] = xlate_pending_.try_emplace(xkey);
        it->second.push_back(
            [this, cu_id, asid, line_va, is_store,
             key](const IommuResponse &resp) {
                onTranslation(cu_id, asid, line_va, is_store, key, resp);
            });
        if (!fresh) {
            ++xlate_merges_;
            return;
        }
        ctx_.eq.scheduleIn(cfg_.l2_to_iommu, [this, asid, line_va,
                                              xkey] {
            iommu_.translate(asid, pageOf(line_va),
                             [this, xkey](const IommuResponse &resp) {
                                 auto node = xlate_pending_.extract(xkey);
                                 if (node.empty())
                                     return;
                                 for (auto &fn : node.mapped())
                                     fn(resp);
                             });
        });
    }

    // --- IOMMU response: permission check, then the BT synonym check ---

    void
    onTranslation(unsigned cu_id, Asid asid, Vaddr line_va, bool is_store,
                  std::uint64_t key, const IommuResponse &resp)
    {
        if (resp.fault)
            fatal("VirtualCacheSystem: unhandled GPU page fault");
        const Perms need = is_store ? kPermWrite : kPermRead;
        if (!permsAllow(resp.perms, need)) {
            ++protection_faults_;
            completeKey(key);
            return;
        }
        ctx_.eq.scheduleIn(cfg_.fbt_latency, [this, cu_id, asid, line_va,
                                              is_store, key, resp] {
            synonymCheck(cu_id, asid, line_va, is_store, key, resp);
        });
    }

    void
    synonymCheck(unsigned cu_id, Asid asid, Vaddr line_va, bool is_store,
                 std::uint64_t key, const IommuResponse &resp)
    {
        // 2 MB pages either split into 4 KB subpage entries (§4.3
        // optimization, the default) or use one counter-mode entry.
        const bool counter_mode =
            resp.large && !cfg_.fbt.split_large_pages;
        SynonymCheck check;
        if (counter_mode) {
            const Vpn vpn = pageOf(line_va);
            const Vpn large_base = vpn & ~Vpn{0x1ff};
            const Ppn ppn_base = resp.ppn - (vpn & 0x1ff);
            check = fbt_.onCacheMissLarge(asid, large_base, ppn_base,
                                          resp.perms, is_store);
            // Counter mode has no per-line bits: always fetch.
            check.line_cached = false;
        } else {
            check = fbt_.onCacheMiss(asid, pageOf(line_va), resp.ppn,
                                     resp.perms, lineInPage(line_va),
                                     is_store);
        }
        for (const auto &victim : check.victims)
            purgePage(victim);

        switch (check.kind) {
          case SynonymCheck::Kind::kNewLeading:
          case SynonymCheck::Kind::kLeadingMatch:
            if (check.line_cached) {
                // In-flight fill already landed (same leading VA).
                completeKey(key);
            } else {
                fetchLine(asid, line_va, resp.perms, resp.ppn, key);
            }
            return;
          case SynonymCheck::Kind::kSynonym: {
            ++synonym_replays_;
            GVC_DPRINTF(kVc, ctx_.now(),
                        "replay with leading asid=%u vpn=%#llx",
                        unsigned(check.leading_asid),
                        (unsigned long long)check.leading_vpn);
            // Cache the remapping so future accesses through this
            // name are rewritten before the L1 (§4.3, if enabled).
            if (!counter_mode) {
                remap_.insert(asid, pageOf(line_va),
                              RemapTarget{check.leading_asid,
                                          check.leading_vpn});
            }
            // Rebase onto the leading name: at 2 MB granularity for
            // counter-mode entries, 4 KB otherwise.
            const Vaddr leading_line =
                counter_mode
                    ? (pageBase(check.leading_vpn) |
                       (line_va & (kLargePageSize - 1) & ~kLineMask))
                    : (pageBase(check.leading_vpn) |
                       (line_va & kPageMask & ~kLineMask));
            // Replay the access through the hierarchy with the leading
            // VA; waiters of the original key complete when it does.
            access(cu_id, check.leading_asid, leading_line, is_store,
                   [this, key] { completeKey(key); });
            return;
          }
          case SynonymCheck::Kind::kRwFault:
            ++rw_faults_;
            completeKey(key);
            return;
        }
    }

    // --- memory fetch and L2 fill under the leading VA ---

    void
    fetchLine(Asid asid, Vaddr line_va, Perms page_perms, Ppn ppn,
              std::uint64_t key)
    {
        // The IOMMU sits next to the directory (Figure 6), so the
        // translated request proceeds to the directory without another
        // network hop; the directory handles CPU-side conflicts and
        // the memory access.
        const Paddr line_pa =
            pageBase(ppn) | (line_va & kPageMask & ~kLineMask);
        const bool exclusive = pending_store_[key];
        dir_.fetch(DirNode::kGpu, line_pa, exclusive,
                   [this, asid, line_va, page_perms, key] {
                       fillL2(asid, line_va, page_perms, key);
                   });
    }

    void
    fillL2(Asid asid, Vaddr line_va, Perms page_perms, std::uint64_t key)
    {
        const Vpn vpn = pageOf(line_va);
        if (!fbt_.hasLeading(asid, vpn)) {
            // The page was purged (shootdown / FBT eviction) while the
            // fill was in flight: drop the fill, complete the waiters.
            ++dropped_fills_;
            completeKey(key);
            return;
        }
        const bool dirty = pending_store_[key];
        const auto victim =
            l2_.insert(asid, line_va, page_perms, dirty, ctx_.now());
        fbt_.lineFilled(asid, vpn, lineInPage(line_va));
        if (dirty)
            fbt_.markWritten(asid, vpn);
        if (victim) {
            fbt_.lineEvicted(victim->asid, pageOf(victim->line_addr),
                             lineInPage(victim->line_addr));
            if (victim->dirty)
                writebackVictim(*victim);
        }
        completeKey(key);
    }

    void
    completeKey(std::uint64_t key)
    {
        pending_store_.erase(key);
        mshrs_.complete(key);
    }

    // --- L1 fills with invalidation-filter bookkeeping ---

    void
    l1Fill(unsigned cu_id, Asid asid, Vaddr line_va, Perms perms)
    {
        if (l1s_[cu_id]->present(asid, line_va))
            return; // a racing fill landed first; filter already counted
        const auto victim =
            l1s_[cu_id]->insert(asid, line_va, perms, false, ctx_.now());
        filters_[cu_id]->lineFilled(asid, pageOf(line_va));
        if (victim) {
            filters_[cu_id]->lineEvicted(victim->asid,
                                         pageOf(victim->line_addr));
        }
    }

    // --- page purges (FBT displacement, shootdowns) ---

    void
    purgePage(const FbtEvictedPage &page)
    {
        ++fbt_purges_;
        GVC_DPRINTF(kVc, ctx_.now(),
                    "purge page asid=%u vpn=%#llx bits=%#x",
                    unsigned(page.asid),
                    (unsigned long long)page.leading_vpn,
                    page.line_bits);
        remap_.dropLeading(page.asid, page.leading_vpn);
        if (!page.large) {
            // Selective L2 invalidation driven by the bit vector.
            std::uint32_t bits = page.line_bits;
            while (bits) {
                const unsigned idx = unsigned(__builtin_ctz(bits));
                bits &= bits - 1;
                const Vaddr line = pageBase(page.leading_vpn) +
                                   std::uint64_t(idx) * kLineSize;
                if (auto info = l2_.invalidateLine(page.asid, line)) {
                    if (info->dirty)
                        writebackVictim(*info);
                }
            }
        } else if (page.line_count > 0) {
            // Counter mode: no per-line map, walk the page's lines.
            const std::uint64_t subpages = kLargePageSize / kPageSize;
            for (std::uint64_t sp = 0; sp < subpages; ++sp) {
                l2_.invalidatePage(
                    page.asid,
                    pageBase(page.leading_vpn + sp),
                    [this](const CacheLineInfo &info) {
                        if (info.dirty)
                            writebackVictim(info);
                    });
            }
        }
        // Broadcast to the L1 invalidation filters.
        for (unsigned cu = 0; cu < l1s_.size(); ++cu) {
            if (filters_[cu]->onInvalidate(page.asid, page.leading_vpn)) {
                l1s_[cu]->invalidateAll();
                filters_[cu]->reset();
                ++l1_flushes_;
            }
        }
    }

    /** Write a dirty victim back through the directory; falls back to
     *  a raw memory write when its page is already unmapped. */
    void
    writebackVictim(const CacheLineInfo &victim)
    {
        const auto t = vm_.translate(victim.asid, victim.line_addr);
        if (t) {
            const Paddr pa =
                pageBase(t->ppn) |
                (victim.line_addr & kPageMask & ~kLineMask);
            dir_.writeback(DirNode::kGpu, pa);
        } else {
            dram_.access(kLineSize, [] {});
        }
    }

    static std::uint64_t
    mshrKey(Asid asid, Vaddr line_va)
    {
        return (line_va >> kLineShift) | (std::uint64_t(asid) << 52);
    }

    SimContext &ctx_;
    SocConfig cfg_;
    Dram &dram_;
    Vm &vm_;
    Directory dir_;
    std::vector<std::unique_ptr<CacheArray>> l1s_;
    std::vector<std::unique_ptr<InvalidationFilter>> filters_;
    CacheArray l2_;
    std::vector<BankPort> banks_;
    MshrTable mshrs_;
    std::unordered_map<std::uint64_t, bool> pending_store_;
    std::unordered_map<
        std::uint64_t,
        std::vector<SmallFunc<void(const IommuResponse &)>>>
        xlate_pending_;
    Fbt fbt_;
    Iommu iommu_;
    SynonymRemapTable remap_;
    CuInjectionPorts injection_;

    Counter xlate_merges_;
    Counter synonym_replays_;
    Counter rw_faults_;
    Counter protection_faults_;
    Counter fbt_purges_;
    Counter l1_flushes_;
    Counter dropped_fills_;
    Counter probe_lines_filtered_;
};

} // namespace gvc

#endif // GVC_CORE_VIRTUAL_HIERARCHY_HH
