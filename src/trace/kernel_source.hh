/**
 * @file
 * KernelSource: the provenance-agnostic interface between workload
 * generation and simulation.  The runner drives a KernelSource without
 * knowing whether warp streams come from a live workload generator or a
 * captured trace file; recording and replay are wrappers at this layer,
 * not special cases inside the simulator.
 */

#ifndef GVC_TRACE_KERNEL_SOURCE_HH
#define GVC_TRACE_KERNEL_SOURCE_HH

#include <memory>
#include <string>
#include <vector>

#include "trace/trace.hh"
#include "workloads/registry.hh"

namespace gvc::trace
{

/**
 * Something that can populate a VM image and emit kernel launches.
 *
 * Lifecycle: setup() exactly once on a fresh Vm (the source creates its
 * own processes), then kernels() exactly once.
 */
class KernelSource
{
  public:
    virtual ~KernelSource() = default;

    /** Workload name (for results and reports). */
    virtual std::string name() const = 0;

    /** Generation parameters (seed feeds the simulation context). */
    virtual const WorkloadParams &params() const = 0;

    /** Create processes and map/initialize all device data. */
    virtual void setup(Vm &vm) = 0;

    /** Produce every kernel launch (call once, after setup). */
    virtual std::vector<KernelLaunch> kernels() = 0;

    /**
     * Kernel boundaries between the launches kernels() returns, in
     * strictly increasing launch order (see TraceBoundary).  Empty for
     * plain single-scenario sources; the runner applies each boundary's
     * policy after the named launch completes.
     */
    virtual const std::vector<TraceBoundary> &
    boundaries() const
    {
        static const std::vector<TraceBoundary> kNone;
        return kNone;
    }
};

/** Live generation: wraps a registry workload. */
class WorkloadKernelSource final : public KernelSource
{
  public:
    WorkloadKernelSource(const std::string &name,
                         const WorkloadParams &params)
        : name_(name), params_(params), workload_(makeWorkload(name, params))
    {
    }

    std::string name() const override { return name_; }
    const WorkloadParams &params() const override { return params_; }

    void
    setup(Vm &vm) override
    {
        asid_ = vm.createProcess();
        workload_->setup(vm, asid_);
    }

    std::vector<KernelLaunch>
    kernels() override
    {
        return workload_->kernels();
    }

  private:
    std::string name_;
    WorkloadParams params_;
    std::unique_ptr<Workload> workload_;
    Asid asid_ = 0;
};

/**
 * A WarpStream over a warp recorded in a Trace.  Non-copying: iterates
 * the trace's own instruction vector, keeping the trace alive via a
 * shared_ptr, so replaying a capture across many designs shares one
 * in-memory copy of the streams.
 */
class ReplayWarpStream final : public WarpStream
{
  public:
    ReplayWarpStream(std::shared_ptr<const Trace> trace,
                     const std::vector<WarpInst> *insts)
        : trace_(std::move(trace)), insts_(insts)
    {
    }

    bool
    next(WarpInst &out) override
    {
        if (pos_ >= insts_->size())
            return false;
        assignInto(out, (*insts_)[pos_++]);
        return true;
    }

  private:
    std::shared_ptr<const Trace> trace_; ///< Keep-alive only.
    const std::vector<WarpInst> *insts_;
    std::size_t pos_ = 0;
};

/**
 * Struct-of-arrays packing of one recorded warp stream: fixed-size
 * instruction records plus one flat lane-address array, replacing the
 * per-WarpInst heap vectors of the trace's AoS form.  Replay then walks
 * two contiguous arrays instead of chasing a per-instruction pointer,
 * which is what the stream-drain path spends its time on.
 */
struct PackedWarp
{
    struct Rec
    {
        WarpOp op;
        std::uint32_t cycles;
        std::uint32_t first; ///< Offset into lane_addrs.
        std::uint32_t count; ///< Active lanes (<= kWarpLanes).
    };

    std::vector<Rec> recs;
    std::vector<Vaddr> lane_addrs;

    static PackedWarp
    pack(const std::vector<WarpInst> &insts)
    {
        PackedWarp p;
        p.recs.reserve(insts.size());
        std::size_t lanes = 0;
        for (const WarpInst &i : insts)
            lanes += i.lane_addrs.size();
        p.lane_addrs.reserve(lanes);
        for (const WarpInst &i : insts) {
            p.recs.push_back(Rec{i.op, i.cycles,
                                 std::uint32_t(p.lane_addrs.size()),
                                 std::uint32_t(i.lane_addrs.size())});
            p.lane_addrs.insert(p.lane_addrs.end(),
                                i.lane_addrs.begin(),
                                i.lane_addrs.end());
        }
        return p;
    }
};

/** A WarpStream over a PackedWarp (shared, non-copying). */
class PackedWarpStream final : public WarpStream
{
  public:
    explicit PackedWarpStream(std::shared_ptr<const PackedWarp> warp)
        : warp_(std::move(warp))
    {
    }

    bool
    next(WarpInst &out) override
    {
        if (pos_ >= warp_->recs.size())
            return false;
        const PackedWarp::Rec &r = warp_->recs[pos_++];
        out.op = r.op;
        out.cycles = r.cycles;
        const Vaddr *base = warp_->lane_addrs.data() + r.first;
        out.lane_addrs.assign(base, base + r.count);
        return true;
    }

  private:
    std::shared_ptr<const PackedWarp> warp_;
    std::size_t pos_ = 0;
};

/** Replay: drives a simulation from a captured Trace. */
class TraceKernelSource final : public KernelSource
{
  public:
    explicit TraceKernelSource(std::shared_ptr<const Trace> trace)
        : trace_(std::move(trace))
    {
    }

    std::string name() const override { return trace_->workload; }
    const WorkloadParams &params() const override
    {
        return trace_->params;
    }

    /** Rebuild the VM image by replaying the recorded op log. */
    void
    setup(Vm &vm) override
    {
        applyVmOps(vm, trace_->vm_ops);
    }

    std::vector<KernelLaunch>
    kernels() override
    {
        std::vector<KernelLaunch> launches;
        launches.reserve(trace_->kernels.size());
        for (const TraceKernel &k : trace_->kernels) {
            KernelLaunch launch;
            launch.asid = k.asid;
            launch.warps.reserve(k.warps.size());
            for (const auto &warp : k.warps) {
                // One packing pass per warp (linear in trace size) buys
                // contiguous reads for the whole simulated kernel.
                launch.warps.push_back(
                    std::make_unique<PackedWarpStream>(
                        std::make_shared<const PackedWarp>(
                            PackedWarp::pack(warp))));
            }
            launches.push_back(std::move(launch));
        }
        return launches;
    }

    const std::vector<TraceBoundary> &
    boundaries() const override
    {
        return trace_->boundaries;
    }

  private:
    std::shared_ptr<const Trace> trace_;
};

/**
 * Tee: forwards an inner stream while appending each instruction to a
 * sink vector.  The runner wraps every launch's streams with this when
 * asked to capture a trace during a live run, so recording costs one
 * extra copy per instruction and nothing else.
 *
 * @p sink must stay at a stable address for the stream's lifetime
 * (pre-size the Trace's kernel/warp vectors before wrapping).
 */
class RecordingWarpStream final : public WarpStream
{
  public:
    RecordingWarpStream(std::unique_ptr<WarpStream> inner,
                        std::vector<WarpInst> *sink)
        : inner_(std::move(inner)), sink_(sink)
    {
    }

    bool
    next(WarpInst &out) override
    {
        if (!inner_->next(out))
            return false;
        sink_->push_back(out);
        return true;
    }

  private:
    std::unique_ptr<WarpStream> inner_;
    std::vector<WarpInst> *sink_;
};

/**
 * Wrap every stream of @p launches so the instructions they produce are
 * appended into @p capture, which must already carry the VM op log and
 * metadata.  Pre-sizes capture.kernels so sink addresses stay stable.
 */
void wrapForRecording(std::vector<KernelLaunch> &launches, Trace &capture);

/**
 * Capture a workload into a Trace without simulating: run setup against
 * a scratch VM with op recording on, then drain every warp stream.
 *
 * @p phys_mem_bytes sizes the scratch physical memory and must match
 * the SocConfig the trace will later be replayed under (default: the
 * SocConfig default of 4 GiB).
 */
Trace captureTrace(KernelSource &source,
                   std::uint64_t phys_mem_bytes = 4ull << 30);

/** Convenience: capture a registry workload by name. */
Trace captureWorkloadTrace(const std::string &workload,
                           const WorkloadParams &params,
                           std::uint64_t phys_mem_bytes = 4ull << 30);

} // namespace gvc::trace

#endif // GVC_TRACE_KERNEL_SOURCE_HH
