#include "trace/kernel_source.hh"

#include "mem/phys_mem.hh"

namespace gvc::trace
{

void
wrapForRecording(std::vector<KernelLaunch> &launches, Trace &capture)
{
    // Size everything first: RecordingWarpStream keeps raw pointers to
    // the per-warp sink vectors, so the containers must not reallocate.
    capture.kernels.clear();
    capture.kernels.resize(launches.size());
    for (std::size_t ki = 0; ki < launches.size(); ++ki) {
        capture.kernels[ki].asid = launches[ki].asid;
        capture.kernels[ki].warps.resize(launches[ki].warps.size());
    }
    for (std::size_t ki = 0; ki < launches.size(); ++ki) {
        auto &warps = launches[ki].warps;
        for (std::size_t wi = 0; wi < warps.size(); ++wi) {
            warps[wi] = std::make_unique<RecordingWarpStream>(
                std::move(warps[wi]), &capture.kernels[ki].warps[wi]);
        }
    }
}

Trace
captureTrace(KernelSource &source, std::uint64_t phys_mem_bytes)
{
    Trace t;
    t.workload = source.name();
    t.params = source.params();

    PhysMem pm(phys_mem_bytes);
    Vm vm(pm);
    vm.recordOps(true);
    source.setup(vm);
    vm.recordOps(false);
    t.vm_ops = vm.recordedOps();

    auto launches = source.kernels();
    t.kernels.reserve(launches.size());
    for (auto &launch : launches) {
        TraceKernel k;
        k.asid = launch.asid;
        k.warps.reserve(launch.warps.size());
        for (auto &stream : launch.warps) {
            std::vector<WarpInst> warp;
            WarpInst inst;
            while (stream->next(inst))
                warp.push_back(inst);
            k.warps.push_back(std::move(warp));
        }
        t.kernels.push_back(std::move(k));
    }
    return t;
}

Trace
captureWorkloadTrace(const std::string &workload,
                     const WorkloadParams &params,
                     std::uint64_t phys_mem_bytes)
{
    WorkloadKernelSource source(workload, params);
    return captureTrace(source, phys_mem_bytes);
}

} // namespace gvc::trace
