#include "trace/trace.hh"

#include <cstdio>
#include <cstring>

#include "mmu/boundary.hh"

namespace gvc::trace
{

namespace
{

// --- encoding primitives ------------------------------------------------

void
putU32Fixed(std::vector<std::uint8_t> &out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(std::uint8_t(v >> (8 * i)));
}

void
putU64Fixed(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(std::uint8_t(v >> (8 * i)));
}

void
putVarint(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(std::uint8_t(v) | 0x80);
        v >>= 7;
    }
    out.push_back(std::uint8_t(v));
}

std::uint64_t
zigzag(std::int64_t v)
{
    return (std::uint64_t(v) << 1) ^ std::uint64_t(v >> 63);
}

std::int64_t
unzigzag(std::uint64_t v)
{
    return std::int64_t(v >> 1) ^ -std::int64_t(v & 1);
}

std::uint64_t
fnv1a(const std::uint8_t *data, std::size_t size)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (std::size_t i = 0; i < size; ++i) {
        h ^= data[i];
        h *= 0x100000001b3ull;
    }
    return h;
}

/** Bounds-checked little-endian / varint cursor over a byte buffer. */
class Cursor
{
  public:
    Cursor(const std::uint8_t *data, std::size_t size)
        : data_(data), size_(size)
    {
    }

    std::size_t remaining() const { return size_ - pos_; }
    bool ok() const { return ok_; }
    const std::string &error() const { return err_; }

    std::uint8_t
    u8()
    {
        if (!need(1))
            return 0;
        return data_[pos_++];
    }

    std::uint32_t
    u32Fixed()
    {
        if (!need(4))
            return 0;
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= std::uint32_t(data_[pos_++]) << (8 * i);
        return v;
    }

    std::uint64_t
    u64Fixed()
    {
        if (!need(8))
            return 0;
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= std::uint64_t(data_[pos_++]) << (8 * i);
        return v;
    }

    std::uint64_t
    varint()
    {
        std::uint64_t v = 0;
        for (unsigned shift = 0; shift < 64; shift += 7) {
            if (!need(1))
                return 0;
            const std::uint8_t b = data_[pos_++];
            v |= std::uint64_t(b & 0x7f) << shift;
            if (!(b & 0x80))
                return v;
        }
        fail("varint longer than 64 bits");
        return 0;
    }

    std::string
    str()
    {
        const std::uint64_t len = varint();
        if (!ok_ || !need(std::size_t(len)))
            return {};
        std::string s(reinterpret_cast<const char *>(data_ + pos_),
                      std::size_t(len));
        pos_ += std::size_t(len);
        return s;
    }

    void
    fail(const std::string &why)
    {
        if (ok_) {
            ok_ = false;
            err_ = why;
            pos_ = size_; // stop consuming
        }
    }

  private:
    bool
    need(std::size_t n)
    {
        if (!ok_)
            return false;
        if (size_ - pos_ < n) {
            fail("truncated trace body");
            return false;
        }
        return true;
    }

    const std::uint8_t *data_;
    std::size_t size_;
    std::size_t pos_ = 0;
    bool ok_ = true;
    std::string err_;
};

// --- body ---------------------------------------------------------------

void
serializeInst(std::vector<std::uint8_t> &out, const WarpInst &inst)
{
    out.push_back(std::uint8_t(inst.op));
    switch (inst.op) {
      case WarpOp::kCompute:
      case WarpOp::kScratchLoad:
      case WarpOp::kScratchStore:
        putVarint(out, inst.cycles);
        break;
      case WarpOp::kBarrier:
        break;
      case WarpOp::kLoad:
      case WarpOp::kStore:
        putVarint(out, inst.lane_addrs.size());
        for (std::size_t i = 0; i < inst.lane_addrs.size(); ++i) {
            if (i == 0) {
                putVarint(out, inst.lane_addrs[0]);
            } else {
                const std::int64_t delta =
                    std::int64_t(inst.lane_addrs[i]) -
                    std::int64_t(inst.lane_addrs[i - 1]);
                putVarint(out, zigzag(delta));
            }
        }
        break;
    }
}

bool
parseInst(Cursor &c, WarpInst &inst)
{
    const std::uint8_t op = c.u8();
    if (!c.ok())
        return false;
    if (op > std::uint8_t(WarpOp::kBarrier)) {
        c.fail("invalid warp op");
        return false;
    }
    inst.op = WarpOp(op);
    inst.cycles = 1;
    inst.lane_addrs.clear();
    switch (inst.op) {
      case WarpOp::kCompute:
      case WarpOp::kScratchLoad:
      case WarpOp::kScratchStore:
        inst.cycles = std::uint32_t(c.varint());
        break;
      case WarpOp::kBarrier:
        break;
      case WarpOp::kLoad:
      case WarpOp::kStore: {
        const std::uint64_t lanes = c.varint();
        if (!c.ok())
            return false;
        if (lanes > kWarpLanes) {
            c.fail("lane count exceeds warp width");
            return false;
        }
        inst.lane_addrs.reserve(std::size_t(lanes));
        Vaddr prev = 0;
        for (std::uint64_t i = 0; i < lanes; ++i) {
            Vaddr va;
            if (i == 0)
                va = c.varint();
            else
                va = Vaddr(std::int64_t(prev) + unzigzag(c.varint()));
            inst.lane_addrs.push_back(va);
            prev = va;
        }
        break;
      }
    }
    return c.ok();
}

std::vector<std::uint8_t>
serializeBody(const Trace &t)
{
    std::vector<std::uint8_t> out;
    putVarint(out, t.workload.size());
    out.insert(out.end(), t.workload.begin(), t.workload.end());

    std::uint64_t scale_bits;
    static_assert(sizeof(scale_bits) == sizeof(t.params.scale));
    std::memcpy(&scale_bits, &t.params.scale, sizeof(scale_bits));
    putU64Fixed(out, scale_bits);
    putVarint(out, t.params.seed);
    putVarint(out, t.params.grid_warps);
    out.push_back(std::uint8_t(t.params.graph));

    putVarint(out, t.vm_ops.size());
    for (const VmOp &op : t.vm_ops) {
        out.push_back(std::uint8_t(op.kind));
        putVarint(out, op.asid);
        putVarint(out, op.src_asid);
        putVarint(out, op.base);
        putVarint(out, op.bytes);
        out.push_back(op.perms);
    }

    putVarint(out, t.kernels.size());
    for (const TraceKernel &k : t.kernels) {
        putVarint(out, k.asid);
        putVarint(out, k.warps.size());
        for (const auto &warp : k.warps) {
            putVarint(out, warp.size());
            for (const WarpInst &inst : warp)
                serializeInst(out, inst);
        }
    }

    // Boundary section, present in version-2+ bodies.  A trace
    // without boundaries or flags serializes as version 1 and must
    // stay byte-identical to pre-scenario writers; a version-3 body
    // always carries the boundary count so the flags section that
    // follows is unambiguous.
    const bool flagged = t.hasVmOpFlags();
    if (!t.boundaries.empty() || flagged) {
        putVarint(out, t.boundaries.size());
        for (const TraceBoundary &b : t.boundaries) {
            putVarint(out, b.kernel);
            out.push_back(b.policy);
        }
    }

    // Vm-op flags section (contiguity metadata), version-3 bodies only.
    if (flagged) {
        std::uint64_t count = 0;
        for (const VmOp &op : t.vm_ops)
            if (op.flags)
                ++count;
        putVarint(out, count);
        for (std::size_t i = 0; i < t.vm_ops.size(); ++i) {
            if (t.vm_ops[i].flags) {
                putVarint(out, i);
                out.push_back(t.vm_ops[i].flags);
            }
        }
    }
    return out;
}

bool
parseBody(Cursor &c, Trace &t, std::uint32_t version)
{
    t.workload = c.str();

    const std::uint64_t scale_bits = c.u64Fixed();
    std::memcpy(&t.params.scale, &scale_bits, sizeof(t.params.scale));
    t.params.seed = c.varint();
    t.params.grid_warps = unsigned(c.varint());
    const std::uint8_t graph = c.u8();
    if (!c.ok())
        return false;
    if (graph > std::uint8_t(GraphKind::kGrid)) {
        c.fail("invalid graph kind");
        return false;
    }
    t.params.graph = GraphKind(graph);

    const std::uint64_t n_ops = c.varint();
    if (!c.ok())
        return false;
    t.vm_ops.clear();
    t.vm_ops.reserve(std::size_t(n_ops));
    for (std::uint64_t i = 0; i < n_ops; ++i) {
        VmOp op;
        const std::uint8_t kind = c.u8();
        if (!c.ok())
            return false;
        if (kind > std::uint8_t(VmOp::Kind::kUnmap)) {
            c.fail("invalid vm-op kind");
            return false;
        }
        op.kind = VmOp::Kind(kind);
        op.asid = Asid(c.varint());
        op.src_asid = Asid(c.varint());
        op.base = c.varint();
        op.bytes = c.varint();
        op.perms = c.u8();
        if (!c.ok())
            return false;
        t.vm_ops.push_back(op);
    }

    const std::uint64_t n_kernels = c.varint();
    if (!c.ok())
        return false;
    t.kernels.clear();
    t.kernels.reserve(std::size_t(n_kernels));
    for (std::uint64_t ki = 0; ki < n_kernels; ++ki) {
        TraceKernel k;
        k.asid = Asid(c.varint());
        const std::uint64_t n_warps = c.varint();
        if (!c.ok())
            return false;
        k.warps.reserve(std::size_t(n_warps));
        for (std::uint64_t wi = 0; wi < n_warps; ++wi) {
            const std::uint64_t n_insts = c.varint();
            if (!c.ok())
                return false;
            std::vector<WarpInst> warp;
            warp.reserve(std::size_t(n_insts));
            for (std::uint64_t ii = 0; ii < n_insts; ++ii) {
                WarpInst inst;
                if (!parseInst(c, inst))
                    return false;
                warp.push_back(std::move(inst));
            }
            k.warps.push_back(std::move(warp));
        }
        t.kernels.push_back(std::move(k));
    }

    t.boundaries.clear();
    if (version >= kTraceVersionScenario) {
        const std::uint64_t n_bounds = c.varint();
        if (!c.ok())
            return false;
        t.boundaries.reserve(std::size_t(n_bounds));
        for (std::uint64_t bi = 0; bi < n_bounds; ++bi) {
            TraceBoundary b;
            b.kernel = c.varint();
            b.policy = c.u8();
            if (!c.ok())
                return false;
            if (b.policy >= BoundaryPolicy::kBoundaryPolicyLimit) {
                c.fail("invalid boundary policy byte");
                return false;
            }
            if (!t.boundaries.empty() &&
                b.kernel <= t.boundaries.back().kernel) {
                c.fail("boundary kernel indices not strictly increasing");
                return false;
            }
            // A boundary sits *between* launches: at least one kernel
            // must follow it.
            if (b.kernel + 1 >= t.kernels.size()) {
                c.fail("boundary kernel index out of range");
                return false;
            }
            t.boundaries.push_back(b);
        }
    }

    if (version >= kTraceVersionContig) {
        const std::uint64_t n_flags = c.varint();
        if (!c.ok())
            return false;
        std::uint64_t prev = 0;
        bool first = true;
        for (std::uint64_t fi = 0; fi < n_flags; ++fi) {
            const std::uint64_t idx = c.varint();
            const std::uint8_t flags = c.u8();
            if (!c.ok())
                return false;
            if (idx >= t.vm_ops.size()) {
                c.fail("vm-op flag index out of range");
                return false;
            }
            if (!first && idx <= prev) {
                c.fail("vm-op flag indices not strictly increasing");
                return false;
            }
            if (flags == 0 || (flags & ~kVmOpFlagContig)) {
                c.fail("invalid vm-op flags byte");
                return false;
            }
            t.vm_ops[std::size_t(idx)].flags = flags;
            prev = idx;
            first = false;
        }
    }

    if (c.remaining() != 0) {
        c.fail("trailing bytes after trace body");
        return false;
    }
    return true;
}

void
setErr(std::string *err, const std::string &msg)
{
    if (err)
        *err = msg;
}

} // namespace

std::uint64_t
traceDigest(const Trace &trace)
{
    const auto body = serializeBody(trace);
    return fnv1a(body.data(), body.size());
}

std::vector<std::uint8_t>
TraceWriter::serialize(const Trace &trace)
{
    const auto body = serializeBody(trace);
    std::vector<std::uint8_t> out;
    out.reserve(16 + body.size());
    for (char c : kTraceMagic)
        out.push_back(std::uint8_t(c));
    putU32Fixed(out, trace.formatVersion());
    putU64Fixed(out, fnv1a(body.data(), body.size()));
    out.insert(out.end(), body.begin(), body.end());
    return out;
}

bool
TraceWriter::writeFile(const std::string &path, const Trace &trace,
                       std::string *err)
{
    const auto bytes = serialize(trace);
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f) {
        setErr(err, "cannot open '" + path + "' for writing");
        return false;
    }
    const std::size_t n = std::fwrite(bytes.data(), 1, bytes.size(), f);
    const bool ok = (n == bytes.size()) && std::fclose(f) == 0;
    if (!ok)
        setErr(err, "short write to '" + path + "'");
    return ok;
}

bool
TraceReader::parse(const std::uint8_t *data, std::size_t size, Trace &out,
                   std::string *err)
{
    if (size < 16) {
        setErr(err, "file too short for trace header");
        return false;
    }
    if (std::memcmp(data, kTraceMagic, 4) != 0) {
        setErr(err, "bad magic: not a gvc trace file");
        return false;
    }
    Cursor c(data + 4, size - 4);
    const std::uint32_t version = c.u32Fixed();
    if (version < kTraceVersion || version > kTraceVersionContig) {
        setErr(err, "unsupported trace version " +
                        std::to_string(version) + " (expected " +
                        std::to_string(kTraceVersion) + ".." +
                        std::to_string(kTraceVersionContig) + ")");
        return false;
    }
    const std::uint64_t digest = c.u64Fixed();
    if (fnv1a(data + 16, size - 16) != digest) {
        setErr(err, "body digest mismatch: trace is corrupt");
        return false;
    }
    if (!parseBody(c, out, version)) {
        setErr(err, c.error());
        return false;
    }
    return true;
}

bool
TraceReader::readFile(const std::string &path, Trace &out,
                      std::string *err)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f) {
        setErr(err, "cannot open '" + path + "'");
        return false;
    }
    std::vector<std::uint8_t> bytes;
    std::uint8_t buf[1 << 16];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        bytes.insert(bytes.end(), buf, buf + n);
    const bool read_ok = !std::ferror(f);
    std::fclose(f);
    if (!read_ok) {
        setErr(err, "read error on '" + path + "'");
        return false;
    }
    return parse(bytes.data(), bytes.size(), out, err);
}

} // namespace gvc::trace
