/**
 * @file
 * Captured workload traces: the on-disk representation of everything a
 * simulation needs to re-execute a workload without regenerating it —
 * the VM-image recipe (the setup-time Vm operation log) plus every
 * per-warp instruction stream of every kernel launch.
 *
 * Replay is bit-identical to live generation: PhysMem and PageTable
 * allocate frames deterministically in call order, so replaying the
 * recorded VmOp log reconstructs the same VAs, PPNs, and PTE physical
 * addresses, and the recorded WarpInst streams are the exact streams
 * the live workload emitted.
 *
 * ## File format (versions 1 and 2)
 *
 *     offset  size  field
 *     0       4     magic "GVCT"
 *     4       4     format version, u32 little-endian
 *     8       8     FNV-1a-64 digest of the body, u64 little-endian
 *     16      ...   body
 *
 * Body (all integers LEB128 varints unless noted):
 *
 *     workload name        varint length + bytes
 *     params.scale         u64 little-endian (IEEE-754 bit pattern)
 *     params.seed          varint
 *     params.grid_warps    varint
 *     params.graph         u8
 *     vm-op count          varint
 *       per op:            u8 kind, varint asid, varint src_asid,
 *                          varint base, varint bytes, u8 perms
 *     kernel count         varint
 *       per kernel:        varint asid, varint warp count
 *         per warp:        varint instruction count
 *           per inst:      u8 op, then
 *                          - compute/scratch: varint cycles
 *                          - load/store: varint lane count (<= 32),
 *                            varint first address, then zigzag-varint
 *                            deltas between consecutive lane addresses
 *                          - barrier: nothing
 *
 * Version 2 appends a kernel-boundary section (multi-kernel scenarios):
 *
 *     boundary count       varint
 *       per boundary:      varint kernel index, u8 policy byte
 *
 * Boundary kernel indices must be strictly increasing and each must
 * leave at least one kernel after it (a boundary sits *between*
 * launches); the policy byte is a BoundaryPolicy encoding and must be
 * < BoundaryPolicy::kBoundaryPolicyLimit.  A trace without boundaries
 * always serializes as version 1, so every pre-scenario trace file is
 * byte-identical to what older writers produced.
 *
 * Version 3 appends a vm-op flags section (contiguity metadata, only
 * written when some op carries flags; a version-3 body always includes
 * the boundary section, with a zero count when boundary-free):
 *
 *     flagged-op count     varint
 *       per entry:         varint vm-op index, u8 flags (nonzero)
 *
 * Indices must be strictly increasing and in range; the flags byte
 * must be a known kVmOpFlag* combination.  Flag-free traces keep
 * serializing as version 1 or 2 byte-identically.
 *
 * Lane addresses are overwhelmingly small positive strides off the
 * previous lane, so zigzag delta coding shrinks the dominant payload
 * from 8 bytes to 1-2 bytes per lane.
 */

#ifndef GVC_TRACE_TRACE_HH
#define GVC_TRACE_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "gpu/warp_inst.hh"
#include "mem/vm.hh"
#include "workloads/workload.hh"

namespace gvc::trace
{

/** Base on-disk format version (no boundary section). */
inline constexpr std::uint32_t kTraceVersion = 1;

/** Format version carrying the kernel-boundary section. */
inline constexpr std::uint32_t kTraceVersionScenario = 2;

/** Format version carrying the vm-op flags (contiguity) section. */
inline constexpr std::uint32_t kTraceVersionContig = 3;

/** File magic ("GVCT"). */
inline constexpr char kTraceMagic[4] = {'G', 'V', 'C', 'T'};

/** One recorded kernel launch: its ASID and fully-materialized warps. */
struct TraceKernel
{
    Asid asid = 0;
    std::vector<std::vector<WarpInst>> warps;
};

/**
 * A kernel boundary recorded in a scenario trace: after launch @p kernel
 * completes, apply the boundary policy encoded in @p policy (see
 * BoundaryPolicy::encode) before the next launch.  Kept as the raw byte
 * so the trace layer stays independent of policy semantics.
 */
struct TraceBoundary
{
    std::uint64_t kernel = 0;
    std::uint8_t policy = 0;
};

/** A complete captured workload. */
struct Trace
{
    std::string workload;
    WorkloadParams params;
    std::vector<VmOp> vm_ops;
    std::vector<TraceKernel> kernels;
    std::vector<TraceBoundary> boundaries;

    std::uint64_t
    totalInstructions() const
    {
        std::uint64_t n = 0;
        for (const auto &k : kernels)
            for (const auto &w : k.warps)
                n += w.size();
        return n;
    }

    std::uint64_t
    totalWarps() const
    {
        std::uint64_t n = 0;
        for (const auto &k : kernels)
            n += k.warps.size();
        return n;
    }

    /** True when some vm op carries contiguity flags. */
    bool
    hasVmOpFlags() const
    {
        for (const VmOp &op : vm_ops)
            if (op.flags)
                return true;
        return false;
    }

    /** On-disk format version this trace serializes as. */
    std::uint32_t
    formatVersion() const
    {
        if (hasVmOpFlags())
            return kTraceVersionContig;
        return boundaries.empty() ? kTraceVersion : kTraceVersionScenario;
    }
};

/**
 * FNV-1a-64 digest of the trace body (everything after the 16-byte
 * header).  Identifies a capture for sweep memoization keys.
 */
std::uint64_t traceDigest(const Trace &trace);

/** Serializes traces to the versioned binary format. */
class TraceWriter
{
  public:
    /** Full file image: header + body. */
    static std::vector<std::uint8_t> serialize(const Trace &trace);

    /**
     * Write @p trace to @p path.
     * @return false (with @p err filled when non-null) on I/O failure.
     */
    static bool writeFile(const std::string &path, const Trace &trace,
                          std::string *err = nullptr);
};

/** Parses and validates the binary format. */
class TraceReader
{
  public:
    /**
     * Parse a full file image.  Validates magic, version, digest, enum
     * ranges, lane counts, and that the body is exactly consumed.
     * @return false (with @p err filled when non-null) on any defect.
     */
    static bool parse(const std::uint8_t *data, std::size_t size,
                      Trace &out, std::string *err = nullptr);

    /** Read and parse @p path. */
    static bool readFile(const std::string &path, Trace &out,
                         std::string *err = nullptr);
};

} // namespace gvc::trace

#endif // GVC_TRACE_TRACE_HH
