/**
 * @file
 * Captured workload traces: the on-disk representation of everything a
 * simulation needs to re-execute a workload without regenerating it —
 * the VM-image recipe (the setup-time Vm operation log) plus every
 * per-warp instruction stream of every kernel launch.
 *
 * Replay is bit-identical to live generation: PhysMem and PageTable
 * allocate frames deterministically in call order, so replaying the
 * recorded VmOp log reconstructs the same VAs, PPNs, and PTE physical
 * addresses, and the recorded WarpInst streams are the exact streams
 * the live workload emitted.
 *
 * ## File format (version 1)
 *
 *     offset  size  field
 *     0       4     magic "GVCT"
 *     4       4     format version, u32 little-endian
 *     8       8     FNV-1a-64 digest of the body, u64 little-endian
 *     16      ...   body
 *
 * Body (all integers LEB128 varints unless noted):
 *
 *     workload name        varint length + bytes
 *     params.scale         u64 little-endian (IEEE-754 bit pattern)
 *     params.seed          varint
 *     params.grid_warps    varint
 *     params.graph         u8
 *     vm-op count          varint
 *       per op:            u8 kind, varint asid, varint src_asid,
 *                          varint base, varint bytes, u8 perms
 *     kernel count         varint
 *       per kernel:        varint asid, varint warp count
 *         per warp:        varint instruction count
 *           per inst:      u8 op, then
 *                          - compute/scratch: varint cycles
 *                          - load/store: varint lane count (<= 32),
 *                            varint first address, then zigzag-varint
 *                            deltas between consecutive lane addresses
 *                          - barrier: nothing
 *
 * Lane addresses are overwhelmingly small positive strides off the
 * previous lane, so zigzag delta coding shrinks the dominant payload
 * from 8 bytes to 1-2 bytes per lane.
 */

#ifndef GVC_TRACE_TRACE_HH
#define GVC_TRACE_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "gpu/warp_inst.hh"
#include "mem/vm.hh"
#include "workloads/workload.hh"

namespace gvc::trace
{

/** Current on-disk format version. */
inline constexpr std::uint32_t kTraceVersion = 1;

/** File magic ("GVCT"). */
inline constexpr char kTraceMagic[4] = {'G', 'V', 'C', 'T'};

/** One recorded kernel launch: its ASID and fully-materialized warps. */
struct TraceKernel
{
    Asid asid = 0;
    std::vector<std::vector<WarpInst>> warps;
};

/** A complete captured workload. */
struct Trace
{
    std::string workload;
    WorkloadParams params;
    std::vector<VmOp> vm_ops;
    std::vector<TraceKernel> kernels;

    std::uint64_t
    totalInstructions() const
    {
        std::uint64_t n = 0;
        for (const auto &k : kernels)
            for (const auto &w : k.warps)
                n += w.size();
        return n;
    }

    std::uint64_t
    totalWarps() const
    {
        std::uint64_t n = 0;
        for (const auto &k : kernels)
            n += k.warps.size();
        return n;
    }
};

/**
 * FNV-1a-64 digest of the trace body (everything after the 16-byte
 * header).  Identifies a capture for sweep memoization keys.
 */
std::uint64_t traceDigest(const Trace &trace);

/** Serializes traces to the versioned binary format. */
class TraceWriter
{
  public:
    /** Full file image: header + body. */
    static std::vector<std::uint8_t> serialize(const Trace &trace);

    /**
     * Write @p trace to @p path.
     * @return false (with @p err filled when non-null) on I/O failure.
     */
    static bool writeFile(const std::string &path, const Trace &trace,
                          std::string *err = nullptr);
};

/** Parses and validates the binary format. */
class TraceReader
{
  public:
    /**
     * Parse a full file image.  Validates magic, version, digest, enum
     * ranges, lane counts, and that the body is exactly consumed.
     * @return false (with @p err filled when non-null) on any defect.
     */
    static bool parse(const std::uint8_t *data, std::size_t size,
                      Trace &out, std::string *err = nullptr);

    /** Read and parse @p path. */
    static bool readFile(const std::string &path, Trace &out,
                         std::string *err = nullptr);
};

} // namespace gvc::trace

#endif // GVC_TRACE_TRACE_HH
