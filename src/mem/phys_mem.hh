/**
 * @file
 * Physical memory frame allocator.
 *
 * The simulator is trace-functional: no data bytes are stored, but frame
 * allocation is real so that page tables, synonym mappings, and the FBT's
 * reverse translations operate on genuine physical addresses.
 */

#ifndef GVC_MEM_PHYS_MEM_HH
#define GVC_MEM_PHYS_MEM_HH

#include <cstdint>
#include <vector>

#include "sim/logging.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace gvc
{

/**
 * A bump-plus-freelist allocator over a fixed number of 4 KB frames.
 * Frame 0 is reserved so that a PPN of zero never appears as a valid
 * translation (it doubles as a null check in debug builds).
 */
class PhysMem
{
  public:
    /** @param total_bytes  Size of simulated physical memory. */
    explicit PhysMem(std::uint64_t total_bytes)
        : total_frames_(total_bytes >> kPageShift), next_frame_(1)
    {
        if (total_frames_ < 2)
            fatal("PhysMem: physical memory must hold at least 2 frames");
    }

    /** Allocate one frame; fatal on exhaustion (user sized memory). */
    Ppn
    allocFrame()
    {
        ++alloc_count_;
        if (!free_list_.empty()) {
            const Ppn f = free_list_.back();
            free_list_.pop_back();
            return f;
        }
        if (next_frame_ >= total_frames_)
            fatal("PhysMem: out of physical memory");
        return next_frame_++;
    }

    /**
     * Allocate @p count physically contiguous frames (used for 2 MB
     * pages).  Contiguity only matters for address arithmetic, so a bump
     * allocation suffices.
     */
    Ppn
    allocContiguous(std::uint64_t count)
    {
        if (next_frame_ + count > total_frames_)
            fatal("PhysMem: out of physical memory (contiguous)");
        const Ppn base = next_frame_;
        next_frame_ += count;
        alloc_count_ += count;
        return base;
    }

    void
    freeFrame(Ppn frame)
    {
        if (frame == 0 || frame >= next_frame_)
            panic("PhysMem: freeing invalid frame");
        ++free_count_;
        free_list_.push_back(frame);
    }

    std::uint64_t totalFrames() const { return total_frames_; }

    std::uint64_t
    framesInUse() const
    {
        return (next_frame_ - 1) - free_list_.size();
    }

    std::uint64_t allocations() const { return alloc_count_.value; }

  private:
    std::uint64_t total_frames_;
    Ppn next_frame_;
    std::vector<Ppn> free_list_;
    Counter alloc_count_;
    Counter free_count_;
};

} // namespace gvc

#endif // GVC_MEM_PHYS_MEM_HH
