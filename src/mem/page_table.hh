/**
 * @file
 * Four-level radix page table in the style of x86-64 (PML4/PDPT/PD/PT).
 *
 * The table is built from real frames allocated out of PhysMem, so a walk
 * produces the genuine sequence of PTE physical addresses — exactly what
 * the page-walk cache needs to model its locality.  2 MB pages terminate
 * the walk one level early at the PD.
 */

#ifndef GVC_MEM_PAGE_TABLE_HH
#define GVC_MEM_PAGE_TABLE_HH

#include <array>
#include <cstdint>
#include <optional>
#include <unordered_map>

#include "mem/phys_mem.hh"
#include "sim/types.hh"

namespace gvc
{

/** Result of a successful translation. */
struct Translation
{
    Ppn ppn = kInvalidPpn;   ///< Frame of the 4 KB region containing the VA.
    Perms perms = kPermNone;
    bool large = false;      ///< Mapped by a 2 MB page.
    Vpn base_vpn = kInvalidVpn; ///< First 4 KB VPN of the mapping unit.
};

/** The PTE physical addresses visited by a walk, root first. */
struct WalkPath
{
    std::array<Paddr, 4> pte_addrs{};
    unsigned levels = 0;            ///< 4 for 4 KB pages, 3 for 2 MB.
    std::optional<Translation> result;
};

/**
 * One process's page table.  map/unmap/protect operate at 4 KB or 2 MB
 * granularity; translate() is the functional lookup and walk() the timing
 * model's view.
 */
class PageTable
{
  public:
    explicit PageTable(PhysMem &pm)
        : pm_(pm), root_frame_(pm.allocFrame())
    {
        root_ptr_ = &nodes_.emplace(root_frame_, Node{}).first->second;
    }

    PageTable(const PageTable &) = delete;
    PageTable &operator=(const PageTable &) = delete;
    PageTable(PageTable &&) = default;

    /** Map one 4 KB page.  Remapping an existing VPN overwrites it. */
    void
    map(Vpn vpn, Ppn ppn, Perms perms)
    {
        Entry &e = leafEntry(vpn, /*levels=*/4);
        e.valid = true;
        e.leaf = true;
        e.large = false;
        e.target = ppn;
        e.perms = perms;
    }

    /**
     * Map one 2 MB page.  @p vpn must be 2 MB aligned (low 9 bits zero)
     * and @p ppn names the first of 512 contiguous frames.
     */
    void
    mapLarge(Vpn vpn, Ppn ppn, Perms perms)
    {
        if (vpn & 0x1ff)
            fatal("PageTable: 2MB mapping requires aligned VPN");
        Entry &e = leafEntry(vpn, /*levels=*/3);
        e.valid = true;
        e.leaf = true;
        e.large = true;
        e.target = ppn;
        e.perms = perms;
    }

    /**
     * Remove the 4 KB mapping covering @p vpn.  A 2 MB leaf is first
     * split into 512 4 KB leaves so only the named page disappears —
     * the precise-shootdown contract: unmapping one page never takes
     * out its 2 MB neighbours.  @return true if a mapping existed.
     */
    bool
    unmap(Vpn vpn)
    {
        Entry *e = findLeaf(vpn);
        if (!e || !e->valid)
            return false;
        if (e->large)
            e = &splitLarge(*e, vpn);
        e->valid = false;
        return true;
    }

    /**
     * Change permissions of the 4 KB mapping covering @p vpn, splitting
     * a covering 2 MB leaf first (see unmap()).
     */
    bool
    protect(Vpn vpn, Perms perms)
    {
        Entry *e = findLeaf(vpn);
        if (!e || !e->valid)
            return false;
        if (e->large)
            e = &splitLarge(*e, vpn);
        e->perms = perms;
        return true;
    }

    /** Functional lookup. */
    std::optional<Translation>
    translate(Vpn vpn) const
    {
        const Entry *e = findLeaf(vpn);
        if (!e || !e->valid)
            return std::nullopt;
        Translation t;
        t.perms = e->perms;
        if (e->large) {
            t.large = true;
            t.base_vpn = vpn & ~Vpn{0x1ff};
            t.ppn = e->target + (vpn & 0x1ff);
        } else {
            t.large = false;
            t.base_vpn = vpn;
            t.ppn = e->target;
        }
        return t;
    }

    /**
     * Timing-model walk: the PTE physical addresses touched, in order,
     * plus the translation outcome.  Intermediate nodes are created on
     * demand so the path is always fully materialized.
     */
    WalkPath
    walk(Vpn vpn)
    {
        WalkPath path;
        std::uint64_t node = root_frame_;
        const Node *n = root_ptr_;
        for (unsigned level = 0; level < 4; ++level) {
            const unsigned idx = indexAt(vpn, level);
            path.pte_addrs[level] =
                pageBase(node) + std::uint64_t(idx) * 8;
            path.levels = level + 1;
            const Entry &e = n->entries[idx];
            if (!e.valid)
                return path; // fault: result remains empty
            if (e.leaf) {
                path.result = translate(vpn);
                return path;
            }
            node = e.target;
            n = e.child;
        }
        return path;
    }

    Paddr rootAddr() const { return pageBase(root_frame_); }

    /** Number of radix nodes (frames) backing this table. */
    std::size_t nodeCount() const { return nodes_.size(); }

  private:
    struct Node;

    struct Entry
    {
        std::uint64_t target = 0; ///< Next node frame, or mapped PPN.
        /// Host-side shortcut to the child node for non-leaf entries:
        /// nodes_ is node-based, so the pointer stays valid across
        /// rehash and table move, and radix descents skip one hash
        /// lookup per level.
        Node *child = nullptr;
        Perms perms = kPermNone;
        bool valid = false;
        bool leaf = false;
        bool large = false;
    };

    struct Node
    {
        std::array<Entry, 512> entries{};
    };

    /** Radix index of @p vpn at @p level (0 = root). VPNs are 36 bits. */
    static unsigned
    indexAt(Vpn vpn, unsigned level)
    {
        const unsigned shift = 9 * (3 - level);
        return unsigned((vpn >> shift) & 0x1ff);
    }

    /** Walk down creating intermediate nodes; return the leaf entry. */
    Entry &
    leafEntry(Vpn vpn, unsigned levels)
    {
        Node *n = root_ptr_;
        for (unsigned level = 0; level + 1 < levels; ++level) {
            Entry &e = n->entries[indexAt(vpn, level)];
            if (!e.valid || e.leaf) {
                const Ppn child = pm_.allocFrame();
                // Node addresses are stable: emplace may rehash the
                // bucket array but never moves mapped_type objects.
                Node &cn = nodes_.emplace(child, Node{}).first->second;
                e.valid = true;
                e.leaf = false;
                e.large = false;
                e.target = child;
                e.child = &cn;
            }
            n = e.child;
        }
        return n->entries[indexAt(vpn, levels - 1)];
    }

    /**
     * Demote a 2 MB leaf to a PT node of 512 4 KB leaves mapping the
     * same frames with the same perms, and return the 4 KB leaf entry
     * for @p vpn.  Costs one radix-node frame; translate() results are
     * unchanged (frames were contiguous and stay individually mapped).
     */
    Entry &
    splitLarge(Entry &e, Vpn vpn)
    {
        const Ppn base = e.target;
        const Perms perms = e.perms;
        const Ppn child = pm_.allocFrame();
        Node &cn = nodes_.emplace(child, Node{}).first->second;
        for (unsigned i = 0; i < 512; ++i) {
            Entry &le = cn.entries[i];
            le.valid = true;
            le.leaf = true;
            le.large = false;
            le.target = base + i;
            le.perms = perms;
        }
        e.leaf = false;
        e.large = false;
        e.target = child;
        e.child = &cn;
        return cn.entries[vpn & 0x1ff];
    }

    const Entry *
    findLeaf(Vpn vpn) const
    {
        const Node *n = root_ptr_;
        for (unsigned level = 0; level < 4; ++level) {
            const Entry &e = n->entries[indexAt(vpn, level)];
            if (!e.valid)
                return nullptr;
            if (e.leaf)
                return &e;
            n = e.child;
        }
        return nullptr;
    }

    Entry *
    findLeaf(Vpn vpn)
    {
        return const_cast<Entry *>(
            static_cast<const PageTable *>(this)->findLeaf(vpn));
    }

    PhysMem &pm_;
    std::uint64_t root_frame_;
    std::unordered_map<std::uint64_t, Node> nodes_;
    Node *root_ptr_ = nullptr;
};

} // namespace gvc

#endif // GVC_MEM_PAGE_TABLE_HH
