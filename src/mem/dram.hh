/**
 * @file
 * DRAM model: a fixed access latency plus a shared bandwidth-limited
 * channel (Table 1: 192 GB/s at a 700 MHz GPU clock ≈ 274 bytes/cycle).
 * Service order is FCFS; queueing emerges naturally from the channel
 * occupancy, which is tracked in 1/1024-cycle fixed point so fractional
 * per-line service times accumulate exactly.
 */

#ifndef GVC_MEM_DRAM_HH
#define GVC_MEM_DRAM_HH

#include <cstdint>

#include "sim/callback.hh"
#include "sim/sim_context.hh"
#include "sim/types.hh"

namespace gvc
{

/** Bandwidth-limited, fixed-latency memory device. */
class Dram
{
  public:
    struct Params
    {
        Tick access_latency = 120;    ///< Row access + controller, cycles.
        double bytes_per_cycle = 274; ///< Channel bandwidth.
    };

    Dram(SimContext &ctx, const Params &params)
        : ctx_(ctx), latency_(params.access_latency)
    {
        service_fp_per_byte_ =
            std::uint64_t(double(kFpScale) / params.bytes_per_cycle);
        if (service_fp_per_byte_ == 0)
            service_fp_per_byte_ = 1;
    }

    /**
     * Issue an access moving @p bytes across the channel; @p done runs
     * when the data has been delivered.
     */
    void
    access(std::uint64_t bytes, Callback done)
    {
        ++accesses_;
        bytes_moved_ += bytes;
        const std::uint64_t now_fp = ctx_.now() * kFpScale;
        const std::uint64_t start_fp =
            next_free_fp_ > now_fp ? next_free_fp_ : now_fp;
        queue_delay_ += (start_fp - now_fp) / kFpScale;
        const std::uint64_t service_fp = bytes * service_fp_per_byte_;
        next_free_fp_ = start_fp + service_fp;
        const Tick finish =
            (next_free_fp_ + kFpScale - 1) / kFpScale + latency_;
        ctx_.eq.schedule(finish, std::move(done));
    }

    std::uint64_t accesses() const { return accesses_.value; }
    std::uint64_t bytesMoved() const { return bytes_moved_.value; }

    /** Average cycles an access waited for the channel. */
    double
    meanQueueDelay() const
    {
        return accesses_.value
            ? double(queue_delay_.value) / double(accesses_.value)
            : 0.0;
    }

  private:
    static constexpr std::uint64_t kFpScale = 1024;

    SimContext &ctx_;
    Tick latency_;
    std::uint64_t service_fp_per_byte_ = 0;
    std::uint64_t next_free_fp_ = 0;
    Counter accesses_;
    Counter bytes_moved_;
    Counter queue_delay_;
};

} // namespace gvc

#endif // GVC_MEM_DRAM_HH
