/**
 * @file
 * Virtual memory manager: processes (address spaces), anonymous and
 * aliased (synonym) mappings, permission changes and unmapping with TLB
 * shootdown notification.
 *
 * This is the OS-substrate the paper's system-level behaviours depend on:
 * synonyms arise from alias()/share() mappings, homonyms from multiple
 * ASIDs reusing the same VAs, and shootdowns from protect()/unmap().
 */

#ifndef GVC_MEM_VM_HH
#define GVC_MEM_VM_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "mem/page_table.hh"
#include "mem/phys_mem.hh"
#include "sim/callback.hh"
#include "sim/types.hh"

namespace gvc
{

/**
 * One mutating Vm operation.  The trace layer (src/trace/) records the
 * setup-time operation sequence of a workload and replays it verbatim
 * into a fresh Vm: because both PhysMem and PageTable allocate frames
 * deterministically in call order, replaying the log reconstructs a
 * bit-identical VM image — same VAs, same PPNs, same PTE addresses.
 */
struct VmOp
{
    enum class Kind : std::uint8_t {
        kCreateProcess = 0,
        kMmapAnon = 1,
        kMmapAnonLarge = 2,
        kAlias = 3,
        kProtect = 4,
        kUnmap = 5,
    };

    Kind kind = Kind::kCreateProcess;
    Asid asid = 0;     ///< Target (destination) address space.
    Asid src_asid = 0; ///< Alias source address space.
    Vaddr base = 0;    ///< Alias source base, or protect/unmap range base.
    std::uint64_t bytes = 0;
    Perms perms = kPermNone;
    /**
     * Contiguity metadata (kVmOpFlag*): records what the *recording*
     * run's page policy did, so traces carry the allocation property
     * explicitly.  Replay maps by the replaying Vm's own policy — the
     * flags are descriptive, not prescriptive, which is what lets one
     * captured trace replay under every design's policy.
     */
    std::uint8_t flags = 0;
};

/** The mapping's 2 MB-aligned interior was backed by large pages. */
inline constexpr std::uint8_t kVmOpFlagContig = 1;

/**
 * Owns all process address spaces and their page tables.  Components that
 * cache translations (TLBs, the FBT) subscribe to shootdown events.
 */
class Vm
{
  public:
    /** Per-page shootdown callback: (asid, vpn). */
    using PageShootdownFn = SmallFunc<void(Asid, Vpn)>;
    /** Full address-space shootdown callback: (asid). */
    using FullShootdownFn = SmallFunc<void(Asid)>;

    /**
     * Anonymous-mapping page-size policy (Mosaic-style transparent
     * huge pages).  The virtual layout is policy-invariant — reserve()
     * arithmetic never changes, so recorded warp streams stay valid
     * across policies — and with a fresh PhysMem the frame sequence is
     * identical too (both the 4 KB and contiguous allocators are pure
     * bumps), making the policies differ only in mapping granularity.
     */
    enum class PagePolicy : std::uint8_t {
        k4k = 0,         ///< Every anonymous page maps at 4 KB.
        k2mInterior = 1, ///< 2 MB-aligned interiors map as 2 MB pages.
    };

    explicit Vm(PhysMem &pm) : pm_(pm) {}

    /** Select the anonymous-mapping policy (before any mmapAnon). */
    void setPagePolicy(PagePolicy p) { policy_ = p; }
    PagePolicy pagePolicy() const { return policy_; }

    /** Create a new address space; returns its ASID. */
    Asid
    createProcess()
    {
        record({VmOp::Kind::kCreateProcess, 0, 0, 0, 0, kPermNone});
        const Asid asid = Asid(procs_.size());
        procs_.push_back(std::make_unique<ProcState>(pm_));
        return asid;
    }

    /** Start/stop appending mutating operations to the op log. */
    void recordOps(bool on) { recording_ = on; }

    /** Operations recorded while recordOps(true) was in effect. */
    const std::vector<VmOp> &recordedOps() const { return op_log_; }

    std::size_t processCount() const { return procs_.size(); }

    /**
     * Eagerly map @p bytes of fresh anonymous memory in @p asid.
     * @return the base virtual address of the new region.
     */
    Vaddr
    mmapAnon(Asid asid, std::uint64_t bytes,
             Perms perms = kPermRead | kPermWrite)
    {
        ProcState &p = proc(asid);
        const std::uint64_t pages = pageCount(bytes);
        const Vaddr base = p.reserve(pages);
        const Vpn first = pageOf(base);
        const Vpn end = first + pages;
        // The 2 MB-aligned interior, when the policy maps it large.
        const Vpn lo = (first + 511) & ~Vpn{511};
        const bool contig = policy_ == PagePolicy::k2mInterior &&
                            lo + 512 <= end;
        record({VmOp::Kind::kMmapAnon, asid, 0, 0, bytes, perms,
                contig ? kVmOpFlagContig : std::uint8_t(0)});
        if (!contig) {
            for (Vpn v = first; v < end; ++v)
                p.pt.map(v, pm_.allocFrame(), perms);
            return base;
        }
        for (Vpn v = first; v < lo; ++v)
            p.pt.map(v, pm_.allocFrame(), perms);
        Vpn v = lo;
        for (; v + 512 <= end; v += 512)
            p.pt.mapLarge(v, pm_.allocContiguous(512), perms);
        for (; v < end; ++v)
            p.pt.map(v, pm_.allocFrame(), perms);
        return base;
    }

    /**
     * Eagerly map @p bytes using 2 MB pages (rounded up).
     * @return the base virtual address (2 MB aligned).
     */
    Vaddr
    mmapAnonLarge(Asid asid, std::uint64_t bytes,
                  Perms perms = kPermRead | kPermWrite)
    {
        record({VmOp::Kind::kMmapAnonLarge, asid, 0, 0, bytes, perms});
        ProcState &p = proc(asid);
        const std::uint64_t large_pages =
            (bytes + kLargePageSize - 1) / kLargePageSize;
        const Vaddr base = p.reserveAligned(large_pages * 512, 512);
        for (std::uint64_t i = 0; i < large_pages; ++i) {
            const Ppn frames = pm_.allocContiguous(512);
            p.pt.mapLarge(pageOf(base) + i * 512, frames, perms);
        }
        return base;
    }

    /**
     * Create a synonym: a new VA range in @p dst_asid backed by the same
     * frames as [src_base, src_base+bytes) in @p src_asid.  When the two
     * ASIDs are equal this is an intra-address-space alias.
     * @return base VA of the alias region.
     */
    Vaddr
    alias(Asid dst_asid, Asid src_asid, Vaddr src_base,
          std::uint64_t bytes, Perms perms = kPermRead | kPermWrite)
    {
        record({VmOp::Kind::kAlias, dst_asid, src_asid, src_base, bytes,
                perms});
        ProcState &src = proc(src_asid);
        ProcState &dst = proc(dst_asid);
        const std::uint64_t pages = pageCount(bytes);
        const Vaddr base = dst.reserve(pages);
        for (std::uint64_t i = 0; i < pages; ++i) {
            const auto t = src.pt.translate(pageOf(src_base) + i);
            if (!t)
                fatal("Vm::alias: source range not fully mapped");
            dst.pt.map(pageOf(base) + i, t->ppn, perms);
        }
        return base;
    }

    /** Change permissions on a range; fires per-page shootdowns. */
    void
    protect(Asid asid, Vaddr base, std::uint64_t bytes, Perms perms)
    {
        record({VmOp::Kind::kProtect, asid, 0, base, bytes, perms});
        ProcState &p = proc(asid);
        const std::uint64_t pages = pageCount(bytes);
        for (std::uint64_t i = 0; i < pages; ++i) {
            const Vpn vpn = pageOf(base) + i;
            if (p.pt.protect(vpn, perms))
                firePageShootdown(asid, vpn);
        }
    }

    /** Unmap a range; fires per-page shootdowns; frees frames that were
     *  exclusively owned (aliased frames are left allocated). */
    void
    unmap(Asid asid, Vaddr base, std::uint64_t bytes)
    {
        record({VmOp::Kind::kUnmap, asid, 0, base, bytes, kPermNone});
        ProcState &p = proc(asid);
        const std::uint64_t pages = pageCount(bytes);
        for (std::uint64_t i = 0; i < pages; ++i) {
            const Vpn vpn = pageOf(base) + i;
            if (p.pt.unmap(vpn))
                firePageShootdown(asid, vpn);
        }
    }

    /** Tear down all translations of a process (exit/context destroy). */
    void
    shootdownAll(Asid asid)
    {
        for (auto &fn : full_listeners_)
            fn(asid);
    }

    std::optional<Translation>
    translate(Asid asid, Vaddr va)
    {
        return proc(asid).pt.translate(pageOf(va));
    }

    PageTable &pageTable(Asid asid) { return proc(asid).pt; }

    void
    addPageShootdownListener(PageShootdownFn fn)
    {
        page_listeners_.push_back(std::move(fn));
    }

    void
    addFullShootdownListener(FullShootdownFn fn)
    {
        full_listeners_.push_back(std::move(fn));
    }

    std::uint64_t pageShootdowns() const { return page_shootdowns_; }

  private:
    struct ProcState
    {
        explicit ProcState(PhysMem &pm) : pt(pm) {}

        /** Bump-reserve @p pages of VA space with a guard page. */
        Vaddr
        reserve(std::uint64_t pages)
        {
            const Vaddr base = next_va;
            next_va += (pages + 1) * kPageSize;
            return base;
        }

        /** Reserve with @p align_pages alignment (for 2 MB pages). */
        Vaddr
        reserveAligned(std::uint64_t pages, std::uint64_t align_pages)
        {
            const std::uint64_t align = align_pages * kPageSize;
            next_va = (next_va + align - 1) & ~(align - 1);
            const Vaddr base = next_va;
            next_va += (pages + align_pages) * kPageSize;
            return base;
        }

        PageTable pt;
        Vaddr next_va = 0x1000'0000;
    };

    static std::uint64_t
    pageCount(std::uint64_t bytes)
    {
        return (bytes + kPageSize - 1) >> kPageShift;
    }

    ProcState &
    proc(Asid asid)
    {
        if (asid >= procs_.size())
            fatal("Vm: unknown ASID");
        return *procs_[asid];
    }

    void
    record(const VmOp &op)
    {
        if (recording_)
            op_log_.push_back(op);
    }

    void
    firePageShootdown(Asid asid, Vpn vpn)
    {
        ++page_shootdowns_;
        for (auto &fn : page_listeners_)
            fn(asid, vpn);
    }

    PhysMem &pm_;
    std::vector<std::unique_ptr<ProcState>> procs_;
    std::vector<PageShootdownFn> page_listeners_;
    std::vector<FullShootdownFn> full_listeners_;
    std::uint64_t page_shootdowns_ = 0;
    std::vector<VmOp> op_log_;
    bool recording_ = false;
    PagePolicy policy_ = PagePolicy::k4k;
};

/**
 * Rebase a recorded op log onto a Vm that already owns @p asid_base
 * processes: every ASID reference shifts up by @p asid_base, so N
 * independently captured single-process logs concatenate into one
 * multi-process image.  Replay order still matters for frame identity
 * (PhysMem allocates in call order), but each process's *virtual*
 * layout is position-independent — the per-process bump allocator
 * always starts at the same VA.
 */
inline std::vector<VmOp>
rebaseVmOps(const std::vector<VmOp> &ops, Asid asid_base)
{
    std::vector<VmOp> out;
    out.reserve(ops.size());
    for (VmOp op : ops) {
        if (op.kind != VmOp::Kind::kCreateProcess) {
            op.asid = Asid(op.asid + asid_base);
            if (op.kind == VmOp::Kind::kAlias)
                op.src_asid = Asid(op.src_asid + asid_base);
        }
        out.push_back(op);
    }
    return out;
}

/** A mapped anonymous region reconstructed from an op log. */
struct VmRegion
{
    Asid asid = 0;
    Vaddr base = 0;
    std::uint64_t bytes = 0; ///< Page-rounded mapped size.
    Perms perms = kPermNone; ///< Perms the region was mapped with.
};

/**
 * Reconstruct the writable small-page anonymous regions an op log maps,
 * with their base VAs, by replaying the reservation arithmetic of Vm's
 * per-process bump allocator (the op log records sizes, not addresses).
 * ASIDs in the result are shifted by @p asid_base to match rebaseVmOps.
 * Large-page and alias regions are tracked for address accounting but
 * not reported: they are poor shootdown-storm targets (a 4 KB protect
 * inside a 2 MB mapping would have to split the page, and alias targets
 * double-fire on the source mapping).  Regions the log itself later
 * protects or unmaps (even partially) are dropped too, so a storm's
 * protect-and-restore can never overwrite workload-chosen permissions.
 */
inline std::vector<VmRegion>
anonWriteRegions(const std::vector<VmOp> &ops, Asid asid_base = 0)
{
    constexpr Vaddr kFirstVa = 0x1000'0000; // ProcState::next_va start
    const auto pages = [](std::uint64_t bytes) {
        return (bytes + kPageSize - 1) >> kPageShift;
    };
    std::vector<Vaddr> next;
    std::vector<VmRegion> out;
    for (const VmOp &op : ops) {
        switch (op.kind) {
          case VmOp::Kind::kCreateProcess:
            next.push_back(kFirstVa);
            break;
          case VmOp::Kind::kMmapAnon: {
            const std::uint64_t n = pages(op.bytes);
            const Vaddr base = next[op.asid];
            next[op.asid] += (n + 1) * kPageSize; // region + guard page
            if (permsAllow(op.perms, kPermWrite)) {
                out.push_back(VmRegion{Asid(op.asid + asid_base), base,
                                       n * kPageSize, op.perms});
            }
            break;
          }
          case VmOp::Kind::kMmapAnonLarge: {
            const std::uint64_t large =
                (op.bytes + kLargePageSize - 1) / kLargePageSize;
            const std::uint64_t align = 512 * kPageSize;
            next[op.asid] = (next[op.asid] + align - 1) & ~(align - 1);
            next[op.asid] += (large * 512 + 512) * kPageSize;
            break;
          }
          case VmOp::Kind::kAlias:
            next[op.asid] += (pages(op.bytes) + 1) * kPageSize;
            break;
          case VmOp::Kind::kProtect:
          case VmOp::Kind::kUnmap: {
            const Vaddr lo = op.base;
            const Vaddr hi = op.base + pages(op.bytes) * kPageSize;
            std::erase_if(out, [&](const VmRegion &r) {
                return r.asid == Asid(op.asid + asid_base) &&
                       r.base < hi && lo < r.base + r.bytes;
            });
            break;
          }
        }
    }
    return out;
}

/** Replay a recorded operation log into @p vm (trace replay). */
inline void
applyVmOps(Vm &vm, const std::vector<VmOp> &ops)
{
    for (const VmOp &op : ops) {
        switch (op.kind) {
          case VmOp::Kind::kCreateProcess:
            vm.createProcess();
            break;
          case VmOp::Kind::kMmapAnon:
            vm.mmapAnon(op.asid, op.bytes, op.perms);
            break;
          case VmOp::Kind::kMmapAnonLarge:
            vm.mmapAnonLarge(op.asid, op.bytes, op.perms);
            break;
          case VmOp::Kind::kAlias:
            vm.alias(op.asid, op.src_asid, op.base, op.bytes, op.perms);
            break;
          case VmOp::Kind::kProtect:
            vm.protect(op.asid, op.base, op.bytes, op.perms);
            break;
          case VmOp::Kind::kUnmap:
            vm.unmap(op.asid, op.base, op.bytes);
            break;
        }
    }
}

} // namespace gvc

#endif // GVC_MEM_VM_HH
