/**
 * @file
 * gvc_run — command-line driver: run any (workload, MMU design) pair
 * with structure sizes overridable from the command line, and print a
 * full statistics report.
 *
 *   gvc_run --list
 *   gvc_run --workload pagerank --design vc-opt
 *   gvc_run -w mis -d baseline-512 --scale 1.0 --iommu-bw 2
 *   gvc_run -w bfs -d vc-opt --fbt-entries 4096 --remap-entries 256
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>

#include "harness/cli.hh"
#include "harness/energy.hh"
#include "harness/results_io.hh"
#include "harness/runner.hh"
#include "mmu/boundary.hh"

using namespace gvc;

namespace
{

struct Options
{
    std::string workload = "pagerank";
    std::string design = "vc-opt";
    RunConfig cfg;
    RawSocOverrides raw_set; ///< Raw fields set explicitly by the user.
    std::string trace_out; ///< Capture the run into this trace file.
    std::string json_out;  ///< Emit the RunResult as JSON (path or -).
    bool dump_stats = false;
    /** Multi-kernel scenario: rounds of the workload plus the policy. */
    ScenarioSpec scenario;
};

[[noreturn]] void
usage(int code)
{
    std::printf(
        "usage: gvc_run [options]\n"
        "  -w, --workload NAME     workload (see --list)\n"
        "  -d, --design NAME       ideal | baseline-512 | baseline-16k |\n"
        "                          baseline-large-tlb | vc | vc-opt |\n"
        "                          l1vc-32 | l1vc-128 | base-2mb |\n"
        "                          base-coalesced | base-victima\n"
        "      --scale F           workload scale factor (default 0.5)\n"
        "      --seed N            workload RNG seed\n"
        "      --percu-tlb N       per-CU TLB entries (raw mode)\n"
        "      --iommu-tlb N       shared IOMMU TLB entries (raw mode)\n"
        "      --iommu-bw F        shared TLB accesses/cycle\n"
        "      --iommu-banks N     shared TLB banks\n"
        "      --fbt-entries N     FBT entries (raw mode)\n"
        "      --remap-entries N   synonym remap table entries\n"
        "      --tlb-fill-policy P per-CU TLB fill policy: lru |\n"
        "                          bypass-dead (static next-line) |\n"
        "                          bypass-trained (trained predictor +\n"
        "                          dead-first victim selection)\n"
        "      --iommu-tlb-fill-policy P\n"
        "                          same policies for the shared IOMMU TLB\n"
        "      --tlb-replacement R TLB replacement, both levels: lru |\n"
        "                          srrip | brrip | drrip\n"
        "      --cus N             number of compute units\n"
        "      --kernels N         run the workload N times back-to-back\n"
        "                          on one warm memory system (scenario)\n"
        "      --boundary NAME     policy between kernels: keep-all |\n"
        "                          flush-l1 | flush-all | shootdown\n"
        "      --trace-out PATH    capture the workload into a trace file\n"
        "      --trace-in PATH     replay a trace file (ignores -w/--scale/\n"
        "                          --seed; metadata comes from the trace);\n"
        "                          a scenario trace (.gvct v2) replays its\n"
        "                          kernel boundaries automatically\n"
        "      --json PATH|-       write the RunResult as JSON\n"
        "      --stats             dump the full statistics registry\n"
        "      --list              list workloads and exit\n"
        "      --help              this text\n");
    std::exit(code);
}

Options
parse(int argc, char **argv)
{
    Options opt;
    opt.cfg.workload.scale = 0.5;
    auto need = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            usage(1);
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--help" || a == "-h") {
            usage(0);
        } else if (a == "--stats") {
            opt.dump_stats = true;
        } else if (a == "--list") {
            for (const auto &n : allWorkloadNames())
                std::printf("%s\n", n.c_str());
            for (const auto &n : extraWorkloadNames())
                std::printf("%s (extra)\n", n.c_str());
            std::exit(0);
        } else if (a == "-w" || a == "--workload") {
            opt.workload = need(i);
        } else if (a == "-d" || a == "--design") {
            opt.design = need(i);
        } else if (a == "--scale") {
            opt.cfg.workload.scale = parseDouble("--scale", need(i));
        } else if (a == "--seed") {
            opt.cfg.workload.seed = parseU64("--seed", need(i));
        } else if (a == "--percu-tlb") {
            opt.cfg.soc.percu_tlb_entries =
                parseUnsigned("--percu-tlb", need(i));
            opt.raw_set.percu_tlb_entries = true;
            opt.cfg.raw_soc = true;
        } else if (a == "--iommu-tlb") {
            opt.cfg.soc.iommu.tlb_entries =
                parseUnsigned("--iommu-tlb", need(i));
            opt.raw_set.iommu_tlb_entries = true;
            opt.cfg.raw_soc = true;
        } else if (a == "--iommu-bw") {
            opt.cfg.soc.iommu.accesses_per_cycle =
                parseDouble("--iommu-bw", need(i));
        } else if (a == "--iommu-banks") {
            opt.cfg.soc.iommu.banks =
                parseUnsigned("--iommu-banks", need(i));
        } else if (a == "--fbt-entries") {
            opt.cfg.soc.fbt.entries =
                parseUnsigned("--fbt-entries", need(i));
            opt.raw_set.fbt_entries = true;
            opt.cfg.raw_soc = true;
        } else if (a == "--remap-entries") {
            opt.cfg.soc.synonym_remap_entries =
                parseUnsigned("--remap-entries", need(i));
        } else if (a == "--tlb-fill-policy") {
            const std::string name = need(i);
            if (!tlbFillPolicyFromName(
                    name, opt.cfg.soc.percu_tlb_fill_policy)) {
                fatal("--tlb-fill-policy: unknown policy '" + name +
                      "' (lru | bypass-dead | bypass-trained)");
            }
        } else if (a == "--iommu-tlb-fill-policy") {
            const std::string name = need(i);
            if (!tlbFillPolicyFromName(
                    name, opt.cfg.soc.iommu_tlb_fill_policy)) {
                fatal("--iommu-tlb-fill-policy: unknown policy '" +
                      name + "' (lru | bypass-dead | bypass-trained)");
            }
        } else if (a == "--tlb-replacement") {
            const std::string name = need(i);
            if (!tlbReplacementFromName(name,
                                        opt.cfg.soc.tlb_replacement)) {
                fatal("--tlb-replacement: unknown policy '" + name +
                      "' (lru | srrip | brrip | drrip)");
            }
        } else if (a == "--cus") {
            opt.cfg.soc.gpu.num_cus = parseUnsigned("--cus", need(i));
        } else if (a == "--kernels") {
            opt.scenario.rounds = parseUnsigned("--kernels", need(i));
            if (opt.scenario.rounds == 0)
                fatal("--kernels: must be >= 1");
        } else if (a == "--boundary") {
            const std::string name = need(i);
            if (!boundaryPolicyFromName(name, opt.scenario.boundary))
                fatal("--boundary: unknown policy '" + name +
                      "' (keep-all | flush-l1 | flush-all | shootdown)");
        } else if (a == "--trace-out") {
            opt.trace_out = need(i);
        } else if (a == "--trace-in") {
            opt.cfg.trace_in = need(i);
        } else if (a == "--json") {
            opt.json_out = need(i);
        } else {
            std::fprintf(stderr, "unknown option '%s'\n", a.c_str());
            usage(1);
        }
    }
    opt.cfg.design = parseDesign(opt.design);
    applyRawDesignIntent(opt.cfg, opt.raw_set);
    return opt;
}

} // namespace

int
main(int argc, char **argv)
{
    const Options opt = parse(argc, argv);
    const bool scenario = opt.scenario.rounds > 1;
    if (opt.cfg.trace_in.empty()) {
        std::printf("gvc_run: %s under %s (scale %.2f, seed %llu)\n",
                    opt.workload.c_str(), designName(opt.cfg.design),
                    opt.cfg.workload.scale,
                    (unsigned long long)opt.cfg.workload.seed);
    } else {
        std::printf("gvc_run: replaying '%s' under %s\n",
                    opt.cfg.trace_in.c_str(),
                    designName(opt.cfg.design));
    }
    if (scenario) {
        std::printf("scenario: %u kernels, boundary %s\n",
                    opt.scenario.rounds,
                    boundaryPolicyName(opt.scenario.boundary));
    }
    std::printf("\n");

    std::string stats_dump;
    trace::Trace capture;
    trace::Trace *cap = opt.trace_out.empty() ? nullptr : &capture;
    const InspectFn inspect =
        [&](SystemUnderTest &sut, Gpu &, SimContext &ctx) {
            if (!opt.dump_stats)
                return;
            sut.registerStats(ctx.stats);
            std::ostringstream os;
            ctx.stats.dump(os);
            stats_dump = os.str();
        };
    const RunResult r =
        scenario ? runScenario(opt.workload, opt.cfg, opt.scenario,
                               inspect, cap)
                 : runWorkload(opt.workload, opt.cfg, inspect, cap);
    if (cap) {
        std::string err;
        if (!trace::TraceWriter::writeFile(opt.trace_out, capture, &err))
            fatal("gvc_run: " + err);
        std::fprintf(stderr,
                     "[gvc_run] wrote trace '%s' (%llu warps, %llu "
                     "instructions, digest %016llx)\n",
                     opt.trace_out.c_str(),
                     (unsigned long long)capture.totalWarps(),
                     (unsigned long long)capture.totalInstructions(),
                     (unsigned long long)trace::traceDigest(capture));
    }
    if (!opt.json_out.empty()) {
        const SocConfig effective =
            opt.cfg.raw_soc ? opt.cfg.soc
                            : configFor(opt.cfg.design, opt.cfg.soc);
        const std::string doc =
            runResultToJson(r, &effective).dump(2) + "\n";
        if (opt.json_out == "-") {
            std::fputs(doc.c_str(), stdout);
        } else {
            std::FILE *f = std::fopen(opt.json_out.c_str(), "wb");
            if (!f)
                fatal("gvc_run: cannot open '" + opt.json_out + "'");
            std::fwrite(doc.data(), 1, doc.size(), f);
            std::fclose(f);
        }
    }
    const EnergyEstimate e = estimateEnergy(r);

    std::printf("execution\n");
    std::printf("  cycles                  : %llu\n",
                (unsigned long long)r.exec_ticks);
    std::printf("  warp instructions       : %llu (%llu memory)\n",
                (unsigned long long)r.instructions,
                (unsigned long long)r.mem_instructions);
    std::printf("  lines per mem inst      : %.2f\n",
                r.lines_per_mem_inst);
    std::printf("caches\n");
    std::printf("  L1 accesses / hit ratio : %llu / %.1f%%\n",
                (unsigned long long)r.l1_accesses,
                100.0 * r.l1_hit_ratio);
    std::printf("  L2 accesses / hit ratio : %llu / %.1f%%\n",
                (unsigned long long)r.l2_accesses,
                100.0 * r.l2_hit_ratio);
    std::printf("  DRAM traffic            : %llu accesses, %.1f MB\n",
                (unsigned long long)r.dram_accesses,
                double(r.dram_bytes) / (1 << 20));
    std::printf("translation\n");
    if (r.tlb_accesses) {
        std::printf("  per-CU TLB              : %llu accesses, %.1f%% "
                    "miss\n",
                    (unsigned long long)r.tlb_accesses,
                    100.0 * r.tlb_miss_ratio);
    }
    std::printf("  shared IOMMU TLB        : %llu accesses "
                "(%.3f/cycle mean, %.3f max)\n",
                (unsigned long long)r.iommu_accesses, r.iommu_apc_mean,
                r.iommu_apc_max);
    std::printf("  mean serialization      : %.1f cycles/access\n",
                r.iommu_serialization_mean);
    std::printf("  page walks              : %llu\n",
                (unsigned long long)r.page_walks);
    if (r.tlb_reach_fills || r.iommu_reach_fills || r.tlb_merges) {
        std::printf("  reach entries           : %llu fills / %llu hits "
                    "(per-CU), %llu merges, %llu coalesced\n",
                    (unsigned long long)r.tlb_reach_fills,
                    (unsigned long long)r.tlb_reach_hits,
                    (unsigned long long)r.tlb_merges,
                    (unsigned long long)r.iommu_coalesced_fills);
    }
    if (r.large_page_walks) {
        std::printf("  2MB-leaf walks          : %llu\n",
                    (unsigned long long)r.large_page_walks);
    }
    if (r.victima_stashes || r.victima_probes) {
        std::printf("  victima stash           : %llu stashes, %llu "
                    "probes, %llu hits\n",
                    (unsigned long long)r.victima_stashes,
                    (unsigned long long)r.victima_probes,
                    (unsigned long long)r.victima_hits);
    }
    if (r.tlb_fill_bypasses || r.iommu_fill_bypasses) {
        std::printf("  fill bypasses           : %llu per-CU, %llu "
                    "IOMMU\n",
                    (unsigned long long)r.tlb_fill_bypasses,
                    (unsigned long long)r.iommu_fill_bypasses);
    }
    if (r.tlb_dead_first_evictions || r.iommu_dead_first_evictions) {
        std::printf("  dead-first evictions    : %llu per-CU, %llu "
                    "IOMMU\n",
                    (unsigned long long)r.tlb_dead_first_evictions,
                    (unsigned long long)r.iommu_dead_first_evictions);
    }
    if (r.tlb_pred_true_pos || r.tlb_pred_false_pos ||
        r.iommu_pred_true_pos || r.iommu_pred_false_pos) {
        std::printf("  dead-pred samples       : per-CU %llu dead / "
                    "%llu reused, IOMMU %llu / %llu\n",
                    (unsigned long long)r.tlb_pred_true_pos,
                    (unsigned long long)r.tlb_pred_false_pos,
                    (unsigned long long)r.iommu_pred_true_pos,
                    (unsigned long long)r.iommu_pred_false_pos);
    }
    if (r.fbt_lookups) {
        std::printf("  FBT lookups             : %llu (second-level "
                    "TLB hit %.1f%%)\n",
                    (unsigned long long)r.fbt_lookups,
                    100.0 * r.fbt_second_level_hit_ratio);
        std::printf("  FBT resident pages      : %llu (purges %llu)\n",
                    (unsigned long long)r.fbt_valid_pages,
                    (unsigned long long)r.fbt_purges);
        std::printf("  synonym replays/faults  : %llu / %llu\n",
                    (unsigned long long)r.synonym_replays,
                    (unsigned long long)r.rw_faults);
    }
    if (!r.kernels.empty()) {
        std::printf("per-kernel (deltas between boundaries)\n");
        std::printf("  %3s %12s %12s %12s %10s %8s %8s\n", "k",
                    "cycles", "instructions", "iommu_acc", "walks",
                    "l1hit%", "l2hit%");
        for (std::size_t k = 0; k < r.kernels.size(); ++k) {
            const KernelStats &ks = r.kernels[k];
            const double l1 =
                ks.l1_accesses
                    ? 100.0 * double(ks.l1_hits) / double(ks.l1_accesses)
                    : 0.0;
            const double l2 =
                ks.l2_accesses
                    ? 100.0 * double(ks.l2_hits) / double(ks.l2_accesses)
                    : 0.0;
            std::printf("  %3zu %12llu %12llu %12llu %10llu %7.1f%% "
                        "%7.1f%%\n",
                        k, (unsigned long long)ks.exec_ticks,
                        (unsigned long long)ks.instructions,
                        (unsigned long long)ks.iommu_accesses,
                        (unsigned long long)ks.page_walks, l1, l2);
        }
    }
    if (opt.dump_stats) {
        std::printf("statistics registry\n%s", stats_dump.c_str());
    }
    std::printf("energy estimate (illustrative)\n");
    std::printf("  translation / caches / DRAM : %.0f / %.0f / %.0f "
                "nJ\n",
                e.translation_nj, e.cache_nj, e.dram_nj);
    return 0;
}
