/**
 * @file
 * gvc_merge — combine per-shard gvc_sweep JSON exports into one
 * results document in canonical grid order.
 *
 *   gvc_sweep -w all -d all --shard 0/2 --json s0.json    # host A
 *   gvc_sweep -w all -d all --shard 1/2 --json s1.json    # host B
 *   gvc_merge s0.json s1.json -o merged.json
 *
 * Shards must come from the same grid (schema version, workload and
 * design axes, scale, seed, shard count); duplicate or missing cells
 * are rejected by name.  The merged document is byte-identical to the
 * unsharded `gvc_sweep --json` export of the same grid.
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "harness/results_io.hh"
#include "sim/logging.hh"

using namespace gvc;

namespace
{

[[noreturn]] void
usage(int code)
{
    std::printf(
        "usage: gvc_merge [options] SHARD.json [SHARD.json ...]\n"
        "  -o, --out PATH          merged JSON output (default: '-',\n"
        "                          stdout)\n"
        "      --help              this text\n");
    std::exit(code);
}

std::string
readFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        fatal("cannot open shard file '" + path + "'");
    std::ostringstream os;
    os << is.rdbuf();
    if (!is.good() && !is.eof())
        fatal("failed reading shard file '" + path + "'");
    return os.str();
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> inputs;
    std::string out_path = "-";

    auto need = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            usage(1);
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--help" || a == "-h")
            usage(0);
        else if (a == "-o" || a == "--out")
            out_path = need(i);
        else if (!a.empty() && a[0] == '-' && a != "-") {
            std::fprintf(stderr, "unknown option '%s'\n", a.c_str());
            usage(1);
        } else {
            inputs.push_back(a);
        }
    }
    if (inputs.empty())
        fatal("no shard files given (try --help)");

    std::vector<Json> shards;
    shards.reserve(inputs.size());
    for (const std::string &path : inputs) {
        std::string err;
        Json doc = Json::parse(readFile(path), &err);
        if (!err.empty())
            fatal("'" + path + "': invalid JSON: " + err);
        shards.push_back(std::move(doc));
    }

    Json merged;
    std::string err;
    if (!mergeResults(shards, merged, &err))
        fatal(err);

    const std::string doc = merged.dump(2) + "\n";
    if (out_path == "-") {
        std::fwrite(doc.data(), 1, doc.size(), stdout);
    } else {
        std::ofstream os(out_path, std::ios::binary);
        if (!os)
            fatal("cannot open output file '" + out_path + "'");
        os << doc;
        if (!os)
            fatal("failed writing merged results to '" + out_path +
                  "'");
    }
    std::fprintf(stderr,
                 "[gvc_merge] merged %zu shard%s, %zu cells -> %s\n",
                 shards.size(), shards.size() == 1 ? "" : "s",
                 merged.find("results")->size(), out_path.c_str());
    return 0;
}
