/**
 * @file
 * gvc_plan — inspect sweep checkpoint journals and preview shard
 * plans without running any simulation.
 *
 *   gvc_plan journal sweep.gvcj
 *       Validate a `.gvcj` checkpoint journal (magic, version, both
 *       digest layers, every record payload) and print its grid meta
 *       plus one line per journaled cell — the same strict reader
 *       `gvc_sweep --resume` uses, so "gvc_plan journal" succeeding
 *       means the resume will accept the file.
 *
 *   gvc_plan shards -w all -d all --shard-count 3 --cost-model B.json
 *       Preview the cost-balanced LPT assignment the same flags would
 *       produce in `gvc_sweep --balance`: per-cell costs and shard
 *       choices, plus per-shard load totals against the ideal split.
 *       `--modulo` previews the classic stripe instead, so the two
 *       strategies' balance can be compared side by side.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "harness/cli.hh"
#include "harness/journal.hh"
#include "harness/plan.hh"
#include "harness/table.hh"
#include "sim/logging.hh"

using namespace gvc;

namespace
{

[[noreturn]] void
usage(int code)
{
    std::printf(
        "usage: gvc_plan journal FILE.gvcj\n"
        "       gvc_plan shards [options]\n"
        "journal: validate a sweep checkpoint journal and list its\n"
        "         cells (the same strict reader --resume uses)\n"
        "shards options:\n"
        "  -w, --workloads LIST    comma-separated workloads, or\n"
        "                          'all' / 'high-bw' (default: all)\n"
        "  -d, --designs LIST      comma-separated designs, or 'all'\n"
        "                          (default: ideal,baseline512,vc_opt)\n"
        "      --shard-count N     shards to plan for (default 1)\n"
        "      --cost-model FILE   gvc_bench report, .gvcj journal, or\n"
        "                          sweep results JSON (default:\n"
        "                          uniform costs)\n"
        "      --modulo            preview idx %% N striping instead\n"
        "                          of LPT cost balancing\n"
        "      --help              this text\n");
    std::exit(code);
}

std::vector<std::string>
splitList(const std::string &spec)
{
    std::vector<std::string> out;
    std::stringstream ss(spec);
    std::string item;
    while (std::getline(ss, item, ','))
        if (!item.empty())
            out.push_back(item);
    return out;
}

std::string
fmtDouble(double v, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
    return buf;
}

int
cmdJournal(int argc, char **argv)
{
    if (argc != 1)
        usage(1);
    const std::string path = argv[0];
    ExportMeta meta;
    std::vector<JournalEntry> entries;
    std::string err;
    if (!readJournal(path, meta, entries, &err))
        fatal(err);

    std::printf("journal: %s\n", path.c_str());
    std::printf("generator: %s\n", meta.generator.c_str());
    std::printf("workloads:");
    for (const auto &w : meta.workloads)
        std::printf(" %s", w.c_str());
    std::printf("\ndesigns:");
    for (const auto &d : meta.designs)
        std::printf(" %s", d.c_str());
    std::printf("\nscale: %g  seed: %llu  jobs: %u\n", meta.scale,
                static_cast<unsigned long long>(meta.seed), meta.jobs);
    std::printf("shard: %u/%u  assignment: %s\n", meta.shard_index,
                meta.shard_count,
                meta.shard_assignment.empty()
                    ? "modulo"
                    : meta.shard_assignment.c_str());

    TextTable table({"#", "workload", "design", "exec cycles"});
    for (std::size_t i = 0; i < entries.size(); ++i) {
        const RunResult &r = entries[i].record.result;
        table.addRow({std::to_string(i), r.workload,
                      designName(r.design),
                      std::to_string(r.exec_ticks)});
    }
    table.print();
    std::printf("\n%zu journaled cell%s (journal valid)\n",
                entries.size(), entries.size() == 1 ? "" : "s");
    return 0;
}

int
cmdShards(int argc, char **argv)
{
    std::string workloads_spec = "all";
    std::string designs_spec = "ideal,baseline512,vc_opt";
    std::string cost_model_path;
    unsigned shard_count = 1;
    bool modulo = false;

    auto need = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            usage(1);
        return argv[++i];
    };
    for (int i = 0; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--help" || a == "-h")
            usage(0);
        else if (a == "-w" || a == "--workloads")
            workloads_spec = need(i);
        else if (a == "-d" || a == "--designs")
            designs_spec = need(i);
        else if (a == "--shard-count")
            shard_count = parseUnsigned("--shard-count", need(i));
        else if (a == "--cost-model")
            cost_model_path = need(i);
        else if (a == "--modulo")
            modulo = true;
        else {
            std::fprintf(stderr, "unknown option '%s'\n", a.c_str());
            usage(1);
        }
    }
    if (shard_count == 0)
        fatal("--shard-count must be positive");

    std::vector<std::string> workloads;
    if (workloads_spec == "all")
        workloads = allWorkloadNames();
    else if (workloads_spec == "high-bw")
        workloads = highBandwidthWorkloadNames();
    else
        workloads = splitList(workloads_spec);
    if (workloads.empty())
        fatal("no workloads selected");

    std::vector<std::string> design_names;
    if (designs_spec == "all") {
        design_names = {"ideal",   "baseline512", "baseline16k",
                        "baseline_large_tlb", "vc", "vc_opt",
                        "l1vc32",  "l1vc128", "base2mb",
                        "basecoalesced", "basevictima"};
    } else {
        design_names = splitList(designs_spec);
    }
    std::vector<MmuDesign> designs;
    for (const auto &name : design_names)
        designs.push_back(parseDesign(name));
    if (designs.empty())
        fatal("no designs selected");

    CostModel model = CostModel::uniform();
    if (!cost_model_path.empty()) {
        std::string err;
        if (!model.load(cost_model_path, &err))
            fatal(err);
        std::printf("cost model: %s (%zu measured cells, digest "
                    "%016llx)\n",
                    cost_model_path.c_str(), model.measuredCells(),
                    static_cast<unsigned long long>(model.digest()));
    } else {
        std::printf("cost model: uniform (every cell 1.0)\n");
    }

    // Canonical grid order (workload-major, design-minor), exactly as
    // gvc_sweep expands it.
    std::vector<double> costs;
    std::vector<std::string> cell_names;
    for (const auto &w : workloads) {
        for (const MmuDesign d : designs) {
            costs.push_back(model.costFor(w, designName(d)));
            cell_names.push_back(w + " x " + designName(d));
        }
    }

    std::vector<double> loads(shard_count, 0.0);
    std::vector<unsigned> assignment;
    if (modulo) {
        assignment.resize(costs.size());
        for (std::size_t i = 0; i < costs.size(); ++i) {
            assignment[i] = unsigned(i % shard_count);
            loads[assignment[i]] += costs[i];
        }
    } else {
        assignment = planShards(costs, shard_count, &loads);
    }

    TextTable cells({"#", "cell", "cost", "shard"});
    for (std::size_t i = 0; i < costs.size(); ++i) {
        cells.addRow({std::to_string(i), cell_names[i],
                      fmtDouble(costs[i], 2),
                      std::to_string(assignment[i])});
    }
    cells.print();

    double total = 0.0, max_load = 0.0;
    for (const double l : loads) {
        total += l;
        max_load = std::max(max_load, l);
    }
    const double ideal = total / double(shard_count);
    std::printf("\nassignment: %s, %zu cells over %u shard%s\n",
                modulo ? "modulo" : "lpt", costs.size(), shard_count,
                shard_count == 1 ? "" : "s");
    TextTable shards({"shard", "cells", "load", "vs ideal"});
    for (unsigned s = 0; s < shard_count; ++s) {
        std::size_t n = 0;
        for (const unsigned a : assignment)
            n += a == s;
        shards.addRow({std::to_string(s), std::to_string(n),
                       fmtDouble(loads[s], 2),
                       fmtDouble(ideal > 0.0 ? loads[s] / ideal : 1.0,
                                 3)});
    }
    shards.print();
    std::printf("\nmakespan %s (ideal %s, %.1f%% over)\n",
                fmtDouble(max_load, 2).c_str(),
                fmtDouble(ideal, 2).c_str(),
                ideal > 0.0 ? (max_load / ideal - 1.0) * 100.0 : 0.0);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        usage(1);
    const std::string cmd = argv[1];
    if (cmd == "--help" || cmd == "-h")
        usage(0);
    if (cmd == "journal")
        return cmdJournal(argc - 2, argv + 2);
    if (cmd == "shards")
        return cmdShards(argc - 2, argv + 2);
    std::fprintf(stderr, "unknown command '%s'\n", cmd.c_str());
    usage(1);
}
