/**
 * @file
 * gvc_tenants — multi-tenant contention driver: run N tenants (each its
 * own address space and kernel round stream) on one memory system under
 * a grid of (context-switch policy x shootdown-storm intensity x MMU
 * design) cells, and export per-tenant results as schema-v3 JSON.
 *
 *   gvc_tenants --workloads pagerank,bfs --designs baseline512,vc_opt \
 *               --switch keep-all,asid-shootdown --storm 0,8 --json -
 *   gvc_tenants -w pagerank,bfs,hotspot,lud --rounds 3 --sched rr \
 *               --arrival poisson --interval 2000 --csv grid.csv
 *
 * Every cell is deterministic: same flags (and any --jobs value) give
 * bit-identical results.  Cell labels are "<tenants>|<switch>|stormN",
 * so per-cell records merge/validate like any sweep grid.
 */

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "harness/cli.hh"
#include "harness/sweep.hh"
#include "harness/table.hh"
#include "harness/tenants.hh"

using namespace gvc;

namespace
{

struct Options
{
    std::vector<std::string> workloads{"pagerank", "bfs"};
    std::vector<MmuDesign> designs;
    std::vector<std::string> design_labels;
    std::vector<SwitchPolicy> switches;
    std::vector<unsigned> storm_pages{0, 8};
    TenantsSpec base_spec;
    RunConfig base;
    unsigned jobs = 0;
    std::string json_path;
    std::string csv_path;
    bool quiet = false;
    bool print_table = true;
    bool per_tenant = false;
};

[[noreturn]] void
usage(int code)
{
    std::printf(
        "usage: gvc_tenants [options]\n"
        "  -w, --workloads LIST    one workload per tenant, comma-\n"
        "                          separated (default: pagerank,bfs)\n"
        "  -d, --designs LIST      comma-separated designs\n"
        "                          (default: baseline512,vc_opt)\n"
        "      --rounds N          kernel rounds per tenant (default 2)\n"
        "      --switch LIST       context-switch policies: keep-all,\n"
        "                          flush-l1, flush-all, asid-shootdown,\n"
        "                          or 'all' (default: keep-all)\n"
        "      --storm LIST        shootdown-storm burst sizes in pages,\n"
        "                          0 = off (default: 0,8)\n"
        "      --storm-period N    burst every N boundaries (default 1)\n"
        "      --storm-seed N      storm target RNG seed\n"
        "      --arrival KIND      fixed | poisson (default: fixed)\n"
        "      --interval N        inter-arrival ticks (default 0)\n"
        "      --phase N           per-tenant arrival stagger ticks\n"
        "      --arrival-seed N    poisson inter-arrival seed\n"
        "      --sched KIND        serial | fifo | rr (default: fifo)\n"
        "      --scale F           workload scale factor (default 0.5)\n"
        "      --seed N            workload RNG seed (all tenants)\n"
        "  -j, --jobs N            worker threads (default: GVC_JOBS or\n"
        "                          hardware concurrency)\n"
        "      --json PATH         write schema-v3 JSON ('-' = stdout)\n"
        "      --csv PATH          write CSV results ('-' = stdout)\n"
        "      --per-tenant        print the per-tenant breakdown table\n"
        "      --no-table          skip the summary table on stdout\n"
        "  -q, --quiet             no progress output on stderr\n"
        "      --help              this text\n");
    std::exit(code);
}

std::vector<std::string>
splitList(const std::string &spec)
{
    std::vector<std::string> out;
    std::stringstream ss(spec);
    std::string item;
    while (std::getline(ss, item, ','))
        if (!item.empty())
            out.push_back(item);
    return out;
}

Options
parse(int argc, char **argv)
{
    Options opt;
    opt.base.workload.scale = 0.5;
    opt.switches = {SwitchPolicy::kKeepAll};
    std::string designs_spec = "baseline512,vc_opt";

    auto need = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            usage(1);
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--help" || a == "-h") {
            usage(0);
        } else if (a == "-w" || a == "--workloads") {
            opt.workloads = splitList(need(i));
        } else if (a == "-d" || a == "--designs") {
            designs_spec = need(i);
        } else if (a == "--rounds") {
            opt.base_spec.rounds = parseUnsigned("--rounds", need(i));
        } else if (a == "--switch") {
            const std::string spec = need(i);
            opt.switches.clear();
            if (spec == "all") {
                opt.switches = {SwitchPolicy::kKeepAll,
                                SwitchPolicy::kFlushL1,
                                SwitchPolicy::kFlushAll,
                                SwitchPolicy::kAsidShootdown};
            } else {
                for (const auto &name : splitList(spec)) {
                    SwitchPolicy p;
                    if (!switchPolicyFromName(name, p))
                        fatal("--switch: unknown policy '" + name + "'");
                    opt.switches.push_back(p);
                }
            }
        } else if (a == "--storm") {
            opt.storm_pages.clear();
            for (const auto &item : splitList(need(i)))
                opt.storm_pages.push_back(
                    parseUnsigned("--storm", item));
        } else if (a == "--storm-period") {
            opt.base_spec.storm.period =
                parseUnsigned("--storm-period", need(i));
        } else if (a == "--storm-seed") {
            opt.base_spec.storm.seed = parseU64("--storm-seed", need(i));
        } else if (a == "--arrival") {
            if (!arrivalKindFromName(need(i),
                                     opt.base_spec.arrival.kind))
                fatal("--arrival: expected 'fixed' or 'poisson'");
        } else if (a == "--interval") {
            opt.base_spec.arrival.interval =
                parseU64("--interval", need(i));
        } else if (a == "--phase") {
            opt.base_spec.arrival.phase = parseU64("--phase", need(i));
        } else if (a == "--arrival-seed") {
            opt.base_spec.arrival.seed =
                parseU64("--arrival-seed", need(i));
        } else if (a == "--sched") {
            if (!tenantSchedFromName(need(i), opt.base_spec.sched))
                fatal("--sched: expected 'serial', 'fifo', or 'rr'");
        } else if (a == "--scale") {
            opt.base.workload.scale = parseDouble("--scale", need(i));
        } else if (a == "--seed") {
            opt.base.workload.seed = parseU64("--seed", need(i));
        } else if (a == "-j" || a == "--jobs") {
            opt.jobs = parseUnsigned("--jobs", need(i));
        } else if (a == "--json") {
            opt.json_path = need(i);
        } else if (a == "--csv") {
            opt.csv_path = need(i);
        } else if (a == "--per-tenant") {
            opt.per_tenant = true;
        } else if (a == "--no-table") {
            opt.print_table = false;
        } else if (a == "-q" || a == "--quiet") {
            opt.quiet = true;
        } else {
            std::fprintf(stderr, "unknown option '%s'\n", a.c_str());
            usage(1);
        }
    }

    if (opt.workloads.empty())
        fatal("no tenant workloads selected");
    for (const auto &name : splitList(designs_spec)) {
        opt.designs.push_back(parseDesign(name));
        opt.design_labels.push_back(name);
    }
    if (opt.designs.empty())
        fatal("no designs selected");
    if (opt.switches.empty())
        fatal("no switch policies selected");
    if (opt.storm_pages.empty())
        fatal("no storm burst sizes selected");
    return opt;
}

void
writeOut(const std::string &path, const std::string &content,
         const char *what)
{
    if (path == "-") {
        std::fwrite(content.data(), 1, content.size(), stdout);
        return;
    }
    std::ofstream os(path, std::ios::binary);
    if (!os)
        fatal(std::string("cannot open ") + what + " output file '" +
              path + "'");
    os << content;
    if (!os)
        fatal(std::string("failed writing ") + what + " to '" + path +
              "'");
    std::fprintf(stderr, "[gvc_tenants] wrote %s (%zu bytes)\n",
                 path.c_str(), content.size());
}

} // namespace

int
main(int argc, char **argv)
{
    const Options opt = parse(argc, argv);

    // Expand the cell grid in canonical (label-major, design-minor)
    // order: labels enumerate switch-policy x storm combinations.
    struct Cell
    {
        std::string label;
        TenantsSpec spec;
        RunConfig cfg;
    };
    std::string composite;
    for (std::size_t t = 0; t < opt.workloads.size(); ++t)
        composite += (t ? "+" : "") + opt.workloads[t];

    std::vector<std::string> labels;
    std::vector<Cell> cells;
    for (const SwitchPolicy sw : opt.switches) {
        for (const unsigned pages : opt.storm_pages) {
            const std::string label = composite + "|" +
                                      switchPolicyName(sw) + "|storm" +
                                      std::to_string(pages);
            labels.push_back(label);
            for (const MmuDesign d : opt.designs) {
                Cell cell;
                cell.label = label;
                cell.spec = opt.base_spec;
                cell.spec.switch_policy = sw;
                cell.spec.storm.pages = pages;
                for (const auto &w : opt.workloads)
                    cell.spec.tenants.push_back(
                        TenantSpec{w, opt.base.workload});
                cell.cfg = opt.base;
                cell.cfg.design = d;
                cells.push_back(std::move(cell));
            }
        }
    }

    // Each cell is a fully self-contained single-seed simulation, so a
    // worker pool over cells is deterministic regardless of job count:
    // results land at their cell's index, never in completion order.
    std::vector<ResultRecord> records(cells.size());
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> finished{0};
    const unsigned jobs = std::max(
        1u, std::min<unsigned>(opt.jobs ? opt.jobs : defaultJobs(),
                               unsigned(cells.size())));
    auto worker = [&] {
        for (;;) {
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= cells.size())
                return;
            RunResult r = runTenants(cells[i].spec, cells[i].cfg);
            r.workload = cells[i].label;
            records[i] = ResultRecord{cells[i].cfg, std::move(r)};
            const std::size_t done =
                finished.fetch_add(1, std::memory_order_relaxed) + 1;
            if (!opt.quiet) {
                std::fprintf(stderr, "[gvc_tenants] %zu/%zu %s x %s\n",
                             done, cells.size(),
                             cells[i].label.c_str(),
                             designName(cells[i].cfg.design));
            }
        }
    };
    std::vector<std::thread> threads;
    for (unsigned j = 1; j < jobs; ++j)
        threads.emplace_back(worker);
    worker();
    for (auto &th : threads)
        th.join();

    if (opt.print_table) {
        TextTable table({"cell", "design", "exec cycles", "IOMMU acc",
                         "page walks", "switches", "storm pages"});
        for (const ResultRecord &rec : records) {
            const RunResult &r = rec.result;
            table.addRow({r.workload, designName(r.design),
                          std::to_string(r.exec_ticks),
                          std::to_string(r.iommu_accesses),
                          std::to_string(r.page_walks),
                          std::to_string(r.tenant_context_switches),
                          std::to_string(r.tenant_storm_pages)});
        }
        table.print();
        std::printf("\n%zu cells (%zu labels x %zu designs), %u worker "
                    "threads\n",
                    cells.size(), labels.size(), opt.designs.size(),
                    jobs);
    }

    if (opt.per_tenant) {
        TextTable table({"cell", "design", "tenant", "launches",
                         "exec ticks", "IOMMU acc", "page walks"});
        for (const ResultRecord &rec : records) {
            for (const TenantStats &t : rec.result.tenants) {
                table.addRow({rec.result.workload,
                              designName(rec.result.design), t.workload,
                              std::to_string(t.launches),
                              std::to_string(t.stats.exec_ticks),
                              std::to_string(t.stats.iommu_accesses),
                              std::to_string(t.stats.page_walks)});
            }
        }
        std::printf("\n");
        table.print();
    }

    if (!opt.json_path.empty()) {
        ExportMeta meta;
        meta.generator = "gvc_tenants";
        meta.workloads = labels;
        meta.designs = opt.design_labels;
        meta.scale = opt.base.workload.scale;
        meta.seed = opt.base.workload.seed;
        meta.jobs = jobs;
        writeOut(opt.json_path,
                 resultsToJson(meta, records).dump(2) + "\n", "JSON");
    }
    if (!opt.csv_path.empty())
        writeOut(opt.csv_path, resultsToCsv(records), "CSV");
    return 0;
}
