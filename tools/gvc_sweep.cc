/**
 * @file
 * gvc_sweep — parallel design-space sweep driver: run a (workload x
 * design) grid across worker threads and export the results as
 * versioned JSON and/or CSV (see harness/results_io.hh for the schema).
 *
 *   gvc_sweep --workloads bfs,pagerank --designs baseline512,vc_opt \
 *             --jobs 4 --json out.json
 *   gvc_sweep --workloads all --designs all --csv grid.csv
 *   gvc_sweep -w high-bw -d vc_opt,ideal --scale 0.25 --json -
 *
 * Multi-machine sharding: `--shard I/N` deterministically keeps the
 * grid cells whose canonical (workload-major, design-minor) index
 * satisfies idx % N == I, and stamps the shard position into the JSON
 * export.  Run every shard (any host, any order), then combine the
 * per-shard JSON files with `gvc_merge` — the merged document is
 * byte-identical to an unsharded run of the full grid.  `--balance`
 * replaces the modulo stripe with cost-balanced LPT bin packing driven
 * by `--cost-model FILE` (a gvc_bench report, sweep journal, or sweep
 * results JSON; uniform costs without one), so shards finish together
 * instead of the slowest cell-count stripe gating the fleet; every
 * shard of one grid must use the same flags (gvc_merge checks the
 * stamped assignment + cost-model digest).
 *
 * Checkpoint/resume: `--journal FILE.gvcj` appends every completed
 * cell to a crash-safe journal (harness/journal.hh); after an
 * interruption, `--resume FILE.gvcj` (with the same grid flags) skips
 * the journaled cells, finishes the rest, and exports byte-identically
 * to an uninterrupted run.
 *
 * Design names accept both the gvc_run spelling (vc-opt) and
 * underscore/concatenated forms (vc_opt, baseline512).
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "harness/cli.hh"
#include "harness/journal.hh"
#include "harness/plan.hh"
#include "harness/sweep.hh"
#include "harness/table.hh"

using namespace gvc;

namespace
{

struct Options
{
    std::vector<std::string> workloads;
    std::vector<MmuDesign> designs;
    std::vector<std::string> design_labels;
    RunConfig base;
    RawSocOverrides raw_set; ///< Raw fields the user set explicitly.
    ShardSpec shard;
    unsigned jobs = 0; ///< 0 = defaultJobs().
    std::string json_path;
    std::string csv_path;
    std::string journal_path; ///< --journal: start a fresh checkpoint.
    std::string resume_path;  ///< --resume: continue a prior journal.
    std::string cost_model_path; ///< --cost-model (implies --balance).
    bool balance = false;     ///< LPT shard assignment instead of modulo.
    std::size_t max_cells = 0; ///< Cap unique simulations (0 = all).
    bool quiet = false;
    bool print_table = true;
    bool live = false; ///< Regenerate per cell instead of trace replay.
};

[[noreturn]] void
usage(int code)
{
    std::printf(
        "usage: gvc_sweep [options]\n"
        "  -w, --workloads LIST    comma-separated workloads, or\n"
        "                          'all' / 'high-bw' (default: all)\n"
        "  -d, --designs LIST      comma-separated designs, or 'all'\n"
        "                          (default: ideal,baseline512,vc_opt)\n"
        "      --scale F           workload scale factor (default 0.5)\n"
        "      --seed N            workload RNG seed\n"
        "  -j, --jobs N            worker threads (default: GVC_JOBS or\n"
        "                          hardware concurrency)\n"
        "      --shard I/N         run grid cells with index %% N == I\n"
        "                          (0 <= I < N); merge the per-shard\n"
        "                          JSON exports with gvc_merge\n"
        "      --balance           assign cells to shards by LPT cost\n"
        "                          balancing instead of modulo striping\n"
        "                          (same flags on every shard)\n"
        "      --cost-model FILE   per-cell costs for --balance: a\n"
        "                          gvc_bench report, .gvcj journal, or\n"
        "                          sweep results JSON (default: uniform;\n"
        "                          implies --balance)\n"
        "      --journal FILE      checkpoint each completed cell into\n"
        "                          FILE (.gvcj), overwriting it\n"
        "      --resume FILE       skip cells already in FILE, append\n"
        "                          the rest (same grid flags required)\n"
        "      --max-cells N       stop after N unique simulations and\n"
        "                          skip export (test/CI interruption)\n"
        "      --json PATH         write JSON results ('-' = stdout)\n"
        "      --csv PATH          write CSV results ('-' = stdout)\n"
        "      --iommu-bw F        shared TLB accesses/cycle override\n"
        "      --iommu-tlb N       shared TLB entries (raw mode)\n"
        "      --percu-tlb N       per-CU TLB entries (raw mode)\n"
        "      --fbt-entries N     FBT entries (raw mode)\n"
        "      --tlb-fill-policy P per-CU TLB fill policy: lru |\n"
        "                          bypass-dead (static next-line) |\n"
        "                          bypass-trained (trained predictor +\n"
        "                          dead-first victim selection)\n"
        "      --iommu-tlb-fill-policy P\n"
        "                          same policies for the shared IOMMU TLB\n"
        "      --tlb-replacement R TLB replacement, both levels: lru |\n"
        "                          srrip | brrip | drrip\n"
        "      --cus N             number of compute units\n"
        "      --live              regenerate each workload per cell\n"
        "                          instead of capture-once/replay\n"
        "                          (also: GVC_SWEEP_LIVE=1)\n"
        "      --no-table          skip the summary table on stdout\n"
        "  -q, --quiet             no progress output on stderr\n"
        "      --list              list workloads and designs, exit\n"
        "      --help              this text\n");
    std::exit(code);
}

std::vector<std::string>
splitList(const std::string &spec)
{
    std::vector<std::string> out;
    std::stringstream ss(spec);
    std::string item;
    while (std::getline(ss, item, ','))
        if (!item.empty())
            out.push_back(item);
    return out;
}

Options
parse(int argc, char **argv)
{
    Options opt;
    opt.base.workload.scale = 0.5;
    std::string workloads_spec = "all";
    std::string designs_spec = "ideal,baseline512,vc_opt";

    auto need = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            usage(1);
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--help" || a == "-h") {
            usage(0);
        } else if (a == "--list") {
            std::printf("workloads:\n");
            for (const auto &n : allWorkloadNames())
                std::printf("  %s\n", n.c_str());
            for (const auto &n : extraWorkloadNames())
                std::printf("  %s (extra)\n", n.c_str());
            std::printf("designs:\n");
            for (const auto &[spelling, design] : designSpellings())
                std::printf("  %-18s %s\n", spelling,
                            designName(design));
            std::exit(0);
        } else if (a == "-w" || a == "--workloads") {
            workloads_spec = need(i);
        } else if (a == "-d" || a == "--designs") {
            designs_spec = need(i);
        } else if (a == "--scale") {
            opt.base.workload.scale = parseDouble("--scale", need(i));
        } else if (a == "--seed") {
            opt.base.workload.seed = parseU64("--seed", need(i));
        } else if (a == "-j" || a == "--jobs") {
            opt.jobs = parseUnsigned("--jobs", need(i));
        } else if (a == "--shard") {
            std::string err;
            if (!parseShardSpec(need(i), opt.shard, &err))
                fatal("--shard: " + err);
        } else if (a == "--balance") {
            opt.balance = true;
        } else if (a == "--cost-model") {
            opt.cost_model_path = need(i);
            opt.balance = true;
        } else if (a == "--journal") {
            opt.journal_path = need(i);
        } else if (a == "--resume") {
            opt.resume_path = need(i);
        } else if (a == "--max-cells") {
            opt.max_cells = parseU64("--max-cells", need(i));
        } else if (a == "--json") {
            opt.json_path = need(i);
        } else if (a == "--csv") {
            opt.csv_path = need(i);
        } else if (a == "--iommu-bw") {
            opt.base.soc.iommu.accesses_per_cycle =
                parseDouble("--iommu-bw", need(i));
        } else if (a == "--iommu-tlb") {
            opt.base.soc.iommu.tlb_entries =
                parseUnsigned("--iommu-tlb", need(i));
            opt.raw_set.iommu_tlb_entries = true;
            opt.base.raw_soc = true;
        } else if (a == "--percu-tlb") {
            opt.base.soc.percu_tlb_entries =
                parseUnsigned("--percu-tlb", need(i));
            opt.raw_set.percu_tlb_entries = true;
            opt.base.raw_soc = true;
        } else if (a == "--fbt-entries") {
            opt.base.soc.fbt.entries =
                parseUnsigned("--fbt-entries", need(i));
            opt.raw_set.fbt_entries = true;
            opt.base.raw_soc = true;
        } else if (a == "--tlb-fill-policy") {
            const std::string name = need(i);
            if (!tlbFillPolicyFromName(
                    name, opt.base.soc.percu_tlb_fill_policy)) {
                fatal("--tlb-fill-policy: unknown policy '" + name +
                      "' (lru | bypass-dead | bypass-trained)");
            }
        } else if (a == "--iommu-tlb-fill-policy") {
            const std::string name = need(i);
            if (!tlbFillPolicyFromName(
                    name, opt.base.soc.iommu_tlb_fill_policy)) {
                fatal("--iommu-tlb-fill-policy: unknown policy '" +
                      name + "' (lru | bypass-dead | bypass-trained)");
            }
        } else if (a == "--tlb-replacement") {
            const std::string name = need(i);
            if (!tlbReplacementFromName(
                    name, opt.base.soc.tlb_replacement)) {
                fatal("--tlb-replacement: unknown policy '" + name +
                      "' (lru | srrip | brrip | drrip)");
            }
        } else if (a == "--cus") {
            opt.base.soc.gpu.num_cus = parseUnsigned("--cus", need(i));
        } else if (a == "--live") {
            opt.live = true;
        } else if (a == "--no-table") {
            opt.print_table = false;
        } else if (a == "-q" || a == "--quiet") {
            opt.quiet = true;
        } else {
            std::fprintf(stderr, "unknown option '%s'\n", a.c_str());
            usage(1);
        }
    }

    if (workloads_spec == "all")
        opt.workloads = allWorkloadNames();
    else if (workloads_spec == "high-bw")
        opt.workloads = highBandwidthWorkloadNames();
    else
        opt.workloads = splitList(workloads_spec);
    if (opt.workloads.empty())
        fatal("no workloads selected");

    std::vector<std::string> design_names;
    if (designs_spec == "all") {
        design_names = {"ideal",   "baseline512", "baseline16k",
                        "baseline_large_tlb", "vc", "vc_opt",
                        "l1vc32",  "l1vc128", "base2mb",
                        "basecoalesced", "basevictima"};
    } else {
        design_names = splitList(designs_spec);
    }
    for (const auto &name : design_names) {
        opt.designs.push_back(parseDesign(name));
        opt.design_labels.push_back(name);
    }
    if (opt.designs.empty())
        fatal("no designs selected");
    if (!opt.journal_path.empty() && !opt.resume_path.empty())
        fatal("--journal starts a fresh checkpoint and --resume "
              "continues one; pass exactly one of them");
    return opt;
}

void
writeOut(const std::string &path, const std::string &content,
         const char *what)
{
    if (path == "-") {
        std::fwrite(content.data(), 1, content.size(), stdout);
        return;
    }
    std::ofstream os(path, std::ios::binary);
    if (!os)
        fatal(std::string("cannot open ") + what + " output file '" +
              path + "'");
    os << content;
    if (!os)
        fatal(std::string("failed writing ") + what + " to '" + path +
              "'");
    std::fprintf(stderr, "[gvc_sweep] wrote %s (%zu bytes)\n",
                 path.c_str(), content.size());
}

} // namespace

int
main(int argc, char **argv)
{
    const Options opt = parse(argc, argv);

    Sweep sweep(opt.jobs);
    if (opt.quiet)
        sweep.setProgress(false);
    if (opt.live)
        sweep.setCapture(false);
    if (opt.max_cells)
        sweep.setCellLimit(opt.max_cells);

    // Expand the full grid in canonical order (workload-major,
    // design-minor), carrying each design's structural intent into
    // raw-mode cells.  Every invocation sees the whole grid so shard
    // assignment and journal keys are invocation-independent.
    struct GridCell
    {
        std::string workload;
        RunConfig cfg;
        std::string key;
    };
    std::vector<GridCell> grid;
    for (const auto &w : opt.workloads) {
        for (const MmuDesign d : opt.designs) {
            RunConfig cfg = opt.base;
            cfg.design = d;
            applyRawDesignIntent(cfg, opt.raw_set);
            grid.push_back({w, cfg, runConfigKey(w, cfg)});
        }
    }

    // Shard assignment: cost-balanced LPT when requested, else the
    // classic modulo stripe.
    CostModel cost_model = CostModel::uniform();
    if (!opt.cost_model_path.empty()) {
        std::string err;
        if (!cost_model.load(opt.cost_model_path, &err))
            fatal(err);
        if (!opt.quiet) {
            std::fprintf(stderr,
                         "[gvc_sweep] cost model '%s': %zu measured "
                         "cells\n",
                         opt.cost_model_path.c_str(),
                         cost_model.measuredCells());
        }
    }
    std::vector<unsigned> assignment(grid.size(), 0);
    if (opt.balance) {
        std::vector<double> costs;
        costs.reserve(grid.size());
        for (const GridCell &c : grid)
            costs.push_back(cost_model.costFor(c.workload,
                                               designName(c.cfg.design)));
        assignment = planShards(costs, opt.shard.count);
    } else {
        for (std::size_t i = 0; i < grid.size(); ++i)
            assignment[i] = unsigned(i % opt.shard.count);
    }

    ExportMeta meta;
    meta.workloads = opt.workloads;
    meta.designs = opt.design_labels;
    meta.scale = opt.base.workload.scale;
    meta.seed = opt.base.workload.seed;
    meta.jobs = sweep.jobs();
    meta.shard_index = opt.shard.index;
    meta.shard_count = opt.shard.count;
    if (opt.balance) {
        meta.shard_assignment = "lpt";
        meta.shard_cost_digest = cost_model.digest();
    }
    meta.tlb_policy = tlbPolicyStamp(opt.base.soc);

    // This shard's cells, in canonical order; mine[i] is the grid
    // cell behind the sweep's cell i (its key names it in the
    // journal, its cfg rides along in journaled records).
    std::vector<const GridCell *> mine;
    for (std::size_t i = 0; i < grid.size(); ++i) {
        if (assignment[i] != opt.shard.index)
            continue;
        sweep.add(grid[i].workload, grid[i].cfg);
        mine.push_back(&grid[i]);
    }

    // Checkpoint journal: seed already-completed cells on resume, then
    // append every newly completed cell from the sweep's cell hook.
    JournalWriter journal;
    std::unordered_set<std::string> journaled;
    if (!opt.resume_path.empty()) {
        std::string err;
        ExportMeta jmeta;
        std::vector<JournalEntry> entries;
        if (!readJournal(opt.resume_path, jmeta, entries, &err))
            fatal(err);
        if (!journalMatchesGrid(jmeta, meta, &err))
            fatal(err);
        std::unordered_map<std::string, const JournalEntry *> by_key;
        for (const JournalEntry &e : entries)
            by_key[e.key] = &e;
        std::size_t seeded = 0;
        for (std::size_t i = 0; i < mine.size(); ++i) {
            const auto it = by_key.find(mine[i]->key);
            if (it == by_key.end())
                continue;
            sweep.seedResult(i, it->second->record.result);
            journaled.insert(mine[i]->key);
            ++seeded;
        }
        if (!opt.quiet) {
            std::fprintf(stderr,
                         "[gvc_sweep] resume '%s': %zu of %zu cells "
                         "already done\n",
                         opt.resume_path.c_str(), seeded, mine.size());
        }
        if (!journal.openAppend(opt.resume_path, &err))
            fatal(err);
    } else if (!opt.journal_path.empty()) {
        std::string err;
        if (!journal.create(opt.journal_path, meta, &err))
            fatal(err);
    }
    if (journal.isOpen()) {
        sweep.setCellHook([&](std::size_t idx, const RunResult &result) {
            // Duplicate cells share a key; journal each key once (the
            // hook is already serialized by the sweep).
            if (!journaled.insert(mine[idx]->key).second)
                return;
            std::string err;
            if (!journal.append(mine[idx]->key,
                                ResultRecord{mine[idx]->cfg, result},
                                &err))
                fatal(err);
        });
    }

    sweep.run();

    // A cell limit may leave the sweep incomplete on purpose; report
    // and stop before the table/export layers (which require a full
    // grid) — the journal already holds everything that finished.
    const std::size_t done = sweep.records().size();
    if (done < sweep.size()) {
        std::fprintf(stderr,
                     "[gvc_sweep] interrupted: %zu of %zu cells "
                     "complete; rerun with --resume %s to finish\n",
                     done, sweep.size(),
                     journal.isOpen() ? journal.path().c_str()
                                      : "<journal>");
        return 0;
    }

    if (opt.print_table) {
        TextTable table({"workload", "design", "exec cycles",
                         "IOMMU acc", "page walks", "L2 hit"});
        for (std::size_t i = 0; i < sweep.size(); ++i) {
            const RunResult &r = sweep.result(i);
            table.addRow({r.workload, designName(r.design),
                          std::to_string(r.exec_ticks),
                          std::to_string(r.iommu_accesses),
                          std::to_string(r.page_walks),
                          TextTable::pct(r.l2_hit_ratio, 1)});
        }
        table.print();
        std::printf("\n%zu cells, %zu simulated (%zu memoized), %u "
                    "worker threads\n",
                    sweep.size(), sweep.uniqueRuns(),
                    sweep.size() - sweep.uniqueRuns(), sweep.jobs());
        if (opt.shard.count > 1) {
            std::printf("shard %u/%u (%s) of a %zu-cell grid\n",
                        opt.shard.index, opt.shard.count,
                        opt.balance ? "lpt" : "modulo", grid.size());
        }
    }

    if (!opt.json_path.empty() || !opt.csv_path.empty()) {
        const std::vector<ResultRecord> records = sweep.records();
        if (!opt.json_path.empty()) {
            writeOut(opt.json_path,
                     resultsToJson(meta, records).dump(2) + "\n",
                     "JSON");
        }
        if (!opt.csv_path.empty())
            writeOut(opt.csv_path, resultsToCsv(records), "CSV");
    }
    return 0;
}
