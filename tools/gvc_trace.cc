/**
 * @file
 * gvc_trace — workload trace capture/inspection/replay driver.
 *
 *   gvc_trace record -w bfs -o bfs.gvct [--scale F] [--seed N]
 *   gvc_trace info bfs.gvct
 *   gvc_trace replay bfs.gvct -d vc-opt [--json PATH|-]
 *
 * `record` generates the workload once (no simulation) and writes the
 * versioned binary trace; `replay` simulates it under any MMU design,
 * producing a RunResult bit-identical to a live `gvc_run` of the same
 * workload/params under that design.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "harness/cli.hh"
#include "harness/results_io.hh"
#include "harness/runner.hh"
#include "mmu/boundary.hh"

using namespace gvc;

namespace
{

[[noreturn]] void
usage(int code)
{
    std::printf(
        "usage: gvc_trace <command> [options]\n"
        "\n"
        "commands:\n"
        "  record   capture a workload into a trace file\n"
        "    -w, --workload NAME   workload (see gvc_run --list)\n"
        "    -o, --out PATH        output trace file (required)\n"
        "        --scale F         workload scale factor (default 0.5)\n"
        "        --seed N          workload RNG seed\n"
        "        --grid-warps N    warps per kernel launch\n"
        "        --graph KIND      rmat | uniform | grid\n"
        "  info     print a trace file's metadata and stream stats\n"
        "    gvc_trace info PATH\n"
        "  replay   simulate a trace under an MMU design\n"
        "    gvc_trace replay PATH\n"
        "    -d, --design NAME     ideal | baseline-512 | baseline-16k |\n"
        "                          baseline-large-tlb | vc | vc-opt |\n"
        "                          l1vc-32 | l1vc-128 (default vc-opt)\n"
        "        --json PATH|-     write the RunResult as JSON\n"
        "        --quiet           suppress the text report\n");
    std::exit(code);
}

GraphKind
parseGraph(const std::string &name)
{
    if (name == "rmat")
        return GraphKind::kRmat;
    if (name == "uniform")
        return GraphKind::kUniform;
    if (name == "grid")
        return GraphKind::kGrid;
    fatal("unknown graph kind '" + name + "' (rmat|uniform|grid)");
}

const char *
graphName(GraphKind g)
{
    switch (g) {
      case GraphKind::kRmat:
        return "rmat";
      case GraphKind::kUniform:
        return "uniform";
      case GraphKind::kGrid:
        return "grid";
    }
    return "?";
}

int
cmdRecord(int argc, char **argv)
{
    std::string workload;
    std::string out;
    WorkloadParams params;
    params.scale = 0.5;

    auto need = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            usage(1);
        return argv[++i];
    };
    for (int i = 2; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "-w" || a == "--workload")
            workload = need(i);
        else if (a == "-o" || a == "--out")
            out = need(i);
        else if (a == "--scale")
            params.scale = parseDouble("--scale", need(i));
        else if (a == "--seed")
            params.seed = parseU64("--seed", need(i));
        else if (a == "--grid-warps")
            params.grid_warps = parseUnsigned("--grid-warps", need(i));
        else if (a == "--graph")
            params.graph = parseGraph(need(i));
        else if (a == "--help" || a == "-h")
            usage(0);
        else
            fatal("record: unknown option '" + a + "'");
    }
    if (workload.empty() || out.empty())
        fatal("record: both -w WORKLOAD and -o PATH are required");

    const trace::Trace t = trace::captureWorkloadTrace(workload, params);
    std::string err;
    if (!trace::TraceWriter::writeFile(out, t, &err))
        fatal("record: " + err);
    std::printf("recorded %s (scale %.2f, seed %llu) -> %s\n",
                workload.c_str(), params.scale,
                (unsigned long long)params.seed, out.c_str());
    std::printf("  kernels %zu, warps %llu, instructions %llu, "
                "vm ops %zu, digest %016llx\n",
                t.kernels.size(), (unsigned long long)t.totalWarps(),
                (unsigned long long)t.totalInstructions(),
                t.vm_ops.size(),
                (unsigned long long)trace::traceDigest(t));
    return 0;
}

int
cmdInfo(int argc, char **argv)
{
    if (argc < 3)
        usage(1);
    const std::string path = argv[2];
    trace::Trace t;
    std::string err;
    if (!trace::TraceReader::readFile(path, t, &err))
        fatal("info: " + err);

    std::printf("%s\n", path.c_str());
    std::printf("  format version : %u\n", t.formatVersion());
    std::printf("  workload       : %s\n", t.workload.c_str());
    std::printf("  scale          : %g\n", t.params.scale);
    std::printf("  seed           : %llu\n",
                (unsigned long long)t.params.seed);
    std::printf("  grid warps     : %u\n", t.params.grid_warps);
    std::printf("  graph          : %s\n", graphName(t.params.graph));
    std::printf("  vm ops         : %zu\n", t.vm_ops.size());
    std::printf("  kernels        : %zu\n", t.kernels.size());
    if (!t.boundaries.empty()) {
        std::printf("  boundaries     : %zu\n", t.boundaries.size());
        for (const auto &b : t.boundaries) {
            const auto policy = BoundaryPolicy::decode(b.policy);
            std::printf("    after kernel %llu: %s\n",
                        (unsigned long long)b.kernel,
                        policy ? boundaryPolicyName(*policy) : "?");
        }
    }
    std::printf("  warps          : %llu\n",
                (unsigned long long)t.totalWarps());
    std::printf("  instructions   : %llu\n",
                (unsigned long long)t.totalInstructions());
    std::printf("  digest         : %016llx\n",
                (unsigned long long)trace::traceDigest(t));
    return 0;
}

int
cmdReplay(int argc, char **argv)
{
    std::string path;
    std::string design = "vc-opt";
    std::string json_out;
    bool quiet = false;

    auto need = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            usage(1);
        return argv[++i];
    };
    for (int i = 2; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "-d" || a == "--design")
            design = need(i);
        else if (a == "--json")
            json_out = need(i);
        else if (a == "--quiet" || a == "-q")
            quiet = true;
        else if (a == "--help" || a == "-h")
            usage(0);
        else if (!a.empty() && a[0] == '-')
            fatal("replay: unknown option '" + a + "'");
        else
            path = a;
    }
    if (path.empty())
        fatal("replay: a trace file path is required");

    RunConfig cfg;
    cfg.design = parseDesign(design);
    cfg.trace_in = path;
    const RunResult r = runWorkload("", cfg);

    if (!quiet) {
        std::printf("replayed %s (%s) under %s\n", path.c_str(),
                    r.workload.c_str(), designName(r.design));
        std::printf("  cycles %llu, instructions %llu, IOMMU accesses "
                    "%llu, page walks %llu\n",
                    (unsigned long long)r.exec_ticks,
                    (unsigned long long)r.instructions,
                    (unsigned long long)r.iommu_accesses,
                    (unsigned long long)r.page_walks);
    }
    if (!json_out.empty()) {
        const SocConfig effective = configFor(cfg.design, cfg.soc);
        const std::string doc =
            runResultToJson(r, &effective).dump(2) + "\n";
        if (json_out == "-") {
            std::fputs(doc.c_str(), stdout);
        } else {
            std::FILE *f = std::fopen(json_out.c_str(), "wb");
            if (!f)
                fatal("replay: cannot open '" + json_out + "'");
            std::fwrite(doc.data(), 1, doc.size(), f);
            std::fclose(f);
        }
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        usage(1);
    const std::string cmd = argv[1];
    if (cmd == "--help" || cmd == "-h")
        usage(0);
    if (cmd == "record")
        return cmdRecord(argc, argv);
    if (cmd == "info")
        return cmdInfo(argc, argv);
    if (cmd == "replay")
        return cmdReplay(argc, argv);
    std::fprintf(stderr, "unknown command '%s'\n", cmd.c_str());
    usage(1);
}
