/**
 * @file
 * gvc_bench — continuous performance tracking driver: times the fixed
 * benchmark matrix (cold run, trace replay, warm scenario, small sweep
 * over 3 workloads x 3 designs) and emits/validates versioned
 * BENCH_PR<N>.json documents.
 *
 *   gvc_bench --out BENCH_PR6.json          full run, write the report
 *   gvc_bench --quick --check BENCH_PR6.json  CI gate: counters only
 *   gvc_bench --quick --out /tmp/b.json     fast local measurement
 *
 * Counters in the JSON are deterministic and gated field-exactly by
 * --check; wall times / throughput / RSS are recorded but never gated.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "harness/bench.hh"
#include "harness/cli.hh"
#include "sim/logging.hh"

using namespace gvc;

namespace
{

struct Options
{
    BenchOptions bench;
    std::string out;   ///< Write the report JSON here ("-" = stdout).
    std::string check; ///< Compare counters against this baseline file.
};

[[noreturn]] void
usage(int code)
{
    std::printf(
        "usage: gvc_bench [options]\n"
        "      --out PATH        write the bench report JSON (- = stdout)\n"
        "      --check PATH      compare counters field-exactly against a\n"
        "                        checked-in baseline; exit 1 on any drift\n"
        "      --quick           1 trial, no warmup (same matrix/scale, so\n"
        "                        counters still match full runs)\n"
        "      --trials N        timed trials per config (default 3)\n"
        "      --warmup N        untimed warmup runs per config (default 1)\n"
        "      --scale F         workload scale for every cell (default 1)\n"
        "      --seed N          workload RNG seed\n"
        "      --rounds N        warm-scenario kernels per run (default 3)\n"
        "      --quiet           no per-config progress on stderr\n"
        "  -h, --help            this text\n");
    std::exit(code);
}

Options
parseArgs(int argc, char **argv)
{
    Options opt;
    auto need = [&](int i) -> std::string {
        if (i + 1 >= argc) {
            std::fprintf(stderr, "gvc_bench: %s needs a value\n", argv[i]);
            usage(2);
        }
        return argv[i + 1];
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--out") {
            opt.out = need(i);
            ++i;
        } else if (arg == "--check") {
            opt.check = need(i);
            ++i;
        } else if (arg == "--quick") {
            opt.bench.trials = 1;
            opt.bench.warmup = 0;
        } else if (arg == "--trials") {
            opt.bench.trials = parseUnsigned("--trials", need(i));
            ++i;
        } else if (arg == "--warmup") {
            opt.bench.warmup = parseUnsigned("--warmup", need(i));
            ++i;
        } else if (arg == "--scale") {
            opt.bench.scale = parseDouble("--scale", need(i));
            ++i;
        } else if (arg == "--seed") {
            opt.bench.seed = parseU64("--seed", need(i));
            ++i;
        } else if (arg == "--rounds") {
            opt.bench.scenario_rounds =
                parseUnsigned("--rounds", need(i));
            ++i;
        } else if (arg == "--quiet") {
            opt.bench.progress = false;
        } else if (arg == "-h" || arg == "--help") {
            usage(0);
        } else {
            std::fprintf(stderr, "gvc_bench: unknown option '%s'\n",
                         argv[i]);
            usage(2);
        }
    }
    if (opt.out.empty() && opt.check.empty()) {
        std::fprintf(stderr,
                     "gvc_bench: nothing to do — pass --out and/or "
                     "--check\n");
        usage(2);
    }
    return opt;
}

BenchReport
loadBaseline(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        fatal("gvc_bench: cannot open baseline '" + path + "'");
    std::ostringstream ss;
    ss << is.rdbuf();
    std::string err;
    const Json doc = Json::parse(ss.str(), &err);
    if (doc.isNull())
        fatal("gvc_bench: baseline '" + path + "': " + err);
    BenchReport baseline;
    if (!benchReportFromJson(doc, baseline, &err))
        fatal("gvc_bench: baseline '" + path + "': " + err);
    return baseline;
}

} // namespace

int
main(int argc, char **argv)
{
    const Options opt = parseArgs(argc, argv);

    // Loading the baseline up front makes a malformed file fail before
    // the (minutes-long) measurement, not after.
    BenchReport baseline;
    if (!opt.check.empty())
        baseline = loadBaseline(opt.check);

    const BenchReport report = runBench(opt.bench);
    const std::string text = benchReportToJson(report).dump(2) + "\n";

    if (!opt.out.empty()) {
        if (opt.out == "-") {
            std::fputs(text.c_str(), stdout);
        } else {
            std::FILE *f = std::fopen(opt.out.c_str(), "wb");
            if (!f)
                fatal("gvc_bench: cannot write '" + opt.out + "'");
            std::fwrite(text.data(), 1, text.size(), f);
            std::fclose(f);
            std::fprintf(stderr, "[gvc_bench] wrote %s\n",
                         opt.out.c_str());
        }
    }

    if (!opt.check.empty()) {
        std::string diff;
        if (!benchCountersMatch(baseline, report, diff)) {
            std::fprintf(stderr,
                         "gvc_bench: counter drift vs '%s':\n%s"
                         "If the simulator behavior change is intended, "
                         "regenerate the baseline (see "
                         "docs/BENCHMARKING.md).\n",
                         opt.check.c_str(), diff.c_str());
            return 1;
        }
        std::fprintf(stderr,
                     "[gvc_bench] counters match '%s' field-exactly\n",
                     opt.check.c_str());
    }
    return 0;
}
