/**
 * @file
 * Figure 10: the virtual cache hierarchy versus simply building larger
 * per-CU TLBs.  Baseline: 128-entry fully-associative per-CU TLBs with
 * a 16K-entry shared IOMMU TLB.  Paper: the VC still wins ~1.2x on
 * average over the high-BW workloads — big private TLBs filter some
 * accesses, the cache hierarchy filters more.
 *
 * Both designs per workload run through the parallel sweep engine.
 */

#include <cmath>
#include <cstdio>

#include "bench_common.hh"

using namespace gvc;
using namespace gvc::bench;

int
main()
{
    banner("Figure 10",
           "VC hierarchy speedup over 128-entry per-CU TLBs");

    const std::vector<DesignPoint> points = {
        {"large-tlb", MmuDesign::kBaselineLargeTlb, {}},
        {"vc-opt", MmuDesign::kVcOpt, {}},
    };
    const auto names = envWorkloads(highBandwidthWorkloadNames());
    const VsIdealGrid grid = runGrid(names, points, baseConfig());

    TextTable table({"workload", "large-TLB cycles", "VC cycles",
                     "speedup"});

    double geo = 1.0, sum = 0.0;
    unsigned n = 0;
    for (const auto &name : names) {
        const RunResult &big = grid.at(name, 0);
        const RunResult &vc = grid.at(name, 1);

        const double speedup =
            double(big.exec_ticks) / double(vc.exec_ticks);
        table.addRow({name, std::to_string(big.exec_ticks),
                      std::to_string(vc.exec_ticks),
                      TextTable::fmt(speedup, 2) + "x"});
        geo *= speedup;
        sum += speedup;
        ++n;
    }
    table.print();

    std::printf("\nMean speedup over large per-CU TLBs (paper: ~1.2x): "
                "arithmetic %.2fx, geometric %.2fx\n",
                sum / n, std::pow(geo, 1.0 / n));
    return 0;
}
