/**
 * @file
 * Figure 8: the virtual cache hierarchy as a translation bandwidth
 * filter.  Per workload: shared IOMMU TLB accesses per cycle for the
 * baseline (per-CU TLB misses) versus the proposed virtual hierarchy
 * (only L2 virtual-cache misses reach the IOMMU).  Both sides are
 * measured with an unthrottled port so demand is observed.  Paper:
 * <0.3 accesses/cycle on average with the virtual hierarchy.
 */

#include <cstdio>

#include "bench_common.hh"

using namespace gvc;
using namespace gvc::bench;

int
main()
{
    banner("Figure 8",
           "IOMMU TLB demand: baseline vs virtual cache hierarchy");

    TextTable table({"workload", "baseline acc/cyc", "(stdev)",
                     "VC acc/cyc", "(stdev)", "reduction"});

    double base_sum = 0.0, vc_sum = 0.0;
    unsigned n = 0;
    for (const auto &name : envWorkloads(allWorkloadNames())) {
        RunConfig cfg = baseConfig();
        cfg.design = MmuDesign::kBaseline512;
        cfg.soc.iommu.unlimited_bw = true;
        const RunResult base = runWorkload(name, cfg);

        cfg = baseConfig();
        cfg.design = MmuDesign::kVcOpt;
        cfg.soc.iommu.unlimited_bw = true;
        const RunResult vc = runWorkload(name, cfg);

        const double reduction =
            base.iommu_apc_mean > 0
                ? 1.0 - vc.iommu_apc_mean / base.iommu_apc_mean
                : 0.0;
        table.addRow({name, TextTable::fmt(base.iommu_apc_mean),
                      TextTable::fmt(base.iommu_apc_stdev),
                      TextTable::fmt(vc.iommu_apc_mean),
                      TextTable::fmt(vc.iommu_apc_stdev),
                      TextTable::pct(reduction)});
        base_sum += base.iommu_apc_mean;
        vc_sum += vc.iommu_apc_mean;
        ++n;
    }
    table.print();

    std::printf("\nMean IOMMU TLB demand: baseline %.3f acc/cycle, "
                "virtual hierarchy %.3f acc/cycle\n",
                base_sum / n, vc_sum / n);
    std::printf("(Paper: VC keeps the shared TLB under ~0.3 accesses "
                "per cycle on average.)\n");
    return 0;
}
