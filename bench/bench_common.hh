/**
 * @file
 * Shared bench-harness plumbing: environment-variable knobs so every
 * figure bench can be scaled or restricted without rebuilding.
 *
 *   GVC_SCALE      workload scale factor (default 0.5)
 *   GVC_WORKLOADS  comma-separated subset of workload names
 *   GVC_SEED       workload RNG seed
 */

#ifndef GVC_BENCH_BENCH_COMMON_HH
#define GVC_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "harness/runner.hh"
#include "harness/table.hh"
#include "workloads/registry.hh"

namespace gvc::bench
{

inline double
envScale()
{
    if (const char *s = std::getenv("GVC_SCALE"))
        return std::atof(s);
    return 0.5;
}

inline std::uint64_t
envSeed()
{
    if (const char *s = std::getenv("GVC_SEED"))
        return std::strtoull(s, nullptr, 10);
    return 0x5eed;
}

/** Workloads to run: GVC_WORKLOADS subset or the paper's full list. */
inline std::vector<std::string>
envWorkloads(const std::vector<std::string> &defaults)
{
    const char *s = std::getenv("GVC_WORKLOADS");
    if (!s)
        return defaults;
    std::vector<std::string> out;
    std::stringstream ss(s);
    std::string item;
    while (std::getline(ss, item, ','))
        if (!item.empty())
            out.push_back(item);
    return out.empty() ? defaults : out;
}

/** Base run configuration shared by the figure benches. */
inline RunConfig
baseConfig()
{
    RunConfig cfg;
    cfg.workload.scale = envScale();
    cfg.workload.seed = envSeed();
    return cfg;
}

inline void
banner(const char *fig, const char *what)
{
    std::printf("================================================="
                "=============\n");
    std::printf("%s — %s\n", fig, what);
    std::printf("workload scale %.2f (GVC_SCALE), seed %llu (GVC_SEED)\n",
                envScale(), (unsigned long long)envSeed());
    std::printf("================================================="
                "=============\n\n");
}

} // namespace gvc::bench

#endif // GVC_BENCH_BENCH_COMMON_HH
