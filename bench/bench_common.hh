/**
 * @file
 * Shared bench-harness plumbing: environment-variable knobs so every
 * figure bench can be scaled or restricted without rebuilding, and the
 * common "run every comparison point plus the IDEAL MMU and ratio
 * against it" pattern, built on the parallel sweep engine so figure
 * grids execute across all cores (override with GVC_JOBS).
 *
 *   GVC_SCALE       workload scale factor (default 0.5)
 *   GVC_WORKLOADS   comma-separated subset of workload names
 *   GVC_SEED        workload RNG seed
 *   GVC_JOBS        sweep worker threads (default: hardware cores)
 *   GVC_SWEEP_LIVE  set to disable the sweep's capture-once/replay
 *                   optimization and regenerate each workload per cell
 *
 * The sweep engine underneath captures every distinct (workload,
 * params) source as an in-memory trace once and replays it for each
 * design column (bit-identical to live generation), so a figure grid
 * pays workload generation once per row, not once per cell.
 */

#ifndef GVC_BENCH_BENCH_COMMON_HH
#define GVC_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "harness/runner.hh"
#include "harness/sweep.hh"
#include "harness/table.hh"
#include "workloads/registry.hh"

namespace gvc::bench
{

inline double
envScale()
{
    if (const char *s = std::getenv("GVC_SCALE"))
        return std::atof(s);
    return 0.5;
}

inline std::uint64_t
envSeed()
{
    if (const char *s = std::getenv("GVC_SEED"))
        return std::strtoull(s, nullptr, 10);
    return 0x5eed;
}

/** Workloads to run: GVC_WORKLOADS subset or the paper's full list. */
inline std::vector<std::string>
envWorkloads(const std::vector<std::string> &defaults)
{
    const char *s = std::getenv("GVC_WORKLOADS");
    if (!s)
        return defaults;
    std::vector<std::string> out;
    std::stringstream ss(s);
    std::string item;
    while (std::getline(ss, item, ','))
        if (!item.empty())
            out.push_back(item);
    return out.empty() ? defaults : out;
}

/** Base run configuration shared by the figure benches. */
inline RunConfig
baseConfig()
{
    RunConfig cfg;
    cfg.workload.scale = envScale();
    cfg.workload.seed = envSeed();
    return cfg;
}

/**
 * One comparison point of a figure: a design plus an optional config
 * tweak (bandwidth overrides, unlimited ports, ...).
 */
struct DesignPoint
{
    std::string label;
    MmuDesign design = MmuDesign::kBaseline512;
    std::function<void(RunConfig &)> tweak;
};

class VsIdealGrid;

/** Run @p points plus the IDEAL MMU over @p workloads in parallel. */
VsIdealGrid runVsIdeal(const std::vector<std::string> &workloads,
                       const std::vector<DesignPoint> &points,
                       const RunConfig &base, unsigned jobs = 0);

/** Same grid without the IDEAL runs (figures that ratio two points). */
VsIdealGrid runGrid(const std::vector<std::string> &workloads,
                    const std::vector<DesignPoint> &points,
                    const RunConfig &base, unsigned jobs = 0);

/**
 * Results of a (workload x comparison-point) grid normalized against
 * the IDEAL MMU, the pattern fig04/fig05/fig09/fig10 all share.  The
 * IDEAL run per workload is one sweep cell, memoized and simulated
 * exactly once no matter how many points reference it.
 */
class VsIdealGrid
{
  public:
    const RunResult &
    ideal(const std::string &workload) const
    {
        return sweep_.result(ideal_idx_.at(workload));
    }

    const RunResult &
    at(const std::string &workload, std::size_t point) const
    {
        return sweep_.result(point_idx_.at(workload).at(point));
    }

    double
    idealTicks(const std::string &workload) const
    {
        return double(ideal(workload).exec_ticks);
    }

    double
    ticks(const std::string &workload, std::size_t point) const
    {
        return double(at(workload, point).exec_ticks);
    }

    /** Execution time relative to IDEAL (>= 1.0 means slower). */
    double
    relTime(const std::string &workload, std::size_t point) const
    {
        return ticks(workload, point) / idealTicks(workload);
    }

    /** Performance relative to IDEAL (closer to 1.0 is better). */
    double
    perf(const std::string &workload, std::size_t point) const
    {
        return idealTicks(workload) / ticks(workload, point);
    }

    const Sweep &sweep() const { return sweep_; }

  private:
    friend VsIdealGrid detailRunGrid(const std::vector<std::string> &,
                                     const std::vector<DesignPoint> &,
                                     const RunConfig &, unsigned, bool);

    Sweep sweep_;
    std::map<std::string, std::size_t> ideal_idx_;
    std::map<std::string, std::vector<std::size_t>> point_idx_;
};

inline VsIdealGrid
detailRunGrid(const std::vector<std::string> &workloads,
              const std::vector<DesignPoint> &points,
              const RunConfig &base, unsigned jobs, bool with_ideal)
{
    VsIdealGrid grid;
    if (jobs)
        grid.sweep_ = Sweep(jobs);
    for (const auto &name : workloads) {
        if (with_ideal) {
            RunConfig ideal_cfg = base;
            ideal_cfg.design = MmuDesign::kIdeal;
            grid.ideal_idx_[name] = grid.sweep_.add(name, ideal_cfg);
        }
        auto &indices = grid.point_idx_[name];
        for (const DesignPoint &point : points) {
            RunConfig cfg = base;
            cfg.design = point.design;
            if (point.tweak)
                point.tweak(cfg);
            indices.push_back(grid.sweep_.add(name, cfg, point.label));
        }
    }
    grid.sweep_.run();
    return grid;
}

inline VsIdealGrid
runVsIdeal(const std::vector<std::string> &workloads,
           const std::vector<DesignPoint> &points, const RunConfig &base,
           unsigned jobs)
{
    return detailRunGrid(workloads, points, base, jobs, true);
}

inline VsIdealGrid
runGrid(const std::vector<std::string> &workloads,
        const std::vector<DesignPoint> &points, const RunConfig &base,
        unsigned jobs)
{
    return detailRunGrid(workloads, points, base, jobs, false);
}

inline void
banner(const char *fig, const char *what)
{
    std::printf("================================================="
                "=============\n");
    std::printf("%s — %s\n", fig, what);
    std::printf("workload scale %.2f (GVC_SCALE), seed %llu (GVC_SEED)\n",
                envScale(), (unsigned long long)envSeed());
    std::printf("================================================="
                "=============\n\n");
}

} // namespace gvc::bench

#endif // GVC_BENCH_BENCH_COMMON_HH
