/**
 * @file
 * Component-level microbenchmarks (google-benchmark): throughput of the
 * structures on the simulator's hot paths — FBT lookups and synonym
 * checks, TLB lookups across geometries, cache array accesses, the
 * coalescer, MSHRs, and the event queue itself.
 */

#include <benchmark/benchmark.h>

#include "cache/cache_array.hh"
#include "cache/mshr.hh"
#include "core/fbt.hh"
#include "gpu/coalescer.hh"
#include "gpu/warp_inst.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "tlb/tlb.hh"

using namespace gvc;

namespace
{

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    EventQueue eq;
    std::uint64_t sink = 0;
    for (auto _ : state) {
        for (int i = 0; i < 64; ++i)
            eq.scheduleIn(std::uint64_t(i % 7), [&sink] { ++sink; });
        eq.run();
    }
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_EventQueueScheduleRun);

void
BM_TlbLookupHit(benchmark::State &state)
{
    const unsigned entries = unsigned(state.range(0));
    Tlb tlb(TlbParams{entries, 0, false, false});
    for (Vpn v = 0; v < entries; ++v)
        tlb.insert(0, v, TlbLookup{v, kPermRead, false}, 0);
    Rng rng(1);
    Tick now = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            tlb.lookup(0, rng.below(entries), ++now));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TlbLookupHit)->Arg(32)->Arg(128)->Arg(512);

void
BM_TlbMissAndFill(benchmark::State &state)
{
    Tlb tlb(TlbParams{32, 0, false, false});
    Rng rng(2);
    Tick now = 0;
    for (auto _ : state) {
        const Vpn vpn = rng.below(100000);
        if (!tlb.lookup(0, vpn, ++now))
            tlb.insert(0, vpn, TlbLookup{vpn, kPermRead, false}, now);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TlbMissAndFill);

void
BM_CacheArrayAccess(benchmark::State &state)
{
    CacheArray cache(CacheParams{std::uint64_t(state.range(0)) * 1024,
                                 8, unsigned(kLineSize), true, true});
    Rng rng(3);
    Tick now = 0;
    for (auto _ : state) {
        const std::uint64_t addr = rng.below(65536) * kLineSize;
        if (!cache.access(0, addr, false, ++now))
            cache.insert(0, addr, kPermRead, false, now);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheArrayAccess)->Arg(32)->Arg(2048);

void
BM_FbtSynonymCheck(benchmark::State &state)
{
    Fbt fbt(FbtParams{unsigned(state.range(0)), 8, 8, true});
    Rng rng(4);
    for (auto _ : state) {
        const Vpn vpn = 0x1000 + rng.below(50000);
        const Ppn ppn = 0x9000 + (vpn * 3) % 40000;
        benchmark::DoNotOptimize(fbt.onCacheMiss(
            0, vpn, ppn, kPermRead, unsigned(rng.below(32)), false));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FbtSynonymCheck)->Arg(1024)->Arg(16384);

void
BM_FbtForwardLookup(benchmark::State &state)
{
    Fbt fbt(FbtParams{16384, 8, 8, true});
    for (Vpn v = 0; v < 8000; ++v)
        fbt.onCacheMiss(0, 0x1000 + v, 0x9000 + v, kPermRead, 0, false);
    Rng rng(5);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            fbt.forwardLookup(0, 0x1000 + rng.below(8000)));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FbtForwardLookup);

void
BM_FbtReverseLookup(benchmark::State &state)
{
    Fbt fbt(FbtParams{16384, 8, 8, true});
    for (Vpn v = 0; v < 8000; ++v)
        fbt.onCacheMiss(0, 0x1000 + v, 0x9000 + v, kPermRead, 0, false);
    Rng rng(6);
    for (auto _ : state) {
        benchmark::DoNotOptimize(fbt.reverseLookup(
            0x9000 + rng.below(16000), unsigned(rng.below(32))));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FbtReverseLookup);

void
BM_CoalescerDivergent(benchmark::State &state)
{
    Coalescer c;
    Rng rng(7);
    std::vector<Vaddr> lanes(kWarpLanes);
    for (auto _ : state) {
        for (auto &va : lanes)
            va = rng.below(std::uint64_t(state.range(0))) * 4;
        benchmark::DoNotOptimize(c.coalesce(lanes));
    }
    state.SetItemsProcessed(state.iterations() * kWarpLanes);
}
BENCHMARK(BM_CoalescerDivergent)->Arg(1024)->Arg(1 << 22);

/**
 * Warp-stream drain cost, as the CU issue loop pays it.  The "Reused"
 * variant is the shipping code path: one WarpInst lives across next()
 * calls and VectorWarpStream assigns lane addresses into its retained
 * capacity, so steady state does zero allocations.  The "Fresh" variant
 * reconstructs the WarpInst every iteration — the pre-refactor
 * behaviour (a fresh lane_addrs vector per instruction), kept as the
 * baseline that shows what the churn fix buys.
 */
std::vector<WarpInst>
divergentInsts(std::size_t n)
{
    Rng rng(9);
    std::vector<WarpInst> insts;
    insts.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        std::vector<Vaddr> lanes(kWarpLanes);
        for (auto &va : lanes)
            va = rng.below(1 << 22) * 4;
        insts.push_back(WarpInst::load(std::move(lanes)));
    }
    return insts;
}

void
BM_WarpStreamDrainReusedBuffer(benchmark::State &state)
{
    const auto insts = divergentInsts(256);
    WarpInst out; // allocated once, capacity retained across next()
    for (auto _ : state) {
        VectorWarpStream stream(insts);
        while (stream.next(out))
            benchmark::DoNotOptimize(out.lane_addrs.data());
    }
    state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_WarpStreamDrainReusedBuffer);

void
BM_WarpStreamDrainFreshBuffer(benchmark::State &state)
{
    const auto insts = divergentInsts(256);
    for (auto _ : state) {
        VectorWarpStream stream(insts);
        for (;;) {
            WarpInst out; // fresh vector per instruction (old behaviour)
            if (!stream.next(out))
                break;
            benchmark::DoNotOptimize(out.lane_addrs.data());
        }
    }
    state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_WarpStreamDrainFreshBuffer);

void
BM_MshrAllocateComplete(benchmark::State &state)
{
    MshrTable mshrs;
    Rng rng(8);
    for (auto _ : state) {
        const std::uint64_t key = rng.below(64);
        if (mshrs.allocate(key, [] {}) == MshrTable::Result::kPrimary)
            mshrs.complete(key);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MshrAllocateComplete);

} // namespace

BENCHMARK_MAIN();
