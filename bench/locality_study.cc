/**
 * @file
 * Sensitivity studies on the two levers the paper's motivation leans
 * on:
 *
 *  1. Input structure (§3.1, §3.2 "large pages do not help workloads
 *     with poor locality"): the same PageRank kernel over an R-MAT
 *     graph, a uniform random graph, and a regular 2D mesh — locality
 *     rises from left to right, translation pressure falls, and the
 *     virtual cache's filtering benefit shrinks accordingly.
 *
 *  2. Warp scheduling (cf. Pichai et al. [33], who study its effect on
 *     GPU MMUs): round-robin vs greedy-then-oldest on the baseline —
 *     GTO keeps one warp's page working set hot in the per-CU TLB.
 */

#include <cstdio>

#include "bench_common.hh"

using namespace gvc;
using namespace gvc::bench;

int
main()
{
    banner("locality & scheduling studies",
           "graph topology and warp-scheduler sensitivity");

    std::printf("-- 1. Graph topology: pagerank --\n");
    {
        struct Kind
        {
            const char *label;
            GraphKind kind;
        };
        const Kind kinds[] = {{"R-MAT", GraphKind::kRmat},
                              {"uniform", GraphKind::kUniform},
                              {"grid", GraphKind::kGrid}};
        TextTable t({"graph", "lines/mem-inst", "TLB miss (base)",
                     "IOMMU acc/cyc (base)", "VC speedup over base"});
        for (const auto &k : kinds) {
            RunConfig cfg = baseConfig();
            cfg.workload.graph = k.kind;
            // The 16K-entry baseline: a 512-entry shared TLB would add
            // capacity thrash for the grid's cyclic sweep, confounding
            // the locality signal this study isolates.
            cfg.design = MmuDesign::kBaseline16K;
            const RunResult base = runWorkload("pagerank", cfg);
            cfg.design = MmuDesign::kVcOpt;
            const RunResult vc = runWorkload("pagerank", cfg);
            t.addRow({k.label,
                      TextTable::fmt(base.lines_per_mem_inst, 1),
                      TextTable::pct(base.tlb_miss_ratio),
                      TextTable::fmt(base.iommu_apc_mean),
                      TextTable::fmt(double(base.exec_ticks) /
                                         double(vc.exec_ticks), 2) +
                          "x"});
        }
        t.print();
        std::printf("Divergence (lines/inst) falls with regular "
                    "topology, but cyclic sweeps still\ndefeat LRU in "
                    "32-entry per-CU TLBs; the caches cover both "
                    "failure modes, so the\nvirtual hierarchy's benefit "
                    "tracks the baseline's TLB miss pressure.\n\n");
    }

    std::printf("-- 2. Warp scheduler: baseline 512 --\n");
    {
        TextTable t({"workload", "policy", "TLB miss", "IOMMU acc/cyc",
                     "exec cycles"});
        for (const char *name : {"pagerank", "bfs", "kmeans"}) {
            for (const bool gto : {false, true}) {
                RunConfig cfg = baseConfig();
                cfg.design = MmuDesign::kBaseline512;
                cfg.soc.gpu.sched =
                    gto ? WarpSchedPolicy::kGreedyThenOldest
                        : WarpSchedPolicy::kRoundRobin;
                const RunResult r = runWorkload(name, cfg);
                t.addRow({name, gto ? "greedy-then-oldest"
                                    : "round-robin",
                          TextTable::pct(r.tlb_miss_ratio),
                          TextTable::fmt(r.iommu_apc_mean),
                          std::to_string(r.exec_ticks)});
            }
        }
        t.print();
    }
    return 0;
}
