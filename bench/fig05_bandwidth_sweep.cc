/**
 * @file
 * Figure 5: serialization overhead vs. shared IOMMU TLB peak bandwidth.
 *
 * High-translation-bandwidth workloads, 16K-entry IOMMU TLB, port rate
 * swept from 1 to 4 accesses/cycle.  Paper: overhead shrinks with
 * bandwidth but even 4 accesses/cycle leaves a residual — and such a
 * port is impractical to build — motivating filtering instead.
 */

#include <cstdio>

#include "bench_common.hh"

using namespace gvc;
using namespace gvc::bench;

int
main()
{
    banner("Figure 5",
           "IOMMU TLB bandwidth sweep (high-BW workloads, 16K TLB)");

    const auto names = envWorkloads(highBandwidthWorkloadNames());

    // IDEAL per workload.
    std::vector<double> ideal;
    for (const auto &name : names) {
        RunConfig cfg = baseConfig();
        cfg.design = MmuDesign::kIdeal;
        ideal.push_back(double(runWorkload(name, cfg).exec_ticks));
    }

    TextTable table({"peak BW (acc/cycle)", "relative exec time",
                     "serialization overhead"});

    double nobw_total = 0.0, ideal_total = 0.0;
    for (std::size_t i = 0; i < names.size(); ++i)
        ideal_total += ideal[i];

    // Unlimited bandwidth = pure PTW overhead reference.
    {
        double total = 0.0;
        for (const auto &name : names) {
            RunConfig cfg = baseConfig();
            cfg.design = MmuDesign::kBaseline16K;
            cfg.soc.iommu.unlimited_bw = true;
            total += double(runWorkload(name, cfg).exec_ticks);
        }
        nobw_total = total;
    }

    for (const double bw : {1.0, 2.0, 3.0, 4.0}) {
        double total = 0.0;
        for (const auto &name : names) {
            RunConfig cfg = baseConfig();
            cfg.design = MmuDesign::kBaseline16K;
            cfg.soc.iommu.accesses_per_cycle = bw;
            total += double(runWorkload(name, cfg).exec_ticks);
        }
        table.addRow({TextTable::fmt(bw, 0),
                      TextTable::pct(total / ideal_total, 0),
                      TextTable::pct((total - nobw_total) / ideal_total,
                                     0)});
    }
    table.addRow({"infinite", TextTable::pct(nobw_total / ideal_total, 0),
                  "0%"});
    table.print();

    std::printf("\nPaper Figure 5: serialization overhead falls from "
                "~80%% at 1 access/cycle\nto ~4%% at 4 accesses/cycle "
                "over the IDEAL MMU.\n");
    return 0;
}
