/**
 * @file
 * Figure 5: serialization overhead vs. shared IOMMU TLB peak bandwidth.
 *
 * High-translation-bandwidth workloads, 16K-entry IOMMU TLB, port rate
 * swept from 1 to 4 accesses/cycle.  Paper: overhead shrinks with
 * bandwidth but even 4 accesses/cycle leaves a residual — and such a
 * port is impractical to build — motivating filtering instead.
 *
 * The whole (workload x bandwidth) grid runs through the parallel
 * sweep engine in one shot.
 */

#include <cstdio>

#include "bench_common.hh"

using namespace gvc;
using namespace gvc::bench;

int
main()
{
    banner("Figure 5",
           "IOMMU TLB bandwidth sweep (high-BW workloads, 16K TLB)");

    const auto names = envWorkloads(highBandwidthWorkloadNames());
    const std::vector<double> rates = {1.0, 2.0, 3.0, 4.0};

    // Point 0: unlimited bandwidth = pure PTW overhead reference;
    // points 1..4: the swept port rates.
    std::vector<DesignPoint> points;
    points.push_back({"inf", MmuDesign::kBaseline16K, [](RunConfig &c) {
                          c.soc.iommu.unlimited_bw = true;
                      }});
    for (const double bw : rates) {
        points.push_back({"bw" + TextTable::fmt(bw, 0),
                          MmuDesign::kBaseline16K, [bw](RunConfig &c) {
                              c.soc.iommu.accesses_per_cycle = bw;
                          }});
    }

    const VsIdealGrid grid = runVsIdeal(names, points, baseConfig());

    double ideal_total = 0.0, nobw_total = 0.0;
    for (const auto &name : names) {
        ideal_total += grid.idealTicks(name);
        nobw_total += grid.ticks(name, 0);
    }

    TextTable table({"peak BW (acc/cycle)", "relative exec time",
                     "serialization overhead"});
    for (std::size_t p = 1; p < points.size(); ++p) {
        double total = 0.0;
        for (const auto &name : names)
            total += grid.ticks(name, p);
        table.addRow({TextTable::fmt(rates[p - 1], 0),
                      TextTable::pct(total / ideal_total, 0),
                      TextTable::pct((total - nobw_total) / ideal_total,
                                     0)});
    }
    table.addRow({"infinite", TextTable::pct(nobw_total / ideal_total, 0),
                  "0%"});
    table.print();

    std::printf("\nPaper Figure 5: serialization overhead falls from "
                "~80%% at 1 access/cycle\nto ~4%% at 4 accesses/cycle "
                "over the IDEAL MMU.\n");
    return 0;
}
