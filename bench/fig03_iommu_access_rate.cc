/**
 * @file
 * Figure 3: shared IOMMU TLB access rate (= per-CU TLB misses of all
 * CUs), sampled over 1 µs windows: mean, one standard deviation, and
 * the maximum window, per workload, sorted by mean.  As in the paper,
 * the IOMMU TLB is given unlimited bandwidth for this measurement so
 * the demand is observed rather than the throttled service rate.
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.hh"

using namespace gvc;
using namespace gvc::bench;

int
main()
{
    banner("Figure 3",
           "IOMMU TLB accesses per cycle (1 us windows, unthrottled)");

    struct Row
    {
        RunResult r;
    };
    std::vector<Row> rows;

    for (const auto &name : envWorkloads(allWorkloadNames())) {
        RunConfig cfg = baseConfig();
        cfg.design = MmuDesign::kBaseline512;
        cfg.soc.iommu.unlimited_bw = true;
        rows.push_back({runWorkload(name, cfg)});
    }

    std::sort(rows.begin(), rows.end(), [](const Row &a, const Row &b) {
        return a.r.iommu_apc_mean > b.r.iommu_apc_mean;
    });

    TextTable table({"workload", "mean acc/cyc", "stdev", "max",
                     "windows>1/cyc", "group"});
    const auto &high = highBandwidthWorkloadNames();
    for (const auto &row : rows) {
        const bool is_high =
            std::find(high.begin(), high.end(), row.r.workload) !=
            high.end();
        table.addRow({row.r.workload,
                      TextTable::fmt(row.r.iommu_apc_mean),
                      TextTable::fmt(row.r.iommu_apc_stdev),
                      TextTable::fmt(row.r.iommu_apc_max),
                      TextTable::pct(row.r.iommu_frac_windows_over_1),
                      is_high ? "high-BW" : "low-BW"});
    }
    table.print();

    double mean_sum = 0.0;
    for (const auto &row : rows)
        mean_sum += row.r.iommu_apc_mean;
    std::printf("\nMean demand across workloads (paper: ~1 access/cycle "
                "with bursts beyond 2): %.2f acc/cycle\n",
                mean_sum / double(rows.size()));
    return 0;
}
