/**
 * @file
 * Figure 4: GPU address-translation overhead across all workloads.
 *
 * Compares the IDEAL MMU against the baseline with a small (512-entry)
 * and a large (16K-entry) shared IOMMU TLB.  The overhead is split into
 * the page-table-walk component and the serialization component by also
 * running each baseline with the port limit removed: the residual over
 * IDEAL without a port limit is PTW overhead; the rest is queueing at
 * the shared TLB.  Paper: Small IOMMU TLB ≈ 1.77x IDEAL runtime for the
 * high-BW set (~1.32x over all); a large TLB barely helps because the
 * overhead is serialization, not capacity.
 *
 * All five points per workload run through the parallel sweep engine.
 */

#include <cstdio>

#include "bench_common.hh"

using namespace gvc;
using namespace gvc::bench;

namespace
{

struct Totals
{
    double ideal = 0, small_bw1 = 0, small_inf = 0, large_bw1 = 0,
           large_inf = 0;
};

constexpr std::size_t kSmallBw1 = 0, kSmallInf = 1, kLargeBw1 = 2,
                      kLargeInf = 3;

} // namespace

int
main()
{
    banner("Figure 4", "translation overhead: IDEAL vs small/large "
                       "shared IOMMU TLB");

    const auto unlimited = [](RunConfig &cfg) {
        cfg.soc.iommu.unlimited_bw = true;
    };
    const std::vector<DesignPoint> points = {
        {"small bw1", MmuDesign::kBaseline512, {}},
        {"small inf", MmuDesign::kBaseline512, unlimited},
        {"large bw1", MmuDesign::kBaseline16K, {}},
        {"large inf", MmuDesign::kBaseline16K, unlimited},
    };

    const auto names = envWorkloads(allWorkloadNames());
    const VsIdealGrid grid = runVsIdeal(names, points, baseConfig());

    TextTable table({"workload", "IDEAL", "Small IOMMU TLB",
                     "Large IOMMU TLB", "Small (miss-latency part)",
                     "Small (serialization part)"});

    Totals t;
    for (const auto &name : names) {
        const double ideal = grid.idealTicks(name);
        const double small_bw1 = grid.ticks(name, kSmallBw1);
        const double small_inf = grid.ticks(name, kSmallInf);
        const double large_bw1 = grid.ticks(name, kLargeBw1);
        const double large_inf = grid.ticks(name, kLargeInf);

        const double ptw_part = (small_inf - ideal) / ideal;
        const double ser_part = (small_bw1 - small_inf) / ideal;
        table.addRow({name, "100%",
                      TextTable::pct(small_bw1 / ideal, 0),
                      TextTable::pct(large_bw1 / ideal, 0),
                      TextTable::pct(ptw_part, 0),
                      TextTable::pct(ser_part, 0)});

        t.ideal += ideal;
        t.small_bw1 += small_bw1;
        t.small_inf += small_inf;
        t.large_bw1 += large_bw1;
        t.large_inf += large_inf;
    }
    table.print();

    // The decomposition: the "miss-latency" part is what remains with
    // an unthrottled port (page walks plus the PCIe-protocol round
    // trip of every per-CU TLB miss); the serialization part is the
    // additional queueing at the rate-limited shared TLB.
    std::printf("\nAll-workload relative execution time "
                "(cycle-weighted; paper Fig. 4):\n");
    std::printf("  IDEAL MMU        : 100%%\n");
    std::printf("  Small IOMMU TLB  : %.0f%%  (miss-latency %.0f%%, serialization "
                "%.0f%%)\n",
                100.0 * t.small_bw1 / t.ideal,
                100.0 * (t.small_inf - t.ideal) / t.ideal,
                100.0 * (t.small_bw1 - t.small_inf) / t.ideal);
    std::printf("  Large IOMMU TLB  : %.0f%%  (miss-latency %.0f%%, serialization "
                "%.0f%%)\n",
                100.0 * t.large_bw1 / t.ideal,
                100.0 * (t.large_inf - t.ideal) / t.ideal,
                100.0 * (t.large_bw1 - t.large_inf) / t.ideal);
    return 0;
}
