/**
 * @file
 * Dance-hall NoC injection study: the paper-figure calibration lets a
 * divergent memory instruction's 32 line requests enter the network
 * simultaneously.  This study bounds each CU to a fixed injection rate
 * and asks whether the headline comparison survives: burstiness at the
 * shared TLB drops, the baseline's serialization softens, and the
 * virtual hierarchy still wins by filtering the traffic outright.
 */

#include <cstdio>

#include "bench_common.hh"

using namespace gvc;
using namespace gvc::bench;

int
main()
{
    banner("NoC injection study",
           "per-CU injection limits vs the unlimited calibration");

    TextTable t({"workload", "inject/cyc", "IOMMU max acc/cyc (base)",
                 "base vs IDEAL", "VC vs IDEAL"});

    for (const char *name : {"mis", "pagerank", "bfs"}) {
        for (const double rate : {0.0, 4.0, 1.0}) {
            RunConfig cfg = baseConfig();
            cfg.soc.cu_injection_rate = rate;

            cfg.design = MmuDesign::kIdeal;
            const double ideal =
                double(runWorkload(name, cfg).exec_ticks);
            cfg.design = MmuDesign::kBaseline512;
            const RunResult base = runWorkload(name, cfg);
            cfg.design = MmuDesign::kVcOpt;
            const RunResult vc = runWorkload(name, cfg);

            t.addRow({name,
                      rate == 0.0 ? "unlimited"
                                  : TextTable::fmt(rate, 0),
                      TextTable::fmt(base.iommu_apc_max, 2),
                      TextTable::fmt(ideal / double(base.exec_ticks),
                                     2),
                      TextTable::fmt(ideal / double(vc.exec_ticks),
                                     2)});
        }
    }
    t.print();

    std::printf("\nBounded injection smooths the bursts but does not "
                "change who wins: per-CU\nTLB misses still saturate "
                "the shared port, and the virtual hierarchy still\n"
                "filters them.\n");
    return 0;
}
