/**
 * @file
 * Smoke sweep: run every workload under one cheap design and print the
 * per-workload activity summary.  Useful for sanity-checking workload
 * generators and timing the suite; not tied to a paper figure.
 */

#include <chrono>
#include <cstdio>

#include "bench_common.hh"

using namespace gvc;
using namespace gvc::bench;

int
main()
{
    banner("smoke", "all workloads under Baseline 512");

    TextTable table({"workload", "exec cycles", "warp insts", "mem insts",
                     "lines/inst", "TLB miss", "L1 hit", "L2 hit",
                     "wall (s)"});

    RunConfig cfg = baseConfig();
    cfg.design = MmuDesign::kBaseline512;

    for (const auto &name : envWorkloads(allWorkloadNames())) {
        const auto t0 = std::chrono::steady_clock::now();
        const RunResult r = runWorkload(name, cfg);
        const double wall =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - t0)
                .count();
        table.addRow({r.workload, std::to_string(r.exec_ticks),
                      std::to_string(r.instructions),
                      std::to_string(r.mem_instructions),
                      TextTable::fmt(r.lines_per_mem_inst, 2),
                      TextTable::pct(r.tlb_miss_ratio),
                      TextTable::pct(r.l1_hit_ratio),
                      TextTable::pct(r.l2_hit_ratio),
                      TextTable::fmt(wall, 2)});
    }
    table.print();
    return 0;
}
