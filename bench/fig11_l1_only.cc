/**
 * @file
 * Figure 11: whole-hierarchy virtual caching versus L1-only virtual
 * caches.  Speedups are relative to the Baseline 16K physical design.
 * Paper: L1-only VC ≈ 1.35x, full L1&L2 VC ≈ 1.77x over the baseline —
 * i.e., the full hierarchy is ~1.31x faster than L1-only on average,
 * because the virtual L2 filters an additional 35% of TLB misses.
 */

#include <cmath>
#include <cstdio>

#include "bench_common.hh"

using namespace gvc;
using namespace gvc::bench;

int
main()
{
    banner("Figure 11", "L1-only virtual caches vs whole hierarchy");

    const MmuDesign designs[] = {MmuDesign::kL1Vc32, MmuDesign::kL1Vc128,
                                 MmuDesign::kVcOpt};
    const char *labels[] = {"L1-Only VC (32)", "L1-Only VC (128)",
                            "L1&L2 VC"};

    const auto names = envWorkloads(allWorkloadNames());

    double base_total = 0.0;
    std::vector<double> base_ticks;
    for (const auto &name : names) {
        RunConfig cfg = baseConfig();
        cfg.design = MmuDesign::kBaseline16K;
        base_ticks.push_back(double(runWorkload(name, cfg).exec_ticks));
        base_total += base_ticks.back();
    }

    TextTable table({"design", "mean speedup vs Baseline 16K"});
    double speedup_l1only32 = 0.0, speedup_full = 0.0;
    for (unsigned d = 0; d < 3; ++d) {
        double sum = 0.0;
        for (std::size_t i = 0; i < names.size(); ++i) {
            RunConfig cfg = baseConfig();
            cfg.design = designs[d];
            const RunResult r = runWorkload(names[i], cfg);
            sum += base_ticks[i] / double(r.exec_ticks);
        }
        const double mean = sum / double(names.size());
        table.addRow({labels[d], TextTable::fmt(mean, 2) + "x"});
        if (designs[d] == MmuDesign::kL1Vc32)
            speedup_l1only32 = mean;
        if (designs[d] == MmuDesign::kVcOpt)
            speedup_full = mean;
    }
    table.print();

    std::printf("\nFull hierarchy over L1-only VC (paper: ~1.31x): "
                "%.2fx\n",
                speedup_full / speedup_l1only32);
    std::printf("Paper Figure 11: L1-only VC(32) ~1.35x, L1&L2 VC "
                "~1.77x over Baseline 16K.\n");
    return 0;
}
