/**
 * @file
 * Figure 2: breakdown of per-CU TLB misses by where the data resides.
 *
 * For every workload and per-CU TLB size (32 / 64 / 128 / infinite),
 * run the baseline physical hierarchy and classify each TLB miss via
 * side-effect-free presence probes: data in the requesting CU's L1,
 * data in the shared L2, or a real memory access.  The paper's headline
 * numbers: ~56% average miss ratio at 32 entries; 31% of misses find
 * data in an L1, 35% in the L2, only 34% go to memory (=> 66% of TLB
 * misses are filterable by a virtual cache hierarchy).
 *
 * The shared TLB is left unthrottled here: Figure 2 measures demand
 * ratios, which are independent of IOMMU bandwidth.
 */

#include <cstdio>

#include "bench_common.hh"

using namespace gvc;
using namespace gvc::bench;

int
main()
{
    banner("Figure 2", "per-CU TLB miss ratio and residency breakdown");

    struct TlbConfig
    {
        const char *label;
        unsigned entries;
        bool infinite;
    };
    const TlbConfig sizes[] = {{"32", 32, false},
                               {"64", 64, false},
                               {"128", 128, false},
                               {"infinite", 0, true}};

    TextTable table({"workload", "TLB", "miss ratio", "miss+L1 hit",
                     "miss+L2 hit", "miss+L2 miss", "filterable"});

    double sum_ratio_32 = 0.0, sum_l1_32 = 0.0, sum_l2_32 = 0.0;
    double sum_filterable_128 = 0.0;
    unsigned n_32 = 0, n_128 = 0;

    for (const auto &name : envWorkloads(allWorkloadNames())) {
        for (const auto &sz : sizes) {
            RunConfig cfg = baseConfig();
            cfg.design = MmuDesign::kBaseline16K;
            cfg.raw_soc = true; // sweep the per-CU TLB size directly
            cfg.soc.percu_tlb_entries = sz.entries ? sz.entries : 32;
            cfg.soc.percu_tlb_infinite = sz.infinite;
            cfg.soc.iommu.tlb_entries = 16 * 1024;
            cfg.soc.iommu.unlimited_bw = true; // demand measurement
            const RunResult r = runWorkload(name, cfg);

            const double total = double(r.tlb_breakdown.total());
            const double f_l1 =
                total ? double(r.tlb_breakdown.miss_l1_hit) / total : 0.0;
            const double f_l2 =
                total ? double(r.tlb_breakdown.miss_l2_hit) / total : 0.0;
            const double f_mem =
                total ? double(r.tlb_breakdown.miss_l2_miss) / total
                      : 0.0;

            table.addRow({name, sz.label, TextTable::pct(r.tlb_miss_ratio),
                          TextTable::pct(r.tlb_miss_ratio * f_l1),
                          TextTable::pct(r.tlb_miss_ratio * f_l2),
                          TextTable::pct(r.tlb_miss_ratio * f_mem),
                          TextTable::pct(f_l1 + f_l2)});

            if (!sz.infinite && sz.entries == 32) {
                sum_ratio_32 += r.tlb_miss_ratio;
                sum_l1_32 += f_l1;
                sum_l2_32 += f_l2;
                ++n_32;
            }
            if (!sz.infinite && sz.entries == 128) {
                sum_filterable_128 += f_l1 + f_l2;
                ++n_128;
            }
        }
    }
    table.print();

    if (n_32) {
        std::printf("\nAverages at 32-entry per-CU TLBs "
                    "(paper: 56%% miss ratio; 31%% L1 / 35%% L2 / 34%% "
                    "memory => 66%% filterable):\n");
        std::printf("  mean miss ratio      : %.1f%%\n",
                    100.0 * sum_ratio_32 / n_32);
        std::printf("  misses with L1 data  : %.1f%%\n",
                    100.0 * sum_l1_32 / n_32);
        std::printf("  misses with L2 data  : %.1f%%\n",
                    100.0 * sum_l2_32 / n_32);
        std::printf("  filterable by VC     : %.1f%%\n",
                    100.0 * (sum_l1_32 + sum_l2_32) / n_32);
    }
    if (n_128) {
        std::printf("  filterable at 128-entry TLBs (paper: 65%%): "
                    "%.1f%%\n",
                    100.0 * sum_filterable_128 / n_128);
    }
    return 0;
}
