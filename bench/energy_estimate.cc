/**
 * @file
 * Takeaway 3 (§5.3): the paper expects — without quantifying — energy
 * benefits from (i) not consulting per-CU TLBs on every access, (ii) a
 * less-busy IOMMU, and (iii) fewer page walks.  This extension
 * quantifies translation energy from event counts using illustrative
 * per-event energies (harness/energy.hh); relative numbers are the
 * takeaway, not the absolute joules.
 */

#include <cstdio>

#include "bench_common.hh"
#include "harness/energy.hh"

using namespace gvc;
using namespace gvc::bench;

int
main()
{
    banner("energy (Takeaway 3)",
           "translation energy: baseline vs L1-only VC vs full VC");

    TextTable table({"workload", "baseline (nJ)", "L1-only VC (nJ)",
                     "full VC (nJ)", "VC saving"});

    double base_sum = 0, l1vc_sum = 0, vc_sum = 0;
    for (const auto &name : envWorkloads(allWorkloadNames())) {
        RunConfig cfg = baseConfig();

        cfg.design = MmuDesign::kBaseline16K;
        const auto e_base =
            estimateEnergy(runWorkload(name, cfg)).translation_nj;
        cfg.design = MmuDesign::kL1Vc32;
        const auto e_l1 =
            estimateEnergy(runWorkload(name, cfg)).translation_nj;
        cfg.design = MmuDesign::kVcOpt;
        const auto e_vc =
            estimateEnergy(runWorkload(name, cfg)).translation_nj;

        table.addRow({name, TextTable::fmt(e_base, 1),
                      TextTable::fmt(e_l1, 1), TextTable::fmt(e_vc, 1),
                      TextTable::pct(1.0 - e_vc / e_base)});
        base_sum += e_base;
        l1vc_sum += e_l1;
        vc_sum += e_vc;
    }
    table.print();

    std::printf("\nTotals: baseline %.0f nJ, L1-only VC %.0f nJ "
                "(%.0f%% saved), full VC %.0f nJ (%.0f%% saved)\n",
                base_sum, l1vc_sum, 100.0 * (1 - l1vc_sum / base_sum),
                vc_sum, 100.0 * (1 - vc_sum / base_sum));
    std::printf("The full hierarchy removes the per-CU TLBs entirely "
                "and touches the shared\ntranslation structures only "
                "on L2 misses — fewer accesses to every structure\n"
                "(§5.3/§5.4).\n");
    return 0;
}
