/**
 * @file
 * §3.2 "Discussion of Conventional Mechanisms": would a multi-banked
 * shared IOMMU TLB solve the bandwidth problem instead?  The paper
 * argues no — bank selection uses higher-order address bits, so the
 * clustered footprints of some high-demand workloads (mis, color_max)
 * conflict frequently, limiting the effective bandwidth — and banking
 * still costs interconnect/arbitration complexity.
 *
 * This study sweeps bank counts on the baseline and compares against
 * the virtual-cache filter.
 */

#include <cstdio>

#include "bench_common.hh"

using namespace gvc;
using namespace gvc::bench;

int
main()
{
    banner("banked shared TLB (§3.2)",
           "banking the IOMMU TLB vs filtering with virtual caches");

    const char *names[] = {"mis", "color_max", "pagerank_spmv",
                           "pagerank"};

    TextTable table({"workload", "banks", "bank conflicts",
                     "mean queue delay", "exec cycles"});
    for (const char *name : names) {
        for (const unsigned banks : {1u, 2u, 4u, 8u}) {
            RunConfig cfg = baseConfig();
            cfg.design = MmuDesign::kBaseline16K;
            cfg.soc.iommu.banks = banks;
            std::uint64_t conflicts = 0;
            const RunResult r = runWorkload(
                name, cfg,
                [&](SystemUnderTest &sut, Gpu &, SimContext &) {
                    conflicts = sut.iommu()->bankConflicts();
                });
            table.addRow({name, std::to_string(banks),
                          std::to_string(conflicts),
                          TextTable::fmt(r.iommu_serialization_mean, 1),
                          std::to_string(r.exec_ticks)});
        }
        RunConfig cfg = baseConfig();
        cfg.design = MmuDesign::kVcOpt;
        const RunResult vc = runWorkload(name, cfg);
        table.addRow({name, "VC filter", "-",
                      TextTable::fmt(vc.iommu_serialization_mean, 1),
                      std::to_string(vc.exec_ticks)});
    }
    table.print();

    std::printf("\nBanking helps while conflicts are rare, but high-"
                "order-bit bank selection\nkeeps hot pages in the same "
                "bank; the virtual-cache filter removes the\ntraffic "
                "instead of widening the structure (§3.2-§3.3).\n");
    return 0;
}
