/**
 * @file
 * Ablations of the design choices DESIGN.md calls out:
 *
 *  1. Baseline TLB-miss merging: the paper's accounting sends every
 *     per-CU TLB miss to the IOMMU; how much of the baseline's pain is
 *     that, versus fundamental demand?
 *  2. FBT sizing (§4.3): purge rate and performance as the FBT shrinks
 *     below one entry per resident page.
 *  3. FBT as second-level TLB ("With OPT") with a deliberately tiny
 *     shared TLB, isolating the PTW-avoidance benefit.
 *  4. L1 invalidation-filter size: flush rate as the filter shrinks.
 */

#include <cstdio>

#include "bench_common.hh"

using namespace gvc;
using namespace gvc::bench;

int
main()
{
    banner("ablations", "design-choice studies on pagerank + mis");

    const char *wl_names[] = {"pagerank", "mis"};

    std::printf("-- 1. Baseline per-CU TLB miss merging --\n");
    {
        TextTable t({"workload", "IOMMU accesses (unmerged)",
                     "IOMMU accesses (merged)", "exec unmerged",
                     "exec merged"});
        for (const char *name : wl_names) {
            RunConfig cfg = baseConfig();
            cfg.design = MmuDesign::kBaseline512;
            const RunResult plain = runWorkload(name, cfg);

            // Re-run with merging via a custom system: reuse the
            // harness by flipping the soc knob through raw mode is not
            // enough (merging is a system flag), so approximate with
            // the VC-side counterpart: report unmerged numbers plus
            // the merge-mode run below.
            const RunResult merged = [&] {
                SimContext ctx(cfg.workload.seed);
                PhysMem pm(cfg.soc.phys_mem_bytes);
                Vm vm(pm);
                const Asid asid = vm.createProcess();
                auto wl = makeWorkload(name, cfg.workload);
                wl->setup(vm, asid);
                Dram dram(ctx, cfg.soc.dram);
                const SocConfig soc =
                    configFor(MmuDesign::kBaseline512, cfg.soc);
                BaselineMmuSystem sys(ctx, soc, vm, dram,
                                      /*merge_tlb_misses=*/true);
                Gpu gpu(ctx, soc.gpu, sys);
                for (auto &launch : wl->kernels()) {
                    bool done = false;
                    gpu.launch(std::move(launch), [&] { done = true; });
                    ctx.eq.run();
                }
                RunResult r;
                r.exec_ticks = ctx.now();
                r.iommu_accesses = sys.iommu().accesses();
                return r;
            }();

            t.addRow({name, std::to_string(plain.iommu_accesses),
                      std::to_string(merged.iommu_accesses),
                      std::to_string(plain.exec_ticks),
                      std::to_string(merged.exec_ticks)});
        }
        t.print();
        std::printf("Merging same-page misses cuts IOMMU traffic but "
                    "divergent workloads still\noverwhelm the port: "
                    "filtering, not merging, is the fix.\n\n");
    }

    std::printf("-- 2. FBT capacity (purges turn into cache "
                "invalidations) --\n");
    {
        TextTable t({"workload", "FBT entries", "purges", "L1 flushes",
                     "exec cycles"});
        for (const char *name : wl_names) {
            for (const unsigned entries : {256u, 1024u, 16384u}) {
                RunConfig cfg = baseConfig();
                cfg.design = MmuDesign::kVcOpt;
                cfg.raw_soc = true;
                cfg.soc.iommu.tlb_entries = 512;
                cfg.soc.fbt_as_second_level_tlb = true;
                cfg.soc.fbt.entries = entries;
                std::uint64_t flushes = 0;
                const RunResult r = runWorkload(
                    name, cfg,
                    [&](SystemUnderTest &sut, Gpu &, SimContext &) {
                        flushes = sut.vc()->l1Flushes();
                    });
                t.addRow({name, std::to_string(entries),
                          std::to_string(r.fbt_purges),
                          std::to_string(flushes),
                          std::to_string(r.exec_ticks)});
            }
        }
        t.print();
        std::printf("\n");
    }

    std::printf("-- 3. FBT-as-second-level-TLB with a tiny shared TLB "
                "--\n");
    {
        TextTable t({"workload", "shared TLB", "OPT", "walks",
                     "exec cycles"});
        for (const char *name : wl_names) {
            for (const bool opt : {false, true}) {
                RunConfig cfg = baseConfig();
                cfg.design =
                    opt ? MmuDesign::kVcOpt : MmuDesign::kVcNoOpt;
                cfg.raw_soc = true;
                cfg.soc.iommu.tlb_entries = 32; // deliberately small
                cfg.soc.fbt_as_second_level_tlb = opt;
                const RunResult r = runWorkload(name, cfg);
                t.addRow({name, "32-entry", opt ? "yes" : "no",
                          std::to_string(r.page_walks),
                          std::to_string(r.exec_ticks)});
            }
        }
        t.print();
        std::printf("With OPT the FBT serves shared-TLB misses without "
                    "page walks (§5.2).\n\n");
    }

    std::printf("-- 4. Dynamic synonym remapping (§4.3 extension) --\n");
    {
        // A synonym-heavy microworkload driven directly through the
        // hierarchy: repeated reads of a shared read-only buffer
        // through an alias.  Without remapping every access replays at
        // the FBT; with it the alias is rewritten before the L1.
        TextTable t({"remap table", "synonym replays", "remap hits",
                     "exec cycles"});
        for (const unsigned entries : {0u, 256u}) {
            SimContext ctx(7);
            PhysMem pm(std::uint64_t{1} << 30);
            Vm vm(pm);
            Dram dram(ctx, {});
            SocConfig soc;
            soc.gpu.num_cus = 4;
            soc.synonym_remap_entries = entries;
            VirtualCacheSystem vc(ctx, soc, vm, dram);
            const Asid asid = vm.createProcess();
            const Vaddr buf = vm.mmapAnon(asid, 64 * kPageSize,
                                          kPermRead);
            const Vaddr alias =
                vm.alias(asid, asid, buf, 64 * kPageSize, kPermRead);
            unsigned outstanding = 0;
            Rng rng(3);
            for (int i = 0; i < 20000; ++i) {
                // Mostly through the alias, but the original name
                // touches each page first and stays hot, so it remains
                // the leading name and alias accesses are synonyms.
                const Vaddr base =
                    rng.chance(0.3) ? buf : alias;
                const Vaddr va = base + rng.below(64) * kPageSize +
                                 rng.below(kLinesPerPage) * kLineSize;
                ++outstanding;
                vc.access(unsigned(rng.below(4)), asid, va, false,
                          [&outstanding] { --outstanding; });
                if (i % 4 == 0)
                    ctx.eq.run();
            }
            ctx.eq.run();
            t.addRow({entries ? std::to_string(entries) + " entries"
                              : "disabled",
                      std::to_string(vc.synonymReplays()),
                      std::to_string(vc.remapTable().hits()),
                      std::to_string(ctx.now())});
        }
        t.print();
        std::printf("Remapping rewrites known synonyms before the L1, "
                    "eliminating the per-access\nmiss-replay round "
                    "trip for synonym-heavy future systems (§4.3).\n");
    }
    return 0;
}
