/**
 * @file
 * Figure 12 (Appendix): relative lifetime of pages in each level of the
 * cache hierarchy versus the per-CU TLB, for the bfs workload.
 *
 * TLB lifetime = entry residence (insert -> evict); cache lifetime =
 * active lifetime (insert -> last access).  The paper's observation: by
 * ~5000 ns, 90% of TLB entries are gone while 40% of L1 data and 60% of
 * L2 data is still live — so accesses to that data hit the caches but
 * miss the TLB, which is exactly what a virtual hierarchy filters.
 */

#include <cstdio>

#include "bench_common.hh"
#include "sim/stats.hh"

using namespace gvc;
using namespace gvc::bench;

int
main()
{
    banner("Figure 12", "lifetimes of TLB entries vs cached data (bfs)");

    // 700 MHz clock: 1 cycle = 1/0.7 ns.  Histogram buckets of 256
    // cycles (~366 ns) out to ~375 us.
    LinearHistogram tlb_life(256.0, 1024);
    LinearHistogram l1_life(256.0, 1024);
    LinearHistogram l2_life(256.0, 1024);

    RunConfig cfg = baseConfig();
    cfg.design = MmuDesign::kBaseline512;
    cfg.soc.track_lifetimes = true;

    runWorkload("bfs", cfg,
                [&](SystemUnderTest &sut, Gpu &, SimContext &) {
                    BaselineMmuSystem *b = sut.baseline();
                    for (unsigned cu = 0; cu < 16; ++cu) {
                        tlb_life.merge(b->perCuTlb(cu)
                                           .lifetimes()
                                           .histogram());
                        l1_life.merge(b->caches()
                                          .l1(cu)
                                          .lifetimes()
                                          .histogram());
                    }
                    l2_life.merge(
                        b->caches().l2().lifetimes().histogram());
                });

    TextTable table({"lifetime (ns)", "TLB entries evicted",
                     "L1 data expired", "L2 data expired"});
    const double ns_per_cycle = 1.0 / 0.7;
    for (const double ns :
         {500.0, 1000.0, 2000.0, 5000.0, 10000.0, 20000.0, 40000.0}) {
        const double cycles = ns / ns_per_cycle;
        table.addRow({TextTable::fmt(ns, 0),
                      TextTable::pct(tlb_life.cdfAt(cycles)),
                      TextTable::pct(l1_life.cdfAt(cycles)),
                      TextTable::pct(l2_life.cdfAt(cycles))});
    }
    table.print();

    std::printf("\nsamples: TLB %llu, L1 %llu, L2 %llu\n",
                (unsigned long long)tlb_life.total(),
                (unsigned long long)l1_life.total(),
                (unsigned long long)l2_life.total());
    std::printf("Paper: at 5000 ns ~90%% of TLB entries are evicted but "
                "only ~60%% of L1 data\nand ~40%% of L2 data has "
                "expired — cached data outlives its translations.\n");
    return 0;
}
