/**
 * @file
 * Figure 9 + Table 2: performance of the evaluated MMU designs relative
 * to the IDEAL MMU (closer to 1.0 is better).
 *
 * Designs: Baseline 512, Baseline 16K, VC W/O OPT (512-entry shared
 * TLB), VC With OPT (FBT doubles as a 16K-entry second-level TLB).
 * High-bandwidth workloads are listed individually, then the averages
 * for the high-BW set and across all 15 workloads.  Paper: baselines
 * lose ~42% on the high-BW set (~32% over all); VC With OPT is within
 * a few percent of IDEAL; the FBT catches ~74% of shared TLB misses.
 *
 * The (workload x design) grid runs through the parallel sweep engine;
 * each IDEAL normalization run is simulated once (memoized).
 */

#include <algorithm>
#include <cstdio>

#include "bench_common.hh"

using namespace gvc;
using namespace gvc::bench;

int
main()
{
    banner("Figure 9 / Table 2",
           "performance relative to IDEAL MMU (higher is better)");

    std::printf("%s\n", designTable().c_str());

    const std::vector<DesignPoint> points = {
        {"Baseline 512", MmuDesign::kBaseline512, {}},
        {"Baseline 16K", MmuDesign::kBaseline16K, {}},
        {"VC W/O OPT", MmuDesign::kVcNoOpt, {}},
        {"VC With OPT", MmuDesign::kVcOpt, {}},
    };

    const auto all = envWorkloads(allWorkloadNames());
    const auto &high = highBandwidthWorkloadNames();

    const VsIdealGrid grid = runVsIdeal(all, points, baseConfig());

    double fbt_hit_sum = 0.0;
    unsigned fbt_hit_n = 0;
    for (const auto &name : all) {
        for (std::size_t p = 0; p < points.size(); ++p) {
            const RunResult &r = grid.at(name, p);
            if (points[p].design == MmuDesign::kVcOpt &&
                r.fbt_second_level_hit_ratio > 0) {
                fbt_hit_sum += r.fbt_second_level_hit_ratio;
                ++fbt_hit_n;
            }
        }
    }

    TextTable table({"workload", "Baseline 512", "Baseline 16K",
                     "VC W/O OPT", "VC With OPT"});
    auto add_row = [&](const std::string &label,
                       const std::vector<std::string> &subset) {
        std::vector<std::string> cells{label};
        for (std::size_t p = 0; p < points.size(); ++p) {
            double sum = 0.0;
            unsigned n = 0;
            for (const auto &name : subset) {
                if (std::find(all.begin(), all.end(), name) ==
                    all.end())
                    continue;
                sum += grid.perf(name, p);
                ++n;
            }
            cells.push_back(n ? TextTable::fmt(sum / n, 2) : "-");
        }
        table.addRow(std::move(cells));
    };

    for (const auto &name : all) {
        if (std::find(high.begin(), high.end(), name) != high.end())
            add_row(name, {name});
    }
    add_row("Average(High-BW)", high);
    add_row("Average(ALL)", all);
    table.print();

    if (fbt_hit_n) {
        std::printf("\nFBT second-level TLB hit ratio on shared-TLB "
                    "misses (paper: ~74%%): %.1f%%\n",
                    100.0 * fbt_hit_sum / fbt_hit_n);
    }
    std::printf("Paper Figure 9: baselines average ~0.58 (high-BW) and "
                "~0.68 (all); VC With OPT ~1.0.\n");
    return 0;
}
