/**
 * @file
 * End-to-end tests through the experiment runner: every design runs a
 * real workload to completion, and the paper's headline relationships
 * hold (VC filters translation traffic, VC ≈ IDEAL ≫ baseline on a
 * high-divergence workload, low-BW workloads are not hurt).
 */

#include <gtest/gtest.h>

#include "harness/runner.hh"

namespace gvc
{
namespace
{

RunConfig
quick(MmuDesign design, double scale = 0.1)
{
    RunConfig cfg;
    cfg.design = design;
    cfg.workload.scale = scale;
    return cfg;
}

/** Every design completes every-ish workload (smoke, parameterized). */
class DesignSmoke : public ::testing::TestWithParam<MmuDesign>
{
};

TEST_P(DesignSmoke, RunsPagerankToCompletion)
{
    const RunResult r = runWorkload("pagerank", quick(GetParam()));
    EXPECT_GT(r.exec_ticks, 0u);
    EXPECT_GT(r.instructions, 0u);
    EXPECT_GT(r.mem_instructions, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllDesigns, DesignSmoke,
    ::testing::Values(MmuDesign::kIdeal, MmuDesign::kBaseline512,
                      MmuDesign::kBaseline16K,
                      MmuDesign::kBaselineLargeTlb, MmuDesign::kVcNoOpt,
                      MmuDesign::kVcOpt, MmuDesign::kL1Vc32,
                      MmuDesign::kL1Vc128));

/** Every workload completes under the proposed design (tiny scale). */
class WorkloadUnderVc : public ::testing::TestWithParam<std::string>
{
};

TEST_P(WorkloadUnderVc, RunsToCompletionWithCleanInvariants)
{
    RunConfig cfg = quick(MmuDesign::kVcOpt, 0.05);
    std::uint64_t fbt_pages = 0;
    bool consistent = false;
    const RunResult r = runWorkload(
        GetParam(), cfg,
        [&](SystemUnderTest &sut, Gpu &, SimContext &) {
            consistent = sut.vc()->fbt().consistent();
            fbt_pages = sut.vc()->fbt().validEntries();
        });
    EXPECT_GT(r.exec_ticks, 0u);
    EXPECT_TRUE(consistent);
    EXPECT_GT(fbt_pages, 0u);
    EXPECT_EQ(r.rw_faults, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, WorkloadUnderVc,
                         ::testing::ValuesIn(allWorkloadNames()));
INSTANTIATE_TEST_SUITE_P(Extras, WorkloadUnderVc,
                         ::testing::ValuesIn(extraWorkloadNames()));

TEST(RunnerIntegration, VcFiltersIommuTraffic)
{
    const RunResult base =
        runWorkload("pagerank", quick(MmuDesign::kBaseline512, 0.2));
    const RunResult vc =
        runWorkload("pagerank", quick(MmuDesign::kVcOpt, 0.2));
    EXPECT_LT(vc.iommu_accesses, base.iommu_accesses / 2);
}

TEST(RunnerIntegration, VcApproachesIdealOnHighDivergence)
{
    const RunResult ideal =
        runWorkload("mis", quick(MmuDesign::kIdeal, 0.2));
    const RunResult base =
        runWorkload("mis", quick(MmuDesign::kBaseline512, 0.2));
    const RunResult vc =
        runWorkload("mis", quick(MmuDesign::kVcOpt, 0.2));
    // Baseline degrades substantially; VC lands within 15% of IDEAL.
    EXPECT_GT(double(base.exec_ticks), 1.3 * double(ideal.exec_ticks));
    EXPECT_LT(double(vc.exec_ticks), 1.15 * double(ideal.exec_ticks));
}

TEST(RunnerIntegration, LowBandwidthWorkloadNotHurtByVc)
{
    const RunResult base =
        runWorkload("hotspot", quick(MmuDesign::kBaseline16K, 0.25));
    const RunResult vc =
        runWorkload("hotspot", quick(MmuDesign::kVcOpt, 0.25));
    EXPECT_LE(double(vc.exec_ticks), 1.05 * double(base.exec_ticks));
}

TEST(RunnerIntegration, FullVcBeatsL1OnlyOnGraphWorkload)
{
    const RunResult l1 =
        runWorkload("pagerank", quick(MmuDesign::kL1Vc32, 0.2));
    const RunResult full =
        runWorkload("pagerank", quick(MmuDesign::kVcOpt, 0.2));
    EXPECT_LT(full.exec_ticks, l1.exec_ticks);
}

TEST(RunnerIntegration, DeterministicAcrossRuns)
{
    const RunResult a =
        runWorkload("bfs", quick(MmuDesign::kVcOpt, 0.1));
    const RunResult b =
        runWorkload("bfs", quick(MmuDesign::kVcOpt, 0.1));
    EXPECT_EQ(a.exec_ticks, b.exec_ticks);
    EXPECT_EQ(a.iommu_accesses, b.iommu_accesses);
    EXPECT_EQ(a.instructions, b.instructions);
}

TEST(RunnerIntegration, RawSocBypassesDesignDefaults)
{
    RunConfig cfg = quick(MmuDesign::kBaseline512, 0.1);
    cfg.raw_soc = true;
    cfg.soc.percu_tlb_infinite = true;
    const RunResult r = runWorkload("pagerank", cfg);
    // Infinite per-CU TLBs: only demand misses remain.
    EXPECT_LT(r.tlb_miss_ratio, 0.2);
}

TEST(RunnerIntegration, BreakdownBucketsSumToMisses)
{
    const RunResult r =
        runWorkload("color_max", quick(MmuDesign::kBaseline512, 0.15));
    EXPECT_EQ(r.tlb_breakdown.total(), r.tlb_misses);
}

TEST(RunnerIntegration, NoSynonymOrRwFaultsInPerfWorkloads)
{
    for (const char *name : {"pagerank", "bfs", "kmeans"}) {
        const RunResult r =
            runWorkload(name, quick(MmuDesign::kVcOpt, 0.1));
        EXPECT_EQ(r.synonym_replays, 0u) << name;
        EXPECT_EQ(r.rw_faults, 0u) << name;
    }
}

TEST(RunnerIntegration, FbtSecondLevelServesMissesWithOpt)
{
    // Shrink the shared TLB so it actually misses; the FBT behind it
    // then serves translations for resident pages.
    RunConfig cfg = quick(MmuDesign::kVcOpt, 0.25);
    cfg.raw_soc = true;
    cfg.soc.iommu.tlb_entries = 16;
    cfg.soc.fbt_as_second_level_tlb = true;
    const RunResult r = runWorkload("pagerank", cfg);
    EXPECT_GT(r.fbt_second_level_hit_ratio, 0.0);
}

} // namespace
} // namespace gvc
