/**
 * @file
 * Unit tests for the MSHR table and the rate-limited bank port.
 */

#include <gtest/gtest.h>

#include "cache/bank_port.hh"
#include "cache/mshr.hh"

namespace gvc
{
namespace
{

TEST(Mshr, PrimaryThenSecondariesMerge)
{
    MshrTable mshrs;
    int woken = 0;
    EXPECT_EQ(mshrs.allocate(42, [&] { ++woken; }),
              MshrTable::Result::kPrimary);
    EXPECT_EQ(mshrs.allocate(42, [&] { ++woken; }),
              MshrTable::Result::kSecondary);
    EXPECT_EQ(mshrs.allocate(42, [&] { ++woken; }),
              MshrTable::Result::kSecondary);
    EXPECT_TRUE(mshrs.outstanding(42));
    mshrs.complete(42);
    EXPECT_EQ(woken, 2); // primary's callback is not queued
    EXPECT_FALSE(mshrs.outstanding(42));
}

TEST(Mshr, DistinctKeysAreIndependent)
{
    MshrTable mshrs;
    EXPECT_EQ(mshrs.allocate(1, [] {}), MshrTable::Result::kPrimary);
    EXPECT_EQ(mshrs.allocate(2, [] {}), MshrTable::Result::kPrimary);
    EXPECT_EQ(mshrs.inFlight(), 2u);
}

TEST(Mshr, CapacityLimitRejects)
{
    MshrTable mshrs(2);
    EXPECT_EQ(mshrs.allocate(1, [] {}), MshrTable::Result::kPrimary);
    EXPECT_EQ(mshrs.allocate(2, [] {}), MshrTable::Result::kPrimary);
    EXPECT_EQ(mshrs.allocate(3, [] {}), MshrTable::Result::kFull);
    // Merging into an existing entry is still allowed when full.
    EXPECT_EQ(mshrs.allocate(1, [] {}), MshrTable::Result::kSecondary);
    mshrs.complete(1);
    EXPECT_EQ(mshrs.allocate(3, [] {}), MshrTable::Result::kPrimary);
}

TEST(Mshr, CompleteOfUnknownKeyIsNoop)
{
    MshrTable mshrs;
    mshrs.complete(7); // must not crash
    EXPECT_EQ(mshrs.inFlight(), 0u);
}

TEST(Mshr, WakeOrderIsMergeOrder)
{
    MshrTable mshrs;
    std::vector<int> order;
    mshrs.allocate(5, [] {});
    for (int i = 0; i < 4; ++i)
        mshrs.allocate(5, [&order, i] { order.push_back(i); });
    mshrs.complete(5);
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(BankPort, IdlePortServesImmediately)
{
    BankPort port(1.0);
    EXPECT_EQ(port.acquire(100), 100u);
}

TEST(BankPort, BackToBackSerializes)
{
    BankPort port(1.0);
    EXPECT_EQ(port.acquire(10), 10u);
    EXPECT_EQ(port.acquire(10), 11u);
    EXPECT_EQ(port.acquire(10), 12u);
    EXPECT_GT(port.meanWait(), 0.0);
}

TEST(BankPort, FractionalRatesAccumulateExactly)
{
    BankPort port(2.0); // two accesses per cycle
    EXPECT_EQ(port.acquire(0), 0u);
    EXPECT_EQ(port.acquire(0), 0u);
    EXPECT_EQ(port.acquire(0), 1u);
    EXPECT_EQ(port.acquire(0), 1u);
    EXPECT_EQ(port.acquire(0), 2u);
}

TEST(BankPort, IdleTimeIsNotBanked)
{
    BankPort port(1.0);
    port.acquire(0);
    port.acquire(0);
    // Long idle: next access is served at its arrival time.
    EXPECT_EQ(port.acquire(1000), 1000u);
}

} // namespace
} // namespace gvc
