/**
 * @file
 * Tests for the extension features: dynamic synonym remapping (§4.3),
 * the banked shared TLB (§3.2 comparison), the CPU coherence agent,
 * and the energy estimator.
 */

#include <gtest/gtest.h>

#include "core/synonym_remap.hh"
#include "core/virtual_hierarchy.hh"
#include "cpu/coherence_agent.hh"
#include "harness/energy.hh"

namespace gvc
{
namespace
{

// ---------------------------------------------------------------
// SynonymRemapTable unit tests
// ---------------------------------------------------------------

TEST(SynonymRemap, DisabledTableDoesNothing)
{
    SynonymRemapTable t(0);
    EXPECT_FALSE(t.enabled());
    t.insert(0, 1, RemapTarget{0, 2});
    EXPECT_FALSE(t.lookup(0, 1).has_value());
}

TEST(SynonymRemap, InsertLookupDrop)
{
    SynonymRemapTable t(64);
    t.insert(1, 100, RemapTarget{2, 200});
    const auto hit = t.lookup(1, 100);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->leading_asid, 2u);
    EXPECT_EQ(hit->leading_vpn, 200u);
    EXPECT_FALSE(t.lookup(1, 101).has_value());

    t.dropLeading(2, 200);
    EXPECT_FALSE(t.lookup(1, 100).has_value());
    EXPECT_EQ(t.drops(), 1u);
}

TEST(SynonymRemap, DropSourceRemovesOnlyThatMapping)
{
    SynonymRemapTable t(64);
    t.insert(0, 10, RemapTarget{0, 99});
    t.insert(0, 11, RemapTarget{0, 99});
    t.dropSource(0, 10);
    EXPECT_FALSE(t.lookup(0, 10).has_value());
    EXPECT_TRUE(t.lookup(0, 11).has_value());
}

TEST(SynonymRemap, CapacityIsBounded)
{
    SynonymRemapTable t(16, 4);
    for (Vpn v = 0; v < 200; ++v)
        t.insert(0, v, RemapTarget{0, v + 1000});
    EXPECT_LE(t.size(), 16u);
}

// ---------------------------------------------------------------
// Remapping integrated in the hierarchy
// ---------------------------------------------------------------

class RemapHierarchyTest : public ::testing::Test
{
  protected:
    RemapHierarchyTest()
        : pm_(std::uint64_t{1} << 30), vm_(pm_), dram_(ctx_, {})
    {
        cfg_.gpu.num_cus = 2;
        cfg_.synonym_remap_entries = 128;
        vc_ = std::make_unique<VirtualCacheSystem>(ctx_, cfg_, vm_,
                                                   dram_);
        asid_ = vm_.createProcess();
        base_ = vm_.mmapAnon(asid_, 8 * kPageSize, kPermRead);
        alias_ = vm_.alias(asid_, asid_, base_, 8 * kPageSize,
                           kPermRead);
    }

    void
    access(Vaddr va)
    {
        bool done = false;
        vc_->access(0, asid_, lineAlign(va), false, [&] { done = true; });
        ctx_.eq.run();
        ASSERT_TRUE(done);
    }

    SimContext ctx_;
    PhysMem pm_;
    Vm vm_;
    Dram dram_;
    SocConfig cfg_;
    std::unique_ptr<VirtualCacheSystem> vc_;
    Asid asid_ = 0;
    Vaddr base_ = 0;
    Vaddr alias_ = 0;
};

TEST_F(RemapHierarchyTest, SecondSynonymAccessIsRewrittenUpFront)
{
    access(base_);  // leading
    access(alias_); // synonym: replayed once, remapping cached
    EXPECT_EQ(vc_->synonymReplays(), 1u);

    // Subsequent accesses through the alias hit the L1 directly.
    const auto iommu_before = vc_->iommu().accesses();
    access(alias_);
    access(alias_ + kLineSize); // same page, L2 path under leading name
    EXPECT_EQ(vc_->synonymReplays(), 1u); // no further replays
    EXPECT_GE(vc_->remapTable().hits(), 2u);
    // The extra line was cached under the leading name.
    EXPECT_TRUE(vc_->l2().present(asid_, base_ + kLineSize));
    EXPECT_FALSE(vc_->l2().present(asid_, alias_ + kLineSize));
    (void)iommu_before;
}

TEST_F(RemapHierarchyTest, RemapDroppedWhenLeadingPagePurged)
{
    access(base_);
    access(alias_);
    ASSERT_GT(vc_->remapTable().size(), 0u);
    vm_.protect(asid_, base_, kPageSize, kPermNone); // purge leading
    EXPECT_FALSE(
        vc_->remapTable().lookup(asid_, pageOf(alias_)).has_value());
}

TEST_F(RemapHierarchyTest, RemapDroppedWhenSourcePageShotDown)
{
    access(base_);
    access(alias_);
    vm_.protect(asid_, alias_, kPageSize, kPermNone);
    EXPECT_FALSE(
        vc_->remapTable().lookup(asid_, pageOf(alias_)).has_value());
}

// ---------------------------------------------------------------
// Banked shared TLB
// ---------------------------------------------------------------

TEST(BankedIommu, DistinctBanksServeInParallel)
{
    SimContext ctx;
    PhysMem pm(std::uint64_t{1} << 30);
    Vm vm(pm);
    Dram dram(ctx, {});
    const Asid asid = vm.createProcess();
    const Vaddr base = vm.mmapAnon(asid, 1024 * kPageSize);

    auto run = [&](unsigned banks) {
        SimContext c;
        Dram d(c, {});
        IommuParams p;
        p.banks = banks;
        p.bank_select_shift = 0; // consecutive pages spread over banks
        Iommu iommu(c, vm, d, p);
        // Warm the TLB.
        for (int i = 0; i < 16; ++i)
            iommu.translate(asid, pageOf(base) + i,
                            [](const IommuResponse &) {});
        c.eq.run();
        // Burst of hits spread over pages.
        for (int rep = 0; rep < 8; ++rep)
            for (int i = 0; i < 16; ++i)
                iommu.translate(asid, pageOf(base) + i,
                                [](const IommuResponse &) {});
        c.eq.run();
        return iommu.serializationDelay();
    };

    EXPECT_LT(run(4), run(1));
}

TEST(BankedIommu, SameBankStillConflicts)
{
    SimContext ctx;
    PhysMem pm(std::uint64_t{1} << 30);
    Vm vm(pm);
    Dram dram(ctx, {});
    const Asid asid = vm.createProcess();
    const Vaddr base = vm.mmapAnon(asid, 64 * kPageSize);

    IommuParams p;
    p.banks = 8;
    p.bank_select_shift = 10; // high-order select: all pages -> bank 0
    Iommu iommu(ctx, vm, dram, p);
    for (int i = 0; i < 8; ++i)
        iommu.translate(asid, pageOf(base) + i,
                        [](const IommuResponse &) {});
    ctx.eq.run();
    for (int i = 0; i < 8; ++i)
        iommu.translate(asid, pageOf(base) + i,
                        [](const IommuResponse &) {});
    ctx.eq.run();
    EXPECT_GT(iommu.bankConflicts(), 0u);
}

// ---------------------------------------------------------------
// CPU coherence agent
// ---------------------------------------------------------------

TEST(CoherenceAgent, ProbesOnlyOnStoresAndCountsFilterOutcomes)
{
    SimContext ctx;
    PhysMem pm(std::uint64_t{1} << 30);
    Vm vm(pm);
    const Asid asid = vm.createProcess();
    const Vaddr buf = vm.mmapAnon(asid, 64 * kPageSize);

    CoherenceAgentParams p;
    p.period = 10;
    p.store_fraction = 1.0; // every access probes
    CpuCoherenceAgent agent(ctx, vm, p);
    unsigned probes_seen = 0;
    agent.setProbeSink([&](Paddr, bool) {
        ++probes_seen;
        return AgentProbeResult{/*filtered=*/true, false};
    });
    bool done = false;
    agent.start(asid, buf, 64 * kPageSize, 100, [&] { done = true; });
    ctx.eq.run();
    EXPECT_TRUE(done);
    EXPECT_EQ(agent.accessesIssued(), 100u);
    EXPECT_EQ(probes_seen, 100u);
    EXPECT_EQ(agent.probesFiltered(), 100u);
}

TEST(CoherenceAgent, InvalidatesGpuResidentLines)
{
    SimContext ctx;
    PhysMem pm(std::uint64_t{1} << 30);
    Vm vm(pm);
    Dram dram(ctx, {});
    SocConfig cfg;
    cfg.gpu.num_cus = 2;
    VirtualCacheSystem vc(ctx, cfg, vm, dram);
    const Asid asid = vm.createProcess();
    const Vaddr buf = vm.mmapAnon(asid, 4 * kPageSize);

    // GPU caches the first line of the buffer.
    bool gdone = false;
    vc.access(0, asid, buf, false, [&] { gdone = true; });
    ctx.eq.run();
    ASSERT_TRUE(gdone);

    CoherenceAgentParams p;
    p.period = 5;
    p.store_fraction = 1.0;
    CpuCoherenceAgent agent(ctx, vm, p);
    agent.setProbeSink([&](Paddr pa, bool inv) {
        const ProbeResult r = vc.coherenceProbe(pa, inv);
        return AgentProbeResult{r.filtered, r.invalidated};
    });
    agent.start(asid, buf, 4 * kPageSize, 200);
    ctx.eq.run();
    EXPECT_GT(agent.gpuLinesInvalidated(), 0u);
    EXPECT_GT(agent.probesFiltered(), 0u);
    EXPECT_FALSE(vc.l2().present(asid, buf));
}

// ---------------------------------------------------------------
// Energy estimator
// ---------------------------------------------------------------

TEST(Energy, ScalesWithEventCounts)
{
    RunResult r;
    r.tlb_accesses = 1000;
    r.iommu_accesses = 100;
    r.fbt_lookups = 50;
    r.page_walks = 10;
    r.l1_accesses = 2000;
    r.l2_accesses = 500;
    r.dram_bytes = 128 * 100;

    EnergyParams p;
    const auto e = estimateEnergy(r, p);
    EXPECT_NEAR(e.translation_nj,
                (1000 * p.percu_tlb_lookup_pj +
                 100 * p.iommu_tlb_lookup_pj + 50 * p.fbt_lookup_pj +
                 10 * p.page_walk_pj) /
                    1000.0,
                1e-9);
    EXPECT_GT(e.cache_nj, 0.0);
    EXPECT_GT(e.dram_nj, 0.0);
    EXPECT_NEAR(e.total(), e.translation_nj + e.cache_nj + e.dram_nj,
                1e-12);
}

TEST(Energy, VcReducesTranslationEnergy)
{
    RunConfig cfg;
    cfg.workload.scale = 0.15;
    cfg.design = MmuDesign::kBaseline16K;
    const auto base = estimateEnergy(runWorkload("pagerank", cfg));
    cfg.design = MmuDesign::kVcOpt;
    const auto vc = estimateEnergy(runWorkload("pagerank", cfg));
    EXPECT_LT(vc.translation_nj, base.translation_nj);
}

} // namespace
} // namespace gvc
