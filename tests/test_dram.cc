/**
 * @file
 * Unit tests for the bandwidth-limited DRAM model.
 */

#include <gtest/gtest.h>

#include "mem/dram.hh"

namespace gvc
{
namespace
{

TEST(Dram, SingleAccessTakesAccessLatency)
{
    SimContext ctx;
    Dram::Params p;
    p.access_latency = 100;
    p.bytes_per_cycle = 256;
    Dram dram(ctx, p);
    Tick done_at = 0;
    dram.access(128, [&] { done_at = ctx.now(); });
    ctx.eq.run();
    // 128 bytes at 256 B/cycle = 0.5 cycles (rounds up) + latency.
    EXPECT_EQ(done_at, 101u);
}

TEST(Dram, BandwidthLimitsBackToBackAccesses)
{
    SimContext ctx;
    Dram::Params p;
    p.access_latency = 10;
    p.bytes_per_cycle = 128; // one line per cycle
    Dram dram(ctx, p);
    std::vector<Tick> completions;
    for (int i = 0; i < 8; ++i)
        dram.access(128, [&] { completions.push_back(ctx.now()); });
    ctx.eq.run();
    ASSERT_EQ(completions.size(), 8u);
    // Channel serializes: one line per cycle.
    for (int i = 1; i < 8; ++i)
        EXPECT_EQ(completions[i] - completions[i - 1], 1u);
}

TEST(Dram, IdleChannelDoesNotAccumulateCredit)
{
    SimContext ctx;
    Dram::Params p;
    p.access_latency = 5;
    p.bytes_per_cycle = 128;
    Dram dram(ctx, p);
    Tick first = 0, second = 0;
    dram.access(128, [&] { first = ctx.now(); });
    ctx.eq.run();
    ctx.eq.schedule(100, [&] {
        dram.access(128, [&] { second = ctx.now(); });
    });
    ctx.eq.run();
    EXPECT_EQ(second, 106u); // starts fresh at t=100
    EXPECT_EQ(first, 6u);
}

TEST(Dram, TracksTraffic)
{
    SimContext ctx;
    Dram dram(ctx, {});
    dram.access(128, [] {});
    dram.access(64, [] {});
    ctx.eq.run();
    EXPECT_EQ(dram.accesses(), 2u);
    EXPECT_EQ(dram.bytesMoved(), 192u);
}

TEST(Dram, QueueDelayIsMeasured)
{
    SimContext ctx;
    Dram::Params p;
    p.access_latency = 1;
    p.bytes_per_cycle = 1; // extremely slow: 128 cycles per line
    Dram dram(ctx, p);
    for (int i = 0; i < 4; ++i)
        dram.access(128, [] {});
    ctx.eq.run();
    EXPECT_GT(dram.meanQueueDelay(), 100.0);
}

} // namespace
} // namespace gvc
