/**
 * @file
 * Integration tests for the baseline physical-cache MMU design and the
 * IDEAL MMU reference.
 */

#include <gtest/gtest.h>

#include "mmu/baseline_system.hh"
#include "mmu/ideal_system.hh"

namespace gvc
{
namespace
{

class BaselineTest : public ::testing::Test
{
  protected:
    BaselineTest()
        : pm_(std::uint64_t{1} << 30), vm_(pm_), dram_(ctx_, {})
    {
        cfg_.gpu.num_cus = 4;
        sys_ = std::make_unique<BaselineMmuSystem>(ctx_, cfg_, vm_,
                                                   dram_);
        asid_ = vm_.createProcess();
        base_ = vm_.mmapAnon(asid_, 256 * kPageSize);
    }

    Tick
    access(Vaddr va, bool store = false, unsigned cu = 0)
    {
        bool done = false;
        Tick at = 0;
        sys_->access(cu, asid_, lineAlign(va), store, [&] {
            done = true;
            at = ctx_.now();
        });
        ctx_.eq.run();
        EXPECT_TRUE(done);
        return at;
    }

    SimContext ctx_;
    PhysMem pm_;
    Vm vm_;
    Dram dram_;
    SocConfig cfg_;
    std::unique_ptr<BaselineMmuSystem> sys_;
    Asid asid_ = 0;
    Vaddr base_ = 0;
};

TEST_F(BaselineTest, TlbMissGoesToIommuThenFills)
{
    access(base_);
    EXPECT_EQ(sys_->tlbMisses(), 1u);
    EXPECT_EQ(sys_->iommu().accesses(), 1u);
    EXPECT_TRUE(sys_->perCuTlb(0).present(asid_, pageOf(base_)));
    // Data landed in the physical caches.
    const auto pa = vm_.translate(asid_, base_)->ppn;
    EXPECT_TRUE(sys_->caches().l1(0).present(0, pageBase(pa)));
    EXPECT_TRUE(sys_->caches().l2().present(0, pageBase(pa)));
}

TEST_F(BaselineTest, TlbHitSkipsIommu)
{
    access(base_);
    const auto before = sys_->iommu().accesses();
    access(base_ + kLineSize); // same page
    EXPECT_EQ(sys_->iommu().accesses(), before);
    EXPECT_EQ(sys_->tlbMisses(), 1u);
}

TEST_F(BaselineTest, PerCuTlbsAreSeparate)
{
    access(base_, false, 0);
    const auto before = sys_->iommu().accesses();
    access(base_, false, 1); // different CU: its own TLB misses
    EXPECT_EQ(sys_->iommu().accesses(), before + 1);
}

TEST_F(BaselineTest, EveryMissIsAnIommuAccessWhenUnmerged)
{
    // Concurrent misses to the same page each travel to the IOMMU
    // (the paper's accounting).
    unsigned done = 0;
    for (int i = 0; i < 4; ++i)
        sys_->access(0, asid_, base_ + i * kLineSize, false,
                     [&] { ++done; });
    ctx_.eq.run();
    EXPECT_EQ(done, 4u);
    EXPECT_EQ(sys_->iommu().accesses(), 4u);
}

TEST_F(BaselineTest, MergedModeCoalescesConcurrentMisses)
{
    BaselineMmuSystem merged(ctx_, cfg_, vm_, dram_,
                             /*merge_tlb_misses=*/true);
    unsigned done = 0;
    for (int i = 0; i < 4; ++i)
        merged.access(0, asid_, base_ + i * kLineSize, false,
                      [&] { ++done; });
    ctx_.eq.run();
    EXPECT_EQ(done, 4u);
    EXPECT_EQ(merged.iommu().accesses(), 1u);
}

TEST_F(BaselineTest, ClassificationBucketsAreConsistent)
{
    // Touch a page from CU0, then evict its TLB entry by touching many
    // other pages; re-access and check the miss classified as cache hit.
    access(base_);
    for (int i = 1; i <= 64; ++i)
        access(base_ + std::uint64_t(i) * kPageSize);
    EXPECT_FALSE(sys_->perCuTlb(0).present(asid_, pageOf(base_)));
    const auto before = sys_->breakdown();
    access(base_);
    const auto after = sys_->breakdown();
    EXPECT_EQ(after.total(), before.total() + 1);
    // The line is still in the 2 MB L2 (64 pages of lines fit easily).
    EXPECT_EQ(after.miss_l1_hit + after.miss_l2_hit,
              before.miss_l1_hit + before.miss_l2_hit + 1);
}

TEST_F(BaselineTest, ShootdownDropsPerCuTlbEntries)
{
    access(base_, false, 0);
    access(base_, false, 1);
    vm_.protect(asid_, base_, kPageSize, kPermRead);
    EXPECT_FALSE(sys_->perCuTlb(0).present(asid_, pageOf(base_)));
    EXPECT_FALSE(sys_->perCuTlb(1).present(asid_, pageOf(base_)));
}

TEST_F(BaselineTest, StoresWriteThroughL1)
{
    access(base_, /*store=*/true);
    const auto pa = pageBase(vm_.translate(asid_, base_)->ppn);
    EXPECT_FALSE(sys_->caches().l1(0).present(0, pa)); // no allocate
    EXPECT_TRUE(sys_->caches().l2().present(0, pa));
}

TEST(IdealTest, TranslationIsFree)
{
    SimContext ctx;
    PhysMem pm(std::uint64_t{1} << 30);
    Vm vm(pm);
    Dram dram(ctx, {});
    SocConfig cfg;
    cfg.gpu.num_cus = 2;
    IdealMmuSystem sys(ctx, cfg, vm, dram);
    const Asid asid = vm.createProcess();
    const Vaddr base = vm.mmapAnon(asid, 4 * kPageSize);

    bool done = false;
    sys.access(0, asid, base, false, [&] { done = true; });
    ctx.eq.run();
    EXPECT_TRUE(done);
    const auto pa = pageBase(vm.translate(asid, base)->ppn);
    EXPECT_TRUE(sys.caches().l1(0).present(0, pa));
}

TEST(IdealTest, L1HitLatencyIsMinimal)
{
    SimContext ctx;
    PhysMem pm(std::uint64_t{1} << 30);
    Vm vm(pm);
    Dram dram(ctx, {});
    SocConfig cfg;
    cfg.gpu.num_cus = 1;
    IdealMmuSystem sys(ctx, cfg, vm, dram);
    const Asid asid = vm.createProcess();
    const Vaddr base = vm.mmapAnon(asid, kPageSize);

    sys.access(0, asid, base, false, [] {});
    ctx.eq.run();
    const Tick t0 = ctx.now();
    Tick t1 = 0;
    sys.access(0, asid, base, false, [&] { t1 = ctx.now(); });
    ctx.eq.run();
    EXPECT_EQ(t1 - t0, cfg.l1_latency);
}

} // namespace
} // namespace gvc
