/**
 * @file
 * Unit tests for the discrete-event simulation core.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"

namespace gvc
{
namespace
{

TEST(EventQueue, StartsEmptyAtTickZero)
{
    EventQueue eq;
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_EQ(eq.executed(), 0u);
}

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, SameTickIsFifo)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        eq.schedule(5, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[std::size_t(i)], i);
}

TEST(EventQueue, CallbacksMayScheduleMoreEvents)
{
    EventQueue eq;
    int fired = 0;
    std::function<void()> chain = [&] {
        ++fired;
        if (fired < 5)
            eq.scheduleIn(7, chain);
    };
    eq.schedule(0, chain);
    eq.run();
    EXPECT_EQ(fired, 5);
    EXPECT_EQ(eq.now(), 28u);
}

TEST(EventQueue, RunUntilAdvancesTimeEvenWhenDrained)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(4, [&] { ++fired; });
    eq.runUntil(100);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.now(), 100u);
}

TEST(EventQueue, RunUntilLeavesLaterEvents)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(4, [&] { ++fired; });
    eq.schedule(50, [&] { ++fired; });
    eq.runUntil(10);
    EXPECT_EQ(fired, 1);
    EXPECT_FALSE(eq.empty());
    eq.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, RunWithBudgetStops)
{
    EventQueue eq;
    int fired = 0;
    for (int i = 0; i < 10; ++i)
        eq.schedule(Tick(i), [&] { ++fired; });
    const auto n = eq.run(4);
    EXPECT_EQ(n, 4u);
    EXPECT_EQ(fired, 4);
    eq.run();
    EXPECT_EQ(fired, 10);
}

TEST(EventQueue, ResetClearsEverything)
{
    EventQueue eq;
    eq.schedule(5, [] {});
    eq.run();
    eq.schedule(9, [] {});
    eq.reset();
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_EQ(eq.executed(), 0u);
}

TEST(EventQueueDeathTest, SchedulingInThePastPanics)
{
    EventQueue eq;
    eq.schedule(10, [] {});
    eq.run();
    EXPECT_DEATH(eq.schedule(5, [] {}), "past");
}

} // namespace
} // namespace gvc
