/**
 * @file
 * Tests for the parallel sweep subsystem: thread-pool semantics
 * (ordering, exception propagation), multi-thread vs. serial
 * determinism of full simulation grids, config memoization, and the
 * JSON/CSV structured-results layer (round trips, schema shape).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <vector>

#include "harness/results_io.hh"
#include "harness/sweep.hh"
#include "harness/thread_pool.hh"

namespace gvc
{
namespace
{

// ---------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------

TEST(ThreadPool, ReturnsValuesThroughFutures)
{
    ThreadPool pool(4);
    std::vector<std::future<int>> futures;
    for (int i = 0; i < 64; ++i)
        futures.push_back(pool.submit([i] { return i * i; }));
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(futures[std::size_t(i)].get(), i * i);
}

TEST(ThreadPool, SingleWorkerRunsJobsInSubmissionOrder)
{
    ThreadPool pool(1);
    std::vector<int> order;
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 32; ++i)
        futures.push_back(pool.submit([i, &order] { order.push_back(i); }));
    for (auto &f : futures)
        f.get();
    ASSERT_EQ(order.size(), 32u);
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(order[std::size_t(i)], i);
}

TEST(ThreadPool, ExceptionPropagatesToFutureNotWorker)
{
    ThreadPool pool(2);
    auto bad = pool.submit(
        []() -> int { throw std::runtime_error("boom"); });
    auto good = pool.submit([] { return 7; });
    EXPECT_THROW(bad.get(), std::runtime_error);
    // The worker that ran the throwing job is still alive.
    EXPECT_EQ(good.get(), 7);
    EXPECT_EQ(pool.submit([] { return 8; }).get(), 8);
}

TEST(ThreadPool, ZeroThreadsClampedToOne)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.size(), 1u);
    EXPECT_EQ(pool.submit([] { return 42; }).get(), 42);
}

TEST(ThreadPool, AllSubmittedJobsRunBeforeDestruction)
{
    std::atomic<int> count{0};
    {
        ThreadPool pool(3);
        for (int i = 0; i < 200; ++i)
            pool.submit([&count] { ++count; });
        // No explicit wait: the destructor drains the queue.
    }
    EXPECT_EQ(count.load(), 200);
}

// ---------------------------------------------------------------------
// Config keys / memoization
// ---------------------------------------------------------------------

RunConfig
tiny(MmuDesign design, double scale = 0.05)
{
    RunConfig cfg;
    cfg.design = design;
    cfg.workload.scale = scale;
    return cfg;
}

TEST(SweepKey, DistinguishesSimulationRelevantChanges)
{
    const RunConfig a = tiny(MmuDesign::kVcOpt);
    EXPECT_EQ(runConfigKey("bfs", a), runConfigKey("bfs", a));
    EXPECT_NE(runConfigKey("bfs", a), runConfigKey("pagerank", a));
    EXPECT_NE(runConfigKey("bfs", a),
              runConfigKey("bfs", tiny(MmuDesign::kBaseline512)));

    RunConfig seeded = a;
    seeded.workload.seed = 1234;
    EXPECT_NE(runConfigKey("bfs", a), runConfigKey("bfs", seeded));

    RunConfig bw = a;
    bw.soc.iommu.accesses_per_cycle = 2.0;
    EXPECT_NE(runConfigKey("bfs", a), runConfigKey("bfs", bw));
}

TEST(SweepKey, IgnoresFieldsOverriddenByConfigFor)
{
    // Without raw_soc, configFor() forces the design's TLB sizing, so
    // a base-config value that it overwrites must not split the memo.
    RunConfig a = tiny(MmuDesign::kBaseline512);
    RunConfig b = a;
    b.soc.iommu.tlb_entries = 9999; // overwritten by configFor()
    EXPECT_EQ(runConfigKey("bfs", a), runConfigKey("bfs", b));

    b.raw_soc = true; // now it is the effective config
    EXPECT_NE(runConfigKey("bfs", a), runConfigKey("bfs", b));
}

TEST(Sweep, MemoizesDuplicateCells)
{
    Sweep sweep(2);
    sweep.setProgress(false);
    const std::size_t first =
        sweep.add("hotspot", tiny(MmuDesign::kIdeal));
    const std::size_t dup =
        sweep.add("hotspot", tiny(MmuDesign::kIdeal));
    const std::size_t other =
        sweep.add("hotspot", tiny(MmuDesign::kBaseline512));
    sweep.run();

    EXPECT_EQ(sweep.uniqueRuns(), 2u);
    EXPECT_EQ(sweep.result(first).exec_ticks,
              sweep.result(dup).exec_ticks);
    EXPECT_NE(sweep.result(first).exec_ticks,
              sweep.result(other).exec_ticks);
}

TEST(Sweep, MemoCachePersistsAcrossIncrementalRuns)
{
    Sweep sweep(1);
    sweep.setProgress(false);
    sweep.add("hotspot", tiny(MmuDesign::kIdeal));
    sweep.run();
    EXPECT_EQ(sweep.uniqueRuns(), 1u);

    // Re-adding the same cell later must not re-simulate.
    const std::size_t again =
        sweep.add("hotspot", tiny(MmuDesign::kIdeal));
    sweep.add("backprop", tiny(MmuDesign::kIdeal));
    sweep.run();
    EXPECT_EQ(sweep.uniqueRuns(), 2u);
    EXPECT_EQ(sweep.result(again).workload, "hotspot");
}

TEST(Sweep, MatchesDirectRunWorkload)
{
    const RunConfig cfg = tiny(MmuDesign::kVcOpt);
    const RunResult direct = runWorkload("bfs", cfg);

    Sweep sweep(2);
    sweep.setProgress(false);
    const std::size_t idx = sweep.add("bfs", cfg);
    sweep.run();

    EXPECT_EQ(runResultToJson(sweep.result(idx)).dump(),
              runResultToJson(direct).dump());
}

// ---------------------------------------------------------------------
// Determinism: serial vs 4 threads, every RunResult field identical
// ---------------------------------------------------------------------

TEST(Sweep, FourThreadGridBitIdenticalToSerial)
{
    const std::vector<std::string> workloads = {"bfs", "hotspot",
                                                "backprop"};
    const std::vector<MmuDesign> designs = {MmuDesign::kIdeal,
                                            MmuDesign::kBaseline512,
                                            MmuDesign::kVcOpt};
    RunConfig base;
    base.workload.scale = 0.05;

    Sweep serial(1);
    serial.setProgress(false);
    serial.addGrid(workloads, designs, base);
    serial.run();

    Sweep threaded(4);
    threaded.setProgress(false);
    threaded.addGrid(workloads, designs, base);
    threaded.run();

    ASSERT_EQ(serial.size(), threaded.size());
    ASSERT_EQ(serial.size(), workloads.size() * designs.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        const RunResult &a = serial.result(i);
        const RunResult &b = threaded.result(i);
        // The JSON projection covers every RunResult field (including
        // the breakdown) with lossless integers and round-trippable
        // doubles, so string equality is field-for-field bit equality.
        EXPECT_EQ(runResultToJson(a).dump(), runResultToJson(b).dump())
            << "cell " << i << " (" << a.workload << " x "
            << designName(a.design) << ")";
    }
}

// ---------------------------------------------------------------------
// Json value + parser
// ---------------------------------------------------------------------

TEST(Json, DumpParseRoundTripPreservesStructure)
{
    Json doc = Json::object();
    doc.set("name", "sweep \"quoted\"\n");
    doc.set("count", std::uint64_t(123));
    doc.set("ratio", 0.1);
    doc.set("flag", true);
    doc.set("nothing", Json());
    Json arr = Json::array();
    arr.push(std::uint64_t(1));
    arr.push("two");
    arr.push(false);
    doc.set("arr", std::move(arr));

    for (const int indent : {0, 2}) {
        std::string err;
        const Json back = Json::parse(doc.dump(indent), &err);
        EXPECT_TRUE(err.empty()) << err;
        EXPECT_EQ(back.find("name")->asString(), "sweep \"quoted\"\n");
        EXPECT_EQ(back.find("count")->asU64(), 123u);
        EXPECT_DOUBLE_EQ(back.find("ratio")->asNumber(), 0.1);
        EXPECT_TRUE(back.find("flag")->asBool());
        EXPECT_TRUE(back.find("nothing")->isNull());
        ASSERT_EQ(back.find("arr")->size(), 3u);
        EXPECT_EQ(back.find("arr")->at(1).asString(), "two");
        // Re-dump is byte-identical: stable for diffing results files.
        EXPECT_EQ(back.dump(indent), doc.dump(indent));
    }
}

TEST(Json, U64PreservedBeyondDoublePrecision)
{
    const std::uint64_t big = 0xffffffffffffffffull; // not a double
    Json j = Json::object();
    j.set("ticks", big);
    std::string err;
    const Json back = Json::parse(j.dump(), &err);
    EXPECT_TRUE(err.empty()) << err;
    EXPECT_EQ(back.find("ticks")->asU64(), big);
}

TEST(Json, ParseRejectsMalformedInput)
{
    for (const char *bad :
         {"{", "[1,", "{\"a\":}", "tru", "\"unterminated",
          "{\"a\":1} trailing", "[1 2]", ""}) {
        std::string err;
        const Json j = Json::parse(bad, &err);
        EXPECT_TRUE(j.isNull()) << bad;
        EXPECT_FALSE(err.empty()) << bad;
    }
}

// ---------------------------------------------------------------------
// Results export: schema shape and round trips
// ---------------------------------------------------------------------

std::vector<ResultRecord>
sampleRecords()
{
    Sweep sweep(2);
    sweep.setProgress(false);
    sweep.addGrid({"hotspot", "backprop"},
                  {MmuDesign::kIdeal, MmuDesign::kVcOpt},
                  tiny(MmuDesign::kIdeal, 0.05));
    sweep.run();
    return sweep.records();
}

TEST(ResultsIo, JsonDocumentHasVersionedSchema)
{
    const std::vector<ResultRecord> records = sampleRecords();
    ExportMeta meta;
    meta.workloads = {"hotspot", "backprop"};
    meta.designs = {"ideal", "vc_opt"};
    meta.scale = 0.05;
    meta.seed = 0x5eed;
    meta.jobs = 2;

    std::string err;
    const Json doc =
        Json::parse(resultsToJson(meta, records).dump(2), &err);
    ASSERT_TRUE(err.empty()) << err;

    EXPECT_EQ(doc.find("schema_version")->asU64(),
              std::uint64_t(kResultsSchemaVersion));
    EXPECT_EQ(doc.find("generator")->asString(), "gvc_sweep");
    const Json *grid = doc.find("grid");
    ASSERT_NE(grid, nullptr);
    EXPECT_EQ(grid->find("workloads")->size(), 2u);
    EXPECT_EQ(grid->find("designs")->size(), 2u);
    EXPECT_EQ(grid->find("jobs")->asU64(), 2u);

    const Json *results = doc.find("results");
    ASSERT_NE(results, nullptr);
    ASSERT_EQ(results->size(), records.size());
    for (std::size_t i = 0; i < records.size(); ++i) {
        const Json &r = results->at(i);
        EXPECT_EQ(r.find("workload")->asString(),
                  records[i].result.workload);
        EXPECT_EQ(r.find("exec_ticks")->asU64(),
                  records[i].result.exec_ticks);
        // The effective SocConfig rides along with every result.
        const Json *soc = r.find("soc");
        ASSERT_NE(soc, nullptr);
        EXPECT_NE(soc->find("iommu"), nullptr);
        EXPECT_NE(soc->find("fbt"), nullptr);
        ASSERT_NE(r.find("workload_params"), nullptr);
        EXPECT_DOUBLE_EQ(
            r.find("workload_params")->find("scale")->asNumber(), 0.05);
    }
}

TEST(ResultsIo, CsvShapeMatchesHeader)
{
    const std::vector<ResultRecord> records = sampleRecords();
    const std::string csv = resultsToCsv(records);

    std::vector<std::string> lines;
    std::size_t pos = 0;
    while (pos < csv.size()) {
        const std::size_t nl = csv.find('\n', pos);
        lines.push_back(csv.substr(pos, nl - pos));
        pos = nl + 1;
    }
    ASSERT_EQ(lines.size(), records.size() + 1);

    const auto columns = [](const std::string &line) {
        return std::count(line.begin(), line.end(), ',') + 1;
    };
    EXPECT_EQ(lines[0].rfind("workload,design,exec_ticks", 0), 0u);
    for (std::size_t i = 1; i < lines.size(); ++i) {
        EXPECT_EQ(columns(lines[i]), columns(lines[0])) << lines[i];
        EXPECT_EQ(lines[i].rfind(records[i - 1].result.workload + ",", 0),
                  0u);
    }
}

TEST(ResultsIo, CsvRowValuesMatchResult)
{
    const std::vector<ResultRecord> records = sampleRecords();
    const std::string row = resultsCsvRow(records[0].result);
    EXPECT_NE(
        row.find("," + std::to_string(records[0].result.exec_ticks) +
                 ","),
        std::string::npos);
}

// ---------------------------------------------------------------------
// defaultJobs
// ---------------------------------------------------------------------

TEST(Sweep, DefaultJobsHonoursEnvironment)
{
    setenv("GVC_JOBS", "3", 1);
    EXPECT_EQ(defaultJobs(), 3u);
    unsetenv("GVC_JOBS");
    EXPECT_GE(defaultJobs(), 1u);
}

TEST(Sweep, DefaultJobsIgnoresMalformedEnvironment)
{
    unsetenv("GVC_JOBS");
    const unsigned fallback = defaultJobs();
    // strtol would happily return 99999 from "99999abc"; the checked
    // parse must reject the trailing garbage and fall back.
    for (const char *bad : {"99999abc", "abc", "-2", "0", ""}) {
        setenv("GVC_JOBS", bad, 1);
        EXPECT_EQ(defaultJobs(), fallback) << "GVC_JOBS='" << bad
                                           << "'";
    }
    unsetenv("GVC_JOBS");
}

} // namespace
} // namespace gvc
