/**
 * @file
 * Unit tests for the set-associative TLB, including the parameterized
 * geometry sweep used by the Figure 2 experiments.
 */

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "sim/rng.hh"
#include "tlb/tlb.hh"

namespace gvc
{
namespace
{

TlbLookup
xlate(Ppn ppn, Perms perms = kPermRead | kPermWrite)
{
    return TlbLookup{ppn, perms, false};
}

TEST(Tlb, MissThenHitAfterInsert)
{
    Tlb tlb(TlbParams{32, 0, false, false});
    EXPECT_FALSE(tlb.lookup(0, 5, 0).has_value());
    tlb.insert(0, 5, xlate(50), 0);
    const auto hit = tlb.lookup(0, 5, 1);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->ppn, 50u);
    EXPECT_EQ(tlb.accesses(), 2u);
    EXPECT_EQ(tlb.hits(), 1u);
    EXPECT_EQ(tlb.misses(), 1u);
}

TEST(Tlb, AsidsAreDisjoint)
{
    Tlb tlb(TlbParams{32, 0, false, false});
    tlb.insert(1, 5, xlate(10), 0);
    tlb.insert(2, 5, xlate(20), 0);
    EXPECT_EQ(tlb.lookup(1, 5, 0)->ppn, 10u);
    EXPECT_EQ(tlb.lookup(2, 5, 0)->ppn, 20u);
}

TEST(Tlb, LruEvictionInFullyAssociative)
{
    Tlb tlb(TlbParams{4, 0, false, false});
    for (Vpn v = 0; v < 4; ++v)
        tlb.insert(0, v, xlate(v), 0);
    // Touch 0 so 1 becomes LRU.
    tlb.lookup(0, 0, 1);
    tlb.insert(0, 99, xlate(99), 2);
    EXPECT_TRUE(tlb.present(0, 0));
    EXPECT_FALSE(tlb.present(0, 1));
    EXPECT_TRUE(tlb.present(0, 99));
}

TEST(Tlb, ReinsertUpdatesInPlace)
{
    Tlb tlb(TlbParams{4, 0, false, false});
    tlb.insert(0, 7, xlate(70), 0);
    tlb.insert(0, 7, xlate(71), 1);
    EXPECT_EQ(tlb.lookup(0, 7, 2)->ppn, 71u);
}

TEST(Tlb, InvalidatePageRemovesOnlyThatPage)
{
    Tlb tlb(TlbParams{32, 0, false, false});
    tlb.insert(0, 1, xlate(1), 0);
    tlb.insert(0, 2, xlate(2), 0);
    EXPECT_TRUE(tlb.invalidatePage(0, 1));
    EXPECT_FALSE(tlb.present(0, 1));
    EXPECT_TRUE(tlb.present(0, 2));
    EXPECT_FALSE(tlb.invalidatePage(0, 1));
}

TEST(Tlb, InvalidateAsidKeepsOthers)
{
    Tlb tlb(TlbParams{32, 0, false, false});
    tlb.insert(1, 1, xlate(1), 0);
    tlb.insert(2, 1, xlate(2), 0);
    tlb.invalidateAsid(1);
    EXPECT_FALSE(tlb.present(1, 1));
    EXPECT_TRUE(tlb.present(2, 1));
}

TEST(Tlb, InfiniteNeverEvicts)
{
    Tlb tlb(TlbParams{32, 0, /*infinite=*/true, false});
    for (Vpn v = 0; v < 10000; ++v)
        tlb.insert(0, v, xlate(v), 0);
    for (Vpn v = 0; v < 10000; ++v)
        EXPECT_TRUE(tlb.present(0, v));
}

TEST(Tlb, InfiniteInvalidateAsid)
{
    Tlb tlb(TlbParams{32, 0, true, false});
    tlb.insert(3, 42, xlate(1), 0);
    tlb.insert(4, 42, xlate(2), 0);
    tlb.invalidateAsid(3);
    EXPECT_FALSE(tlb.present(3, 42));
    EXPECT_TRUE(tlb.present(4, 42));
}

TEST(Tlb, LifetimesRecordedOnEviction)
{
    TlbParams p{1, 0, false, true};
    Tlb tlb(p);
    tlb.insert(0, 1, xlate(1), 100);
    tlb.insert(0, 2, xlate(2), 600); // evicts vpn 1 (lifetime 500)
    EXPECT_EQ(tlb.lifetimes().distribution().count(), 1u);
    EXPECT_EQ(tlb.lifetimes().distribution().mean(), 500.0);
}

/** A reach-r lookup result naming its aligned block explicitly. */
TlbLookup
reachXlate(Vpn base_vpn, Ppn base_ppn, unsigned reach,
           Perms perms = kPermRead | kPermWrite)
{
    return TlbLookup{base_ppn, perms, false, std::uint8_t(reach),
                     base_vpn, base_ppn};
}

TEST(TlbReach, WideEntryCoversEveryPage)
{
    Tlb tlb(TlbParams{32, 0, false, false, true, kMaxReachLog2});
    // One reach-3 entry: pages [8, 16) -> frames [80, 88).
    tlb.insert(0, 8, reachXlate(8, 80, 3), 0);
    for (Vpn v = 8; v < 16; ++v) {
        const auto hit = tlb.lookup(0, v, 1);
        ASSERT_TRUE(hit.has_value()) << "vpn " << v;
        EXPECT_EQ(hit->ppn, 80 + (v - 8));
        EXPECT_EQ(hit->reach, 3u);
        EXPECT_EQ(hit->base_vpn, 8u);
    }
    EXPECT_FALSE(tlb.lookup(0, 7, 2).has_value());
    EXPECT_FALSE(tlb.lookup(0, 16, 2).has_value());
    EXPECT_EQ(tlb.reachFills(), 1u);
    EXPECT_EQ(tlb.reachHits(), 8u);
}

TEST(TlbReach, FillDegradesToReachZeroAboveMaxReach)
{
    Tlb tlb(TlbParams{32, 0, false, false, true, /*max_reach=*/2});
    // Reach-4 fill (base vpn 64 -> ppn 640) requested through vpn 70.
    tlb.insert(0, 70, TlbLookup{646, kPermRead, false, 4, 64, 640}, 0);
    const auto hit = tlb.lookup(0, 70, 1);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->ppn, 646u); // requested page's own frame
    EXPECT_EQ(hit->reach, 0u);
    EXPECT_FALSE(tlb.present(0, 64)); // only the requested page cached
    EXPECT_EQ(tlb.reachFills(), 0u);
}

TEST(TlbReach, BuddyMergeClimbsTheLadder)
{
    TlbParams p{32, 0, false, false, true, kMaxReachLog2};
    p.merge_on_insert = true;
    Tlb tlb(p);
    // Four adjacent pages with contiguous frames merge 0->1->2.
    for (Vpn v = 0; v < 4; ++v)
        tlb.insert(0, v, xlate(100 + v), Tick(v));
    EXPECT_EQ(tlb.merges(), 3u);
    const auto hit = tlb.lookup(0, 3, 10);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->ppn, 103u);
    EXPECT_EQ(hit->reach, 2u);
    EXPECT_EQ(hit->base_vpn, 0u);
}

TEST(TlbReach, MergeRequiresPhysicalContiguity)
{
    TlbParams p{32, 0, false, false, true, kMaxReachLog2};
    p.merge_on_insert = true;
    Tlb tlb(p);
    tlb.insert(0, 0, xlate(100), 0);
    tlb.insert(0, 1, xlate(200), 1); // frames not adjacent
    EXPECT_EQ(tlb.merges(), 0u);
    EXPECT_EQ(tlb.lookup(0, 0, 2)->reach, 0u);
    EXPECT_EQ(tlb.lookup(0, 1, 3)->reach, 0u);
}

TEST(TlbReach, MergeRequiresMatchingPerms)
{
    TlbParams p{32, 0, false, false, true, kMaxReachLog2};
    p.merge_on_insert = true;
    Tlb tlb(p);
    tlb.insert(0, 0, xlate(100, kPermRead), 0);
    tlb.insert(0, 1, xlate(101, kPermRead | kPermWrite), 1);
    EXPECT_EQ(tlb.merges(), 0u);
}

TEST(TlbReach, ShootdownInsideWideEntryLeavesNoStaleMapping)
{
    Tlb tlb(TlbParams{32, 0, false, false, true, kMaxReachLog2});
    tlb.insert(0, 16, reachXlate(16, 160, 3), 0);
    // Invalidate one interior 4 KB page: the whole entry must die —
    // no page of the block may still translate afterwards.
    EXPECT_TRUE(tlb.invalidatePage(0, 19));
    for (Vpn v = 16; v < 24; ++v)
        EXPECT_FALSE(tlb.present(0, v)) << "stale vpn " << v;
}

TEST(TlbReach, ReachZeroConfigMatchesClassicCounters)
{
    // With max_reach 0 the reach machinery must be invisible: identical
    // hit/miss/fill trajectories to the classic TLB, no reach counters.
    Tlb classic(TlbParams{8, 2, false, false});
    TlbParams p{8, 2, false, false, true, 0};
    p.merge_on_insert = true; // inert without resident buddies > reach 0
    Tlb reach0(p);
    Rng rng(7);
    for (int i = 0; i < 4000; ++i) {
        const Vpn vpn = rng.below(64);
        if (!classic.lookup(1, vpn, Tick(i)).has_value())
            classic.insert(1, vpn, xlate(vpn + 1000), Tick(i));
        if (!reach0.lookup(1, vpn, Tick(i)).has_value())
            reach0.insert(1, vpn, xlate(vpn + 1000), Tick(i));
    }
    EXPECT_EQ(reach0.hits(), classic.hits());
    EXPECT_EQ(reach0.misses(), classic.misses());
    EXPECT_EQ(reach0.fills(), classic.fills());
    EXPECT_EQ(reach0.reachHits(), 0u);
    EXPECT_EQ(reach0.reachFills(), 0u);
    EXPECT_EQ(reach0.merges(), 0u);
}

TEST(TlbReach, ReachNeverDecreasesHitRate)
{
    // Property: on a physically-contiguous sequential footprint, a
    // merge-enabled reach TLB hits at least as often as the classic one
    // of identical geometry (wide entries strictly add coverage).
    Tlb classic(TlbParams{16, 4, false, false});
    TlbParams p{16, 4, false, false, true, kMaxReachLog2};
    p.merge_on_insert = true;
    Tlb reach(p);
    Rng rng(11);
    for (int i = 0; i < 8000; ++i) {
        // Strided walk over 256 pages mapped 1:1 (vpn v -> ppn v).
        const Vpn vpn = (Vpn(i) * 3 + rng.below(4)) % 256;
        if (!classic.lookup(0, vpn, Tick(i)).has_value())
            classic.insert(0, vpn, xlate(vpn), Tick(i));
        if (!reach.lookup(0, vpn, Tick(i)).has_value())
            reach.insert(0, vpn, xlate(vpn), Tick(i));
    }
    EXPECT_EQ(reach.accesses(), classic.accesses());
    EXPECT_GE(reach.hits(), classic.hits());
}

TEST(TlbFillPolicy, BypassesSequentialStreamAndCountsIt)
{
    TlbParams p{32, 0, false, false};
    p.fill_policy = kTlbFillBypassDead;
    Tlb tlb(p);
    // A strictly sequential fill stream: the first fill installs, every
    // next-line successor is predicted dead on arrival and bypassed.
    for (Vpn v = 100; v < 108; ++v)
        tlb.insert(0, v, xlate(v), Tick(v));
    EXPECT_EQ(tlb.fillBypasses(), 7u);
    EXPECT_EQ(tlb.fills(), 1u);
    EXPECT_TRUE(tlb.present(0, 100));
    EXPECT_FALSE(tlb.present(0, 101));
    // A non-sequential fill breaks the stream and installs normally.
    tlb.insert(0, 300, xlate(300), 200);
    EXPECT_TRUE(tlb.present(0, 300));
    EXPECT_EQ(tlb.fillBypasses(), 7u);
}

TEST(TlbEvictHook, FiresOnCapacityEvictionOnly)
{
    Tlb tlb(TlbParams{2, 0, false, false});
    struct Evicted
    {
        Asid asid;
        Vpn vpn;
        Ppn ppn;
    };
    std::vector<Evicted> evicted;
    tlb.setEvictHook([&](Asid a, Vpn v, Ppn p2, Perms) {
        evicted.push_back(Evicted{a, v, p2});
    });
    tlb.insert(3, 1, xlate(10), 0);
    tlb.insert(3, 2, xlate(20), 1);
    EXPECT_TRUE(evicted.empty());
    tlb.insert(3, 5, xlate(50), 2); // capacity-evicts LRU (vpn 1)
    ASSERT_EQ(evicted.size(), 1u);
    EXPECT_EQ(evicted[0].asid, 3u);
    EXPECT_EQ(evicted[0].vpn, 1u);
    EXPECT_EQ(evicted[0].ppn, 10u);
    // Shootdowns and ASID flushes must NOT fire the hook.
    tlb.invalidatePage(3, 2);
    tlb.invalidateAsid(3);
    EXPECT_EQ(evicted.size(), 1u);
}

/** Property sweep over geometries: capacity and LRU order hold. */
class TlbGeometry : public ::testing::TestWithParam<
                        std::tuple<unsigned, unsigned>>
{
};

TEST_P(TlbGeometry, NeverExceedsCapacityAndAlwaysHoldsMru)
{
    const auto [entries, assoc] = GetParam();
    Tlb tlb(TlbParams{entries, assoc, false, false});
    Rng rng(entries * 131 + assoc);
    Vpn last = 0;
    for (int i = 0; i < 2000; ++i) {
        const Vpn vpn = rng.below(512);
        tlb.insert(0, vpn, xlate(vpn), Tick(i));
        last = vpn;
        // The most recently inserted entry must be present.
        EXPECT_TRUE(tlb.present(0, last));
    }
    // Count resident entries: at most `entries`.
    unsigned resident = 0;
    for (Vpn v = 0; v < 512; ++v)
        resident += tlb.present(0, v) ? 1 : 0;
    EXPECT_LE(resident, entries);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, TlbGeometry,
    ::testing::Values(std::make_tuple(32u, 0u), std::make_tuple(32u, 4u),
                      std::make_tuple(64u, 8u), std::make_tuple(128u, 0u),
                      std::make_tuple(16u, 2u),
                      std::make_tuple(512u, 8u)));

// ---------------------------------------------------------------------
// tryMerge boundary audit: the reach ladder's top rung and the
// ASID/perm fusion guards
// ---------------------------------------------------------------------

TEST(TlbReach, MergeStopsExactlyAtMaxReach)
{
    TlbParams p{32, 0, false, false, true, kMaxReachLog2};
    p.merge_on_insert = true;
    Tlb tlb(p);
    // 1024 contiguous pages with contiguous frames: enough raw
    // material for a reach-10 entry if the ladder overran the cap.
    // 1024 one-page entries collapsing to two reach-9 entries is
    // exactly 1022 merges.
    for (Vpn v = 0; v < 1024; ++v)
        tlb.insert(0, v, xlate(4096 + v), Tick(v));
    EXPECT_EQ(tlb.merges(), 1022u);

    // Two reach-9 entries remain.  They are aligned buddies with
    // physically contiguous frames — the only thing keeping them
    // apart is the kMaxReachLog2 cap, so a reach above 9 here means
    // the ladder (and class_count_[] indexing) overran.
    const auto lo = tlb.lookup(0, 0, 2000);
    ASSERT_TRUE(lo.has_value());
    EXPECT_EQ(lo->reach, kMaxReachLog2);
    EXPECT_EQ(lo->base_vpn, 0u);
    const auto hi = tlb.lookup(0, 1023, 2001);
    ASSERT_TRUE(hi.has_value());
    EXPECT_EQ(hi->reach, kMaxReachLog2);
    EXPECT_EQ(hi->base_vpn, 512u);
    EXPECT_EQ(hi->ppn, 4096u + 1023u);
}

TEST(TlbReach, MaxReachParamIsClampedToTheLadderTop)
{
    // A config asking for more reach than the ladder supports must
    // behave exactly like kMaxReachLog2, not index past the per-class
    // bookkeeping.
    TlbParams p{32, 0, false, false, true, /*max_reach=*/99};
    p.merge_on_insert = true;
    Tlb tlb(p);
    for (Vpn v = 0; v < 1024; ++v)
        tlb.insert(0, v, xlate(4096 + v), Tick(v));
    EXPECT_EQ(tlb.merges(), 1022u);
    const auto hit = tlb.lookup(0, 512, 2000);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->reach, kMaxReachLog2);
}

TEST(TlbReach, BuddyMergeNeverFusesDifferentAsids)
{
    TlbParams p{32, 0, false, false, true, kMaxReachLog2};
    p.merge_on_insert = true;
    Tlb tlb(p);
    // Buddy pages, contiguous frames — but different address spaces.
    tlb.insert(1, 0, xlate(100), 0);
    tlb.insert(2, 1, xlate(101), 1);
    EXPECT_EQ(tlb.merges(), 0u);
    EXPECT_EQ(tlb.lookup(1, 0, 2)->reach, 0u);
    EXPECT_EQ(tlb.lookup(2, 1, 3)->reach, 0u);

    // Completing ASID 1's own buddy pair merges it — and must leave
    // ASID 2's overlapping-by-VPN entry untouched.
    tlb.insert(1, 1, xlate(101), 4);
    EXPECT_EQ(tlb.merges(), 1u);
    EXPECT_EQ(tlb.lookup(1, 1, 5)->reach, 1u);
    EXPECT_EQ(tlb.lookup(1, 1, 6)->base_vpn, 0u);
    EXPECT_EQ(tlb.lookup(2, 1, 7)->reach, 0u);
    EXPECT_EQ(tlb.lookup(2, 1, 8)->ppn, 101u);
}

TEST(TlbReach, BuddyMergeNeverFusesDifferentPermsHigherUp)
{
    // Permission mismatches must stop the ladder at every rung, not
    // just rung 0: two resident reach-1 blocks whose frames line up
    // stay separate when their perms differ.
    TlbParams p{32, 0, false, false, true, kMaxReachLog2};
    p.merge_on_insert = true;
    Tlb tlb(p);
    tlb.insert(0, 0, xlate(100, kPermRead | kPermWrite), 0);
    tlb.insert(0, 1, xlate(101, kPermRead | kPermWrite), 1);
    tlb.insert(0, 2, xlate(102, kPermRead), 2);
    tlb.insert(0, 3, xlate(103, kPermRead), 3);
    EXPECT_EQ(tlb.merges(), 2u); // one per buddy pair, nothing above
    const auto lo = tlb.lookup(0, 0, 10);
    ASSERT_TRUE(lo.has_value());
    EXPECT_EQ(lo->reach, 1u);
    EXPECT_EQ(lo->perms, kPermRead | kPermWrite);
    const auto hi = tlb.lookup(0, 2, 11);
    ASSERT_TRUE(hi.has_value());
    EXPECT_EQ(hi->reach, 1u);
    EXPECT_EQ(hi->perms, kPermRead);
}

} // namespace
} // namespace gvc
