/**
 * @file
 * Unit tests for the set-associative TLB, including the parameterized
 * geometry sweep used by the Figure 2 experiments.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "sim/rng.hh"
#include "tlb/tlb.hh"

namespace gvc
{
namespace
{

TlbLookup
xlate(Ppn ppn, Perms perms = kPermRead | kPermWrite)
{
    return TlbLookup{ppn, perms, false};
}

TEST(Tlb, MissThenHitAfterInsert)
{
    Tlb tlb(TlbParams{32, 0, false, false});
    EXPECT_FALSE(tlb.lookup(0, 5, 0).has_value());
    tlb.insert(0, 5, xlate(50), 0);
    const auto hit = tlb.lookup(0, 5, 1);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->ppn, 50u);
    EXPECT_EQ(tlb.accesses(), 2u);
    EXPECT_EQ(tlb.hits(), 1u);
    EXPECT_EQ(tlb.misses(), 1u);
}

TEST(Tlb, AsidsAreDisjoint)
{
    Tlb tlb(TlbParams{32, 0, false, false});
    tlb.insert(1, 5, xlate(10), 0);
    tlb.insert(2, 5, xlate(20), 0);
    EXPECT_EQ(tlb.lookup(1, 5, 0)->ppn, 10u);
    EXPECT_EQ(tlb.lookup(2, 5, 0)->ppn, 20u);
}

TEST(Tlb, LruEvictionInFullyAssociative)
{
    Tlb tlb(TlbParams{4, 0, false, false});
    for (Vpn v = 0; v < 4; ++v)
        tlb.insert(0, v, xlate(v), 0);
    // Touch 0 so 1 becomes LRU.
    tlb.lookup(0, 0, 1);
    tlb.insert(0, 99, xlate(99), 2);
    EXPECT_TRUE(tlb.present(0, 0));
    EXPECT_FALSE(tlb.present(0, 1));
    EXPECT_TRUE(tlb.present(0, 99));
}

TEST(Tlb, ReinsertUpdatesInPlace)
{
    Tlb tlb(TlbParams{4, 0, false, false});
    tlb.insert(0, 7, xlate(70), 0);
    tlb.insert(0, 7, xlate(71), 1);
    EXPECT_EQ(tlb.lookup(0, 7, 2)->ppn, 71u);
}

TEST(Tlb, InvalidatePageRemovesOnlyThatPage)
{
    Tlb tlb(TlbParams{32, 0, false, false});
    tlb.insert(0, 1, xlate(1), 0);
    tlb.insert(0, 2, xlate(2), 0);
    EXPECT_TRUE(tlb.invalidatePage(0, 1));
    EXPECT_FALSE(tlb.present(0, 1));
    EXPECT_TRUE(tlb.present(0, 2));
    EXPECT_FALSE(tlb.invalidatePage(0, 1));
}

TEST(Tlb, InvalidateAsidKeepsOthers)
{
    Tlb tlb(TlbParams{32, 0, false, false});
    tlb.insert(1, 1, xlate(1), 0);
    tlb.insert(2, 1, xlate(2), 0);
    tlb.invalidateAsid(1);
    EXPECT_FALSE(tlb.present(1, 1));
    EXPECT_TRUE(tlb.present(2, 1));
}

TEST(Tlb, InfiniteNeverEvicts)
{
    Tlb tlb(TlbParams{32, 0, /*infinite=*/true, false});
    for (Vpn v = 0; v < 10000; ++v)
        tlb.insert(0, v, xlate(v), 0);
    for (Vpn v = 0; v < 10000; ++v)
        EXPECT_TRUE(tlb.present(0, v));
}

TEST(Tlb, InfiniteInvalidateAsid)
{
    Tlb tlb(TlbParams{32, 0, true, false});
    tlb.insert(3, 42, xlate(1), 0);
    tlb.insert(4, 42, xlate(2), 0);
    tlb.invalidateAsid(3);
    EXPECT_FALSE(tlb.present(3, 42));
    EXPECT_TRUE(tlb.present(4, 42));
}

TEST(Tlb, LifetimesRecordedOnEviction)
{
    TlbParams p{1, 0, false, true};
    Tlb tlb(p);
    tlb.insert(0, 1, xlate(1), 100);
    tlb.insert(0, 2, xlate(2), 600); // evicts vpn 1 (lifetime 500)
    EXPECT_EQ(tlb.lifetimes().distribution().count(), 1u);
    EXPECT_EQ(tlb.lifetimes().distribution().mean(), 500.0);
}

/** Property sweep over geometries: capacity and LRU order hold. */
class TlbGeometry : public ::testing::TestWithParam<
                        std::tuple<unsigned, unsigned>>
{
};

TEST_P(TlbGeometry, NeverExceedsCapacityAndAlwaysHoldsMru)
{
    const auto [entries, assoc] = GetParam();
    Tlb tlb(TlbParams{entries, assoc, false, false});
    Rng rng(entries * 131 + assoc);
    Vpn last = 0;
    for (int i = 0; i < 2000; ++i) {
        const Vpn vpn = rng.below(512);
        tlb.insert(0, vpn, xlate(vpn), Tick(i));
        last = vpn;
        // The most recently inserted entry must be present.
        EXPECT_TRUE(tlb.present(0, last));
    }
    // Count resident entries: at most `entries`.
    unsigned resident = 0;
    for (Vpn v = 0; v < 512; ++v)
        resident += tlb.present(0, v) ? 1 : 0;
    EXPECT_LE(resident, entries);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, TlbGeometry,
    ::testing::Values(std::make_tuple(32u, 0u), std::make_tuple(32u, 4u),
                      std::make_tuple(64u, 8u), std::make_tuple(128u, 0u),
                      std::make_tuple(16u, 2u),
                      std::make_tuple(512u, 8u)));

} // namespace
} // namespace gvc
