#!/bin/sh
# Regenerate every checked-in determinism baseline from the current
# build, in one step so they can never diverge silently:
#
#   - tests/golden_stats.txt      (golden-stats regression matrix)
#   - BENCH_PR<N>.json            (bench counter baseline gated in CI)
#
# Run after an intended behavior change, then commit the updated files
# together with the change that caused it.
#
#   tests/regen_golden.sh [path-to-gvc_tests] [path-to-gvc_bench]
#
# The bench regeneration runs the full matrix at scale 1 and takes a
# few minutes; pass GVC_REGEN_SKIP_BENCH=1 to regenerate only the
# golden stats.
set -e

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
tests_bin="${1:-build/tests/gvc_tests}"
bench_bin="${2:-build/tools/gvc_bench}"

if [ ! -x "$tests_bin" ]; then
    echo "error: test binary '$tests_bin' not found (build first, or" >&2
    echo "pass its path: tests/regen_golden.sh <path-to-gvc_tests>)" >&2
    exit 1
fi

GVC_REGEN_GOLDEN=1 "$tests_bin" --gtest_filter='GoldenStats.*'
echo "regenerated $(dirname "$0")/golden_stats.txt"

if [ "${GVC_REGEN_SKIP_BENCH:-0}" = 1 ]; then
    echo "skipping bench baseline (GVC_REGEN_SKIP_BENCH=1)"
    exit 0
fi

if [ ! -x "$bench_bin" ]; then
    echo "error: bench binary '$bench_bin' not found (build first, or" >&2
    echo "pass its path: tests/regen_golden.sh <gvc_tests> <gvc_bench>)" >&2
    exit 1
fi

# The bench baseline lives at the repo root; keep the newest PR number.
bench_json="$(ls "$repo_root"/BENCH_PR*.json 2>/dev/null | sort -V | tail -n 1)"
if [ -z "$bench_json" ]; then
    bench_json="$repo_root/BENCH_PR6.json"
fi

"$bench_bin" --quick --out "$bench_json"
echo "regenerated $bench_json"
