#!/bin/sh
# Regenerate tests/golden_stats.txt from the current build.  Run after
# an intended behavior change, then commit the updated file together
# with the change that caused it.
#
#   tests/regen_golden.sh [path-to-gvc_tests]
set -e

tests_bin="${1:-build/tests/gvc_tests}"
if [ ! -x "$tests_bin" ]; then
    echo "error: test binary '$tests_bin' not found (build first, or" >&2
    echo "pass its path: tests/regen_golden.sh <path-to-gvc_tests>)" >&2
    exit 1
fi

GVC_REGEN_GOLDEN=1 "$tests_bin" --gtest_filter='GoldenStats.*'
echo "regenerated $(dirname "$0")/golden_stats.txt"
