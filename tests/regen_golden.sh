#!/bin/sh
# Regenerate every checked-in determinism baseline from the current
# build, in one step so they can never diverge silently:
#
#   - tests/golden_stats.txt      (golden-stats regression matrix)
#   - tests/POLICY_SMOKE_*.json   (TLB policy-axis sweep goldens)
#   - BENCH_PR<N>.json            (bench counter baseline gated in CI)
#
# Run after an intended behavior change, then commit the updated files
# together with the change that caused it.
#
#   tests/regen_golden.sh [gvc_tests] [gvc_bench] [gvc_sweep]
#
# The bench regeneration runs the full matrix at scale 1 and takes a
# few minutes; pass GVC_REGEN_SKIP_BENCH=1 to regenerate only the
# golden stats.
set -e

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
tests_bin="${1:-build/tests/gvc_tests}"
bench_bin="${2:-build/tools/gvc_bench}"
sweep_bin="${3:-build/tools/gvc_sweep}"

if [ ! -x "$tests_bin" ]; then
    echo "error: test binary '$tests_bin' not found (build first, or" >&2
    echo "pass its path: tests/regen_golden.sh <path-to-gvc_tests>)" >&2
    exit 1
fi

GVC_REGEN_GOLDEN=1 "$tests_bin" --gtest_filter='GoldenStats.*'
echo "regenerated $(dirname "$0")/golden_stats.txt"

# Policy-axis sweep goldens (CI's policy smoke diffs against these).
if [ ! -x "$sweep_bin" ]; then
    echo "error: sweep binary '$sweep_bin' not found (build first, or" >&2
    echo "pass its path as the third argument)" >&2
    exit 1
fi
smoke_args="--workloads pagerank --designs baseline512,l1vc32 \
    --scale 0.1 --jobs 2 --quiet --no-table"
"$sweep_bin" $smoke_args --json "$repo_root/tests/POLICY_SMOKE_LRU.json"
"$sweep_bin" $smoke_args --tlb-replacement srrip \
    --json "$repo_root/tests/POLICY_SMOKE_SRRIP.json"
"$sweep_bin" $smoke_args --tlb-fill-policy bypass-trained \
    --json "$repo_root/tests/POLICY_SMOKE_BYPASS.json"
echo "regenerated $repo_root/tests/POLICY_SMOKE_{LRU,SRRIP,BYPASS}.json"

if [ "${GVC_REGEN_SKIP_BENCH:-0}" = 1 ]; then
    echo "skipping bench baseline (GVC_REGEN_SKIP_BENCH=1)"
    exit 0
fi

if [ ! -x "$bench_bin" ]; then
    echo "error: bench binary '$bench_bin' not found (build first, or" >&2
    echo "pass its path: tests/regen_golden.sh <gvc_tests> <gvc_bench>)" >&2
    exit 1
fi

# The bench baseline lives at the repo root; keep the newest PR number.
bench_json="$(ls "$repo_root"/BENCH_PR*.json 2>/dev/null | sort -V | tail -n 1)"
if [ -z "$bench_json" ]; then
    bench_json="$repo_root/BENCH_PR6.json"
fi

"$bench_bin" --quick --out "$bench_json"
echo "regenerated $bench_json"
