/**
 * @file
 * Tests for the gvc::trace layer: binary format round trips and error
 * paths, RecordingWarpStream/ReplayWarpStream semantics, record->replay
 * bit-identity of full RunResults against live generation (the tentpole
 * property), and sweep capture-once/replay-per-design equivalence.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "harness/results_io.hh"
#include "harness/sweep.hh"
#include "mmu/boundary.hh"
#include "trace/kernel_source.hh"
#include "trace/trace.hh"

namespace gvc
{
namespace
{

using trace::Trace;
using trace::TraceReader;
using trace::TraceWriter;

WorkloadParams
tinyParams()
{
    WorkloadParams p;
    p.scale = 0.05;
    return p;
}

/** A small hand-built trace exercising every record type. */
Trace
sampleTrace()
{
    Trace t;
    t.workload = "sample";
    t.params.scale = 0.25;
    t.params.seed = 0xabcdef;
    t.params.grid_warps = 64;
    t.params.graph = GraphKind::kGrid;
    t.vm_ops.push_back({VmOp::Kind::kCreateProcess, 0, 0, 0, 0,
                        kPermNone});
    t.vm_ops.push_back({VmOp::Kind::kMmapAnon, 0, 0, 0, 1 << 20,
                        Perms(kPermRead | kPermWrite)});
    t.vm_ops.push_back({VmOp::Kind::kAlias, 0, 0, 0x1000'0000, 0x2000,
                        kPermRead});
    t.vm_ops.push_back({VmOp::Kind::kProtect, 0, 0, 0x1000'0000, 0x1000,
                        kPermRead});
    t.vm_ops.push_back({VmOp::Kind::kUnmap, 0, 0, 0x1000'1000, 0x1000,
                        kPermNone});

    trace::TraceKernel k;
    k.asid = 0;
    std::vector<WarpInst> warp;
    warp.push_back(WarpInst::compute(17));
    warp.push_back(WarpInst::load({0x1000, 0x1004, 0x1008, 0x2000}));
    warp.push_back(WarpInst::store({0x9000, 0x8000})); // negative delta
    warp.push_back(WarpInst::scratch(false));
    warp.push_back(WarpInst::barrier());
    warp.push_back(WarpInst::load({0xffff'ffff'f000ull})); // 1 lane
    k.warps.push_back(std::move(warp));
    k.warps.emplace_back(); // empty warp stream
    t.kernels.push_back(std::move(k));
    return t;
}

std::string
tempPath(const char *name)
{
    return ::testing::TempDir() + name;
}

// ---------------------------------------------------------------------
// Binary format
// ---------------------------------------------------------------------

TEST(TraceFormat, SerializeParseRoundTripIsByteIdentical)
{
    const Trace t = sampleTrace();
    const auto bytes = TraceWriter::serialize(t);

    Trace parsed;
    std::string err;
    ASSERT_TRUE(TraceReader::parse(bytes.data(), bytes.size(), parsed,
                                   &err))
        << err;

    EXPECT_EQ(parsed.workload, t.workload);
    EXPECT_EQ(parsed.params.scale, t.params.scale);
    EXPECT_EQ(parsed.params.seed, t.params.seed);
    EXPECT_EQ(parsed.params.grid_warps, t.params.grid_warps);
    EXPECT_EQ(parsed.params.graph, t.params.graph);
    ASSERT_EQ(parsed.vm_ops.size(), t.vm_ops.size());
    for (std::size_t i = 0; i < t.vm_ops.size(); ++i) {
        EXPECT_EQ(parsed.vm_ops[i].kind, t.vm_ops[i].kind);
        EXPECT_EQ(parsed.vm_ops[i].asid, t.vm_ops[i].asid);
        EXPECT_EQ(parsed.vm_ops[i].src_asid, t.vm_ops[i].src_asid);
        EXPECT_EQ(parsed.vm_ops[i].base, t.vm_ops[i].base);
        EXPECT_EQ(parsed.vm_ops[i].bytes, t.vm_ops[i].bytes);
        EXPECT_EQ(parsed.vm_ops[i].perms, t.vm_ops[i].perms);
    }
    ASSERT_EQ(parsed.kernels.size(), 1u);
    ASSERT_EQ(parsed.kernels[0].warps.size(), 2u);
    const auto &w0 = t.kernels[0].warps[0];
    const auto &p0 = parsed.kernels[0].warps[0];
    ASSERT_EQ(p0.size(), w0.size());
    for (std::size_t i = 0; i < w0.size(); ++i) {
        EXPECT_EQ(p0[i].op, w0[i].op);
        EXPECT_EQ(p0[i].lane_addrs, w0[i].lane_addrs);
        if (!w0[i].isGlobalMem()) {
            EXPECT_EQ(p0[i].cycles, w0[i].cycles);
        }
    }
    EXPECT_TRUE(parsed.kernels[0].warps[1].empty());

    // Re-serializing the parse must reproduce the file byte for byte.
    EXPECT_EQ(TraceWriter::serialize(parsed), bytes);
    EXPECT_EQ(trace::traceDigest(parsed), trace::traceDigest(t));
}

TEST(TraceFormat, FileRoundTrip)
{
    const Trace t = sampleTrace();
    const std::string path = tempPath("roundtrip.gvct");
    std::string err;
    ASSERT_TRUE(TraceWriter::writeFile(path, t, &err)) << err;
    Trace parsed;
    ASSERT_TRUE(TraceReader::readFile(path, parsed, &err)) << err;
    EXPECT_EQ(TraceWriter::serialize(parsed), TraceWriter::serialize(t));
    std::remove(path.c_str());
}

TEST(TraceFormat, RejectsShortFile)
{
    const std::uint8_t bytes[4] = {'G', 'V', 'C', 'T'};
    Trace out;
    std::string err;
    EXPECT_FALSE(TraceReader::parse(bytes, sizeof(bytes), out, &err));
    EXPECT_NE(err.find("too short"), std::string::npos) << err;
}

TEST(TraceFormat, RejectsBadMagic)
{
    auto bytes = TraceWriter::serialize(sampleTrace());
    bytes[0] = 'X';
    Trace out;
    std::string err;
    EXPECT_FALSE(TraceReader::parse(bytes.data(), bytes.size(), out,
                                    &err));
    EXPECT_NE(err.find("magic"), std::string::npos) << err;
}

TEST(TraceFormat, RejectsUnsupportedVersion)
{
    auto bytes = TraceWriter::serialize(sampleTrace());
    bytes[4] = std::uint8_t(trace::kTraceVersionContig + 1);
    Trace out;
    std::string err;
    EXPECT_FALSE(TraceReader::parse(bytes.data(), bytes.size(), out,
                                    &err));
    EXPECT_NE(err.find("version"), std::string::npos) << err;
}

/** sampleTrace() tiled to three kernels with boundaries after 0 and 1. */
Trace
sampleScenarioTrace()
{
    Trace t = sampleTrace();
    t.kernels.push_back(t.kernels[0]);
    t.kernels.push_back(t.kernels[0]);
    t.boundaries.push_back({0, BoundaryPolicy::keepAll().encode()});
    t.boundaries.push_back({1, BoundaryPolicy::flushAll().encode()});
    return t;
}

TEST(TraceFormat, BoundaryFreeTraceSerializesAsVersion1)
{
    const auto bytes = TraceWriter::serialize(sampleTrace());
    EXPECT_EQ(bytes[4], trace::kTraceVersion);
}

TEST(TraceFormat, ScenarioRoundTripSerializesAsVersion2)
{
    const Trace t = sampleScenarioTrace();
    const auto bytes = TraceWriter::serialize(t);
    EXPECT_EQ(bytes[4], trace::kTraceVersionScenario);

    Trace parsed;
    std::string err;
    ASSERT_TRUE(TraceReader::parse(bytes.data(), bytes.size(), parsed,
                                   &err))
        << err;
    ASSERT_EQ(parsed.boundaries.size(), t.boundaries.size());
    for (std::size_t i = 0; i < t.boundaries.size(); ++i) {
        EXPECT_EQ(parsed.boundaries[i].kernel, t.boundaries[i].kernel);
        EXPECT_EQ(parsed.boundaries[i].policy, t.boundaries[i].policy);
    }
    EXPECT_EQ(TraceWriter::serialize(parsed), bytes);
    EXPECT_EQ(trace::traceDigest(parsed), trace::traceDigest(t));
}

TEST(TraceFormat, ContigFlagsRoundTripAsVersion3)
{
    Trace t = sampleTrace();
    t.vm_ops[1].flags = kVmOpFlagContig;
    const auto bytes = TraceWriter::serialize(t);
    EXPECT_EQ(bytes[4], trace::kTraceVersionContig);

    Trace parsed;
    std::string err;
    ASSERT_TRUE(TraceReader::parse(bytes.data(), bytes.size(), parsed,
                                   &err))
        << err;
    ASSERT_EQ(parsed.vm_ops.size(), t.vm_ops.size());
    for (std::size_t i = 0; i < t.vm_ops.size(); ++i)
        EXPECT_EQ(parsed.vm_ops[i].flags, t.vm_ops[i].flags) << i;
    EXPECT_EQ(TraceWriter::serialize(parsed), bytes);
    EXPECT_EQ(trace::traceDigest(parsed), trace::traceDigest(t));
}

TEST(TraceFormat, FlagFreeTraceStaysVersion1ByteIdentical)
{
    // A trace without contiguity flags must serialize exactly as it did
    // before version 3 existed — pre-PR trace files stay canonical.
    Trace flagged = sampleTrace();
    const auto v1 = TraceWriter::serialize(flagged);
    EXPECT_EQ(v1[4], trace::kTraceVersion);
    flagged.vm_ops[1].flags = kVmOpFlagContig;
    flagged.vm_ops[1].flags = 0; // cleared again -> back to v1 bytes
    EXPECT_EQ(TraceWriter::serialize(flagged), v1);
}

TEST(TraceFormat, RejectsOutOfOrderBoundaries)
{
    Trace t = sampleScenarioTrace();
    std::swap(t.boundaries[0], t.boundaries[1]);
    const auto bytes = TraceWriter::serialize(t);
    Trace out;
    std::string err;
    EXPECT_FALSE(TraceReader::parse(bytes.data(), bytes.size(), out,
                                    &err));
    EXPECT_NE(err.find("strictly increasing"), std::string::npos) << err;
}

TEST(TraceFormat, RejectsDuplicateBoundaryIndices)
{
    Trace t = sampleScenarioTrace();
    t.boundaries[1].kernel = t.boundaries[0].kernel;
    const auto bytes = TraceWriter::serialize(t);
    Trace out;
    std::string err;
    EXPECT_FALSE(TraceReader::parse(bytes.data(), bytes.size(), out,
                                    &err));
    EXPECT_NE(err.find("strictly increasing"), std::string::npos) << err;
}

TEST(TraceFormat, RejectsBoundaryAfterLastKernel)
{
    Trace t = sampleScenarioTrace();
    // A boundary sits *between* launches, so one after the final
    // kernel has nothing to precede.
    t.boundaries[1].kernel = t.kernels.size() - 1;
    const auto bytes = TraceWriter::serialize(t);
    Trace out;
    std::string err;
    EXPECT_FALSE(TraceReader::parse(bytes.data(), bytes.size(), out,
                                    &err));
    EXPECT_NE(err.find("out of range"), std::string::npos) << err;
}

TEST(TraceFormat, RejectsInvalidBoundaryPolicyByte)
{
    Trace t = sampleScenarioTrace();
    t.boundaries[0].policy = BoundaryPolicy::kBoundaryPolicyLimit;
    const auto bytes = TraceWriter::serialize(t);
    Trace out;
    std::string err;
    EXPECT_FALSE(TraceReader::parse(bytes.data(), bytes.size(), out,
                                    &err));
    EXPECT_NE(err.find("policy"), std::string::npos) << err;
}

TEST(TraceFormat, RejectsCorruptBody)
{
    auto bytes = TraceWriter::serialize(sampleTrace());
    bytes.back() ^= 0xff; // flip body bits; header digest now wrong
    Trace out;
    std::string err;
    EXPECT_FALSE(TraceReader::parse(bytes.data(), bytes.size(), out,
                                    &err));
    EXPECT_NE(err.find("digest"), std::string::npos) << err;
}

TEST(TraceFormat, RejectsTruncatedBody)
{
    // Truncate the body and re-stamp a valid digest so the cursor-level
    // truncation detection (not the checksum) is what fires.
    auto bytes = TraceWriter::serialize(sampleTrace());
    bytes.resize(bytes.size() - 10);
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (std::size_t i = 16; i < bytes.size(); ++i) {
        h ^= bytes[i];
        h *= 0x100000001b3ull;
    }
    for (int i = 0; i < 8; ++i)
        bytes[8 + std::size_t(i)] = std::uint8_t(h >> (8 * i));
    Trace out;
    std::string err;
    EXPECT_FALSE(TraceReader::parse(bytes.data(), bytes.size(), out,
                                    &err));
    EXPECT_NE(err.find("truncated"), std::string::npos) << err;
}

TEST(TraceFormat, RejectsOverwideLaneCount)
{
    Trace t = sampleTrace();
    std::vector<Vaddr> lanes(kWarpLanes + 1, 0x4000);
    t.kernels[0].warps[0].push_back(WarpInst::load(lanes));
    const auto bytes = TraceWriter::serialize(t);
    Trace out;
    std::string err;
    EXPECT_FALSE(TraceReader::parse(bytes.data(), bytes.size(), out,
                                    &err));
    EXPECT_NE(err.find("lane count"), std::string::npos) << err;
}

TEST(TraceFormat, ReadFileReportsMissingFile)
{
    Trace out;
    std::string err;
    EXPECT_FALSE(TraceReader::readFile(tempPath("does-not-exist.gvct"),
                                       out, &err));
    EXPECT_NE(err.find("cannot open"), std::string::npos) << err;
}

// ---------------------------------------------------------------------
// Streams
// ---------------------------------------------------------------------

TEST(TraceStreams, RecordingStreamForwardsAndCaptures)
{
    std::vector<WarpInst> insts;
    insts.push_back(WarpInst::compute(5));
    insts.push_back(WarpInst::load({0x100, 0x104}));
    auto inner = std::make_unique<VectorWarpStream>(insts);

    std::vector<WarpInst> sink;
    trace::RecordingWarpStream rec(std::move(inner), &sink);
    WarpInst out;
    std::size_t n = 0;
    while (rec.next(out)) {
        EXPECT_EQ(out.op, insts[n].op);
        EXPECT_EQ(out.lane_addrs, insts[n].lane_addrs);
        ++n;
    }
    EXPECT_EQ(n, insts.size());
    ASSERT_EQ(sink.size(), insts.size());
    for (std::size_t i = 0; i < insts.size(); ++i) {
        EXPECT_EQ(sink[i].op, insts[i].op);
        EXPECT_EQ(sink[i].cycles, insts[i].cycles);
        EXPECT_EQ(sink[i].lane_addrs, insts[i].lane_addrs);
    }
}

TEST(TraceStreams, ReplayStreamReusesCallerBufferCapacity)
{
    auto t = std::make_shared<Trace>(sampleTrace());
    trace::ReplayWarpStream stream(t, &t->kernels[0].warps[0]);
    WarpInst out;
    out.lane_addrs.reserve(kWarpLanes);
    const Vaddr *buf = out.lane_addrs.data();
    std::size_t n = 0;
    while (stream.next(out)) {
        // assignInto must never reallocate once warmed to kWarpLanes.
        EXPECT_EQ(out.lane_addrs.data(), buf);
        ++n;
    }
    EXPECT_EQ(n, t->kernels[0].warps[0].size());
}

// ---------------------------------------------------------------------
// VM op-log replay
// ---------------------------------------------------------------------

TEST(TraceVmReplay, OpLogRebuildsBitIdenticalTranslations)
{
    PhysMem pm1(1ull << 30);
    Vm vm1(pm1);
    vm1.recordOps(true);
    const Asid a = vm1.createProcess();
    const Vaddr base = vm1.mmapAnon(a, 1 << 16);
    const Vaddr big = vm1.mmapAnonLarge(a, 4 << 20);
    const Vaddr syn = vm1.alias(a, a, base, 1 << 14);
    vm1.protect(a, base, 1 << 13, kPermRead);
    vm1.unmap(a, base + (1 << 14), 1 << 13);
    vm1.recordOps(false);

    PhysMem pm2(1ull << 30);
    Vm vm2(pm2);
    applyVmOps(vm2, vm1.recordedOps());

    for (Vaddr va :
         {base, base + 0x3000, big, big + 0x200000, syn, syn + 0x1000}) {
        const auto t1 = vm1.translate(a, va);
        const auto t2 = vm2.translate(a, va);
        ASSERT_EQ(bool(t1), bool(t2)) << std::hex << va;
        if (t1) {
            EXPECT_EQ(t1->ppn, t2->ppn) << std::hex << va;
            EXPECT_EQ(t1->perms, t2->perms) << std::hex << va;
        }
    }
}

// ---------------------------------------------------------------------
// Record -> replay bit-identity (the tentpole property)
// ---------------------------------------------------------------------

/** Lossless JSON dump: equal strings == every field bit-identical. */
std::string
dumpOf(const RunResult &r)
{
    return runResultToJson(r).dump();
}

TEST(TraceReplay, BitIdenticalRunResultsAcrossWorkloadsAndDesigns)
{
    const std::vector<std::string> workloads = {"bfs", "kmeans",
                                                "hotspot"};
    const std::vector<MmuDesign> designs = {MmuDesign::kBaseline512,
                                            MmuDesign::kVcOpt};
    for (const auto &w : workloads) {
        RunConfig cfg;
        cfg.workload = tinyParams();
        const Trace t =
            trace::captureWorkloadTrace(w, cfg.workload,
                                        cfg.soc.phys_mem_bytes);
        auto shared = std::make_shared<const Trace>(t);
        for (const MmuDesign d : designs) {
            cfg.design = d;
            const RunResult live = runWorkload(w, cfg);
            trace::TraceKernelSource source(shared);
            const RunResult replayed = runSource(source, cfg);
            EXPECT_EQ(dumpOf(live), dumpOf(replayed))
                << w << " x " << designName(d);
        }
    }
}

TEST(TraceReplay, FileReplayThroughRunConfigMatchesLive)
{
    RunConfig cfg;
    cfg.workload = tinyParams();
    cfg.design = MmuDesign::kVcOpt;
    const RunResult live = runWorkload("pagerank", cfg);

    const std::string path = tempPath("pagerank.gvct");
    std::string err;
    ASSERT_TRUE(TraceWriter::writeFile(
        path,
        trace::captureWorkloadTrace("pagerank", cfg.workload,
                                    cfg.soc.phys_mem_bytes),
        &err))
        << err;

    RunConfig replay_cfg;
    replay_cfg.design = MmuDesign::kVcOpt;
    replay_cfg.trace_in = path;
    const RunResult replayed = runWorkload("", replay_cfg);
    EXPECT_EQ(dumpOf(live), dumpOf(replayed));
    std::remove(path.c_str());
}

TEST(TraceReplay, CaptureDuringLiveRunMatchesStandaloneCapture)
{
    RunConfig cfg;
    cfg.workload = tinyParams();
    cfg.design = MmuDesign::kIdeal;
    Trace captured;
    const RunResult live = runWorkload("backprop", cfg, {}, &captured);

    const Trace standalone = trace::captureWorkloadTrace(
        "backprop", cfg.workload, cfg.soc.phys_mem_bytes);
    EXPECT_EQ(TraceWriter::serialize(captured),
              TraceWriter::serialize(standalone));

    // And replaying the mid-run capture reproduces the run itself.
    trace::TraceKernelSource source(
        std::make_shared<const Trace>(captured));
    EXPECT_EQ(dumpOf(live), dumpOf(runSource(source, cfg)));
}

// ---------------------------------------------------------------------
// Sweep capture-once / replay-per-design
// ---------------------------------------------------------------------

TEST(TraceSweep, CapturedRowMatchesLiveCells)
{
    const std::vector<std::string> workloads = {"bfs"};
    const std::vector<MmuDesign> designs = {
        MmuDesign::kIdeal, MmuDesign::kBaseline512, MmuDesign::kVcOpt};
    RunConfig base;
    base.workload = tinyParams();

    Sweep captured(1);
    captured.setProgress(false);
    ASSERT_TRUE(captured.capture());
    captured.addGrid(workloads, designs, base);
    captured.run();

    Sweep live(1);
    live.setProgress(false);
    live.setCapture(false);
    live.addGrid(workloads, designs, base);
    live.run();

    // One generation pass served the whole row...
    EXPECT_EQ(captured.capturedTraces(), 1u);
    ASSERT_NE(captured.capturedTrace("bfs", base.workload), nullptr);
    EXPECT_EQ(live.capturedTraces(), 0u);
    // ...and every cell is bit-identical to its live counterpart.
    ASSERT_EQ(captured.size(), live.size());
    for (std::size_t i = 0; i < captured.size(); ++i)
        EXPECT_EQ(dumpOf(captured.result(i)), dumpOf(live.result(i)))
            << "cell " << i;
}

TEST(TraceSweep, MemoizationStillDeduplicatesUnderCapture)
{
    RunConfig base;
    base.workload = tinyParams();
    base.design = MmuDesign::kIdeal;

    Sweep sweep(1);
    sweep.setProgress(false);
    sweep.add("hotspot", base);
    sweep.add("hotspot", base); // duplicate cell
    sweep.run();
    EXPECT_EQ(sweep.uniqueRuns(), 1u);
    EXPECT_EQ(sweep.capturedTraces(), 1u);
    EXPECT_EQ(dumpOf(sweep.result(0)), dumpOf(sweep.result(1)));
}

} // namespace
} // namespace gvc
