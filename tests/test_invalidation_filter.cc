/**
 * @file
 * Unit tests for the per-L1 invalidation filter, including the
 * conservative overflow behaviour.
 */

#include <gtest/gtest.h>

#include <map>

#include "core/invalidation_filter.hh"
#include "sim/rng.hh"

namespace gvc
{
namespace
{

TEST(InvalidationFilter, EmptyFilterFiltersEverything)
{
    InvalidationFilter f;
    EXPECT_FALSE(f.maybePresent(0, 100));
    EXPECT_FALSE(f.onInvalidate(0, 100));
    EXPECT_EQ(f.invalidationsFiltered(), 1u);
}

TEST(InvalidationFilter, TrackedPageTriggersFlush)
{
    InvalidationFilter f;
    f.lineFilled(0, 100);
    EXPECT_TRUE(f.maybePresent(0, 100));
    EXPECT_TRUE(f.onInvalidate(0, 100));
    EXPECT_EQ(f.flushesTriggered(), 1u);
}

TEST(InvalidationFilter, CountsReachZeroOnEviction)
{
    InvalidationFilter f;
    f.lineFilled(0, 100);
    f.lineFilled(0, 100);
    f.lineEvicted(0, 100);
    EXPECT_TRUE(f.maybePresent(0, 100));
    f.lineEvicted(0, 100);
    EXPECT_FALSE(f.maybePresent(0, 100));
}

TEST(InvalidationFilter, AsidsAreDistinct)
{
    InvalidationFilter f;
    f.lineFilled(1, 100);
    EXPECT_TRUE(f.maybePresent(1, 100));
    EXPECT_FALSE(f.maybePresent(2, 100));
}

TEST(InvalidationFilter, ResetClearsEverything)
{
    InvalidationFilter f;
    f.lineFilled(0, 1);
    f.lineFilled(0, 2);
    f.reset();
    EXPECT_FALSE(f.maybePresent(0, 1));
    EXPECT_FALSE(f.maybePresent(0, 2));
}

TEST(InvalidationFilter, OverflowGoesConservative)
{
    // 1 set x 2 ways: the third distinct page overflows the set.
    InvalidationFilter f(2, 2);
    f.lineFilled(0, 1);
    f.lineFilled(0, 2);
    f.lineFilled(0, 3);
    EXPECT_GE(f.overflowEvents(), 1u);
    // After overflow every page looks possibly-present (safe).
    EXPECT_TRUE(f.maybePresent(0, 99));
    // A full flush restores precision.
    f.reset();
    EXPECT_FALSE(f.maybePresent(0, 99));
}

TEST(InvalidationFilter, NeverFalseNegative)
{
    // Property: any page with a filled-but-not-fully-evicted line must
    // report maybe-present, whatever the eviction interleaving.
    InvalidationFilter f(8, 2);
    Rng rng(42);
    std::map<Vpn, int> truth;
    for (int i = 0; i < 2000; ++i) {
        const Vpn vpn = rng.below(32);
        if (rng.chance(0.6)) {
            f.lineFilled(0, vpn);
            ++truth[vpn];
        } else if (truth[vpn] > 0) {
            f.lineEvicted(0, vpn);
            --truth[vpn];
        }
        for (const auto &[page, count] : truth) {
            if (count > 0)
                ASSERT_TRUE(f.maybePresent(0, page));
        }
    }
}

} // namespace
} // namespace gvc
