/**
 * @file
 * Tests for the shared physical cache pipeline (PhysCaches) used by the
 * IDEAL/baseline designs: write-through L1s, banked write-back L2,
 * MSHR merging, and victim writebacks.
 */

#include <gtest/gtest.h>

#include "mmu/phys_caches.hh"

namespace gvc
{
namespace
{

class PhysCachesTest : public ::testing::Test
{
  protected:
    PhysCachesTest() : dram_(ctx_, {})
    {
        cfg_.gpu.num_cus = 2;
        caches_ = std::make_unique<PhysCaches>(ctx_, cfg_, dram_);
    }

    Tick
    accessL1(Paddr pa, bool store = false, unsigned cu = 0)
    {
        bool done = false;
        Tick at = 0;
        caches_->accessL1(cu, lineAlign(pa), store, [&] {
            done = true;
            at = ctx_.now();
        });
        ctx_.eq.run();
        EXPECT_TRUE(done);
        return at;
    }

    SimContext ctx_;
    Dram dram_;
    SocConfig cfg_;
    std::unique_ptr<PhysCaches> caches_;
};

TEST_F(PhysCachesTest, LoadMissFillsL1AndL2)
{
    accessL1(0x10000);
    EXPECT_TRUE(caches_->l1(0).present(0, 0x10000));
    EXPECT_TRUE(caches_->l2().present(0, 0x10000));
}

TEST_F(PhysCachesTest, L1HitIsFast)
{
    accessL1(0x10000);
    const Tick t0 = ctx_.now();
    const Tick t1 = accessL1(0x10000);
    EXPECT_EQ(t1 - t0, cfg_.l1_latency);
}

TEST_F(PhysCachesTest, L2HitAvoidsDram)
{
    accessL1(0x10000, false, 0);
    const auto dram_before = dram_.accesses();
    accessL1(0x10000, false, 1); // other CU: L1 miss, L2 hit
    EXPECT_EQ(dram_.accesses(), dram_before);
    EXPECT_TRUE(caches_->l1(1).present(0, 0x10000));
}

TEST_F(PhysCachesTest, StoreWritesThroughWithoutL1Allocate)
{
    accessL1(0x20000, /*store=*/true);
    EXPECT_FALSE(caches_->l1(0).present(0, 0x20000));
    EXPECT_TRUE(caches_->l2().present(0, 0x20000));
}

TEST_F(PhysCachesTest, StoreHitUpdatesL1Copy)
{
    accessL1(0x20000, false); // load fills L1
    accessL1(0x20000, true);  // store hits and writes through
    EXPECT_TRUE(caches_->l1(0).present(0, 0x20000));
    // The L2 line is dirty (write-back L2 absorbed the store).
    const auto info = caches_->l2().invalidateLine(0, 0x20000);
    ASSERT_TRUE(info.has_value());
    EXPECT_TRUE(info->dirty);
}

TEST_F(PhysCachesTest, ConcurrentMissesToOneLineMergeInMshr)
{
    unsigned done = 0;
    for (int i = 0; i < 6; ++i)
        caches_->accessL1(0, 0x30000, false, [&] { ++done; });
    ctx_.eq.run();
    EXPECT_EQ(done, 6u);
    // One demand fill moved one line from DRAM.
    EXPECT_EQ(dram_.accesses(), 1u);
    EXPECT_GE(caches_->mshrs().merges(), 5u);
}

TEST_F(PhysCachesTest, DirtyVictimsAreWrittenBack)
{
    // Fill one L2 set beyond capacity with dirty lines.
    // Set count: 2MB/128B/16 ways = 1024 sets; same set repeats every
    // 1024 lines.
    const std::uint64_t stride = 1024 * kLineSize;
    for (int i = 0; i < 17; ++i)
        accessL1(Paddr(i) * stride, /*store=*/true);
    // 17 dirty lines into a 16-way set: one dirty writeback happened.
    // DRAM saw 17 fills + at least 1 writeback.
    EXPECT_GE(dram_.accesses(), 18u);
}

TEST_F(PhysCachesTest, BanksSpreadContention)
{
    // Lines mapping to different banks proceed without port conflicts;
    // the mean wait stays small for a modest burst.
    unsigned done = 0;
    for (int i = 0; i < 8; ++i)
        caches_->accessL2(0, Paddr(i) * kLineSize, false,
                          [&] { ++done; });
    ctx_.eq.run();
    EXPECT_EQ(done, 8u);
}

} // namespace
} // namespace gvc
