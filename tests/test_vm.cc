/**
 * @file
 * Unit tests for the virtual memory manager: mappings, synonyms,
 * homonyms, shootdown notification.
 */

#include <gtest/gtest.h>

#include <vector>

#include "mem/vm.hh"

namespace gvc
{
namespace
{

class VmTest : public ::testing::Test
{
  protected:
    PhysMem pm_{std::uint64_t{1} << 30};
    Vm vm_{pm_};
};

TEST_F(VmTest, MmapMapsEveryPageEagerly)
{
    const Asid a = vm_.createProcess();
    const Vaddr base = vm_.mmapAnon(a, 10 * kPageSize);
    for (int i = 0; i < 10; ++i) {
        const auto t = vm_.translate(a, base + i * kPageSize);
        ASSERT_TRUE(t.has_value());
        EXPECT_TRUE(permsAllow(t->perms, kPermRead | kPermWrite));
    }
}

TEST_F(VmTest, MmapRoundsUpPartialPages)
{
    const Asid a = vm_.createProcess();
    const Vaddr base = vm_.mmapAnon(a, kPageSize + 1);
    EXPECT_TRUE(vm_.translate(a, base + kPageSize).has_value());
}

TEST_F(VmTest, RegionsDoNotOverlap)
{
    const Asid a = vm_.createProcess();
    const Vaddr r1 = vm_.mmapAnon(a, 4 * kPageSize);
    const Vaddr r2 = vm_.mmapAnon(a, 4 * kPageSize);
    EXPECT_GE(r2, r1 + 4 * kPageSize);
}

TEST_F(VmTest, DistinctPagesGetDistinctFrames)
{
    const Asid a = vm_.createProcess();
    const Vaddr base = vm_.mmapAnon(a, 2 * kPageSize);
    EXPECT_NE(vm_.translate(a, base)->ppn,
              vm_.translate(a, base + kPageSize)->ppn);
}

TEST_F(VmTest, IntraProcessAliasSharesFrames)
{
    const Asid a = vm_.createProcess();
    const Vaddr orig = vm_.mmapAnon(a, 3 * kPageSize);
    const Vaddr alias = vm_.alias(a, a, orig, 3 * kPageSize);
    EXPECT_NE(alias, orig);
    for (int i = 0; i < 3; ++i) {
        EXPECT_EQ(vm_.translate(a, alias + i * kPageSize)->ppn,
                  vm_.translate(a, orig + i * kPageSize)->ppn);
    }
}

TEST_F(VmTest, CrossProcessAliasSharesFrames)
{
    const Asid a = vm_.createProcess();
    const Asid b = vm_.createProcess();
    const Vaddr orig = vm_.mmapAnon(a, kPageSize);
    const Vaddr shared = vm_.alias(b, a, orig, kPageSize);
    EXPECT_EQ(vm_.translate(b, shared)->ppn, vm_.translate(a, orig)->ppn);
}

TEST_F(VmTest, HomonymsTranslateIndependently)
{
    const Asid a = vm_.createProcess();
    const Asid b = vm_.createProcess();
    const Vaddr va_a = vm_.mmapAnon(a, kPageSize);
    const Vaddr va_b = vm_.mmapAnon(b, kPageSize);
    // Both processes allocate at the same VA (same bump allocator).
    EXPECT_EQ(va_a, va_b);
    EXPECT_NE(vm_.translate(a, va_a)->ppn, vm_.translate(b, va_b)->ppn);
}

TEST_F(VmTest, ProtectFiresShootdownPerPage)
{
    const Asid a = vm_.createProcess();
    std::vector<Vpn> shot;
    vm_.addPageShootdownListener(
        [&](Asid, Vpn vpn) { shot.push_back(vpn); });
    const Vaddr base = vm_.mmapAnon(a, 3 * kPageSize);
    vm_.protect(a, base, 3 * kPageSize, kPermRead);
    EXPECT_EQ(shot.size(), 3u);
    EXPECT_EQ(shot[0], pageOf(base));
    EXPECT_EQ(vm_.translate(a, base)->perms, kPermRead);
}

TEST_F(VmTest, UnmapFiresShootdownAndRemoves)
{
    const Asid a = vm_.createProcess();
    int shots = 0;
    vm_.addPageShootdownListener([&](Asid, Vpn) { ++shots; });
    const Vaddr base = vm_.mmapAnon(a, 2 * kPageSize);
    vm_.unmap(a, base, 2 * kPageSize);
    EXPECT_EQ(shots, 2);
    EXPECT_FALSE(vm_.translate(a, base).has_value());
}

TEST_F(VmTest, FullShootdownNotifiesListeners)
{
    const Asid a = vm_.createProcess();
    Asid seen = 999;
    vm_.addFullShootdownListener([&](Asid asid) { seen = asid; });
    vm_.shootdownAll(a);
    EXPECT_EQ(seen, a);
}

TEST_F(VmTest, LargeMappingIsLarge)
{
    const Asid a = vm_.createProcess();
    const Vaddr base = vm_.mmapAnonLarge(a, kLargePageSize);
    const auto t = vm_.translate(a, base + 123 * kPageSize);
    ASSERT_TRUE(t.has_value());
    EXPECT_TRUE(t->large);
    EXPECT_EQ(base % kLargePageSize, 0u);
}

TEST_F(VmTest, PagePolicy2mInteriorMapsInteriorLarge)
{
    vm_.setPagePolicy(Vm::PagePolicy::k2mInterior);
    const Asid a = vm_.createProcess();
    // A small leading mapping misaligns the bump allocator so the main
    // region has true small-page edges around its 2 MB interior.
    vm_.mmapAnon(a, kPageSize);
    const Vaddr base = vm_.mmapAnon(a, 3 * kLargePageSize);
    const Vpn first = pageOf(base);
    const Vpn end = first + 3 * 512;
    const Vpn lo = (first + 511) & ~Vpn{511};
    ASSERT_GT(lo, first); // edge pages exist below the interior
    // Edge pages are small, interior pages large, all mapped.
    EXPECT_FALSE(vm_.translate(a, base)->large);
    for (Vpn v = first; v < end; ++v) {
        const auto t = vm_.translate(a, Vaddr(v) << kPageShift);
        ASSERT_TRUE(t.has_value()) << "vpn " << v;
        const bool interior = v >= lo && v < lo + 512 * 2;
        EXPECT_EQ(t->large, interior) << "vpn " << v;
    }
}

TEST_F(VmTest, PagePolicyDoesNotChangeVirtualLayout)
{
    // The VA sequence must be byte-identical across policies: recorded
    // warp streams replay against either (only granularity differs).
    PhysMem pm4k{std::uint64_t{1} << 30};
    Vm vm4k{pm4k};
    vm_.setPagePolicy(Vm::PagePolicy::k2mInterior);
    const Asid a2m = vm_.createProcess();
    const Asid a4k = vm4k.createProcess();
    for (std::uint64_t bytes :
         {kPageSize * 3, kLargePageSize * 2, kPageSize * 700}) {
        EXPECT_EQ(vm_.mmapAnon(a2m, bytes), vm4k.mmapAnon(a4k, bytes));
    }
}

TEST_F(VmTest, PagePolicyRecordsContigFlag)
{
    vm_.setPagePolicy(Vm::PagePolicy::k2mInterior);
    vm_.recordOps(true);
    const Asid a = vm_.createProcess();
    vm_.mmapAnon(a, 2 * kLargePageSize); // interior exists -> flagged
    vm_.mmapAnon(a, 2 * kPageSize);      // too small -> unflagged
    const auto &ops = vm_.recordedOps();
    ASSERT_EQ(ops.size(), 3u);
    EXPECT_EQ(ops[1].flags, kVmOpFlagContig);
    EXPECT_EQ(ops[2].flags, 0);
}

TEST_F(VmTest, UnmapInsideLargeInteriorIsPrecise)
{
    vm_.setPagePolicy(Vm::PagePolicy::k2mInterior);
    const Asid a = vm_.createProcess();
    const Vaddr base = vm_.mmapAnon(a, 3 * kLargePageSize);
    const Vpn lo = (pageOf(base) + 511) & ~Vpn{511};
    // Unmap one 4 KB page inside the 2 MB interior: the page table
    // splits, that page dies, its 511 siblings survive.
    const Vaddr victim = Vaddr(lo + 5) << kPageShift;
    std::vector<Vpn> shot;
    vm_.addPageShootdownListener(
        [&](Asid, Vpn vpn) { shot.push_back(vpn); });
    vm_.unmap(a, victim, kPageSize);
    ASSERT_EQ(shot.size(), 1u);
    EXPECT_EQ(shot[0], lo + 5);
    EXPECT_FALSE(vm_.translate(a, victim).has_value());
    EXPECT_TRUE(vm_.translate(a, victim - kPageSize).has_value());
    EXPECT_TRUE(vm_.translate(a, victim + kPageSize).has_value());
}

TEST_F(VmTest, ShootdownCounterCounts)
{
    const Asid a = vm_.createProcess();
    const Vaddr base = vm_.mmapAnon(a, 4 * kPageSize);
    vm_.protect(a, base, 2 * kPageSize, kPermRead);
    EXPECT_EQ(vm_.pageShootdowns(), 2u);
}

} // namespace
} // namespace gvc
