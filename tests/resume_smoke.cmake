# CLI smoke test for checkpointed sweeps: interrupt a journaled run
# mid-grid (--max-cells), resume it from the journal, and require the
# resumed JSON export to be byte-identical to an uninterrupted run of
# the same grid.  Then re-use the finished journal as a cost model for
# a cost-balanced (LPT) 3-shard split and require the merged shards to
# be byte-identical as well.  Mirrors the CI kill-and-resume step so
# both properties are checked by `ctest` locally too.

set(args --workloads hotspot,backprop
         --designs ideal,baseline512,vc_opt,base2mb
         --scale 0.05 --jobs 2 --percu-tlb 64 --quiet --no-table)

function(run_checked)
    execute_process(COMMAND ${ARGN} RESULT_VARIABLE rc
                    OUTPUT_QUIET)
    if(NOT rc EQUAL 0)
        string(JOIN " " cmd ${ARGN})
        message(FATAL_ERROR "command failed (${rc}): ${cmd}")
    endif()
endfunction()

function(require_identical a b what)
    execute_process(
        COMMAND ${CMAKE_COMMAND} -E compare_files ${a} ${b}
        RESULT_VARIABLE diff_rc)
    if(NOT diff_rc EQUAL 0)
        message(FATAL_ERROR "${what}: ${a} differs from ${b}")
    endif()
endfunction()

set(journal ${WORK_DIR}/resume.gvcj)
file(REMOVE ${journal} ${WORK_DIR}/resume_partial.json)

# 1. Uninterrupted reference run.
run_checked(${GVC_SWEEP} ${args} --json ${WORK_DIR}/resume_full.json)

# 2. Journaled run cut off after 3 of the 8 cells (exit stays 0; the
#    export is skipped on an incomplete grid).
run_checked(${GVC_SWEEP} ${args} --journal ${journal} --max-cells 3
            --json ${WORK_DIR}/resume_partial.json)
if(EXISTS ${WORK_DIR}/resume_partial.json)
    message(FATAL_ERROR "interrupted sweep still exported JSON")
endif()

# 3. Resume from the journal; the export must match the reference
#    byte for byte.
run_checked(${GVC_SWEEP} ${args} --resume ${journal}
            --json ${WORK_DIR}/resume_done.json)
require_identical(${WORK_DIR}/resume_full.json
                  ${WORK_DIR}/resume_done.json
                  "resumed sweep differs from uninterrupted run")

# 4. The completed journal doubles as a cost model: a cost-balanced
#    3-shard split must merge back byte-identical to the reference.
run_checked(${GVC_PLAN} journal ${journal})
run_checked(${GVC_PLAN} shards --workloads hotspot,backprop
            --designs ideal,baseline512,vc_opt,base2mb
            --shard-count 3 --cost-model ${journal})
foreach(i RANGE 2)
    run_checked(${GVC_SWEEP} ${args} --shard ${i}/3 --balance
                --cost-model ${journal}
                --json ${WORK_DIR}/resume_lpt_${i}.json)
endforeach()
run_checked(${GVC_MERGE} ${WORK_DIR}/resume_lpt_0.json
            ${WORK_DIR}/resume_lpt_1.json ${WORK_DIR}/resume_lpt_2.json
            -o ${WORK_DIR}/resume_lpt_merged.json)
require_identical(${WORK_DIR}/resume_full.json
                  ${WORK_DIR}/resume_lpt_merged.json
                  "cost-balanced merge differs from unsharded run")

# 5. A journal from one grid must not resume another: dropping a
#    design from the axis has to be rejected, not silently replayed.
execute_process(COMMAND ${GVC_SWEEP} --workloads hotspot,backprop
                --designs ideal,vc_opt --scale 0.05 --jobs 2
                --percu-tlb 64 --quiet --no-table
                --resume ${journal} --json ${WORK_DIR}/resume_bad.json
                RESULT_VARIABLE bad_rc ERROR_QUIET OUTPUT_QUIET)
if(bad_rc EQUAL 0)
    message(FATAL_ERROR
            "gvc_sweep resumed a journal from a different grid")
endif()

message(STATUS
        "resume and cost-balanced shards byte-identical to full run")
