/**
 * @file
 * Differential oracle tests for the dead-entry-aware TLB policy
 * subsystem.  A deliberately naive reference model — per-set vectors,
 * no memo, no per-class probe gating, the policy spec transcribed in
 * the most literal way possible — is stepped in lockstep with the
 * optimized `Tlb` over seeded random probe / fill / shootdown /
 * reach-merge sequences, across every (replacement x fill-policy)
 * combination: true LRU, SRRIP, BRRIP, set-dueling DRRIP crossed with
 * install-all, static next-line bypass, and the trained dead-entry
 * predictor (bypass + sampling installs + dead-first victims).
 *
 * Every lookup outcome, every counter (fills, bypasses, dead-first
 * evictions, predictor true/false positives, merges), the residency
 * set, and the TlbRefHist must agree at every checkpoint; the first
 * divergence names the step that caused it.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <tuple>
#include <vector>

#include "sim/rng.hh"
#include "tlb/dead_pred.hh"
#include "tlb/tlb.hh"

namespace gvc
{
namespace
{

/**
 * Naive reference model of Tlb for finite configurations.  Mirrors
 * the documented policy semantics operation for operation (including
 * iteration orders, which the trained predictor's saturating counters
 * can observe) but shares none of Tlb's fast-path machinery.
 */
class PolicyOracle
{
  public:
    struct OEntry
    {
        Asid asid;
        Vpn vpn; ///< Base VPN, aligned to reach.
        Ppn ppn;
        Perms perms;
        bool large;
        unsigned reach;
        std::uint64_t lru;
        std::uint32_t refs = 0;
        std::uint8_t rrpv = 0;
        bool sampled = false;
    };

    PolicyOracle(const TlbParams &params, unsigned sets, unsigned assoc)
        : p_(params), num_sets_(sets), assoc_(assoc), sets_(sets)
    {
        if (p_.max_reach > kMaxReachLog2)
            p_.max_reach = kMaxReachLog2;
    }

    std::optional<TlbLookup>
    lookup(Asid asid, Vpn vpn)
    {
        ++accesses;
        for (unsigned r = 0; r <= kMaxReachLog2; ++r) {
            const Vpn base = reachBase(vpn, r);
            auto &set = sets_[setIndex(base, r)];
            for (auto &e : set) {
                if (e.reach == r && e.asid == asid && e.vpn == base) {
                    ++hits;
                    if (r > 0)
                        ++reach_hits;
                    e.lru = ++lru_clock_;
                    e.rrpv = 0;
                    ++e.refs;
                    return TlbLookup{e.ppn + (vpn - e.vpn), e.perms,
                                     e.large, std::uint8_t(e.reach),
                                     e.vpn, e.ppn};
                }
            }
        }
        ++misses;
        return std::nullopt;
    }

    bool
    present(Asid asid, Vpn vpn) const
    {
        for (unsigned r = 0; r <= kMaxReachLog2; ++r) {
            const Vpn base = reachBase(vpn, r);
            const auto &set = sets_[setIndex(base, r)];
            for (const auto &e : set)
                if (e.reach == r && e.asid == asid && e.vpn == base)
                    return true;
        }
        return false;
    }

    void
    insert(Asid asid, Vpn vpn, const TlbLookup &xlate)
    {
        bool sampled = false;
        if (p_.fill_policy == kTlbFillBypassDead && xlate.reach == 0) {
            const bool seq = asid == pred_asid_ && vpn == pred_vpn_ + 1;
            pred_asid_ = asid;
            pred_vpn_ = vpn;
            if (seq) {
                ++bypasses;
                return;
            }
        } else if (p_.fill_policy == kTlbFillBypassTrained &&
                   xlate.reach == 0 &&
                   dead_pred_.predictDead(asid, vpn)) {
            if (!dead_pred_.sampleFill()) {
                ++bypasses;
                return;
            }
            sampled = true;
        }
        ++fills;
        unsigned r = xlate.reach;
        Vpn base = xlate.base_vpn;
        Ppn base_ppn = xlate.base_ppn;
        if (r == 0 || r > p_.max_reach) {
            r = 0;
            base = vpn;
            base_ppn = xlate.ppn;
        }
        if (r > 0)
            ++reach_fills;
        installEntry(asid, base, base_ppn, xlate.perms, xlate.large, r,
                     sampled);
        if (p_.merge_on_insert)
            tryMerge(asid, base, r);
    }

    bool
    invalidatePage(Asid asid, Vpn vpn)
    {
        bool any = false;
        for (unsigned r = 0; r <= kMaxReachLog2; ++r) {
            const Vpn base = reachBase(vpn, r);
            auto &set = sets_[setIndex(base, r)];
            for (std::size_t i = 0; i < set.size(); ++i) {
                if (set[i].reach == r && set[i].asid == asid &&
                    set[i].vpn == base) {
                    retire(set[i]);
                    set.erase(set.begin() + long(i));
                    any = true;
                    break;
                }
            }
        }
        return any;
    }

    void
    invalidateAsid(Asid asid)
    {
        for (auto &set : sets_) {
            for (std::size_t i = set.size(); i-- > 0;) {
                if (set[i].asid == asid) {
                    retire(set[i]);
                    set.erase(set.begin() + long(i));
                }
            }
        }
    }

    void
    invalidateAll()
    {
        for (auto &set : sets_) {
            for (auto &e : set)
                retire(e);
            set.clear();
        }
    }

    void
    flushResidentRefs()
    {
        for (const auto &set : sets_)
            for (const auto &e : set)
                ref_hist.record(e.refs);
    }

    std::uint64_t accesses = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t fills = 0;
    std::uint64_t bypasses = 0;
    std::uint64_t dead_first = 0;
    std::uint64_t pred_true_pos = 0;
    std::uint64_t pred_false_pos = 0;
    std::uint64_t merges = 0;
    std::uint64_t reach_hits = 0;
    std::uint64_t reach_fills = 0;
    TlbRefHist ref_hist;

  private:
    std::size_t
    setIndex(Vpn base, unsigned r) const
    {
        return (base >> r) % num_sets_;
    }

    std::uint8_t
    insertRrpv(std::size_t si)
    {
        unsigned pol = p_.replacement;
        if (pol == kTlbReplDrrip) {
            if (si % 32 == 0) {
                if (psel_ < 1023)
                    ++psel_;
                pol = kTlbReplSrrip;
            } else if (si % 32 == 1) {
                if (psel_ > 0)
                    --psel_;
                pol = kTlbReplBrrip;
            } else {
                pol = psel_ > 512 ? kTlbReplBrrip : kTlbReplSrrip;
            }
        }
        if (pol == kTlbReplSrrip)
            return 2;
        return (brrip_counter_++ % 32) == 0 ? 2 : 3;
    }

    std::size_t
    pickVictim(std::vector<OEntry> &set)
    {
        if (p_.fill_policy == kTlbFillBypassTrained) {
            for (std::size_t i = 0; i < set.size(); ++i) {
                const OEntry &e = set[i];
                if (e.reach == 0 && e.refs == 0 &&
                    dead_pred_.predictDead(e.asid, e.vpn)) {
                    ++dead_first;
                    return i;
                }
            }
        }
        if (p_.replacement == kTlbReplLru) {
            std::size_t victim = 0;
            for (std::size_t i = 1; i < set.size(); ++i)
                if (set[i].lru < set[victim].lru)
                    victim = i;
            return victim;
        }
        for (;;) {
            for (std::size_t i = 0; i < set.size(); ++i)
                if (set[i].rrpv >= 3)
                    return i;
            for (auto &e : set)
                ++e.rrpv;
        }
    }

    OEntry
    makeEntry(Asid asid, Vpn base, Ppn ppn, Perms perms, bool large,
              unsigned r, std::size_t si, bool sampled)
    {
        OEntry e{asid, base, ppn, perms, large, r, ++lru_clock_,
                 0,    0,    false};
        e.rrpv = p_.replacement == kTlbReplLru ? 0 : insertRrpv(si);
        e.sampled = sampled;
        return e;
    }

    void
    installEntry(Asid asid, Vpn base, Ppn ppn, Perms perms, bool large,
                 unsigned r, bool sampled = false)
    {
        const std::size_t si = setIndex(base, r);
        auto &set = sets_[si];
        for (auto &e : set) {
            if (e.reach == r && e.asid == asid && e.vpn == base) {
                e.ppn = ppn;
                e.perms = perms;
                e.large = large;
                e.lru = ++lru_clock_;
                e.rrpv = 0;
                return;
            }
        }
        if (set.size() < assoc_) {
            set.push_back(
                makeEntry(asid, base, ppn, perms, large, r, si, sampled));
            return;
        }
        const std::size_t victim = pickVictim(set);
        retire(set[victim]);
        set[victim] =
            makeEntry(asid, base, ppn, perms, large, r, si, sampled);
    }

    std::optional<OEntry>
    findEntry(Asid asid, Vpn base, unsigned r) const
    {
        const auto &set = sets_[setIndex(base, r)];
        for (const auto &e : set)
            if (e.reach == r && e.asid == asid && e.vpn == base)
                return e;
        return std::nullopt;
    }

    void
    removeEntry(Asid asid, Vpn base, unsigned r)
    {
        auto &set = sets_[setIndex(base, r)];
        for (std::size_t i = 0; i < set.size(); ++i) {
            if (set[i].reach == r && set[i].asid == asid &&
                set[i].vpn == base) {
                retire(set[i]);
                set.erase(set.begin() + long(i));
                return;
            }
        }
    }

    void
    tryMerge(Asid asid, Vpn base, unsigned r)
    {
        while (r < p_.max_reach) {
            const auto self = findEntry(asid, base, r);
            if (!self)
                return;
            const Vpn buddy_base = base ^ reachPages(r);
            const auto buddy = findEntry(asid, buddy_base, r);
            if (!buddy || buddy->perms != self->perms ||
                buddy->large != self->large)
                return;
            const OEntry &lo = base < buddy_base ? *self : *buddy;
            const OEntry &hi = base < buddy_base ? *buddy : *self;
            if (lo.ppn + reachPages(r) != hi.ppn)
                return;
            const Vpn merged_base = lo.vpn;
            const Ppn merged_ppn = lo.ppn;
            const Perms perms = lo.perms;
            const bool large = lo.large;
            removeEntry(asid, base, r);
            removeEntry(asid, buddy_base, r);
            ++merges;
            installEntry(asid, merged_base, merged_ppn, perms, large,
                         r + 1);
            base = merged_base;
            ++r;
        }
    }

    void
    retire(const OEntry &e)
    {
        ref_hist.record(e.refs);
        if (p_.fill_policy == kTlbFillBypassTrained && e.reach == 0) {
            dead_pred_.train(e.asid, e.vpn, e.refs == 0);
            if (e.sampled) {
                if (e.refs == 0)
                    ++pred_true_pos;
                else
                    ++pred_false_pos;
            }
        }
    }

    TlbParams p_;
    std::size_t num_sets_;
    unsigned assoc_;
    std::vector<std::vector<OEntry>> sets_;
    std::uint64_t lru_clock_ = 0;
    Asid pred_asid_ = 0;
    Vpn pred_vpn_ = kInvalidVpn;
    DeadPredictor dead_pred_;
    unsigned psel_ = 512;
    std::uint64_t brrip_counter_ = 0;
};

/** Deterministic frame for a VPN; constant offset keeps buddy frames
 *  physically contiguous so the merge ladder actually fires. */
Ppn
ppnOf(Vpn vpn)
{
    return vpn + 0x10000;
}

/** Deterministic perms/large per VPN (so re-fills are consistent but
 *  buddy halves sometimes mismatch and the merge guards trigger). */
Perms
permsOf(Vpn vpn)
{
    return (vpn % 7 == 0) ? Perms(kPermRead | kPermWrite)
                          : Perms(kPermRead);
}

bool
largeOf(Vpn vpn)
{
    return vpn % 13 == 0;
}

// Parameters: entries, assoc, replacement, fill policy, reach mode.
using OracleParam =
    std::tuple<unsigned, unsigned, unsigned, unsigned, bool>;

class TlbPolicyOracle : public ::testing::TestWithParam<OracleParam>
{
};

TEST_P(TlbPolicyOracle, LockstepWithNaiveModel)
{
    const auto [entries, assoc, repl, fill, reach] = GetParam();
    TlbParams p{entries, assoc, false, false};
    p.replacement = repl;
    p.fill_policy = fill;
    if (reach) {
        p.max_reach = 3;
        p.merge_on_insert = true;
    }
    Tlb tlb(p);
    PolicyOracle oracle(p, tlb.numSets(), tlb.assoc());
    Rng rng(entries * 131 + assoc * 29 + repl * 7 + fill * 3 +
            unsigned(reach));

    const auto checkpoint = [&](int step) {
        ASSERT_EQ(tlb.accesses(), oracle.accesses) << "step " << step;
        ASSERT_EQ(tlb.hits(), oracle.hits) << "step " << step;
        ASSERT_EQ(tlb.misses(), oracle.misses) << "step " << step;
        ASSERT_EQ(tlb.fills(), oracle.fills) << "step " << step;
        ASSERT_EQ(tlb.fillBypasses(), oracle.bypasses)
            << "step " << step;
        ASSERT_EQ(tlb.deadFirstEvictions(), oracle.dead_first)
            << "step " << step;
        ASSERT_EQ(tlb.predTruePos(), oracle.pred_true_pos)
            << "step " << step;
        ASSERT_EQ(tlb.predFalsePos(), oracle.pred_false_pos)
            << "step " << step;
        ASSERT_EQ(tlb.merges(), oracle.merges) << "step " << step;
        ASSERT_EQ(tlb.reachHits(), oracle.reach_hits)
            << "step " << step;
        ASSERT_EQ(tlb.reachFills(), oracle.reach_fills)
            << "step " << step;
        ASSERT_EQ(tlb.refHist(), oracle.ref_hist) << "step " << step;
    };

    for (int step = 0; step < 8000; ++step) {
        const Asid asid = Asid(1 + rng.below(2));
        const Vpn vpn = rng.below(1024);
        const auto op = rng.below(24);
        if (op < 10) {
            const auto got = tlb.lookup(asid, vpn, Tick(step));
            const auto want = oracle.lookup(asid, vpn);
            ASSERT_EQ(got.has_value(), want.has_value())
                << "lookup divergence at step " << step << " vpn "
                << vpn;
            if (got) {
                ASSERT_EQ(got->ppn, want->ppn) << "step " << step;
                ASSERT_EQ(got->perms, want->perms) << "step " << step;
                ASSERT_EQ(got->reach, want->reach) << "step " << step;
                ASSERT_EQ(got->base_vpn, want->base_vpn)
                    << "step " << step;
                ASSERT_EQ(got->base_ppn, want->base_ppn)
                    << "step " << step;
            }
        } else if (op < 20) {
            TlbLookup x;
            if (reach && rng.chance(0.25)) {
                // A pre-coalesced wide fill, as Iommu::fillFor shapes
                // them: aligned base, contiguous frames.
                const unsigned r = unsigned(1 + rng.below(3));
                const Vpn base = reachBase(vpn, r);
                x = TlbLookup{ppnOf(vpn), permsOf(base), largeOf(base),
                              std::uint8_t(r), base, ppnOf(base)};
            } else {
                x = TlbLookup{ppnOf(vpn), permsOf(vpn), largeOf(vpn)};
            }
            tlb.insert(asid, vpn, x, Tick(step));
            oracle.insert(asid, vpn, x);
        } else if (op < 22) {
            const bool got = tlb.invalidatePage(asid, vpn, Tick(step));
            const bool want = oracle.invalidatePage(asid, vpn);
            ASSERT_EQ(got, want)
                << "shootdown divergence at step " << step;
        } else if (op == 22) {
            if (rng.chance(0.05)) {
                tlb.invalidateAsid(asid, Tick(step));
                oracle.invalidateAsid(asid);
            }
        } else {
            if (rng.chance(0.02)) {
                tlb.invalidateAll(Tick(step));
                oracle.invalidateAll();
            }
        }
        if (step % 512 == 0) {
            checkpoint(step);
            // ASSERT inside a lambda only exits the lambda; stop the
            // op loop at the first divergent checkpoint ourselves.
            if (::testing::Test::HasFatalFailure())
                return;
        }
        if (step % 2048 == 0) {
            for (Vpn v = 0; v < 192; ++v) {
                for (Asid a : {Asid(1), Asid(2)}) {
                    ASSERT_EQ(tlb.present(a, v), oracle.present(a, v))
                        << "residency divergence at step " << step
                        << " asid " << unsigned(a) << " vpn " << v;
                }
            }
        }
    }
    checkpoint(8000);
    tlb.flushResidentRefs();
    oracle.flushResidentRefs();
    ASSERT_EQ(tlb.refHist(), oracle.ref_hist) << "final flushed hist";
}

// Geometries: a set-associative mid-size, a small near-full-assoc, and
// a 128-set shape so DRRIP has real SRRIP and BRRIP leader sets plus
// followers.  Crossed with every replacement x fill policy, with and
// without the reach/merge machinery.
INSTANTIATE_TEST_SUITE_P(
    PolicyMatrix, TlbPolicyOracle,
    ::testing::Combine(
        ::testing::Values(64u, 256u), ::testing::Values(4u, 2u),
        ::testing::Values(kTlbReplLru, kTlbReplSrrip, kTlbReplBrrip,
                          kTlbReplDrrip),
        ::testing::Values(kTlbFillLru, kTlbFillBypassDead,
                          kTlbFillBypassTrained),
        ::testing::Bool()));

// A fully-associative geometry (assoc = 0 selects it) stepped through
// the trained predictor: one set means dead-first victim selection and
// RRIP aging act on the whole array.
TEST(TlbPolicyOracleFullAssoc, TrainedBypassLockstep)
{
    TlbParams p{32, 0, false, false};
    p.replacement = kTlbReplSrrip;
    p.fill_policy = kTlbFillBypassTrained;
    Tlb tlb(p);
    PolicyOracle oracle(p, tlb.numSets(), tlb.assoc());
    Rng rng(977);
    for (int step = 0; step < 6000; ++step) {
        const Vpn vpn = rng.below(256);
        if (rng.below(2) == 0) {
            const auto got = tlb.lookup(1, vpn, Tick(step));
            const auto want = oracle.lookup(1, vpn);
            ASSERT_EQ(got.has_value(), want.has_value())
                << "step " << step;
        } else {
            const TlbLookup x{ppnOf(vpn), permsOf(vpn), largeOf(vpn)};
            tlb.insert(1, vpn, x, Tick(step));
            oracle.insert(1, vpn, x);
        }
    }
    EXPECT_EQ(tlb.fillBypasses(), oracle.bypasses);
    EXPECT_EQ(tlb.deadFirstEvictions(), oracle.dead_first);
    EXPECT_EQ(tlb.predTruePos(), oracle.pred_true_pos);
    EXPECT_EQ(tlb.predFalsePos(), oracle.pred_false_pos);
    tlb.flushResidentRefs();
    oracle.flushResidentRefs();
    EXPECT_EQ(tlb.refHist(), oracle.ref_hist);
}

// The DeadPredictor itself: threshold, saturation, and the sampling
// cadence are the contract both the Tlb and the oracle rely on.
TEST(DeadPredictor, ThresholdSaturationAndSampling)
{
    DeadPredictor p;
    EXPECT_FALSE(p.predictDead(1, 0));
    p.train(1, 0, true);
    EXPECT_FALSE(p.predictDead(1, 0)); // counter 1 < threshold 2
    p.train(1, 0, true);
    EXPECT_TRUE(p.predictDead(1, 0)); // counter 2
    p.train(1, 0, true);
    p.train(1, 0, true); // saturates at 3
    p.train(1, 0, false);
    EXPECT_TRUE(p.predictDead(1, 0)); // 3 -> 2, still dead
    p.train(1, 0, false);
    EXPECT_FALSE(p.predictDead(1, 0)); // 2 -> 1
    // Pages of one region share a counter; a different region (or
    // ASID) hashes elsewhere for these inputs.
    p.train(1, 0, true);
    EXPECT_TRUE(p.predictDead(1, 0)); // 1 -> 2, back at threshold
    p.train(1, 1, true);
    EXPECT_TRUE(p.predictDead(1, 63)); // same 64-page region
    EXPECT_FALSE(p.predictDead(1, 64)); // next region
    // Sampling: first predicted-dead fill installs, next seven bypass.
    DeadPredictor q;
    EXPECT_TRUE(q.sampleFill());
    for (int i = 0; i < 7; ++i)
        EXPECT_FALSE(q.sampleFill()) << i;
    EXPECT_TRUE(q.sampleFill());
}

} // namespace
} // namespace gvc
