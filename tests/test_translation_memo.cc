/**
 * @file
 * Last-translation memo coverage: the memo is a host-side fast path, so
 * these tests pin (a) its correctness under every invalidation source —
 * page shootdown, ASID invalidation, full flush, and each BoundaryPolicy
 * preset at system level — and (b) bit-identical statistics with the
 * memo on vs off, unit-level and across the golden (workload, design)
 * matrix.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "harness/runner.hh"
#include "mmu/boundary.hh"
#include "tlb/tlb.hh"

namespace gvc
{
namespace
{

TlbParams
memoParams(bool memo)
{
    TlbParams p;
    p.entries = 8;
    p.assoc = 0;
    p.memo = memo;
    return p;
}

TEST(TranslationMemo, RepeatedLookupsHitThroughMemo)
{
    Tlb tlb(memoParams(true));
    tlb.insert(1, 0x10, TlbLookup{0x99, kPermRead, false}, 0);
    for (Tick t = 1; t <= 100; ++t) {
        auto r = tlb.lookup(1, 0x10, t);
        ASSERT_TRUE(r.has_value());
        EXPECT_EQ(r->ppn, Ppn{0x99});
    }
    EXPECT_EQ(tlb.accesses(), 100u);
    EXPECT_EQ(tlb.hits(), 100u);
    EXPECT_EQ(tlb.misses(), 0u);
}

TEST(TranslationMemo, MemoOnOffStatIdentityUnitLevel)
{
    // Drive both TLBs through the same access pattern, including
    // conflict evictions, and require identical counters throughout.
    Tlb on(memoParams(true));
    Tlb off(memoParams(false));
    Tick t = 0;
    for (unsigned round = 0; round < 4; ++round) {
        for (Vpn vpn = 0; vpn < 12; ++vpn) {
            ++t;
            auto a = on.lookup(1, vpn, t);
            auto b = off.lookup(1, vpn, t);
            ASSERT_EQ(a.has_value(), b.has_value());
            if (!a) {
                on.insert(1, vpn, TlbLookup{vpn + 100, kPermRead, false},
                          t);
                off.insert(1, vpn, TlbLookup{vpn + 100, kPermRead, false},
                           t);
            }
            // Repeat the same page immediately: the memo path must
            // produce the same counters as the scan path.
            ++t;
            a = on.lookup(1, vpn, t);
            b = off.lookup(1, vpn, t);
            ASSERT_EQ(a.has_value(), b.has_value());
        }
    }
    EXPECT_EQ(on.accesses(), off.accesses());
    EXPECT_EQ(on.hits(), off.hits());
    EXPECT_EQ(on.misses(), off.misses());
    EXPECT_EQ(on.fills(), off.fills());
}

TEST(TranslationMemo, PageShootdownInvalidatesMemo)
{
    Tlb tlb(memoParams(true));
    tlb.insert(1, 0x10, TlbLookup{0x99, kPermRead, false}, 0);
    ASSERT_TRUE(tlb.lookup(1, 0x10, 1).has_value()); // memoized
    tlb.invalidatePage(1, 0x10, 2);
    EXPECT_FALSE(tlb.lookup(1, 0x10, 3).has_value());
    EXPECT_EQ(tlb.misses(), 1u);
}

TEST(TranslationMemo, AsidInvalidationInvalidatesMemo)
{
    Tlb tlb(memoParams(true));
    tlb.insert(1, 0x10, TlbLookup{0x99, kPermRead, false}, 0);
    ASSERT_TRUE(tlb.lookup(1, 0x10, 1).has_value());
    tlb.invalidateAsid(1, 2);
    EXPECT_FALSE(tlb.lookup(1, 0x10, 3).has_value());
}

TEST(TranslationMemo, FullInvalidationInvalidatesMemo)
{
    Tlb tlb(memoParams(true));
    tlb.insert(1, 0x10, TlbLookup{0x99, kPermRead, false}, 0);
    ASSERT_TRUE(tlb.lookup(1, 0x10, 1).has_value());
    tlb.invalidateAll(2);
    EXPECT_FALSE(tlb.lookup(1, 0x10, 3).has_value());
}

TEST(TranslationMemo, AsidSwitchDoesNotHitThroughMemo)
{
    // Same VPN, different address space: the memo key includes the
    // ASID, so a page-table switch must not leak the old translation.
    Tlb tlb(memoParams(true));
    tlb.insert(1, 0x10, TlbLookup{0x99, kPermRead, false}, 0);
    tlb.insert(2, 0x10, TlbLookup{0x77, kPermRead, false}, 0);
    auto a = tlb.lookup(1, 0x10, 1);
    ASSERT_TRUE(a.has_value());
    EXPECT_EQ(a->ppn, Ppn{0x99});
    auto b = tlb.lookup(2, 0x10, 2);
    ASSERT_TRUE(b.has_value());
    EXPECT_EQ(b->ppn, Ppn{0x77});
    a = tlb.lookup(1, 0x10, 3);
    ASSERT_TRUE(a.has_value());
    EXPECT_EQ(a->ppn, Ppn{0x99});
}

TEST(TranslationMemo, ReinsertionAfterShootdownServesNewTranslation)
{
    Tlb tlb(memoParams(true));
    tlb.insert(1, 0x10, TlbLookup{0x99, kPermRead, false}, 0);
    ASSERT_TRUE(tlb.lookup(1, 0x10, 1).has_value());
    tlb.invalidatePage(1, 0x10, 2);
    tlb.insert(1, 0x10, TlbLookup{0x55, kPermRead, false}, 3);
    auto r = tlb.lookup(1, 0x10, 4);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->ppn, Ppn{0x55});
}

TEST(TranslationMemo, InfiniteTlbMemoMatchesScan)
{
    TlbParams p;
    p.infinite = true;
    Tlb on(p);
    p.memo = false;
    Tlb off(p);
    for (Vpn vpn = 0; vpn < 8; ++vpn) {
        on.insert(1, vpn, TlbLookup{vpn + 100, kPermRead, false}, 0);
        off.insert(1, vpn, TlbLookup{vpn + 100, kPermRead, false}, 0);
    }
    for (unsigned round = 0; round < 3; ++round) {
        for (Vpn vpn = 0; vpn < 8; ++vpn) {
            // Twice per page so the second lookup exercises the memo.
            for (int rep = 0; rep < 2; ++rep) {
                auto a = on.lookup(1, vpn, 1);
                auto b = off.lookup(1, vpn, 1);
                ASSERT_TRUE(a.has_value() && b.has_value());
                EXPECT_EQ(a->ppn, b->ppn);
            }
        }
    }
    on.invalidatePage(1, 3);
    off.invalidatePage(1, 3);
    EXPECT_FALSE(on.lookup(1, 3, 2).has_value());
    EXPECT_FALSE(off.lookup(1, 3, 2).has_value());
    EXPECT_EQ(on.hits(), off.hits());
    EXPECT_EQ(on.misses(), off.misses());
}

// --- System level: memo on vs off must be bit-identical ---

std::string
statsKey(const RunResult &r)
{
    std::ostringstream os;
    os << r.exec_ticks << '/' << r.instructions << '/'
       << r.mem_instructions << '/' << r.tlb_accesses << '/'
       << r.tlb_misses << '/' << r.iommu_accesses << '/' << r.page_walks
       << '/' << r.l1_accesses << '/' << r.l2_accesses << '/'
       << r.dram_accesses << '/' << r.dram_bytes << '/' << r.fbt_lookups
       << '/' << r.synonym_replays;
    return os.str();
}

RunConfig
smallConfig(MmuDesign design, bool memo)
{
    RunConfig cfg;
    cfg.design = design;
    cfg.workload.scale = 0.1;
    cfg.soc.translation_memo = memo;
    return cfg;
}

TEST(TranslationMemo, StatIdentityAcrossGoldenMatrix)
{
    const char *const workloads[] = {"pagerank", "bfs", "hotspot"};
    const MmuDesign designs[] = {MmuDesign::kBaseline512,
                                 MmuDesign::kVcOpt, MmuDesign::kL1Vc32};
    for (const char *w : workloads) {
        for (const MmuDesign d : designs) {
            const RunResult on = runWorkload(w, smallConfig(d, true));
            const RunResult off = runWorkload(w, smallConfig(d, false));
            EXPECT_EQ(statsKey(on), statsKey(off))
                << w << " / " << designName(d);
        }
    }
}

TEST(TranslationMemo, StatIdentityUnderEveryBoundaryPolicy)
{
    // Multi-kernel scenarios invoke the TLB invalidation paths between
    // rounds; every preset must leave memo-on and memo-off runs
    // bit-identical.
    const BoundaryPolicy policies[] = {
        BoundaryPolicy::keepAll(), BoundaryPolicy::flushL1(),
        BoundaryPolicy::flushAll(), BoundaryPolicy::shootdown()};
    for (const BoundaryPolicy &policy : policies) {
        ScenarioSpec spec;
        spec.rounds = 2;
        spec.boundary = policy;
        const RunResult on = runScenario(
            "bfs", smallConfig(MmuDesign::kVcOpt, true), spec);
        const RunResult off = runScenario(
            "bfs", smallConfig(MmuDesign::kVcOpt, false), spec);
        EXPECT_EQ(statsKey(on), statsKey(off))
            << "boundary policy " << boundaryPolicyName(policy);
    }
}

} // namespace
} // namespace gvc
