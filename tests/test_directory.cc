/**
 * @file
 * Unit and integration tests for the coherence directory, including
 * the full CPU-store -> directory -> BT-reverse-translated-GPU-probe
 * path of the virtual hierarchy.
 */

#include <gtest/gtest.h>

#include "cache/directory.hh"
#include "core/virtual_hierarchy.hh"
#include "cpu/coherence_agent.hh"

namespace gvc
{
namespace
{

class DirectoryTest : public ::testing::Test
{
  protected:
    DirectoryTest() : dram_(ctx_, {}), dir_(ctx_, dram_) {}

    void
    fetch(DirNode node, Paddr line, bool exclusive)
    {
        bool done = false;
        dir_.fetch(node, line, exclusive, [&] { done = true; });
        ctx_.eq.run();
        EXPECT_TRUE(done);
    }

    SimContext ctx_;
    Dram dram_;
    Directory dir_;
};

TEST_F(DirectoryTest, FetchMovesDataAndTracksSharer)
{
    fetch(DirNode::kGpu, 0x1000, false);
    EXPECT_EQ(dram_.accesses(), 1u);
    EXPECT_EQ(dir_.sharersOf(0x1000), 1u << unsigned(DirNode::kGpu));
}

TEST_F(DirectoryTest, SharedReadersCoexistWithoutProbes)
{
    fetch(DirNode::kGpu, 0x1000, false);
    fetch(DirNode::kCpu, 0x1000, false);
    EXPECT_EQ(dir_.probesSent(), 0u);
    EXPECT_EQ(dir_.sharersOf(0x1000), 3u);
}

TEST_F(DirectoryTest, ExclusiveFetchProbesTheOtherNode)
{
    unsigned gpu_probes = 0;
    dir_.setProbeSink(DirNode::kGpu, [&](Paddr, bool) {
        ++gpu_probes;
        return ProbeOutcome{true, false};
    });
    fetch(DirNode::kGpu, 0x2000, false);
    fetch(DirNode::kCpu, 0x2000, true);
    EXPECT_EQ(gpu_probes, 1u);
    EXPECT_EQ(dir_.probesSent(), 1u);
    EXPECT_EQ(dir_.sharersOf(0x2000), 1u << unsigned(DirNode::kCpu));
}

TEST_F(DirectoryTest, DirtyProbeCausesWriteback)
{
    dir_.setProbeSink(DirNode::kGpu, [](Paddr, bool) {
        return ProbeOutcome{true, /*was_dirty=*/true};
    });
    fetch(DirNode::kGpu, 0x3000, true); // GPU owns dirty
    const auto dram_before = dram_.accesses();
    fetch(DirNode::kCpu, 0x3000, false); // CPU read: probe + writeback
    EXPECT_EQ(dir_.probeWritebacks(), 1u);
    EXPECT_GE(dram_.accesses(), dram_before + 2); // WB + data
}

TEST_F(DirectoryTest, ExplicitWritebackClearsSharer)
{
    fetch(DirNode::kGpu, 0x4000, true);
    dir_.writeback(DirNode::kGpu, 0x4000);
    ctx_.eq.run();
    EXPECT_EQ(dir_.sharersOf(0x4000), 0u);
    EXPECT_EQ(dir_.writebacks(), 1u);
}

TEST(DirectoryVcIntegration, CpuStoreInvalidatesGpuCopyThroughBt)
{
    SimContext ctx;
    PhysMem pm(std::uint64_t{1} << 30);
    Vm vm(pm);
    Dram dram(ctx, {});
    SocConfig cfg;
    cfg.gpu.num_cus = 2;
    VirtualCacheSystem vc(ctx, cfg, vm, dram);
    const Asid asid = vm.createProcess();
    const Vaddr buf = vm.mmapAnon(asid, 4 * kPageSize);

    // GPU caches a line (dirty).
    bool gdone = false;
    vc.access(0, asid, buf, true, [&] { gdone = true; });
    ctx.eq.run();
    ASSERT_TRUE(gdone);
    ASSERT_TRUE(vc.l2().present(asid, buf));

    // CPU fetches the same line exclusively through the directory.
    const auto t = vm.translate(asid, buf);
    const Paddr pa = pageBase(t->ppn);
    bool cdone = false;
    vc.directory().fetch(DirNode::kCpu, pa, true, [&] { cdone = true; });
    ctx.eq.run();
    EXPECT_TRUE(cdone);
    // The probe traveled through the BT and removed the GPU's copy.
    EXPECT_FALSE(vc.l2().present(asid, buf));
    EXPECT_EQ(vc.directory().probesSent(), 1u);
    EXPECT_EQ(vc.directory().probeWritebacks(), 1u); // it was dirty
}

TEST(DirectoryVcIntegration, StaleProbesAreFilteredByBt)
{
    SimContext ctx;
    PhysMem pm(std::uint64_t{1} << 30);
    Vm vm(pm);
    Dram dram(ctx, {});
    SocConfig cfg;
    cfg.gpu.num_cus = 2;
    VirtualCacheSystem vc(ctx, cfg, vm, dram);
    const Asid asid = vm.createProcess();
    const Vaddr buf = vm.mmapAnon(asid, kPageSize);

    bool gdone = false;
    vc.access(0, asid, buf, false, [&] { gdone = true; });
    ctx.eq.run();
    ASSERT_TRUE(gdone);

    // Shoot the page down: the GPU's copy and FBT entry are gone, but
    // the directory's sharer bit is stale (silent from its view).
    vm.protect(asid, buf, kPageSize, kPermRead);
    const auto t = vm.translate(asid, buf);
    const auto before = vc.fbt().probesFiltered();
    bool cdone = false;
    vc.directory().fetch(DirNode::kCpu, pageBase(t->ppn), true,
                         [&] { cdone = true; });
    ctx.eq.run();
    EXPECT_TRUE(cdone);
    // The stale probe reached the BT and was filtered there.
    EXPECT_EQ(vc.fbt().probesFiltered(), before + 1);
}

TEST(DirectoryAgentIntegration, AgentThroughDirectoryInvalidatesGpu)
{
    SimContext ctx;
    PhysMem pm(std::uint64_t{1} << 30);
    Vm vm(pm);
    Dram dram(ctx, {});
    SocConfig cfg;
    cfg.gpu.num_cus = 2;
    VirtualCacheSystem vc(ctx, cfg, vm, dram);
    const Asid asid = vm.createProcess();
    const Vaddr buf = vm.mmapAnon(asid, 2 * kPageSize);

    bool gdone = false;
    vc.access(0, asid, buf, false, [&] { gdone = true; });
    ctx.eq.run();
    ASSERT_TRUE(gdone);

    CoherenceAgentParams p;
    p.period = 5;
    p.store_fraction = 1.0;
    CpuCoherenceAgent agent(ctx, vm, p);
    agent.attachDirectory(vc.directory());
    agent.start(asid, buf, 2 * kPageSize, 100);
    ctx.eq.run();

    EXPECT_FALSE(vc.l2().present(asid, buf));
    EXPECT_GT(vc.directory().probesSent(), 0u);
}

} // namespace
} // namespace gvc
