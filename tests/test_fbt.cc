/**
 * @file
 * Unit tests for the Forward-Backward Table: leading-VA discipline,
 * synonym detection, read-write synonym faults, bit-vector maintenance,
 * shootdowns, paired BT/FT eviction, large pages, and the randomized
 * invariant sweep.
 */

#include <gtest/gtest.h>

#include <set>

#include "core/fbt.hh"
#include "sim/rng.hh"

namespace gvc
{
namespace
{

FbtParams
tiny(unsigned entries = 64)
{
    FbtParams p;
    p.entries = entries;
    p.bt_assoc = 4;
    p.ft_assoc = 4;
    return p;
}

TEST(Fbt, FirstTouchBecomesLeading)
{
    Fbt fbt(tiny());
    const auto c = fbt.onCacheMiss(0, 100, 555, kPermRead, 3, false);
    EXPECT_EQ(c.kind, SynonymCheck::Kind::kNewLeading);
    EXPECT_EQ(c.leading_vpn, 100u);
    EXPECT_FALSE(c.line_cached);
    EXPECT_TRUE(c.victims.empty());
    EXPECT_EQ(fbt.validEntries(), 1u);
    EXPECT_TRUE(fbt.consistent());
}

TEST(Fbt, LeadingMatchOnRepeatAccess)
{
    Fbt fbt(tiny());
    fbt.onCacheMiss(0, 100, 555, kPermRead, 3, false);
    const auto c = fbt.onCacheMiss(0, 100, 555, kPermRead, 4, false);
    EXPECT_EQ(c.kind, SynonymCheck::Kind::kLeadingMatch);
}

TEST(Fbt, ReadOnlySynonymIsReplayable)
{
    Fbt fbt(tiny());
    fbt.onCacheMiss(1, 100, 555, kPermRead, 3, false);
    fbt.lineFilled(1, 100, 3);
    // A different virtual name for the same frame.
    const auto c = fbt.onCacheMiss(1, 200, 555, kPermRead, 3, false);
    EXPECT_EQ(c.kind, SynonymCheck::Kind::kSynonym);
    EXPECT_EQ(c.leading_vpn, 100u);
    EXPECT_EQ(c.leading_asid, 1u);
    EXPECT_TRUE(c.line_cached);
    EXPECT_EQ(fbt.synonymAccesses(), 1u);
}

TEST(Fbt, CrossAsidSynonymDetected)
{
    Fbt fbt(tiny());
    fbt.onCacheMiss(1, 100, 555, kPermRead, 0, false);
    const auto c = fbt.onCacheMiss(2, 100, 555, kPermRead, 0, false);
    EXPECT_EQ(c.kind, SynonymCheck::Kind::kSynonym);
    EXPECT_EQ(c.leading_asid, 1u);
}

TEST(Fbt, WriteThenSynonymReadFaults)
{
    Fbt fbt(tiny());
    fbt.onCacheMiss(0, 100, 555, kPermRead | kPermWrite, 0,
                    /*is_write=*/true);
    const auto c = fbt.onCacheMiss(0, 200, 555, kPermRead, 0, false);
    EXPECT_EQ(c.kind, SynonymCheck::Kind::kRwFault);
    EXPECT_EQ(fbt.rwFaults(), 1u);
}

TEST(Fbt, SynonymWriteToReadPageFaults)
{
    Fbt fbt(tiny());
    fbt.onCacheMiss(0, 100, 555, kPermRead, 0, false);
    const auto c = fbt.onCacheMiss(0, 200, 555, kPermRead | kPermWrite,
                                   0, /*is_write=*/true);
    EXPECT_EQ(c.kind, SynonymCheck::Kind::kRwFault);
}

TEST(Fbt, MarkWrittenViaLeadingTriggersLaterFault)
{
    Fbt fbt(tiny());
    fbt.onCacheMiss(0, 100, 555, kPermRead | kPermWrite, 0, false);
    fbt.markWritten(0, 100);
    const auto c = fbt.onCacheMiss(0, 300, 555, kPermRead, 0, false);
    EXPECT_EQ(c.kind, SynonymCheck::Kind::kRwFault);
}

TEST(Fbt, BitVectorTracksFillsAndEvictions)
{
    Fbt fbt(tiny());
    fbt.onCacheMiss(0, 100, 555, kPermRead, 7, false);
    fbt.lineFilled(0, 100, 7);
    fbt.lineFilled(0, 100, 8);
    auto r = fbt.reverseLookup(555, 7);
    EXPECT_TRUE(r.present);
    EXPECT_TRUE(r.line_cached);
    fbt.lineEvicted(0, 100, 7);
    r = fbt.reverseLookup(555, 7);
    EXPECT_FALSE(r.line_cached);
    EXPECT_TRUE(fbt.reverseLookup(555, 8).line_cached);
}

TEST(Fbt, ForwardLookupActsAsSecondLevelTlb)
{
    Fbt fbt(tiny());
    fbt.onCacheMiss(3, 100, 555, kPermRead, 0, false);
    const auto hit = fbt.forwardLookup(3, 100);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->ppn, 555u);
    EXPECT_FALSE(fbt.forwardLookup(3, 101).has_value());
    EXPECT_FALSE(fbt.forwardLookup(4, 100).has_value());
    EXPECT_GT(fbt.ftHitRatio(), 0.0);
}

TEST(Fbt, ReverseLookupFiltersUncachedFrames)
{
    Fbt fbt(tiny());
    const auto r = fbt.reverseLookup(999, 0);
    EXPECT_FALSE(r.present);
    EXPECT_EQ(fbt.probesFiltered(), 1u);
}

TEST(Fbt, ShootdownByLeadingVaPurges)
{
    Fbt fbt(tiny());
    fbt.onCacheMiss(0, 100, 555, kPermRead, 0, false);
    fbt.lineFilled(0, 100, 5);
    const auto page = fbt.shootdownPage(0, 100);
    ASSERT_TRUE(page.has_value());
    EXPECT_EQ(page->ppn, 555u);
    EXPECT_EQ(page->line_bits, std::uint32_t{1} << 5);
    EXPECT_EQ(fbt.validEntries(), 0u);
    EXPECT_TRUE(fbt.consistent());
}

TEST(Fbt, ShootdownOfUnknownVaIsFiltered)
{
    Fbt fbt(tiny());
    EXPECT_FALSE(fbt.shootdownPage(0, 12345).has_value());
    EXPECT_EQ(fbt.shootdownsFiltered(), 1u);
}

TEST(Fbt, ShootdownAllByAsid)
{
    Fbt fbt(tiny());
    fbt.onCacheMiss(1, 100, 555, kPermRead, 0, false);
    fbt.onCacheMiss(1, 101, 556, kPermRead, 0, false);
    fbt.onCacheMiss(2, 100, 557, kPermRead, 0, false);
    const auto pages = fbt.shootdownAll(Asid{1});
    EXPECT_EQ(pages.size(), 2u);
    EXPECT_EQ(fbt.validEntries(), 1u);
    EXPECT_TRUE(fbt.consistent());
}

TEST(Fbt, CapacityEvictionReportsVictims)
{
    Fbt fbt(tiny(16)); // 4 sets x 4 ways each side
    std::size_t victims = 0;
    for (Ppn p = 0; p < 64; ++p) {
        const auto c =
            fbt.onCacheMiss(0, 1000 + p, p, kPermRead, 0, false);
        victims += c.victims.size();
        ASSERT_TRUE(fbt.consistent());
    }
    EXPECT_GT(victims, 0u);
    EXPECT_LE(fbt.validEntries(), 16u);
    EXPECT_EQ(fbt.capacityEvictions(), victims);
}

TEST(Fbt, LargePageCounterMode)
{
    Fbt fbt(tiny());
    const auto c = fbt.onCacheMissLarge(0, 0x400, 0x10000,
                                        kPermRead | kPermWrite, false);
    EXPECT_EQ(c.kind, SynonymCheck::Kind::kNewLeading);
    fbt.lineFilled(0, 0x400, 0); // counter mode ignores the index
    fbt.lineFilled(0, 0x400, 0);
    EXPECT_TRUE(fbt.reverseLookup(0x10000, 31).line_cached);
    fbt.lineEvicted(0, 0x400, 0);
    EXPECT_TRUE(fbt.reverseLookup(0x10000, 0).line_cached);
    fbt.lineEvicted(0, 0x400, 0);
    EXPECT_FALSE(fbt.reverseLookup(0x10000, 0).line_cached);
}

TEST(Fbt, LargePageSynonymAndFaultRules)
{
    Fbt fbt(tiny());
    fbt.onCacheMissLarge(0, 0x400, 0x10000, kPermRead, false);
    const auto syn =
        fbt.onCacheMissLarge(0, 0x800, 0x10000, kPermRead, false);
    EXPECT_EQ(syn.kind, SynonymCheck::Kind::kSynonym);
    const auto fault =
        fbt.onCacheMissLarge(0, 0xC00, 0x10000, kPermRead, true);
    EXPECT_EQ(fault.kind, SynonymCheck::Kind::kRwFault);
}

TEST(Fbt, HasLeadingReflectsLiveEntries)
{
    Fbt fbt(tiny());
    EXPECT_FALSE(fbt.hasLeading(0, 100));
    fbt.onCacheMiss(0, 100, 555, kPermRead, 0, false);
    EXPECT_TRUE(fbt.hasLeading(0, 100));
    fbt.shootdownPage(0, 100);
    EXPECT_FALSE(fbt.hasLeading(0, 100));
}

/**
 * Randomized invariant sweep across FBT geometries: after any sequence
 * of allocations, fills, evictions, and shootdowns the BT/FT bijection
 * holds and valid entries never exceed capacity.
 */
class FbtProperty : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(FbtProperty, InvariantsUnderRandomOperations)
{
    const unsigned entries = GetParam();
    Fbt fbt(tiny(entries));
    Rng rng(entries * 1337);
    std::set<std::pair<Asid, Vpn>> live;
    for (int i = 0; i < 4000; ++i) {
        const auto op = rng.below(10);
        const Asid asid = Asid(rng.below(3));
        const Vpn vpn = 0x1000 + rng.below(256);
        // Deterministic VA->PA mapping (a VA never remaps without a
        // shootdown in a real system); distinct VAs may collide on the
        // same frame, which creates genuine synonyms.
        const Ppn ppn = 0x5000 + ((vpn * 3 + asid * 7) % 192);
        if (op < 6) {
            const auto c = fbt.onCacheMiss(asid, vpn, ppn, kPermRead,
                                           unsigned(rng.below(32)),
                                           false);
            if (c.kind == SynonymCheck::Kind::kNewLeading)
                live.insert({asid, vpn});
            for (const auto &v : c.victims)
                live.erase({v.asid, v.leading_vpn});
        } else if (op < 8) {
            const auto page = fbt.shootdownPage(asid, vpn);
            if (page)
                live.erase({asid, vpn});
        } else if (op < 9 && !live.empty()) {
            const auto &[la, lv] = *live.begin();
            fbt.lineFilled(la, lv, unsigned(rng.below(32)));
        } else {
            fbt.forwardLookup(asid, vpn);
        }
        ASSERT_TRUE(fbt.consistent());
        ASSERT_LE(fbt.validEntries(), entries);
    }
    // Every tracked live page still has a leading entry.
    for (const auto &[asid, vpn] : live)
        EXPECT_TRUE(fbt.hasLeading(asid, vpn));
}

INSTANTIATE_TEST_SUITE_P(Geometries, FbtProperty,
                         ::testing::Values(16u, 64u, 256u, 1024u));

} // namespace
} // namespace gvc
