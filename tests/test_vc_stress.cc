/**
 * @file
 * Randomized stress and demand-paging tests for the virtual cache
 * hierarchy: long mixed sequences of loads/stores across processes,
 * synonyms, shootdowns, and coherence probes, with the structural
 * invariants checked at the end of every sequence.
 */

#include <gtest/gtest.h>

#include <map>
#include <tuple>
#include <vector>

#include "core/virtual_hierarchy.hh"
#include "sim/rng.hh"

namespace gvc
{
namespace
{

/** Parameterized over (seed, fbt_entries) to vary pressure. */
class VcStress : public ::testing::TestWithParam<
                     std::tuple<std::uint64_t, unsigned>>
{
};

TEST_P(VcStress, InvariantsSurviveRandomMixedTraffic)
{
    const auto [seed, fbt_entries] = GetParam();
    SimContext ctx(seed);
    PhysMem pm(std::uint64_t{2} << 30);
    Vm vm(pm);
    Dram dram(ctx, {});
    SocConfig cfg;
    cfg.gpu.num_cus = 4;
    cfg.fbt.entries = fbt_entries;
    cfg.synonym_remap_entries = 64;
    VirtualCacheSystem vc(ctx, cfg, vm, dram);

    Rng rng(seed * 77 + 1);
    const Asid p0 = vm.createProcess();
    const Asid p1 = vm.createProcess();
    const Vaddr buf0 = vm.mmapAnon(p0, 256 * kPageSize);
    const Vaddr buf1 = vm.mmapAnon(p1, 256 * kPageSize);
    // Read-only region with a synonym alias in the same space.
    const Vaddr ro = vm.mmapAnon(p0, 32 * kPageSize, kPermRead);
    const Vaddr ro_alias =
        vm.alias(p0, p0, ro, 32 * kPageSize, kPermRead);

    unsigned outstanding = 0;
    for (int i = 0; i < 3000; ++i) {
        const auto op = rng.below(100);
        if (op < 80) {
            // Random access from a random CU.
            const bool p0_side = rng.chance(0.6);
            const Asid asid = p0_side ? p0 : p1;
            Vaddr va;
            bool store = rng.chance(0.3);
            const auto region = rng.below(10);
            if (!p0_side) {
                va = buf1 + rng.below(256) * kPageSize +
                     rng.below(kLinesPerPage) * kLineSize;
            } else if (region < 7) {
                va = buf0 + rng.below(256) * kPageSize +
                     rng.below(kLinesPerPage) * kLineSize;
            } else {
                // Read-only region, half the time via the alias.
                va = (rng.chance(0.5) ? ro : ro_alias) +
                     rng.below(32) * kPageSize +
                     rng.below(kLinesPerPage) * kLineSize;
                store = false;
            }
            ++outstanding;
            vc.access(unsigned(rng.below(4)), asid, va, store,
                      [&outstanding] { --outstanding; });
            if (rng.chance(0.2))
                ctx.eq.run();
        } else if (op < 90) {
            ctx.eq.run();
            // Shootdown of a random writable page.
            const Vaddr page = buf0 + rng.below(256) * kPageSize;
            vm.protect(p0, page, kPageSize,
                       kPermRead | kPermWrite);
        } else {
            ctx.eq.run();
            // Coherence probe to a random frame of buf1.
            const auto t =
                vm.translate(p1, buf1 + rng.below(256) * kPageSize);
            ASSERT_TRUE(t.has_value());
            vc.coherenceProbe(pageBase(t->ppn) +
                                  rng.below(kLinesPerPage) * kLineSize,
                              rng.chance(0.5));
        }
    }
    ctx.eq.run();
    EXPECT_EQ(outstanding, 0u);

    // Invariant 1: the FBT's BT/FT bijection holds.
    EXPECT_TRUE(vc.fbt().consistent());

    // Invariant 2: FBT inclusion — every L2-resident line's page has a
    // live leading entry whose bit-vector covers the line.
    vc.l2().forEachLine([&](const CacheLineInfo &info) {
        ASSERT_TRUE(
            vc.fbt().hasLeading(info.asid, pageOf(info.line_addr)));
        const auto t = vm.translate(info.asid, info.line_addr);
        ASSERT_TRUE(t.has_value());
        const auto r = vc.fbt().reverseLookup(
            t->ppn, lineInPage(info.line_addr));
        EXPECT_TRUE(r.present);
        EXPECT_TRUE(r.line_cached);
        EXPECT_EQ(r.asid, info.asid);
    });

    // Invariant 3: no duplicate physical lines under different names.
    std::map<Paddr, std::pair<Asid, Vaddr>> seen;
    bool duplicate = false;
    vc.l2().forEachLine([&](const CacheLineInfo &info) {
        const auto t = vm.translate(info.asid, info.line_addr);
        ASSERT_TRUE(t.has_value());
        const Paddr pa = pageBase(t->ppn) |
                         (info.line_addr & kPageMask & ~kLineMask);
        auto [it, fresh] =
            seen.emplace(pa, std::make_pair(info.asid,
                                            info.line_addr));
        if (!fresh)
            duplicate = true;
    });
    EXPECT_FALSE(duplicate)
        << "two virtual names cache the same physical line";

    // Invariant 4: read-only synonyms never produced RW faults.
    EXPECT_EQ(vc.rwFaults(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, VcStress,
    ::testing::Values(std::make_tuple(1ull, 16384u),
                      std::make_tuple(2ull, 16384u),
                      std::make_tuple(3ull, 512u),
                      std::make_tuple(4ull, 128u),
                      std::make_tuple(5ull, 64u)));

TEST(VcDemandPaging, FaultFixerEnablesLazyMappings)
{
    SimContext ctx;
    PhysMem pm(std::uint64_t{1} << 30);
    Vm vm(pm);
    Dram dram(ctx, {});
    SocConfig cfg;
    cfg.gpu.num_cus = 2;
    VirtualCacheSystem vc(ctx, cfg, vm, dram);
    const Asid asid = vm.createProcess();

    // CPU-style demand handler: map pages on first GPU touch.
    unsigned faults_fixed = 0;
    vc.iommu().setFaultFixer([&](Asid a, Vpn vpn) {
        vm.pageTable(a).map(vpn, pm.allocFrame(),
                            kPermRead | kPermWrite);
        ++faults_fixed;
        return true;
    });

    // Touch completely unmapped addresses.
    const Vaddr lazy = 0x7000'0000;
    unsigned done = 0;
    for (int i = 0; i < 4; ++i)
        vc.access(0, asid, lazy + Vaddr(i) * kPageSize, false,
                  [&] { ++done; });
    ctx.eq.run();
    EXPECT_EQ(done, 4u);
    EXPECT_EQ(faults_fixed, 4u);
    EXPECT_TRUE(vc.l2().present(asid, lazy));
    EXPECT_EQ(vc.iommu().faults(), 4u);
}

} // namespace
} // namespace gvc
