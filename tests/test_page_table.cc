/**
 * @file
 * Unit tests for the 4-level radix page table.
 */

#include <gtest/gtest.h>

#include <set>

#include "mem/page_table.hh"

namespace gvc
{
namespace
{

class PageTableTest : public ::testing::Test
{
  protected:
    PhysMem pm_{std::uint64_t{1} << 30};
    PageTable pt_{pm_};
};

TEST_F(PageTableTest, UnmappedTranslatesToNothing)
{
    EXPECT_FALSE(pt_.translate(0x1234).has_value());
}

TEST_F(PageTableTest, MapThenTranslate)
{
    pt_.map(0x1234, 77, kPermRead | kPermWrite);
    const auto t = pt_.translate(0x1234);
    ASSERT_TRUE(t.has_value());
    EXPECT_EQ(t->ppn, 77u);
    EXPECT_EQ(t->perms, kPermRead | kPermWrite);
    EXPECT_FALSE(t->large);
}

TEST_F(PageTableTest, RemapOverwrites)
{
    pt_.map(5, 10, kPermRead);
    pt_.map(5, 20, kPermRead | kPermWrite);
    const auto t = pt_.translate(5);
    ASSERT_TRUE(t.has_value());
    EXPECT_EQ(t->ppn, 20u);
}

TEST_F(PageTableTest, UnmapRemoves)
{
    pt_.map(9, 11, kPermRead);
    EXPECT_TRUE(pt_.unmap(9));
    EXPECT_FALSE(pt_.translate(9).has_value());
    EXPECT_FALSE(pt_.unmap(9));
}

TEST_F(PageTableTest, ProtectChangesPerms)
{
    pt_.map(9, 11, kPermRead | kPermWrite);
    EXPECT_TRUE(pt_.protect(9, kPermRead));
    EXPECT_EQ(pt_.translate(9)->perms, kPermRead);
    EXPECT_FALSE(pt_.protect(12345, kPermRead));
}

TEST_F(PageTableTest, DistantVpnsDoNotCollide)
{
    // VPNs that differ only in high radix bits.
    const Vpn a = Vpn{3} << 27;
    const Vpn b = Vpn{5} << 27;
    pt_.map(a, 100, kPermRead);
    pt_.map(b, 200, kPermRead);
    EXPECT_EQ(pt_.translate(a)->ppn, 100u);
    EXPECT_EQ(pt_.translate(b)->ppn, 200u);
}

TEST_F(PageTableTest, WalkVisitsFourLevelsForSmallPages)
{
    pt_.map(0xABCDE, 42, kPermRead);
    const auto path = pt_.walk(0xABCDE);
    EXPECT_EQ(path.levels, 4u);
    ASSERT_TRUE(path.result.has_value());
    EXPECT_EQ(path.result->ppn, 42u);
    // PTE addresses are distinct and the first lives in the root frame.
    std::set<Paddr> addrs(path.pte_addrs.begin(),
                          path.pte_addrs.begin() + 4);
    EXPECT_EQ(addrs.size(), 4u);
    EXPECT_EQ(path.pte_addrs[0] & ~kPageMask, pt_.rootAddr());
}

TEST_F(PageTableTest, WalkOfUnmappedFaultsEarly)
{
    const auto path = pt_.walk(0x999);
    EXPECT_FALSE(path.result.has_value());
    EXPECT_GE(path.levels, 1u);
}

TEST_F(PageTableTest, LargePageWalkStopsAtLevelThree)
{
    pt_.mapLarge(0x200, 1000, kPermRead | kPermWrite);
    const auto path = pt_.walk(0x200 + 17);
    EXPECT_EQ(path.levels, 3u);
    ASSERT_TRUE(path.result.has_value());
    EXPECT_TRUE(path.result->large);
    EXPECT_EQ(path.result->ppn, 1017u);
    EXPECT_EQ(path.result->base_vpn, 0x200u);
}

TEST_F(PageTableTest, LargePageCoversAllSubpages)
{
    pt_.mapLarge(0x400, 2000, kPermRead);
    for (Vpn off : {Vpn{0}, Vpn{1}, Vpn{255}, Vpn{511}}) {
        const auto t = pt_.translate(0x400 + off);
        ASSERT_TRUE(t.has_value());
        EXPECT_EQ(t->ppn, 2000 + off);
        EXPECT_TRUE(t->large);
    }
    EXPECT_FALSE(pt_.translate(0x400 + 512).has_value());
}

TEST_F(PageTableTest, NodeCountGrowsWithSpread)
{
    const std::size_t before = pt_.nodeCount();
    pt_.map(0, 1, kPermRead);
    pt_.map(Vpn{1} << 27, 2, kPermRead);
    EXPECT_GT(pt_.nodeCount(), before);
}

TEST_F(PageTableTest, UnmapInsideLargePageSplitsPrecisely)
{
    // Unmapping one 4 KB page of a 2 MB leaf demotes it to 512 small
    // leaves first: only that page dies, the other 511 keep their exact
    // frames, and the walk now goes the full four levels.
    pt_.mapLarge(0x600, 3000, kPermRead | kPermWrite);
    EXPECT_TRUE(pt_.unmap(0x600 + 100));
    EXPECT_FALSE(pt_.translate(0x600 + 100).has_value());
    for (Vpn off : {Vpn{0}, Vpn{99}, Vpn{101}, Vpn{511}}) {
        const auto t = pt_.translate(0x600 + off);
        ASSERT_TRUE(t.has_value()) << "off " << off;
        EXPECT_EQ(t->ppn, 3000 + off);
        EXPECT_FALSE(t->large);
    }
    EXPECT_EQ(pt_.walk(0x600).levels, 4u);
}

TEST_F(PageTableTest, ProtectInsideLargePageSplitsPrecisely)
{
    pt_.mapLarge(0x800, 4000, kPermRead | kPermWrite);
    EXPECT_TRUE(pt_.protect(0x800 + 7, kPermRead));
    EXPECT_EQ(pt_.translate(0x800 + 7)->perms, kPermRead);
    EXPECT_EQ(pt_.translate(0x800 + 8)->perms, kPermRead | kPermWrite);
    EXPECT_EQ(pt_.translate(0x800 + 8)->ppn, 4008u);
}

TEST(PageTableDeath, MisalignedLargeMapIsFatal)
{
    PhysMem pm(1 << 26);
    PageTable pt(pm);
    EXPECT_DEATH(pt.mapLarge(0x201, 0, kPermRead), "aligned");
}

} // namespace
} // namespace gvc
