/**
 * @file
 * System-level tests for the reach-generalized translation stack:
 * reach-disabled knobs leave the classic designs bit-identical,
 * contiguity-coalesced fills and 2 MB pages measurably reduce IOMMU
 * translation traffic, Victima stashing serves per-CU misses from the
 * L2 data array, shootdowns inside multi-page entries are precise, and
 * the reach designs replay bit-identically from captured traces.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "harness/results_io.hh"
#include "harness/runner.hh"
#include "tlb/iommu.hh"
#include "trace/kernel_source.hh"
#include "trace/trace.hh"

namespace gvc
{
namespace
{

RunResult
run(const char *workload, MmuDesign d, double scale)
{
    RunConfig cfg;
    cfg.design = d;
    cfg.workload.scale = scale;
    return runWorkload(workload, cfg);
}

/** Lossless JSON dump: equal strings == every field bit-identical. */
std::string
dumpOf(const RunResult &r)
{
    return runResultToJson(r).dump();
}

TEST(ReachSystem, InertReachKnobsKeepBaselineBitIdentical)
{
    // With max_reach 0 the merge knob has no buddy ladder to climb and
    // the coalescer is capped at zero: every counter of the classic
    // baseline must be reproduced exactly (the reach-1 identity).
    RunConfig plain;
    plain.design = MmuDesign::kBaseline512;
    plain.workload.scale = 0.05;
    RunConfig knobs = plain;
    knobs.soc.tlb_merge_on_insert = true;
    knobs.soc.coalesce_max_reach = 3; // clamped by tlb_max_reach == 0
    EXPECT_EQ(dumpOf(runWorkload("pagerank", plain)),
              dumpOf(runWorkload("pagerank", knobs)));
}

TEST(ReachSystem, CoalescedFillsReduceIommuTranslationTraffic)
{
    const RunResult base =
        run("pagerank", MmuDesign::kBaseline512, 0.05);
    const RunResult coal =
        run("pagerank", MmuDesign::kBaseCoalesced, 0.05);
    EXPECT_GT(coal.iommu_coalesced_fills, 0u);
    EXPECT_GT(coal.tlb_reach_hits, 0u);
    // Wide per-CU entries absorb misses that previously reached the
    // shared IOMMU TLB.
    EXPECT_LT(coal.iommu_accesses, base.iommu_accesses);
    EXPECT_LE(coal.tlb_misses, base.tlb_misses);
}

TEST(ReachSystem, TwoMbPagesReduceIommuTranslationTraffic)
{
    // kmeans maps multi-MB arrays: the 2 MB interior policy backs them
    // with large pages, the walker stops at level 3, and reach-9 TLB
    // entries collapse per-CU miss streams.
    const RunResult base = run("kmeans", MmuDesign::kBaseline512, 0.5);
    const RunResult big = run("kmeans", MmuDesign::kBase2MB, 0.5);
    EXPECT_GT(big.large_page_walks, 0u);
    EXPECT_GT(big.tlb_reach_fills, 0u);
    EXPECT_LT(big.iommu_accesses, base.iommu_accesses);
    EXPECT_LT(big.page_walks, base.page_walks);
}

TEST(ReachSystem, VictimaStashServesMissesFromL2)
{
    const RunResult base =
        run("pagerank", MmuDesign::kBaseline512, 0.05);
    const RunResult vic =
        run("pagerank", MmuDesign::kBaseVictima, 0.05);
    EXPECT_GT(vic.victima_stashes, 0u);
    EXPECT_GT(vic.victima_hits, 0u);
    // Every stash probe hit is a translation the IOMMU never sees (the
    // stash also perturbs L2 contents, so only the direction is stable).
    EXPECT_LT(vic.iommu_accesses, base.iommu_accesses);
}

TEST(ReachSystem, ReachDesignsReplayBitIdentically)
{
    // The replay-identity tentpole property must hold for the new
    // designs too: capture once, replay per design, compare every
    // counter (kmeans at scale 0.5 exercises real 2 MB interiors).
    RunConfig cfg;
    cfg.workload.scale = 0.5;
    const trace::Trace t = trace::captureWorkloadTrace(
        "kmeans", cfg.workload, cfg.soc.phys_mem_bytes);
    auto shared = std::make_shared<const trace::Trace>(t);
    for (const MmuDesign d :
         {MmuDesign::kBase2MB, MmuDesign::kBaseCoalesced,
          MmuDesign::kBaseVictima}) {
        cfg.design = d;
        const RunResult live = runWorkload("kmeans", cfg);
        trace::TraceKernelSource source(shared);
        const RunResult replayed = runSource(source, cfg);
        EXPECT_EQ(dumpOf(live), dumpOf(replayed)) << designName(d);
    }
}

// ---------------------------------------------------------------------
// Reach-aware shootdown precision at the IOMMU
// ---------------------------------------------------------------------

class ReachIommuTest : public ::testing::Test
{
  protected:
    ReachIommuTest() : pm_(std::uint64_t{1} << 30), vm_(pm_), dram_(ctx_, {})
    {
        asid_ = vm_.createProcess();
    }

    IommuResponse
    xl(Iommu &io, Vpn vpn)
    {
        IommuResponse out;
        io.translate(asid_, vpn, [&](const IommuResponse &r) { out = r; });
        ctx_.eq.run();
        return out;
    }

    SimContext ctx_;
    PhysMem pm_;
    Vm vm_;
    Dram dram_;
    Asid asid_ = 0;
};

TEST_F(ReachIommuTest, ShootdownInsideCoalescedEntryLeavesNoStaleState)
{
    const Vaddr base = vm_.mmapAnon(asid_, 64 * kPageSize);
    IommuParams p;
    p.tlb_max_reach = kMaxReachLog2;
    p.coalesce_max_reach = 3;
    Iommu io(ctx_, vm_, dram_, p);

    // An 8-page aligned block inside the region, fully mapped with
    // bump-allocated (contiguous) frames: one walk fills reach 3.  The
    // second aligned block, because mapping the region's first page
    // also allocates page-table node frames, splitting that ppn run.
    const Vpn blk = ((pageOf(base) + 7) & ~Vpn{7}) + 8;
    const IommuResponse first = xl(io, blk);
    EXPECT_EQ(first.reach, 3u);
    EXPECT_EQ(io.coalescedFills(), 1u);
    EXPECT_EQ(io.walks(), 1u);

    // Protect one interior 4 KB page: the whole coalesced entry must
    // die, and the next lookup of that page must see the new perms —
    // a stale wide entry would keep translating it as writable.
    const Vpn victim = blk + 3;
    vm_.protect(asid_, Vaddr(victim) << kPageShift, kPageSize,
                kPermRead);
    const IommuResponse after = xl(io, victim);
    EXPECT_FALSE(after.fault);
    EXPECT_EQ(after.perms, kPermRead);
    EXPECT_EQ(io.walks(), 2u);

    // Untouched neighbors still translate to their original frames.
    const IommuResponse nb = xl(io, blk + 4);
    EXPECT_EQ(nb.ppn, first.ppn + 4);
    EXPECT_EQ(nb.perms, kPermRead | kPermWrite);
}

TEST_F(ReachIommuTest, ShootdownInsideLargePageEntryLeavesNoStaleState)
{
    const Vaddr base = vm_.mmapAnonLarge(asid_, kLargePageSize);
    IommuParams p;
    p.tlb_max_reach = kMaxReachLog2;
    Iommu io(ctx_, vm_, dram_, p);

    const Vpn first = pageOf(base);
    const IommuResponse wide = xl(io, first + 10);
    EXPECT_TRUE(wide.large);
    EXPECT_EQ(wide.reach, kMaxReachLog2);

    // One 4 KB protect inside the 2 MB mapping: the page table splits
    // the leaf and the reach-9 entry is shot down whole.
    vm_.protect(asid_, Vaddr(first + 10) << kPageShift, kPageSize,
                kPermRead);
    const IommuResponse after = xl(io, first + 10);
    EXPECT_EQ(after.perms, kPermRead);
    EXPECT_FALSE(after.large); // split demoted the leaf
    const IommuResponse nb = xl(io, first + 11);
    EXPECT_EQ(nb.ppn, wide.ppn + 1);
    EXPECT_EQ(nb.perms, kPermRead | kPermWrite);
}

} // namespace
} // namespace gvc
