/**
 * @file
 * Unit tests for the statistics primitives.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "sim/stats.hh"

namespace gvc
{
namespace
{

TEST(Distribution, MeanAndStdev)
{
    Distribution d;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        d.sample(v);
    EXPECT_DOUBLE_EQ(d.mean(), 5.0);
    EXPECT_NEAR(d.stdev(), 2.0, 1e-9);
    EXPECT_EQ(d.min(), 2.0);
    EXPECT_EQ(d.max(), 9.0);
    EXPECT_EQ(d.count(), 8u);
}

TEST(Distribution, ZeroSamplesInBulk)
{
    Distribution d;
    d.sample(10.0);
    d.sampleZeros(9);
    EXPECT_EQ(d.count(), 10u);
    EXPECT_DOUBLE_EQ(d.mean(), 1.0);
    EXPECT_EQ(d.min(), 0.0);
}

TEST(Distribution, EmptyIsSafe)
{
    Distribution d;
    EXPECT_EQ(d.mean(), 0.0);
    EXPECT_EQ(d.stdev(), 0.0);
    EXPECT_EQ(d.min(), 0.0);
    EXPECT_EQ(d.max(), 0.0);
}

TEST(LinearHistogram, QuantilesAndCdf)
{
    LinearHistogram h(10.0, 10);
    for (int i = 0; i < 100; ++i)
        h.sample(double(i));
    EXPECT_EQ(h.total(), 100u);
    EXPECT_NEAR(h.cdfAt(49.0), 0.5, 1e-9);
    EXPECT_NEAR(h.quantile(0.5), 50.0, 10.0);
    EXPECT_NEAR(h.cdfAt(99.0), 1.0, 1e-9);
}

TEST(LinearHistogram, OverflowBucketCatchesLargeValues)
{
    LinearHistogram h(1.0, 4);
    h.sample(1000.0);
    EXPECT_EQ(h.total(), 1u);
    EXPECT_NEAR(h.cdfAt(1000.0), 1.0, 1e-9);
}

TEST(LinearHistogram, MergeAddsCounts)
{
    LinearHistogram a(1.0, 4), b(1.0, 4);
    a.sample(0.5);
    b.sample(2.5);
    a.merge(b);
    EXPECT_EQ(a.total(), 2u);
    EXPECT_NEAR(a.cdfAt(0.5), 0.5, 1e-9);
}

TEST(IntervalSampler, CountsPerWindow)
{
    IntervalSampler s(100);
    // Window 0: 50 events; window 1: 100 events; windows 2-3: none;
    // window 4: 10 events.
    for (int i = 0; i < 50; ++i)
        s.record(10);
    for (int i = 0; i < 100; ++i)
        s.record(150);
    for (int i = 0; i < 10; ++i)
        s.record(450);
    s.finish(500);
    EXPECT_EQ(s.windows(), 5u);
    EXPECT_NEAR(s.meanPerCycle(), (0.5 + 1.0 + 0.0 + 0.0 + 0.1) / 5.0,
                1e-9);
    EXPECT_NEAR(s.maxPerCycle(), 1.0, 1e-9);
}

TEST(IntervalSampler, FractionAboveThreshold)
{
    IntervalSampler s(10, 1.0);
    // Window 0: 20 events (rate 2 > 1); window 1: 5 events (rate 0.5).
    for (int i = 0; i < 20; ++i)
        s.record(3);
    for (int i = 0; i < 5; ++i)
        s.record(15);
    s.finish(20);
    EXPECT_EQ(s.windows(), 2u);
    EXPECT_NEAR(s.fractionAboveThreshold(), 0.5, 1e-9);
}

TEST(IntervalSampler, LongIdleGapsProduceZeroWindows)
{
    IntervalSampler s(10);
    s.record(5);
    s.record(100005);
    s.finish(100010);
    EXPECT_EQ(s.windows(), 10001u);
    EXPECT_NEAR(s.meanPerCycle(), 2.0 / 100010.0, 1e-7);
}

TEST(Counter, IncrementAndAdd)
{
    Counter c;
    ++c;
    c += 4;
    EXPECT_EQ(c.value, 5u);
    c.reset();
    EXPECT_EQ(c.value, 0u);
}

TEST(StatRegistry, LookupAndDump)
{
    StatRegistry reg;
    Counter c;
    c += 7;
    reg.addCounter("foo.count", &c);
    reg.addScalar("bar.ratio", [] { return 0.5; });
    EXPECT_DOUBLE_EQ(reg.lookup("foo.count"), 7.0);
    EXPECT_DOUBLE_EQ(reg.lookup("bar.ratio"), 0.5);
    EXPECT_TRUE(std::isnan(reg.lookup("missing")));
    EXPECT_EQ(reg.size(), 2u);
}

TEST(LifetimeRecorder, RecordsDurations)
{
    LifetimeRecorder r(10.0, 100);
    r.record(5);
    r.record(15);
    r.record(995);
    EXPECT_EQ(r.distribution().count(), 3u);
    EXPECT_NEAR(r.histogram().cdfAt(20.0), 2.0 / 3.0, 1e-9);
}

} // namespace
} // namespace gvc
