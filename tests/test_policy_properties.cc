/**
 * @file
 * Property/invariant tests for the dead-entry-aware TLB policy
 * subsystem, plus the policy axis' results-schema guarantees:
 *
 *  (a) translation-correctness invariance — a TLB replacement or fill
 *      policy decides *where* a translation is served, never what is
 *      translated: the instruction and translation-request streams are
 *      bit-identical to the LRU/install-all run of the same workload;
 *  (b) TlbRefHist partition exactness — retired residencies equal the
 *      bucket sum, dead-on-arrival entries are exactly bucket 0, across
 *      every design and policy;
 *  (c) trained bypass beats the static next-line heuristic on the dead
 *      fraction of a TLB-thrashing workload;
 *  (d) the documented l1vc-32 warm-run pathology (warm launches cost
 *      MORE IOMMU traffic than cold under LRU — the expected-failure
 *      exception carved out of WarmNeverWorse) exists, and the trained
 *      dead-entry policy flips it;
 *  (e) results schema: the seven new policy counters round-trip
 *      field-exactly, default-policy exports stay byte-identical to the
 *      pre-policy schema, the grid's tlb_policy stamp round-trips, and
 *      gvc_merge's core refuses mixed-policy-axis shards by name.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include "harness/results_io.hh"
#include "harness/runner.hh"
#include "mmu/boundary.hh"

namespace gvc
{
namespace
{

RunConfig
quick(MmuDesign design, double scale = 0.1)
{
    RunConfig cfg;
    cfg.design = design;
    cfg.workload.scale = scale;
    return cfg;
}

/** quick() plus the policy knobs (configFor preserves them). */
RunConfig
withPolicy(MmuDesign design, unsigned repl, unsigned fill,
           double scale = 0.1)
{
    RunConfig cfg = quick(design, scale);
    cfg.soc.tlb_replacement = repl;
    cfg.soc.percu_tlb_fill_policy = fill;
    return cfg;
}

RunResult
runRounds(const std::string &workload, const RunConfig &cfg,
          unsigned rounds)
{
    ScenarioSpec spec;
    spec.rounds = rounds;
    spec.boundary = BoundaryPolicy::keepAll();
    return runScenario(workload, cfg, spec);
}

// ---------------------------------------------------------------------
// (a) Policies never change what is translated, only where
// ---------------------------------------------------------------------

class PolicyInvariance
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>>
{
};

TEST_P(PolicyInvariance, TranslationStreamMatchesLruRun)
{
    const auto [repl, fill] = GetParam();
    for (const MmuDesign d :
         {MmuDesign::kBaseline512, MmuDesign::kL1Vc32}) {
        const RunResult lru = runWorkload("pagerank", quick(d));
        const RunResult alt =
            runWorkload("pagerank", withPolicy(d, repl, fill));
        // The GPU executes the same program against the same VM image:
        // instruction counts cannot depend on the TLB policy.
        // (Misses, walks, and timing legitimately do.)
        EXPECT_EQ(alt.instructions, lru.instructions) << designName(d);
        EXPECT_EQ(alt.mem_instructions, lru.mem_instructions)
            << designName(d);
        EXPECT_DOUBLE_EQ(alt.lines_per_mem_inst,
                         lru.lines_per_mem_inst)
            << designName(d);
        if (d == MmuDesign::kBaseline512) {
            // On the baseline, every memory access translates before
            // it touches a cache, so the translation-request and L1
            // access streams are policy-invariant too, and every
            // per-CU miss reaches the IOMMU exactly once.  (The
            // L1-only VC design translates on L1 *misses*, and
            // policy-induced timing shifts legitimately reshape that
            // filtered stream — which is the whole l1vc-32 story.)
            EXPECT_EQ(alt.tlb_accesses, lru.tlb_accesses);
            EXPECT_EQ(alt.l1_accesses, lru.l1_accesses);
            EXPECT_EQ(alt.iommu_accesses, alt.tlb_misses);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    ReplacementAndFill, PolicyInvariance,
    ::testing::Values(
        std::make_tuple(kTlbReplSrrip, kTlbFillLru),
        std::make_tuple(kTlbReplBrrip, kTlbFillLru),
        std::make_tuple(kTlbReplDrrip, kTlbFillLru),
        std::make_tuple(kTlbReplLru, kTlbFillBypassTrained),
        std::make_tuple(kTlbReplSrrip, kTlbFillBypassTrained)));

// ---------------------------------------------------------------------
// (b) TlbRefHist is an exact partition of retired residencies
// ---------------------------------------------------------------------

void
expectExactPartition(const TlbRefHist &h, const std::string &what)
{
    std::uint64_t sum = 0;
    for (const std::uint64_t b : h.buckets)
        sum += b;
    EXPECT_EQ(h.retired, sum) << what;
    EXPECT_EQ(h.dead, h.buckets[0]) << what;
    EXPECT_LE(h.dead, h.retired) << what;
}

TEST(RefHistPartition, ExactAcrossAllDesigns)
{
    for (const MmuDesign d :
         {MmuDesign::kIdeal, MmuDesign::kBaseline512,
          MmuDesign::kBaseline16K, MmuDesign::kBaselineLargeTlb,
          MmuDesign::kVcNoOpt, MmuDesign::kVcOpt, MmuDesign::kL1Vc32,
          MmuDesign::kL1Vc128, MmuDesign::kBase2MB,
          MmuDesign::kBaseCoalesced, MmuDesign::kBaseVictima}) {
        const RunResult r = runWorkload("bfs", quick(d, 0.05));
        expectExactPartition(r.percu_tlb_refs,
                             std::string("percu ") + designName(d));
        expectExactPartition(r.iommu_tlb_refs,
                             std::string("iommu ") + designName(d));
    }
}

TEST(RefHistPartition, ExactAcrossAllPolicies)
{
    for (const unsigned repl :
         {kTlbReplLru, kTlbReplSrrip, kTlbReplBrrip, kTlbReplDrrip}) {
        for (const unsigned fill :
             {kTlbFillLru, kTlbFillBypassDead,
              kTlbFillBypassTrained}) {
            const RunResult r = runWorkload(
                "pagerank",
                withPolicy(MmuDesign::kBaseline512, repl, fill, 0.05));
            const std::string what =
                std::string(tlbReplacementName(repl)) + "/" +
                tlbFillPolicyName(fill);
            expectExactPartition(r.percu_tlb_refs, "percu " + what);
            expectExactPartition(r.iommu_tlb_refs, "iommu " + what);
        }
    }
}

// ---------------------------------------------------------------------
// (c) The trained predictor outfilters the static next-line heuristic
// ---------------------------------------------------------------------

TEST(DeadEntryFiltering, TrainedBypassBeatsStaticNextLine)
{
    // pagerank thrashes the 32-entry per-CU TLBs (miss ratio > 40%
    // under LRU), which is exactly the population the dead-entry
    // machinery exists for.  The trained predictor must let strictly
    // fewer dead residencies through than either install-all or the
    // static next-line heuristic — it bypasses by observed reuse
    // history, not by a fill-order accident — and must actually
    // bypass something.  (The dead *fraction* of what does retire is
    // not comparable across fill policies: dead-first eviction
    // deliberately retires zero-ref entries early, so the trained
    // policy's retirees skew dead even as their absolute count
    // collapses.)
    const RunResult install_all = runWorkload(
        "pagerank", withPolicy(MmuDesign::kBaseline512, kTlbReplLru,
                               kTlbFillLru));
    const RunResult static_nl = runWorkload(
        "pagerank", withPolicy(MmuDesign::kBaseline512, kTlbReplLru,
                               kTlbFillBypassDead));
    const RunResult trained = runWorkload(
        "pagerank", withPolicy(MmuDesign::kBaseline512, kTlbReplLru,
                               kTlbFillBypassTrained));
    EXPECT_GT(trained.tlb_fill_bypasses, 0u);
    EXPECT_GT(trained.tlb_pred_true_pos, 0u);
    EXPECT_LT(trained.percu_tlb_refs.dead,
              static_nl.percu_tlb_refs.dead);
    EXPECT_LT(trained.percu_tlb_refs.dead,
              install_all.percu_tlb_refs.dead);
    // Filtering the dead population must not cost hit rate: the
    // trained policy also misses less than both on this workload.
    EXPECT_LT(trained.tlb_misses, static_nl.tlb_misses);
    EXPECT_LT(trained.tlb_misses, install_all.tlb_misses);
    // Sampling installs are 1-in-kSamplePeriod of predicted-dead
    // fills; their scoring can never exceed the retired population.
    EXPECT_LE(trained.tlb_pred_true_pos + trained.tlb_pred_false_pos,
              trained.percu_tlb_refs.retired);
}

// ---------------------------------------------------------------------
// (d) The l1vc-32 warm-run pathology, and its cure
// ---------------------------------------------------------------------

TEST(L1Vc32WarmPathology, ExistsUnderLruAndTrainedBypassFlipsIt)
{
    // Expected-failure fixture: WarmNeverWorse deliberately excludes
    // kL1Vc32 because a warm tiny L1-only virtual cache filters the
    // high-locality references out of the translation stream, the
    // per-CU TLBs stop being refreshed, and warm launches miss MORE.
    // This pins the pathology down as a positive assertion — if it
    // ever stops reproducing, the WarmNeverWorse exception comment is
    // stale and kL1Vc32 belongs back in that suite.
    const RunResult lru =
        runRounds("pagerank", quick(MmuDesign::kL1Vc32), 3);
    ASSERT_EQ(lru.kernels.size(), 3u);
    const std::uint64_t cold = lru.kernels[0].iommu_accesses;
    EXPECT_GT(lru.kernels[1].iommu_accesses, cold);
    EXPECT_GT(lru.kernels[2].iommu_accesses, cold);

    // The cure: the trained dead-entry policy bypasses the
    // never-rereferenced fills that were flushing the hot entries, so
    // warm launches get cheaper than cold again.
    const RunResult trained = runRounds(
        "pagerank",
        withPolicy(MmuDesign::kL1Vc32, kTlbReplLru,
                   kTlbFillBypassTrained),
        3);
    ASSERT_EQ(trained.kernels.size(), 3u);
    const std::uint64_t tcold = trained.kernels[0].iommu_accesses;
    EXPECT_LT(trained.kernels[1].iommu_accesses, tcold);
    EXPECT_LT(trained.kernels[2].iommu_accesses, tcold);
}

// ---------------------------------------------------------------------
// (e) Results schema: policy counters and the tlb_policy axis stamp
// ---------------------------------------------------------------------

ResultRecord
policyRecord(const std::string &workload, std::uint64_t salt)
{
    ResultRecord rec;
    rec.cfg.design = MmuDesign::kBaseline512;
    rec.cfg.workload.scale = 0.25;
    rec.cfg.workload.seed = 0x5eed;
    rec.result.workload = workload;
    rec.result.design = MmuDesign::kBaseline512;
    rec.result.exec_ticks = 1000 + salt;
    rec.result.instructions = 77 * salt;
    // The seven policy counters, with values past 2^53 to prove the
    // JSON layer keeps u64 lexemes exact.
    rec.result.tlb_fill_bypasses = (1ull << 53) + 11 * salt;
    rec.result.tlb_dead_first_evictions = (1ull << 54) + 13 * salt;
    rec.result.tlb_pred_true_pos = (1ull << 55) + 17 * salt;
    rec.result.tlb_pred_false_pos = (1ull << 56) + 19 * salt;
    rec.result.iommu_fill_bypasses = (1ull << 57) + 23 * salt;
    rec.result.iommu_dead_first_evictions = (1ull << 58) + 29 * salt;
    rec.result.iommu_pred_true_pos = (1ull << 59) + 31 * salt;
    rec.result.iommu_pred_false_pos = (1ull << 60) + 37 * salt;
    return rec;
}

TEST(PolicySchema, CountersRoundTripFieldExactly)
{
    const ResultRecord rec = policyRecord("alpha", 7);
    ResultRecord back;
    std::string err;
    ASSERT_TRUE(resultRecordFromJson(
        Json::parse(resultRecordToJson(rec).dump(2), &err), back,
        &err))
        << err;
    EXPECT_EQ(back.result.tlb_fill_bypasses,
              rec.result.tlb_fill_bypasses);
    EXPECT_EQ(back.result.tlb_dead_first_evictions,
              rec.result.tlb_dead_first_evictions);
    EXPECT_EQ(back.result.tlb_pred_true_pos,
              rec.result.tlb_pred_true_pos);
    EXPECT_EQ(back.result.tlb_pred_false_pos,
              rec.result.tlb_pred_false_pos);
    EXPECT_EQ(back.result.iommu_fill_bypasses,
              rec.result.iommu_fill_bypasses);
    EXPECT_EQ(back.result.iommu_dead_first_evictions,
              rec.result.iommu_dead_first_evictions);
    EXPECT_EQ(back.result.iommu_pred_true_pos,
              rec.result.iommu_pred_true_pos);
    EXPECT_EQ(back.result.iommu_pred_false_pos,
              rec.result.iommu_pred_false_pos);
    // ...and the re-export is byte-identical.
    EXPECT_EQ(resultRecordToJson(back).dump(),
              resultRecordToJson(rec).dump());
}

TEST(PolicySchema, DefaultPolicyExportsCarryNoPolicyKeys)
{
    // A record with all-zero policy counters (the default-policy case)
    // must serialize without any of the new keys — that is what keeps
    // every pre-policy export byte-identical.
    ResultRecord rec = policyRecord("alpha", 7);
    rec.result.tlb_fill_bypasses = 0;
    rec.result.tlb_dead_first_evictions = 0;
    rec.result.tlb_pred_true_pos = 0;
    rec.result.tlb_pred_false_pos = 0;
    rec.result.iommu_fill_bypasses = 0;
    rec.result.iommu_dead_first_evictions = 0;
    rec.result.iommu_pred_true_pos = 0;
    rec.result.iommu_pred_false_pos = 0;
    const std::string dump = resultRecordToJson(rec).dump();
    for (const char *key :
         {"tlb_fill_bypasses", "dead_first_evictions", "pred_true_pos",
          "pred_false_pos"}) {
        EXPECT_EQ(dump.find(key), std::string::npos) << key;
    }
}

TEST(PolicySchema, TlbPolicyStampCanonicalForms)
{
    SocConfig soc;
    EXPECT_EQ(tlbPolicyStamp(soc), "");
    soc.tlb_replacement = kTlbReplSrrip;
    EXPECT_EQ(tlbPolicyStamp(soc), "repl=srrip");
    soc.percu_tlb_fill_policy = kTlbFillBypassTrained;
    EXPECT_EQ(tlbPolicyStamp(soc), "repl=srrip,fill=bypass-trained");
    soc.iommu_tlb_fill_policy = kTlbFillBypassDead;
    EXPECT_EQ(tlbPolicyStamp(soc),
              "repl=srrip,fill=bypass-trained,iommu-fill=bypass-dead");
    soc.tlb_replacement = kTlbReplLru;
    soc.percu_tlb_fill_policy = kTlbFillLru;
    EXPECT_EQ(tlbPolicyStamp(soc), "iommu-fill=bypass-dead");
}

ExportMeta
stampMeta(const std::string &stamp)
{
    ExportMeta meta;
    meta.workloads = {"alpha", "beta"};
    meta.designs = {"ideal"};
    meta.scale = 0.25;
    meta.seed = 0x5eed;
    meta.jobs = 2;
    meta.tlb_policy = stamp;
    return meta;
}

ResultRecord
gridRecord(const std::string &workload)
{
    ResultRecord rec;
    rec.cfg.design = MmuDesign::kIdeal;
    rec.cfg.workload.scale = 0.25;
    rec.cfg.workload.seed = 0x5eed;
    rec.result.workload = workload;
    rec.result.design = MmuDesign::kIdeal;
    rec.result.exec_ticks = workload.size();
    return rec;
}

Json
shardDoc(const std::string &stamp, unsigned index)
{
    ExportMeta meta = stampMeta(stamp);
    meta.shard_index = index;
    meta.shard_count = 2;
    return resultsToJson(meta,
                         {gridRecord(index == 0 ? "alpha" : "beta")});
}

TEST(PolicySchema, TlbPolicyStampRoundTripsAndStaysOffByDefault)
{
    // Stamped grid: survives export -> import.
    const Json doc =
        resultsToJson(stampMeta("repl=drrip"),
                      {gridRecord("alpha"), gridRecord("beta")});
    std::string err;
    ExportMeta back;
    std::vector<ResultRecord> records;
    ASSERT_TRUE(resultsFromJson(Json::parse(doc.dump(2), &err), back,
                                records, &err))
        << err;
    EXPECT_EQ(back.tlb_policy, "repl=drrip");

    // Unstamped grid: the key is absent entirely (byte-identity with
    // pre-policy documents), and imports as the default.
    const Json plain = resultsToJson(
        stampMeta(""), {gridRecord("alpha"), gridRecord("beta")});
    EXPECT_EQ(plain.find("grid")->find("tlb_policy"), nullptr);
    ExportMeta plain_back;
    std::vector<ResultRecord> plain_records;
    ASSERT_TRUE(resultsFromJson(Json::parse(plain.dump(2), &err),
                                plain_back, plain_records, &err))
        << err;
    EXPECT_EQ(plain_back.tlb_policy, "");
}

TEST(PolicySchema, MergeRefusesMixedPolicyAxisShardsByName)
{
    // Same grid, same seed, one shard swept under SRRIP and one under
    // the defaults: these measured different machines, and the merge
    // core must say so instead of fabricating a half-and-half grid.
    std::string err;
    Json merged;
    EXPECT_FALSE(mergeResults(
        {shardDoc("repl=srrip", 0), shardDoc("", 1)}, merged, &err));
    EXPECT_NE(err.find("tlb policy axis"), std::string::npos) << err;

    // Positive control: matching stamps merge fine and keep the stamp.
    ASSERT_TRUE(mergeResults({shardDoc("repl=srrip", 0),
                              shardDoc("repl=srrip", 1)},
                             merged, &err))
        << err;
    const Json *grid = merged.find("grid");
    ASSERT_NE(grid, nullptr);
    const Json *stamp = grid->find("tlb_policy");
    ASSERT_NE(stamp, nullptr);
    EXPECT_EQ(stamp->asString(), "repl=srrip");
}

} // namespace
} // namespace gvc
