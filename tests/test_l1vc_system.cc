/**
 * @file
 * Integration tests for the L1-only virtual cache design (Figure 11's
 * comparison point) and its line-leading registry.
 */

#include <gtest/gtest.h>

#include "mmu/l1vc_system.hh"

namespace gvc
{
namespace
{

TEST(LineLeadingRegistry, RefCountingAndLeadership)
{
    LineLeadingRegistry reg;
    EXPECT_FALSE(reg.lookup(0x1000).has_value());
    reg.fill(0x1000, 1, 0xAA000);
    reg.fill(0x1000, 2, 0xBB000); // second copy keeps the first leader
    const auto lead = reg.lookup(0x1000);
    ASSERT_TRUE(lead.has_value());
    EXPECT_EQ(lead->asid, 1u);
    EXPECT_EQ(lead->line_va, 0xAA000u);
    reg.evict(0x1000);
    EXPECT_TRUE(reg.lookup(0x1000).has_value());
    reg.evict(0x1000);
    EXPECT_FALSE(reg.lookup(0x1000).has_value());
}

class L1VcTest : public ::testing::Test
{
  protected:
    L1VcTest() : pm_(std::uint64_t{1} << 30), vm_(pm_), dram_(ctx_, {})
    {
        cfg_.gpu.num_cus = 2;
        sys_ = std::make_unique<L1OnlyVcSystem>(ctx_, cfg_, vm_, dram_);
        asid_ = vm_.createProcess();
        base_ = vm_.mmapAnon(asid_, 256 * kPageSize);
    }

    void
    access(Vaddr va, bool store = false, unsigned cu = 0,
           std::optional<Asid> asid = std::nullopt)
    {
        bool done = false;
        sys_->access(cu, asid.value_or(asid_), lineAlign(va), store,
                     [&] { done = true; });
        ctx_.eq.run();
        EXPECT_TRUE(done);
    }

    SimContext ctx_;
    PhysMem pm_;
    Vm vm_;
    Dram dram_;
    SocConfig cfg_;
    std::unique_ptr<L1OnlyVcSystem> sys_;
    Asid asid_ = 0;
    Vaddr base_ = 0;
};

TEST_F(L1VcTest, L1HitSkipsTlbEntirely)
{
    access(base_);
    const auto tlb_acc = sys_->perCuTlb(0).accesses();
    access(base_);
    EXPECT_EQ(sys_->perCuTlb(0).accesses(), tlb_acc);
}

TEST_F(L1VcTest, L1MissConsultsTlbBeforePhysicalL2)
{
    access(base_);
    EXPECT_EQ(sys_->perCuTlb(0).accesses(), 1u);
    EXPECT_EQ(sys_->perCuTlb(0).misses(), 1u);
    // Data cached virtually in the L1, physically in the L2.
    EXPECT_TRUE(sys_->l1(0).present(asid_, base_));
    const auto pa = pageBase(vm_.translate(asid_, base_)->ppn);
    EXPECT_TRUE(sys_->caches().l2().present(0, pa));
}

TEST_F(L1VcTest, SecondLineOfPageHitsTlb)
{
    access(base_);
    access(base_ + kLineSize);
    EXPECT_EQ(sys_->perCuTlb(0).misses(), 1u);
    EXPECT_EQ(sys_->perCuTlb(0).hits(), 1u);
}

TEST_F(L1VcTest, SynonymReplaysWithLeadingName)
{
    const Vaddr alias =
        vm_.alias(asid_, asid_, base_, kPageSize, kPermRead);
    access(base_);
    access(alias); // same physical line under a second name
    EXPECT_EQ(sys_->synonymReplays(), 1u);
    // Only the leading name is cached.
    EXPECT_TRUE(sys_->l1(0).present(asid_, base_));
    EXPECT_FALSE(sys_->l1(0).present(asid_, alias));
}

TEST_F(L1VcTest, ShootdownPurgesTlbAndL1)
{
    access(base_);
    vm_.protect(asid_, base_, kPageSize, kPermRead);
    EXPECT_FALSE(sys_->perCuTlb(0).present(asid_, pageOf(base_)));
    EXPECT_FALSE(sys_->l1(0).present(asid_, base_));
    EXPECT_FALSE(sys_->registry().lookup(
        pageBase(vm_.translate(asid_, base_)->ppn)) .has_value());
}

TEST_F(L1VcTest, StoresGoThroughToPhysicalL2)
{
    access(base_, /*store=*/true);
    const auto pa = pageBase(vm_.translate(asid_, base_)->ppn);
    EXPECT_FALSE(sys_->l1(0).present(asid_, base_)); // WT no-allocate
    EXPECT_TRUE(sys_->caches().l2().present(0, pa));
}

TEST_F(L1VcTest, RegistryTracksCopiesAcrossCus)
{
    access(base_, false, 0);
    access(base_, false, 1);
    const auto pa = pageBase(vm_.translate(asid_, base_)->ppn);
    const auto lead = sys_->registry().lookup(pa);
    ASSERT_TRUE(lead.has_value());
    EXPECT_EQ(lead->line_va, base_);
}

} // namespace
} // namespace gvc
