/**
 * @file
 * Unit tests for the physical frame allocator.
 */

#include <gtest/gtest.h>

#include <set>

#include "mem/phys_mem.hh"

namespace gvc
{
namespace
{

TEST(PhysMem, FrameZeroIsReserved)
{
    PhysMem pm(1 << 20);
    EXPECT_NE(pm.allocFrame(), 0u);
}

TEST(PhysMem, FramesAreUnique)
{
    PhysMem pm(1 << 20); // 256 frames
    std::set<Ppn> seen;
    for (int i = 0; i < 200; ++i)
        EXPECT_TRUE(seen.insert(pm.allocFrame()).second);
}

TEST(PhysMem, FreeListRecycles)
{
    PhysMem pm(1 << 20);
    const Ppn a = pm.allocFrame();
    const Ppn b = pm.allocFrame();
    pm.freeFrame(a);
    EXPECT_EQ(pm.allocFrame(), a);
    pm.freeFrame(b);
    EXPECT_EQ(pm.allocFrame(), b);
}

TEST(PhysMem, TracksUsage)
{
    PhysMem pm(1 << 20);
    EXPECT_EQ(pm.framesInUse(), 0u);
    const Ppn a = pm.allocFrame();
    pm.allocFrame();
    EXPECT_EQ(pm.framesInUse(), 2u);
    pm.freeFrame(a);
    EXPECT_EQ(pm.framesInUse(), 1u);
}

TEST(PhysMem, ContiguousAllocationIsContiguous)
{
    PhysMem pm(8 << 20);
    const Ppn base = pm.allocContiguous(512);
    const Ppn next = pm.allocFrame();
    EXPECT_EQ(next, base + 512);
}

TEST(PhysMemDeathTest, ExhaustionIsFatal)
{
    PhysMem pm(4 * kPageSize); // 3 usable frames
    pm.allocFrame();
    pm.allocFrame();
    pm.allocFrame();
    EXPECT_DEATH(pm.allocFrame(), "out of physical memory");
}

TEST(PhysMemDeathTest, DoubleRangeFreePanics)
{
    PhysMem pm(1 << 20);
    pm.allocFrame();
    EXPECT_DEATH(pm.freeFrame(9999), "invalid frame");
}

} // namespace
} // namespace gvc
