# CLI smoke test: run a 3-kernel warm-cache scenario, record it into a
# .gvct v2 trace, replay the trace, and require the replayed RunResult
# JSON (cumulative *and* per-kernel stats) to be byte-identical to the
# live scenario run.  Mirrors trace_smoke.cmake for the scenario layer.

set(trace "${WORK_DIR}/smoke_scenario.gvct")

function(run_checked)
    execute_process(COMMAND ${ARGN} RESULT_VARIABLE rc
                    OUTPUT_QUIET)
    if(NOT rc EQUAL 0)
        string(JOIN " " cmd ${ARGN})
        message(FATAL_ERROR "command failed (${rc}): ${cmd}")
    endif()
endfunction()

foreach(boundary keep-all shootdown)
    run_checked(${GVC_RUN} -w pagerank -d vc-opt --scale 0.05
                --kernels 3 --boundary ${boundary}
                --trace-out ${trace}
                --json ${WORK_DIR}/smoke_scenario_live.json)
    run_checked(${GVC_RUN} --trace-in ${trace} -d vc-opt
                --json ${WORK_DIR}/smoke_scenario_replay.json)
    execute_process(
        COMMAND ${CMAKE_COMMAND} -E compare_files
                ${WORK_DIR}/smoke_scenario_live.json
                ${WORK_DIR}/smoke_scenario_replay.json
        RESULT_VARIABLE diff_rc)
    if(NOT diff_rc EQUAL 0)
        message(FATAL_ERROR
                "replayed scenario differs from live run (${boundary})")
    endif()
endforeach()

message(STATUS "scenario record+replay bit-identical under both "
               "boundary policies")
