# CLI smoke test: record a small workload once, replay it under two
# designs, and require the replayed RunResult JSON to be byte-identical
# to a live gvc_run of the same (workload, design).  Mirrors the CI
# record+replay step so the property is checked by `ctest` locally too.

set(trace "${WORK_DIR}/smoke_mis.gvct")

function(run_checked)
    execute_process(COMMAND ${ARGN} RESULT_VARIABLE rc
                    OUTPUT_QUIET)
    if(NOT rc EQUAL 0)
        string(JOIN " " cmd ${ARGN})
        message(FATAL_ERROR "command failed (${rc}): ${cmd}")
    endif()
endfunction()

run_checked(${GVC_TRACE} record -w mis -o ${trace} --scale 0.05)
run_checked(${GVC_TRACE} info ${trace})

foreach(design ideal vc-opt)
    run_checked(${GVC_TRACE} replay ${trace} -d ${design} --quiet
                --json ${WORK_DIR}/smoke_replay_${design}.json)
    run_checked(${GVC_RUN} -w mis -d ${design} --scale 0.05
                --json ${WORK_DIR}/smoke_live_${design}.json)
    execute_process(
        COMMAND ${CMAKE_COMMAND} -E compare_files
                ${WORK_DIR}/smoke_replay_${design}.json
                ${WORK_DIR}/smoke_live_${design}.json
        RESULT_VARIABLE diff_rc)
    if(NOT diff_rc EQUAL 0)
        message(FATAL_ERROR
                "replayed RunResult differs from live run for ${design}")
    endif()
endforeach()

message(STATUS "record+replay bit-identical under both designs")
