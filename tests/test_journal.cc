/**
 * @file
 * Sweep checkpoint journal (`.gvcj`): round trips through the writer
 * and strict reader, crash-shaped corruption (truncation at every
 * framing boundary, digest flips, foreign magic/version), and the
 * grid-identity check that stops `--resume` from continuing a
 * different sweep — mirroring the `.gvct` reader's error-path tests.
 */

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "harness/journal.hh"
#include "harness/results_io.hh"

using namespace gvc;

namespace
{

/** Fabricated distinctive cell, in the merge tests' style. */
ResultRecord
makeRecord(const std::string &workload, MmuDesign design,
           std::uint64_t salt)
{
    ResultRecord rec;
    rec.cfg.design = design;
    rec.cfg.workload.scale = 0.25;
    rec.cfg.workload.seed = 0x5eed;
    rec.result.workload = workload;
    rec.result.design = design;
    rec.result.exec_ticks = 0xdeadbeef00000000ull + salt;
    rec.result.instructions = 7919 * salt + 13;
    rec.result.mem_instructions = 997 * salt + 5;
    rec.result.tlb_accesses = 401 * salt;
    rec.result.tlb_misses = 31 * salt;
    rec.result.iommu_accesses = 211 * salt + 1;
    rec.result.page_walks = 17 * salt;
    rec.result.l1_accesses = 1009 * salt + 2;
    rec.result.l2_accesses = 503 * salt + 3;
    rec.result.dram_accesses = 251 * salt + 4;
    rec.result.dram_bytes = 16064 * salt + 256;
    rec.result.lines_per_mem_inst = 1.25 + 0.001 * double(salt);
    rec.result.tlb_miss_ratio = 0.0625 * double(salt % 3);
    rec.result.iommu_apc_mean = 0.5 + 0.01 * double(salt);
    rec.result.l1_hit_ratio = 0.75;
    rec.result.l2_hit_ratio = 0.5;
    rec.result.tlb_breakdown.miss_l1_hit = 3 * salt;
    rec.result.tlb_breakdown.miss_l2_hit = 2 * salt;
    rec.result.tlb_breakdown.miss_l2_miss = salt;
    return rec;
}

ExportMeta
testMeta()
{
    ExportMeta meta;
    meta.workloads = {"alpha", "beta"};
    meta.designs = {"ideal", "vc_opt"};
    meta.scale = 0.25;
    meta.seed = 0x5eed;
    meta.jobs = 3;
    return meta;
}

/** A complete in-memory journal image: header plus two records. */
std::vector<std::uint8_t>
testImage()
{
    std::vector<std::uint8_t> image = journalHeader(testMeta());
    const auto f1 =
        journalFrame("cell-a", makeRecord("alpha", MmuDesign::kIdeal, 1));
    const auto f2 =
        journalFrame("cell-b", makeRecord("beta", MmuDesign::kVcOpt, 2));
    image.insert(image.end(), f1.begin(), f1.end());
    image.insert(image.end(), f2.begin(), f2.end());
    return image;
}

std::string
tempPath(const std::string &name)
{
    return ::testing::TempDir() + name;
}

} // namespace

// ---------------------------------------------------------------------
// Round trips
// ---------------------------------------------------------------------

TEST(Journal, WriterReaderRoundTrip)
{
    const std::string path = tempPath("journal_roundtrip.gvcj");
    const ResultRecord r1 = makeRecord("alpha", MmuDesign::kIdeal, 1);
    const ResultRecord r2 = makeRecord("beta", MmuDesign::kVcOpt, 2);

    {
        JournalWriter writer;
        std::string err;
        ASSERT_TRUE(writer.create(path, testMeta(), &err)) << err;
        ASSERT_TRUE(writer.append("cell-a", r1, &err)) << err;
        ASSERT_TRUE(writer.append("cell-b", r2, &err)) << err;
    }

    ExportMeta meta;
    std::vector<JournalEntry> entries;
    std::string err;
    ASSERT_TRUE(readJournal(path, meta, entries, &err)) << err;

    EXPECT_EQ(meta.generator, "gvc_sweep");
    EXPECT_EQ(meta.workloads, (std::vector<std::string>{"alpha", "beta"}));
    EXPECT_EQ(meta.designs, (std::vector<std::string>{"ideal", "vc_opt"}));
    EXPECT_DOUBLE_EQ(meta.scale, 0.25);
    EXPECT_EQ(meta.seed, 0x5eedu);
    EXPECT_EQ(meta.jobs, 3u);
    EXPECT_EQ(meta.shard_index, 0u);
    EXPECT_EQ(meta.shard_count, 1u);
    EXPECT_TRUE(meta.shard_assignment.empty());
    EXPECT_EQ(meta.shard_cost_digest, 0u);

    ASSERT_EQ(entries.size(), 2u);
    EXPECT_EQ(entries[0].key, "cell-a");
    EXPECT_EQ(entries[1].key, "cell-b");
    // Byte-identical record re-serialization covers every field at
    // once — this is what makes resumed exports byte-identical.
    EXPECT_EQ(resultRecordToJson(entries[0].record).dump(2),
              resultRecordToJson(r1).dump(2));
    EXPECT_EQ(resultRecordToJson(entries[1].record).dump(2),
              resultRecordToJson(r2).dump(2));
}

TEST(Journal, OpenAppendContinuesAnExistingJournal)
{
    const std::string path = tempPath("journal_append.gvcj");
    std::string err;
    {
        JournalWriter writer;
        ASSERT_TRUE(writer.create(path, testMeta(), &err)) << err;
        ASSERT_TRUE(writer.append(
            "cell-a", makeRecord("alpha", MmuDesign::kIdeal, 1), &err))
            << err;
    }
    {
        // A resumed invocation reopens the same file and appends.
        JournalWriter writer;
        ASSERT_TRUE(writer.openAppend(path, &err)) << err;
        ASSERT_TRUE(writer.append(
            "cell-b", makeRecord("beta", MmuDesign::kVcOpt, 2), &err))
            << err;
    }

    ExportMeta meta;
    std::vector<JournalEntry> entries;
    ASSERT_TRUE(readJournal(path, meta, entries, &err)) << err;
    ASSERT_EQ(entries.size(), 2u);
    EXPECT_EQ(entries[0].key, "cell-a");
    EXPECT_EQ(entries[1].key, "cell-b");
}

TEST(Journal, AssignmentStampRoundTrips)
{
    ExportMeta meta = testMeta();
    meta.shard_index = 1;
    meta.shard_count = 3;
    meta.shard_assignment = "lpt";
    meta.shard_cost_digest = 0xabcdef0123456789ull;
    const std::vector<std::uint8_t> image = journalHeader(meta);

    ExportMeta got;
    std::vector<JournalEntry> entries;
    std::string err;
    ASSERT_TRUE(parseJournal(image.data(), image.size(), got, entries,
                             &err))
        << err;
    EXPECT_EQ(got.shard_index, 1u);
    EXPECT_EQ(got.shard_count, 3u);
    EXPECT_EQ(got.shard_assignment, "lpt");
    EXPECT_EQ(got.shard_cost_digest, 0xabcdef0123456789ull);
    EXPECT_TRUE(entries.empty());
}

TEST(Journal, ResultRecordWrapperRejectsGarbage)
{
    ResultRecord rec;
    std::string err;
    EXPECT_FALSE(resultRecordFromJson(Json(), rec, &err));
    EXPECT_FALSE(err.empty());

    Json not_a_record = Json::object();
    not_a_record.set("workload", "alpha");
    EXPECT_FALSE(resultRecordFromJson(not_a_record, rec, &err));
    EXPECT_FALSE(err.empty());
}

// ---------------------------------------------------------------------
// Corruption paths (each must fail with a named error)
// ---------------------------------------------------------------------

TEST(Journal, TruncationAtEveryFramingBoundaryIsNamed)
{
    const std::vector<std::uint8_t> image = testImage();
    const std::vector<std::uint8_t> header = journalHeader(testMeta());
    const std::size_t frame1 = header.size();

    ExportMeta meta;
    std::vector<JournalEntry> entries;
    std::string err;

    // Mid fixed header (shorter than magic+version+digest+size).
    EXPECT_FALSE(parseJournal(image.data(), 10, meta, entries, &err));
    EXPECT_NE(err.find("truncated header"), std::string::npos) << err;

    // Mid meta payload.
    EXPECT_FALSE(
        parseJournal(image.data(), header.size() - 1, meta, entries,
                     &err));
    EXPECT_NE(err.find("truncated meta payload"), std::string::npos)
        << err;

    // Mid record frame header (size+digest prefix cut short).
    EXPECT_FALSE(
        parseJournal(image.data(), frame1 + 5, meta, entries, &err));
    EXPECT_NE(err.find("truncated record frame header"),
              std::string::npos)
        << err;

    // Mid record payload — the kill-during-write shape `--resume`
    // must refuse rather than resume from a half-written record.
    EXPECT_FALSE(
        parseJournal(image.data(), frame1 + 20, meta, entries, &err));
    EXPECT_NE(err.find("truncated record payload"), std::string::npos)
        << err;
}

TEST(Journal, MetaDigestMismatchIsNamed)
{
    std::vector<std::uint8_t> image = testImage();
    image[20] ^= 0x01; // first byte of the meta JSON payload

    ExportMeta meta;
    std::vector<JournalEntry> entries;
    std::string err;
    EXPECT_FALSE(
        parseJournal(image.data(), image.size(), meta, entries, &err));
    EXPECT_NE(err.find("meta digest mismatch"), std::string::npos)
        << err;
}

TEST(Journal, RecordDigestMismatchIsNamed)
{
    std::vector<std::uint8_t> image = testImage();
    const std::size_t frame1 = journalHeader(testMeta()).size();
    image[frame1 + 12] ^= 0x01; // first byte of record 0's payload

    ExportMeta meta;
    std::vector<JournalEntry> entries;
    std::string err;
    EXPECT_FALSE(
        parseJournal(image.data(), image.size(), meta, entries, &err));
    EXPECT_NE(err.find("record digest mismatch"), std::string::npos)
        << err;
}

TEST(Journal, BadMagicAndVersionAreNamed)
{
    ExportMeta meta;
    std::vector<JournalEntry> entries;
    std::string err;

    std::vector<std::uint8_t> image = testImage();
    image[0] = 'X';
    EXPECT_FALSE(
        parseJournal(image.data(), image.size(), meta, entries, &err));
    EXPECT_NE(err.find("bad magic"), std::string::npos) << err;

    image = testImage();
    image[4] = 0x7f; // version 0x7f
    EXPECT_FALSE(
        parseJournal(image.data(), image.size(), meta, entries, &err));
    EXPECT_NE(err.find("unsupported format version"), std::string::npos)
        << err;
}

TEST(Journal, ReadJournalNamesUnopenableFiles)
{
    ExportMeta meta;
    std::vector<JournalEntry> entries;
    std::string err;
    EXPECT_FALSE(readJournal(tempPath("no_such_journal.gvcj"), meta,
                             entries, &err));
    EXPECT_NE(err.find("cannot open"), std::string::npos) << err;
}

// ---------------------------------------------------------------------
// Grid identity: a journal never resumes a different sweep
// ---------------------------------------------------------------------

TEST(Journal, GridMismatchesAreNamed)
{
    const ExportMeta run = testMeta();
    std::string err;

    {
        ExportMeta j = testMeta();
        j.workloads = {"alpha", "gamma"};
        EXPECT_FALSE(journalMatchesGrid(j, run, &err));
        EXPECT_NE(err.find("workload axis"), std::string::npos) << err;
    }
    {
        ExportMeta j = testMeta();
        j.designs = {"ideal"};
        EXPECT_FALSE(journalMatchesGrid(j, run, &err));
        EXPECT_NE(err.find("design axis"), std::string::npos) << err;
    }
    {
        ExportMeta j = testMeta();
        j.scale = 0.5;
        EXPECT_FALSE(journalMatchesGrid(j, run, &err));
        EXPECT_NE(err.find("scale"), std::string::npos) << err;
    }
    {
        ExportMeta j = testMeta();
        j.seed = 99;
        EXPECT_FALSE(journalMatchesGrid(j, run, &err));
        EXPECT_NE(err.find("seed"), std::string::npos) << err;
    }
    {
        ExportMeta j = testMeta();
        j.shard_index = 1;
        j.shard_count = 2;
        EXPECT_FALSE(journalMatchesGrid(j, run, &err));
        EXPECT_NE(err.find("shard"), std::string::npos) << err;
    }
    {
        ExportMeta j = testMeta();
        j.shard_assignment = "lpt";
        EXPECT_FALSE(journalMatchesGrid(j, run, &err));
        EXPECT_NE(err.find("assignment"), std::string::npos) << err;
        EXPECT_NE(err.find("modulo"), std::string::npos) << err;
    }
    {
        ExportMeta j = testMeta();
        ExportMeta r = testMeta();
        j.shard_assignment = r.shard_assignment = "lpt";
        j.shard_cost_digest = 1;
        r.shard_cost_digest = 2;
        EXPECT_FALSE(journalMatchesGrid(j, r, &err));
        EXPECT_NE(err.find("cost-model digest"), std::string::npos)
            << err;
    }
}

TEST(Journal, MatchingGridAcceptsAndJobsIsElastic)
{
    std::string err;
    EXPECT_TRUE(journalMatchesGrid(testMeta(), testMeta(), &err)) << err;

    // Worker count does not affect results, so a fleet may resume a
    // journal with a different --jobs.
    ExportMeta j = testMeta();
    ExportMeta r = testMeta();
    j.jobs = 1;
    r.jobs = 16;
    EXPECT_TRUE(journalMatchesGrid(j, r, &err)) << err;
}
